
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/random.cc" "src/core/CMakeFiles/tfrepro_core.dir/random.cc.o" "gcc" "src/core/CMakeFiles/tfrepro_core.dir/random.cc.o.d"
  "/root/repo/src/core/status.cc" "src/core/CMakeFiles/tfrepro_core.dir/status.cc.o" "gcc" "src/core/CMakeFiles/tfrepro_core.dir/status.cc.o.d"
  "/root/repo/src/core/tensor.cc" "src/core/CMakeFiles/tfrepro_core.dir/tensor.cc.o" "gcc" "src/core/CMakeFiles/tfrepro_core.dir/tensor.cc.o.d"
  "/root/repo/src/core/tensor_shape.cc" "src/core/CMakeFiles/tfrepro_core.dir/tensor_shape.cc.o" "gcc" "src/core/CMakeFiles/tfrepro_core.dir/tensor_shape.cc.o.d"
  "/root/repo/src/core/threadpool.cc" "src/core/CMakeFiles/tfrepro_core.dir/threadpool.cc.o" "gcc" "src/core/CMakeFiles/tfrepro_core.dir/threadpool.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/tfrepro_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/tfrepro_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
