file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_core.dir/random.cc.o"
  "CMakeFiles/tfrepro_core.dir/random.cc.o.d"
  "CMakeFiles/tfrepro_core.dir/status.cc.o"
  "CMakeFiles/tfrepro_core.dir/status.cc.o.d"
  "CMakeFiles/tfrepro_core.dir/tensor.cc.o"
  "CMakeFiles/tfrepro_core.dir/tensor.cc.o.d"
  "CMakeFiles/tfrepro_core.dir/tensor_shape.cc.o"
  "CMakeFiles/tfrepro_core.dir/tensor_shape.cc.o.d"
  "CMakeFiles/tfrepro_core.dir/threadpool.cc.o"
  "CMakeFiles/tfrepro_core.dir/threadpool.cc.o.d"
  "CMakeFiles/tfrepro_core.dir/types.cc.o"
  "CMakeFiles/tfrepro_core.dir/types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
