# Empty compiler generated dependencies file for tfrepro_core.
# This may be replaced when dependencies are built.
