# Empty dependencies file for tfrepro_sim.
# This may be replaced when dependencies are built.
