file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/tfrepro_sim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/tfrepro_sim.dir/cost_model.cc.o"
  "CMakeFiles/tfrepro_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/tfrepro_sim.dir/des.cc.o"
  "CMakeFiles/tfrepro_sim.dir/des.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
