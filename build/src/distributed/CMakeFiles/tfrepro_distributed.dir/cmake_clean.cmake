file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_distributed.dir/cluster.cc.o"
  "CMakeFiles/tfrepro_distributed.dir/cluster.cc.o.d"
  "CMakeFiles/tfrepro_distributed.dir/master.cc.o"
  "CMakeFiles/tfrepro_distributed.dir/master.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
