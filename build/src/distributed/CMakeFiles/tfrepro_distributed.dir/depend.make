# Empty dependencies file for tfrepro_distributed.
# This may be replaced when dependencies are built.
