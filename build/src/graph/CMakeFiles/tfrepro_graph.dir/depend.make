# Empty dependencies file for tfrepro_graph.
# This may be replaced when dependencies are built.
