
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/attr_value.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/attr_value.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/attr_value.cc.o.d"
  "/root/repo/src/graph/control_flow_builder.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/control_flow_builder.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/control_flow_builder.cc.o.d"
  "/root/repo/src/graph/dot.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/dot.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/dot.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/op_def.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/op_def.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/op_def.cc.o.d"
  "/root/repo/src/graph/op_registry.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/op_registry.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/op_registry.cc.o.d"
  "/root/repo/src/graph/ops.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/ops.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/ops.cc.o.d"
  "/root/repo/src/graph/shape_inference.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/shape_inference.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/shape_inference.cc.o.d"
  "/root/repo/src/graph/standard_ops.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/standard_ops.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/standard_ops.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/tfrepro_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/tfrepro_graph.dir/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
