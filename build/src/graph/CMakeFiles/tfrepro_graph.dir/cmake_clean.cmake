file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_graph.dir/attr_value.cc.o"
  "CMakeFiles/tfrepro_graph.dir/attr_value.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/control_flow_builder.cc.o"
  "CMakeFiles/tfrepro_graph.dir/control_flow_builder.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/dot.cc.o"
  "CMakeFiles/tfrepro_graph.dir/dot.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/graph.cc.o"
  "CMakeFiles/tfrepro_graph.dir/graph.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/graph_builder.cc.o"
  "CMakeFiles/tfrepro_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/op_def.cc.o"
  "CMakeFiles/tfrepro_graph.dir/op_def.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/op_registry.cc.o"
  "CMakeFiles/tfrepro_graph.dir/op_registry.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/ops.cc.o"
  "CMakeFiles/tfrepro_graph.dir/ops.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/shape_inference.cc.o"
  "CMakeFiles/tfrepro_graph.dir/shape_inference.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/standard_ops.cc.o"
  "CMakeFiles/tfrepro_graph.dir/standard_ops.cc.o.d"
  "CMakeFiles/tfrepro_graph.dir/subgraph.cc.o"
  "CMakeFiles/tfrepro_graph.dir/subgraph.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
