file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_autodiff.dir/array_grad.cc.o"
  "CMakeFiles/tfrepro_autodiff.dir/array_grad.cc.o.d"
  "CMakeFiles/tfrepro_autodiff.dir/gradients.cc.o"
  "CMakeFiles/tfrepro_autodiff.dir/gradients.cc.o.d"
  "CMakeFiles/tfrepro_autodiff.dir/math_grad.cc.o"
  "CMakeFiles/tfrepro_autodiff.dir/math_grad.cc.o.d"
  "CMakeFiles/tfrepro_autodiff.dir/nn_grad.cc.o"
  "CMakeFiles/tfrepro_autodiff.dir/nn_grad.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
