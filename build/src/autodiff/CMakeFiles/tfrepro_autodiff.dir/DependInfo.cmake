
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/array_grad.cc" "src/autodiff/CMakeFiles/tfrepro_autodiff.dir/array_grad.cc.o" "gcc" "src/autodiff/CMakeFiles/tfrepro_autodiff.dir/array_grad.cc.o.d"
  "/root/repo/src/autodiff/gradients.cc" "src/autodiff/CMakeFiles/tfrepro_autodiff.dir/gradients.cc.o" "gcc" "src/autodiff/CMakeFiles/tfrepro_autodiff.dir/gradients.cc.o.d"
  "/root/repo/src/autodiff/math_grad.cc" "src/autodiff/CMakeFiles/tfrepro_autodiff.dir/math_grad.cc.o" "gcc" "src/autodiff/CMakeFiles/tfrepro_autodiff.dir/math_grad.cc.o.d"
  "/root/repo/src/autodiff/nn_grad.cc" "src/autodiff/CMakeFiles/tfrepro_autodiff.dir/nn_grad.cc.o" "gcc" "src/autodiff/CMakeFiles/tfrepro_autodiff.dir/nn_grad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
