# Empty compiler generated dependencies file for tfrepro_autodiff.
# This may be replaced when dependencies are built.
