file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_train.dir/coordinator.cc.o"
  "CMakeFiles/tfrepro_train.dir/coordinator.cc.o.d"
  "CMakeFiles/tfrepro_train.dir/device_setter.cc.o"
  "CMakeFiles/tfrepro_train.dir/device_setter.cc.o.d"
  "CMakeFiles/tfrepro_train.dir/optimizer.cc.o"
  "CMakeFiles/tfrepro_train.dir/optimizer.cc.o.d"
  "CMakeFiles/tfrepro_train.dir/saver.cc.o"
  "CMakeFiles/tfrepro_train.dir/saver.cc.o.d"
  "CMakeFiles/tfrepro_train.dir/sync_replicas.cc.o"
  "CMakeFiles/tfrepro_train.dir/sync_replicas.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
