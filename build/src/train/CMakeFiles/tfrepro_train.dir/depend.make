# Empty dependencies file for tfrepro_train.
# This may be replaced when dependencies are built.
