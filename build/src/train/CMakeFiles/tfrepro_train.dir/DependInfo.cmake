
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/coordinator.cc" "src/train/CMakeFiles/tfrepro_train.dir/coordinator.cc.o" "gcc" "src/train/CMakeFiles/tfrepro_train.dir/coordinator.cc.o.d"
  "/root/repo/src/train/device_setter.cc" "src/train/CMakeFiles/tfrepro_train.dir/device_setter.cc.o" "gcc" "src/train/CMakeFiles/tfrepro_train.dir/device_setter.cc.o.d"
  "/root/repo/src/train/optimizer.cc" "src/train/CMakeFiles/tfrepro_train.dir/optimizer.cc.o" "gcc" "src/train/CMakeFiles/tfrepro_train.dir/optimizer.cc.o.d"
  "/root/repo/src/train/saver.cc" "src/train/CMakeFiles/tfrepro_train.dir/saver.cc.o" "gcc" "src/train/CMakeFiles/tfrepro_train.dir/saver.cc.o.d"
  "/root/repo/src/train/sync_replicas.cc" "src/train/CMakeFiles/tfrepro_train.dir/sync_replicas.cc.o" "gcc" "src/train/CMakeFiles/tfrepro_train.dir/sync_replicas.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
