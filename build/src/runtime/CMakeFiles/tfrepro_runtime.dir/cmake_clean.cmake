file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_runtime.dir/control_flow_info.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/control_flow_info.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/device.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/device.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/executor.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/executor.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/graph_optimizer.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/graph_optimizer.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/kernel.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/kernel.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/partition.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/partition.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/placer.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/placer.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/rendezvous.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/rendezvous.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/resource_mgr.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/resource_mgr.cc.o.d"
  "CMakeFiles/tfrepro_runtime.dir/session.cc.o"
  "CMakeFiles/tfrepro_runtime.dir/session.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
