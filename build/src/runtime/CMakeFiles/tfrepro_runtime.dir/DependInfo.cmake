
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/control_flow_info.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/control_flow_info.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/control_flow_info.cc.o.d"
  "/root/repo/src/runtime/device.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/device.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/device.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/graph_optimizer.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/graph_optimizer.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/graph_optimizer.cc.o.d"
  "/root/repo/src/runtime/kernel.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/kernel.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/kernel.cc.o.d"
  "/root/repo/src/runtime/partition.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/partition.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/partition.cc.o.d"
  "/root/repo/src/runtime/placer.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/placer.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/placer.cc.o.d"
  "/root/repo/src/runtime/rendezvous.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/rendezvous.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/rendezvous.cc.o.d"
  "/root/repo/src/runtime/resource_mgr.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/resource_mgr.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/resource_mgr.cc.o.d"
  "/root/repo/src/runtime/session.cc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/session.cc.o" "gcc" "src/runtime/CMakeFiles/tfrepro_runtime.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
