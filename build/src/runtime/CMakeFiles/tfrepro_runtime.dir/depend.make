# Empty dependencies file for tfrepro_runtime.
# This may be replaced when dependencies are built.
