
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/build_model.cc" "src/nn/CMakeFiles/tfrepro_nn.dir/build_model.cc.o" "gcc" "src/nn/CMakeFiles/tfrepro_nn.dir/build_model.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/tfrepro_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/tfrepro_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/tfrepro_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/tfrepro_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "src/nn/CMakeFiles/tfrepro_nn.dir/model_zoo.cc.o" "gcc" "src/nn/CMakeFiles/tfrepro_nn.dir/model_zoo.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/nn/CMakeFiles/tfrepro_nn.dir/rnn.cc.o" "gcc" "src/nn/CMakeFiles/tfrepro_nn.dir/rnn.cc.o.d"
  "/root/repo/src/nn/softmax.cc" "src/nn/CMakeFiles/tfrepro_nn.dir/softmax.cc.o" "gcc" "src/nn/CMakeFiles/tfrepro_nn.dir/softmax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
