# Empty compiler generated dependencies file for tfrepro_nn.
# This may be replaced when dependencies are built.
