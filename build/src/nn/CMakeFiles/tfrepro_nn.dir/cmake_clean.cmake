file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_nn.dir/build_model.cc.o"
  "CMakeFiles/tfrepro_nn.dir/build_model.cc.o.d"
  "CMakeFiles/tfrepro_nn.dir/embedding.cc.o"
  "CMakeFiles/tfrepro_nn.dir/embedding.cc.o.d"
  "CMakeFiles/tfrepro_nn.dir/layers.cc.o"
  "CMakeFiles/tfrepro_nn.dir/layers.cc.o.d"
  "CMakeFiles/tfrepro_nn.dir/model_zoo.cc.o"
  "CMakeFiles/tfrepro_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/tfrepro_nn.dir/rnn.cc.o"
  "CMakeFiles/tfrepro_nn.dir/rnn.cc.o.d"
  "CMakeFiles/tfrepro_nn.dir/softmax.cc.o"
  "CMakeFiles/tfrepro_nn.dir/softmax.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
