
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/record_file.cc" "src/data/CMakeFiles/tfrepro_data.dir/record_file.cc.o" "gcc" "src/data/CMakeFiles/tfrepro_data.dir/record_file.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/tfrepro_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/tfrepro_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
