file(REMOVE_RECURSE
  "CMakeFiles/tfrepro_data.dir/record_file.cc.o"
  "CMakeFiles/tfrepro_data.dir/record_file.cc.o.d"
  "CMakeFiles/tfrepro_data.dir/synthetic.cc.o"
  "CMakeFiles/tfrepro_data.dir/synthetic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrepro_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
