# Empty dependencies file for tfrepro_data.
# This may be replaced when dependencies are built.
