# Empty compiler generated dependencies file for tfrepro_kernels.
# This may be replaced when dependencies are built.
