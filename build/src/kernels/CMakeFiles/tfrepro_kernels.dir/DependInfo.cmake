
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/array_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/array_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/array_ops.cc.o.d"
  "/root/repo/src/kernels/broadcast.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/broadcast.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/broadcast.cc.o.d"
  "/root/repo/src/kernels/checkpoint_format.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/checkpoint_format.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/checkpoint_format.cc.o.d"
  "/root/repo/src/kernels/constant_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/constant_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/constant_ops.cc.o.d"
  "/root/repo/src/kernels/control_flow_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/control_flow_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/control_flow_ops.cc.o.d"
  "/root/repo/src/kernels/gather_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/gather_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/gather_ops.cc.o.d"
  "/root/repo/src/kernels/io_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/io_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/io_ops.cc.o.d"
  "/root/repo/src/kernels/math_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/math_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/math_ops.cc.o.d"
  "/root/repo/src/kernels/matmul_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/matmul_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/matmul_ops.cc.o.d"
  "/root/repo/src/kernels/nn_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/nn_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/nn_ops.cc.o.d"
  "/root/repo/src/kernels/quantization_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/quantization_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/quantization_ops.cc.o.d"
  "/root/repo/src/kernels/queue.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/queue.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/queue.cc.o.d"
  "/root/repo/src/kernels/queue_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/queue_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/queue_ops.cc.o.d"
  "/root/repo/src/kernels/random_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/random_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/random_ops.cc.o.d"
  "/root/repo/src/kernels/reduction_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/reduction_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/reduction_ops.cc.o.d"
  "/root/repo/src/kernels/sendrecv_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/sendrecv_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/sendrecv_ops.cc.o.d"
  "/root/repo/src/kernels/state_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/state_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/state_ops.cc.o.d"
  "/root/repo/src/kernels/training_ops.cc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/training_ops.cc.o" "gcc" "src/kernels/CMakeFiles/tfrepro_kernels.dir/training_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
