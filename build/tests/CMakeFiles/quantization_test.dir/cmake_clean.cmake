file(REMOVE_RECURSE
  "CMakeFiles/quantization_test.dir/quantization_test.cc.o"
  "CMakeFiles/quantization_test.dir/quantization_test.cc.o.d"
  "quantization_test"
  "quantization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
