file(REMOVE_RECURSE
  "CMakeFiles/shape_inference_test.dir/shape_inference_test.cc.o"
  "CMakeFiles/shape_inference_test.dir/shape_inference_test.cc.o.d"
  "shape_inference_test"
  "shape_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
