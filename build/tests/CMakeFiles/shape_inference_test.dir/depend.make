# Empty dependencies file for shape_inference_test.
# This may be replaced when dependencies are built.
