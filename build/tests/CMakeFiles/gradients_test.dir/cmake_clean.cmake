file(REMOVE_RECURSE
  "CMakeFiles/gradients_test.dir/gradients_test.cc.o"
  "CMakeFiles/gradients_test.dir/gradients_test.cc.o.d"
  "gradients_test"
  "gradients_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
