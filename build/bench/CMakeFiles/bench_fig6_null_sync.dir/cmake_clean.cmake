file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_null_sync.dir/bench_fig6_null_sync.cc.o"
  "CMakeFiles/bench_fig6_null_sync.dir/bench_fig6_null_sync.cc.o.d"
  "bench_fig6_null_sync"
  "bench_fig6_null_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_null_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
