# Empty compiler generated dependencies file for bench_fig6_null_sync.
# This may be replaced when dependencies are built.
