file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_inception.dir/bench_fig7_inception.cc.o"
  "CMakeFiles/bench_fig7_inception.dir/bench_fig7_inception.cc.o.d"
  "bench_fig7_inception"
  "bench_fig7_inception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_inception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
