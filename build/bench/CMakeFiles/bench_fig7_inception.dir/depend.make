# Empty dependencies file for bench_fig7_inception.
# This may be replaced when dependencies are built.
