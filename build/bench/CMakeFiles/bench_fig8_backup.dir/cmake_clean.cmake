file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_backup.dir/bench_fig8_backup.cc.o"
  "CMakeFiles/bench_fig8_backup.dir/bench_fig8_backup.cc.o.d"
  "bench_fig8_backup"
  "bench_fig8_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
