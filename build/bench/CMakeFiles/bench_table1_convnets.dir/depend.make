# Empty dependencies file for bench_table1_convnets.
# This may be replaced when dependencies are built.
