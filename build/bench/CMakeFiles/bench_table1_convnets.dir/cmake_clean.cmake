file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_convnets.dir/bench_table1_convnets.cc.o"
  "CMakeFiles/bench_table1_convnets.dir/bench_table1_convnets.cc.o.d"
  "bench_table1_convnets"
  "bench_table1_convnets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_convnets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
