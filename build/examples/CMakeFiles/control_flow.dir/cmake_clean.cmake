file(REMOVE_RECURSE
  "CMakeFiles/control_flow.dir/control_flow.cpp.o"
  "CMakeFiles/control_flow.dir/control_flow.cpp.o.d"
  "control_flow"
  "control_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
