# Empty dependencies file for image_classifier.
# This may be replaced when dependencies are built.
