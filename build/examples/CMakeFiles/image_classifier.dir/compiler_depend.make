# Empty compiler generated dependencies file for image_classifier.
# This may be replaced when dependencies are built.
