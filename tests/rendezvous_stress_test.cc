// Multi-threaded stress over the sharded LocalRendezvous (DESIGN.md §9):
// concurrent Send/Recv traffic spread across shards, senders racing
// receivers on the same keys, and StartAbort racing both. Run under TSan by
// scripts/check.sh. The invariants checked are the fault-tolerance ones the
// sharding must preserve: every value is delivered exactly once or the
// operation observes the abort, every RecvAsync callback fires exactly
// once, and after the rendezvous dies the process-wide
// rendezvous.live_items / rendezvous.live_waiters gauges read zero (a
// non-zero value is a leaked entry).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "runtime/rendezvous.h"

namespace tfrepro {
namespace {

int64_t GaugeValue(const char* name) {
  return metrics::Registry::Global()->GetGauge(name)->value();
}

TEST(RendezvousStressTest, ConcurrentSendRecvAcrossShards) {
  constexpr int kPairs = 4;
  constexpr int kKeysPerPair = 256;
  auto rendezvous = std::make_unique<LocalRendezvous>();

  // Each sender/receiver pair works a disjoint key range; keys hash across
  // all shards. Receivers use the blocking wrapper, so both orders (send
  // first, recv first) occur under scheduler jitter.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kPairs; ++p) {
    threads.emplace_back([&, p]() {
      for (int i = 0; i < kKeysPerPair; ++i) {
        std::string key = "pair" + std::to_string(p) + ";k" +
                          std::to_string(i);
        float value = static_cast<float>(p * kKeysPerPair + i);
        TF_CHECK_OK(rendezvous->Send(key, Rendezvous::KeyHash(key),
                                     Tensor::Scalar(value), false));
      }
    });
    threads.emplace_back([&, p]() {
      for (int i = 0; i < kKeysPerPair; ++i) {
        std::string key = "pair" + std::to_string(p) + ";k" +
                          std::to_string(i);
        Tensor value;
        bool is_dead = false;
        TF_CHECK_OK(rendezvous->Recv(key, &value, &is_dead));
        if (is_dead ||
            *value.data<float>() != static_cast<float>(p * kKeysPerPair + i)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  rendezvous.reset();
  EXPECT_EQ(GaugeValue("rendezvous.live_items"), 0);
  EXPECT_EQ(GaugeValue("rendezvous.live_waiters"), 0);
}

TEST(RendezvousStressTest, DeadnessBitSurvivesSharding) {
  LocalRendezvous rendezvous;
  std::string key = "dead;key";
  TF_CHECK_OK(rendezvous.Send(key, Rendezvous::KeyHash(key),
                              Tensor::Scalar(1.0f), /*is_dead=*/true));
  Tensor value;
  bool is_dead = false;
  TF_CHECK_OK(rendezvous.Recv(key, &value, &is_dead));
  EXPECT_TRUE(is_dead);
}

TEST(RendezvousStressTest, AbortRacingSendRecvLeavesNoLeaks) {
  // Repeated rounds so the abort lands at different points of the traffic:
  // sometimes before most sends, sometimes after, sometimes mid-delivery.
  constexpr int kRounds = 16;
  constexpr int kKeys = 128;
  for (int round = 0; round < kRounds; ++round) {
    auto rendezvous = std::make_unique<LocalRendezvous>();
    std::atomic<int> callbacks{0};
    std::atomic<int> delivered{0};
    std::atomic<int> aborted{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t]() {
        for (int i = t; i < kKeys; i += 2) {
          std::string key = "abort;k" + std::to_string(i);
          rendezvous->RecvAsync(
              key, Rendezvous::KeyHash(key),
              [&](const Status& s, const Tensor&, bool) {
                ++callbacks;
                if (s.ok()) {
                  ++delivered;
                } else {
                  ++aborted;
                }
              });
        }
      });
      threads.emplace_back([&, t]() {
        for (int i = t; i < kKeys; i += 2) {
          std::string key = "abort;k" + std::to_string(i);
          // After the abort lands, sends fail; both outcomes are legal.
          (void)rendezvous->Send(key, Rendezvous::KeyHash(key),
                                 Tensor::Scalar(static_cast<float>(i)),
                                 false);
        }
      });
    }
    threads.emplace_back([&, round]() {
      if (round % 2 == 1) std::this_thread::yield();
      rendezvous->StartAbort(Cancelled("stress abort"));
    });
    // A second, racing abort: only the first may win.
    threads.emplace_back([&]() {
      rendezvous->StartAbort(Aborted("second abort"));
    });
    for (std::thread& t : threads) t.join();

    // Every RecvAsync resolved exactly once — matched or aborted, never
    // dropped, never doubled.
    EXPECT_EQ(callbacks.load(), kKeys);
    EXPECT_EQ(delivered.load() + aborted.load(), kKeys);

    rendezvous.reset();
    EXPECT_EQ(GaugeValue("rendezvous.live_items"), 0)
        << "leaked buffered items in round " << round;
    EXPECT_EQ(GaugeValue("rendezvous.live_waiters"), 0)
        << "leaked parked waiters in round " << round;
  }
}

TEST(RendezvousStressTest, SameShardContention) {
  // All keys identical — worst case: every operation lands on one shard and
  // the deque-per-key multi-value path is exercised concurrently.
  constexpr int kValues = 512;
  auto rendezvous = std::make_unique<LocalRendezvous>();
  std::string key = "hot;key";
  uint64_t hash = Rendezvous::KeyHash(key);
  std::atomic<int64_t> sum{0};
  std::thread sender([&]() {
    for (int i = 0; i < kValues; ++i) {
      TF_CHECK_OK(rendezvous->Send(key, hash,
                                   Tensor::Scalar(static_cast<float>(1)),
                                   false));
    }
  });
  std::thread receiver([&]() {
    for (int i = 0; i < kValues; ++i) {
      Tensor value;
      bool is_dead = false;
      TF_CHECK_OK(rendezvous->Recv(key, &value, &is_dead));
      sum += static_cast<int64_t>(*value.data<float>());
    }
  });
  sender.join();
  receiver.join();
  EXPECT_EQ(sum.load(), kValues);  // exactly-once: no loss, no duplication

  rendezvous.reset();
  EXPECT_EQ(GaugeValue("rendezvous.live_items"), 0);
  EXPECT_EQ(GaugeValue("rendezvous.live_waiters"), 0);
}

}  // namespace
}  // namespace tfrepro
