#include "core/tensor.h"

#include <gtest/gtest.h>

#include "core/tensor_shape.h"

namespace tfrepro {
namespace {

TEST(TensorShapeTest, Basics) {
  TensorShape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.num_elements(), 24);
  EXPECT_FALSE(s.IsScalar());
}

TEST(TensorShapeTest, ScalarShape) {
  TensorShape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
  EXPECT_TRUE(s.IsScalar());
}

TEST(TensorShapeTest, Mutation) {
  TensorShape s({2, 3});
  s.AddDim(5);
  EXPECT_EQ(s.DebugString(), "[2,3,5]");
  s.RemoveDim(0);
  EXPECT_EQ(s.DebugString(), "[3,5]");
  s.InsertDim(1, 7);
  EXPECT_EQ(s.DebugString(), "[3,7,5]");
  s.set_dim(2, 1);
  EXPECT_EQ(s.num_elements(), 21);
}

TEST(TensorShapeTest, ValidateRejectsNegative) {
  EXPECT_FALSE(ValidateShape({2, -1}).ok());
  EXPECT_TRUE(ValidateShape({2, 0, 3}).ok());
  EXPECT_FALSE(ValidateShape({1LL << 40, 1LL << 40}).ok());
}

TEST(TensorTest, AllocateZeroed) {
  Tensor t(DataType::kFloat, TensorShape({2, 2}));
  EXPECT_TRUE(t.IsInitialized());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(t.flat<float>(i), 0.0f);
  }
}

TEST(TensorTest, ScalarConstructors) {
  EXPECT_EQ(*Tensor::Scalar(2.5f).data<float>(), 2.5f);
  EXPECT_EQ(*Tensor::Scalar(int32_t{7}).data<int32_t>(), 7);
  EXPECT_EQ(*Tensor::Scalar(int64_t{1} << 40).data<int64_t>(), int64_t{1} << 40);
  EXPECT_TRUE(*Tensor::Scalar(true).data<bool>());
  EXPECT_EQ(Tensor::Scalar(std::string("hi")).str(0), "hi");
}

TEST(TensorTest, FromVectorAndMatrixAccess) {
  Tensor t = Tensor::FromVector<float>({1, 2, 3, 4, 5, 6}, TensorShape({2, 3}));
  EXPECT_EQ(t.matrix<float>(0, 0), 1.0f);
  EXPECT_EQ(t.matrix<float>(1, 2), 6.0f);
}

TEST(TensorTest, CopySharesBuffer) {
  Tensor a = Tensor::Vec<float>({1, 2, 3});
  Tensor b = a;
  EXPECT_TRUE(a.SharesBufferWith(b));
  b.flat<float>(0) = 9;
  EXPECT_EQ(a.flat<float>(0), 9.0f);  // shared
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Vec<float>({1, 2, 3});
  Tensor b = a.Clone();
  EXPECT_FALSE(a.SharesBufferWith(b));
  b.flat<float>(0) = 9;
  EXPECT_EQ(a.flat<float>(0), 1.0f);
}

TEST(TensorTest, ReshapeSharesBuffer) {
  Tensor a = Tensor::FromVector<float>({1, 2, 3, 4}, TensorShape({2, 2}));
  Result<Tensor> r = a.Reshaped(TensorShape({4}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(a.SharesBufferWith(r.value()));
  EXPECT_EQ(r.value().shape().DebugString(), "[4]");
}

TEST(TensorTest, ReshapeRejectsElementCountChange) {
  Tensor a = Tensor::Vec<float>({1, 2, 3});
  EXPECT_FALSE(a.Reshaped(TensorShape({2, 2})).ok());
}

TEST(TensorTest, SliceRows) {
  Tensor a = Tensor::FromVector<int32_t>({1, 2, 3, 4, 5, 6}, TensorShape({3, 2}));
  Result<Tensor> r = a.SliceRows(1, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().shape().DebugString(), "[2,2]");
  EXPECT_EQ(r.value().matrix<int32_t>(0, 0), 3);
  EXPECT_EQ(r.value().matrix<int32_t>(1, 1), 6);
}

TEST(TensorTest, SliceRowsOutOfRange) {
  Tensor a = Tensor::FromVector<int32_t>({1, 2}, TensorShape({2, 1}));
  EXPECT_FALSE(a.SliceRows(1, 5).ok());
  EXPECT_FALSE(a.SliceRows(-1, 1).ok());
}

TEST(TensorTest, CopyDataFromChecksShapeAndType) {
  Tensor a(DataType::kFloat, TensorShape({2}));
  Tensor b = Tensor::Vec<float>({7, 8});
  ASSERT_TRUE(a.CopyDataFrom(b).ok());
  EXPECT_EQ(a.flat<float>(1), 8.0f);
  Tensor c = Tensor::Vec<int32_t>({1, 2});
  EXPECT_FALSE(a.CopyDataFrom(c).ok());
  Tensor d = Tensor::Vec<float>({1, 2, 3});
  EXPECT_FALSE(a.CopyDataFrom(d).ok());
}

TEST(TensorTest, SerializeRoundTripFloat) {
  Tensor a = Tensor::FromVector<float>({1.5f, -2.25f, 0, 4}, TensorShape({2, 2}));
  std::string bytes;
  a.AppendToBytes(&bytes);
  size_t offset = 0;
  Result<Tensor> b = Tensor::ParseFromBytes(bytes, &offset);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(b.value().shape(), a.shape());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(b.value().flat<float>(i), a.flat<float>(i));
  }
}

TEST(TensorTest, SerializeRoundTripString) {
  Tensor a(DataType::kString, TensorShape({2}));
  a.str(0) = "hello";
  a.str(1) = std::string("\x00\x01 raw", 6);
  std::string bytes;
  a.AppendToBytes(&bytes);
  size_t offset = 0;
  Result<Tensor> b = Tensor::ParseFromBytes(bytes, &offset);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().str(0), "hello");
  EXPECT_EQ(b.value().str(1), a.str(1));
}

TEST(TensorTest, SerializeMultipleTensorsSequentially) {
  Tensor a = Tensor::Scalar(1.0f);
  Tensor b = Tensor::Vec<int64_t>({10, 20});
  std::string bytes;
  a.AppendToBytes(&bytes);
  b.AppendToBytes(&bytes);
  size_t offset = 0;
  Result<Tensor> ra = Tensor::ParseFromBytes(bytes, &offset);
  Result<Tensor> rb = Tensor::ParseFromBytes(bytes, &offset);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra.value().data<float>(), 1.0f);
  EXPECT_EQ(rb.value().flat<int64_t>(1), 20);
}

TEST(TensorTest, ParseRejectsTruncated) {
  Tensor a = Tensor::Vec<float>({1, 2, 3});
  std::string bytes;
  a.AppendToBytes(&bytes);
  bytes.resize(bytes.size() - 4);
  size_t offset = 0;
  EXPECT_FALSE(Tensor::ParseFromBytes(bytes, &offset).ok());
}

TEST(TensorTest, ParseRejectsGarbage) {
  std::string bytes(64, '\xff');
  size_t offset = 0;
  EXPECT_FALSE(Tensor::ParseFromBytes(bytes, &offset).ok());
}

TEST(TensorTest, TotalBytes) {
  Tensor a(DataType::kDouble, TensorShape({3}));
  EXPECT_EQ(a.TotalBytes(), 24u);
  Tensor s(DataType::kString, TensorShape({2}));
  s.str(0) = "abcd";
  EXPECT_EQ(s.TotalBytes(), 4u);
}

TEST(TensorTest, DebugStringTruncates) {
  Tensor a(DataType::kInt32, TensorShape({100}));
  std::string ds = a.DebugString(4);
  EXPECT_NE(ds.find("..."), std::string::npos);
}


TEST(TensorTest, ZeroElementTensors) {
  Tensor t(DataType::kFloat, TensorShape({0, 4}));
  EXPECT_EQ(t.num_elements(), 0);
  EXPECT_EQ(t.TotalBytes(), 0u);
  Tensor copy = t.Clone();
  EXPECT_EQ(copy.shape().DebugString(), "[0,4]");
  std::string bytes;
  t.AppendToBytes(&bytes);
  size_t offset = 0;
  Result<Tensor> parsed = Tensor::ParseFromBytes(bytes, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_elements(), 0);
}

TEST(TensorTest, SliceRowsOfStrings) {
  Tensor t(DataType::kString, TensorShape({3, 2}));
  for (int i = 0; i < 6; ++i) t.str(i) = "s" + std::to_string(i);
  Result<Tensor> sliced = t.SliceRows(1, 2);
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced.value().str(0), "s2");
  EXPECT_EQ(sliced.value().str(3), "s5");
}

TEST(TensorTest, SliceRowsZeroLength) {
  Tensor t = Tensor::Vec<float>({1, 2, 3});
  Result<Tensor> sliced = t.SliceRows(1, 0);
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced.value().num_elements(), 0);
}

TEST(TypesTest, RefTypes) {
  DataType ref = MakeRefType(DataType::kFloat);
  EXPECT_TRUE(IsRefType(ref));
  EXPECT_FALSE(IsRefType(DataType::kFloat));
  EXPECT_EQ(BaseType(ref), DataType::kFloat);
  EXPECT_EQ(std::string(DataTypeName(ref)), "float_ref");
}

TEST(TypesTest, SizesAndPredicates) {
  EXPECT_EQ(DataTypeSize(DataType::kFloat), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kInt64), 8u);
  EXPECT_EQ(DataTypeSize(DataType::kString), 0u);
  EXPECT_TRUE(DataTypeIsFloating(DataType::kDouble));
  EXPECT_FALSE(DataTypeIsFloating(DataType::kInt32));
  EXPECT_TRUE(DataTypeIsInteger(DataType::kUint8));
}

}  // namespace
}  // namespace tfrepro
