#include "core/status.h"

#include <gtest/gtest.h>

namespace tfrepro {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad shape");
}

TEST(StatusTest, PrependAddsContext) {
  Status s = NotFound("op 'Foo'");
  s.Prepend("while building node 'n'");
  EXPECT_EQ(s.message(), "while building node 'n': op 'Foo'");
  EXPECT_EQ(s.code(), Code::kNotFound);
}

TEST(StatusTest, PrependOnOkIsNoOp) {
  Status s;
  s.Prepend("context");
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("m").code(), Code::kInvalidArgument);
  EXPECT_EQ(NotFound("m").code(), Code::kNotFound);
  EXPECT_EQ(AlreadyExists("m").code(), Code::kAlreadyExists);
  EXPECT_EQ(FailedPrecondition("m").code(), Code::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("m").code(), Code::kOutOfRange);
  EXPECT_EQ(Unimplemented("m").code(), Code::kUnimplemented);
  EXPECT_EQ(Internal("m").code(), Code::kInternal);
  EXPECT_EQ(Aborted("m").code(), Code::kAborted);
  EXPECT_EQ(Cancelled("m").code(), Code::kCancelled);
  EXPECT_EQ(ResourceExhausted("m").code(), Code::kResourceExhausted);
  EXPECT_EQ(Unavailable("m").code(), Code::kUnavailable);
  EXPECT_EQ(DataLoss("m").code(), Code::kDataLoss);
}

TEST(StatusTest, RetryablePredicates) {
  EXPECT_TRUE(Aborted("m").IsAborted());
  EXPECT_TRUE(Unavailable("m").IsUnavailable());
  EXPECT_TRUE(DeadlineExceeded("m").IsDeadlineExceeded());
  EXPECT_TRUE(Cancelled("m").IsCancelled());
  EXPECT_EQ(DeadlineExceeded("m").code(), Code::kDeadlineExceeded);

  // Exactly Aborted/Unavailable/DeadlineExceeded are retryable.
  EXPECT_TRUE(Aborted("m").IsRetryable());
  EXPECT_TRUE(Unavailable("m").IsRetryable());
  EXPECT_TRUE(DeadlineExceeded("m").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Cancelled("m").IsRetryable());
  EXPECT_FALSE(InvalidArgument("m").IsRetryable());
  EXPECT_FALSE(NotFound("m").IsRetryable());
  EXPECT_FALSE(FailedPrecondition("m").IsRetryable());
  EXPECT_FALSE(Internal("m").IsRetryable());
  EXPECT_FALSE(DataLoss("m").IsRetryable());
}

TEST(StatusTest, PredicatesFalseOnOtherCodes) {
  Status s = Internal("m");
  EXPECT_FALSE(s.IsAborted());
  EXPECT_FALSE(s.IsUnavailable());
  EXPECT_FALSE(s.IsDeadlineExceeded());
  EXPECT_FALSE(s.IsCancelled());
  EXPECT_FALSE(Status::OK().IsAborted());
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status s = Internal("boom");
  Status t = s;
  EXPECT_EQ(s, t);
  EXPECT_EQ(t.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return InvalidArgument("inner"); };
  auto outer = [&]() -> Status {
    TF_RETURN_IF_ERROR(fails());
    return Internal("unreachable");
  };
  EXPECT_EQ(outer().code(), Code::kInvalidArgument);
}

}  // namespace
}  // namespace tfrepro
