// Unit tests for the runtime's graph-processing stages: device-name
// parsing, placement with colocation constraints, partitioning with
// Send/Recv insertion, common-subexpression elimination and constant
// folding, and rendezvous semantics.

#include <gtest/gtest.h>

#include "graph/control_flow_builder.h"
#include "graph/dot.h"
#include "graph/ops.h"
#include "graph/subgraph.h"
#include "runtime/device.h"
#include "runtime/graph_optimizer.h"
#include "runtime/partition.h"
#include "runtime/placer.h"
#include "runtime/rendezvous.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

TEST(DeviceNameTest, ParseFullName) {
  Result<DeviceName> r = DeviceName::Parse("/job:ps/task:3/device:CPU:1");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().IsFullySpecified());
  EXPECT_EQ(r.value().job, "ps");
  EXPECT_EQ(r.value().task, 3);
  EXPECT_EQ(r.value().type, "CPU");
  EXPECT_EQ(r.value().id, 1);
  EXPECT_EQ(r.value().ToString(), "/job:ps/task:3/device:CPU:1");
}

TEST(DeviceNameTest, ParsePartialAndLegacyForms) {
  Result<DeviceName> job_only = DeviceName::Parse("/job:worker");
  ASSERT_TRUE(job_only.ok());
  EXPECT_TRUE(job_only.value().has_job);
  EXPECT_FALSE(job_only.value().has_task);

  Result<DeviceName> legacy = DeviceName::Parse("/cpu:0");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().type, "CPU");
  EXPECT_EQ(legacy.value().id, 0);

  EXPECT_FALSE(DeviceName::Parse("/bogus").ok());
  EXPECT_FALSE(DeviceName::Parse("/frobnicate:1").ok());
}

TEST(DeviceNameTest, MatchesPartialSpec) {
  DeviceName full = DeviceName::Parse("/job:ps/task:1/device:CPU:0").value();
  EXPECT_TRUE(full.Matches(DeviceName::Parse("/job:ps").value()));
  EXPECT_TRUE(full.Matches(DeviceName::Parse("/task:1").value()));
  EXPECT_TRUE(full.Matches(DeviceName()));  // empty spec matches anything
  EXPECT_FALSE(full.Matches(DeviceName::Parse("/job:worker").value()));
  EXPECT_FALSE(full.Matches(DeviceName::Parse("/task:2").value()));
}

TEST(DeviceNameTest, MergeDetectsConflicts) {
  DeviceName a = DeviceName::Parse("/job:ps").value();
  ASSERT_TRUE(a.MergeFrom(DeviceName::Parse("/task:2").value()).ok());
  EXPECT_EQ(a.ToString(), "/job:ps/task:2");
  EXPECT_FALSE(a.MergeFrom(DeviceName::Parse("/job:worker").value()).ok());
}

class PlacerPartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool_ = std::make_unique<ThreadPool>("t", 2);
    for (int task = 0; task < 2; ++task) {
      devices_.push_back(NewCpuDevice("worker", task, 0, pool_.get()));
      device_ptrs_.push_back(devices_.back().get());
    }
  }
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<Device*> device_ptrs_;
};

TEST_F(PlacerPartitionTest, UnconstrainedNodesGoToDefaultDevice) {
  Graph g;
  GraphBuilder b(&g);
  Output c = Const(&b, 1.0f);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(PlaceGraph(&g, device_ptrs_).ok());
  EXPECT_EQ(c.node->assigned_device(), device_ptrs_[0]->name());
}

TEST_F(PlacerPartitionTest, ExplicitConstraintRespected) {
  Graph g;
  GraphBuilder b(&g);
  Output c;
  {
    GraphBuilder::DeviceScope scope(&b, "/task:1");
    c = Const(&b, 1.0f);
  }
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(PlaceGraph(&g, device_ptrs_).ok());
  EXPECT_NE(c.node->assigned_device().find("task:1"), std::string::npos);
}

TEST_F(PlacerPartitionTest, RefEdgeColocation) {
  // Assign must land with its Variable even though only the Variable is
  // constrained (§3.3 implicit colocation).
  Graph g;
  GraphBuilder b(&g);
  Output v;
  {
    GraphBuilder::DeviceScope scope(&b, "/task:1");
    v = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "v");
  }
  Output assign = ops::Assign(&b, v, Const(&b, Tensor::Vec<float>({1, 2})));
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(PlaceGraph(&g, device_ptrs_).ok());
  EXPECT_EQ(assign.node->assigned_device(), v.node->assigned_device());
  EXPECT_NE(v.node->assigned_device().find("task:1"), std::string::npos);
}

TEST_F(PlacerPartitionTest, UnsatisfiableConstraintFails) {
  Graph g;
  GraphBuilder b(&g);
  {
    GraphBuilder::DeviceScope scope(&b, "/job:tpuworker");
    Const(&b, 1.0f);
  }
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(PlaceGraph(&g, device_ptrs_).ok());
}

TEST_F(PlacerPartitionTest, PartitionInsertsOneSendRecvPerConsumerDevice) {
  Graph g;
  GraphBuilder b(&g);
  Output src;
  {
    GraphBuilder::DeviceScope scope(&b, "/task:0");
    src = Const(&b, 2.0f);
  }
  // Two consumers on task 1 must share one Send/Recv pair.
  Output c1, c2;
  {
    GraphBuilder::DeviceScope scope(&b, "/task:1");
    c1 = ops::Square(&b, src);
    c2 = ops::Neg(&b, src);
  }
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(PlaceGraph(&g, device_ptrs_).ok());
  auto parts = PartitionGraph(g);
  ASSERT_TRUE(parts.ok()) << parts.status();
  ASSERT_EQ(parts.value().size(), 2u);

  int sends = 0, recvs = 0;
  for (auto& [device, part] : parts.value()) {
    for (Node* n : part->nodes()) {
      if (n->IsSend()) ++sends;
      if (n->IsRecv()) ++recvs;
    }
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
}

TEST_F(PlacerPartitionTest, CrossDeviceControlEdgeCarriedByDummy) {
  Graph g;
  GraphBuilder b(&g);
  Node* first;
  {
    GraphBuilder::DeviceScope scope(&b, "/task:0");
    first = b.Op("NoOp").Name("first").FinalizeNode();
  }
  Node* second;
  {
    GraphBuilder::DeviceScope scope(&b, "/task:1");
    second = b.Op("NoOp").Name("second").ControlInput(first).FinalizeNode();
  }
  (void)second;
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(PlaceGraph(&g, device_ptrs_).ok());
  auto parts = PartitionGraph(g);
  ASSERT_TRUE(parts.ok());
  int sends = 0, recvs = 0;
  for (auto& [device, part] : parts.value()) {
    for (Node* n : part->nodes()) {
      if (n->IsSend()) ++sends;
      if (n->IsRecv()) ++recvs;
    }
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
}

TEST_F(PlacerPartitionTest, PartitionRequiresPlacement) {
  Graph g;
  GraphBuilder b(&g);
  Const(&b, 1.0f);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(PartitionGraph(g).ok());  // no assigned devices yet
}

class OptimizerPassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool_ = std::make_unique<ThreadPool>("t", 2);
    device_ = NewCpuDevice("localhost", 0, 0, pool_.get());
  }
  void Place(Graph* g) {
    TF_CHECK_OK(PlaceGraph(g, {device_.get()}));
  }
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Device> device_;
};

TEST_F(OptimizerPassTest, CseMergesIdenticalStatelessNodes) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output a = ops::Square(&b, x);
  Output c = ops::Square(&b, x);  // identical
  Output sum = ops::Add(&b, a, c);
  (void)sum;
  ASSERT_TRUE(b.ok());
  Place(&g);
  int before = g.num_nodes();
  int removed = EliminateCommonSubexpressions(&g);
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(g.num_nodes(), before - 1);
}

TEST_F(OptimizerPassTest, CseDoesNotMergeStatefulNodes) {
  Graph g;
  GraphBuilder b(&g);
  Output r1 = ops::RandomUniform(&b, {4});
  Output r2 = ops::RandomUniform(&b, {4});
  Output sum = ops::Add(&b, r1, r2);
  (void)sum;
  ASSERT_TRUE(b.ok());
  Place(&g);
  // The two identical shape Consts may merge; the stateful random ops must
  // not (each keeps its own stream).
  EliminateCommonSubexpressions(&g);
  int randoms = 0;
  for (Node* n : g.nodes()) {
    if (n->op() == "RandomUniform") ++randoms;
  }
  EXPECT_EQ(randoms, 2);
}

TEST_F(OptimizerPassTest, ConstantFoldingReplacesComputations) {
  Graph g;
  GraphBuilder b(&g);
  Output folded = ops::Add(&b, Const(&b, 2.0f), Const(&b, 3.0f));
  Output keep = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output result = ops::Mul(&b, folded, keep);
  (void)result;
  ASSERT_TRUE(b.ok());
  Place(&g);
  Result<int> count = FoldConstants(&g, device_.get());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 1);
  // The Add is gone; a new Const carries 5.0.
  bool found5 = false;
  for (Node* n : g.nodes()) {
    EXPECT_NE(n->op(), "Add");
    if (n->IsConstant() &&
        n->GetAttr("value").tensor().dtype() == DataType::kFloat &&
        n->GetAttr("value").tensor().IsScalar() &&
        *n->GetAttr("value").tensor().data<float>() == 5.0f) {
      found5 = true;
    }
  }
  EXPECT_TRUE(found5);
}

TEST_F(OptimizerPassTest, FoldingSkipsStatefulAndControlFlow) {
  Graph g;
  GraphBuilder b(&g);
  Output r = ops::RandomUniform(&b, {2});
  Node* sw = ops::Switch(&b, Const(&b, 1.0f), Const(&b, Tensor::Scalar(true)));
  (void)r;
  (void)sw;
  ASSERT_TRUE(b.ok());
  Place(&g);
  Result<int> count = FoldConstants(&g, device_.get());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 0);
}

TEST_F(OptimizerPassTest, MultiPassFoldingReachesFixpoint) {
  Graph g;
  GraphBuilder b(&g);
  // ((1+2)+3)+x folds to 6+x over multiple passes.
  Output chain = ops::Add(
      &b, ops::Add(&b, ops::Add(&b, Const(&b, 1.0f), Const(&b, 2.0f)),
                   Const(&b, 3.0f)),
      ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x"));
  (void)chain;
  ASSERT_TRUE(b.ok());
  Place(&g);
  TF_CHECK_OK(OptimizeGraph(&g, device_.get()));
  int adds = 0;
  for (Node* n : g.nodes()) {
    if (n->op() == "Add") ++adds;
  }
  EXPECT_EQ(adds, 1);  // only the x-dependent Add remains
}

TEST(SubgraphTest, PruneKeepsBackwardClosure) {
  Graph g;
  GraphBuilder b(&g);
  Output a = Const(&b, 1.0f);
  Output keep = ops::Square(&b, a);
  Output drop = ops::Neg(&b, a);  // not reachable from the root
  (void)drop;
  ASSERT_TRUE(b.ok());
  PruneForReverseReachability(&g, {keep.node});
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_NE(g.FindNode(a.node->name()), nullptr);
}

TEST(SubgraphTest, RewriteRejectsUnknownNames) {
  Graph g;
  GraphBuilder b(&g);
  Const(&b, 1.0f);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(RewriteGraphForExecution(&g, {}, {"nope:0"}, {}).ok());
  std::unique_ptr<Graph> g2 = g.Clone();
  EXPECT_FALSE(RewriteGraphForExecution(g2.get(), {"nope:0"}, {}, {}).ok());
  std::unique_ptr<Graph> g3 = g.Clone();
  EXPECT_FALSE(RewriteGraphForExecution(g3.get(), {}, {}, {"nope"}).ok());
}

TEST(RendezvousTest, SendThenRecv) {
  LocalRendezvous r;
  TF_CHECK_OK(r.Send("k", Tensor::Scalar(7.0f), false));
  Tensor value;
  bool is_dead = true;
  TF_CHECK_OK(r.Recv("k", &value, &is_dead));
  EXPECT_FLOAT_EQ(*value.data<float>(), 7.0f);
  EXPECT_FALSE(is_dead);
}

TEST(RendezvousTest, RecvBeforeSendCompletesOnSend) {
  LocalRendezvous r;
  Tensor received;
  bool got = false;
  r.RecvAsync("k", [&](const Status& s, const Tensor& t, bool dead) {
    TF_CHECK_OK(s);
    received = t;
    got = true;
  });
  EXPECT_FALSE(got);
  TF_CHECK_OK(r.Send("k", Tensor::Scalar(1.0f), false));
  EXPECT_TRUE(got);
}

TEST(RendezvousTest, DeadnessBitCarried) {
  LocalRendezvous r;
  TF_CHECK_OK(r.Send("k", Tensor(), true));
  Tensor value;
  bool is_dead = false;
  TF_CHECK_OK(r.Recv("k", &value, &is_dead));
  EXPECT_TRUE(is_dead);
}

TEST(RendezvousTest, AbortUnblocksWaiters) {
  LocalRendezvous r;
  Status seen;
  r.RecvAsync("k", [&](const Status& s, const Tensor&, bool) { seen = s; });
  r.StartAbort(Aborted("step failed"));
  EXPECT_EQ(seen.code(), Code::kAborted);
  // Subsequent operations fail immediately.
  EXPECT_FALSE(r.Send("k2", Tensor::Scalar(1.0f), false).ok());
}

TEST(RendezvousTest, FifoPerKey) {
  LocalRendezvous r;
  TF_CHECK_OK(r.Send("k", Tensor::Scalar(1.0f), false));
  TF_CHECK_OK(r.Send("k", Tensor::Scalar(2.0f), false));
  Tensor v;
  bool dead;
  TF_CHECK_OK(r.Recv("k", &v, &dead));
  EXPECT_FLOAT_EQ(*v.data<float>(), 1.0f);
  TF_CHECK_OK(r.Recv("k", &v, &dead));
  EXPECT_FLOAT_EQ(*v.data<float>(), 2.0f);
}

TEST(CancellationTest, CallbacksFireOnCancel) {
  CancellationManager cm;
  bool fired = false;
  CancellationManager::Token token;
  ASSERT_TRUE(cm.RegisterCallback(&token, [&]() { fired = true; }));
  cm.StartCancel();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(cm.IsCancelled());
  // Post-cancel registration is refused.
  EXPECT_FALSE(cm.RegisterCallback(&token, []() {}));
}

TEST(CancellationTest, DeregisteredCallbackDoesNotFire) {
  CancellationManager cm;
  bool fired = false;
  CancellationManager::Token token;
  ASSERT_TRUE(cm.RegisterCallback(&token, [&]() { fired = true; }));
  cm.DeregisterCallback(token);
  cm.StartCancel();
  EXPECT_FALSE(fired);
}


TEST_F(PlacerPartitionTest, LoopSpanningDevicesRejected) {
  Graph g;
  GraphBuilder b(&g);
  Output x = Const(&b, 1.0f);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {x},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 5.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f))};
      });
  ASSERT_TRUE(exits.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(PlaceGraph(&g, device_ptrs_).ok());
  // Force one in-frame node onto the other device.
  for (Node* n : g.nodes()) {
    if (n->IsOp("Add")) {
      n->set_assigned_device(device_ptrs_[1]->name());
    }
  }
  Result<std::map<std::string, std::unique_ptr<Graph>>> parts =
      PartitionGraph(g);
  ASSERT_FALSE(parts.ok());
  EXPECT_EQ(parts.status().code(), Code::kUnimplemented);
  EXPECT_NE(parts.status().message().find("spans devices"),
            std::string::npos);
}

TEST(DotExportTest, EmitsClustersAndEdges) {
  Graph g;
  GraphBuilder b(&g);
  Output v;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    v = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "weights");
  }
  Output read = ops::Identity(&b, v);
  Node* group = ops::Group(&b, {read}, "done");
  (void)group;
  ASSERT_TRUE(b.ok());
  std::string dot = GraphToDot(g);
  EXPECT_NE(dot.find("digraph G"), std::string::npos);
  EXPECT_NE(dot.find("weights"), std::string::npos);
  EXPECT_NE(dot.find("cluster_"), std::string::npos);     // device cluster
  EXPECT_NE(dot.find("/job:ps/task:0"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);    // stateful Variable
  EXPECT_NE(dot.find("style=dashed"), std::string::npos); // control edge
}

TEST(SessionShapeValidationTest, CatchesMismatchAtCompileTime) {
  Graph g;
  GraphBuilder b(&g);
  Output a = ops::Placeholder(&b, DataType::kFloat, TensorShape({2, 3}), "a");
  Output w = ops::Placeholder(&b, DataType::kFloat, TensorShape({4, 5}), "w");
  Output p = ops::MatMul(&b, a, w);  // inner dims 3 vs 4: invalid
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  // No feeds: the placeholders keep their static shapes, so compilation
  // itself must reject the graph (fed tensors would lose static shapes —
  // their _Feed nodes are unknown-shaped — and fail at kernel time instead).
  Status s = session.value()->Run({p.name()}, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("shape inference"), std::string::npos)
      << s.message();
}

}  // namespace
}  // namespace tfrepro
