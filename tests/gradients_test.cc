// Tests for the autodiff library (§4.1), including numerical gradient
// checks: for each op we compare the symbolic gradient against a central
// finite difference computed through the same session.

#include "autodiff/gradients.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "graph/ops.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

// Builds y = f(x) for a placeholder x of `x_shape`, then checks
// d(sum(y))/dx against finite differences at `x0`.
void CheckGradient(
    const std::function<Output(GraphBuilder*, Output)>& f, Tensor x0,
    double tolerance = 2e-2) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, x0.shape(), "x");
  Output y = f(&b, x);
  Output loss = ops::SumAll(&b, y);
  std::vector<Output> grads;
  ASSERT_TRUE(AddGradients(&b, {loss}, {x}, {}, &grads).ok()) << b.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_TRUE(grads[0].valid());

  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok()) << session.status();

  auto eval_loss = [&](const Tensor& xv) -> float {
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({{"x", xv}}, {loss.name()}, {}, &out));
    return *out[0].data<float>();
  };

  std::vector<Tensor> out;
  ASSERT_TRUE(
      session.value()->Run({{"x", x0}}, {grads[0].name()}, {}, &out).ok());
  Tensor symbolic = out[0];
  ASSERT_EQ(symbolic.shape(), x0.shape());

  const float eps = 1e-2f;
  for (int64_t i = 0; i < x0.num_elements(); ++i) {
    Tensor xp = x0.Clone();
    Tensor xm = x0.Clone();
    xp.flat<float>(i) += eps;
    xm.flat<float>(i) -= eps;
    double numeric = (eval_loss(xp) - eval_loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(symbolic.flat<float>(i), numeric, tolerance)
        << "at element " << i;
  }
}

TEST(GradientsTest, Square) {
  CheckGradient([](GraphBuilder* b, Output x) { return ops::Square(b, x); },
                Tensor::Vec<float>({-1.5f, 0.5f, 2.0f}));
}

TEST(GradientsTest, ExpLog) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Log(b, ops::Exp(b, x));
      },
      Tensor::Vec<float>({-0.5f, 0.25f, 1.0f}));
}

TEST(GradientsTest, Sqrt) {
  CheckGradient([](GraphBuilder* b, Output x) { return ops::Sqrt(b, x); },
                Tensor::Vec<float>({0.5f, 1.0f, 4.0f}));
}

TEST(GradientsTest, Tanh) {
  CheckGradient([](GraphBuilder* b, Output x) { return ops::Tanh(b, x); },
                Tensor::Vec<float>({-1.0f, 0.0f, 0.7f}));
}

TEST(GradientsTest, Sigmoid) {
  CheckGradient([](GraphBuilder* b, Output x) { return ops::Sigmoid(b, x); },
                Tensor::Vec<float>({-2.0f, 0.1f, 1.5f}));
}

TEST(GradientsTest, Relu) {
  CheckGradient([](GraphBuilder* b, Output x) { return ops::Relu(b, x); },
                Tensor::Vec<float>({-1.0f, 0.5f, 2.0f}));
}

TEST(GradientsTest, MulWithConstant) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Mul(b, x, Const(b, Tensor::Vec<float>({2, 3, 4})));
      },
      Tensor::Vec<float>({1.0f, -1.0f, 0.5f}));
}

TEST(GradientsTest, DivByConstant) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Div(b, Const(b, Tensor::Vec<float>({1, 2, 3})), x);
      },
      Tensor::Vec<float>({1.0f, 2.0f, -1.5f}));
}

TEST(GradientsTest, BroadcastAddReducesGradient) {
  // x is a row vector broadcast over a matrix; gradient must sum over rows.
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output m = Const(b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                      TensorShape({2, 3})));
        return ops::Mul(b, ops::Add(b, m, x), ops::Add(b, m, x));
      },
      Tensor::Vec<float>({0.5f, -0.5f, 1.0f}));
}

TEST(GradientsTest, ScalarBroadcastMul) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output m = Const(b, Tensor::FromVector<float>({1, 2, 3, 4},
                                                      TensorShape({2, 2})));
        return ops::Mul(b, x, m);  // x scalar
      },
      Tensor::Scalar(1.5f));
}

TEST(GradientsTest, MatMul) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output w = Const(b, Tensor::FromVector<float>({1, -2, 3, 0.5f, 1, -1},
                                                      TensorShape({3, 2})));
        return ops::MatMul(b, x, w);
      },
      Tensor::FromVector<float>({1, 2, 3, 4, 5, 6}, TensorShape({2, 3})));
}

TEST(GradientsTest, MatMulTransposed) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output w = Const(b, Tensor::FromVector<float>({1, -2, 3, 0.5f, 1, -1},
                                                      TensorShape({2, 3})));
        return ops::MatMul(b, x, w, /*ta=*/false, /*tb=*/true);
      },
      Tensor::FromVector<float>({1, 2, 3, 4, 5, 6}, TensorShape({2, 3})));
}

TEST(GradientsTest, BiasAdd) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output m = Const(b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                      TensorShape({2, 3})));
        return ops::Square(b, ops::BiasAdd(b, m, x));
      },
      Tensor::Vec<float>({0.1f, -0.2f, 0.3f}));
}

TEST(GradientsTest, SumReduction) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Square(b, ops::Sum(b, x, ops::ConstVecI32(b, {0})));
      },
      Tensor::FromVector<float>({1, 2, 3, 4, 5, 6}, TensorShape({2, 3})));
}

TEST(GradientsTest, MeanReduction) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Square(b, ops::MeanAll(b, x));
      },
      Tensor::FromVector<float>({1, 2, 3, 4}, TensorShape({2, 2})));
}

TEST(GradientsTest, MaxReduction) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::MaxReduce(b, x, ops::ConstVecI32(b, {0}));
      },
      Tensor::FromVector<float>({1, 5, 3, 4, 2, 6}, TensorShape({2, 3})));
}

TEST(GradientsTest, ReshapeAndConcat) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output r = ops::Reshape(b, x, {2, 2});
        Output c = ops::Concat(b, 1, {r, r});
        return ops::Square(b, c);
      },
      Tensor::Vec<float>({1, 2, 3, 4}));
}

TEST(GradientsTest, ConcatUnequalSizes) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output other = Const(b, Tensor::FromVector<float>({10, 20},
                                                          TensorShape({2, 1})));
        Output r = ops::Reshape(b, x, {2, 2});
        Output c = ops::Concat(b, 1, {r, other});
        return ops::Square(b, c);
      },
      Tensor::Vec<float>({1, 2, 3, 4}));
}

TEST(GradientsTest, SliceGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Square(b, ops::Slice(b, x, {1}, {2}));
      },
      Tensor::Vec<float>({1, 2, 3, 4}));
}

TEST(GradientsTest, TransposeGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Square(b, ops::Transpose(b, x, {1, 0}));
      },
      Tensor::FromVector<float>({1, 2, 3, 4, 5, 6}, TensorShape({2, 3})));
}

TEST(GradientsTest, GatherGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output idx = Const(b, Tensor::Vec<int32_t>({2, 0, 2}));
        return ops::Square(b, ops::Gather(b, x, idx));
      },
      Tensor::FromVector<float>({1, 2, 3, 4, 5, 6}, TensorShape({3, 2})));
}

TEST(GradientsTest, PackUnpackGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        std::vector<Output> parts = ops::Unpack(b, x, 2, 0);
        return ops::Square(b, ops::Pack(b, {parts[1], parts[0]}, 0));
      },
      Tensor::FromVector<float>({1, 2, 3, 4}, TensorShape({2, 2})));
}

TEST(GradientsTest, DynamicPartitionStitchGrad) {
  // The embedding-layer routing of Figure 3 is differentiable end-to-end.
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output parts_spec = Const(b, Tensor::Vec<int32_t>({0, 1, 0, 1}));
        std::vector<Output> parts =
            ops::DynamicPartition(b, x, parts_spec, 2);
        Output doubled = ops::Mul(b, parts[1], Const(b, 2.0f));
        Output positions = ops::Range(b, Const(b, int32_t{0}),
                                      Const(b, int32_t{4}),
                                      Const(b, int32_t{1}));
        std::vector<Output> pos_parts =
            ops::DynamicPartition(b, positions, parts_spec, 2);
        Output stitched = ops::DynamicStitch(b, pos_parts, {parts[0], doubled});
        return ops::Square(b, stitched);
      },
      Tensor::Vec<float>({1, 2, 3, 4}));
}

TEST(GradientsTest, SoftmaxGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output weights = Const(b, Tensor::FromVector<float>(
                                      {3, 1, -1, 2, 1, 1}, TensorShape({2, 3})));
        return ops::Mul(b, ops::Softmax(b, x), weights);
      },
      Tensor::FromVector<float>({0.5f, -0.5f, 1.0f, 0.1f, 0.2f, 0.3f},
                                TensorShape({2, 3})));
}

TEST(GradientsTest, SoftmaxCrossEntropyGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output labels = Const(b, Tensor::FromVector<float>(
                                     {1, 0, 0, 0, 0.5f, 0.5f},
                                     TensorShape({2, 3})));
        Node* xent = ops::SoftmaxCrossEntropyWithLogits(b, x, labels);
        return Output(xent, 0);
      },
      Tensor::FromVector<float>({0.5f, -0.5f, 1.0f, 0.1f, 0.2f, 0.3f},
                                TensorShape({2, 3})));
}

TEST(GradientsTest, SparseSoftmaxCrossEntropyGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Output labels = Const(b, Tensor::Vec<int64_t>({2, 0}));
        Node* xent = ops::SparseSoftmaxCrossEntropyWithLogits(b, x, labels);
        return Output(xent, 0);
      },
      Tensor::FromVector<float>({0.5f, -0.5f, 1.0f, 0.1f, 0.2f, 0.3f},
                                TensorShape({2, 3})));
}

TEST(GradientsTest, Conv2DGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        Tensor filter(DataType::kFloat, TensorShape({2, 2, 1, 2}));
        for (int i = 0; i < 8; ++i) filter.flat<float>(i) = 0.1f * (i - 3);
        return ops::Conv2D(b, x, Const(b, filter), {1, 1, 1, 1}, "SAME");
      },
      Tensor::FromVector<float>({1, 2, 3, 4, 5, 6, 7, 8, 9},
                                TensorShape({1, 3, 3, 1})),
      5e-2);
}

TEST(GradientsTest, MaxPoolGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::MaxPool(b, x, {1, 2, 2, 1}, {1, 2, 2, 1}, "VALID");
      },
      Tensor::FromVector<float>({1, 5, 2, 6, 3, 7, 4, 8, 11, 15, 12, 16, 13,
                                 17, 14, 18},
                                TensorShape({1, 4, 4, 1})));
}

TEST(GradientsTest, AvgPoolGrad) {
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Square(
            b, ops::AvgPool(b, x, {1, 2, 2, 1}, {1, 2, 2, 1}, "VALID"));
      },
      Tensor::FromVector<float>({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                 14, 15, 16},
                                TensorShape({1, 4, 4, 1})));
}

TEST(GradientsTest, ChainAccumulatesMultiplePaths) {
  // y = x*x + x*3: two paths contribute, gradients must sum (paper §4.1:
  // "sums the partial gradients that each path contributes").
  CheckGradient(
      [](GraphBuilder* b, Output x) {
        return ops::Add(b, ops::Mul(b, x, x), ops::Mul(b, x, Const(b, 3.0f)));
      },
      Tensor::Vec<float>({1.0f, -2.0f}));
}

TEST(GradientsTest, StopGradientBlocksFlow) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output y = ops::Mul(&b, ops::StopGradient(&b, x), x);
  std::vector<Output> grads;
  ASSERT_TRUE(AddGradients(&b, {y}, {x}, {}, &grads).ok());
  // Only the non-stopped path contributes: dy/dx = stop(x) = x (not 2x).
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()
                  ->Run({{"x", Tensor::Scalar(3.0f)}}, {grads[0].name()}, {},
                        &out)
                  .ok());
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 3.0f);
}

TEST(GradientsTest, UnconnectedXGetsInvalidGradient) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output z = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "z");
  Output y = ops::Square(&b, x);
  std::vector<Output> grads;
  ASSERT_TRUE(AddGradients(&b, {y}, {x, z}, {}, &grads).ok());
  EXPECT_TRUE(grads[0].valid());
  EXPECT_FALSE(grads[1].valid());
}

TEST(GradientsTest, MissingGradientReportsOp) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({2}), "x");
  // Sign has no registered gradient; it must be reported by name if on path.
  Output y = b.Op("Floor").Input(x).Attr("T", DataType::kFloat).Finalize();
  std::vector<Output> grads;
  Status s = AddGradients(&b, {y}, {x}, {}, &grads);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Floor"), std::string::npos);
}

TEST(GradientsTest, ControlFlowRejected) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output pred = Const(&b, Tensor::Scalar(true));
  Node* sw = ops::Switch(&b, x, pred);
  Node* merge = ops::Merge(&b, {Output(sw, 0), Output(sw, 1)});
  std::vector<Output> grads;
  Status s = AddGradients(&b, {Output(merge, 0)}, {x}, {}, &grads);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kUnimplemented);
}

TEST(GradientsTest, ClipByGlobalNorm) {
  Graph g;
  GraphBuilder b(&g);
  Output g1 = Const(&b, Tensor::Vec<float>({3, 0}));
  Output g2 = Const(&b, Tensor::Vec<float>({0, 4}));
  std::vector<Output> clipped;
  Output global_norm;
  ASSERT_TRUE(
      ClipByGlobalNorm(&b, {g1, g2}, 2.5f, &clipped, &global_norm).ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()
                  ->Run({global_norm.name(), clipped[0].name(),
                         clipped[1].name()},
                        &out)
                  .ok());
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 5.0f);  // sqrt(9+16)
  EXPECT_FLOAT_EQ(out[1].flat<float>(0), 1.5f);  // 3 * 2.5/5
  EXPECT_FLOAT_EQ(out[2].flat<float>(1), 2.0f);  // 4 * 2.5/5
}

TEST(GradientsTest, ClipBelowNormIsIdentity) {
  Graph g;
  GraphBuilder b(&g);
  Output g1 = Const(&b, Tensor::Vec<float>({0.3f, 0.4f}));
  std::vector<Output> clipped;
  ASSERT_TRUE(ClipByGlobalNorm(&b, {g1}, 10.0f, &clipped).ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({clipped[0].name()}, &out).ok());
  EXPECT_FLOAT_EQ(out[0].flat<float>(0), 0.3f);
  EXPECT_FLOAT_EQ(out[0].flat<float>(1), 0.4f);
}

}  // namespace
}  // namespace tfrepro
