// Tests for the discrete-event substrate and the cluster simulator:
// correctness of the event loop, fair sharing, service queueing, and the
// qualitative properties the paper's figures rest on (contention grows with
// workers, sync waits on stragglers, backup workers trim the tail).

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sim/cost_model.h"
#include "sim/des.h"

namespace tfrepro {
namespace sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(2.0, [&]() { order.push_back(2); });
  sim.At(1.0, [&]() { order.push_back(1); });
  sim.At(3.0, [&]() { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  double fired_at = -1;
  sim.At(1.0, [&]() {
    sim.After(0.5, [&]() { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(ServiceQueueTest, JobsSerialize) {
  Simulator sim;
  ServiceQueue queue(&sim);
  std::vector<double> done_times;
  for (int i = 0; i < 3; ++i) {
    queue.Enqueue(1.0, [&]() { done_times.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(done_times.size(), 3u);
  EXPECT_DOUBLE_EQ(done_times[0], 1.0);
  EXPECT_DOUBLE_EQ(done_times[1], 2.0);
  EXPECT_DOUBLE_EQ(done_times[2], 3.0);
}

TEST(NetSimTest, SingleFlowTakesBytesOverBandwidth) {
  Simulator sim;
  NetSim net(&sim);
  int a = net.AddTask(100.0, 100.0);
  int b = net.AddTask(100.0, 100.0);
  double done = -1;
  net.Transfer(a, b, 200.0, /*latency=*/0.5, [&]() { done = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done, 0.5 + 2.0, 1e-9);
}

TEST(NetSimTest, TwoFlowsShareTheSenderNic) {
  Simulator sim;
  NetSim net(&sim);
  int a = net.AddTask(100.0, 1e9);
  int b = net.AddTask(1e9, 1e9);
  int c = net.AddTask(1e9, 1e9);
  std::vector<double> done;
  net.Transfer(a, b, 100.0, 0, [&]() { done.push_back(sim.Now()); });
  net.Transfer(a, c, 100.0, 0, [&]() { done.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  // Each flow gets 50 B/s, so both finish at t=2.
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST(NetSimTest, ReceiverContentionReleasesBandwidth) {
  Simulator sim;
  NetSim net(&sim);
  int a = net.AddTask(1e9, 1e9);
  int b = net.AddTask(1e9, 1e9);
  int c = net.AddTask(1e9, 100.0);  // rx bottleneck
  std::vector<double> done;
  net.Transfer(a, c, 100.0, 0, [&]() { done.push_back(sim.Now()); });
  net.Transfer(b, c, 300.0, 0, [&]() { done.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  // Both at 50 B/s until the short one ends at t=2 (100B); the long one has
  // 200B left, then runs at 100 B/s: ends at t=4.
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 4.0, 1e-6);
}

TEST(LogNormalTest, MedianApproximatelyCorrect) {
  LogNormal dist(2.0, 0.3, 42);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(dist.Sample());
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[2000], 2.0, 0.1);
  // All positive.
  EXPECT_GT(samples.front(), 0.0);
}

TEST(ClusterSimTest, AsyncThroughputScalesUntilPsSaturates) {
  // With tiny transfers, doubling workers should nearly double aggregate
  // steps/sec; with PS-bound transfers, it should not.
  ClusterConfig config;
  config.num_ps = 2;
  config.fetch_bytes = 1e3;
  config.push_bytes = 1e3;
  config.compute_median_seconds = 0.01;
  config.mode = ClusterConfig::Mode::kAsync;

  config.num_workers = 1;
  double rate1 = SimulateCluster(config, 40).steps_per_second;
  config.num_workers = 4;
  double rate4 = SimulateCluster(config, 40).steps_per_second;
  EXPECT_GT(rate4, rate1 * 3.0);

  // Saturate the PS NICs with big transfers.
  config.fetch_bytes = 50e6;
  config.push_bytes = 50e6;
  config.num_workers = 1;
  double big1 = SimulateCluster(config, 10).steps_per_second;
  config.num_workers = 16;
  double big16 = SimulateCluster(config, 10).steps_per_second;
  EXPECT_LT(big16, big1 * 8.0);  // clearly sublinear under contention
}

TEST(ClusterSimTest, SyncStepBoundByStraggler) {
  ClusterConfig config;
  config.num_workers = 20;
  config.num_ps = 4;
  config.fetch_bytes = 1e3;
  config.push_bytes = 1e3;
  config.compute_median_seconds = 1.0;
  config.compute_sigma = 0.3;
  config.mode = ClusterConfig::Mode::kSync;
  ClusterStats stats = SimulateCluster(config, 30);
  ASSERT_EQ(stats.step_seconds.size(), 30u);
  // A sync step waits for the slowest of 20 log-normal computes: the median
  // step must be clearly above the median single-worker compute.
  EXPECT_GT(stats.Median(), 1.25);
}

TEST(ClusterSimTest, BackupWorkersReduceMedianStep) {
  ClusterConfig config;
  config.num_ps = 4;
  config.fetch_bytes = 1e4;
  config.push_bytes = 1e4;
  config.compute_median_seconds = 1.0;
  config.compute_sigma = 0.3;
  config.mode = ClusterConfig::Mode::kSync;

  config.num_workers = 20;
  config.backup_workers = 0;
  double no_backup = SimulateCluster(config, 40).Median();
  config.num_workers = 22;  // same required m = 20, 2 backups
  config.backup_workers = 2;
  double with_backup = SimulateCluster(config, 40).Median();
  EXPECT_LT(with_backup, no_backup);
}

TEST(ClusterSimTest, AsyncFasterPerStepThanSync) {
  ClusterConfig config;
  config.num_workers = 25;
  config.num_ps = 8;
  config.fetch_bytes = 1e6;
  config.push_bytes = 1e6;
  config.compute_median_seconds = 0.5;
  config.compute_sigma = 0.25;

  config.mode = ClusterConfig::Mode::kAsync;
  double async_median = SimulateCluster(config, 30).Median();
  config.mode = ClusterConfig::Mode::kSync;
  double sync_median = SimulateCluster(config, 30).Median();
  // §6.3: "synchronous steps are longer than asynchronous steps, because
  // all workers must wait for the slowest".
  EXPECT_GT(sync_median, async_median);
}

TEST(ClusterSimTest, PsComputeOffloadParallelizesAcrossPs) {
  // Fig 9 shape: adding PS tasks raises throughput when the offloaded
  // (softmax) work dominates.
  ClusterConfig config;
  config.num_workers = 8;
  config.fetch_bytes = 1e4;
  config.push_bytes = 1e4;
  config.compute_median_seconds = 0.05;
  config.ps_compute_seconds_per_step = 2.0;
  config.mode = ClusterConfig::Mode::kAsync;

  config.num_ps = 1;
  double one_ps = SimulateCluster(config, 10).steps_per_second;
  config.num_ps = 8;
  double eight_ps = SimulateCluster(config, 10).steps_per_second;
  EXPECT_GT(eight_ps, one_ps * 4.0);
}

TEST(ClusterSimTest, DeterministicUnderSeed) {
  ClusterConfig config;
  config.num_workers = 5;
  config.num_ps = 2;
  config.fetch_bytes = 1e5;
  config.push_bytes = 1e5;
  config.compute_median_seconds = 0.1;
  config.seed = 99;
  ClusterStats a = SimulateCluster(config, 20);
  ClusterStats b = SimulateCluster(config, 20);
  ASSERT_EQ(a.step_seconds.size(), b.step_seconds.size());
  for (size_t i = 0; i < a.step_seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.step_seconds[i], b.step_seconds[i]);
  }
}


TEST(ClusterSimTest, Figure6CalibrationInvariants) {
  // The §6.2 relationships the calibrated substrate must preserve at any
  // parameter setting: scalar < sparse < dense step times; dense 1GB about
  // 10x dense 100MB; sparse independent of table size by construction.
  auto run = [](double bytes, int workers) {
    ClusterConfig config;
    config.num_workers = workers;
    config.num_ps = 16;
    config.mode = ClusterConfig::Mode::kSync;
    config.compute_median_seconds = 50e-6;
    config.fetch_bytes = bytes;
    config.push_bytes = bytes;
    config.seed = 3;
    return SimulateCluster(config, 8).Median();
  };
  double scalar = run(16 * 4.0, 1);
  double sparse = run(32 * 2048 * 4.0, 1);
  double dense100 = run(100e6, 1);
  double dense1g = run(1e9, 1);
  EXPECT_LT(scalar, sparse);
  EXPECT_LT(sparse, dense100);
  EXPECT_LT(dense100, dense1g);
  EXPECT_NEAR(dense1g / dense100, 10.0, 3.0);

  // Contention: 100 workers push the scalar step into the milliseconds.
  double scalar100 = run(16 * 4.0, 100);
  EXPECT_GT(scalar100, scalar * 2);
  EXPECT_LT(scalar100, 0.05);  // still milliseconds, not seconds
}

TEST(ClusterSimTest, StragglerMixtureWidensTail) {
  ClusterConfig config;
  config.num_workers = 30;
  config.num_ps = 4;
  config.fetch_bytes = 1e4;
  config.push_bytes = 1e4;
  config.compute_median_seconds = 1.0;
  config.compute_sigma = 0.05;
  config.mode = ClusterConfig::Mode::kAsync;
  config.seed = 21;
  ClusterStats clean = SimulateCluster(config, 20);
  config.straggler_prob = 0.05;
  config.straggler_factor = 3.0;
  ClusterStats heavy = SimulateCluster(config, 20);
  // Median barely moves; p99 blows up.
  EXPECT_LT(heavy.Percentile(50), clean.Percentile(50) * 1.3);
  EXPECT_GT(heavy.Percentile(99), clean.Percentile(99) * 1.8);
}

TEST(CostModelTest, TensorFlowMatchesTorchAndBeatsCaffe) {
  // The Table 1 relationships (§6.1).
  auto device = TitanX();
  for (auto model : {nn::AlexNet(128), nn::Overfeat(128), nn::OxfordNet(64),
                     nn::GoogleNet(128)}) {
    double tf = TrainingStepSeconds(model, device, TensorFlowProfile());
    double torch = TrainingStepSeconds(model, device, TorchProfile());
    double caffe = TrainingStepSeconds(model, device, CaffeProfile());
    EXPECT_NEAR(tf / torch, 1.0, 0.15) << model.name;
    EXPECT_GT(caffe / tf, 2.0) << model.name;
  }
}

TEST(CostModelTest, NeonFastestOnBigConvModels) {
  auto device = TitanX();
  for (auto model : {nn::Overfeat(128), nn::OxfordNet(64), nn::GoogleNet(128)}) {
    double tf = TrainingStepSeconds(model, device, TensorFlowProfile());
    double neon = TrainingStepSeconds(model, device, NeonProfile());
    EXPECT_LT(neon, tf) << model.name;
  }
}

TEST(CostModelTest, AbsoluteStepTimesNearPaper) {
  // Within ~35% of the published Table 1 TensorFlow column.
  auto device = TitanX();
  auto tf = TensorFlowProfile();
  EXPECT_NEAR(TrainingStepSeconds(nn::AlexNet(128), device, tf), 0.081,
              0.081 * 0.35);
  EXPECT_NEAR(TrainingStepSeconds(nn::Overfeat(128), device, tf), 0.279,
              0.279 * 0.35);
  EXPECT_NEAR(TrainingStepSeconds(nn::OxfordNet(64), device, tf), 0.540,
              0.540 * 0.35);
  EXPECT_NEAR(TrainingStepSeconds(nn::GoogleNet(128), device, tf), 0.445,
              0.445 * 0.35);
}

TEST(CostModelTest, ForwardCheaperThanTraining) {
  auto model = nn::AlexNet(128);
  auto device = TitanX();
  auto tf = TensorFlowProfile();
  EXPECT_NEAR(TrainingStepSeconds(model, device, tf) /
                  ForwardStepSeconds(model, device, tf),
              3.0, 1e-9);
}

}  // namespace
}  // namespace sim
}  // namespace tfrepro
