// Error-handling and cancellation tests for the executor and session:
// kernel failures must abort the step promptly (unblocking pending
// Recv/queue waits instead of hanging), and subsequent steps must work.

#include <gtest/gtest.h>

#include <thread>

#include "graph/control_flow_builder.h"
#include "graph/ops.h"
#include "runtime/executor.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

TEST(ExecutorErrorTest, KernelErrorAbortsPendingRecvInSameStep) {
  // Two devices: device 1 computes a failing op whose result device 0
  // awaits via Recv. The failure must abort the step's rendezvous so the
  // Recv unblocks; the step returns the original error.
  Graph g;
  GraphBuilder b(&g);
  Output bad_a, bad_b;
  {
    GraphBuilder::DeviceScope scope(&b, "/device:CPU:1");
    // Runtime failure: MatMul inner-dim mismatch (disable shape validation
    // to let it reach execution).
    bad_a = Const(&b, Tensor::FromVector<float>({1, 2}, TensorShape({1, 2})));
    bad_b = Const(&b, Tensor::FromVector<float>({1, 2, 3}, TensorShape({1, 3})));
  }
  Output bad;
  {
    GraphBuilder::DeviceScope scope(&b, "/device:CPU:1");
    bad = ops::MatMul(&b, bad_a, bad_b);
  }
  Output consume;
  {
    GraphBuilder::DeviceScope scope(&b, "/device:CPU:0");
    consume = ops::SumAll(&b, bad);  // forces a cross-device Recv
  }
  ASSERT_TRUE(b.ok()) << b.status();
  SessionOptions options;
  options.num_devices = 2;
  options.validate_shapes = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  Status s = session.value()->Run({consume.name()}, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("MatMul"), std::string::npos);
}

TEST(ExecutorErrorTest, StepErrorCancelsPendingDequeue) {
  // A step that both dequeues from an empty queue and runs a failing op:
  // the cancellation manager must abort the blocked dequeue so the step
  // finishes with the kernel's error instead of hanging.
  Graph g;
  GraphBuilder b(&g);
  Output q = ops::FIFOQueue(&b, {DataType::kFloat}, 4);
  std::vector<Output> dq = ops::QueueDequeue(&b, q, {DataType::kFloat});
  Output bad = ops::MatMul(
      &b, Const(&b, Tensor::FromVector<float>({1, 2}, TensorShape({1, 2}))),
      Const(&b, Tensor::FromVector<float>({1, 2, 3}, TensorShape({1, 3}))));
  Output sum = ops::Add(&b, dq[0], ops::SumAll(&b, bad));
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.validate_shapes = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  Status s = session.value()->Run({sum.name()}, &out);
  EXPECT_FALSE(s.ok());  // and, crucially, it returned at all
}

TEST(ExecutorErrorTest, SessionUsableAfterFailedStep) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output ok_out = ops::Square(&b, x);
  Output bad = ops::MatMul(
      &b, Const(&b, Tensor::FromVector<float>({1, 2}, TensorShape({1, 2}))),
      Const(&b, Tensor::FromVector<float>({1, 2, 3}, TensorShape({1, 3}))));
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.validate_shapes = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  EXPECT_FALSE(session.value()->Run({bad.name()}, &out).ok());
  // The failure is step-local: the next step succeeds.
  TF_CHECK_OK(session.value()->Run({{"x", Tensor::Scalar(3.0f)}},
                                   {ok_out.name()}, {}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 9.0f);
}

TEST(ExecutorErrorTest, FirstErrorWinsWithMultipleFailures) {
  Graph g;
  GraphBuilder b(&g);
  std::vector<Output> bads;
  for (int i = 0; i < 4; ++i) {
    Output bad = ops::MatMul(
        &b, Const(&b, Tensor::FromVector<float>({1, 2}, TensorShape({1, 2}))),
        Const(&b, Tensor::FromVector<float>({float(i), 2, 3},
                                            TensorShape({1, 3}))));
    bads.push_back(ops::SumAll(&b, bad));
  }
  Output total = ops::AddN(&b, bads);
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.validate_shapes = false;
  options.optimizer.do_cse = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  Status s = session.value()->Run({total.name()}, &out);
  EXPECT_FALSE(s.ok());
  // Exactly one coherent error message (no concatenated garbage).
  EXPECT_NE(s.message().find("MatMul"), std::string::npos);
}

TEST(ExecutorErrorTest, MissingKernelReportedAtExecutorCreation) {
  // An op with a schema but no registered CPU kernel fails at compile.
  Status reg = OpRegistry::Global()->Register(
      OpDefBuilder("KernellessOp").Output("out: float").Build().value());
  // (Ignore AlreadyExists when the test re-runs within one process.)
  (void)reg;
  Graph g;
  GraphBuilder b(&g);
  Output o = b.Op("KernellessOp").Finalize();
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  Status s = session.value()->Run({o.name()}, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no kernel"), std::string::npos);
}

TEST(ExecutorErrorTest, ConcurrentFailingAndSucceedingSteps) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output good = ops::Square(&b, x);
  Output bad = ops::MatMul(
      &b, Const(&b, Tensor::FromVector<float>({1, 2}, TensorShape({1, 2}))),
      Const(&b, Tensor::FromVector<float>({1, 2, 3}, TensorShape({1, 3}))));
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.validate_shapes = false;
  auto session = DirectSession::Create(g, options);
  DirectSession* sess = session.value().get();

  std::thread failing([&]() {
    for (int i = 0; i < 20; ++i) {
      std::vector<Tensor> out;
      EXPECT_FALSE(sess->Run({bad.name()}, &out).ok());
    }
  });
  std::thread succeeding([&]() {
    for (int i = 0; i < 20; ++i) {
      std::vector<Tensor> out;
      TF_CHECK_OK(sess->Run({{"x", Tensor::Scalar(2.0f)}}, {good.name()}, {},
                            &out));
      EXPECT_FLOAT_EQ(*out[0].data<float>(), 4.0f);
    }
  });
  failing.join();
  succeeding.join();
}

TEST(ExecutorErrorTest, DeepGraphCompletesWithoutStackOverflow) {
  // 50k-node chain: the executor must iterate, not recurse.
  Graph g;
  GraphBuilder b(&g);
  Output v = Const(&b, 1.0f);
  for (int i = 0; i < 50000; ++i) {
    v = ops::Identity(&b, v);
  }
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.optimizer.do_constant_folding = false;
  options.optimizer.do_cse = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({v.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 1.0f);
}

TEST(ExecutorErrorTest, ZeroOutputDeadNodePropagatesDeadnessCleanly) {
  // A zero-output node (NoOp) inside an untaken Cond branch: its dead
  // execution sizes the outputs vector as max(1, num_outputs) = 1, a
  // phantom slot that must never be delivered anywhere — the node has only
  // control out-edges, and DeliverToEdges asserts data edges always index a
  // real output. Deadness must still flow through the NoOp's control edge
  // so the downstream branch value dies and the merge picks the taken side.
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        Output doubled = ops::Mul(b, in[0], Const(b, 2.0f));
        // NoOp is dead via the control edge from `doubled` when the branch
        // is untaken; its deadness must reach `gated` the same way.
        Node* noop = b->Op("NoOp").ControlInput(doubled.node).FinalizeNode();
        Output gated = b->Op("Identity")
                           .Input(doubled)
                           .ControlInput(noop)
                           .Attr("T", DataType::kFloat)
                           .Finalize();
        return std::vector<Output>{gated};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Neg(b, in[0])};
      });
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_TRUE(b.ok()) << b.status();
  SessionOptions options;
  options.optimizer.do_cse = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  // Taken branch: the live NoOp executes with zero outputs.
  TF_CHECK_OK(session.value()->Run(
      {{"pred", Tensor::Scalar(true)}, {"x", Tensor::Scalar(5.0f)}},
      {results.value()[0].name()}, {}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 10.0f);
  // Untaken branch: the dead NoOp propagates deadness, no phantom writes.
  TF_CHECK_OK(session.value()->Run(
      {{"pred", Tensor::Scalar(false)}, {"x", Tensor::Scalar(5.0f)}},
      {results.value()[0].name()}, {}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), -5.0f);
}

}  // namespace
}  // namespace tfrepro
