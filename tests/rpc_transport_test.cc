// Unit tests for the socket transport pieces (DESIGN.md §11): wire body
// helpers, frame I/O, minimal-copy tensor serialization, the errno→Status
// mapping the retry machinery depends on, and the RpcChannel robustness
// contract (deadlines, reconnect with backoff, fail-fast inside the
// backoff window, pending-call teardown).

#include <gtest/gtest.h>

#include <cerrno>
#include <unistd.h>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/status.h"
#include "core/tensor.h"
#include "distributed/rpc/rpc_channel.h"
#include "distributed/rpc/rpc_server.h"
#include "distributed/rpc/wire.h"

namespace tfrepro {
namespace distributed {
namespace rpc {
namespace {

// --- body helpers ---

TEST(WireBodyTest, Int64RoundTrip) {
  std::string body;
  AppendInt64(&body, 0);
  AppendInt64(&body, -1);
  AppendInt64(&body, INT64_MAX);
  AppendInt64(&body, INT64_MIN);
  size_t offset = 0;
  int64_t v = 0;
  ASSERT_TRUE(ReadInt64(body, &offset, &v));
  EXPECT_EQ(v, 0);
  ASSERT_TRUE(ReadInt64(body, &offset, &v));
  EXPECT_EQ(v, -1);
  ASSERT_TRUE(ReadInt64(body, &offset, &v));
  EXPECT_EQ(v, INT64_MAX);
  ASSERT_TRUE(ReadInt64(body, &offset, &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_EQ(offset, body.size());
  EXPECT_FALSE(ReadInt64(body, &offset, &v));  // exhausted
}

TEST(WireBodyTest, StringRoundTripIncludingEmbeddedNul) {
  std::string body;
  AppendString(&body, "");
  AppendString(&body, std::string("a\0b", 3));
  size_t offset = 0;
  std::string s;
  ASSERT_TRUE(ReadString(body, &offset, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(ReadString(body, &offset, &s));
  EXPECT_EQ(s, std::string("a\0b", 3));
  EXPECT_EQ(offset, body.size());
}

TEST(WireBodyTest, StatusRoundTrip) {
  std::string body;
  AppendStatus(&body, Status::OK());
  AppendStatus(&body, Unavailable("task died"));
  size_t offset = 0;
  Status s = Internal("unset");
  ASSERT_TRUE(ReadStatus(body, &offset, &s));
  EXPECT_TRUE(s.ok());
  ASSERT_TRUE(ReadStatus(body, &offset, &s));
  EXPECT_EQ(s.code(), Code::kUnavailable);
  EXPECT_EQ(s.message(), "task died");
}

TEST(WireBodyTest, TruncatedReadsFailCleanly) {
  std::string body;
  AppendString(&body, "hello");
  for (size_t cut = 0; cut < body.size(); ++cut) {
    std::string truncated = body.substr(0, cut);
    size_t offset = 0;
    std::string s;
    EXPECT_FALSE(ReadString(truncated, &offset, &s)) << "cut at " << cut;
  }
}

// --- errno mapping (one expectation per mapping the channel relies on) ---

TEST(ErrnoStatusTest, DeadPeerErrnosAreRetryableUnavailable) {
  for (int err : {ECONNRESET, EPIPE, ECONNREFUSED, ECONNABORTED, ENETDOWN,
                  ENETUNREACH, ENETRESET, EHOSTDOWN, EHOSTUNREACH,
                  ESHUTDOWN}) {
    Status s = StatusFromErrno(err, "write");
    EXPECT_EQ(s.code(), Code::kUnavailable) << "errno " << err;
    EXPECT_TRUE(s.IsRetryable()) << "errno " << err;
  }
}

TEST(ErrnoStatusTest, PeerClosedWithoutErrnoIsRetryable) {
  Status s = StatusFromErrno(0, "read");
  EXPECT_EQ(s.code(), Code::kUnavailable);
  EXPECT_TRUE(s.IsRetryable());
}

TEST(ErrnoStatusTest, TimeoutIsRetryableDeadlineExceeded) {
  Status s = StatusFromErrno(ETIMEDOUT, "connect");
  EXPECT_EQ(s.code(), Code::kDeadlineExceeded);
  EXPECT_TRUE(s.IsRetryable());
}

TEST(ErrnoStatusTest, ProgrammerErrorsAreNotRetryable) {
  EXPECT_EQ(StatusFromErrno(EINVAL, "x").code(), Code::kInvalidArgument);
  EXPECT_EQ(StatusFromErrno(EBADF, "x").code(), Code::kInvalidArgument);
  EXPECT_FALSE(StatusFromErrno(EBADF, "x").IsRetryable());
}

TEST(ErrnoStatusTest, PermissionAndResourceMappings) {
  EXPECT_EQ(StatusFromErrno(EACCES, "x").code(), Code::kPermissionDenied);
  EXPECT_EQ(StatusFromErrno(EPERM, "x").code(), Code::kPermissionDenied);
  EXPECT_EQ(StatusFromErrno(EADDRINUSE, "x").code(), Code::kAlreadyExists);
  EXPECT_EQ(StatusFromErrno(EMFILE, "x").code(), Code::kResourceExhausted);
  EXPECT_EQ(StatusFromErrno(ENOMEM, "x").code(), Code::kResourceExhausted);
}

TEST(ErrnoStatusTest, UnknownErrnoIsInternalWithContext) {
  Status s = StatusFromErrno(EILSEQ, "decode");
  EXPECT_EQ(s.code(), Code::kInternal);
  EXPECT_NE(s.message().find("decode"), std::string::npos);
  EXPECT_NE(s.message().find(std::to_string(EILSEQ)), std::string::npos);
}

// --- tensor serialization: AppendTensorMeta body+payload must concatenate
// to exactly AppendToBytes output, for every dtype ---

void ExpectTensorsEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.dtype(), b.dtype());
  ASSERT_EQ(a.shape().DebugString(), b.shape().DebugString());
  if (a.dtype() == DataType::kString) {
    for (int64_t i = 0; i < a.num_elements(); ++i) {
      EXPECT_EQ(a.str(i), b.str(i)) << "string element " << i;
    }
    return;
  }
  ASSERT_EQ(a.TotalBytes(), b.TotalBytes());
  EXPECT_EQ(0, std::memcmp(a.raw_data(), b.raw_data(), a.TotalBytes()));
}

Tensor RoundTripViaMeta(const Tensor& t) {
  std::string body;
  const char* payload = nullptr;
  size_t payload_len = 0;
  AppendTensorMeta(t, &body, &payload, &payload_len);
  if (payload != nullptr) body.append(payload, payload_len);

  // The concatenation must be byte-identical to AppendToBytes, the format
  // checkpoints already use.
  std::string reference;
  t.AppendToBytes(&reference);
  EXPECT_EQ(body, reference);

  size_t offset = 0;
  auto parsed = Tensor::ParseFromBytes(body, &offset);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(offset, body.size());
  return parsed.ok() ? parsed.value() : Tensor();
}

TEST(TensorWireTest, AllPodDtypesRoundTrip) {
  std::vector<Tensor> cases;
  cases.push_back(Tensor::Vec<float>({1.5f, -2.25f, 0.0f}));
  cases.push_back(Tensor::Vec<double>({3.141592653589793, -1e300}));
  cases.push_back(Tensor::Vec<int32_t>({INT32_MIN, 0, INT32_MAX}));
  cases.push_back(Tensor::Vec<int64_t>({INT64_MIN, 0, INT64_MAX}));
  cases.push_back(Tensor::Scalar(true));
  cases.push_back(Tensor::Scalar(false));
  Tensor u8(DataType::kUint8, TensorShape({2, 3}));
  for (int64_t i = 0; i < 6; ++i) u8.data<uint8_t>()[i] = uint8_t(40 + i);
  cases.push_back(u8);
  for (const Tensor& t : cases) {
    SCOPED_TRACE(DataTypeName(t.dtype()));
    ExpectTensorsEqual(t, RoundTripViaMeta(t));
  }
}

TEST(TensorWireTest, EmptyTensorRoundTrips) {
  Tensor empty(DataType::kFloat, TensorShape({0}));
  Tensor back = RoundTripViaMeta(empty);
  EXPECT_EQ(back.num_elements(), 0);
  EXPECT_EQ(back.dtype(), DataType::kFloat);
}

TEST(TensorWireTest, StringTensorRoundTrips) {
  Tensor t(DataType::kString, TensorShape({3}));
  t.str(0) = "";
  t.str(1) = std::string("binary\0data", 11);
  t.str(2) = std::string(100000, 'x');
  // Strings are not minimal-copy: everything must land in the body.
  std::string body;
  const char* payload = reinterpret_cast<const char*>(&t);
  size_t payload_len = 1;
  AppendTensorMeta(t, &body, &payload, &payload_len);
  EXPECT_EQ(payload, nullptr);
  EXPECT_EQ(payload_len, 0u);
  ExpectTensorsEqual(t, RoundTripViaMeta(t));
}

TEST(TensorWireTest, LargeTensorOver4MBRoundTrips) {
  constexpr int64_t kElems = (5 << 20) / sizeof(float);  // 5 MiB of floats
  Tensor big(DataType::kFloat, TensorShape({kElems}));
  float* d = big.data<float>();
  for (int64_t i = 0; i < kElems; ++i) d[i] = float(i % 977) * 0.5f;
  ASSERT_GT(big.TotalBytes(), size_t(4) << 20);
  ExpectTensorsEqual(big, RoundTripViaMeta(big));
}

// --- frame I/O over a real socket ---

TEST(FrameIoTest, FrameWithPayloadRoundTripsOverSocket) {
  int port = 0;
  auto listen_fd = ListenLocalhost(0, &port);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status();
  auto client = ConnectLocalhost(port, 2.0);
  ASSERT_TRUE(client.ok()) << client.status();
  auto server = AcceptConnection(listen_fd.value());
  ASSERT_TRUE(server.ok()) << server.status();

  const std::string body = "body-bytes";
  const std::string payload = std::string(1 << 20, 'p');
  const int64_t sent_before =
      metrics::Registry::Global()->GetCounter("rpc.bytes_sent")->value();
  TF_CHECK_OK(WriteFrame(client.value(), /*request_id=*/42,
                         /*is_response=*/false,
                         uint8_t(Method::kSendTensor), body, payload.data(),
                         payload.size()));
  auto frame = ReadFrame(server.value());
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame.value().request_id, 42u);
  EXPECT_FALSE(frame.value().is_response);
  EXPECT_EQ(frame.value().method, uint8_t(Method::kSendTensor));
  EXPECT_EQ(frame.value().body, body + payload);
  EXPECT_GT(
      metrics::Registry::Global()->GetCounter("rpc.bytes_sent")->value(),
      sent_before + int64_t(payload.size()));

  // Closing the peer turns the next read into a retryable Unavailable.
  ::close(client.value());
  auto eof = ReadFrame(server.value());
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), Code::kUnavailable);
  EXPECT_TRUE(eof.status().IsRetryable());
  ::close(server.value());
  ::close(listen_fd.value());
}

// --- channel/server behaviour ---

// An echo server: responds OK with the request body reversed.
class EchoServer {
 public:
  EchoServer() {
    server_.RegisterHandler(
        Method::kPing,
        [](const std::string& body,
           std::shared_ptr<RpcServer::Responder> responder) {
          std::string reply(body.rbegin(), body.rend());
          responder->Respond(Status::OK(), reply);
        });
    // A black hole: never responds, for deadline tests.
    server_.RegisterHandler(
        Method::kRunGraph,
        [this](const std::string&,
               std::shared_ptr<RpcServer::Responder> responder) {
          std::lock_guard<std::mutex> l(mu_);
          parked_.push_back(std::move(responder));
        });
    TF_CHECK_OK(server_.Start(0));
  }
  int port() { return server_.port(); }
  void Shutdown() { server_.Shutdown(); }

 private:
  RpcServer server_;
  std::mutex mu_;
  std::vector<std::shared_ptr<RpcServer::Responder>> parked_;
};

TEST(RpcChannelTest, EchoAndConcurrentCallsMultiplex) {
  EchoServer server;
  RpcChannel channel("echo", server.port());
  auto one = channel.CallSync(Method::kPing, "abc", 5.0);
  ASSERT_TRUE(one.ok()) << one.status();
  // Response body = app status (OK) + method payload.
  size_t offset = 0;
  Status app = Internal("unset");
  ASSERT_TRUE(ReadStatus(one.value(), &offset, &app));
  EXPECT_TRUE(app.ok());
  EXPECT_EQ(one.value().substr(offset), "cba");

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      std::string msg = "msg" + std::to_string(i);
      auto r = channel.CallSync(Method::kPing, msg, 5.0);
      if (!r.ok()) {
        ++failures;
        return;
      }
      size_t off = 0;
      Status s = Internal("unset");
      std::string expect(msg.rbegin(), msg.rend());
      if (!ReadStatus(r.value(), &off, &s) || !s.ok() ||
          r.value().substr(off) != expect) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RpcChannelTest, DeadlineExpiresAsRetryableDeadlineExceeded) {
  EchoServer server;
  RpcChannel channel("wedged", server.port());
  auto start = std::chrono::steady_clock::now();
  auto r = channel.CallSync(Method::kRunGraph, "never-answered", 0.2);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDeadlineExceeded);
  EXPECT_TRUE(r.status().IsRetryable());
  EXPECT_GE(elapsed, 0.15);
  EXPECT_LT(elapsed, 2.0);
}

TEST(RpcChannelTest, DeadPeerFailsFastDuringBackoffThenReconnects) {
  RpcChannel::Options opts;
  opts.connect_timeout_seconds = 0.5;
  opts.backoff_initial_seconds = 0.2;
  opts.backoff_max_seconds = 0.2;
  opts.backoff_jitter_fraction = 0.0;

  // Nobody is listening yet: the first call eats the connect failure and
  // arms the backoff window.
  EchoServer server;
  int port = server.port();
  server.Shutdown();

  RpcChannel channel("flaky", port, opts);
  auto first = channel.CallSync(Method::kPing, "x", 1.0);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsRetryable()) << first.status();

  // Inside the backoff window calls fail fast — no fresh dial, no wait.
  auto start = std::chrono::steady_clock::now();
  auto second = channel.CallSync(Method::kPing, "x", 1.0);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), Code::kUnavailable);
  EXPECT_LT(elapsed, 0.1);

  // A server appears; ResetTarget clears the backoff stamp, so the next
  // call dials immediately and succeeds. (This first-ever successful dial
  // is not a "reconnect" — rpc.reconnects counts redials after a live
  // connection died; see the server-bounce test below.)
  EchoServer revived;
  channel.ResetTarget(revived.port());
  auto third = channel.CallSync(Method::kPing, "hi", 2.0);
  ASSERT_TRUE(third.ok()) << third.status();
}

TEST(RpcChannelTest, ServerDeathFailsPendingAndChannelRecoversAfterRestart) {
  auto server = std::make_unique<EchoServer>();
  RpcChannel::Options opts;
  opts.backoff_initial_seconds = 0.001;
  opts.backoff_max_seconds = 0.01;
  RpcChannel channel("bouncing", server->port(), opts);

  // Warm the connection, then park a call and kill the server under it.
  auto warm = channel.CallSync(Method::kPing, "warm", 2.0);
  ASSERT_TRUE(warm.ok()) << warm.status();
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status parked_status = Status::OK();
  channel.Call(Method::kRunGraph, "parked", nullptr, 0, /*deadline=*/0.0,
               [&](const Status& s, std::string) {
                 std::lock_guard<std::mutex> l(mu);
                 parked_status = s;
                 done = true;
                 cv.notify_all();
               });
  server->Shutdown();
  {
    std::unique_lock<std::mutex> l(mu);
    ASSERT_TRUE(cv.wait_for(l, std::chrono::seconds(5), [&] { return done; }));
  }
  EXPECT_FALSE(parked_status.ok());
  EXPECT_TRUE(parked_status.IsRetryable()) << parked_status;

  // Restart on a new port; ResetTarget clears the backoff and the channel
  // works again — the restarted-worker path of RemoteWorker. Dialing after
  // a live connection died is what rpc.reconnects counts.
  const int64_t reconnects_before =
      metrics::Registry::Global()->GetCounter("rpc.reconnects")->value();
  server = std::make_unique<EchoServer>();
  channel.ResetTarget(server->port());
  auto after = channel.CallSync(Method::kPing, "back", 2.0);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_GT(
      metrics::Registry::Global()->GetCounter("rpc.reconnects")->value(),
      reconnects_before);
}

TEST(RpcChannelTest, ShutdownFailsPendingCallsExactlyOnce) {
  EchoServer server;
  auto channel = std::make_unique<RpcChannel>("closing", server.port());
  std::atomic<int> fired{0};
  Status seen = Status::OK();
  std::mutex mu;
  channel->Call(Method::kRunGraph, "parked", nullptr, 0, 0.0,
                [&](const Status& s, std::string) {
                  std::lock_guard<std::mutex> l(mu);
                  seen = s;
                  ++fired;
                });
  // Give the call a moment to hit the wire so it is genuinely pending.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  channel->Shutdown();
  {
    std::lock_guard<std::mutex> l(mu);
    EXPECT_EQ(fired.load(), 1);
    EXPECT_FALSE(seen.ok());
  }
  channel.reset();
  EXPECT_EQ(fired.load(), 1);
}

}  // namespace
}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro
