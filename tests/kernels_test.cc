// Value-level tests for the kernel library: each exercises one operation's
// semantics through a real session (construction, placement, execution),
// including error paths and dtype dispatch.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/ops.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

// Evaluates a single fetched output built by `fn`.
Tensor Eval(const std::function<Output(GraphBuilder*)>& fn) {
  Graph g;
  GraphBuilder b(&g);
  Output out = fn(&b);
  TF_CHECK_OK(b.status());
  SessionOptions options;
  options.optimizer.do_constant_folding = false;  // exercise the kernels
  auto session = DirectSession::Create(g, options);
  TF_CHECK_OK(session.status());
  std::vector<Tensor> results;
  TF_CHECK_OK(session.value()->Run({out.name()}, &results));
  return results[0];
}

Status EvalStatus(const std::function<Output(GraphBuilder*)>& fn) {
  Graph g;
  GraphBuilder b(&g);
  Output out = fn(&b);
  TF_RETURN_IF_ERROR(b.status());
  SessionOptions options;
  options.optimizer.do_constant_folding = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> results;
  return session.value()->Run({out.name()}, &results);
}

std::vector<float> Vec(const Tensor& t) {
  std::vector<float> v(t.num_elements());
  for (int64_t i = 0; i < t.num_elements(); ++i) v[i] = t.flat<float>(i);
  return v;
}

TEST(KernelsTest, ElementwiseBinaryFloat) {
  Tensor r = Eval([](GraphBuilder* b) {
    return ops::Sub(b, Const(b, Tensor::Vec<float>({5, 7})),
                    Const(b, Tensor::Vec<float>({2, 10})));
  });
  EXPECT_EQ(Vec(r), (std::vector<float>{3, -3}));
}

TEST(KernelsTest, ElementwiseBinaryInt64) {
  Tensor r = Eval([](GraphBuilder* b) {
    return ops::Mul(b, Const(b, Tensor::Vec<int64_t>({1LL << 33, 3})),
                    Const(b, Tensor::Vec<int64_t>({2, 3})));
  });
  EXPECT_EQ(r.flat<int64_t>(0), 1LL << 34);
  EXPECT_EQ(r.flat<int64_t>(1), 9);
}

TEST(KernelsTest, FloorDivAndModMatchPythonSemantics) {
  Tensor q = Eval([](GraphBuilder* b) {
    return b->Op("FloorDiv")
        .Input(Const(b, Tensor::Vec<int32_t>({7, -7, 7, -7})))
        .Input(Const(b, Tensor::Vec<int32_t>({2, 2, -2, -2})))
        .Attr("T", DataType::kInt32)
        .Finalize();
  });
  EXPECT_EQ(q.flat<int32_t>(0), 3);
  EXPECT_EQ(q.flat<int32_t>(1), -4);
  EXPECT_EQ(q.flat<int32_t>(2), -4);
  EXPECT_EQ(q.flat<int32_t>(3), 3);
  Tensor m = Eval([](GraphBuilder* b) {
    return b->Op("Mod")
        .Input(Const(b, Tensor::Vec<int32_t>({7, -7})))
        .Input(Const(b, Tensor::Vec<int32_t>({3, 3})))
        .Attr("T", DataType::kInt32)
        .Finalize();
  });
  EXPECT_EQ(m.flat<int32_t>(0), 1);
  EXPECT_EQ(m.flat<int32_t>(1), 2);  // Python-style: -7 mod 3 == 2
}

TEST(KernelsTest, UnaryMathValues) {
  Tensor r = Eval([](GraphBuilder* b) {
    return ops::Exp(b, Const(b, Tensor::Vec<float>({0, 1})));
  });
  EXPECT_FLOAT_EQ(r.flat<float>(0), 1.0f);
  EXPECT_NEAR(r.flat<float>(1), std::exp(1.0f), 1e-5);
  Tensor s = Eval([](GraphBuilder* b) {
    return ops::Sign(b, Const(b, Tensor::Vec<float>({-3, 0, 9})));
  });
  EXPECT_EQ(Vec(s), (std::vector<float>{-1, 0, 1}));
}

TEST(KernelsTest, ComparisonsAndLogic) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output lt = ops::Less(b, Const(b, Tensor::Vec<float>({1, 5})),
                          Const(b, Tensor::Vec<float>({3, 3})));
    Output gt = ops::Greater(b, Const(b, Tensor::Vec<float>({1, 5})),
                             Const(b, Tensor::Vec<float>({3, 3})));
    return ops::LogicalAnd(b, ops::LogicalNot(b, lt), gt);
  });
  EXPECT_FALSE(r.flat<bool>(0));
  EXPECT_TRUE(r.flat<bool>(1));
}

TEST(KernelsTest, SelectElementwiseAndVectorCond) {
  Tensor r = Eval([](GraphBuilder* b) {
    Tensor cond(DataType::kBool, TensorShape({2}));
    cond.flat<bool>(0) = true;
    cond.flat<bool>(1) = false;
    return ops::Select(b, Const(b, Tensor(cond)),
                       Const(b, Tensor::FromVector<float>({1, 2, 3, 4},
                                                          TensorShape({2, 2}))),
                       Const(b, Tensor::FromVector<float>({9, 9, 9, 9},
                                                          TensorShape({2, 2}))));
  });
  EXPECT_EQ(Vec(r), (std::vector<float>{1, 2, 9, 9}));
}

TEST(KernelsTest, CastFloatIntBool) {
  Tensor r = Eval([](GraphBuilder* b) {
    return ops::Cast(b, Const(b, Tensor::Vec<float>({1.9f, -2.7f})),
                     DataType::kInt32);
  });
  EXPECT_EQ(r.flat<int32_t>(0), 1);
  EXPECT_EQ(r.flat<int32_t>(1), -2);
  Tensor fb = Eval([](GraphBuilder* b) {
    Tensor bools(DataType::kBool, TensorShape({2}));
    bools.flat<bool>(1) = true;
    return ops::Cast(b, Const(b, Tensor(bools)), DataType::kFloat);
  });
  EXPECT_EQ(Vec(fb), (std::vector<float>{0, 1}));
}

TEST(KernelsTest, ReductionsWithKeepDims) {
  Tensor input = Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                           TensorShape({2, 3}));
  Tensor kept = Eval([&](GraphBuilder* b) {
    return ops::Sum(b, Const(b, Tensor(input)), ops::ConstVecI32(b, {1}),
                    /*keep_dims=*/true);
  });
  EXPECT_EQ(kept.shape().DebugString(), "[2,1]");
  EXPECT_EQ(Vec(kept), (std::vector<float>{6, 15}));
  Tensor dropped = Eval([&](GraphBuilder* b) {
    return ops::Sum(b, Const(b, Tensor(input)), ops::ConstVecI32(b, {1}));
  });
  EXPECT_EQ(dropped.shape().DebugString(), "[2]");
}

TEST(KernelsTest, ReductionNegativeAxisAndProd) {
  Tensor r = Eval([](GraphBuilder* b) {
    return b->Op("Prod")
        .Input(Const(b, Tensor::FromVector<float>({1, 2, 3, 4},
                                                  TensorShape({2, 2}))))
        .Input(ops::ConstVecI32(b, {-1}))
        .Attr("T", DataType::kFloat)
        .Attr("keep_dims", false)
        .Finalize();
  });
  EXPECT_EQ(Vec(r), (std::vector<float>{2, 12}));
}

TEST(KernelsTest, ArgMaxOverAxes) {
  Tensor input = Tensor::FromVector<float>({1, 9, 3, 8, 5, 6},
                                           TensorShape({2, 3}));
  Tensor by_row = Eval([&](GraphBuilder* b) {
    return ops::ArgMax(b, Const(b, Tensor(input)), 1);
  });
  EXPECT_EQ(by_row.flat<int64_t>(0), 1);
  EXPECT_EQ(by_row.flat<int64_t>(1), 0);
  Tensor by_col = Eval([&](GraphBuilder* b) {
    return ops::ArgMax(b, Const(b, Tensor(input)), 0);
  });
  EXPECT_EQ(by_col.flat<int64_t>(0), 1);
  EXPECT_EQ(by_col.flat<int64_t>(1), 0);
  EXPECT_EQ(by_col.flat<int64_t>(2), 1);
}

TEST(KernelsTest, ConcatAndSplitRoundTrip) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output m = Const(b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                  TensorShape({2, 3})));
    std::vector<Output> parts = ops::Split(b, 1, m, 3);
    return ops::Concat(b, 1, {parts[2], parts[1], parts[0]});
  });
  EXPECT_EQ(Vec(r), (std::vector<float>{3, 2, 1, 6, 5, 4}));
}

TEST(KernelsTest, SliceAndPadInverse) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output m = Const(b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6, 7, 8, 9},
                                                  TensorShape({3, 3})));
    Output middle = ops::Slice(b, m, {1, 1}, {1, 2});  // [[5, 6]]
    Output paddings = Const(b, Tensor::FromVector<int32_t>(
                                   {1, 1, 1, 0}, TensorShape({2, 2})));
    return b->Op("Pad")
        .Input(middle)
        .Input(paddings)
        .Attr("T", DataType::kFloat)
        .Finalize();
  });
  EXPECT_EQ(r.shape().DebugString(), "[3,3]");
  EXPECT_EQ(r.matrix<float>(1, 1), 5.0f);
  EXPECT_EQ(r.matrix<float>(1, 2), 6.0f);
  EXPECT_EQ(r.matrix<float>(0, 0), 0.0f);
}

TEST(KernelsTest, SliceNegativeSizeMeansToEnd) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output v = Const(b, Tensor::Vec<float>({1, 2, 3, 4, 5}));
    return ops::Slice(b, v, {2}, {-1});
  });
  EXPECT_EQ(Vec(r), (std::vector<float>{3, 4, 5}));
}

TEST(KernelsTest, TransposeTileExpandSqueeze) {
  Tensor t = Eval([](GraphBuilder* b) {
    Output m = Const(b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                  TensorShape({2, 3})));
    return ops::Transpose(b, m, {1, 0});
  });
  EXPECT_EQ(t.shape().DebugString(), "[3,2]");
  EXPECT_EQ(t.matrix<float>(0, 1), 4.0f);

  Tensor tiled = Eval([](GraphBuilder* b) {
    return ops::Tile(b, Const(b, Tensor::Vec<float>({1, 2})), {3});
  });
  EXPECT_EQ(Vec(tiled), (std::vector<float>{1, 2, 1, 2, 1, 2}));

  Tensor expanded = Eval([](GraphBuilder* b) {
    Output e = ops::ExpandDims(b, Const(b, Tensor::Vec<float>({1, 2})), 0);
    return b->Op("Squeeze")
        .Input(e)
        .Attr("T", DataType::kFloat)
        .Finalize();
  });
  EXPECT_EQ(expanded.shape().DebugString(), "[2]");
}

TEST(KernelsTest, PackUnpackAxis1) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output a = Const(b, Tensor::Vec<float>({1, 2}));
    Output c = Const(b, Tensor::Vec<float>({3, 4}));
    return ops::Pack(b, {a, c}, /*axis=*/1);
  });
  EXPECT_EQ(r.shape().DebugString(), "[2,2]");
  EXPECT_EQ(r.matrix<float>(0, 1), 3.0f);
  EXPECT_EQ(r.matrix<float>(1, 0), 2.0f);
}

TEST(KernelsTest, OneHot) {
  Tensor r = Eval([](GraphBuilder* b) {
    return ops::OneHot(b, Const(b, Tensor::Vec<int64_t>({1, 0, 3})), 4);
  });
  EXPECT_EQ(r.shape().DebugString(), "[3,4]");
  EXPECT_EQ(r.matrix<float>(0, 1), 1.0f);
  EXPECT_EQ(r.matrix<float>(0, 0), 0.0f);
  EXPECT_EQ(r.matrix<float>(2, 3), 1.0f);
}

TEST(KernelsTest, GatherOutOfRangeFails) {
  Status s = EvalStatus([](GraphBuilder* b) {
    Output params = Const(b, Tensor::FromVector<float>({1, 2, 3, 4},
                                                       TensorShape({2, 2})));
    return ops::Gather(b, params, Const(b, Tensor::Vec<int32_t>({5})));
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kOutOfRange);
}

TEST(KernelsTest, UnsortedSegmentSum) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output data = Const(b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                     TensorShape({3, 2})));
    Output ids = Const(b, Tensor::Vec<int32_t>({1, 0, 1}));
    return ops::UnsortedSegmentSum(b, data, ids, Const(b, int32_t{2}));
  });
  EXPECT_EQ(r.shape().DebugString(), "[2,2]");
  EXPECT_EQ(r.matrix<float>(0, 0), 3.0f);   // row 1
  EXPECT_EQ(r.matrix<float>(1, 0), 6.0f);   // rows 0 + 2
  EXPECT_EQ(r.matrix<float>(1, 1), 8.0f);
}

TEST(KernelsTest, MatMulTransposeCombos) {
  Tensor a = Tensor::FromVector<float>({1, 2, 3, 4, 5, 6}, TensorShape({2, 3}));
  // (A^T)^T x A^T with explicit flags == A x A^T.
  Tensor r = Eval([&](GraphBuilder* b) {
    Output at = Const(b, Tensor::FromVector<float>({1, 4, 2, 5, 3, 6},
                                                   TensorShape({3, 2})));
    return ops::MatMul(b, at, at, /*ta=*/true, /*tb=*/false);
  });
  // A x A^T = [[14, 32], [32, 77]].
  EXPECT_EQ(Vec(r), (std::vector<float>{14, 32, 32, 77}));
}

TEST(KernelsTest, Conv2DHandComputed) {
  // 1x2x2x1 input, 2x2 filter of ones, VALID -> single sum.
  Tensor r = Eval([](GraphBuilder* b) {
    Tensor input(DataType::kFloat, TensorShape({1, 2, 2, 1}));
    for (int i = 0; i < 4; ++i) input.flat<float>(i) = i + 1;
    Tensor filter(DataType::kFloat, TensorShape({2, 2, 1, 1}));
    for (int i = 0; i < 4; ++i) filter.flat<float>(i) = 1;
    return ops::Conv2D(b, Const(b, Tensor(input)), Const(b, Tensor(filter)),
                       {1, 1, 1, 1}, "VALID");
  });
  EXPECT_EQ(r.shape().DebugString(), "[1,1,1,1]");
  EXPECT_FLOAT_EQ(*r.data<float>(), 10.0f);
}

TEST(KernelsTest, Conv2DSamePaddingShape) {
  Tensor r = Eval([](GraphBuilder* b) {
    Tensor input(DataType::kFloat, TensorShape({2, 5, 5, 3}));
    Tensor filter(DataType::kFloat, TensorShape({3, 3, 3, 8}));
    return ops::Conv2D(b, Const(b, Tensor(input)), Const(b, Tensor(filter)),
                       {1, 2, 2, 1}, "SAME");
  });
  EXPECT_EQ(r.shape().DebugString(), "[2,3,3,8]");
}

TEST(KernelsTest, MaxPoolValues) {
  Tensor r = Eval([](GraphBuilder* b) {
    Tensor input(DataType::kFloat, TensorShape({1, 2, 2, 1}));
    input.flat<float>(0) = 1;
    input.flat<float>(1) = 7;
    input.flat<float>(2) = 3;
    input.flat<float>(3) = 2;
    return ops::MaxPool(b, Const(b, Tensor(input)), {1, 2, 2, 1}, {1, 2, 2, 1},
                        "VALID");
  });
  EXPECT_FLOAT_EQ(*r.data<float>(), 7.0f);
}

TEST(KernelsTest, AvgPoolValues) {
  Tensor r = Eval([](GraphBuilder* b) {
    Tensor input(DataType::kFloat, TensorShape({1, 2, 2, 1}));
    for (int i = 0; i < 4; ++i) input.flat<float>(i) = i + 1;
    return ops::AvgPool(b, Const(b, Tensor(input)), {1, 2, 2, 1}, {1, 2, 2, 1},
                        "VALID");
  });
  EXPECT_FLOAT_EQ(*r.data<float>(), 2.5f);
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  Tensor r = Eval([](GraphBuilder* b) {
    return ops::Softmax(b, Const(b, Tensor::FromVector<float>(
                                        {1, 2, 3, 1000, 1001, 1002},
                                        TensorShape({2, 3}))));
  });
  for (int row = 0; row < 2; ++row) {
    float sum = 0;
    for (int c = 0; c < 3; ++c) sum += r.matrix<float>(row, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Numerical stability: large logits must not produce NaN.
  EXPECT_FALSE(std::isnan(r.matrix<float>(1, 0)));
  // Softmax is shift-invariant, so the two rows are identical.
  EXPECT_NEAR(r.matrix<float>(0, 0), r.matrix<float>(1, 0), 1e-5);
}

TEST(KernelsTest, SparseXentLossMatchesManual) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output logits = Const(b, Tensor::FromVector<float>({0, 0, 0},
                                                       TensorShape({1, 3})));
    Node* xent = ops::SparseSoftmaxCrossEntropyWithLogits(
        b, logits, Const(b, Tensor::Vec<int64_t>({1})));
    return Output(xent, 0);
  });
  EXPECT_NEAR(r.flat<float>(0), std::log(3.0f), 1e-5);
}

TEST(KernelsTest, RandomSeedDeterminism) {
  auto draw = [](int64_t seed) {
    return Eval([seed](GraphBuilder* b) {
      return ops::RandomUniform(b, {8}, DataType::kFloat, seed);
    });
  };
  Tensor a = draw(5);
  Tensor b2 = draw(5);
  Tensor c = draw(6);
  EXPECT_EQ(Vec(a), Vec(b2));   // same seed, fresh kernels -> same stream
  EXPECT_NE(Vec(a), Vec(c));    // different seed -> different stream
}

TEST(KernelsTest, FillAndRange) {
  Tensor f = Eval([](GraphBuilder* b) {
    return ops::Fill(b, ops::ConstVecI32(b, {2, 2}), Const(b, 3.5f));
  });
  EXPECT_EQ(Vec(f), (std::vector<float>{3.5f, 3.5f, 3.5f, 3.5f}));
  Tensor r = Eval([](GraphBuilder* b) {
    return ops::Range(b, Const(b, int32_t{2}), Const(b, int32_t{9}),
                      Const(b, int32_t{3}));
  });
  EXPECT_EQ(r.num_elements(), 3);
  EXPECT_EQ(r.flat<int32_t>(2), 8);
}

TEST(KernelsTest, ShapeRankSize) {
  Graph g;
  GraphBuilder b(&g);
  Output m = Const(&b, Tensor(DataType::kFloat, TensorShape({2, 3, 4})));
  Output shape = ops::Shape(&b, m);
  Output rank = ops::Rank(&b, m);
  Output size = ops::Size(&b, m);
  TF_CHECK_OK(b.status());
  SessionOptions options;
  options.optimizer.do_constant_folding = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  TF_CHECK_OK(
      session.value()->Run({shape.name(), rank.name(), size.name()}, &out));
  EXPECT_EQ(out[0].flat<int32_t>(1), 3);
  EXPECT_EQ(*out[1].data<int32_t>(), 3);
  EXPECT_EQ(*out[2].data<int32_t>(), 24);
}

TEST(KernelsTest, ReshapeWithInferredDim) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output v = Const(b, Tensor::Vec<float>({1, 2, 3, 4, 5, 6}));
    return ops::Reshape(b, v, {2, -1});
  });
  EXPECT_EQ(r.shape().DebugString(), "[2,3]");
}

TEST(KernelsTest, ScatterUpdateReplacesRows) {
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape({3, 2}), "v");
  Output init = ops::Assign(
      &b, v, Const(&b, Tensor::FromVector<float>({0, 0, 0, 0, 0, 0},
                                                 TensorShape({3, 2}))));
  Output upd = b.Op("ScatterUpdate")
                   .Input(v)
                   .Input(Const(&b, Tensor::Vec<int32_t>({2})))
                   .Input(Const(&b, Tensor::FromVector<float>(
                                        {7, 8}, TensorShape({1, 2}))))
                   .Attr("T", DataType::kFloat)
                   .Attr("Tindices", DataType::kInt32)
                   .Finalize();
  Output read = ops::Identity(&b, v);
  TF_CHECK_OK(b.status());
  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  TF_CHECK_OK(session.value()->Run({}, {}, {upd.node->name()}, nullptr));
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({read.name()}, &out));
  EXPECT_EQ(out[0].matrix<float>(2, 0), 7.0f);
  EXPECT_EQ(out[0].matrix<float>(2, 1), 8.0f);
  EXPECT_EQ(out[0].matrix<float>(0, 0), 0.0f);
}

TEST(KernelsTest, CountUpToLimit) {
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kInt64, TensorShape(), "counter");
  Output init = ops::Assign(&b, v, Const(&b, Tensor::Scalar(int64_t{0})));
  Output next = b.Op("CountUpTo")
                    .Input(v)
                    .Attr("T", DataType::kInt64)
                    .Attr("limit", int64_t{3})
                    .Finalize();
  TF_CHECK_OK(b.status());
  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  for (int i = 0; i < 3; ++i) {
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({next.name()}, &out));
    EXPECT_EQ(*out[0].data<int64_t>(), i);
  }
  std::vector<Tensor> out;
  Status s = session.value()->Run({next.name()}, &out);
  EXPECT_EQ(s.code(), Code::kOutOfRange);
}

TEST(KernelsTest, SumToShapeOfInverseBroadcast) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output grad = Const(b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                     TensorShape({2, 3})));
    Output target = Const(b, Tensor::Vec<float>({0, 0, 0}));
    return ops::SumToShapeOf(b, grad, target);
  });
  EXPECT_EQ(Vec(r), (std::vector<float>{5, 7, 9}));
  Tensor scalar = Eval([](GraphBuilder* b) {
    Output grad = Const(b, Tensor::Vec<float>({1, 2, 3}));
    return ops::SumToShapeOf(b, grad, Const(b, 0.0f));
  });
  EXPECT_FLOAT_EQ(*scalar.data<float>(), 6.0f);
}

TEST(KernelsTest, AddNAccumulates) {
  Tensor r = Eval([](GraphBuilder* b) {
    Output x = Const(b, Tensor::Vec<float>({1, 1}));
    return ops::AddN(b, {x, x, x, x});
  });
  EXPECT_EQ(Vec(r), (std::vector<float>{4, 4}));
}

TEST(KernelsTest, BiasAddRankThree) {
  Tensor r = Eval([](GraphBuilder* b) {
    Tensor value(DataType::kFloat, TensorShape({2, 2, 2}));
    return ops::BiasAdd(b, Const(b, Tensor(value)),
                        Const(b, Tensor::Vec<float>({10, 20})));
  });
  EXPECT_EQ(r.flat<float>(0), 10.0f);
  EXPECT_EQ(r.flat<float>(1), 20.0f);
  EXPECT_EQ(r.flat<float>(7), 20.0f);
}

TEST(KernelsTest, DynamicPartitionEmptyPartitions) {
  Graph g;
  GraphBuilder b(&g);
  Output data = Const(&b, Tensor::Vec<float>({1, 2, 3}));
  Output partitions = Const(&b, Tensor::Vec<int32_t>({2, 2, 2}));
  std::vector<Output> parts = ops::DynamicPartition(&b, data, partitions, 3);
  TF_CHECK_OK(b.status());
  SessionOptions options;
  options.optimizer.do_constant_folding = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run(
      {parts[0].name(), parts[1].name(), parts[2].name()}, &out));
  EXPECT_EQ(out[0].num_elements(), 0);
  EXPECT_EQ(out[1].num_elements(), 0);
  EXPECT_EQ(out[2].num_elements(), 3);
}

}  // namespace
}  // namespace tfrepro
