// Dedicated tests for dynamic control flow (§3.4): the Cond/WhileLoop
// builders, nested loops, loops inside untaken branches (whole-frame dead
// propagation), multiple loop variables, loop invariants, and concurrent
// steps over the same loop graph.

#include <gtest/gtest.h>

#include <thread>

#include "graph/control_flow_builder.h"
#include "graph/ops.h"
#include "runtime/control_flow_info.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

float RunScalar(DirectSession* sess,
                const std::vector<std::pair<std::string, Tensor>>& feeds,
                const Output& fetch) {
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run(feeds, {fetch.name()}, {}, &out));
  return *out[0].data<float>();
}

TEST(CondBuilderTest, OnlyTakenBranchExecutes) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Mul(b, in[0], Const(b, 2.0f))};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Neg(b, in[0])};
      });
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"pred", Tensor::Scalar(true)},
                             {"x", Tensor::Scalar(7.0f)}},
                            results.value()[0]),
                  14.0f);
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"pred", Tensor::Scalar(false)},
                             {"x", Tensor::Scalar(7.0f)}},
                            results.value()[0]),
                  -7.0f);
}

TEST(CondBuilderTest, MultipleOutputs) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = Const(&b, 3.0f);
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Add(b, in[0], Const(b, 1.0f)),
                                   ops::Add(b, in[0], Const(b, 2.0f))};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{in[0], in[0]};
      });
  ASSERT_TRUE(results.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run(
      {{"pred", Tensor::Scalar(true)}},
      {results.value()[0].name(), results.value()[1].name()}, {}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 4.0f);
  EXPECT_FLOAT_EQ(*out[1].data<float>(), 5.0f);
}

TEST(CondBuilderTest, MismatchedAritiesRejected) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = Const(&b, Tensor::Scalar(true));
  Output x = Const(&b, 1.0f);
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{in[0], in[0]};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{in[0]};
      });
  EXPECT_FALSE(results.ok());
}

TEST(WhileLoopBuilderTest, CountsToLimit) {
  Graph g;
  GraphBuilder b(&g);
  Output start = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {start},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 10.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 3.0f))};
      });
  ASSERT_TRUE(exits.ok()) << exits.status();
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  // 0 -> 3 -> 6 -> 9 -> 12.
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"x", Tensor::Scalar(0.0f)}},
                            exits.value()[0]),
                  12.0f);
  // Body never runs when the condition is initially false.
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"x", Tensor::Scalar(50.0f)}},
                            exits.value()[0]),
                  50.0f);
}

TEST(WhileLoopBuilderTest, TwoLoopVariables) {
  // (i, sum): while i < 5 { sum += i; i += 1 } => sum = 0+1+2+3+4 = 10.
  Graph g;
  GraphBuilder b(&g);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {Const(&b, 0.0f), Const(&b, 0.0f)},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 5.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f)),
                                   ops::Add(b, v[1], v[0])};
      });
  ASSERT_TRUE(exits.ok()) << exits.status();
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run(
      {exits.value()[0].name(), exits.value()[1].name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 5.0f);
  EXPECT_FLOAT_EQ(*out[1].data<float>(), 10.0f);
}

TEST(WhileLoopBuilderTest, LoopInvariantsViaConstantEnter) {
  // while v < limit { v *= factor }, limit/factor as invariants.
  Graph g;
  GraphBuilder b(&g);
  Output limit = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "lim");
  Output factor = Const(&b, 3.0f);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {Const(&b, 1.0f)},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], v[1]);  // v[1] == limit invariant
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Mul(b, v[0], v[2])};  // v[2] == factor
      },
      {limit, factor});
  ASSERT_TRUE(exits.ok()) << exits.status();
  auto session = DirectSession::Create(g);
  // 1 -> 3 -> 9 -> 27 (first >= 20).
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"lim", Tensor::Scalar(20.0f)}},
                            exits.value()[0]),
                  27.0f);
}

TEST(WhileLoopBuilderTest, NestedLoops) {
  // outer: for i in 0..3 { inner: j = i; while j < 4 { j += 1 }; acc += j }
  // Every inner loop exits at j == 4, so acc == 12 after 3 outer trips.
  Graph g;
  GraphBuilder b(&g);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {Const(&b, 0.0f), Const(&b, 0.0f)},  // (i, acc)
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 3.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        Result<std::vector<Output>> inner = ops::WhileLoop(
            b, {v[0]},
            [](GraphBuilder* b, const std::vector<Output>& w) {
              return ops::Less(b, w[0], Const(b, 4.0f));
            },
            [](GraphBuilder* b, const std::vector<Output>& w) {
              return std::vector<Output>{ops::Add(b, w[0], Const(b, 1.0f))};
            });
        TF_CHECK_OK(inner.status());
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f)),
                                   ops::Add(b, v[1], inner.value()[0])};
      });
  ASSERT_TRUE(exits.ok()) << exits.status();
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  Status s = session.value()->Run({exits.value()[1].name()}, &out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 12.0f);
}

TEST(WhileLoopBuilderTest, LoopInsideUntakenBranchIsDead) {
  // A conditional whose false branch contains a whole loop: fetching the
  // merged result with pred=true must work (the loop's frame goes dead and
  // its Exit propagates deadness; §3.4 + DESIGN.md §5.10).
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = Const(&b, 2.0f);
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Mul(b, in[0], Const(b, 100.0f))};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        Result<std::vector<Output>> loop = ops::WhileLoop(
            b, {in[0]},
            [](GraphBuilder* b, const std::vector<Output>& v) {
              return ops::Less(b, v[0], Const(b, 10.0f));
            },
            [](GraphBuilder* b, const std::vector<Output>& v) {
              return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f))};
            });
        TF_CHECK_OK(loop.status());
        return loop.value();
      });
  ASSERT_TRUE(results.ok()) << results.status();
  auto session = DirectSession::Create(g);
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"pred", Tensor::Scalar(true)}},
                            results.value()[0]),
                  200.0f);
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"pred", Tensor::Scalar(false)}},
                            results.value()[0]),
                  10.0f);
}

TEST(WhileLoopBuilderTest, LongLoopDoesNotOverflowStack) {
  Graph g;
  GraphBuilder b(&g);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {Const(&b, 0.0f)},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 20000.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f))};
      });
  ASSERT_TRUE(exits.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({exits.value()[0].name()}, &out).ok());
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 20000.0f);
}

TEST(WhileLoopBuilderTest, ConcurrentStepsOnOneLoopGraph) {
  Graph g;
  GraphBuilder b(&g);
  Output start = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {start},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 64.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Mul(b, v[0], Const(b, 2.0f))};
      });
  ASSERT_TRUE(exits.ok());
  auto session = DirectSession::Create(g);
  DirectSession* sess = session.value().get();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      float seed = 1.0f + t;  // 1,2,3,4 all double to >= 64
      std::vector<Tensor> out;
      TF_CHECK_OK(sess->Run({{"x", Tensor::Scalar(seed)}},
                            {exits.value()[0].name()}, {}, &out));
      float v = *out[0].data<float>();
      EXPECT_GE(v, 64.0f);
      EXPECT_LT(v, 128.0f);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(ControlFlowInfoTest, FrameAssignment) {
  Graph g;
  GraphBuilder b(&g);
  Output x = Const(&b, 1.0f);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {x},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 5.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f))};
      },
      {}, "myframe");
  ASSERT_TRUE(exits.ok());
  ControlFlowInfo info;
  ASSERT_TRUE(BuildControlFlowInfo(g, &info).ok());
  // The const feeding Enter is in the root frame; the merge is in the loop
  // frame; the exit is back in the root frame.
  EXPECT_EQ(info.frame_name[x.node->id()], "");
  Node* exit_node = exits.value()[0].node;
  EXPECT_EQ(info.frame_name[exit_node->id()], "");
  for (Node* n : g.nodes()) {
    if (n->IsMerge()) {
      EXPECT_EQ(info.frame_name[n->id()], "myframe");
    }
  }
}

TEST(ControlFlowInfoTest, RejectsMixedFrameInputs) {
  Graph g;
  GraphBuilder b(&g);
  Output x = Const(&b, 1.0f);
  Output entered = ops::Enter(&b, x, "frame_a");
  // Add directly consuming both a frame_a value and a root value.
  Output bad = ops::Add(&b, entered, x);
  ASSERT_TRUE(b.ok());
  (void)bad;
  ControlFlowInfo info;
  EXPECT_FALSE(BuildControlFlowInfo(g, &info).ok());
}

}  // namespace
}  // namespace tfrepro
