// Dedicated tests for dynamic control flow (§3.4): the Cond/WhileLoop
// builders, nested loops, loops inside untaken branches (whole-frame dead
// propagation), multiple loop variables, loop invariants, and concurrent
// steps over the same loop graph.

#include <gtest/gtest.h>

#include <thread>

#include "graph/control_flow_builder.h"
#include "graph/op_registry.h"
#include "graph/ops.h"
#include "runtime/control_flow_info.h"
#include "runtime/kernel.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

float RunScalar(DirectSession* sess,
                const std::vector<std::pair<std::string, Tensor>>& feeds,
                const Output& fetch) {
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run(feeds, {fetch.name()}, {}, &out));
  return *out[0].data<float>();
}

TEST(CondBuilderTest, OnlyTakenBranchExecutes) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Mul(b, in[0], Const(b, 2.0f))};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Neg(b, in[0])};
      });
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"pred", Tensor::Scalar(true)},
                             {"x", Tensor::Scalar(7.0f)}},
                            results.value()[0]),
                  14.0f);
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"pred", Tensor::Scalar(false)},
                             {"x", Tensor::Scalar(7.0f)}},
                            results.value()[0]),
                  -7.0f);
}

TEST(CondBuilderTest, MultipleOutputs) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = Const(&b, 3.0f);
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Add(b, in[0], Const(b, 1.0f)),
                                   ops::Add(b, in[0], Const(b, 2.0f))};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{in[0], in[0]};
      });
  ASSERT_TRUE(results.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run(
      {{"pred", Tensor::Scalar(true)}},
      {results.value()[0].name(), results.value()[1].name()}, {}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 4.0f);
  EXPECT_FLOAT_EQ(*out[1].data<float>(), 5.0f);
}

TEST(CondBuilderTest, MismatchedAritiesRejected) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = Const(&b, Tensor::Scalar(true));
  Output x = Const(&b, 1.0f);
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{in[0], in[0]};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{in[0]};
      });
  EXPECT_FALSE(results.ok());
}

TEST(WhileLoopBuilderTest, CountsToLimit) {
  Graph g;
  GraphBuilder b(&g);
  Output start = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {start},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 10.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 3.0f))};
      });
  ASSERT_TRUE(exits.ok()) << exits.status();
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  // 0 -> 3 -> 6 -> 9 -> 12.
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"x", Tensor::Scalar(0.0f)}},
                            exits.value()[0]),
                  12.0f);
  // Body never runs when the condition is initially false.
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"x", Tensor::Scalar(50.0f)}},
                            exits.value()[0]),
                  50.0f);
}

TEST(WhileLoopBuilderTest, TwoLoopVariables) {
  // (i, sum): while i < 5 { sum += i; i += 1 } => sum = 0+1+2+3+4 = 10.
  Graph g;
  GraphBuilder b(&g);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {Const(&b, 0.0f), Const(&b, 0.0f)},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 5.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f)),
                                   ops::Add(b, v[1], v[0])};
      });
  ASSERT_TRUE(exits.ok()) << exits.status();
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run(
      {exits.value()[0].name(), exits.value()[1].name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 5.0f);
  EXPECT_FLOAT_EQ(*out[1].data<float>(), 10.0f);
}

TEST(WhileLoopBuilderTest, LoopInvariantsViaConstantEnter) {
  // while v < limit { v *= factor }, limit/factor as invariants.
  Graph g;
  GraphBuilder b(&g);
  Output limit = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "lim");
  Output factor = Const(&b, 3.0f);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {Const(&b, 1.0f)},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], v[1]);  // v[1] == limit invariant
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Mul(b, v[0], v[2])};  // v[2] == factor
      },
      {limit, factor});
  ASSERT_TRUE(exits.ok()) << exits.status();
  auto session = DirectSession::Create(g);
  // 1 -> 3 -> 9 -> 27 (first >= 20).
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"lim", Tensor::Scalar(20.0f)}},
                            exits.value()[0]),
                  27.0f);
}

TEST(WhileLoopBuilderTest, NestedLoops) {
  // outer: for i in 0..3 { inner: j = i; while j < 4 { j += 1 }; acc += j }
  // Every inner loop exits at j == 4, so acc == 12 after 3 outer trips.
  Graph g;
  GraphBuilder b(&g);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {Const(&b, 0.0f), Const(&b, 0.0f)},  // (i, acc)
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 3.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        Result<std::vector<Output>> inner = ops::WhileLoop(
            b, {v[0]},
            [](GraphBuilder* b, const std::vector<Output>& w) {
              return ops::Less(b, w[0], Const(b, 4.0f));
            },
            [](GraphBuilder* b, const std::vector<Output>& w) {
              return std::vector<Output>{ops::Add(b, w[0], Const(b, 1.0f))};
            });
        TF_CHECK_OK(inner.status());
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f)),
                                   ops::Add(b, v[1], inner.value()[0])};
      });
  ASSERT_TRUE(exits.ok()) << exits.status();
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  Status s = session.value()->Run({exits.value()[1].name()}, &out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 12.0f);
}

TEST(WhileLoopBuilderTest, LoopInsideUntakenBranchIsDead) {
  // A conditional whose false branch contains a whole loop: fetching the
  // merged result with pred=true must work (the loop's frame goes dead and
  // its Exit propagates deadness; §3.4 + DESIGN.md §5.10).
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = Const(&b, 2.0f);
  Result<std::vector<Output>> results = ops::Cond(
      &b, pred, {x},
      [](GraphBuilder* b, const std::vector<Output>& in) {
        return std::vector<Output>{ops::Mul(b, in[0], Const(b, 100.0f))};
      },
      [](GraphBuilder* b, const std::vector<Output>& in) {
        Result<std::vector<Output>> loop = ops::WhileLoop(
            b, {in[0]},
            [](GraphBuilder* b, const std::vector<Output>& v) {
              return ops::Less(b, v[0], Const(b, 10.0f));
            },
            [](GraphBuilder* b, const std::vector<Output>& v) {
              return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f))};
            });
        TF_CHECK_OK(loop.status());
        return loop.value();
      });
  ASSERT_TRUE(results.ok()) << results.status();
  auto session = DirectSession::Create(g);
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"pred", Tensor::Scalar(true)}},
                            results.value()[0]),
                  200.0f);
  EXPECT_FLOAT_EQ(RunScalar(session.value().get(),
                            {{"pred", Tensor::Scalar(false)}},
                            results.value()[0]),
                  10.0f);
}

TEST(WhileLoopBuilderTest, LongLoopDoesNotOverflowStack) {
  Graph g;
  GraphBuilder b(&g);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {Const(&b, 0.0f)},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 20000.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f))};
      });
  ASSERT_TRUE(exits.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({exits.value()[0].name()}, &out).ok());
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 20000.0f);
}

TEST(WhileLoopBuilderTest, ConcurrentStepsOnOneLoopGraph) {
  Graph g;
  GraphBuilder b(&g);
  Output start = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {start},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 64.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Mul(b, v[0], Const(b, 2.0f))};
      });
  ASSERT_TRUE(exits.ok());
  auto session = DirectSession::Create(g);
  DirectSession* sess = session.value().get();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      float seed = 1.0f + t;  // 1,2,3,4 all double to >= 64
      std::vector<Tensor> out;
      TF_CHECK_OK(sess->Run({{"x", Tensor::Scalar(seed)}},
                            {exits.value()[0].name()}, {}, &out));
      float v = *out[0].data<float>();
      EXPECT_GE(v, 64.0f);
      EXPECT_LT(v, 128.0f);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(ControlFlowInfoTest, FrameAssignment) {
  Graph g;
  GraphBuilder b(&g);
  Output x = Const(&b, 1.0f);
  Result<std::vector<Output>> exits = ops::WhileLoop(
      &b, {x},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 5.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f))};
      },
      {}, "myframe");
  ASSERT_TRUE(exits.ok());
  ControlFlowInfo info;
  ASSERT_TRUE(BuildControlFlowInfo(g, &info).ok());
  // The const feeding Enter is in the root frame; the merge is in the loop
  // frame; the exit is back in the root frame.
  EXPECT_EQ(info.frame_name[x.node->id()], "");
  Node* exit_node = exits.value()[0].node;
  EXPECT_EQ(info.frame_name[exit_node->id()], "");
  for (Node* n : g.nodes()) {
    if (n->IsMerge()) {
      EXPECT_EQ(info.frame_name[n->id()], "myframe");
    }
  }
}

// Exposes the executor's frame/iteration scope id to the graph: outputs
// ctx->frame_iter() as an int64 scalar. The anchor input pins the node
// inside the loop frame (an input-less node would land in the root frame)
// and makes it rerun every iteration. Stateful so the optimizer neither
// folds nor CSEs the instances in different loops.
class TestFrameIterOp : public OpKernel {
 public:
  explicit TestFrameIterOp(OpKernelConstruction* ctx) : OpKernel(ctx) {}
  void Compute(OpKernelContext* ctx) override {
    ctx->set_output(0, Tensor::Scalar(ctx->frame_iter()));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("TestFrameIter", kDeviceCpu, TestFrameIterOp);

void RegisterTestFrameIterOp() {
  // Ignore AlreadyExists when several tests in this binary register it.
  (void)OpRegistry::Global()->Register(OpDefBuilder("TestFrameIter")
                                           .Input("anchor: float")
                                           .Output("id: int64")
                                           .SetIsStateful()
                                           .Build()
                                           .value());
}

// Builds `while (i < 2) { i += 1; a = frame_iter; b = old a; }` — a
// two-stage shift register, so after the loop `a` holds the scope id of
// iteration 1 and `b` the scope id of iteration 0.
std::vector<Output> BuildFrameIterProbeLoop(GraphBuilder* b,
                                            const std::string& frame_name) {
  Result<std::vector<Output>> exits = ops::WhileLoop(
      b,
      {Const(b, 0.0f), Const(b, Tensor::Scalar(int64_t{-1})),
       Const(b, Tensor::Scalar(int64_t{-2}))},
      [](GraphBuilder* b, const std::vector<Output>& v) {
        return ops::Less(b, v[0], Const(b, 2.0f));
      },
      [](GraphBuilder* b, const std::vector<Output>& v) {
        Output id = b->Op("TestFrameIter").Input(v[0]).Finalize();
        return std::vector<Output>{ops::Add(b, v[0], Const(b, 1.0f)), id,
                                   v[1]};
      },
      /*invariants=*/{}, frame_name);
  EXPECT_TRUE(exits.ok()) << exits.status();
  return exits.value();
}

TEST(FrameIterIdTest, IterationsAndFramesNeverAlias) {
  // Regression test for the frame/iteration scope id fed into rendezvous
  // keys. The old id hashed the frame-name chain with h = h*131 + c, which
  // collides on adversarial names — "a" and "\0a" hash identically (the
  // leading NUL contributes 0*131+0) — so two unrelated loops could share a
  // scope and cross-deliver loop-state tensors. The id is now
  // (frame_id << 32) | iteration with creation-ordered frame ids: distinct
  // frames and distinct iterations can never alias.
  RegisterTestFrameIterOp();
  Graph g;
  GraphBuilder b(&g);
  std::vector<Output> loop1 = BuildFrameIterProbeLoop(&b, "a");
  std::vector<Output> loop2 =
      BuildFrameIterProbeLoop(&b, std::string("\0a", 2));
  ASSERT_TRUE(b.ok()) << b.status();

  SessionOptions options;
  options.optimizer.do_cse = false;
  auto session = DirectSession::Create(g, options);
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run(
      {}, {loop1[1].name(), loop1[2].name(), loop2[1].name(),
           loop2[2].name()},
      {}, &out));
  int64_t a1 = *out[0].data<int64_t>();  // loop 1, iteration 1
  int64_t b1 = *out[1].data<int64_t>();  // loop 1, iteration 0
  int64_t a2 = *out[2].data<int64_t>();  // loop 2, iteration 1
  int64_t b2 = *out[3].data<int64_t>();  // loop 2, iteration 0

  // Iterations of one frame are distinct and reversible: same high bits
  // (the frame id), consecutive low bits (the iteration).
  EXPECT_NE(a1, b1);
  EXPECT_EQ(a1 >> 32, b1 >> 32);
  EXPECT_EQ(b1 & 0xffffffff, 0);
  EXPECT_EQ(a1 & 0xffffffff, 1);
  EXPECT_NE(a2, b2);
  EXPECT_EQ(a2 >> 32, b2 >> 32);

  // The two loops occupy distinct frames despite the colliding names, and
  // neither collides with the root scope (id 0).
  EXPECT_NE(a1 >> 32, a2 >> 32);
  EXPECT_NE(a1 >> 32, 0);
  EXPECT_NE(a2 >> 32, 0);
}

TEST(ControlFlowInfoTest, RejectsMixedFrameInputs) {
  Graph g;
  GraphBuilder b(&g);
  Output x = Const(&b, 1.0f);
  Output entered = ops::Enter(&b, x, "frame_a");
  // Add directly consuming both a frame_a value and a root value.
  Output bad = ops::Add(&b, entered, x);
  ASSERT_TRUE(b.ok());
  (void)bad;
  ControlFlowInfo info;
  EXPECT_FALSE(BuildControlFlowInfo(g, &info).ok());
}

}  // namespace
}  // namespace tfrepro
