// Unit tests for the session-level optimizer tier (DESIGN.md §13): the
// element-wise fusion pass and its refusal cases, the CSE -> fusion ->
// folding fixed-point loop, dead-node elimination, and two CSE signature
// regressions (truncated Const content, mergeable Placeholders).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/ops.h"
#include "graph/subgraph.h"
#include "runtime/graph_optimizer.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

std::string TensorBytes(const Tensor& t) {
  std::string s;
  t.AppendToBytes(&s);
  return s;
}

int CountOp(const Graph& g, const std::string& op) {
  int n = 0;
  for (Node* node : g.nodes()) {
    if (node->op() == op) ++n;
  }
  return n;
}

Node* FindOp(const Graph& g, const std::string& op) {
  for (Node* node : g.nodes()) {
    if (node->op() == op) return node;
  }
  return nullptr;
}

// Runs `g` through a DirectSession with the optimizer tier on or off and
// returns the fetched tensors.
std::vector<Tensor> RunSession(
    const Graph& g, bool optimize,
    const std::vector<std::pair<std::string, Tensor>>& feeds,
    const std::vector<std::string>& fetches,
    const std::vector<std::string>& targets = {}) {
  SessionOptions options;
  options.optimizer.enable = optimize;
  auto session = DirectSession::Create(g, options);
  EXPECT_TRUE(session.ok()) << session.status();
  std::vector<Tensor> out;
  Status s = session.value()->Run(feeds, fetches, targets, &out);
  EXPECT_TRUE(s.ok()) << s;
  return out;
}

TEST(FusionPassTest, FusesUnaryChain) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4}), "x");
  Output y = ops::Square(&b, ops::Neg(&b, ops::Tanh(&b, x)));
  ASSERT_TRUE(b.ok()) << b.status();

  Result<int> fused = FuseElementwiseChains(&g, {y.name()});
  ASSERT_TRUE(fused.ok()) << fused.status();
  // Square is preserved, so the chain is [Tanh, Neg].
  EXPECT_EQ(fused.value(), 1);
  EXPECT_EQ(CountOp(g, "_FusedElementwise"), 1);
  EXPECT_EQ(CountOp(g, "Tanh"), 0);
  EXPECT_EQ(CountOp(g, "Neg"), 0);
  EXPECT_EQ(CountOp(g, "Square"), 1);

  Node* fused_node = FindOp(g, "_FusedElementwise");
  ASSERT_NE(fused_node, nullptr);
  const std::vector<std::string>& ops_attr =
      fused_node->GetAttr("ops").string_list();
  ASSERT_EQ(ops_attr.size(), 2u);
  EXPECT_EQ(ops_attr[0], "Tanh");
  EXPECT_EQ(ops_attr[1], "Neg");
}

TEST(FusionPassTest, FusedExecutionIsBitExact) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({5}), "x");
  Output y = ops::Relu(&b, ops::Add(&b, ops::Tanh(&b, ops::Neg(&b, x)),
                                    Const(&b, 0.25f)));
  ASSERT_TRUE(b.ok()) << b.status();

  Tensor xv = Tensor::FromVector<float>({-2.5f, -0.1f, 0.0f, 0.7f, 3.14f},
                                        TensorShape({5}));
  std::vector<Tensor> off = RunSession(g, false, {{"x", xv}}, {y.name()});
  std::vector<Tensor> on = RunSession(g, true, {{"x", xv}}, {y.name()});
  ASSERT_EQ(off.size(), 1u);
  ASSERT_EQ(on.size(), 1u);
  EXPECT_EQ(TensorBytes(off[0]), TensorBytes(on[0]));
}

TEST(FusionPassTest, GeneralBroadcastChainIsBitExact) {
  // Mixed shapes force the fused kernel's general (non-elementwise)
  // broadcasting path: [2,3] + scalar, then * [3]-vector.
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({2, 3}), "x");
  Output s = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "s");
  Output v = ops::Placeholder(&b, DataType::kFloat, TensorShape({3}), "v");
  Output y = ops::Mul(&b, ops::Add(&b, x, s), v);
  ASSERT_TRUE(b.ok()) << b.status();

  Tensor xv = Tensor::FromVector<float>({1, -2, 3, -4, 5, -6},
                                        TensorShape({2, 3}));
  Tensor sv = Tensor::Scalar(0.3f);
  Tensor vv = Tensor::FromVector<float>({2, -1, 0.5f}, TensorShape({3}));
  std::vector<std::pair<std::string, Tensor>> feeds = {
      {"x", xv}, {"s", sv}, {"v", vv}};
  std::vector<Tensor> off = RunSession(g, false, feeds, {y.name()});
  std::vector<Tensor> on = RunSession(g, true, feeds, {y.name()});
  EXPECT_EQ(TensorBytes(off[0]), TensorBytes(on[0]));
}

TEST(FusionPassTest, RefusesPreservedNodes) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4}), "x");
  Output r = ops::Relu(&b, x);
  Output y = ops::Neg(&b, r);
  ASSERT_TRUE(b.ok()) << b.status();

  Result<int> fused =
      FuseElementwiseChains(&g, {r.name(), y.name()});
  ASSERT_TRUE(fused.ok()) << fused.status();
  EXPECT_EQ(fused.value(), 0);
  EXPECT_EQ(CountOp(g, "_FusedElementwise"), 0);
  EXPECT_EQ(CountOp(g, "Relu"), 1);
  EXPECT_EQ(CountOp(g, "Neg"), 1);
}

TEST(FusionPassTest, RefusesNodesWithControlEdges) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4}), "x");
  Output other = Const(&b, 1.0f);
  // Relu carries a control input: its execution order is observable, so it
  // must keep its own dispatch.
  Output r = b.Op("Relu")
                 .Input(x)
                 .Attr("T", DataType::kFloat)
                 .ControlInput(other.node)
                 .Finalize();
  Output y = ops::Neg(&b, ops::Square(&b, r));
  ASSERT_TRUE(b.ok()) << b.status();

  Result<int> fused = FuseElementwiseChains(&g, {y.name()});
  ASSERT_TRUE(fused.ok()) << fused.status();
  // Only [Square] remains as a candidate head; Neg is preserved — nothing
  // reaches the length-2 minimum... except Square->Neg? Neg is preserved,
  // so no chain forms at all.
  EXPECT_EQ(CountOp(g, "Relu"), 1);
  for (Node* n : g.nodes()) {
    if (n->op() == "_FusedElementwise") {
      const auto& names = n->GetAttr("ops").string_list();
      for (const std::string& op : names) EXPECT_NE(op, "Relu");
    }
  }
}

TEST(FusionPassTest, RefusesRefReaders) {
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape({4}), "v");
  Output init = ops::Assign(&b, v, Const(&b, Tensor::FromVector<float>(
                                                 {1, 2, 3, 4},
                                                 TensorShape({4}))));
  ops::Group(&b, {init}, "init");
  // Mul reads the variable's ref output directly: the read must keep its
  // own dispatch point, so Mul can never join a chain.
  Output m = ops::Mul(&b, v, Const(&b, 2.0f));
  Output y = ops::Neg(&b, ops::Square(&b, m));
  ASSERT_TRUE(b.ok()) << b.status();

  Result<int> fused = FuseElementwiseChains(&g, {y.name()});
  ASSERT_TRUE(fused.ok()) << fused.status();
  EXPECT_EQ(CountOp(g, "Mul"), 1);
  Node* fused_node = FindOp(g, "_FusedElementwise");
  if (fused_node != nullptr) {
    for (const std::string& op : fused_node->GetAttr("ops").string_list()) {
      EXPECT_NE(op, "Mul");
    }
  }
}

TEST(FusionPassTest, RefusesMultiConsumerInterior) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4}), "x");
  Output u = ops::Relu(&b, x);
  Output m1 = ops::Neg(&b, u);
  Output m2 = ops::Square(&b, u);
  ASSERT_TRUE(b.ok()) << b.status();

  Result<int> fused = FuseElementwiseChains(&g, {m1.name(), m2.name()});
  ASSERT_TRUE(fused.ok()) << fused.status();
  // u has two consumers, so it cannot be an interior member; m1/m2 are
  // preserved — no chain of length >= 2 exists.
  EXPECT_EQ(fused.value(), 0);
  EXPECT_EQ(CountOp(g, "_FusedElementwise"), 0);
}

TEST(FusionPassTest, RefusesCrossDeviceChains) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4}), "x");
  Output n0;
  {
    GraphBuilder::DeviceScope scope(&b, "/device:CPU:0");
    n0 = ops::Neg(&b, x);
  }
  Output r1, s1;
  {
    GraphBuilder::DeviceScope scope(&b, "/device:CPU:1");
    r1 = ops::Relu(&b, n0);
    s1 = ops::Square(&b, r1);
  }
  ASSERT_TRUE(b.ok()) << b.status();

  Result<int> fused = FuseElementwiseChains(&g, {s1.name()});
  ASSERT_TRUE(fused.ok()) << fused.status();
  // The device boundary splits the chain: Neg stays standalone, and the
  // CPU:1 pair [Relu] alone (Square preserved) is below the minimum.
  EXPECT_EQ(fused.value(), 0);
  EXPECT_EQ(CountOp(g, "Neg"), 1);
  EXPECT_EQ(CountOp(g, "Relu"), 1);
}

TEST(OptimizeGraphTest, TwoRoundFixedPointExposesFusion) {
  // Round 1: nothing fuses (u has two consumers, k1/k2 are fold
  // candidates), folding turns k1/k2 into equal consts. Round 2: CSE
  // merges the folded consts, then merges m1/m2, leaving u with a single
  // consumer — and fusion collapses [u, m]. A single-round pipeline never
  // finds the chain.
  auto build = [](Graph* g) {
    GraphBuilder b(g);
    Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4}), "x");
    Output u = ops::Relu(&b, x);
    Output k1 = ops::Add(&b, Const(&b, 1.0f), Const(&b, 2.0f));
    Output k2 = ops::Mul(&b, Const(&b, 1.5f), Const(&b, 2.0f));
    Output m1 = ops::Mul(&b, u, k1);
    Output m2 = ops::Mul(&b, u, k2);
    ASSERT_TRUE(b.ok()) << b.status();
    Status s = RewriteGraphForExecution(g, {"x"}, {m1.name(), m2.name()}, {});
    ASSERT_TRUE(s.ok()) << s;
  };

  ThreadPool pool("test", 1);
  std::unique_ptr<Device> device = NewCpuDevice("test", 0, 0, &pool);

  Graph single_round;
  build(&single_round);
  OptimizerOptions one;
  one.max_folding_passes = 1;
  ASSERT_TRUE(OptimizeGraph(&single_round, device.get(), one).ok());
  EXPECT_EQ(CountOp(single_round, "_FusedElementwise"), 0);

  Graph multi_round;
  build(&multi_round);
  OptimizerOptions many;  // default max_folding_passes = 3
  ASSERT_TRUE(OptimizeGraph(&multi_round, device.get(), many).ok());
  EXPECT_EQ(CountOp(multi_round, "_FusedElementwise"), 1);

  // And the rewrite is invisible to execution.
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4}), "x");
  Output u = ops::Relu(&b, x);
  Output k1 = ops::Add(&b, Const(&b, 1.0f), Const(&b, 2.0f));
  Output k2 = ops::Mul(&b, Const(&b, 1.5f), Const(&b, 2.0f));
  Output m1 = ops::Mul(&b, u, k1);
  Output m2 = ops::Mul(&b, u, k2);
  ASSERT_TRUE(b.ok()) << b.status();
  Tensor xv =
      Tensor::FromVector<float>({-1, 0, 2, 3.5f}, TensorShape({4}));
  std::vector<Tensor> off =
      RunSession(g, false, {{"x", xv}}, {m1.name(), m2.name()});
  std::vector<Tensor> on =
      RunSession(g, true, {{"x", xv}}, {m1.name(), m2.name()});
  EXPECT_EQ(TensorBytes(off[0]), TensorBytes(on[0]));
  EXPECT_EQ(TensorBytes(off[1]), TensorBytes(on[1]));
}

TEST(CseTest, ConstContentBeyondDebugTruncationNotMerged) {
  // AttrValue::DebugString truncates tensor content to a few elements; two
  // consts agreeing on the printed prefix but differing later must not
  // merge (the signature hashes the exact bytes).
  Graph g;
  GraphBuilder b(&g);
  Output c1 = Const(&b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                  TensorShape({6})));
  Output c2 = Const(&b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 99},
                                                  TensorShape({6})));
  Output a1 = ops::Neg(&b, c1);
  Output a2 = ops::Neg(&b, c2);
  ASSERT_TRUE(b.ok()) << b.status();

  EliminateCommonSubexpressions(&g, {a1.name(), a2.name()});
  EXPECT_EQ(CountOp(g, "Const"), 2);
  EXPECT_EQ(CountOp(g, "Neg"), 2);

  std::vector<Tensor> out = RunSession(g, true, {}, {a1.name(), a2.name()});
  EXPECT_NE(TensorBytes(out[0]), TensorBytes(out[1]));
}

TEST(CseTest, PlaceholdersNeverMerge) {
  // Two placeholders with identical attrs stand for different external
  // inputs; CSE must not canonicalize one onto the other.
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output y = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "y");
  Output d = ops::Sub(&b, x, y);
  ASSERT_TRUE(b.ok()) << b.status();

  EliminateCommonSubexpressions(&g, {d.name()});
  EXPECT_EQ(CountOp(g, "Placeholder"), 2);

  std::vector<Tensor> out = RunSession(
      g, true,
      {{"x", Tensor::Scalar(5.0f)}, {"y", Tensor::Scalar(2.0f)}},
      {d.name()});
  EXPECT_EQ(out[0].data<float>()[0], 3.0f);
}

TEST(DeadNodeTest, RemovesOrphansKeepsStatefulAndPreserved) {
  Graph g;
  GraphBuilder b(&g);
  Output live = ops::Neg(&b, Const(&b, 1.0f));
  // Orphan expression: consumed by nothing, reaches nothing stateful.
  Output dead = ops::Square(&b, ops::Add(&b, Const(&b, 2.0f),
                                         Const(&b, 3.0f)));
  (void)dead;
  // A variable (stateful) with its initializer must survive even though
  // nothing fetches it.
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape(), "v");
  Output init = ops::Assign(&b, v, Const(&b, 7.0f));
  (void)init;
  ASSERT_TRUE(b.ok()) << b.status();

  int removed = RemoveDeadNodes(&g, {live.name()});
  EXPECT_GE(removed, 3);  // dead Square, Add and their consts
  EXPECT_EQ(CountOp(g, "Square"), 0);
  EXPECT_EQ(CountOp(g, "Add"), 0);
  EXPECT_EQ(CountOp(g, "Neg"), 1);
  EXPECT_EQ(CountOp(g, "Variable"), 1);
  EXPECT_EQ(CountOp(g, "Assign"), 1);
}

TEST(DeadNodeTest, NoRootsMeansNoRemoval) {
  // A bare expression graph without stateful nodes or a preserve set must
  // not be erased wholesale.
  Graph g;
  GraphBuilder b(&g);
  Output y = ops::Neg(&b, Const(&b, 1.0f));
  (void)y;
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(RemoveDeadNodes(&g, {}), 0);
  EXPECT_EQ(g.num_nodes(), 2);
}

TEST(OptimizeGraphTest, EnvKillSwitchDisablesTier) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4}), "x");
  Output y = ops::Neg(&b, ops::Relu(&b, ops::Tanh(&b, x)));
  (void)y;
  ASSERT_TRUE(b.ok()) << b.status();
  Status s = RewriteGraphForExecution(&g, {"x"}, {y.name()}, {});
  ASSERT_TRUE(s.ok()) << s;

  ThreadPool pool("test", 1);
  std::unique_ptr<Device> device = NewCpuDevice("test", 0, 0, &pool);
  setenv("TFREPRO_OPTIMIZER", "off", 1);
  ASSERT_TRUE(OptimizeGraph(&g, device.get(), OptimizerOptions()).ok());
  unsetenv("TFREPRO_OPTIMIZER");
  EXPECT_EQ(CountOp(g, "_FusedElementwise"), 0);
  EXPECT_EQ(CountOp(g, "Tanh"), 1);

  ASSERT_TRUE(OptimizeGraph(&g, device.get(), OptimizerOptions()).ok());
  EXPECT_EQ(CountOp(g, "_FusedElementwise"), 1);
}

}  // namespace
}  // namespace tfrepro
