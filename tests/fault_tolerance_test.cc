// Fault-tolerance tests (paper §4.3–§4.4): injected task kills, hangs, and
// lost transfers against the distributed runtime's deadline / abort / retry
// / checkpoint-recovery machinery, the health prober's proactive detection,
// and durable master recovery.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"

#include "distributed/fault_injector.h"
#include "distributed/master.h"
#include "distributed/master_state.h"
#include "graph/ops.h"
#include "train/checkpoint_policy.h"
#include "train/optimizer.h"
#include "train/saver.h"
#include "train/sync_replicas.h"

namespace tfrepro {
namespace {

using distributed::ClusterSpec;
using distributed::FaultInjector;
using distributed::InProcessCluster;
using distributed::MasterSession;
using ops::Const;
using train::GradAndVar;

ClusterSpec PsWorkerSpec(int ps, int workers) {
  ClusterSpec spec;
  spec.jobs["ps"] = ps;
  spec.jobs["worker"] = workers;
  return spec;
}

Result<std::unique_ptr<InProcessCluster>> ClusterWithInjector(
    int ps, int workers, FaultInjector* injector) {
  InProcessCluster::Options options;
  options.fault_injector = injector;
  return InProcessCluster::Create(PsWorkerSpec(ps, workers), options);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Fresh (empty) checkpoint directory for one test.
std::string CheckpointPrefix(const std::string& test_name) {
  std::string dir = ::testing::TempDir() + "/" + test_name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir + "/model";
}

// Polls `cond` (with a final re-check) for up to `timeout_s` seconds.
bool WaitFor(const std::function<bool()>& cond, double timeout_s) {
  auto start = std::chrono::steady_clock::now();
  while (SecondsSince(start) < timeout_s) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

TEST(FaultInjectorTest, ScriptedKillHangDelayAndRestart) {
  FaultInjector injector;
  const std::string ps = "/job:ps/task:0";
  const std::string worker = "/job:worker/task:1";

  injector.KillTaskAtDispatch(ps, 2);
  EXPECT_EQ(injector.OnDispatch(ps).action, FaultInjector::Action::kProceed);
  EXPECT_EQ(injector.OnDispatch(ps).action, FaultInjector::Action::kKill);
  EXPECT_TRUE(injector.IsDown(ps));
  EXPECT_EQ(injector.kills(), 1);
  // A dead task refuses every dispatch, but that is not a new kill.
  EXPECT_EQ(injector.OnDispatch(ps).action, FaultInjector::Action::kKill);
  EXPECT_EQ(injector.kills(), 1);
  EXPECT_EQ(injector.DownTasks(), std::vector<std::string>({ps}));

  injector.MarkRestarted(ps);
  EXPECT_FALSE(injector.IsDown(ps));
  EXPECT_EQ(injector.OnDispatch(ps).action, FaultInjector::Action::kProceed);

  // Hangs are one-shot: only the scripted dispatch hangs.
  injector.HangTaskAtDispatch(worker, 1);
  EXPECT_EQ(injector.OnDispatch(worker).action,
            FaultInjector::Action::kHang);
  EXPECT_EQ(injector.OnDispatch(worker).action,
            FaultInjector::Action::kProceed);
  EXPECT_EQ(injector.hangs(), 1);

  injector.DelayTask(worker, 0.25);
  FaultInjector::Decision d = injector.OnDispatch(worker);
  EXPECT_EQ(d.action, FaultInjector::Action::kProceed);
  EXPECT_DOUBLE_EQ(d.delay_seconds, 0.25);
  injector.DelayTask(worker, 0.0);
  EXPECT_DOUBLE_EQ(injector.OnDispatch(worker).delay_seconds, 0.0);

  // Transfer drops are counted globally, 1-based.
  injector.DropNthTransfer(2);
  EXPECT_FALSE(injector.OnTransfer("a;b;t1;0"));
  EXPECT_TRUE(injector.OnTransfer("a;b;t2;0"));
  EXPECT_FALSE(injector.OnTransfer("a;b;t3;0"));
  EXPECT_EQ(injector.dropped_transfers(), 1);
}

TEST(FaultInjectorTest, SameSeedSameFailureSchedule) {
  // The acceptance bar for determinism: identical seed + identical event
  // sequence => identical decision log.
  auto replay = [](uint64_t seed) {
    FaultInjector injector(seed);
    injector.KillRandomly(0.3);
    injector.DropNthTransfer(3);
    for (int i = 0; i < 40; ++i) {
      injector.OnDispatch("/job:worker/task:" + std::to_string(i % 3));
      if (i % 4 == 0) {
        injector.OnTransfer("a;b;t" + std::to_string(i) + ";0");
      }
    }
    return injector.DecisionLog();
  };
  std::vector<std::string> log = replay(42);
  EXPECT_EQ(log, replay(42));
  // With p=0.3 over 40 dispatches the schedule is all but guaranteed to
  // contain at least one kill; an empty log would mean the seed is ignored.
  EXPECT_FALSE(log.empty());
}

TEST(FaultInjectorTest, CrossTaskKeyDetection) {
  using distributed::IsCrossTaskKey;
  EXPECT_TRUE(IsCrossTaskKey(
      "/job:ps/task:0/device:CPU:0;/job:worker/task:0/device:CPU:0;w:0;0"));
  EXPECT_TRUE(IsCrossTaskKey(
      "/job:worker/task:0/device:CPU:0;/job:worker/task:1/device:CPU:0;g;0"));
  EXPECT_FALSE(IsCrossTaskKey(
      "/job:ps/task:0/device:CPU:0;/job:ps/task:0/device:CPU:1;w:0;0"));
  EXPECT_FALSE(IsCrossTaskKey("not-a-key"));
}

// The headline scenario: a PS task is killed mid-training. The step aborts
// with a retryable error, the master restarts the task, re-registers its
// subgraphs, restores the last checkpoint, and retries — and because SGD
// here is deterministic, training lands on exactly the value an
// uninterrupted run produces.
TEST(FaultToleranceTest, KilledPsTaskRecoversFromCheckpointAndResumes) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  Graph g;
  GraphBuilder b(&g);
  Output w;
  Output init;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    w = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "w");
    init = ops::Assign(&b, w, Const(&b, Tensor::Vec<float>({4, -4})));
  }
  Output loss;
  Result<Node*> train_op = Internal("unset");
  train::GradientDescentOptimizer opt(0.25f);
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    loss = ops::SumAll(&b, ops::Square(&b, w));
    train_op = opt.Minimize(&b, loss, {w}, "train");
  }
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  train::Saver saver(&b, {w});
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.max_step_retries = 3;
  options.restart_failed_tasks = true;
  options.retry_backoff_initial_seconds = 1e-4;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok()) << session.status();
  MasterSession* sess = session.value().get();

  train::CheckpointPolicy policy(&saver, CheckpointPrefix("ft_ps_kill"),
                                 /*save_every_n_steps=*/1);
  sess->set_recovery_handler([&] { return policy.Recover(sess); });

  TF_CHECK_OK(sess->Run({}, {}, {init.node->name()}, nullptr));
  constexpr int kSteps = 30;
  constexpr int kKillBeforeStep = 11;
  for (int step = 1; step <= kSteps; ++step) {
    if (step == kKillBeforeStep) {
      // Kill the PS on its next dispatch — i.e. during this train step.
      injector.KillTaskAtDispatch("/job:ps/task:0",
                                  injector.dispatches("/job:ps/task:0") + 1);
    }
    TF_CHECK_OK(sess->Run({}, {}, {train_op.value()->name()}, nullptr));
    TF_CHECK_OK(policy.AfterStep(sess, step));
  }

  EXPECT_EQ(injector.kills(), 1);
  MasterSession::RunStats stats = sess->stats();
  EXPECT_GE(stats.retries, 1);
  EXPECT_EQ(stats.restarts, 1);
  EXPECT_GE(stats.reregistrations, 1);
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_GE(stats.aborts_fanned_out, 1);
  EXPECT_EQ(policy.recoveries(), 1);
  // The failure hit after step 10's checkpoint; recovery restored it.
  EXPECT_EQ(policy.last_restored_step(), kKillBeforeStep - 1);

  // w halves each step (lr 0.25 on sum(w^2)), all in exact powers of two,
  // so the recovered trajectory must equal the uninterrupted one exactly.
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({loss.name()}, &out));
  const float expected = 2.0f * std::ldexp(4.0f, -kSteps) *
                         std::ldexp(4.0f, -kSteps);
  EXPECT_EQ(*out[0].data<float>(), expected);
}

// Without restart_failed_tasks, a kill surfaces as Unavailable even when
// retries are allowed — the master refuses to retry into a dead task.
TEST(FaultToleranceTest, KillWithoutRestartSurfacesUnavailable) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output on_ps;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    on_ps = ops::Mul(&b, Const(&b, 6.0f), Const(&b, 7.0f));
  }
  Output on_worker;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    on_worker = ops::Add(&b, on_ps, Const(&b, 0.5f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.max_step_retries = 2;
  options.retry_backoff_initial_seconds = 1e-4;
  // Constant folding would evaluate this all-const graph at compile time
  // and the ps task would never see the dispatch this test kills.
  options.optimizer.enable = false;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok());

  injector.KillTaskAtDispatch("/job:ps/task:0", 1);
  std::vector<Tensor> out;
  Status s = session.value()->Run({on_worker.name()}, &out);
  EXPECT_TRUE(s.IsUnavailable()) << s;

  // After an explicit restart the same session works again.
  TF_CHECK_OK(cluster.value()->RestartTask("ps", 0));
  TF_CHECK_OK(session.value()->Run({on_worker.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 42.5f);
}

// A hung task never answers its dispatch: only the step deadline can
// unblock the master. The step must fail with DeadlineExceeded promptly
// instead of deadlocking, and the session must stay usable.
TEST(FaultToleranceTest, HungTaskTripsDeadlineInsteadOfDeadlocking) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output on_ps;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    on_ps = ops::Mul(&b, Const(&b, 6.0f), Const(&b, 7.0f));
  }
  Output on_worker;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    on_worker = ops::Add(&b, on_ps, Const(&b, 0.5f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.step_deadline_seconds = 0.3;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok());

  injector.HangTaskAtDispatch("/job:worker/task:0", 1);
  auto start = std::chrono::steady_clock::now();
  std::vector<Tensor> out;
  Status s = session.value()->Run({on_worker.name()}, &out);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s;
  EXPECT_LT(SecondsSince(start), 10.0);
  EXPECT_EQ(injector.hangs(), 1);
  EXPECT_EQ(session.value()->stats().deadline_expirations, 1);

  // The hang was one-shot; a fresh step completes normally.
  TF_CHECK_OK(session.value()->Run({on_worker.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 42.5f);
}

// DeadlineExceeded is retryable: with retries configured, a one-shot hang
// is absorbed and Run succeeds.
TEST(FaultToleranceTest, DeadlineRetryAbsorbsHungStep) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output on_ps;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    on_ps = ops::Mul(&b, Const(&b, 2.0f), Const(&b, 3.0f));
  }
  Output on_worker;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    on_worker = ops::Add(&b, on_ps, Const(&b, 1.0f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.step_deadline_seconds = 0.2;
  options.max_step_retries = 2;
  options.retry_backoff_initial_seconds = 1e-4;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok());

  injector.HangTaskAtDispatch("/job:worker/task:0", 1);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({on_worker.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 7.0f);
  MasterSession::RunStats stats = session.value()->stats();
  EXPECT_EQ(stats.deadline_expirations, 1);
  EXPECT_EQ(stats.retries, 1);
}

// A lost cross-task transfer leaves the receiving Recv blocked forever;
// the deadline detects it and the retry re-sends.
TEST(FaultToleranceTest, DroppedTransferTripsDeadlineThenRetrySucceeds) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output v;
  Output init;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    v = ops::Variable(&b, DataType::kFloat, TensorShape(), "v");
    init = ops::Assign(&b, v, Const(&b, 42.0f));
  }
  Output y;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    y = ops::Add(&b, v, Const(&b, 0.5f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.step_deadline_seconds = 0.2;
  options.max_step_retries = 2;
  options.retry_backoff_initial_seconds = 1e-4;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok());

  // Init runs entirely on the PS: no cross-task transfer. The first
  // transfer is v's trip to the worker in the fetch step — drop it.
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  injector.DropNthTransfer(1);

  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({y.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 42.5f);
  EXPECT_EQ(injector.dropped_transfers(), 1);
  MasterSession::RunStats stats = session.value()->stats();
  EXPECT_GE(stats.deadline_expirations, 1);
  EXPECT_GE(stats.retries, 1);
}

// §4.4 Figure 4c: n=4 workers, m=3 required. One worker is killed before
// its step; the other three contribute and the chief update completes —
// losing up to n-m workers cannot stall a synchronous step.
TEST(FaultToleranceTest, BackupWorkersAbsorbKilledWorker) {
  constexpr int kWorkers = 4;
  constexpr int kRequired = 3;
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, kWorkers, &injector);
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output w;
  Output init;
  train::GradientDescentOptimizer opt(1.0f);
  std::unique_ptr<train::SyncReplicas> sync;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    w = ops::Variable(&b, DataType::kFloat, TensorShape(), "w");
    init = ops::Assign(&b, w, Const(&b, 6.0f));
    // Queues (gradient + token) land on the PS: the coordination device.
    sync = std::make_unique<train::SyncReplicas>(&b, &opt, kWorkers,
                                                 kRequired);
  }
  EXPECT_EQ(sync->num_workers(), kWorkers);
  EXPECT_EQ(sync->num_required(), kRequired);

  std::vector<Node*> worker_steps;
  for (int i = 0; i < kWorkers; ++i) {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:" +
                                            std::to_string(i));
    std::vector<GradAndVar> gvs = {GradAndVar{Const(&b, 2.0f), w}};
    Result<Node*> step = sync->AddWorkerStep(gvs);
    ASSERT_TRUE(step.ok()) << step.status();
    worker_steps.push_back(step.value());
  }
  Result<Node*> chief = Internal("unset");
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    chief = sync->BuildChiefUpdate();
  }
  ASSERT_TRUE(chief.ok()) << chief.status();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  ASSERT_TRUE(session.ok()) << session.status();
  MasterSession* sess = session.value().get();
  TF_CHECK_OK(sess->Run({}, {}, {init.node->name()}, nullptr));
  TF_CHECK_OK(sess->Run({}, {}, {sync->token_seed_op()->name()}, nullptr));

  // Worker 3 dies on its first (and only) step dispatch.
  injector.KillTaskAtDispatch("/job:worker/task:3", 1);

  std::vector<Status> statuses(kWorkers, Status::OK());
  std::vector<std::thread> threads;
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&, i]() {
      statuses[i] = sess->Run({}, {}, {worker_steps[i]->name()}, nullptr);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kWorkers - 1; ++i) {
    EXPECT_TRUE(statuses[i].ok()) << i << ": " << statuses[i];
  }
  EXPECT_FALSE(statuses[kWorkers - 1].ok());
  EXPECT_TRUE(statuses[kWorkers - 1].IsRetryable())
      << statuses[kWorkers - 1];

  // The chief needs only the first m=3 gradient sets, all present.
  TF_CHECK_OK(sess->Run({}, {}, {chief.value()->name()}, nullptr));
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({w.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 4.0f);  // 6 - mean(2,2,2) * 1.0
}

// A straggler delayed below the deadline slows the step but does not fail
// it (the §4.4 backup-worker motivation, at the dispatch level).
TEST(FaultToleranceTest, DelayedTaskSlowsButCompletesStep) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output on_ps;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    on_ps = ops::Mul(&b, Const(&b, 6.0f), Const(&b, 7.0f));
  }
  Output on_worker;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    on_worker = ops::Add(&b, on_ps, Const(&b, 0.5f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.step_deadline_seconds = 5.0;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok());

  injector.DelayTask("/job:worker/task:0", 0.15);
  auto start = std::chrono::steady_clock::now();
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({on_worker.name()}, &out));
  EXPECT_GE(SecondsSince(start), 0.14);
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 42.5f);
  EXPECT_EQ(session.value()->stats().deadline_expirations, 0);
}

// Probe decisions use their own counters: scripted Nth-dispatch faults must
// not be perturbed by background probe traffic, and probe hangs are
// scripted against the probe sequence.
TEST(FaultInjectorTest, ProbeDecisionsSeparateFromDispatches) {
  FaultInjector injector;
  const std::string ps = "/job:ps/task:0";

  EXPECT_EQ(injector.OnProbe(ps).action, FaultInjector::Action::kProceed);
  EXPECT_EQ(injector.probes(ps), 1);
  EXPECT_EQ(injector.dispatches(ps), 0);

  injector.HangProbeAt(ps, injector.probes(ps) + 1);
  EXPECT_EQ(injector.OnProbe(ps).action, FaultInjector::Action::kHang);
  EXPECT_EQ(injector.OnProbe(ps).action, FaultInjector::Action::kProceed);

  // An idle kill (no dispatch involved) downs the task; probes then refuse.
  injector.KillTaskNow(ps);
  EXPECT_TRUE(injector.IsDown(ps));
  EXPECT_EQ(injector.kills(), 1);
  injector.KillTaskNow(ps);  // idempotent
  EXPECT_EQ(injector.kills(), 1);
  EXPECT_EQ(injector.OnProbe(ps).action, FaultInjector::Action::kKill);
  injector.MarkRestarted(ps);
  EXPECT_EQ(injector.OnProbe(ps).action, FaultInjector::Action::kProceed);
}

// The §4.3 acceptance scenario for proactive liveness monitoring: a worker
// is killed while the cluster is idle. The prober detects it within
// K * interval, restarts it, re-registers its subgraphs, and runs the
// recovery handler — all before the client's next Run, which therefore
// succeeds on its first attempt (no in-step retry).
TEST(HealthProberTest, IdleKilledWorkerRestartedBeforeNextRun) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  Graph g;
  GraphBuilder b(&g);
  Output w;
  Output init;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    w = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "w");
    init = ops::Assign(&b, w, Const(&b, Tensor::Vec<float>({4, -4})));
  }
  Output loss;
  Result<Node*> train_op = Internal("unset");
  train::GradientDescentOptimizer opt(0.25f);
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    loss = ops::SumAll(&b, ops::Square(&b, w));
    train_op = opt.Minimize(&b, loss, {w}, "train");
  }
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  train::Saver saver(&b, {w});
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.max_step_retries = 3;
  options.restart_failed_tasks = true;
  options.retry_backoff_initial_seconds = 1e-4;
  options.health_probe_interval_seconds = 0.02;
  options.health_probe_miss_threshold = 3;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok()) << session.status();
  MasterSession* sess = session.value().get();

  train::CheckpointPolicy policy(&saver, CheckpointPrefix("ft_idle_kill"),
                                 /*save_every_n_steps=*/1);
  sess->set_recovery_handler([&] { return policy.Recover(sess); });

  TF_CHECK_OK(sess->Run({}, {}, {init.node->name()}, nullptr));
  constexpr int kSteps = 20;
  constexpr int kKillAfterStep = 10;
  for (int step = 1; step <= kKillAfterStep; ++step) {
    TF_CHECK_OK(sess->Run({}, {}, {train_op.value()->name()}, nullptr));
    TF_CHECK_OK(policy.AfterStep(sess, step));
  }

  // Kill the worker while no step is in flight. No Run happens until the
  // prober has noticed on its own.
  injector.KillTaskNow("/job:worker/task:0");
  ASSERT_TRUE(WaitFor([&] { return sess->stats().prober_restarts >= 1; },
                      /*timeout_s=*/10.0))
      << "prober never restarted the killed worker";

  for (int step = kKillAfterStep + 1; step <= kSteps; ++step) {
    TF_CHECK_OK(sess->Run({}, {}, {train_op.value()->name()}, nullptr));
    TF_CHECK_OK(policy.AfterStep(sess, step));
  }

  MasterSession::RunStats stats = sess->stats();
  // The failure was handled entirely between steps: every Run (including
  // the first one after the kill) succeeded on its first attempt.
  EXPECT_EQ(stats.retries, 0);
  EXPECT_GE(stats.prober_restarts, 1);
  EXPECT_GE(stats.restarts, 1);
  EXPECT_GE(stats.reregistrations, 1);
  EXPECT_GE(stats.recoveries, 1);
  EXPECT_GE(policy.recoveries(), 1);

  // The prober's view: at least K missed probes before the verdict, and a
  // dead-marking for the worker.
  metrics::Registry* reg = metrics::Registry::Global();
  const metrics::TagMap tags{{"session", sess->session_prefix()},
                             {"task", "/job:worker/task:0"}};
  EXPECT_GE(reg->GetCounter("health.probe_miss", tags)->value(), 3);
  EXPECT_GE(reg->GetCounter("health.probe_dead_marked", tags)->value(), 1);

  // Deterministic SGD: the recovered trajectory equals the uninterrupted
  // one exactly (w halves each step, all powers of two).
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({loss.name()}, &out));
  const float expected = 2.0f * std::ldexp(4.0f, -kSteps) *
                         std::ldexp(4.0f, -kSteps);
  EXPECT_EQ(*out[0].data<float>(), expected);
}

// Regression: a hung probe parks its callback forever, so the prober's own
// per-probe timeout is the only exit. Two hung probes (below the K=3
// threshold, then a success) must neither pin the prober thread — probes
// to the other task keep landing throughout — nor falsely mark the hung
// task dead.
TEST(HealthProberTest, HungProbeTimesOutWithoutFalseDeadMark) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  Graph g;
  GraphBuilder b(&g);
  Output on_ps;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    on_ps = ops::Mul(&b, Const(&b, 6.0f), Const(&b, 7.0f));
  }
  Output on_worker;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    on_worker = ops::Add(&b, on_ps, Const(&b, 0.5f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.restart_failed_tasks = true;
  options.health_probe_interval_seconds = 0.02;
  options.health_probe_miss_threshold = 3;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok()) << session.status();
  MasterSession* sess = session.value().get();

  const std::string ps = "/job:ps/task:0";
  injector.HangProbeAt(ps, injector.probes(ps) + 1);
  injector.HangProbeAt(ps, injector.probes(ps) + 2);

  // While the PS probes are parked, worker probes must keep succeeding —
  // the prober thread is not pinned behind the hung callbacks.
  metrics::Registry* reg = metrics::Registry::Global();
  metrics::Counter* worker_ok = reg->GetCounter(
      "health.probe_ok",
      {{"session", sess->session_prefix()}, {"task", "/job:worker/task:0"}});
  const int64_t ok_before = worker_ok->value();
  ASSERT_TRUE(WaitFor([&] { return worker_ok->value() >= ok_before + 5; },
                      /*timeout_s=*/10.0))
      << "prober thread appears pinned by the hung probe";

  // Two misses stayed below the threshold and a later probe succeeded, so
  // the PS was never marked dead, let alone restarted.
  metrics::Counter* ps_dead = reg->GetCounter(
      "health.probe_dead_marked",
      {{"session", sess->session_prefix()}, {"task", ps}});
  EXPECT_EQ(ps_dead->value(), 0);
  EXPECT_EQ(sess->stats().prober_restarts, 0);
  EXPECT_EQ(sess->stats().restarts, 0);

  // The session is fully usable.
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({on_worker.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 42.5f);
  EXPECT_EQ(sess->stats().retries, 0);
}

// §4.3 durable master recovery: the master process dies between steps; a
// new MasterSession created against the same cluster from the same state
// log adopts the previous incarnation's identity (prefix, handles, step
// watermark, last checkpoint), re-adopts the registrations still alive on
// the workers, auto-restores the checkpoint as soon as the recovery
// handler is installed, and resumes training with no client replay and no
// in-step retries.
TEST(FaultToleranceTest, RestartedMasterResumesFromDurableState) {
  FaultInjector injector;
  auto cluster = ClusterWithInjector(1, 1, &injector);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  Graph g;
  GraphBuilder b(&g);
  Output w;
  Output init;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    w = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "w");
    init = ops::Assign(&b, w, Const(&b, Tensor::Vec<float>({4, -4})));
  }
  Output loss;
  Result<Node*> train_op = Internal("unset");
  train::GradientDescentOptimizer opt(0.25f);
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    loss = ops::SumAll(&b, ops::Square(&b, w));
    train_op = opt.Minimize(&b, loss, {w}, "train");
  }
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  train::Saver saver(&b, {w});
  ASSERT_TRUE(b.ok()) << b.status();

  const std::string ckpt_prefix = CheckpointPrefix("ft_master_restart");
  const std::string state_path =
      std::filesystem::path(ckpt_prefix).parent_path() / "master.state";

  MasterSession::Options options;
  options.max_step_retries = 3;
  options.restart_failed_tasks = true;
  options.retry_backoff_initial_seconds = 1e-4;
  options.state_path = state_path;

  constexpr int kSteps = 24;
  constexpr int kDieAfterStep = 12;

  // --- First incarnation: train halfway, then "die" (destruction). ---
  {
    auto session = MasterSession::Create(g, cluster.value().get(), options);
    ASSERT_TRUE(session.ok()) << session.status();
    MasterSession* sess = session.value().get();
    train::CheckpointPolicy policy(&saver, ckpt_prefix,
                                   /*save_every_n_steps=*/1);
    sess->set_recovery_handler([&] { return policy.Recover(sess); });

    TF_CHECK_OK(sess->Run({}, {}, {init.node->name()}, nullptr));
    for (int step = 1; step <= kDieAfterStep; ++step) {
      TF_CHECK_OK(sess->Run({}, {}, {train_op.value()->name()}, nullptr));
      TF_CHECK_OK(policy.AfterStep(sess, step));
    }
    EXPECT_EQ(sess->last_checkpoint_step(), kDieAfterStep);
  }

  // --- Second incarnation: same state log, same (surviving) cluster. ---
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok()) << session.status();
  MasterSession* sess = session.value().get();

  // Durable state restored the checkpoint knowledge and the compiled-step
  // cache; the workers' live registrations were re-adopted, not rebuilt.
  EXPECT_EQ(sess->last_checkpoint_step(), kDieAfterStep);
  MasterSession::RunStats stats = sess->stats();
  EXPECT_GE(stats.state_recompiles, 2);  // at least init + train signatures
  EXPECT_GE(stats.partition_reuses, 1);

  // Installing the recovery handler triggers the auto-restore: no client
  // code asked for recovery explicitly.
  train::CheckpointPolicy policy(&saver, ckpt_prefix,
                                 /*save_every_n_steps=*/1);
  sess->set_recovery_handler([&] { return policy.Recover(sess); });
  EXPECT_EQ(policy.recoveries(), 1);
  EXPECT_EQ(policy.last_restored_step(), kDieAfterStep);

  for (int step = kDieAfterStep + 1; step <= kSteps; ++step) {
    TF_CHECK_OK(sess->Run({}, {}, {train_op.value()->name()}, nullptr));
    TF_CHECK_OK(policy.AfterStep(sess, step));
  }

  // The resumed trajectory is exactly the uninterrupted one.
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({loss.name()}, &out));
  const float expected = 2.0f * std::ldexp(4.0f, -kSteps) *
                         std::ldexp(4.0f, -kSteps);
  EXPECT_EQ(*out[0].data<float>(), expected);
  EXPECT_EQ(sess->stats().retries, 0);
  EXPECT_EQ(sess->last_checkpoint_step(), kSteps);
}

TEST(MasterStateLogTest, RotationKeepsLogBoundedAndRecoverable) {
  const std::string path =
      CheckpointPrefix("statelog_rotation") + "/state.log";
  constexpr int64_t kRotateBytes = 512;

  auto log = distributed::MasterStateLog::Open(path, "sess-7", kRotateBytes);
  ASSERT_TRUE(log.ok()) << log.status();

  distributed::CompiledSignature sig;
  sig.handle = "sess-7/step/0";
  sig.feeds = {"x"};
  sig.fetches = {"loss:0"};
  sig.targets = {"train"};
  TF_CHECK_OK(log.value()->AppendCompiled(sig));
  TF_CHECK_OK(log.value()->AppendCheckpoint("/ckpt/model", 480));

  const int64_t rotations_before = metrics::Registry::Global()
                                       ->GetCounter("master.statelog_rotations")
                                       ->value();
  // ~900 step records at ~9 bytes each: several rotations' worth of
  // history through a 512-byte cap.
  for (int64_t step = 1; step <= 900; ++step) {
    TF_CHECK_OK(log.value()->AppendStep(step));
  }
  // The file stays bounded: at most the cap plus one compact rewrite.
  EXPECT_LT(log.value()->size_bytes(), 2 * kRotateBytes);
  EXPECT_GT(metrics::Registry::Global()
                ->GetCounter("master.statelog_rotations")
                ->value(),
            rotations_before);

  // Recovery over the rotated log sees the full logical history.
  Result<distributed::MasterState> state =
      distributed::LoadMasterState(path);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_EQ(state.value().session_prefix, "sess-7");
  EXPECT_EQ(state.value().step_watermark, 900);
  ASSERT_EQ(state.value().compiled.size(), 1u);
  EXPECT_EQ(state.value().compiled[0].handle, "sess-7/step/0");
  EXPECT_EQ(state.value().compiled[0].feeds, std::vector<std::string>{"x"});
  EXPECT_EQ(state.value().compiled[0].fetches,
            std::vector<std::string>{"loss:0"});
  EXPECT_EQ(state.value().checkpoint_prefix, "/ckpt/model");
  EXPECT_EQ(state.value().checkpoint_step, 480);
}

TEST(MasterStateLogTest, ReopenedLogRotatesWithoutLosingOldRecords) {
  const std::string path = CheckpointPrefix("statelog_reopen") + "/state.log";
  constexpr int64_t kRotateBytes = 256;

  {
    auto log =
        distributed::MasterStateLog::Open(path, "sess-a", kRotateBytes);
    ASSERT_TRUE(log.ok()) << log.status();
    distributed::CompiledSignature sig;
    sig.handle = "sess-a/step/0";
    sig.fetches = {"y:0"};
    TF_CHECK_OK(log.value()->AppendCompiled(sig));
    TF_CHECK_OK(log.value()->AppendStep(10));
  }  // master dies; log closed mid-history

  // A new incarnation continues the log; its rotations must preserve the
  // records written before it was born (the seeded mirror).
  auto log = distributed::MasterStateLog::Open(path, "ignored", kRotateBytes);
  ASSERT_TRUE(log.ok()) << log.status();
  for (int64_t step = 11; step <= 200; ++step) {
    TF_CHECK_OK(log.value()->AppendStep(step));
  }
  EXPECT_LT(log.value()->size_bytes(), 2 * kRotateBytes);

  Result<distributed::MasterState> state =
      distributed::LoadMasterState(path);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_EQ(state.value().session_prefix, "sess-a");
  EXPECT_EQ(state.value().step_watermark, 200);
  ASSERT_EQ(state.value().compiled.size(), 1u);
  EXPECT_EQ(state.value().compiled[0].handle, "sess-a/step/0");
}

}  // namespace
}  // namespace tfrepro
