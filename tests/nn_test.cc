// Tests for the model library: layers train, the sharded embedding of
// Figure 3 round-trips and trains (dense and sparse update paths), the
// softmax heads learn, the LSTM runs and trains, and the model zoo's FLOP
// accounting matches published magnitudes.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/record_file.h"
#include "data/synthetic.h"
#include "graph/ops.h"
#include "nn/embedding.h"
#include "nn/layers.h"
#include "nn/build_model.h"
#include "nn/model_zoo.h"
#include "nn/rnn.h"
#include "nn/softmax.h"
#include "runtime/session.h"
#include "train/optimizer.h"

namespace tfrepro {
namespace {

using ops::Const;

TEST(LayersTest, DenseTrainsXor) {
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b, /*seed=*/3);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4, 2}), "x");
  Output y = ops::Placeholder(&b, DataType::kFloat, TensorShape({4, 1}), "y");
  Output h = nn::Dense(&store, x, 2, 8, nn::Activation::kTanh, "h");
  Output logits = nn::Dense(&store, h, 8, 1, nn::Activation::kNone, "out");
  Output loss = ops::MeanAll(&b, ops::Square(&b, ops::Sub(&b, logits, y)));
  train::AdamOptimizer opt(0.05f);
  Result<Node*> train_op = opt.Minimize(&b, loss, store.variables(), "train");
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  Node* init = train::BuildInitOp(&b, {}, {&opt});
  // Include layer-variable initializers.
  Node* var_init = store.BuildInitOp("var_init");
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {var_init->name(), init->name()},
                                   nullptr));
  Tensor xs = Tensor::FromVector<float>({0, 0, 0, 1, 1, 0, 1, 1},
                                        TensorShape({4, 2}));
  Tensor ys = Tensor::FromVector<float>({0, 1, 1, 0}, TensorShape({4, 1}));
  float final_loss = 1e9f;
  for (int i = 0; i < 800; ++i) {
    TF_CHECK_OK(session.value()->Run({{"x", xs}, {"y", ys}}, {},
                                     {train_op.value()->name()}, nullptr));
  }
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({{"x", xs}, {"y", ys}}, {loss.name()}, {},
                                   &out));
  final_loss = *out[0].data<float>();
  EXPECT_LT(final_loss, 0.05f);  // XOR is learned
}

TEST(LayersTest, ConvLayerForwardShape) {
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  Output x =
      ops::Placeholder(&b, DataType::kFloat, TensorShape({2, 8, 8, 3}), "x");
  Output y = nn::ConvLayer(&store, x, 3, 16, 3, 2, "SAME",
                           nn::Activation::kRelu, "conv");
  Node* init = store.BuildInitOp();
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  PhiloxRandom rng(1);
  Tensor img = data::SyntheticImageBatch(2, 8, 8, 3, &rng);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({{"x", img}}, {y.name()}, {}, &out));
  EXPECT_EQ(out[0].shape().DebugString(), "[2,4,4,16]");
  // ReLU output is non-negative.
  for (int64_t i = 0; i < out[0].num_elements(); ++i) {
    EXPECT_GE(out[0].flat<float>(i), 0.0f);
  }
}

TEST(EmbeddingTest, LookupMatchesDirectIndexing) {
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  nn::ShardedEmbedding emb(&store, "emb", /*vocab=*/10, /*dim=*/4,
                           /*num_shards=*/3);
  Output indices =
      ops::Placeholder(&b, DataType::kInt32, TensorShape({5}), "idx");
  Output looked_up = emb.Lookup(indices);
  Node* init = store.BuildInitOp();
  // Reference: read each shard directly.
  std::vector<Output> shard_reads;
  for (const Output& s : emb.shards()) {
    shard_reads.push_back(ops::Identity(&b, s));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  Tensor idx = Tensor::Vec<int32_t>({7, 0, 4, 7, 2});
  std::vector<Tensor> out;
  std::vector<std::string> fetches = {looked_up.name()};
  for (const Output& r : shard_reads) fetches.push_back(r.name());
  TF_CHECK_OK(session.value()->Run({{"idx", idx}}, fetches, {}, &out));
  ASSERT_EQ(out[0].shape().DebugString(), "[5,4]");
  // Row i of the result must equal shard[idx%3] row [idx/3].
  for (int i = 0; i < 5; ++i) {
    int32_t ix = idx.flat<int32_t>(i);
    const Tensor& shard = out[1 + ix % 3];
    for (int d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(out[0].matrix<float>(i, d),
                      shard.matrix<float>(ix / 3, d))
          << "row " << i << " dim " << d;
    }
  }
}

TEST(EmbeddingTest, DenseGradientTrainsEmbedding) {
  // Train embeddings so that looked-up rows match targets, via generic
  // autodiff through Gather/DynamicPartition/DynamicStitch.
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  nn::ShardedEmbedding emb(&store, "emb", 6, 2, 2);
  Output indices = Const(&b, Tensor::Vec<int32_t>({0, 3, 5}));
  Output target = Const(&b, Tensor::FromVector<float>(
                                {1, 0, 0, 1, -1, -1}, TensorShape({3, 2})));
  Output looked_up = emb.Lookup(indices);
  Output loss = ops::MeanAll(&b, ops::Square(&b, ops::Sub(&b, looked_up,
                                                          target)));
  train::GradientDescentOptimizer opt(1.0f);
  Result<Node*> train_op = opt.Minimize(&b, loss, emb.shards(), "train");
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  Node* init = store.BuildInitOp();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  for (int i = 0; i < 100; ++i) {
    TF_CHECK_OK(
        session.value()->Run({}, {}, {train_op.value()->name()}, nullptr));
  }
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({loss.name()}, &out));
  EXPECT_LT(*out[0].data<float>(), 1e-4f);
}

TEST(EmbeddingTest, SparseApplySgdUpdatesOnlyTouchedRows) {
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  nn::ShardedEmbedding emb(&store, "emb", 4, 2, 2);
  Output indices = Const(&b, Tensor::Vec<int32_t>({1}));
  // Gradient of 1.0 on the single looked-up row.
  Output grad = Const(&b, Tensor::FromVector<float>({1, 1}, TensorShape({1, 2})));
  Node* update = emb.SparseApplySgd(indices, grad, /*lr=*/0.5f);
  Node* init = store.BuildInitOp();
  std::vector<Output> reads;
  for (const Output& s : emb.shards()) reads.push_back(ops::Identity(&b, s));
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  std::vector<Tensor> before;
  TF_CHECK_OK(
      session.value()->Run({reads[0].name(), reads[1].name()}, &before));
  TF_CHECK_OK(session.value()->Run({}, {}, {update->name()}, nullptr));
  std::vector<Tensor> after;
  TF_CHECK_OK(
      session.value()->Run({reads[0].name(), reads[1].name()}, &after));
  // Index 1 -> shard 1 (1 % 2), local row 0. Only that row changed.
  EXPECT_FLOAT_EQ(after[1].matrix<float>(0, 0),
                  before[1].matrix<float>(0, 0) - 0.5f);
  EXPECT_FLOAT_EQ(after[0].matrix<float>(0, 0),
                  before[0].matrix<float>(0, 0));
  EXPECT_FLOAT_EQ(after[1].matrix<float>(1, 0),
                  before[1].matrix<float>(1, 0));
}

TEST(SoftmaxHeadTest, FullSoftmaxLearnsSyntheticClasses) {
  data::ClusteredDataset dataset(/*classes=*/4, /*dim=*/8, /*seed=*/5);
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({16, 8}), "x");
  Output y = ops::Placeholder(&b, DataType::kInt64, TensorShape({16}), "y");
  nn::FullSoftmaxHead head(&store, "softmax", 8, 4, /*num_shards=*/2);
  nn::SoftmaxLoss sm = head.Loss(x, y);
  train::GradientDescentOptimizer opt(0.5f);
  Result<Node*> train_op =
      opt.Minimize(&b, sm.loss, store.variables(), "train");
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  Node* init = store.BuildInitOp();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  float last_loss = 0;
  for (int i = 0; i < 150; ++i) {
    Tensor features, labels;
    dataset.Batch(16, &features, &labels);
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({{"x", features}, {"y", labels}},
                                     {sm.loss.name()},
                                     {train_op.value()->name()}, &out));
    last_loss = *out[0].data<float>();
  }
  EXPECT_LT(last_loss, 0.7f);  // well below log(4) ~ 1.39
}

TEST(SoftmaxHeadTest, SampledSoftmaxLearns) {
  data::ClusteredDataset dataset(4, 8, 6);
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({16, 8}), "x");
  Output y = ops::Placeholder(&b, DataType::kInt64, TensorShape({16}), "y");
  nn::SampledSoftmaxHead head(&store, "sampled", 8, 4, /*num_sampled=*/2,
                              /*num_shards=*/2);
  nn::SoftmaxLoss sm = head.Loss(x, y);
  train::GradientDescentOptimizer opt(0.2f);
  Result<Node*> train_op =
      opt.Minimize(&b, sm.loss, store.variables(), "train");
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  Node* init = store.BuildInitOp();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  float first_loss = -1;
  float last_loss = 0;
  for (int i = 0; i < 200; ++i) {
    Tensor features, labels;
    dataset.Batch(16, &features, &labels);
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({{"x", features}, {"y", labels}},
                                     {sm.loss.name()},
                                     {train_op.value()->name()}, &out));
    if (first_loss < 0) first_loss = *out[0].data<float>();
    last_loss = *out[0].data<float>();
  }
  EXPECT_LT(last_loss, first_loss * 0.8f);  // clear learning signal
}

TEST(RnnTest, LstmStepShapesAndTraining) {
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  nn::LSTMCell cell(&store, "lstm", /*input=*/4, /*hidden=*/6);
  Output x0 =
      ops::Placeholder(&b, DataType::kFloat, TensorShape({2, 4}), "x0");
  Output x1 =
      ops::Placeholder(&b, DataType::kFloat, TensorShape({2, 4}), "x1");
  std::vector<Output> outs = nn::UnrollLSTM(&cell, {x0, x1});
  ASSERT_EQ(outs.size(), 2u);
  Output target = Const(&b, Tensor(DataType::kFloat, TensorShape({2, 6})));
  Output loss =
      ops::MeanAll(&b, ops::Square(&b, ops::Sub(&b, outs[1], target)));
  train::AdamOptimizer opt(0.05f);
  Result<Node*> train_op = opt.Minimize(&b, loss, store.variables(), "train");
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  Node* init = store.BuildInitOp();
  Node* opt_init = train::BuildInitOp(&b, {}, {&opt}, "opt_init");
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {},
                                   {init->name(), opt_init->name()}, nullptr));
  Tensor xa = Tensor::FromVector<float>({1, 0, 0, 1, 0, 1, 1, 0},
                                        TensorShape({2, 4}));
  Tensor xb = Tensor::FromVector<float>({0, 1, 1, 0, 1, 0, 0, 1},
                                        TensorShape({2, 4}));
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({{"x0", xa}, {"x1", xb}},
                                   {outs[1].name(), loss.name()}, {}, &out));
  EXPECT_EQ(out[0].shape().DebugString(), "[2,6]");
  float initial_loss = *out[1].data<float>();
  for (int i = 0; i < 60; ++i) {
    TF_CHECK_OK(session.value()->Run({{"x0", xa}, {"x1", xb}}, {},
                                     {train_op.value()->name()}, nullptr));
  }
  TF_CHECK_OK(
      session.value()->Run({{"x0", xa}, {"x1", xb}}, {loss.name()}, {}, &out));
  EXPECT_LT(*out[0].data<float>(), initial_loss * 0.2f);
}

TEST(ModelZooTest, FlopCountsMatchPublishedMagnitudes) {
  // Forward FLOPs per example (multiply+add counted separately):
  // AlexNet ~1.4e9, OxfordNet(VGG-A) ~15e9, GoogleNet ~3e9,
  // Inception-v3 ~1e10 ("5 billion multiply-adds", §2.1).
  double alex = nn::AlexNet(1).ForwardFlopsPerExample();
  EXPECT_GT(alex, 0.8e9);
  EXPECT_LT(alex, 3e9);
  double vgg = nn::OxfordNet(1).ForwardFlopsPerExample();
  EXPECT_GT(vgg, 10e9);
  EXPECT_LT(vgg, 25e9);
  double inception = nn::GoogleNet(1).ForwardFlopsPerExample();
  EXPECT_GT(inception, 2e9);
  EXPECT_LT(inception, 5e9);
  double v3 = nn::InceptionV3(1).ForwardFlopsPerExample();
  EXPECT_GT(v3, 6e9);
  EXPECT_LT(v3, 16e9);
  double overfeat = nn::Overfeat(1).ForwardFlopsPerExample();
  EXPECT_GT(overfeat, 3e9);
  EXPECT_LT(overfeat, 12e9);
}

TEST(ModelZooTest, ParamSizesMatchPublishedMagnitudes) {
  // AlexNet ~60M params (~240 MB), VGG-A ~130M, GoogleNet ~7M,
  // Inception-v3 ~24M.
  EXPECT_NEAR(nn::AlexNet(1).TotalParamBytes() / 4e6, 60, 25);
  EXPECT_NEAR(nn::OxfordNet(1).TotalParamBytes() / 4e6, 130, 40);
  EXPECT_NEAR(nn::GoogleNet(1).TotalParamBytes() / 4e6, 7, 4);
  EXPECT_NEAR(nn::InceptionV3(1).TotalParamBytes() / 4e6, 24, 12);
}

TEST(ModelZooTest, LstmLmScalesWithSoftmaxWidth) {
  // Full softmax (40000 classes) vs sampled (513): compute ratio should be
  // roughly the 78x data/compute reduction quoted in §6.4 for the softmax
  // portion.
  auto full = nn::LstmLanguageModel(1, 40000, 512, 512, 1, 40000);
  auto sampled = nn::LstmLanguageModel(1, 40000, 512, 512, 1, 513);
  double full_softmax = 2.0 * 512 * 40000;
  double sampled_softmax = 2.0 * 512 * 513;
  EXPECT_NEAR(full_softmax / sampled_softmax, 78.0, 1.0);
  EXPECT_GT(full.ForwardFlopsPerExample(),
            sampled.ForwardFlopsPerExample() * 5);
}

TEST(DataTest, ClusteredDatasetIsLearnableShape) {
  data::ClusteredDataset ds(3, 4, 11);
  Tensor f, l;
  ds.Batch(32, &f, &l);
  EXPECT_EQ(f.shape().DebugString(), "[32,4]");
  EXPECT_EQ(l.shape().DebugString(), "[32]");
  for (int i = 0; i < 32; ++i) {
    EXPECT_GE(l.flat<int64_t>(i), 0);
    EXPECT_LT(l.flat<int64_t>(i), 3);
  }
}

TEST(DataTest, ZipfStreamIsSkewed) {
  data::ZipfTokenStream stream(1000, 1.0, 13);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[stream.Next()];
  }
  // Rank-0 token should be far more common than rank-100.
  EXPECT_GT(counts[0], counts[100] * 5);
}

TEST(DataTest, ZipfBatchPairsTokensWithNextTokens) {
  data::ZipfTokenStream stream(50, 1.0, 17);
  Tensor tokens, labels;
  stream.Batch(2, 8, &tokens, &labels);
  EXPECT_EQ(tokens.shape().DebugString(), "[2,8]");
  // labels[t] == tokens[t+1] within a row.
  for (int b = 0; b < 2; ++b) {
    for (int t = 0; t + 1 < 8; ++t) {
      EXPECT_EQ(labels.matrix<int64_t>(b, t), tokens.matrix<int64_t>(b, t + 1));
    }
  }
}


TEST(BuildModelTest, TinyConvNetFromSpecRunsAndHasRightShape) {
  // A miniature linear spec through the same BuildConvNet path the zoo
  // models use.
  nn::ModelSpec spec;
  spec.name = "tiny";
  spec.batch = 2;
  {
    nn::LayerSpec conv;
    conv.kind = nn::LayerSpec::Kind::kConv;
    conv.in_h = conv.in_w = 8;
    conv.in_c = 3;
    conv.k = 3;
    conv.stride = 1;
    conv.out_c = 4;
    spec.layers.push_back(conv);
    nn::LayerSpec pool;
    pool.kind = nn::LayerSpec::Kind::kPool;
    pool.in_h = pool.in_w = 8;
    pool.in_c = pool.out_c = 4;
    pool.k = 2;
    pool.stride = 2;
    spec.layers.push_back(pool);
    nn::LayerSpec fc;
    fc.kind = nn::LayerSpec::Kind::kFullyConnected;
    fc.in_dim = 4 * 4 * 4;
    fc.out_dim = 10;
    spec.layers.push_back(fc);
  }

  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  Output images =
      ops::Placeholder(&b, DataType::kFloat, TensorShape({2, 8, 8, 3}), "x");
  Result<Output> logits = nn::BuildConvNet(&store, images, spec);
  ASSERT_TRUE(logits.ok()) << logits.status();
  Node* init = store.BuildInitOp();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  PhiloxRandom rng(3);
  Tensor batch = data::SyntheticImageBatch(2, 8, 8, 3, &rng);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({{"x", batch}}, {logits.value().name()},
                                   {}, &out));
  EXPECT_EQ(out[0].shape().DebugString(), "[2,10]");
}

TEST(BuildModelTest, TinyConvNetTrains) {
  nn::ModelSpec spec;
  spec.name = "trainable";
  spec.batch = 4;
  {
    nn::LayerSpec conv;
    conv.kind = nn::LayerSpec::Kind::kConv;
    conv.in_h = conv.in_w = 4;
    conv.in_c = 1;
    conv.k = 3;
    conv.stride = 1;
    conv.out_c = 2;
    spec.layers.push_back(conv);
    nn::LayerSpec fc;
    fc.kind = nn::LayerSpec::Kind::kFullyConnected;
    fc.in_dim = 4 * 4 * 2;
    fc.out_dim = 2;
    spec.layers.push_back(fc);
  }
  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  Output images =
      ops::Placeholder(&b, DataType::kFloat, TensorShape({4, 4, 4, 1}), "x");
  Output labels = ops::Placeholder(&b, DataType::kInt64, TensorShape({4}), "y");
  Result<Output> logits = nn::BuildConvNet(&store, images, spec);
  ASSERT_TRUE(logits.ok());
  Node* xent =
      ops::SparseSoftmaxCrossEntropyWithLogits(&b, logits.value(), labels);
  Output loss = ops::MeanAll(&b, Output(xent, 0));
  train::AdamOptimizer opt(0.05f);
  Result<Node*> train_op = opt.Minimize(&b, loss, store.variables(), "train");
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  Node* init = store.BuildInitOp();
  Node* opt_init = train::BuildInitOp(&b, {}, {&opt}, "opt_init");
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name(), opt_init->name()},
                                   nullptr));
  // Simple learnable rule: class = whether the mean pixel is positive.
  PhiloxRandom rng(5);
  auto make_batch = [&](Tensor* x, Tensor* y) {
    *x = Tensor(DataType::kFloat, TensorShape({4, 4, 4, 1}));
    *y = Tensor(DataType::kInt64, TensorShape({4}));
    for (int i = 0; i < 4; ++i) {
      int64_t cls = rng.UniformInt(2);
      y->flat<int64_t>(i) = cls;
      for (int j = 0; j < 16; ++j) {
        x->flat<float>(i * 16 + j) =
            (cls ? 0.5f : -0.5f) + 0.1f * rng.Normal();
      }
    }
  };
  float last = 0;
  for (int step = 0; step < 120; ++step) {
    Tensor x, y;
    make_batch(&x, &y);
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({{"x", x}, {"y", y}}, {loss.name()},
                                     {train_op.value()->name()}, &out));
    last = *out[0].data<float>();
  }
  EXPECT_LT(last, 0.3f);  // well below log(2) ~ 0.69
}


TEST(RecordFileTest, RoundTripPreservesRecords) {
  std::string path = ::testing::TempDir() + "/records_roundtrip";
  {
    data::RecordWriter writer(path);
    TF_CHECK_OK(writer.Append("hello"));
    TF_CHECK_OK(writer.Append(std::string("\x00\x01binary", 8)));
    TF_CHECK_OK(writer.Append(""));  // empty records are legal
    TF_CHECK_OK(writer.Close());
    EXPECT_EQ(writer.records_written(), 3);
  }
  data::RecordReader reader(path);
  std::string record;
  TF_CHECK_OK(reader.ReadNext(&record));
  EXPECT_EQ(record, "hello");
  TF_CHECK_OK(reader.ReadNext(&record));
  EXPECT_EQ(record.size(), 8u);
  TF_CHECK_OK(reader.ReadNext(&record));
  EXPECT_EQ(record, "");
  Status end = reader.ReadNext(&record);
  EXPECT_EQ(end.code(), Code::kOutOfRange);
}

TEST(RecordFileTest, DetectsTruncation) {
  std::string path = ::testing::TempDir() + "/records_truncated";
  {
    data::RecordWriter writer(path);
    TF_CHECK_OK(writer.Append("a full record"));
    TF_CHECK_OK(writer.Close());
  }
  // Chop the tail off.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 4);
  data::RecordReader reader(path);
  std::string record;
  Status s = reader.ReadNext(&record);
  EXPECT_EQ(s.code(), Code::kDataLoss);
}

TEST(RecordFileTest, DetectsCorruption) {
  std::string path = ::testing::TempDir() + "/records_corrupt";
  {
    data::RecordWriter writer(path);
    TF_CHECK_OK(writer.Append("sensitive payload"));
    TF_CHECK_OK(writer.Close());
  }
  // Flip a payload byte (header is 12 bytes).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(14);
    f.put('X');
  }
  data::RecordReader reader(path);
  std::string record;
  Status s = reader.ReadNext(&record);
  EXPECT_EQ(s.code(), Code::kDataLoss);
  EXPECT_NE(s.message().find("checksum"), std::string::npos);
}

TEST(RecordFileTest, MissingFileReportsNotFound) {
  data::RecordReader reader("/nonexistent/records");
  std::string record;
  EXPECT_EQ(reader.ReadNext(&record).code(), Code::kNotFound);
}

}  // namespace
}  // namespace tfrepro
