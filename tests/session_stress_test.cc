// Concurrent Session::Run stress: many client threads hammer ONE
// DirectSession with a mix of step signatures — stateful updates
// (AssignAdd through a shared Variable), pure compute (MatMul fetch), and
// feed-dependent steps — exercising the executor-cache fast path, the
// first-Run compile race for each signature, and per-step isolation of
// rendezvous/frame state. Runs in the TSan subset of scripts/check.sh:
// the assertions here check linearizable effects (no lost variable
// updates), TSan checks the memory orderings underneath them.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "graph/ops.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

TEST(SessionStressTest, ConcurrentMixedSignatureRuns) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 60;

  Graph g;
  GraphBuilder b(&g);
  Output counter =
      ops::Variable(&b, DataType::kFloat, TensorShape(), "counter");
  Output init = ops::Assign(&b, counter, Const(&b, 0.0f));
  Output bump = ops::AssignAdd(&b, counter, Const(&b, 1.0f));
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({1, 4}), "x");
  Output w = Const(&b, Tensor::FromVector<float>(
                           {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                            15, 16},
                           TensorShape({4, 4})));
  Output y = ops::MatMul(&b, x, w);
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok()) << session.status();
  DirectSession* s = session.value().get();
  TF_CHECK_OK(s->Run({}, {}, {init.node->name()}, nullptr));

  const Tensor feed = Tensor::FromVector<float>({1, 0, 0, 1},
                                                TensorShape({1, 4}));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Every thread interleaves three distinct signatures so executor
        // compilation and cache hits race from the first iteration.
        Status st = s->Run({}, {}, {bump.node->name()}, nullptr);
        if (!st.ok()) {
          failures.fetch_add(1);
          continue;
        }
        std::vector<Tensor> out;
        st = s->Run({{"x", feed}}, {y.name()}, {}, &out);
        if (!st.ok() || out[0].flat<float>(0) != 1.0f + 13.0f) {
          failures.fetch_add(1);
          continue;
        }
        // Third signature: fetch and stateful target in one step.
        if ((i + t) % 3 == 0) {
          st = s->Run({{"x", feed}}, {y.name()}, {bump.node->name()}, &out);
          if (!st.ok()) failures.fetch_add(1);
        }
        // Fourth signature: fetch the mutating variable mid-flight. _Fetch
        // snapshots ref outputs under the variable's mutex, so this must be
        // an untorn whole-number value even while other threads AssignAdd.
        if ((i + t) % 3 == 1) {
          st = s->Run({counter.name()}, &out);
          const float v = st.ok() ? out[0].flat<float>(0) : -1.0f;
          if (!st.ok() || v != static_cast<float>(static_cast<int64_t>(v))) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // No lost updates: the shared Variable saw every AssignAdd exactly once —
  // one per iteration from the targets-only signature plus one per
  // third-signature step ((i + t) % 3 == 0 hits 20 of 60 iters per thread).
  std::vector<Tensor> out;
  TF_CHECK_OK(s->Run({counter.name()}, &out));
  EXPECT_FLOAT_EQ(out[0].flat<float>(0),
                  static_cast<float>(kThreads * kItersPerThread +
                                     kThreads * (kItersPerThread / 3)));
}

TEST(SessionStressTest, ConcurrentWarmupAndRun) {
  // Warmup racing Run on the same fresh signature must be safe (both sides
  // hit GetOrCreateExecutors for the same key).
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({1, 2}), "x");
  Output two = Const(&b, Tensor::FromVector<float>({2, 0, 0, 2},
                                                   TensorShape({2, 2})));
  Output y = ops::MatMul(&b, x, two);
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok()) << session.status();
  DirectSession* s = session.value().get();

  const Tensor feed =
      Tensor::FromVector<float>({3, 4}, TensorShape({1, 2}));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        if (!s->Warmup({"x"}, {y.name()}, {}).ok()) failures.fetch_add(1);
      }
      std::vector<Tensor> out;
      Status st = s->Run({{"x", feed}}, {y.name()}, {}, &out);
      if (!st.ok() || out[0].flat<float>(0) != 6.0f) failures.fetch_add(1);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tfrepro
