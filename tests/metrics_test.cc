// Tests for the metrics registry (DESIGN.md §8): concurrent counter
// increments, histogram bucket boundaries, snapshot isolation, tag
// separation, and the JSON export.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/metrics.h"

namespace tfrepro {
namespace metrics {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumCorrectly) {
  Registry registry;
  Counter* counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(CounterTest, IncrementByN) {
  Registry registry;
  Counter* counter = registry.GetCounter("test.n");
  counter->Increment(5);
  counter->Increment(37);
  EXPECT_EQ(counter->value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(10);
  EXPECT_EQ(gauge->value(), 10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 7);
  gauge->Set(0);
  EXPECT_EQ(gauge->value(), 0);
}

TEST(HistogramTest, BucketBoundaries) {
  Registry registry;
  // Buckets: (-inf,1], (1,10], (10,100], (100,+inf).
  Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  h->Record(0.5);    // bucket 0
  h->Record(1.0);    // bucket 0 (v <= bound is inclusive)
  h->Record(1.0001); // bucket 1
  h->Record(10.0);   // bucket 1
  h->Record(99.9);   // bucket 2
  h->Record(100.0);  // bucket 2
  h->Record(100.1);  // +inf bucket
  h->Record(1e9);    // +inf bucket

  std::vector<int64_t> counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h->count(), 8);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 +
                                 100.1 + 1e9);
}

TEST(HistogramTest, ConcurrentRecordsKeepCountAndSum) {
  Registry registry;
  Histogram* h = registry.GetHistogram("test.hist.conc", {1.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h]() {
      for (int i = 0; i < kPerThread; ++i) h->Record(2.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  // The sum is maintained with a CAS loop, so no increments may be lost.
  EXPECT_DOUBLE_EQ(h->sum(), 2.0 * kThreads * kPerThread);
  std::vector<int64_t> counts = h->bucket_counts();
  EXPECT_EQ(counts[1], kThreads * kPerThread);
}

TEST(HistogramTest, DefaultLatencyBucketsCoverMicrosToMinutes) {
  std::vector<double> bounds = Histogram::DefaultLatencyBucketsMs();
  ASSERT_GE(bounds.size(), 8u);
  EXPECT_LE(bounds.front(), 0.001);   // 1us
  EXPECT_GE(bounds.back(), 60000.0);  // >= 1 minute
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(RegistryTest, SameNameAndTagsReturnsSameInstrument) {
  Registry registry;
  EXPECT_EQ(registry.GetCounter("c", {{"k", "v"}}),
            registry.GetCounter("c", {{"k", "v"}}));
  EXPECT_NE(registry.GetCounter("c", {{"k", "v"}}),
            registry.GetCounter("c", {{"k", "w"}}));
  EXPECT_NE(registry.GetCounter("c"), registry.GetCounter("d"));
}

TEST(RegistryTest, TagsSeparateAndTotalValueSums) {
  Registry registry;
  registry.GetCounter("requests", {{"task", "a"}})->Increment(3);
  registry.GetCounter("requests", {{"task", "b"}})->Increment(4);

  RegistrySnapshot snap = registry.Snapshot();
  const MetricSnapshot* a = snap.Find("requests", {{"task", "a"}});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, 3);
  EXPECT_EQ(snap.TotalValue("requests"), 7);
  EXPECT_EQ(snap.Find("requests", {{"task", "zzz"}}), nullptr);
}

TEST(RegistryTest, SnapshotIsolation) {
  Registry registry;
  Counter* counter = registry.GetCounter("iso");
  Histogram* h = registry.GetHistogram("iso.hist", {1.0});
  counter->Increment(10);
  h->Record(0.5);

  RegistrySnapshot snap = registry.Snapshot();
  // Mutations after the snapshot must not be visible in it.
  counter->Increment(100);
  h->Record(0.5);
  h->Record(5.0);

  const MetricSnapshot* c = snap.Find("iso");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 10);
  const MetricSnapshot* hs = snap.Find("iso.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1);
  EXPECT_EQ(hs->bucket_counts[0], 1);
  EXPECT_EQ(hs->bucket_counts[1], 0);

  // The live instruments did move on.
  EXPECT_EQ(registry.Snapshot().Find("iso")->value, 110);
}

TEST(RegistryTest, JsonExportContainsEntries) {
  Registry registry;
  registry.GetCounter("json.counter", {{"task", "w0"}})->Increment(2);
  registry.GetGauge("json.gauge")->Set(-5);
  registry.GetHistogram("json.hist", {1.0})->Record(0.5);

  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"task\":\"w0\""), std::string::npos);
  EXPECT_NE(json.find("\"json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("-5"), std::string::npos);
  EXPECT_NE(json.find("\"json.hist\""), std::string::npos);
  // Valid JSON shape, at least superficially.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(Registry::Global(), Registry::Global());
  EXPECT_NE(Registry::Global(), nullptr);
}

TEST(HistogramTest, PercentileInterpolatesWithinBuckets) {
  Registry registry;
  Histogram* h = registry.GetHistogram("pct.hist", {1.0, 10.0, 100.0});
  // 100 samples spread evenly through the (1, 10] bucket.
  for (int i = 0; i < 100; ++i) h->Record(5.0);

  RegistrySnapshot snap = registry.Snapshot();
  const MetricSnapshot* m = snap.Find("pct.hist");
  ASSERT_NE(m, nullptr);
  // Everything is in one bucket: all quantiles interpolate inside (1, 10].
  EXPECT_GT(m->Percentile(0.0), 1.0 - 1e-9);
  EXPECT_LE(m->Percentile(0.5), 10.0);
  EXPECT_LE(m->Percentile(0.99), 10.0);
  EXPECT_GE(m->Percentile(0.99), m->Percentile(0.5));

  // A bimodal distribution separates p50 from p99 across buckets.
  Histogram* h2 = registry.GetHistogram("pct.bimodal", {1.0, 10.0, 100.0});
  for (int i = 0; i < 99; ++i) h2->Record(0.5);
  for (int i = 0; i < 99; ++i) h2->Record(50.0);
  snap = registry.Snapshot();
  m = snap.Find("pct.bimodal");
  ASSERT_NE(m, nullptr);
  EXPECT_LE(m->Percentile(0.25), 1.0);
  EXPECT_GT(m->Percentile(0.99), 10.0);

  // +inf samples report the last finite bound; empty histograms report 0.
  Histogram* h3 = registry.GetHistogram("pct.inf", {1.0, 10.0});
  h3->Record(1e9);
  snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Find("pct.inf")->Percentile(0.99), 10.0);
  registry.GetHistogram("pct.empty", {1.0});
  snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Find("pct.empty")->Percentile(0.5), 0.0);
  // Counters have no quantiles.
  registry.GetCounter("pct.counter")->Increment();
  snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Find("pct.counter")->Percentile(0.5), 0.0);
}

TEST(NowMicrosTest, Monotonic) {
  int64_t a = NowMicros();
  int64_t b = NowMicros();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace metrics
}  // namespace tfrepro
