// Seeded deterministic chaos harness (§4.3): N training steps against the
// distributed runtime while a randomized-but-reproducible FaultInjector
// schedule kills, hangs, delays, and drops transfers. Each seed is a
// separate test so CI reports exactly which schedule broke; the seed is
// printed on every failure via SCOPED_TRACE.
//
// Invariants checked per seed:
//   * every training step eventually succeeds (retry/restart/recovery
//     absorb the injected faults);
//   * exactly-once commit: a per-step counter variable equals N — no step
//     both commits and is re-applied by a retry (every retry restores the
//     last checkpoint first, so partial commits of aborted attempts never
//     compound);
//   * the variable trajectory matches the fault-free reference bit-exactly
//     (pure power-of-two SGD, so float arithmetic is exact);
//   * no leaked rendezvous state: once the session, cluster, and injector
//     (which owns callbacks parked by hangs) are destroyed, the global
//     rendezvous.live_items / live_waiters gauges return to zero.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "distributed/fault_injector.h"
#include "distributed/master.h"
#include "graph/ops.h"
#include "train/checkpoint_policy.h"
#include "train/optimizer.h"
#include "train/saver.h"

namespace tfrepro {
namespace {

using distributed::ClusterSpec;
using distributed::FaultInjector;
using distributed::InProcessCluster;
using distributed::MasterSession;
using ops::Const;

constexpr int kChaosSteps = 12;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool WaitFor(const std::function<bool()>& cond, double timeout_s) {
  auto start = std::chrono::steady_clock::now();
  while (SecondsSince(start) < timeout_s) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

// One chaos run under a fixed seed. All faults are drawn from a seeded
// generator scripting the (itself deterministic) injector, so a failing
// seed replays identically.
void RunChaos(uint64_t seed) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));

  const std::vector<std::string> tasks = {
      "/job:ps/task:0", "/job:worker/task:0", "/job:worker/task:1"};

  {
    FaultInjector injector;
    ClusterSpec spec;
    spec.jobs["ps"] = 1;
    spec.jobs["worker"] = 2;
    InProcessCluster::Options copts;
    copts.fault_injector = &injector;
    auto cluster = InProcessCluster::Create(spec, copts);
    ASSERT_TRUE(cluster.ok()) << cluster.status();

    Graph g;
    GraphBuilder b(&g);
    Output w;
    Output c;
    Output r;
    Node* init = nullptr;
    Node* bump = nullptr;
    {
      GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
      w = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "w");
      c = ops::Variable(&b, DataType::kFloat, TensorShape(), "c");
      // Read-only payload for the second worker. It must NOT read `w`: the
      // in-process rendezvous shares buffers, and an independent read of a
      // variable the same step updates in place is an (intentional,
      // paper-semantics) data race — fine for async training, not for a
      // TSan-clean harness.
      r = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "r");
      init = ops::Group(
          &b,
          {ops::Assign(&b, w, Const(&b, Tensor::Vec<float>({4, -4}))),
           ops::Assign(&b, c, Const(&b, 0.0f)),
           ops::Assign(&b, r, Const(&b, Tensor::Vec<float>({1, 2})))},
          "init");
      bump = ops::Group(&b, {ops::AssignAdd(&b, c, Const(&b, 1.0f))}, "bump");
    }
    Output loss;
    Result<Node*> train_op = Internal("unset");
    train::GradientDescentOptimizer opt(0.25f);
    {
      GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
      loss = ops::SumAll(&b, ops::Square(&b, w));
      train_op = opt.Minimize(&b, loss, {w}, "train");
    }
    ASSERT_TRUE(train_op.ok()) << train_op.status();
    // Cross-task work on the second worker every step, so it too is a
    // target for faults (reads only the never-updated `r`, see above).
    Output aux;
    {
      GraphBuilder::DeviceScope scope(&b, "/job:worker/task:1");
      aux = ops::SumAll(&b, ops::Square(&b, r));
    }
    Node* aux_target = ops::Group(&b, {aux}, "aux");
    train::Saver saver(&b, {w, c, r});
    ASSERT_TRUE(b.ok()) << b.status();

    MasterSession::Options options;
    options.step_deadline_seconds = 0.3;
    options.max_step_retries = 6;
    options.restart_failed_tasks = true;
    options.retry_backoff_initial_seconds = 1e-4;
    options.health_probe_interval_seconds = 0.05;
    options.health_probe_miss_threshold = 3;
    auto session = MasterSession::Create(g, cluster.value().get(), options);
    ASSERT_TRUE(session.ok()) << session.status();
    MasterSession* sess = session.value().get();

    const std::string dir =
        ::testing::TempDir() + "/chaos_seed" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    train::CheckpointPolicy policy(&saver, dir + "/model",
                                   /*save_every_n_steps=*/1);
    sess->set_recovery_handler([&] { return policy.Recover(sess); });

    TF_CHECK_OK(sess->Run({}, {}, {init->name()}, nullptr));
    // Checkpoint the initial state so a fault in step 1 has something to
    // recover to.
    TF_CHECK_OK(policy.AfterStep(sess, 0));

    std::mt19937_64 rng(seed);
    const std::vector<std::string> step_targets = {
        train_op.value()->name(), bump->name(), aux_target->name()};
    for (int step = 1; step <= kChaosSteps; ++step) {
      const std::string& task = tasks[rng() % tasks.size()];
      switch (rng() % 100 / 20) {
        case 0:  // no fault this step
          break;
        case 1:
          injector.KillTaskAtDispatch(task, injector.dispatches(task) + 1);
          break;
        case 2:
          injector.HangTaskAtDispatch(task, injector.dispatches(task) + 1);
          break;
        case 3:
          injector.DelayTask(task, 0.01 + 0.01 * (rng() % 3));
          break;
        default:
          injector.DropNthTransfer(injector.transfers() + 1 + rng() % 3);
          break;
      }
      Status s = sess->Run({}, {}, step_targets, nullptr);
      ASSERT_TRUE(s.ok()) << "step " << step << ": " << s;
      for (const std::string& t : tasks) injector.DelayTask(t, 0.0);
      Status saved = policy.AfterStep(sess, step);
      ASSERT_TRUE(saved.ok()) << "checkpoint after step " << step << ": "
                              << saved;
    }

    // The schedule must have actually perturbed the run — a vacuous chaos
    // test would pass trivially.
    EXPECT_FALSE(injector.injected_events().empty());

    // Exactly-once commit: the counter saw each step once, despite
    // retries/restarts (stats().retries may well be > 0).
    std::vector<Tensor> out;
    TF_CHECK_OK(sess->Run({c.name(), loss.name()}, &out));
    EXPECT_EQ(*out[0].data<float>(), float(kChaosSteps));

    // Bit-exact fault-free reference: w halves each step, so the loss is
    // 2 * (4 * 2^-N)^2 — all powers of two.
    const float expected = 2.0f * std::ldexp(4.0f, -kChaosSteps) *
                           std::ldexp(4.0f, -kChaosSteps);
    EXPECT_EQ(*out[1].data<float>(), expected);
  }
  // Session, cluster, and injector (incl. callbacks parked by hung
  // dispatches) are gone; every rendezvous entry those pinned must have
  // been released.
  metrics::Registry* reg = metrics::Registry::Global();
  EXPECT_TRUE(WaitFor(
      [&] { return reg->GetGauge("rendezvous.live_items")->value() == 0; },
      5.0))
      << "leaked rendezvous items: "
      << reg->GetGauge("rendezvous.live_items")->value();
  EXPECT_TRUE(WaitFor(
      [&] { return reg->GetGauge("rendezvous.live_waiters")->value() == 0; },
      5.0))
      << "leaked rendezvous waiters: "
      << reg->GetGauge("rendezvous.live_waiters")->value();
}

TEST(ChaosTest, Seed0) { RunChaos(101); }
TEST(ChaosTest, Seed1) { RunChaos(202); }
TEST(ChaosTest, Seed2) { RunChaos(303); }
TEST(ChaosTest, Seed3) { RunChaos(404); }
TEST(ChaosTest, Seed4) { RunChaos(505); }

}  // namespace
}  // namespace tfrepro
