// Input-pipeline tests (data/dataset.h + kernels/data_ops.cc): record-file
// corruption regression cases, synthetic-generator edge cases, the dataset
// contracts the ISSUE pins down (shuffle determinism by seed, parallel-map
// ordering, prefetch bounded occupancy, batch remainder handling),
// cancellation of blocked producers, and an end-to-end graph pipeline
// through DirectSession.

#include "data/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>
#include <unistd.h>

#include "core/metrics.h"
#include "data/record_file.h"
#include "data/synthetic.h"
#include "graph/ops.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using data::Element;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Pulls every remaining element out of `it`; fails the test on any error.
std::vector<Element> Drain(data::IteratorBase* it) {
  std::vector<Element> out;
  data::IteratorContext ctx;
  for (;;) {
    Element e;
    bool eos = false;
    Status s = it->GetNext(&ctx, &e, &eos);
    TF_CHECK_OK(s);
    if (eos) return out;
    out.push_back(std::move(e));
  }
}

std::vector<std::string> DrainStrings(data::IteratorBase* it) {
  std::vector<std::string> out;
  for (Element& e : Drain(it)) out.push_back(e[0].str(0));
  return out;
}

// -----------------------------------------------------------------------------
// RecordWriter / RecordReader regression tests (silent-I/O-error satellite).
// -----------------------------------------------------------------------------

TEST(RecordFileRegressionTest, TruncatedHeaderIsDataLossNotEof) {
  const std::string path = TempPath("ds_trunc_header");
  {
    data::RecordWriter w(path);
    TF_CHECK_OK(w.Append("first"));
    TF_CHECK_OK(w.Append("second"));
    TF_CHECK_OK(w.Close());
  }
  // Leave record 1 intact plus 5 bytes of record 2's 12-byte header: a
  // mid-header EOF is a torn file, not a clean end.
  std::filesystem::resize_file(path, 12 + 5 + 5);
  data::RecordReader reader(path);
  std::string record;
  TF_CHECK_OK(reader.ReadNext(&record));
  EXPECT_EQ(record, "first");
  EXPECT_EQ(reader.ReadNext(&record).code(), Code::kDataLoss);
}

TEST(RecordFileRegressionTest, TruncatedPayloadIsDataLoss) {
  const std::string path = TempPath("ds_trunc_payload");
  {
    data::RecordWriter w(path);
    TF_CHECK_OK(w.Append("a payload long enough to chop"));
    TF_CHECK_OK(w.Close());
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 7);
  data::RecordReader reader(path);
  std::string record;
  EXPECT_EQ(reader.ReadNext(&record).code(), Code::kDataLoss);
}

TEST(RecordFileRegressionTest, FlippedChecksumIsDataLoss) {
  const std::string path = TempPath("ds_bad_checksum");
  {
    data::RecordWriter w(path);
    TF_CHECK_OK(w.Append("payload"));
    TF_CHECK_OK(w.Close());
  }
  {
    // Header layout: [int64 length][uint32 checksum]; flip a checksum byte.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(8);
    char c = static_cast<char>(f.get());
    f.seekp(8);
    f.put(static_cast<char>(c ^ 0x40));
  }
  data::RecordReader reader(path);
  std::string record;
  Status s = reader.ReadNext(&record);
  EXPECT_EQ(s.code(), Code::kDataLoss);
}

TEST(RecordFileRegressionTest, AbsurdLengthRejectedBeforeAllocation) {
  const std::string path = TempPath("ds_absurd_len");
  {
    std::ofstream f(path, std::ios::binary);
    int64_t length = int64_t{1} << 60;  // would be a 1-EiB allocation
    uint32_t checksum = 0;
    f.write(reinterpret_cast<const char*>(&length), sizeof(length));
    f.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  }
  data::RecordReader reader(path);
  std::string record;
  Status s = reader.ReadNext(&record);
  EXPECT_EQ(s.code(), Code::kDataLoss);
  EXPECT_NE(s.message().find("length"), std::string::npos);

  const std::string neg_path = TempPath("ds_negative_len");
  {
    std::ofstream f(neg_path, std::ios::binary);
    int64_t length = -5;
    uint32_t checksum = 0;
    f.write(reinterpret_cast<const char*>(&length), sizeof(length));
    f.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  }
  data::RecordReader neg_reader(neg_path);
  EXPECT_EQ(neg_reader.ReadNext(&record).code(), Code::kDataLoss);
}

TEST(RecordFileRegressionTest, FullDiskWriteFailsLoudAndStaysBroken) {
  // /dev/full fails every write with ENOSPC — the classic silent-loss trap
  // for buffered writers.
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not writable here";
  }
  data::RecordWriter w("/dev/full");
  Status s = w.Append(std::string(1 << 16, 'x'));
  EXPECT_EQ(s.code(), Code::kDataLoss);
  // The failed write was never counted, and the writer stays broken: the
  // file may end mid-record, so later appends must not write after a gap.
  EXPECT_EQ(w.records_written(), 0);
  EXPECT_EQ(w.Append("tiny").code(), Code::kDataLoss);
  EXPECT_EQ(w.Close().code(), Code::kDataLoss);
}

TEST(RecordFileRegressionTest, AppendAfterCloseIsFailedPrecondition) {
  const std::string path = TempPath("ds_append_after_close");
  data::RecordWriter w(path);
  TF_CHECK_OK(w.Append("one"));
  TF_CHECK_OK(w.Close());
  EXPECT_EQ(w.Append("two").code(), Code::kFailedPrecondition);
  EXPECT_EQ(w.records_written(), 1);
}

// -----------------------------------------------------------------------------
// Synthetic generator edge cases.
// -----------------------------------------------------------------------------

TEST(SyntheticEdgeTest, ZipfVocabSizeOne) {
  data::ZipfTokenStream stream(1, 1.0, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stream.Next(), 0);
  Tensor tokens, labels;
  stream.Batch(2, 3, &tokens, &labels);
  for (int64_t i = 0; i < tokens.num_elements(); ++i) {
    EXPECT_EQ(tokens.flat<int64_t>(i), 0);
  }
}

TEST(SyntheticEdgeTest, ZipfDegenerateVocabClamped) {
  data::ZipfTokenStream stream(0, 1.0, 42);
  // Must not return the -1 an unclamped CDF binary search used to produce.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stream.Next(), 0);
}

TEST(SyntheticEdgeTest, BatchSizeZeroYieldsEmptyTensors) {
  data::ClusteredDataset clustered(4, 8, 7);
  Tensor features, labels;
  clustered.Batch(0, &features, &labels);
  EXPECT_EQ(features.shape(), TensorShape({0, 8}));
  EXPECT_EQ(labels.shape(), TensorShape({0}));

  data::ZipfTokenStream stream(100, 1.0, 7);
  Tensor tokens, next;
  stream.Batch(0, 5, &tokens, &next);
  EXPECT_EQ(tokens.num_elements(), 0);
}

TEST(SyntheticEdgeTest, BatchDeterministicAcrossInterleavedRngUsers) {
  // The generators own private Philox streams: drawing from unrelated RNGs
  // (or another generator) between batches must not perturb their output.
  data::ClusteredDataset a(4, 8, 123);
  PhiloxRandom noise(123, /*stream=*/0);
  for (int i = 0; i < 1000; ++i) noise.Uniform();
  data::ZipfTokenStream interloper(50, 1.2, 123);
  for (int i = 0; i < 77; ++i) interloper.Next();

  data::ClusteredDataset b(4, 8, 123);
  Tensor fa, la, fb, lb;
  a.Batch(16, &fa, &la);
  b.Batch(16, &fb, &lb);
  for (int64_t i = 0; i < fa.num_elements(); ++i) {
    ASSERT_EQ(fa.flat<float>(i), fb.flat<float>(i)) << i;
  }
  for (int64_t i = 0; i < la.num_elements(); ++i) {
    ASSERT_EQ(la.flat<int64_t>(i), lb.flat<int64_t>(i)) << i;
  }
}

// -----------------------------------------------------------------------------
// Dataset framework.
// -----------------------------------------------------------------------------

std::shared_ptr<data::DatasetBase> RecordsDataset(const std::string& path,
                                                  int count) {
  TF_CHECK_OK(data::WriteClusteredRecordFile(path, count, /*num_classes=*/3,
                                             /*dim=*/4, /*seed=*/11));
  auto d = data::NewRecordFileDataset({path});
  TF_CHECK_OK(d.status());
  return d.value();
}

TEST(DatasetTest, RecordFileReadsAllInOrderAcrossFiles) {
  const std::string p1 = TempPath("ds_src_a"), p2 = TempPath("ds_src_b");
  TF_CHECK_OK(data::WriteClusteredRecordFile(p1, 5, 3, 4, 11));
  TF_CHECK_OK(data::WriteClusteredRecordFile(p2, 3, 3, 4, 22));
  auto d = data::NewRecordFileDataset({p1, p2});
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  std::vector<std::string> payloads = DrainStrings(it.value().get());
  ASSERT_EQ(payloads.size(), 8u);

  // Same order as reading the files directly, p1 then p2.
  std::vector<std::string> expected;
  for (const std::string& p : {p1, p2}) {
    data::RecordReader reader(p);
    std::string record;
    while (reader.ReadNext(&record).ok()) expected.push_back(record);
  }
  EXPECT_EQ(payloads, expected);
}

TEST(DatasetTest, RecordFileCorruptionFailsStream) {
  const std::string path = TempPath("ds_src_corrupt");
  TF_CHECK_OK(data::WriteClusteredRecordFile(path, 4, 3, 4, 11));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 3);
  auto d = data::NewRecordFileDataset({path});
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  data::IteratorContext ctx;
  Element e;
  bool eos = false;
  Status s = Status::OK();
  while (s.ok() && !eos) s = it.value()->GetNext(&ctx, &e, &eos);
  EXPECT_EQ(s.code(), Code::kDataLoss);
}

TEST(DatasetTest, ShuffleIsDeterministicPerSeed) {
  const std::string path = TempPath("ds_shuffle");
  auto source = RecordsDataset(path, 50);
  auto run = [&](uint64_t seed) {
    auto d = data::NewShuffleDataset(source, /*buffer_size=*/16, seed);
    TF_CHECK_OK(d.status());
    auto it = d.value()->MakeIterator();
    TF_CHECK_OK(it.status());
    return DrainStrings(it.value().get());
  };
  std::vector<std::string> a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);             // same seed -> same order
  EXPECT_NE(a, c);             // different seed -> different permutation
  std::vector<std::string> sa = a, sc = c;
  std::sort(sa.begin(), sa.end());
  std::sort(sc.begin(), sc.end());
  EXPECT_EQ(sa, sc);           // ...of the same multiset
}

TEST(DatasetTest, ParallelMapPreservesInputOrder) {
  const std::string path = TempPath("ds_pmap");
  auto source = RecordsDataset(path, 40);
  auto labels_with_parallelism = [&](int parallelism) {
    auto d = data::NewParallelMapDataset(
        source, "parse_example", parallelism,
        {DataType::kFloat, DataType::kInt64});
    TF_CHECK_OK(d.status());
    auto it = d.value()->MakeIterator();
    TF_CHECK_OK(it.status());
    std::vector<int64_t> labels;
    for (Element& e : Drain(it.value().get())) {
      EXPECT_EQ(e.size(), 2u);
      labels.push_back(*e[1].data<int64_t>());
    }
    return labels;
  };
  // The ordering contract: output order == input order, independent of how
  // many map calls run concurrently.
  EXPECT_EQ(labels_with_parallelism(1), labels_with_parallelism(8));
}

TEST(DatasetTest, ParallelMapOverlapsBlockingMapFn) {
  // A latency-bound map fn (clock wait, no CPU) must overlap across the
  // window: 8 elements behind a 30ms wait have to finish well under the
  // 240ms serial time, even on one core. Guards the pool dispatch path the
  // input-bound bench_input gate depends on.
  static const bool registered = []() {
    TF_CHECK_OK(data::MapFnRegistry::Global()->Register(
        "test_blocking_identity",
        [](const Element& in, Element* out) -> Status {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          *out = in;
          return Status::OK();
        }));
    return true;
  }();
  ASSERT_TRUE(registered);
  const std::string path = TempPath("ds_pmap_overlap");
  auto source = RecordsDataset(path, 8);
  auto d = data::NewParallelMapDataset(source, "test_blocking_identity", 8,
                                       {DataType::kString});
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(Drain(it.value().get()).size(), 8u);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 150.0) << "map waits did not overlap";
}

TEST(DatasetTest, ParallelMapUnknownFnFailsAtConstruction) {
  const std::string path = TempPath("ds_pmap_unknown");
  auto source = RecordsDataset(path, 2);
  auto d = data::NewParallelMapDataset(source, "no_such_map_fn", 2,
                                       {DataType::kString});
  EXPECT_EQ(d.status().code(), Code::kNotFound);
}

TEST(DatasetTest, MapFnErrorPropagates) {
  const std::string path = TempPath("ds_pmap_err");
  // parse_example on garbage payloads (not EncodeExample format).
  {
    data::RecordWriter w(path);
    TF_CHECK_OK(w.Append("xx"));
    TF_CHECK_OK(w.Close());
  }
  auto src = data::NewRecordFileDataset({path});
  TF_CHECK_OK(src.status());
  auto d = data::NewParallelMapDataset(src.value(), "parse_example", 2,
                                       {DataType::kFloat, DataType::kInt64});
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  data::IteratorContext ctx;
  Element e;
  bool eos = false;
  EXPECT_FALSE(it.value()->GetNext(&ctx, &e, &eos).ok());
}

TEST(DatasetTest, BatchStacksAndHandlesRemainder) {
  const std::string path = TempPath("ds_batch");
  auto mapped = data::NewParallelMapDataset(
      RecordsDataset(path, 10), "parse_example", 2,
      {DataType::kFloat, DataType::kInt64});
  TF_CHECK_OK(mapped.status());

  auto batched = data::NewBatchDataset(mapped.value(), 4,
                                       /*drop_remainder=*/false);
  TF_CHECK_OK(batched.status());
  auto it = batched.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  std::vector<Element> batches = Drain(it.value().get());
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0][0].shape(), TensorShape({4, 4}));
  EXPECT_EQ(batches[0][1].shape(), TensorShape({4}));
  // The final partial batch is emitted, smaller.
  EXPECT_EQ(batches[2][0].shape(), TensorShape({2, 4}));

  auto dropped = data::NewBatchDataset(mapped.value(), 4,
                                       /*drop_remainder=*/true);
  TF_CHECK_OK(dropped.status());
  auto it2 = dropped.value()->MakeIterator();
  TF_CHECK_OK(it2.status());
  EXPECT_EQ(Drain(it2.value().get()).size(), 2u);
}

TEST(DatasetTest, RepeatRemakesInputIterator) {
  const std::string path = TempPath("ds_repeat");
  auto d = data::NewRepeatDataset(RecordsDataset(path, 3), 4);
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  std::vector<std::string> all = DrainStrings(it.value().get());
  ASSERT_EQ(all.size(), 12u);
  for (size_t i = 3; i < all.size(); ++i) EXPECT_EQ(all[i], all[i % 3]);
}

// A source whose iterator counts productions — measures how far ahead
// Prefetch's producer runs.
class CountingDataset : public data::DatasetBase {
 public:
  CountingDataset(int limit, std::atomic<int>* produced)
      : limit_(limit), produced_(produced) {}

  class Iter : public data::IteratorBase {
   public:
    Iter(int limit, std::atomic<int>* produced)
        : limit_(limit), produced_(produced) {}
    Status GetNext(data::IteratorContext*, Element* out,
                   bool* end_of_sequence) override {
      if (next_ >= limit_) {
        *end_of_sequence = true;
        return Status::OK();
      }
      out->clear();
      out->push_back(Tensor::Scalar(static_cast<float>(next_++)));
      produced_->fetch_add(1);
      *end_of_sequence = false;
      return Status::OK();
    }

   private:
    const int limit_;
    std::atomic<int>* produced_;
    int next_ = 0;
  };

  Result<std::unique_ptr<data::IteratorBase>> MakeIterator() const override {
    return std::unique_ptr<data::IteratorBase>(new Iter(limit_, produced_));
  }
  const DataTypeVector& output_dtypes() const override { return dtypes_; }
  std::string DebugString() const override { return "CountingDataset"; }

 private:
  const int limit_;
  std::atomic<int>* produced_;
  const DataTypeVector dtypes_{DataType::kFloat};
};

TEST(DatasetTest, PrefetchOccupancyIsBounded) {
  std::atomic<int> produced{0};
  constexpr int kBuffer = 2;
  auto d = data::NewPrefetchDataset(
      std::make_shared<CountingDataset>(1000, &produced), kBuffer);
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  data::IteratorContext ctx;
  int consumed = 0;
  for (; consumed < 5; ++consumed) {
    Element e;
    bool eos = false;
    TF_CHECK_OK(it.value()->GetNext(&ctx, &e, &eos));
    ASSERT_FALSE(eos);
    EXPECT_EQ(*e[0].data<float>(), static_cast<float>(consumed));  // ordered
  }
  // Give the producer every chance to run ahead; it must park at the
  // bounded buffer (+1 element held in hand, blocked on the full queue).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(produced.load(), consumed + kBuffer + 1);
}

TEST(DatasetTest, PrefetchDeliversEverythingThenEnds) {
  std::atomic<int> produced{0};
  auto d = data::NewPrefetchDataset(
      std::make_shared<CountingDataset>(37, &produced), 4);
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  EXPECT_EQ(Drain(it.value().get()).size(), 37u);
}

// A source that blocks in GetNext until cancelled — the worst-case producer
// for shutdown.
class BlockingDataset : public data::DatasetBase {
 public:
  class Iter : public data::IteratorBase {
   public:
    Status GetNext(data::IteratorContext*, Element*, bool*) override {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return cancelled_; });
      return Cancelled("blocking source cancelled");
    }
    void Cancel() override {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
      cv_.notify_all();
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool cancelled_ = false;
  };

  Result<std::unique_ptr<data::IteratorBase>> MakeIterator() const override {
    return std::unique_ptr<data::IteratorBase>(new Iter);
  }
  const DataTypeVector& output_dtypes() const override { return dtypes_; }
  std::string DebugString() const override { return "BlockingDataset"; }

 private:
  const DataTypeVector dtypes_{DataType::kFloat};
};

TEST(DatasetTest, CancelUnblocksConsumerWaitingOnStalledProducer) {
  auto d = data::NewPrefetchDataset(std::make_shared<BlockingDataset>(), 2);
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());

  Status got;
  std::thread consumer([&]() {
    data::IteratorContext ctx;
    Element e;
    bool eos = false;
    got = it.value()->GetNext(&ctx, &e, &eos);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  it.value()->Cancel();  // must promptly fail the blocked GetNext
  consumer.join();
  EXPECT_EQ(got.code(), Code::kCancelled);
}

TEST(DatasetTest, DestroyingIteratorUnblocksFullBufferProducer) {
  // Producer fills the tiny prefetch buffer and blocks on the full queue;
  // destroying the iterator (session close) must cancel and join it rather
  // than hang — the test finishing is the assertion.
  std::atomic<int> produced{0};
  auto d = data::NewPrefetchDataset(
      std::make_shared<CountingDataset>(1 << 20, &produced), 2);
  TF_CHECK_OK(d.status());
  auto it = d.value()->MakeIterator();
  TF_CHECK_OK(it.status());
  data::IteratorContext ctx;
  Element e;
  bool eos = false;
  TF_CHECK_OK(it.value()->GetNext(&ctx, &e, &eos));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  it.value().reset();  // blocked producer must be cancelled and joined
}

// -----------------------------------------------------------------------------
// End-to-end: the pipeline as graph nodes through DirectSession.
// -----------------------------------------------------------------------------

TEST(DatasetGraphTest, PipelineFeedsTrainingStep) {
  const std::string path = TempPath("ds_graph_pipeline");
  TF_CHECK_OK(data::WriteClusteredRecordFile(path, 10, 3, 4, 99));

  Graph g;
  GraphBuilder b(&g);
  Output files = ops::RecordFileDataset(&b, {path});
  Output mapped = ops::ParallelMapDataset(
      &b, files, "parse_example", 2, {DataType::kFloat, DataType::kInt64});
  Output batched = ops::BatchDataset(&b, mapped, 4);
  Output prefetched = ops::PrefetchDataset(&b, batched, 2);
  std::vector<Output> next = ops::IteratorGetNext(
      &b, prefetched, {DataType::kFloat, DataType::kInt64});
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(next.size(), 2u);

  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok()) << session.status();

  // 10 records, batch 4 -> 4, 4, 2.
  std::vector<int64_t> batch_sizes;
  for (int step = 0; step < 3; ++step) {
    std::vector<Tensor> out;
    TF_CHECK_OK(
        session.value()->Run({next[0].name(), next[1].name()}, &out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].shape().dim(1), 4);  // feature dim
    EXPECT_EQ(out[0].shape().dim(0), out[1].shape().dim(0));
    batch_sizes.push_back(out[0].shape().dim(0));
  }
  EXPECT_EQ(batch_sizes, (std::vector<int64_t>{4, 4, 2}));

  // Exhausted: the next pull reports OutOfRange, like a closed queue.
  std::vector<Tensor> out;
  Status s = session.value()->Run({next[0].name(), next[1].name()}, &out);
  EXPECT_EQ(s.code(), Code::kOutOfRange);
}

TEST(DatasetGraphTest, IteratorStatePersistsAcrossSteps) {
  const std::string path = TempPath("ds_graph_shared");
  TF_CHECK_OK(data::WriteClusteredRecordFile(path, 8, 3, 4, 5));

  // The IteratorGetNext kernel is cached per session segment, so its
  // iterator advances across Run calls: 8 steps see 8 distinct records and
  // the 9th sees OutOfRange — never a silent restart from the top.
  Graph g;
  GraphBuilder b(&g);
  Output files = ops::RecordFileDataset(&b, {path}, "shared_src");
  std::vector<Output> next =
      ops::IteratorGetNext(&b, files, {DataType::kString}, "pull");
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok()) << session.status();
  std::set<std::string> seen;
  for (int i = 0; i < 8; ++i) {
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({next[0].name()}, &out));
    seen.insert(out[0].str(0));
  }
  EXPECT_EQ(seen.size(), 8u);  // all distinct: each record pulled once
  std::vector<Tensor> out;
  EXPECT_EQ(session.value()->Run({next[0].name()}, &out).code(),
            Code::kOutOfRange);
}

}  // namespace
}  // namespace tfrepro
