// Tests for the work-stealing ThreadPool (DESIGN.md §9): completion of
// plain and batched schedules, cross-worker stealing, WaitIdle semantics,
// and the defined Schedule-during-shutdown behavior (run inline on the
// caller, counted by threadpool.scheduled_after_shutdown).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/threadpool.h"

namespace tfrepro {
namespace {

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  constexpr int kTasks = 1000;
  std::atomic<int> ran{0};
  {
    ThreadPool pool("tp_all", 4);
    for (int i = 0; i < kTasks; ++i) {
      pool.Schedule([&ran]() { ran.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(ran.load(), kTasks);
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, ScheduleBatchRunsEveryTask) {
  constexpr int kTasks = 257;  // not a multiple of the worker count
  std::atomic<int> ran{0};
  ThreadPool pool("tp_batch", 4);
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < kTasks; ++i) {
    batch.push_back([&ran]() { ran.fetch_add(1); });
  }
  pool.ScheduleBatch(std::move(batch));
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), kTasks);
  pool.ScheduleBatch({});  // empty batch is a no-op, not a crash
  pool.WaitIdle();
}

TEST(ThreadPoolTest, TasksScheduledFromOneWorkerAreStolen) {
  // All tasks are pushed from a single worker thread, so they land on that
  // worker's own queue; the only way another thread runs one is by
  // stealing. The tasks sleep so one worker cannot drain the queue alone
  // before the others wake.
  constexpr int kTasks = 64;
  ThreadPool pool("tp_steal", 4);
  std::mutex mu;
  std::set<std::thread::id> runners;
  std::atomic<int> ran{0};
  pool.Schedule([&]() {
    for (int i = 0; i < kTasks; ++i) {
      pool.Schedule([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        {
          std::lock_guard<std::mutex> lock(mu);
          runners.insert(std::this_thread::get_id());
        }
        ran.fetch_add(1);
      });
    }
  });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), kTasks);
  // With 4 workers and 64ms of serial sleep, at least one task must have
  // been stolen off the scheduling worker's queue.
  EXPECT_GE(runners.size(), 2u);
}

TEST(ThreadPoolTest, WaitIdleWaitsForInFlightTasks) {
  ThreadPool pool("tp_idle", 2);
  std::atomic<bool> finished{false};
  pool.Schedule([&finished]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished.store(true);
  });
  pool.WaitIdle();
  EXPECT_TRUE(finished.load());
}

TEST(ThreadPoolTest, ScheduleAfterShutdownRunsInlineOnCaller) {
  metrics::Counter* after_shutdown = metrics::Registry::Global()->GetCounter(
      "threadpool.scheduled_after_shutdown", {{"pool", "tp_shut"}});
  int64_t before = after_shutdown->value();

  std::atomic<bool> inline_ran{false};
  std::atomic<bool> observed_shutdown{false};
  std::thread::id worker_tid;
  std::thread::id inline_tid;
  {
    ThreadPool pool("tp_shut", 2);
    std::atomic<bool> entered{false};
    pool.Schedule([&]() {
      worker_tid = std::this_thread::get_id();
      entered.store(true);
      // Hold this worker until the destructor begins, then schedule: the
      // pool must run the task inline on this thread rather than enqueue
      // work no worker will ever pop (or drop it silently).
      while (!pool.IsShuttingDown()) std::this_thread::yield();
      observed_shutdown.store(true);
      pool.Schedule([&]() {
        inline_tid = std::this_thread::get_id();
        inline_ran.store(true);
      });
    });
    while (!entered.load()) std::this_thread::yield();
    // Destructor runs here while the worker task is still spinning.
  }
  EXPECT_TRUE(observed_shutdown.load());
  EXPECT_TRUE(inline_ran.load());
  EXPECT_EQ(inline_tid, worker_tid);
  EXPECT_GE(after_shutdown->value(), before + 1);
}

TEST(ThreadPoolTest, DestructorDrainsStragglerTasks) {
  // Tasks still queued when the destructor runs are executed (inline by the
  // destructor), never dropped: a scheduled task always runs exactly once.
  constexpr int kRounds = 20;
  constexpr int kTasks = 64;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool("tp_drain", 2);
      for (int i = 0; i < kTasks; ++i) {
        pool.Schedule([&ran]() { ran.fetch_add(1); });
      }
      // No WaitIdle: destruction races the workers.
    }
    EXPECT_EQ(ran.load(), kTasks) << "round " << round;
  }
}

}  // namespace
}  // namespace tfrepro
