#include "core/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tfrepro {
namespace {

TEST(PhiloxTest, Deterministic) {
  PhiloxRandom a(42);
  PhiloxRandom b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next4(), b.Next4());
  }
}

TEST(PhiloxTest, SeedChangesStream) {
  PhiloxRandom a(1);
  PhiloxRandom b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next4() != b.Next4()) ++differ;
  }
  EXPECT_GT(differ, 12);
}

TEST(PhiloxTest, StreamsAreIndependent) {
  PhiloxRandom a(7, 0);
  PhiloxRandom b(7, 1);
  EXPECT_NE(a.Next4(), b.Next4());
}

TEST(PhiloxTest, UniformInUnitInterval) {
  PhiloxRandom rng(123);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    float u = rng.Uniform();
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(PhiloxTest, NormalMoments) {
  PhiloxRandom rng(321);
  double sum = 0;
  double sumsq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    float v = rng.Normal();
    sum += v;
    sumsq += static_cast<double>(v) * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(PhiloxTest, TruncatedNormalBounded) {
  PhiloxRandom rng(99);
  for (int i = 0; i < 5000; ++i) {
    float v = rng.TruncatedNormal();
    ASSERT_GT(v, -2.0f);
    ASSERT_LT(v, 2.0f);
  }
}

TEST(PhiloxTest, UniformIntInRange) {
  PhiloxRandom rng(17);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(PhiloxTest, UniformIntZeroRange) {
  PhiloxRandom rng(5);
  EXPECT_EQ(rng.UniformInt(0), 0u);
}

TEST(PhiloxTest, SkipAdvancesCounter) {
  PhiloxRandom a(42);
  PhiloxRandom b(42);
  a.Next4();
  a.Next4();
  b.Skip(2);
  EXPECT_EQ(a.Next4(), b.Next4());
}

TEST(PhiloxTest, DoubleHas53BitResolution) {
  PhiloxRandom rng(1234);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace tfrepro
