// Tests for per-step tracing (DESIGN.md §8): node/transfer event capture
// through DirectSession and MasterSession, the Chrome trace_event JSON
// exporter, executor error annotation, the disabled-tracing fast path, and
// fault-injection markers on the trace stream.

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "core/metrics.h"
#include "distributed/fault_injector.h"
#include "distributed/master.h"
#include "graph/ops.h"
#include "runtime/session.h"
#include "runtime/tracing.h"

namespace tfrepro {
namespace {

using distributed::ClusterSpec;
using distributed::FaultInjector;
using distributed::InProcessCluster;
using distributed::MasterSession;

int64_t CounterTotal(const std::string& name) {
  return metrics::Registry::Global()->Snapshot().TotalValue(name);
}

TEST(TraceCollectorTest, RecordsAndConsumes) {
  TraceCollector collector;
  NodeExecStats node;
  node.node_name = "a";
  collector.RecordNode(node);
  collector.RecordTransfer(TransferStats{});
  collector.RecordInstant(InstantEvent{"marker", "", 1, {}});

  StepStats stats = collector.Consume(/*step_id=*/7);
  EXPECT_EQ(stats.step_id, 7);
  EXPECT_EQ(stats.nodes.size(), 1u);
  EXPECT_EQ(stats.transfers.size(), 1u);
  EXPECT_EQ(stats.instants.size(), 1u);

  // Consume resets the collector.
  StepStats empty = collector.Consume(8);
  EXPECT_TRUE(empty.nodes.empty());
  EXPECT_TRUE(empty.transfers.empty());
  EXPECT_TRUE(empty.instants.empty());
}

TEST(TraceCollectorTest, GlobalInstantsReachOnlySubscribedCollectors) {
  TraceCollector subscribed(/*capture_global_events=*/true);
  TraceCollector unsubscribed;
  RecordGlobalInstant("fault.test", "/job:worker/task:0", {{"k", "v"}});

  StepStats got = subscribed.Consume(1);
  ASSERT_EQ(got.instants.size(), 1u);
  EXPECT_EQ(got.instants[0].name, "fault.test");
  EXPECT_EQ(got.instants[0].scope, "/job:worker/task:0");
  EXPECT_EQ(got.instants[0].args.at("k"), "v");
  EXPECT_GT(got.instants[0].micros, 0);

  EXPECT_TRUE(unsubscribed.Consume(1).instants.empty());
}

TEST(TracingTest, ThreeOpGraphYieldsNodeEvents) {
  Graph g;
  GraphBuilder b(&g);
  Output a = ops::Const(&b, Tensor::Scalar(2.0f), "a");
  Output c = ops::Mul(&b, a, ops::Const(&b, Tensor::Scalar(3.0f), "b"));
  ASSERT_TRUE(b.ok()) << b.status();

  SessionOptions session_options;
  session_options.optimizer.do_constant_folding = false;  // keep the Mul live
  auto session = DirectSession::Create(g, session_options);
  ASSERT_TRUE(session.ok());
  RunOptions run_options;
  run_options.trace = true;
  RunMetadata metadata;
  std::vector<Tensor> out;
  Status s = session.value()->Run(run_options, {}, {c.name()}, {}, &out,
                                  &metadata);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 6.0f);

  // At least the three user ops (plus the fetch machinery) executed.
  const StepStats& stats = metadata.step_stats;
  ASSERT_GE(stats.nodes.size(), 3u);
  std::set<std::string> names;
  std::set<std::string> op_types;
  for (const NodeExecStats& n : stats.nodes) {
    names.insert(n.node_name);
    op_types.insert(n.op);
    EXPECT_FALSE(n.op.empty());
    // Correct device attribution and sane timestamps on every event.
    EXPECT_NE(n.device.find("CPU"), std::string::npos) << n.device;
    EXPECT_GT(n.scheduled_micros, 0);
    EXPECT_LE(n.scheduled_micros, n.start_micros);
    EXPECT_LE(n.start_micros, n.end_micros);
  }
  EXPECT_TRUE(names.count("a"));
  EXPECT_TRUE(names.count("b"));
  EXPECT_TRUE(op_types.count("Mul"));
  // Single-device graph: no transfers.
  EXPECT_TRUE(stats.transfers.empty());
}

TEST(TracingTest, DisabledTracingProducesNoEvents) {
  Graph g;
  GraphBuilder b(&g);
  Output c = ops::Add(&b, ops::Const(&b, 1.0f), ops::Const(&b, 2.0f));
  ASSERT_TRUE(b.ok());

  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok());
  RunMetadata metadata;
  std::vector<Tensor> out;
  // trace defaults to false: metadata must come back empty.
  Status s = session.value()->Run(RunOptions(), {}, {c.name()}, {}, &out,
                                  &metadata);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_TRUE(metadata.step_stats.nodes.empty());
  EXPECT_TRUE(metadata.step_stats.transfers.empty());
  EXPECT_TRUE(metadata.step_stats.instants.empty());
}

TEST(TracingTest, ExecutorErrorNamesFailingNode) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({2}), "x");
  Output y = ops::Identity(&b, x);
  ASSERT_TRUE(b.ok());

  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok());
  std::vector<Tensor> out;
  // Executing the placeholder without feeding it fails inside the kernel;
  // the executor must annotate the status with op, node and device.
  Status s = session.value()->Run({}, {y.name()}, {}, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Placeholder 'x' on "), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("CPU"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("without being fed"), std::string::npos)
      << s.message();
}

TEST(TracingTest, DistributedTraceCapturesTransfersAcrossTasks) {
  auto cluster = InProcessCluster::Create([] {
    ClusterSpec spec;
    spec.jobs["ps"] = 1;
    spec.jobs["worker"] = 1;
    return spec;
  }());
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output on_ps;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    on_ps = ops::Mul(&b, ops::Const(&b, 6.0f), ops::Const(&b, 7.0f));
  }
  Output on_worker;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    on_worker = ops::Add(&b, on_ps, ops::Const(&b, 0.5f));
  }
  ASSERT_TRUE(b.ok());

  // Keep the cross-task edge live (folding would collapse the whole graph
  // into a constant and eliminate the transfer under test).
  MasterSession::Options options;
  options.optimizer.do_constant_folding = false;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok());

  // Untraced warmup compiles the step, so the traced run below is the only
  // rendezvous activity between the two snapshots.
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({on_worker.name()}, &out).ok());

  const int64_t sends_before = CounterTotal("rendezvous.sends");
  const int64_t bytes_before = CounterTotal("rendezvous.bytes_sent");

  RunOptions run_options;
  run_options.trace = true;
  RunMetadata metadata;
  Status s = session.value()->Run(run_options, {}, {on_worker.name()}, {},
                                  &out, &metadata);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 42.5f);

  const StepStats& stats = metadata.step_stats;
  // Node events attributed to both tasks.
  std::set<std::string> devices;
  for (const NodeExecStats& n : stats.nodes) devices.insert(n.device);
  bool has_ps = false, has_worker = false;
  for (const std::string& d : devices) {
    if (d.find("/job:ps/") != std::string::npos) has_ps = true;
    if (d.find("/job:worker/") != std::string::npos) has_worker = true;
  }
  EXPECT_TRUE(has_ps);
  EXPECT_TRUE(has_worker);

  // The ps -> worker value crossed via one Send and one Recv.
  int64_t send_events = 0, recv_events = 0, traced_send_bytes = 0;
  for (const TransferStats& t : stats.transfers) {
    EXPECT_NE(t.send_device.find("/job:ps/"), std::string::npos);
    EXPECT_NE(t.recv_device.find("/job:worker/"), std::string::npos);
    EXPECT_EQ(t.bytes, 4);  // one float scalar
    if (t.kind == TransferStats::Kind::kSend) {
      ++send_events;
      traced_send_bytes += t.bytes;
      EXPECT_GT(t.send_micros, 0);
    } else {
      ++recv_events;
      EXPECT_GT(t.recv_start_micros, 0);
      EXPECT_LE(t.recv_start_micros, t.recv_end_micros);
    }
  }
  EXPECT_EQ(send_events, 1);
  EXPECT_EQ(recv_events, 1);

  // The metrics snapshot agrees with the trace: this step's rendezvous
  // send/byte deltas match the traced transfer events exactly.
  EXPECT_EQ(CounterTotal("rendezvous.sends") - sends_before, send_events);
  EXPECT_EQ(CounterTotal("rendezvous.bytes_sent") - bytes_before,
            traced_send_bytes);

  // Chrome trace export: a process row per task, a thread row per device,
  // the transfers lane, and the node/transfer events.
  std::string json = stats.ToChromeTraceJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json.substr(0, 80);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("/job:ps/task:0"), std::string::npos);
  EXPECT_NE(json.find("/job:worker/task:0"), std::string::npos);
  EXPECT_NE(json.find("\"transfers\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Two distinct process ids.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

TEST(TracingTest, InjectedFaultAppearsInEventsAndTrace) {
  FaultInjector injector;
  InProcessCluster::Options cluster_options;
  cluster_options.fault_injector = &injector;
  auto cluster = InProcessCluster::Create([] {
    ClusterSpec spec;
    spec.jobs["worker"] = 2;
    return spec;
  }(), cluster_options);
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output a;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    a = ops::Const(&b, 1.0f);
  }
  Output sum;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:1");
    sum = ops::Add(&b, a, ops::Const(&b, 2.0f));
  }
  ASSERT_TRUE(b.ok());

  MasterSession::Options options;
  options.max_step_retries = 2;
  options.restart_failed_tasks = true;
  // Constant folding would evaluate this all-const graph at compile time
  // and task:0 would never see the dispatch this test kills.
  options.optimizer.enable = false;
  auto session =
      MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok());

  const int64_t injected_before = CounterTotal("fault.injected");
  injector.KillTaskAtDispatch("/job:worker/task:0", 1);

  RunOptions run_options;
  run_options.trace = true;
  RunMetadata metadata;
  std::vector<Tensor> out;
  Status s = session.value()->Run(run_options, {}, {sum.name()}, {}, &out,
                                  &metadata);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 3.0f);

  // The injector kept a structured record (kill, then restart).
  std::vector<FaultInjector::InjectedEvent> events =
      injector.injected_events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "kill");
  EXPECT_EQ(events[0].task, "/job:worker/task:0");
  EXPECT_EQ(events[0].index, 1);
  EXPECT_GT(events[0].micros, 0);
  bool restarted = false;
  for (const auto& e : events) restarted |= (e.kind == "restart");
  EXPECT_TRUE(restarted);

  // Metrics counted each injected fault by kind.
  EXPECT_GE(CounterTotal("fault.injected") - injected_before, 2);

  // The step's trace stream carries the markers: the kill lands during the
  // first attempt (whose events are discarded on retry), but the restart
  // and the master's retry marker precede the final successful attempt.
  std::set<std::string> instant_names;
  for (const InstantEvent& e : metadata.step_stats.instants) {
    instant_names.insert(e.name);
  }
  EXPECT_TRUE(instant_names.count("master.retry")) << instant_names.size();
  EXPECT_TRUE(instant_names.count("fault.restart"));
  EXPECT_EQ(session.value()->stats().retries, 1);
  EXPECT_EQ(session.value()->stats().restarts, 1);
}

TEST(TracingTest, WriteChromeTraceRoundTrip) {
  StepStats stats;
  NodeExecStats n;
  n.node_name = "matmul";
  n.op = "MatMul";
  n.device = "/job:worker/task:0/device:CPU:0";
  n.scheduled_micros = 100;
  n.start_micros = 120;
  n.end_micros = 180;
  stats.nodes.push_back(n);

  std::string path = ::testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(stats.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"matmul\""), std::string::npos);
  EXPECT_NE(content.find("\"dur\":60"), std::string::npos);

  EXPECT_FALSE(stats.WriteChromeTrace("/nonexistent-dir/x/y.json").ok());
}

TEST(TracingTest, GlobalSpansReachLiveCollectors) {
  TraceCollector collector(/*capture_global_events=*/true);
  RecordGlobalSpan("queue.enqueue_blocked", "/job:worker/task:1", 1000, 3500,
                   {{"queue", "input"}});
  // A collector not subscribed to global events must see nothing.
  TraceCollector passive(/*capture_global_events=*/false);
  RecordGlobalSpan("serving.queue_wait", "serving", 4000, 4200);

  StepStats stats = collector.Consume(1);
  ASSERT_EQ(stats.spans.size(), 2u);
  EXPECT_EQ(stats.spans[0].name, "queue.enqueue_blocked");
  EXPECT_EQ(stats.spans[0].scope, "/job:worker/task:1");
  EXPECT_EQ(stats.spans[0].start_micros, 1000);
  EXPECT_EQ(stats.spans[0].end_micros, 3500);
  EXPECT_EQ(stats.spans[0].args.at("queue"), "input");
  EXPECT_EQ(stats.spans[1].name, "serving.queue_wait");
  EXPECT_TRUE(passive.Consume(1).spans.empty());
}

TEST(TracingTest, ChromeTraceRendersSpansOnWaitsRow) {
  StepStats stats;
  SpanEvent span;
  span.name = "serving.queue_wait";
  span.scope = "/job:worker/task:0";
  span.start_micros = 500;
  span.end_micros = 1700;
  stats.spans.push_back(span);

  std::string json = stats.ToChromeTraceJson();
  EXPECT_NE(json.find("\"serving.queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"waits\""), std::string::npos);
  // Duration events: phase X with the span's length.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1200"), std::string::npos);
  // Spans alone define the time base (earliest event rebases to 0).
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
}

}  // namespace
}  // namespace tfrepro
