// Property-style tests for the queue resources (paper §3.1), parameterized
// over queue kinds and capacities: FIFO ordering, backpressure, blocking
// dequeues, close semantics, shuffle-queue mixing, cancellation.

#include <gtest/gtest.h>

#include <condition_variable>
#include <set>
#include <thread>

#include "kernels/queue.h"

namespace tfrepro {
namespace {

QueueResource::Tuple ScalarTuple(float v) { return {Tensor::Scalar(v)}; }

struct QueueParam {
  bool shuffle;
  int64_t capacity;
};

class QueuePropertyTest : public ::testing::TestWithParam<QueueParam> {
 protected:
  std::unique_ptr<QueueResource> MakeQueue(int64_t min_after_dequeue = 0) {
    return std::make_unique<QueueResource>(
        DataTypeVector{DataType::kFloat}, GetParam().capacity,
        min_after_dequeue, /*seed=*/42, GetParam().shuffle);
  }
};

TEST_P(QueuePropertyTest, ElementsConserved) {
  auto queue = MakeQueue();
  constexpr int kN = 20;
  int enqueued = 0;
  for (int i = 0; i < kN; ++i) {
    queue->TryEnqueue(ScalarTuple(static_cast<float>(i)), nullptr,
                      [&](const Status& s) {
                        if (s.ok()) ++enqueued;
                      });
  }
  std::multiset<float> received;
  for (int i = 0; i < kN; ++i) {
    queue->TryDequeue(1, false, nullptr,
                      [&](const Status& s, const QueueResource::Tuple& t) {
                        TF_CHECK_OK(s);
                        received.insert(*t[0].data<float>());
                      });
  }
  // Every enqueued element (possibly bounded by capacity backpressure +
  // dequeues draining) comes out exactly once.
  EXPECT_EQ(static_cast<int>(received.size()), kN);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(received.count(static_cast<float>(i)), 1u) << i;
  }
}

TEST_P(QueuePropertyTest, DequeueBlocksUntilData) {
  auto queue = MakeQueue();
  bool got = false;
  queue->TryDequeue(1, false, nullptr,
                    [&](const Status& s, const QueueResource::Tuple&) {
                      TF_CHECK_OK(s);
                      got = true;
                    });
  EXPECT_FALSE(got);
  queue->TryEnqueue(ScalarTuple(1), nullptr, [](const Status&) {});
  EXPECT_TRUE(got);
}

TEST_P(QueuePropertyTest, CloseFailsShortDequeues) {
  auto queue = MakeQueue();
  queue->TryEnqueue(ScalarTuple(1), nullptr, [](const Status&) {});
  queue->Close(false);
  // One element available: a single dequeue succeeds...
  Status first;
  queue->TryDequeue(1, false, nullptr,
                    [&](const Status& s, const QueueResource::Tuple&) {
                      first = s;
                    });
  EXPECT_TRUE(first.ok());
  // ...but the next can never be satisfied.
  Status second;
  bool fired = false;
  queue->TryDequeue(1, false, nullptr,
                    [&](const Status& s, const QueueResource::Tuple&) {
                      second = s;
                      fired = true;
                    });
  EXPECT_TRUE(fired);
  EXPECT_EQ(second.code(), Code::kOutOfRange);
}

TEST_P(QueuePropertyTest, EnqueueAfterCloseFails) {
  auto queue = MakeQueue();
  queue->Close(false);
  Status s;
  queue->TryEnqueue(ScalarTuple(1), nullptr,
                    [&](const Status& status) { s = status; });
  EXPECT_EQ(s.code(), Code::kAborted);
}

TEST_P(QueuePropertyTest, CancellationRemovesWaiter) {
  auto queue = MakeQueue();
  CancellationManager cm;
  Status seen;
  bool fired = false;
  queue->TryDequeue(1, false, &cm,
                    [&](const Status& s, const QueueResource::Tuple&) {
                      seen = s;
                      fired = true;
                    });
  EXPECT_FALSE(fired);
  cm.StartCancel();
  EXPECT_TRUE(fired);
  EXPECT_EQ(seen.code(), Code::kCancelled);
  // The queue still works for non-cancelled users afterwards.
  queue->TryEnqueue(ScalarTuple(3), nullptr, [](const Status&) {});
  EXPECT_EQ(queue->Size(), 1);
}

TEST_P(QueuePropertyTest, CancelAllFailsBlockedEnqueuersKeepsQueueOpen) {
  if (GetParam().capacity < 0) GTEST_SKIP() << "unbounded: enqueue never blocks";
  auto queue = MakeQueue();
  for (int64_t i = 0; i < GetParam().capacity; ++i) {
    queue->TryEnqueue(ScalarTuple(static_cast<float>(i)), nullptr,
                      [](const Status&) {});
  }
  Status enq_status;
  bool enq_done = false;
  queue->TryEnqueue(ScalarTuple(99), nullptr, [&](const Status& s) {
    enq_status = s;
    enq_done = true;
  });
  EXPECT_FALSE(enq_done);  // full: parked
  queue->CancelAll(Cancelled("session teardown"));
  EXPECT_TRUE(enq_done);
  EXPECT_EQ(enq_status.code(), Code::kCancelled);
  // Unlike Close, CancelAll leaves the queue usable: buffered elements stay
  // and fresh operations proceed.
  EXPECT_EQ(queue->Size(), GetParam().capacity);
  bool deq_ok = false;
  queue->TryDequeue(1, false, nullptr,
                    [&](const Status& s, const QueueResource::Tuple&) {
                      deq_ok = s.ok();
                    });
  EXPECT_TRUE(deq_ok);
}

TEST_P(QueuePropertyTest, CancelAllFailsBlockedDequeuersWithoutLosingRows) {
  auto queue = MakeQueue();
  queue->TryEnqueue(ScalarTuple(1), nullptr, [](const Status&) {});
  Status deq_status;
  bool deq_done = false;
  // Needs 3 rows, only 1 buffered: parks (possibly holding that row).
  queue->TryDequeue(3, false, nullptr,
                    [&](const Status& s, const QueueResource::Tuple&) {
                      deq_status = s;
                      deq_done = true;
                    });
  EXPECT_FALSE(deq_done);
  queue->CancelAll(Cancelled("session teardown"));
  EXPECT_TRUE(deq_done);
  EXPECT_EQ(deq_status.code(), Code::kCancelled);
  // Any partially-collected row went back into the buffer.
  EXPECT_EQ(queue->Size(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, QueuePropertyTest,
    ::testing::Values(QueueParam{false, -1}, QueueParam{false, 4},
                      QueueParam{false, 64}, QueueParam{true, -1},
                      QueueParam{true, 64}),
    [](const ::testing::TestParamInfo<QueueParam>& info) {
      return std::string(info.param.shuffle ? "Shuffle" : "Fifo") +
             (info.param.capacity < 0
                  ? "Unbounded"
                  : "Cap" + std::to_string(info.param.capacity));
    });

TEST(FifoQueueTest, StrictFifoOrder) {
  QueueResource queue({DataType::kFloat}, -1, 0, 1, /*shuffle=*/false);
  for (int i = 0; i < 10; ++i) {
    queue.TryEnqueue(ScalarTuple(static_cast<float>(i)), nullptr,
                     [](const Status&) {});
  }
  for (int i = 0; i < 10; ++i) {
    queue.TryDequeue(1, false, nullptr,
                     [&](const Status& s, const QueueResource::Tuple& t) {
                       TF_CHECK_OK(s);
                       EXPECT_FLOAT_EQ(*t[0].data<float>(), i);
                     });
  }
}

TEST(FifoQueueTest, BackpressureBlocksEnqueueAtCapacity) {
  QueueResource queue({DataType::kFloat}, /*capacity=*/2, 0, 1, false);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    queue.TryEnqueue(ScalarTuple(1), nullptr, [&](const Status& s) {
      if (s.ok()) ++completed;
    });
  }
  EXPECT_EQ(completed, 2);  // the third producer is blocked
  queue.TryDequeue(1, false, nullptr,
                   [](const Status&, const QueueResource::Tuple&) {});
  EXPECT_EQ(completed, 3);  // space freed, blocked enqueue lands
}

TEST(FifoQueueTest, DequeueManyStacksComponents) {
  QueueResource queue({DataType::kFloat, DataType::kInt64}, -1, 0, 1, false);
  for (int i = 0; i < 3; ++i) {
    queue.TryEnqueue({Tensor::Vec<float>({float(i), float(i + 10)}),
                      Tensor::Scalar(int64_t{i})},
                     nullptr, [](const Status&) {});
  }
  queue.TryDequeue(3, true, nullptr,
                   [&](const Status& s, const QueueResource::Tuple& t) {
                     TF_CHECK_OK(s);
                     ASSERT_EQ(t.size(), 2u);
                     EXPECT_EQ(t[0].shape().DebugString(), "[3,2]");
                     EXPECT_EQ(t[1].shape().DebugString(), "[3]");
                     EXPECT_FLOAT_EQ(t[0].matrix<float>(2, 1), 12.0f);
                     EXPECT_EQ(t[1].flat<int64_t>(1), 1);
                   });
}

TEST(ShuffleQueueTest, MinAfterDequeueHoldsElementsBack) {
  QueueResource queue({DataType::kFloat}, -1, /*min_after_dequeue=*/5, 7,
                      /*shuffle=*/true);
  for (int i = 0; i < 6; ++i) {
    queue.TryEnqueue(ScalarTuple(static_cast<float>(i)), nullptr,
                     [](const Status&) {});
  }
  // Only one element above the mixing floor: a second dequeue must block.
  int got = 0;
  for (int i = 0; i < 2; ++i) {
    queue.TryDequeue(1, false, nullptr,
                     [&](const Status& s, const QueueResource::Tuple&) {
                       if (s.ok()) ++got;
                     });
  }
  EXPECT_EQ(got, 1);
  // Closing releases the floor.
  queue.Close(false);
  EXPECT_EQ(got, 2);
}

TEST(ShuffleQueueTest, ProducesPermutationNotFifo) {
  QueueResource queue({DataType::kFloat}, -1, 0, 1234, /*shuffle=*/true);
  constexpr int kN = 64;
  for (int i = 0; i < kN; ++i) {
    queue.TryEnqueue(ScalarTuple(static_cast<float>(i)), nullptr,
                     [](const Status&) {});
  }
  std::vector<float> order;
  std::set<float> seen;
  for (int i = 0; i < kN; ++i) {
    queue.TryDequeue(1, false, nullptr,
                     [&](const Status& s, const QueueResource::Tuple& t) {
                       TF_CHECK_OK(s);
                       order.push_back(*t[0].data<float>());
                       seen.insert(*t[0].data<float>());
                     });
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kN));  // a permutation
  bool is_fifo = true;
  for (int i = 0; i < kN; ++i) {
    if (order[i] != static_cast<float>(i)) is_fifo = false;
  }
  EXPECT_FALSE(is_fifo);  // ...but shuffled
}

TEST(QueueThreadingTest, ConcurrentProducersConsumers) {
  QueueResource queue({DataType::kFloat}, /*capacity=*/8, 0, 1, false);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 3;
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        queue.TryEnqueue(ScalarTuple(static_cast<float>(p * kPerProducer + i)),
                         nullptr, [&](const Status& s) {
                           TF_CHECK_OK(s);
                           std::lock_guard<std::mutex> lock(mu);
                           done = true;
                           cv.notify_one();
                         });
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&]() { return done; });
      }
    });
  }
  threads.emplace_back([&]() {
    while (consumed.load() < kPerProducer * kProducers) {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      queue.TryDequeue(1, false, nullptr,
                       [&](const Status& s, const QueueResource::Tuple& t) {
                         TF_CHECK_OK(s);
                         sum += static_cast<long long>(*t[0].data<float>());
                         ++consumed;
                         std::lock_guard<std::mutex> lock(mu);
                         done = true;
                         cv.notify_one();
                       });
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&]() { return done; });
    }
  });
  for (auto& t : threads) t.join();
  long long n = kPerProducer * kProducers;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // every value exactly once
}

}  // namespace
}  // namespace tfrepro
