#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/op_registry.h"

namespace tfrepro {
namespace {

Node* MustAdd(Graph* g, NodeDef def) {
  Result<Node*> n = g->AddNode(std::move(def));
  TF_CHECK_OK(n.status());
  return n.value();
}

NodeDef ConstDef(const std::string& name, Tensor value) {
  NodeDef def;
  def.name = name;
  def.op = "Const";
  def.attrs["dtype"] = AttrValue(value.dtype());
  def.attrs["value"] = AttrValue(std::move(value));
  return def;
}

TEST(OpRegistryTest, StandardOpsRegistered) {
  OpRegistry* reg = OpRegistry::Global();
  EXPECT_NE(reg->LookUp("MatMul"), nullptr);
  EXPECT_NE(reg->LookUp("Const"), nullptr);
  EXPECT_NE(reg->LookUp("Variable"), nullptr);
  EXPECT_NE(reg->LookUp("Switch"), nullptr);
  EXPECT_NE(reg->LookUp("QueueDequeueMany"), nullptr);
  EXPECT_EQ(reg->LookUp("NoSuchOp"), nullptr);
  EXPECT_GT(reg->num_ops(), 100);
}

TEST(OpRegistryTest, LookUpOrErrorReportsMissing) {
  Result<const OpDef*> r = OpRegistry::Global()->LookUpOrError("Bogus");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

TEST(OpDefTest, AttrDefaultsParsed) {
  const OpDef* matmul = OpRegistry::Global()->LookUp("MatMul");
  ASSERT_NE(matmul, nullptr);
  const AttrDef* ta = matmul->FindAttr("transpose_a");
  ASSERT_NE(ta, nullptr);
  EXPECT_TRUE(ta->has_default);
  EXPECT_FALSE(ta->default_value.b());
}

TEST(OpDefTest, StatefulFlag) {
  EXPECT_TRUE(OpRegistry::Global()->LookUp("Variable")->is_stateful());
  EXPECT_FALSE(OpRegistry::Global()->LookUp("Add")->is_stateful());
}

TEST(OpDefTest, VariadicTypesResolve) {
  const OpDef* addn = OpRegistry::Global()->LookUp("AddN");
  ASSERT_NE(addn, nullptr);
  AttrMap attrs;
  attrs["N"] = AttrValue(int64_t{3});
  attrs["T"] = AttrValue(DataType::kFloat);
  DataTypeVector in, out;
  ASSERT_TRUE(ResolveArgTypes(*addn, attrs, &in, &out).ok());
  EXPECT_EQ(in.size(), 3u);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(in[0], DataType::kFloat);
}

TEST(OpDefTest, RefOutputsResolve) {
  const OpDef* var = OpRegistry::Global()->LookUp("Variable");
  AttrMap attrs;
  attrs["dtype"] = AttrValue(DataType::kFloat);
  attrs["shape"] = AttrValue(TensorShape({2}));
  DataTypeVector in, out;
  ASSERT_TRUE(ResolveArgTypes(*var, attrs, &in, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(IsRefType(out[0]));
  EXPECT_EQ(BaseType(out[0]), DataType::kFloat);
}

TEST(OpDefTest, TypeListResolves) {
  const OpDef* q = OpRegistry::Global()->LookUp("QueueDequeue");
  AttrMap attrs;
  attrs["component_types"] =
      AttrValue(DataTypeVector{DataType::kFloat, DataType::kInt32});
  DataTypeVector in, out;
  ASSERT_TRUE(ResolveArgTypes(*q, attrs, &in, &out).ok());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1], DataType::kInt32);
}

TEST(GraphTest, AddNodeAndEdges) {
  Graph g;
  Node* a = MustAdd(&g, ConstDef("a", Tensor::Scalar(1.0f)));
  Node* b = MustAdd(&g, ConstDef("b", Tensor::Scalar(2.0f)));
  NodeDef add;
  add.name = "add";
  add.op = "Add";
  add.attrs["T"] = AttrValue(DataType::kFloat);
  Node* c = MustAdd(&g, std::move(add));
  ASSERT_TRUE(g.AddEdge(a, 0, c, 0).ok());
  ASSERT_TRUE(g.AddEdge(b, 0, c, 1).ok());
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(c->num_inputs(), 2);
  EXPECT_EQ(c->ordered_data_inputs().size(), 2u);
}

TEST(GraphTest, DuplicateNameRejected) {
  Graph g;
  MustAdd(&g, ConstDef("x", Tensor::Scalar(1.0f)));
  Result<Node*> dup = g.AddNode(ConstDef("x", Tensor::Scalar(2.0f)));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), Code::kAlreadyExists);
}

TEST(GraphTest, TypeMismatchRejected) {
  Graph g;
  Node* f = MustAdd(&g, ConstDef("f", Tensor::Scalar(1.0f)));
  NodeDef add;
  add.name = "addi";
  add.op = "Add";
  add.attrs["T"] = AttrValue(DataType::kInt32);
  Node* c = MustAdd(&g, std::move(add));
  EXPECT_FALSE(g.AddEdge(f, 0, c, 0).ok());
}

TEST(GraphTest, DoubleConnectInputRejected) {
  Graph g;
  Node* a = MustAdd(&g, ConstDef("a", Tensor::Scalar(1.0f)));
  NodeDef id;
  id.name = "id";
  id.op = "Identity";
  id.attrs["T"] = AttrValue(DataType::kFloat);
  Node* i = MustAdd(&g, std::move(id));
  ASSERT_TRUE(g.AddEdge(a, 0, i, 0).ok());
  EXPECT_FALSE(g.AddEdge(a, 0, i, 0).ok());
}

TEST(GraphTest, ControlEdgeDedup) {
  Graph g;
  Node* a = MustAdd(&g, ConstDef("a", Tensor::Scalar(1.0f)));
  Node* b = MustAdd(&g, ConstDef("b", Tensor::Scalar(1.0f)));
  const Edge* e1 = g.AddControlEdge(a, b);
  const Edge* e2 = g.AddControlEdge(a, b);
  EXPECT_EQ(e1, e2);
  EXPECT_TRUE(e1->IsControlEdge());
}

TEST(GraphTest, RemoveNodeCleansEdges) {
  Graph g;
  Node* a = MustAdd(&g, ConstDef("a", Tensor::Scalar(1.0f)));
  NodeDef id;
  id.name = "id";
  id.op = "Identity";
  id.attrs["T"] = AttrValue(DataType::kFloat);
  Node* i = MustAdd(&g, std::move(id));
  ASSERT_TRUE(g.AddEdge(a, 0, i, 0).ok());
  g.RemoveNode(i);
  EXPECT_EQ(g.num_nodes(), 1);
  EXPECT_TRUE(a->out_edges().empty());
  EXPECT_EQ(g.FindNode("id"), nullptr);
}

TEST(GraphTest, TopologicalOrder) {
  Graph g;
  Node* a = MustAdd(&g, ConstDef("a", Tensor::Scalar(1.0f)));
  Node* b = MustAdd(&g, ConstDef("b", Tensor::Scalar(2.0f)));
  NodeDef add;
  add.name = "add";
  add.op = "Add";
  add.attrs["T"] = AttrValue(DataType::kFloat);
  Node* c = MustAdd(&g, std::move(add));
  TF_CHECK_OK(g.AddEdge(a, 0, c, 0).status());
  TF_CHECK_OK(g.AddEdge(b, 0, c, 1).status());
  Result<std::vector<Node*>> order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order.value().size(), 3u);
  EXPECT_EQ(order.value()[2], c);
}

TEST(GraphTest, CloneCopiesStructure) {
  Graph g;
  Node* a = MustAdd(&g, ConstDef("a", Tensor::Scalar(1.0f)));
  NodeDef id;
  id.name = "id";
  id.op = "Identity";
  id.attrs["T"] = AttrValue(DataType::kFloat);
  Node* i = MustAdd(&g, std::move(id));
  TF_CHECK_OK(g.AddEdge(a, 0, i, 0).status());
  g.AddControlEdge(a, i);
  std::map<const Node*, Node*> node_map;
  std::unique_ptr<Graph> copy = g.Clone(&node_map);
  EXPECT_EQ(copy->num_nodes(), 2);
  Node* ci = copy->FindNode("id");
  ASSERT_NE(ci, nullptr);
  EXPECT_EQ(ci->in_edges().size(), 2u);  // data + control
  EXPECT_EQ(node_map[i], ci);
}

TEST(GraphBuilderTest, FluentConstruction) {
  Graph g;
  GraphBuilder b(&g);
  Output c1 = b.Op("Const")
                  .Attr("dtype", DataType::kFloat)
                  .Attr("value", Tensor::Scalar(3.0f))
                  .Finalize();
  Output c2 = b.Op("Const")
                  .Attr("dtype", DataType::kFloat)
                  .Attr("value", Tensor::Scalar(4.0f))
                  .Finalize();
  Output sum = b.Op("Add")
                   .Input(c1)
                   .Input(c2)
                   .Attr("T", DataType::kFloat)
                   .Finalize();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_TRUE(sum.valid());
  EXPECT_EQ(sum.dtype(), DataType::kFloat);
  EXPECT_EQ(g.num_nodes(), 3);
}

TEST(GraphBuilderTest, StickyError) {
  Graph g;
  GraphBuilder b(&g);
  Output bad = b.Op("NoSuchOp").Finalize();
  EXPECT_FALSE(bad.valid());
  EXPECT_FALSE(b.ok());
  // Subsequent construction is skipped without crashing.
  Output c = b.Op("Const")
                 .Attr("dtype", DataType::kFloat)
                 .Attr("value", Tensor::Scalar(1.0f))
                 .Finalize();
  EXPECT_FALSE(c.valid());
}

TEST(GraphBuilderTest, DeviceScope) {
  Graph g;
  GraphBuilder b(&g);
  Output c1;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    c1 = b.Op("Const")
             .Attr("dtype", DataType::kFloat)
             .Attr("value", Tensor::Scalar(1.0f))
             .Finalize();
  }
  Output c2 = b.Op("Const")
                  .Attr("dtype", DataType::kFloat)
                  .Attr("value", Tensor::Scalar(2.0f))
                  .Finalize();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(c1.node->requested_device(), "/job:ps/task:0");
  EXPECT_EQ(c2.node->requested_device(), "");
}

TEST(ParseInputNameTest, Forms) {
  std::string name;
  int port;
  ParseInputName("foo", &name, &port);
  EXPECT_EQ(name, "foo");
  EXPECT_EQ(port, 0);
  ParseInputName("foo:3", &name, &port);
  EXPECT_EQ(name, "foo");
  EXPECT_EQ(port, 3);
  ParseInputName("^bar", &name, &port);
  EXPECT_EQ(name, "bar");
  EXPECT_EQ(port, kControlSlot);
}

TEST(GraphTest, RefOutputFeedsValueInput) {
  Graph g;
  NodeDef var;
  var.name = "v";
  var.op = "Variable";
  var.attrs["dtype"] = AttrValue(DataType::kFloat);
  var.attrs["shape"] = AttrValue(TensorShape({2}));
  Node* v = MustAdd(&g, std::move(var));
  NodeDef id;
  id.name = "read";
  id.op = "Identity";
  id.attrs["T"] = AttrValue(DataType::kFloat);
  Node* r = MustAdd(&g, std::move(id));
  // Implicit deref: ref output feeding a value input is allowed.
  EXPECT_TRUE(g.AddEdge(v, 0, r, 0).ok());
}

TEST(GraphTest, ValueOutputCannotFeedRefInput) {
  Graph g;
  Node* c = MustAdd(&g, ConstDef("c", Tensor::Scalar(1.0f)));
  NodeDef assign;
  assign.name = "assign";
  assign.op = "Assign";
  assign.attrs["T"] = AttrValue(DataType::kFloat);
  Node* a = MustAdd(&g, std::move(assign));
  EXPECT_FALSE(g.AddEdge(c, 0, a, 0).ok());  // ref slot
  EXPECT_TRUE(g.AddEdge(c, 0, a, 1).ok());   // value slot
}

}  // namespace
}  // namespace tfrepro
