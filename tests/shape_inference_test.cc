// Tests for static shape inference over partially-known shapes.

#include "graph/shape_inference.h"

#include <gtest/gtest.h>

#include "graph/ops.h"

namespace tfrepro {
namespace {

using ops::Const;

PartialShape ShapeOf(const Graph& g, const Output& out) {
  std::map<std::pair<int, int>, PartialShape> shapes;
  TF_CHECK_OK(InferShapes(g, &shapes));
  return shapes[{out.node->id(), out.index}];
}

TEST(PartialShapeTest, MergeRules) {
  PartialShape unknown;
  PartialShape known({2, 3});
  PartialShape partial({2, -1});
  EXPECT_EQ(PartialShape::Merge(unknown, known).value().DebugString(),
            "[2,3]");
  EXPECT_EQ(PartialShape::Merge(partial, known).value().DebugString(),
            "[2,3]");
  EXPECT_FALSE(PartialShape::Merge(known, PartialShape({2, 4})).ok());
  EXPECT_FALSE(PartialShape::Merge(known, PartialShape({2})).ok());
}

TEST(PartialShapeTest, Compatibility) {
  PartialShape partial({2, -1});
  EXPECT_TRUE(partial.IsCompatibleWith(TensorShape({2, 7})));
  EXPECT_FALSE(partial.IsCompatibleWith(TensorShape({3, 7})));
  EXPECT_FALSE(partial.IsCompatibleWith(TensorShape({2})));
  PartialShape unknown;
  EXPECT_TRUE(unknown.IsCompatibleWith(TensorShape({5, 5, 5})));
}

TEST(ShapeInferenceTest, ConstAndElementwise) {
  Graph g;
  GraphBuilder b(&g);
  Output c = Const(&b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                 TensorShape({2, 3})));
  Output sq = ops::Square(&b, c);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, sq).DebugString(), "[2,3]");
}

TEST(ShapeInferenceTest, BroadcastShapes) {
  Graph g;
  GraphBuilder b(&g);
  Output m = Const(&b, Tensor(DataType::kFloat, TensorShape({4, 3})));
  Output v = Const(&b, Tensor(DataType::kFloat, TensorShape({3})));
  Output sum = ops::Add(&b, m, v);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, sum).DebugString(), "[4,3]");
}

TEST(ShapeInferenceTest, IncompatibleBroadcastRejected) {
  Graph g;
  GraphBuilder b(&g);
  Output a = Const(&b, Tensor(DataType::kFloat, TensorShape({4, 3})));
  Output c = Const(&b, Tensor(DataType::kFloat, TensorShape({4, 2})));
  ops::Add(&b, a, c);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(InferShapes(g).ok());
}

TEST(ShapeInferenceTest, MatMulDims) {
  Graph g;
  GraphBuilder b(&g);
  Output a = ops::Placeholder(&b, DataType::kFloat, TensorShape({8, 16}), "a");
  Output w = ops::Placeholder(&b, DataType::kFloat, TensorShape({16, 4}), "w");
  Output p = ops::MatMul(&b, a, w);
  Output pt = ops::MatMul(&b, w, a, /*ta=*/true, /*tb=*/true);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, p).DebugString(), "[8,4]");
  EXPECT_EQ(ShapeOf(g, pt).DebugString(), "[4,8]");
}

TEST(ShapeInferenceTest, MatMulInnerDimMismatchCaught) {
  Graph g;
  GraphBuilder b(&g);
  Output a = ops::Placeholder(&b, DataType::kFloat, TensorShape({8, 16}), "a");
  Output w = ops::Placeholder(&b, DataType::kFloat, TensorShape({4, 2}), "w");
  ops::MatMul(&b, a, w);
  ASSERT_TRUE(b.ok());
  Status s = InferShapes(g);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("MatMul"), std::string::npos);
}

TEST(ShapeInferenceTest, ReshapeWithConstTarget) {
  Graph g;
  GraphBuilder b(&g);
  Output v = Const(&b, Tensor(DataType::kFloat, TensorShape({6})));
  Output r = ops::Reshape(&b, v, {2, 3});
  Output inferred = ops::Reshape(&b, v, {3, -1});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, r).DebugString(), "[2,3]");
  EXPECT_EQ(ShapeOf(g, inferred).DebugString(), "[3,2]");
}

TEST(ShapeInferenceTest, Conv2DAndPool) {
  Graph g;
  GraphBuilder b(&g);
  Output img = ops::Placeholder(&b, DataType::kFloat,
                                TensorShape({2, 28, 28, 3}), "img");
  Output filter =
      Const(&b, Tensor(DataType::kFloat, TensorShape({5, 5, 3, 16})));
  Output conv = ops::Conv2D(&b, img, filter, {1, 2, 2, 1}, "SAME");
  Output pool = ops::MaxPool(&b, conv, {1, 2, 2, 1}, {1, 2, 2, 1}, "SAME");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, conv).DebugString(), "[2,14,14,16]");
  EXPECT_EQ(ShapeOf(g, pool).DebugString(), "[2,7,7,16]");
}

TEST(ShapeInferenceTest, Conv2DChannelMismatchCaught) {
  Graph g;
  GraphBuilder b(&g);
  Output img = ops::Placeholder(&b, DataType::kFloat,
                                TensorShape({2, 28, 28, 3}), "img");
  Output filter =
      Const(&b, Tensor(DataType::kFloat, TensorShape({5, 5, 4, 16})));
  ops::Conv2D(&b, img, filter, {1, 1, 1, 1}, "SAME");
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(InferShapes(g).ok());
}

TEST(ShapeInferenceTest, GatherComposesIndicesAndRowShape) {
  Graph g;
  GraphBuilder b(&g);
  Output params =
      ops::Placeholder(&b, DataType::kFloat, TensorShape({100, 8}), "p");
  Output idx = ops::Placeholder(&b, DataType::kInt32, TensorShape({5}), "i");
  Output out = ops::Gather(&b, params, idx);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, out).DebugString(), "[5,8]");
}

TEST(ShapeInferenceTest, ConcatSumsAxisDim) {
  Graph g;
  GraphBuilder b(&g);
  Output a = Const(&b, Tensor(DataType::kFloat, TensorShape({2, 3})));
  Output c = Const(&b, Tensor(DataType::kFloat, TensorShape({2, 5})));
  Output cat = ops::Concat(&b, 1, {a, c});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, cat).DebugString(), "[2,8]");
}

TEST(ShapeInferenceTest, UnknownOpsArePermissive) {
  Graph g;
  GraphBuilder b(&g);
  // DynamicStitch has no shape fn; its consumers just see unknown.
  Output idx = Const(&b, Tensor::Vec<int32_t>({0, 1}));
  Output data = Const(&b, Tensor::FromVector<float>({1, 2}, TensorShape({2, 1})));
  Output stitched = ops::DynamicStitch(&b, {idx}, {data});
  Output after = ops::Square(&b, stitched);
  ASSERT_TRUE(b.ok());
  PartialShape s = ShapeOf(g, after);
  EXPECT_FALSE(s.has_rank());
}

TEST(ShapeInferenceTest, VariableShapeFromAttr) {
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape({7, 7}), "v");
  Output read = ops::Identity(&b, v);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, read).DebugString(), "[7,7]");
}

TEST(ShapeInferenceTest, XentProducesPerExampleLoss) {
  Graph g;
  GraphBuilder b(&g);
  Output logits =
      ops::Placeholder(&b, DataType::kFloat, TensorShape({32, 10}), "l");
  Output labels =
      ops::Placeholder(&b, DataType::kInt64, TensorShape({32}), "y");
  Node* xent = ops::SparseSoftmaxCrossEntropyWithLogits(&b, logits, labels);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, Output(xent, 0)).DebugString(), "[32]");
  EXPECT_EQ(ShapeOf(g, Output(xent, 1)).DebugString(), "[32,10]");
}

TEST(ShapeInferenceTest, LoopGraphInfersWithoutCycleTrouble) {
  Graph g;
  GraphBuilder b(&g);
  Output x = Const(&b, 1.0f);
  Output enter = ops::Enter(&b, x, "f");
  Node* merge = ops::Merge(&b, {enter, enter});
  Output cond = ops::LoopCond(&b, ops::Less(&b, Output(merge, 0),
                                            ops::Enter(&b, Const(&b, 5.0f),
                                                       "f", true)));
  Node* sw = ops::Switch(&b, Output(merge, 0), cond);
  Output exit = ops::Exit(&b, Output(sw, 0));
  Output next = ops::NextIteration(
      &b, ops::Add(&b, Output(sw, 1),
                   ops::Enter(&b, Const(&b, 1.0f), "f", true)));
  Result<const Edge*> second = merge->input_edge(1);
  ASSERT_TRUE(second.ok());
  g.RemoveEdge(second.value());
  ASSERT_TRUE(g.AddEdge(next.node, 0, merge, 1).ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, exit).DebugString(), "[]");
}


TEST(ShapeInferenceTest, ReductionWithConstAxes) {
  Graph g;
  GraphBuilder b(&g);
  Output m = Const(&b, Tensor(DataType::kFloat, TensorShape({4, 5, 6})));
  Output keep = ops::Sum(&b, m, ops::ConstVecI32(&b, {1}), /*keep_dims=*/true);
  Output drop = ops::Sum(&b, m, ops::ConstVecI32(&b, {0, 2}));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, keep).DebugString(), "[4,1,6]");
  EXPECT_EQ(ShapeOf(g, drop).DebugString(), "[5]");
}

TEST(ShapeInferenceTest, PackUnpackSplitTranspose) {
  Graph g;
  GraphBuilder b(&g);
  Output v = Const(&b, Tensor(DataType::kFloat, TensorShape({3, 4})));
  Output packed = ops::Pack(&b, {v, v}, /*axis=*/1);
  std::vector<Output> unpacked = ops::Unpack(&b, v, 3, /*axis=*/0);
  std::vector<Output> split = ops::Split(&b, 1, v, 2);
  Output transposed = ops::Transpose(&b, v, {1, 0});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, packed).DebugString(), "[3,2,4]");
  EXPECT_EQ(ShapeOf(g, unpacked[0]).DebugString(), "[4]");
  EXPECT_EQ(ShapeOf(g, split[1]).DebugString(), "[3,2]");
  EXPECT_EQ(ShapeOf(g, transposed).DebugString(), "[4,3]");
}

TEST(ShapeInferenceTest, UnpackNumMismatchCaught) {
  Graph g;
  GraphBuilder b(&g);
  Output v = Const(&b, Tensor(DataType::kFloat, TensorShape({3, 4})));
  ops::Unpack(&b, v, 5, /*axis=*/0);  // dim 0 is 3, not 5
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(InferShapes(g).ok());
}

TEST(ShapeInferenceTest, ArgMaxOneHotSelectAddN) {
  Graph g;
  GraphBuilder b(&g);
  Output m = Const(&b, Tensor(DataType::kFloat, TensorShape({6, 9})));
  Output arg = ops::ArgMax(&b, m, 1);
  Output hot = ops::OneHot(&b, arg, 9);
  Output summed = ops::AddN(&b, {m, m, m});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ShapeOf(g, arg).DebugString(), "[6]");
  EXPECT_EQ(ShapeOf(g, hot).DebugString(), "[6,9]");
  EXPECT_EQ(ShapeOf(g, summed).DebugString(), "[6,9]");
}

TEST(ShapeInferenceTest, AddNIncompatibleInputsCaught) {
  Graph g;
  GraphBuilder b(&g);
  Output a = Const(&b, Tensor(DataType::kFloat, TensorShape({2, 2})));
  Output c = Const(&b, Tensor(DataType::kFloat, TensorShape({4})));
  // Same element count, different shapes: AddN requires equal shapes.
  Output r = ops::Reshape(&b, c, {2, 3});  // also provably wrong: 4 -> 6
  (void)r;
  ops::AddN(&b, {a, Const(&b, Tensor(DataType::kFloat, TensorShape({2, 3})))});
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(InferShapes(g).ok());
}

}  // namespace
}  // namespace tfrepro
