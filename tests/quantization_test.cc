// Tests for the quantization path (paper §5): round-trip accuracy, the
// low-precision matmul against the float reference, and the PS device
// setter strategies.

#include <gtest/gtest.h>

#include "core/random.h"
#include "graph/ops.h"
#include "runtime/session.h"
#include "train/device_setter.h"

namespace tfrepro {
namespace {

using ops::Const;

Output Quantize(GraphBuilder* b, Output in, float lo, float hi) {
  return b->Op("Quantize")
      .Input(in)
      .Input(Const(b, lo))
      .Input(Const(b, hi))
      .Finalize();
}

Output Dequantize(GraphBuilder* b, Output in, float lo, float hi) {
  return b->Op("Dequantize")
      .Input(in)
      .Input(Const(b, lo))
      .Input(Const(b, hi))
      .Finalize();
}

TEST(QuantizationTest, RoundTripWithinOneLevel) {
  Graph g;
  GraphBuilder b(&g);
  std::vector<float> values = {-1.0f, -0.5f, 0.0f, 0.123f, 0.9f, 1.0f};
  Output in = Const(&b, Tensor::Vec<float>(values));
  Output q = Quantize(&b, in, -1.0f, 1.0f);
  Output back = Dequantize(&b, q, -1.0f, 1.0f);
  ASSERT_TRUE(b.ok()) << b.status();
  SessionOptions options;
  options.optimizer.do_constant_folding = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({back.name()}, &out));
  const float level = 2.0f / 255;  // one quantization step
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(out[0].flat<float>(i), values[i], level / 2 + 1e-6f) << i;
  }
}

TEST(QuantizationTest, ValuesOutsideRangeSaturate) {
  Graph g;
  GraphBuilder b(&g);
  Output in = Const(&b, Tensor::Vec<float>({-5.0f, 5.0f}));
  Output q = Quantize(&b, in, -1.0f, 1.0f);
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.optimizer.do_constant_folding = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({q.name()}, &out));
  EXPECT_EQ(out[0].flat<uint8_t>(0), 0);
  EXPECT_EQ(out[0].flat<uint8_t>(1), 255);
}

TEST(QuantizationTest, InvalidRangeRejected) {
  Graph g;
  GraphBuilder b(&g);
  Output in = Const(&b, Tensor::Vec<float>({0.0f}));
  Output q = Quantize(&b, in, 1.0f, 1.0f);
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.optimizer.do_constant_folding = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  EXPECT_FALSE(session.value()->Run({q.name()}, &out).ok());
}

TEST(QuantizationTest, QuantizedMatMulTracksFloatReference) {
  // Random matrices in [-1, 1]; the quantized product must match the float
  // product within accumulated quantization noise.
  constexpr int64_t kM = 8, kK = 32, kN = 6;
  PhiloxRandom rng(99);
  Tensor a(DataType::kFloat, TensorShape({kM, kK}));
  Tensor bt(DataType::kFloat, TensorShape({kK, kN}));
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    a.flat<float>(i) = 2 * rng.Uniform() - 1;
  }
  for (int64_t i = 0; i < bt.num_elements(); ++i) {
    bt.flat<float>(i) = 2 * rng.Uniform() - 1;
  }

  Graph g;
  GraphBuilder b(&g);
  Output fa = Const(&b, Tensor(a));
  Output fb = Const(&b, Tensor(bt));
  Output reference = ops::MatMul(&b, fa, fb);
  Output qa = Quantize(&b, fa, -1.0f, 1.0f);
  Output qb = Quantize(&b, fb, -1.0f, 1.0f);
  Output quantized = b.Op("QuantizedMatMul")
                         .Input(qa)
                         .Input(qb)
                         .Input(Const(&b, -1.0f))
                         .Input(Const(&b, 1.0f))
                         .Input(Const(&b, -1.0f))
                         .Input(Const(&b, 1.0f))
                         .Finalize();
  ASSERT_TRUE(b.ok()) << b.status();
  SessionOptions options;
  options.optimizer.do_constant_folding = false;
  auto session = DirectSession::Create(g, options);
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({reference.name(), quantized.name()}, &out));
  // Error per element ~ k * (quant step) in the worst case; use a
  // generous-but-meaningful bound.
  double tolerance = kK * (2.0 / 255) * 0.25;
  for (int64_t i = 0; i < out[0].num_elements(); ++i) {
    EXPECT_NEAR(out[1].flat<float>(i), out[0].flat<float>(i), tolerance) << i;
  }
}

TEST(DeviceSetterTest, RoundRobinCycles) {
  train::ReplicaDeviceSetter setter(3, "/job:worker/task:0");
  EXPECT_EQ(setter.NextPsDevice(), "/job:ps/task:0");
  EXPECT_EQ(setter.NextPsDevice(), "/job:ps/task:1");
  EXPECT_EQ(setter.NextPsDevice(), "/job:ps/task:2");
  EXPECT_EQ(setter.NextPsDevice(), "/job:ps/task:0");
  EXPECT_EQ(setter.worker_device(), "/job:worker/task:0");
}

TEST(DeviceSetterTest, LeastLoadedBalancesBytes) {
  train::ReplicaDeviceSetter setter(
      2, "/job:worker/task:0",
      train::ReplicaDeviceSetter::Strategy::kLeastLoaded);
  EXPECT_EQ(setter.NextPsDevice(100), "/job:ps/task:0");
  // Task 0 holds 100 bytes; the next (small) variable goes to task 1, and
  // further small ones keep filling task 1 until it catches up.
  EXPECT_EQ(setter.NextPsDevice(10), "/job:ps/task:1");
  EXPECT_EQ(setter.NextPsDevice(10), "/job:ps/task:1");
  EXPECT_EQ(setter.ps_bytes()[0], 100);
  EXPECT_EQ(setter.ps_bytes()[1], 20);
  // A large one lands on task 1 too (still least loaded), then task 0.
  EXPECT_EQ(setter.NextPsDevice(200), "/job:ps/task:1");
  EXPECT_EQ(setter.NextPsDevice(1), "/job:ps/task:0");
}

}  // namespace
}  // namespace tfrepro
