// Shared data-service tests (distributed/data_service.h): several
// consumers over the real socket transport read and preprocess each record
// exactly once per epoch; killing the pipeline task mid-epoch and
// restarting it on the same port loses and duplicates nothing, because
// assignment is deterministic and clients retry unanswered cursors.
// TFREPRO_CHAOS_SEED varies the kill points (check.sh runs two seeds).

#include "distributed/data_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "data/record_file.h"

namespace tfrepro {
namespace distributed {
namespace {

using data::Element;

uint64_t ChaosSeed() {
  const char* env = std::getenv("TFREPRO_CHAOS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::atoll(env)) : 1;
}

std::string WriteRecords(const std::string& name, int count) {
  const std::string path = ::testing::TempDir() + "/" + name;
  TF_CHECK_OK(data::WriteClusteredRecordFile(path, count, /*num_classes=*/3,
                                             /*dim=*/4, /*seed=*/17));
  return path;
}

// The label of a parse_example element — a compact identity for
// exactly-once accounting (WriteClusteredRecordFile labels are not unique,
// so tests that need identity use the features too).
std::string ElementKey(const Element& e) {
  std::string key;
  for (const Tensor& t : e) t.AppendToBytes(&key);
  return key;
}

// Counts map-fn invocations process-wide: the exactly-once-preprocessing
// probe. Registered once; tests reset the counter.
std::atomic<int64_t> g_map_calls{0};
const bool g_registered = []() {
  TF_CHECK_OK(data::MapFnRegistry::Global()->Register(
      "test_counting_parse",
      [](const Element& in, Element* out) -> Status {
        g_map_calls.fetch_add(1);
        auto parse = data::MapFnRegistry::Global()->Lookup("parse_example");
        TF_RETURN_IF_ERROR(parse.status());
        return parse.value()(in, out);
      }));
  return true;
}();

DataServiceHandler::IteratorFactory Factory(const std::string& path,
                                            const std::string& map_fn) {
  auto factory = RecordPipelineFactory(
      {path}, map_fn, /*parallelism=*/2,
      {DataType::kFloat, DataType::kInt64}, /*repeat=*/1,
      /*shuffle_buffer=*/0, /*seed=*/0);
  TF_CHECK_OK(factory.status());
  return factory.value();
}

// Drains one consumer's share of the epoch; returns its elements in order.
std::vector<Element> DrainConsumer(int port, int consumer, int num_consumers) {
  DataServiceClient::Options options;
  options.consumer = consumer;
  options.num_consumers = num_consumers;
  options.call_deadline_seconds = 2.0;
  options.total_deadline_seconds = 60.0;
  DataServiceClient client(port, options);
  std::vector<Element> got;
  for (;;) {
    Element e;
    bool end_of_epoch = false;
    TF_CHECK_OK(client.GetNext(&e, &end_of_epoch));
    if (end_of_epoch) return got;
    got.push_back(std::move(e));
  }
}

TEST(DataServiceTest, ThreeConsumersReadEachRecordExactlyOnce) {
  ASSERT_TRUE(g_registered);
  const int kRecords = 47;
  const int kConsumers = 3;
  const std::string path = WriteRecords("dsvc_exactly_once", kRecords);
  g_map_calls.store(0);

  DataServiceHandler::Options options;
  options.num_consumers = kConsumers;
  DataServiceServer server(Factory(path, "test_counting_parse"), options);
  TF_CHECK_OK(server.Start(0));

  std::vector<std::vector<Element>> per_consumer(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c]() {
      per_consumer[c] = DrainConsumer(server.port(), c, kConsumers);
    });
  }
  for (std::thread& t : consumers) t.join();

  // Every record delivered to exactly one consumer...
  std::multiset<std::string> all;
  size_t total = 0;
  for (const auto& got : per_consumer) {
    total += got.size();
    for (const Element& e : got) all.insert(ElementKey(e));
  }
  EXPECT_EQ(total, static_cast<size_t>(kRecords));
  EXPECT_EQ(all.size(), static_cast<size_t>(kRecords));
  for (const std::string& key : std::set<std::string>(all.begin(), all.end())) {
    EXPECT_EQ(all.count(key), 1u);
  }
  // ...round-robin: consumer c gets elements c, c+3, c+6, ... of the
  // pipeline, so shares differ by at most one.
  for (const auto& got : per_consumer) {
    EXPECT_GE(got.size(), static_cast<size_t>(kRecords / kConsumers));
    EXPECT_LE(got.size(), static_cast<size_t>(kRecords / kConsumers + 1));
  }
  // ...and preprocessed exactly once: no map call ran twice, no matter how
  // many consumers pulled.
  EXPECT_EQ(g_map_calls.load(), kRecords);
}

TEST(DataServiceTest, RetriedCursorIsRetransmittedNotRegenerated) {
  const int kRecords = 10;
  const std::string path = WriteRecords("dsvc_retransmit", kRecords);
  DataServiceHandler handler(Factory(path, "parse_example"), {});

  auto call = [&](int64_t consumer, int64_t cursor) {
    std::string body;
    rpc::AppendInt64(&body, consumer);
    rpc::AppendInt64(&body, cursor);
    Status status;
    std::string resp;
    handler.HandleGetElement(body,
                             [&](const Status& s, const std::string& r) {
                               status = s;
                               resp = r;
                             });
    return std::make_pair(status, resp);
  };

  auto first = call(0, 0);
  TF_CHECK_OK(first.first);
  auto replay = call(0, 0);  // client never saw the answer and retries
  TF_CHECK_OK(replay.first);
  EXPECT_EQ(first.second, replay.second);  // byte-identical retransmission

  // A cursor behind the acknowledged frontier is a protocol violation.
  TF_CHECK_OK(call(0, 1).first);
  EXPECT_EQ(call(0, 0).first.code(), Code::kInvalidArgument);
  // Unknown consumers and malformed bodies are rejected.
  EXPECT_EQ(call(7, 0).first.code(), Code::kInvalidArgument);
  Status malformed;
  handler.HandleGetElement("xy", [&](const Status& s, const std::string&) {
    malformed = s;
  });
  EXPECT_EQ(malformed.code(), Code::kInvalidArgument);
}

TEST(DataServiceTest, KillingPipelineTaskMidEpochLosesNothing) {
  // Chaos: consumers drain a 60-record epoch while the pipeline task is
  // killed (server destroyed: connections severed, buffered elements and
  // cursors gone) and restarted cold on the same port — twice. Recovery
  // relies only on deterministic re-derivation plus client cursor retries.
  const uint64_t seed = ChaosSeed();
  const int kRecords = 60;
  const int kConsumers = 3;
  const std::string path = WriteRecords(
      "dsvc_chaos_" + std::to_string(seed), kRecords);

  // One epoch served uninterrupted = ground truth.
  std::vector<std::vector<Element>> expected(kConsumers);
  {
    DataServiceHandler::Options options;
    options.num_consumers = kConsumers;
    DataServiceServer server(Factory(path, "parse_example"), options);
    TF_CHECK_OK(server.Start(0));
    for (int c = 0; c < kConsumers; ++c) {
      expected[c] = DrainConsumer(server.port(), c, kConsumers);
    }
  }

  DataServiceHandler::Options options;
  options.num_consumers = kConsumers;
  auto make_server = [&]() {
    return std::make_unique<DataServiceServer>(
        Factory(path, "parse_example"), options);
  };
  auto server = make_server();
  TF_CHECK_OK(server->Start(0));
  const int port = server->port();

  std::vector<std::vector<Element>> got(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back(
        [&, c]() { got[c] = DrainConsumer(port, c, kConsumers); });
  }

  // Kill points vary by seed so different schedules get exercised.
  for (int kill = 0; kill < 2; ++kill) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(5 + ((seed * 13 + kill * 29) % 40)));
    server.reset();  // SIGKILL-equivalent for an in-process task
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server = make_server();
    TF_CHECK_OK(server->Start(port));  // same port: clients just redial
  }
  for (std::thread& t : consumers) t.join();

  // No element dropped, duplicated, or reordered — byte-for-byte the
  // uninterrupted epoch.
  for (int c = 0; c < kConsumers; ++c) {
    ASSERT_EQ(got[c].size(), expected[c].size()) << "consumer " << c;
    for (size_t i = 0; i < got[c].size(); ++i) {
      EXPECT_EQ(ElementKey(got[c][i]), ElementKey(expected[c][i]))
          << "consumer " << c << " element " << i;
    }
  }
}

TEST(DataServiceTest, ClientCancelUnblocksPendingGetNext) {
  // No server listening: GetNext sits in its retry loop until Cancel.
  DataServiceClient::Options options;
  options.total_deadline_seconds = 600.0;
  options.call_deadline_seconds = 0.2;
  DataServiceClient client(1, options);  // port 1: nothing listens there
  Status got;
  std::thread puller([&]() {
    Element e;
    bool eoe = false;
    got = client.GetNext(&e, &eoe);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  client.Cancel();
  puller.join();
  EXPECT_EQ(got.code(), Code::kCancelled);
}

TEST(DataServiceTest, ServerShutdownFailsConsumersCleanly) {
  const std::string path = WriteRecords("dsvc_shutdown", 6);
  DataServiceHandler::Options options;
  options.num_consumers = 1;
  DataServiceServer server(Factory(path, "parse_example"), options);
  TF_CHECK_OK(server.Start(0));

  DataServiceClient::Options copts;
  copts.total_deadline_seconds = 1.0;  // don't retry forever
  copts.call_deadline_seconds = 0.3;
  DataServiceClient client(server.port(), copts);
  Element e;
  bool eoe = false;
  TF_CHECK_OK(client.GetNext(&e, &eoe));
  server.Shutdown();
  // After shutdown the next pull fails with a retryable transport error
  // (the client gave up) or Cancelled from the handler — never a hang.
  Status s = client.GetNext(&e, &eoe);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace distributed
}  // namespace tfrepro
