// Tests for the training library: every optimizer trains a small problem
// to convergence; Saver round-trips; QueueRunner feeds a pipeline;
// SyncReplicas coordinates concurrent workers.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>

#include "graph/ops.h"
#include "runtime/session.h"
#include "train/coordinator.h"
#include "train/optimizer.h"
#include "train/saver.h"
#include "kernels/checkpoint_format.h"
#include "train/sync_replicas.h"

namespace tfrepro {
namespace {

using ops::Const;
using train::GradAndVar;

// Builds "fit w to minimize (w*x - target)^2" and runs `steps` of `opt`.
// Returns the final loss.
float TrainQuadratic(train::Optimizer* opt, int steps) {
  Graph g;
  GraphBuilder b(&g);
  Output w = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "w");
  Output init_w = ops::Assign(&b, w, Const(&b, Tensor::Vec<float>({5, -3})));
  Output target = Const(&b, Tensor::Vec<float>({1.5f, 2.5f}));
  Output diff = ops::Sub(&b, w, target);
  Output loss = ops::SumAll(&b, ops::Mul(&b, diff, diff));
  Result<Node*> train_op = opt->Minimize(&b, loss, {w}, "train");
  TF_CHECK_OK(train_op.status());
  Node* init = train::BuildInitOp(&b, {init_w}, {opt});
  TF_CHECK_OK(b.status());

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.status());
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  for (int i = 0; i < steps; ++i) {
    TF_CHECK_OK(
        session.value()->Run({}, {}, {train_op.value()->name()}, nullptr));
  }
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({loss.name()}, &out));
  return *out[0].data<float>();
}

TEST(OptimizerTest, GradientDescentConverges) {
  train::GradientDescentOptimizer opt(0.1f);
  EXPECT_LT(TrainQuadratic(&opt, 100), 1e-4f);
}

TEST(OptimizerTest, ComposedGradientDescentMatchesFused) {
  train::GradientDescentOptimizer fused(0.1f);
  train::ComposedGradientDescentOptimizer composed(0.1f);
  float a = TrainQuadratic(&fused, 20);
  float c = TrainQuadratic(&composed, 20);
  EXPECT_NEAR(a, c, 1e-6f);
}

TEST(OptimizerTest, MomentumConverges) {
  train::MomentumOptimizer opt(0.05f, 0.9f);
  EXPECT_LT(TrainQuadratic(&opt, 200), 1e-3f);
}

TEST(OptimizerTest, AdagradConverges) {
  train::AdagradOptimizer opt(1.0f);
  EXPECT_LT(TrainQuadratic(&opt, 300), 1e-3f);
}

TEST(OptimizerTest, AdadeltaMakesProgress) {
  train::AdadeltaOptimizer opt(10.0f, 0.9f, 1e-4f);
  float initial = 2 * (3.5f * 3.5f + 5.5f * 5.5f) / 2;  // loss at w0
  EXPECT_LT(TrainQuadratic(&opt, 300), initial * 0.2f);
}

TEST(OptimizerTest, RMSPropConverges) {
  train::RMSPropOptimizer opt(0.5f);
  EXPECT_LT(TrainQuadratic(&opt, 300), 1e-3f);
}

TEST(OptimizerTest, AdamConverges) {
  train::AdamOptimizer opt(0.5f);
  EXPECT_LT(TrainQuadratic(&opt, 300), 1e-3f);
}

TEST(OptimizerTest, LinearRegressionWithFeeds) {
  // y = 2x + 1 with noise-free data; SGD on (w, b).
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({4, 1}), "x");
  Output y = ops::Placeholder(&b, DataType::kFloat, TensorShape({4, 1}), "y");
  Output w = ops::Variable(&b, DataType::kFloat, TensorShape({1, 1}), "w");
  Output bias = ops::Variable(&b, DataType::kFloat, TensorShape({1}), "bias");
  Output init = Output(
      ops::Group(&b,
                 {ops::Assign(&b, w, Const(&b, Tensor::FromVector<float>(
                                              {0.0f}, TensorShape({1, 1})))),
                  ops::Assign(&b, bias,
                              Const(&b, Tensor::Vec<float>({0.0f})))},
                 "init"),
      0);
  Output pred = ops::BiasAdd(&b, ops::MatMul(&b, x, w), bias);
  Output loss = ops::MeanAll(&b, ops::Square(&b, ops::Sub(&b, pred, y)));
  train::GradientDescentOptimizer opt(0.05f);
  Result<Node*> train_op = opt.Minimize(&b, loss, {w, bias}, "train");
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  Tensor xs = Tensor::FromVector<float>({0, 1, 2, 3}, TensorShape({4, 1}));
  Tensor ys = Tensor::FromVector<float>({1, 3, 5, 7}, TensorShape({4, 1}));
  for (int i = 0; i < 500; ++i) {
    TF_CHECK_OK(session.value()->Run({{"x", xs}, {"y", ys}}, {},
                                     {train_op.value()->name()}, nullptr));
  }
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({{"x", xs}, {"y", ys}},
                                   {w.node->name() + ":0",
                                    bias.node->name() + ":0"},
                                   {}, &out));
  EXPECT_NEAR(*out[0].data<float>(), 2.0f, 0.05f);
  EXPECT_NEAR(*out[1].data<float>(), 1.0f, 0.1f);
}

TEST(SaverTest, SaveRestoreRoundTrip) {
  std::string prefix = ::testing::TempDir() + "/saver_test_ckpt";
  Graph g;
  GraphBuilder b(&g);
  Output v1 = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "v1");
  Output v2 = ops::Variable(&b, DataType::kInt32, TensorShape(), "v2");
  Output init = Output(
      ops::Group(&b,
                 {ops::Assign(&b, v1, Const(&b, Tensor::Vec<float>({1, 2}))),
                  ops::Assign(&b, v2, Const(&b, Tensor::Scalar(int32_t{7})))},
                 "init"),
      0);
  train::Saver saver(&b, {v1, v2});
  Output bump = ops::AssignAdd(&b, v1, Const(&b, Tensor::Vec<float>({10, 10})));
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  Result<std::string> path = saver.Save(session.value().get(), prefix, 1);
  ASSERT_TRUE(path.ok()) << path.status();

  // Mutate, then restore.
  TF_CHECK_OK(session.value()->Run({}, {}, {bump.node->name()}, nullptr));
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({"v1:0"}, &out));
  EXPECT_EQ(out[0].flat<float>(0), 11.0f);

  TF_CHECK_OK(saver.Restore(session.value().get(), path.value()));
  TF_CHECK_OK(session.value()->Run({"v1:0", "v2:0"}, &out));
  EXPECT_EQ(out[0].flat<float>(0), 1.0f);
  EXPECT_EQ(*out[1].data<int32_t>(), 7);
}

TEST(SaverTest, RetentionDeletesOldCheckpoints) {
  std::string prefix = ::testing::TempDir() + "/saver_retention_ckpt";
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape(), "v");
  Output init = ops::Assign(&b, v, Const(&b, 1.0f));
  train::Saver::Options options;
  options.max_to_keep = 2;
  train::Saver saver(&b, {v}, options);
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  for (int step = 1; step <= 4; ++step) {
    ASSERT_TRUE(saver.Save(session.value().get(), prefix, step).ok());
  }
  // Steps 1 and 2 deleted; 3 and 4 kept.
  EXPECT_FALSE(std::ifstream(prefix + "-1").good());
  EXPECT_FALSE(std::ifstream(prefix + "-2").good());
  EXPECT_TRUE(std::ifstream(prefix + "-3").good());
  EXPECT_TRUE(std::ifstream(prefix + "-4").good());
  Result<std::string> latest = train::Saver::LatestCheckpoint(prefix);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(std::filesystem::path(latest.value()).lexically_normal(),
            std::filesystem::path(prefix + "-4").lexically_normal());
}

TEST(SaverTest, LatestCheckpointMissing) {
  EXPECT_FALSE(
      train::Saver::LatestCheckpoint("/nonexistent/dir/nothing").ok());
}

TEST(CoordinatorTest, QueueRunnerFeedsPipeline) {
  // Producer threads enqueue random batches; the consumer dequeues a fixed
  // number of them (the Figure 1 input-pipeline shape).
  Graph g;
  GraphBuilder b(&g);
  Output q = ops::FIFOQueue(&b, {DataType::kFloat}, /*capacity=*/4);
  Output batch = ops::RandomUniform(&b, {8}, DataType::kFloat, /*seed=*/42);
  Node* enqueue = ops::QueueEnqueue(&b, q, {batch});
  std::vector<Output> dq = ops::QueueDequeue(&b, q, {DataType::kFloat});
  Node* close_q = ops::QueueClose(&b, q, /*cancel_pending=*/true);
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  train::Coordinator coord;
  train::QueueRunner runner(enqueue->name());
  runner.Start(session.value().get(), &coord, /*num_threads=*/2);

  for (int i = 0; i < 20; ++i) {
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({dq[0].name()}, &out));
    EXPECT_EQ(out[0].num_elements(), 8);
  }
  coord.RequestStop();
  // Unblock any producer waiting on the full queue.
  TF_CHECK_OK(session.value()->Run({}, {}, {close_q->name()}, nullptr));
  coord.Join();
  EXPECT_TRUE(coord.status().ok()) << coord.status();
}

TEST(CoordinatorTest, RequestStopAbortsBlockedEnqueue) {
  // A runner wedged on a full queue's enqueue: RequestStop must run the
  // runner's cancel op (QueueClose with cancel_pending_enqueues) so the
  // blocked enqueue aborts and Join returns instead of hanging forever.
  Graph g;
  GraphBuilder b(&g);
  Output q = ops::FIFOQueue(&b, {DataType::kFloat}, /*capacity=*/1);
  Node* enqueue = ops::QueueEnqueue(&b, q, {Const(&b, 1.0f)});
  Node* cancel = ops::QueueClose(&b, q, /*cancel_pending=*/true);
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  train::Coordinator coord;
  train::QueueRunner runner(enqueue->name(), /*close_op=*/"",
                            /*cancel_op=*/cancel->name());
  runner.Start(session.value().get(), &coord, /*num_threads=*/1);

  // Give the runner time to fill the queue (capacity 1) and block on the
  // second enqueue. No consumer ever dequeues.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  coord.RequestStop();
  coord.Join();  // must return — the cancel op aborted the pending enqueue
  EXPECT_TRUE(coord.status().ok()) << coord.status();
}

TEST(SyncReplicasTest, WorkersSeeSameParameterVersion) {
  // 3 workers contribute gradient 1.0 each; chief averages and applies with
  // lr=1. After k rounds, w == w0 - k.
  constexpr int kWorkers = 3;
  Graph g;
  GraphBuilder b(&g);
  Output w = ops::Variable(&b, DataType::kFloat, TensorShape(), "w");
  Output init_w = ops::Assign(&b, w, Const(&b, 10.0f));

  train::GradientDescentOptimizer opt(1.0f);
  train::SyncReplicas sync(&b, &opt, kWorkers, kWorkers);

  std::vector<Node*> worker_steps;
  for (int i = 0; i < kWorkers; ++i) {
    // Each worker's "gradient" is constant 1.0.
    std::vector<GradAndVar> gvs = {GradAndVar{Const(&b, 1.0f), w}};
    Result<Node*> step = sync.AddWorkerStep(gvs);
    ASSERT_TRUE(step.ok()) << step.status();
    worker_steps.push_back(step.value());
  }
  Result<Node*> chief = sync.BuildChiefUpdate();
  ASSERT_TRUE(chief.ok()) << chief.status();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  DirectSession* sess = session.value().get();
  TF_CHECK_OK(sess->Run({}, {}, {init_w.node->name()}, nullptr));
  TF_CHECK_OK(sess->Run({}, {}, {sync.token_seed_op()->name()}, nullptr));

  constexpr int kRounds = 5;
  std::vector<std::thread> threads;
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&, i]() {
      for (int r = 0; r < kRounds; ++r) {
        TF_CHECK_OK(sess->Run({}, {}, {worker_steps[i]->name()}, nullptr));
      }
    });
  }
  threads.emplace_back([&]() {
    for (int r = 0; r < kRounds; ++r) {
      TF_CHECK_OK(sess->Run({}, {}, {chief.value()->name()}, nullptr));
    }
  });
  for (auto& t : threads) t.join();

  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({"w:0"}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 10.0f - kRounds);
}

TEST(SyncReplicasTest, BackupWorkersTakeFirstMOfN) {
  // n=3 workers, m=2 required: the chief update only needs 2 contributions.
  Graph g;
  GraphBuilder b(&g);
  Output w = ops::Variable(&b, DataType::kFloat, TensorShape(), "w");
  Output init_w = ops::Assign(&b, w, Const(&b, 6.0f));
  train::GradientDescentOptimizer opt(1.0f);
  train::SyncReplicas sync(&b, &opt, /*num_workers=*/3, /*num_required=*/2);
  std::vector<Node*> worker_steps;
  for (int i = 0; i < 3; ++i) {
    std::vector<GradAndVar> gvs = {GradAndVar{Const(&b, 2.0f), w}};
    Result<Node*> step = sync.AddWorkerStep(gvs);
    ASSERT_TRUE(step.ok());
    worker_steps.push_back(step.value());
  }
  Result<Node*> chief = sync.BuildChiefUpdate();
  ASSERT_TRUE(chief.ok());
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  DirectSession* sess = session.value().get();
  TF_CHECK_OK(sess->Run({}, {}, {init_w.node->name()}, nullptr));
  TF_CHECK_OK(sess->Run({}, {}, {sync.token_seed_op()->name()}, nullptr));

  // Only 2 of the 3 workers contribute; the chief must still complete (the
  // straggler never shows up — that is the Figure 4c behaviour).
  std::thread w0([&]() {
    TF_CHECK_OK(sess->Run({}, {}, {worker_steps[0]->name()}, nullptr));
  });
  std::thread w1([&]() {
    TF_CHECK_OK(sess->Run({}, {}, {worker_steps[1]->name()}, nullptr));
  });
  TF_CHECK_OK(sess->Run({}, {}, {chief.value()->name()}, nullptr));
  w0.join();
  w1.join();

  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({"w:0"}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 4.0f);  // 6 - mean(2,2)
}

TEST(OptimizerTest, VariableNotInfluencingLossRejected) {
  Graph g;
  GraphBuilder b(&g);
  Output w = ops::Variable(&b, DataType::kFloat, TensorShape(), "w");
  Output unrelated = ops::Variable(&b, DataType::kFloat, TensorShape(), "u");
  Output loss = ops::Square(&b, w);
  train::GradientDescentOptimizer opt(0.1f);
  Result<Node*> train_op = opt.Minimize(&b, loss, {w, unrelated});
  EXPECT_FALSE(train_op.ok());
}


TEST(CheckpointFormatTest, CorruptFileReportsDataLoss) {
  std::string path = ::testing::TempDir() + "/corrupt_ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  Result<Tensor> r = ReadCheckpointTensor(path, "v");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kDataLoss);
}

TEST(CheckpointFormatTest, MissingTensorReportsNotFound) {
  std::string path = ::testing::TempDir() + "/partial_ckpt";
  TF_CHECK_OK(WriteCheckpoint(path, {{"a", Tensor::Scalar(1.0f)}}));
  Result<Tensor> r = ReadCheckpointTensor(path, "b");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
  Result<std::vector<std::string>> names = ListCheckpointTensors(path);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"a"}));
}

TEST(CheckpointFormatTest, WriteIsAtomicViaRename) {
  // The temp file must not linger, and rewriting must fully replace.
  std::string path = ::testing::TempDir() + "/atomic_ckpt";
  TF_CHECK_OK(WriteCheckpoint(path, {{"v", Tensor::Scalar(1.0f)}}));
  TF_CHECK_OK(WriteCheckpoint(path, {{"v", Tensor::Scalar(2.0f)}}));
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  Result<Tensor> r = ReadCheckpointTensor(path, "v");
  ASSERT_TRUE(r.ok());
  EXPECT_FLOAT_EQ(*r.value().data<float>(), 2.0f);
}

}  // namespace
}  // namespace tfrepro
