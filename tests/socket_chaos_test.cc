// Chaos over the socket transport (§4.3, DESIGN.md §11): every task is a
// real worker_main process, and the faults are real SIGKILLs delivered by
// ProcessCluster::KillTaskProcess — no injector scripting, no cooperation
// from the victim. The master must notice a genuinely dead peer (failed
// dispatch, reset connection, or missed probes), respawn the process,
// re-register its subgraphs, and restore from the last checkpoint.
//
// Invariants, mirroring chaos_test.cc:
//   * every training step eventually succeeds despite kills landing
//     before and during steps;
//   * exactly-once commit: the per-step counter equals N — a retried step
//     first restores the last checkpoint, so aborted attempts never
//     compound;
//   * the trajectory matches the fault-free reference bit-exactly
//     (power-of-two SGD);
//   * an idle-time kill is caught by the health prober, which restarts the
//     process proactively (master.prober_restarts advances);
//   * the master-side hub leaks no rendezvous state once torn down.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "distributed/master.h"
#include "distributed/rpc/process_cluster.h"
#include "graph/ops.h"
#include "train/checkpoint_policy.h"
#include "train/optimizer.h"
#include "train/saver.h"

namespace tfrepro {
namespace {

using distributed::ClusterSpec;
using distributed::MasterSession;
using distributed::rpc::ProcessCluster;
using ops::Const;

constexpr int kSteps = 12;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool WaitFor(const std::function<bool()>& cond, double timeout_s) {
  auto start = std::chrono::steady_clock::now();
  while (SecondsSince(start) < timeout_s) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

// The training fixture shared by both scenarios: w/c/r variables on the ps
// task, SGD on worker:0, read-only payload on worker:1 — the same graph as
// chaos_test.cc so the two transports are checked against one reference.
struct ChaosRig {
  Graph g;
  std::unique_ptr<GraphBuilder> b;
  Output w, c, r, loss;
  Node* init = nullptr;
  Node* bump = nullptr;
  Node* aux_target = nullptr;
  Result<Node*> train_op = Internal("unset");
  train::GradientDescentOptimizer opt{0.25f};
  std::unique_ptr<train::Saver> saver;

  void Build() {
    b = std::make_unique<GraphBuilder>(&g);
    {
      GraphBuilder::DeviceScope scope(b.get(), "/job:ps/task:0");
      w = ops::Variable(b.get(), DataType::kFloat, TensorShape({2}), "w");
      c = ops::Variable(b.get(), DataType::kFloat, TensorShape(), "c");
      r = ops::Variable(b.get(), DataType::kFloat, TensorShape({2}), "r");
      init = ops::Group(
          b.get(),
          {ops::Assign(b.get(), w, Const(b.get(), Tensor::Vec<float>({4, -4}))),
           ops::Assign(b.get(), c, Const(b.get(), 0.0f)),
           ops::Assign(b.get(), r,
                       Const(b.get(), Tensor::Vec<float>({1, 2})))},
          "init");
      bump = ops::Group(
          b.get(), {ops::AssignAdd(b.get(), c, Const(b.get(), 1.0f))}, "bump");
    }
    {
      GraphBuilder::DeviceScope scope(b.get(), "/job:worker/task:0");
      loss = ops::SumAll(b.get(), ops::Square(b.get(), w));
      train_op = opt.Minimize(b.get(), loss, {w}, "train");
    }
    ASSERT_TRUE(train_op.ok()) << train_op.status();
    Output aux;
    {
      GraphBuilder::DeviceScope scope(b.get(), "/job:worker/task:1");
      aux = ops::SumAll(b.get(), ops::Square(b.get(), r));
    }
    aux_target = ops::Group(b.get(), {aux}, "aux");
    saver = std::make_unique<train::Saver>(b.get(),
                                           std::vector<Output>{w, c, r});
    ASSERT_TRUE(b->ok()) << b->status();
  }
};

Result<std::unique_ptr<ProcessCluster>> MakeCluster() {
  ClusterSpec spec;
  spec.jobs["ps"] = 1;
  spec.jobs["worker"] = 2;
  spec.transport = "socket";
  ProcessCluster::Options copts;
  return ProcessCluster::Create(spec, copts);
}

MasterSession::Options ChaosOptions() {
  MasterSession::Options options;
  // Real processes are slower than function calls; the deadline still has
  // to fire well inside the test timeout when a dispatch target dies at
  // the worst moment.
  options.step_deadline_seconds = 2.0;
  options.max_step_retries = 8;
  options.restart_failed_tasks = true;
  options.retry_backoff_initial_seconds = 1e-3;
  options.health_probe_interval_seconds = 0.05;
  options.health_probe_miss_threshold = 3;
  return options;
}

// SIGKILLs land on live worker processes before step 3 and in the middle
// of step 7 (from a side thread, racing the in-flight dispatch). Either
// way the master must absorb it: failed dispatch or missed probe, respawn,
// re-register, restore checkpoint, retry — and the final counter and loss
// must be exactly what a fault-free run produces.
TEST(SocketChaosTest, SigkillMidTrainingRecoversExactlyOnce) {
  {
    auto cluster_or = MakeCluster();
    ASSERT_TRUE(cluster_or.ok()) << cluster_or.status();
    ProcessCluster* cluster = cluster_or.value().get();

    ChaosRig rig;
    rig.Build();
    if (::testing::Test::HasFatalFailure()) return;

    auto session =
        MasterSession::Create(rig.g, cluster, ChaosOptions());
    ASSERT_TRUE(session.ok()) << session.status();
    MasterSession* sess = session.value().get();

    const std::string dir = ::testing::TempDir() + "/socket_chaos_kill";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    train::CheckpointPolicy policy(rig.saver.get(), dir + "/model",
                                   /*save_every_n_steps=*/1);
    sess->set_recovery_handler([&] { return policy.Recover(sess); });

    TF_CHECK_OK(sess->Run({}, {}, {rig.init->name()}, nullptr));
    TF_CHECK_OK(policy.AfterStep(sess, 0));

    const std::vector<std::string> step_targets = {
        rig.train_op.value()->name(), rig.bump->name(),
        rig.aux_target->name()};
    int kills_delivered = 0;
    for (int step = 1; step <= kSteps; ++step) {
      std::thread killer;
      if (step == 3) {
        // Dead before the step starts: the first dispatch hits a reset
        // connection (or the prober gets there first).
        Status k = cluster->KillTaskProcess("worker", 1);
        if (k.ok()) ++kills_delivered;
      } else if (step == 7) {
        // Dead mid-step: the kill races the in-flight RunGraph.
        killer = std::thread([&] {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          Status k = cluster->KillTaskProcess("worker", 0);
          if (k.ok()) ++kills_delivered;
        });
      }
      Status s = sess->Run({}, {}, step_targets, nullptr);
      if (killer.joinable()) killer.join();
      ASSERT_TRUE(s.ok()) << "step " << step << ": " << s;
      Status saved = policy.AfterStep(sess, step);
      ASSERT_TRUE(saved.ok()) << "checkpoint after step " << step << ": "
                              << saved;
    }
    // Both kills must have found a live process — otherwise the test
    // exercised nothing.
    EXPECT_EQ(kills_delivered, 2);
    // Each killed process was respawned by the master (retry path or
    // prober, whichever noticed first).
    EXPECT_GE(sess->stats().restarts, 2);
    EXPECT_GE(sess->stats().recoveries, 2);

    // Exactly-once: the counter saw each step once despite the retries.
    std::vector<Tensor> out;
    TF_CHECK_OK(sess->Run({rig.c.name(), rig.loss.name()}, &out));
    EXPECT_EQ(*out[0].data<float>(), float(kSteps));
    const float expected =
        2.0f * std::ldexp(4.0f, -kSteps) * std::ldexp(4.0f, -kSteps);
    EXPECT_EQ(*out[1].data<float>(), expected);

    // Killing sockets mid-conversation must have forced redials.
    EXPECT_GT(
        metrics::Registry::Global()->GetCounter("rpc.reconnects")->value(),
        0);
  }
  // Hub, session and cluster are gone; the master-side rendezvous state
  // they pinned (including long-polls parked by dead workers) must drain.
  metrics::Registry* reg = metrics::Registry::Global();
  EXPECT_TRUE(WaitFor(
      [&] { return reg->GetGauge("rendezvous.live_items")->value() == 0; },
      5.0))
      << "leaked rendezvous items: "
      << reg->GetGauge("rendezvous.live_items")->value();
  EXPECT_TRUE(WaitFor(
      [&] { return reg->GetGauge("rendezvous.live_waiters")->value() == 0; },
      5.0))
      << "leaked rendezvous waiters: "
      << reg->GetGauge("rendezvous.live_waiters")->value();
}

// A kill while no step is in flight is invisible to dispatch — only the
// health prober can see it. It must miss K probes, restart the process,
// re-register, run recovery, and the next step must succeed first try.
TEST(SocketChaosTest, IdleKillCaughtByProber) {
  auto cluster_or = MakeCluster();
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status();
  ProcessCluster* cluster = cluster_or.value().get();

  ChaosRig rig;
  rig.Build();
  if (::testing::Test::HasFatalFailure()) return;

  auto session = MasterSession::Create(rig.g, cluster, ChaosOptions());
  ASSERT_TRUE(session.ok()) << session.status();
  MasterSession* sess = session.value().get();

  const std::string dir = ::testing::TempDir() + "/socket_chaos_idle";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  train::CheckpointPolicy policy(rig.saver.get(), dir + "/model",
                                 /*save_every_n_steps=*/1);
  sess->set_recovery_handler([&] { return policy.Recover(sess); });

  TF_CHECK_OK(sess->Run({}, {}, {rig.init->name()}, nullptr));
  TF_CHECK_OK(policy.AfterStep(sess, 0));

  const std::vector<std::string> step_targets = {
      rig.train_op.value()->name(), rig.bump->name(), rig.aux_target->name()};
  TF_CHECK_OK(sess->Run({}, {}, step_targets, nullptr));
  TF_CHECK_OK(policy.AfterStep(sess, 1));

  // Kill between steps. Nothing is dispatching, so only the prober (50ms
  // interval, 3 misses) can notice.
  TF_CHECK_OK(cluster->KillTaskProcess("worker", 1));
  EXPECT_TRUE(WaitFor([&] { return sess->stats().prober_restarts >= 1; },
                      10.0))
      << "prober never restarted the killed worker; stats.restarts="
      << sess->stats().restarts;

  // The proactive restart already re-registered and recovered, so this
  // step should not need the retry path at all — but all that matters
  // here is that it succeeds and commits exactly once.
  TF_CHECK_OK(sess->Run({}, {}, step_targets, nullptr));
  TF_CHECK_OK(policy.AfterStep(sess, 2));

  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({rig.c.name()}, &out));
  EXPECT_EQ(*out[0].data<float>(), 2.0f);
}

}  // namespace
}  // namespace tfrepro
