// End-to-end tests of DirectSession: pruning, placement, partitioning,
// executor scheduling, kernels, control flow and queues.

#include "runtime/session.h"

#include <gtest/gtest.h>

#include <thread>

#include "graph/ops.h"

namespace tfrepro {
namespace {

using ops::Const;

std::vector<float> FetchVec(const Tensor& t) {
  std::vector<float> v(t.num_elements());
  for (int64_t i = 0; i < t.num_elements(); ++i) v[i] = t.flat<float>(i);
  return v;
}

TEST(SessionTest, ConstAdd) {
  Graph g;
  GraphBuilder b(&g);
  Output sum = ops::Add(&b, Const(&b, 3.0f), Const(&b, 4.0f));
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({sum.name()}, &out).ok());
  EXPECT_EQ(*out[0].data<float>(), 7.0f);
}

TEST(SessionTest, FeedAndFetch) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({2}), "x");
  Output y = ops::Mul(&b, x, Const(&b, 10.0f));
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok());
  std::vector<Tensor> out;
  Status s = session.value()->Run({{"x", Tensor::Vec<float>({1, 2})}},
                                  {y.name()}, {}, &out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(FetchVec(out[0]), (std::vector<float>{10, 20}));
}

TEST(SessionTest, UnfedPlaceholderFails) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({2}), "x");
  Output y = ops::Neg(&b, x);
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  EXPECT_FALSE(session.value()->Run({y.name()}, &out).ok());
}

TEST(SessionTest, MatMulChain) {
  Graph g;
  GraphBuilder b(&g);
  Output a = Const(&b, Tensor::FromVector<float>({1, 2, 3, 4}, TensorShape({2, 2})));
  Output c = Const(&b, Tensor::FromVector<float>({5, 6, 7, 8}, TensorShape({2, 2})));
  Output p = ops::MatMul(&b, a, c);
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({p.name()}, &out).ok());
  EXPECT_EQ(FetchVec(out[0]), (std::vector<float>{19, 22, 43, 50}));
}

TEST(SessionTest, VariableAssignAndRead) {
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "v");
  Output init = ops::Assign(&b, v, Const(&b, Tensor::Vec<float>({1, 1})));
  Output bump = ops::AssignAdd(&b, v, Const(&b, Tensor::Vec<float>({1, 2})));
  Output read = ops::Identity(&b, v);
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok());
  // Initialize.
  ASSERT_TRUE(session.value()->Run({}, {}, {init.node->name()}, nullptr).ok());
  // Two update steps.
  ASSERT_TRUE(session.value()->Run({}, {}, {bump.node->name()}, nullptr).ok());
  ASSERT_TRUE(session.value()->Run({}, {}, {bump.node->name()}, nullptr).ok());
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({read.name()}, &out).ok());
  EXPECT_EQ(FetchVec(out[0]), (std::vector<float>{3, 5}));
}

TEST(SessionTest, UninitializedVariableFails) {
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "v");
  Output bump = ops::AssignAdd(&b, v, Const(&b, Tensor::Vec<float>({1, 2})));
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  Status s = session.value()->Run({}, {}, {bump.node->name()}, nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kFailedPrecondition);
}

TEST(SessionTest, CachedStepReusesExecutors) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output y = ops::Square(&b, x);
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  for (int i = 0; i < 50; ++i) {
    std::vector<Tensor> out;
    ASSERT_TRUE(session.value()
                    ->Run({{"x", Tensor::Scalar(static_cast<float>(i))}},
                          {y.name()}, {}, &out)
                    .ok());
    EXPECT_EQ(*out[0].data<float>(), static_cast<float>(i) * i);
  }
}

TEST(SessionTest, PruningSkipsUnneededOps) {
  Graph g;
  GraphBuilder b(&g);
  Output x = Const(&b, 2.0f);
  Output wanted = ops::Square(&b, x);
  // This op would fail if executed (unfed placeholder), but is pruned.
  Output ph = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "ph");
  ops::Mul(&b, ph, x);
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({wanted.name()}, &out).ok());
  EXPECT_EQ(*out[0].data<float>(), 4.0f);
}

TEST(SessionTest, ConditionalSwitchMergeTrueBranch) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = Const(&b, 10.0f);
  Node* sw = ops::Switch(&b, x, pred);
  // False branch: x * 2; true branch: x + 100.
  Output f = ops::Mul(&b, Output(sw, 0), Const(&b, 2.0f));
  Output t = ops::Add(&b, Output(sw, 1), Const(&b, 100.0f));
  Node* merge = ops::Merge(&b, {f, t});
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);

  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()
                  ->Run({{"pred", Tensor::Scalar(true)}},
                        {Output(merge, 0).name()}, {}, &out)
                  .ok());
  EXPECT_EQ(*out[0].data<float>(), 110.0f);

  ASSERT_TRUE(session.value()
                  ->Run({{"pred", Tensor::Scalar(false)}},
                        {Output(merge, 0).name()}, {}, &out)
                  .ok());
  EXPECT_EQ(*out[0].data<float>(), 20.0f);
}

TEST(SessionTest, MergeValueIndexReportsTakenBranch) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = Const(&b, 1.0f);
  Node* sw = ops::Switch(&b, x, pred);
  Node* merge = ops::Merge(&b, {Output(sw, 0), Output(sw, 1)});
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()
                  ->Run({{"pred", Tensor::Scalar(true)}},
                        {Output(merge, 1).name()}, {}, &out)
                  .ok());
  EXPECT_EQ(*out[0].data<int32_t>(), 1);
}

TEST(SessionTest, FetchingDeadTensorFails) {
  Graph g;
  GraphBuilder b(&g);
  Output pred = ops::Placeholder(&b, DataType::kBool, TensorShape(), "pred");
  Output x = Const(&b, 1.0f);
  Node* sw = ops::Switch(&b, x, pred);
  Output dead_branch = ops::Identity(&b, Output(sw, 0));  // false branch
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  Status s = session.value()->Run({{"pred", Tensor::Scalar(true)}},
                                  {dead_branch.name()}, {}, &out);
  EXPECT_FALSE(s.ok());
}

// A while loop: i = 0; while (i < 5) i += 1. Built from raw control-flow
// primitives the way §3.4 describes.
TEST(SessionTest, WhileLoop) {
  Graph g;
  GraphBuilder b(&g);
  const std::string frame = "loop";
  Output zero = Const(&b, 0.0f);
  Output enter = ops::Enter(&b, zero, frame);
  Node* merge = ops::Merge(&b, {enter, enter});  // placeholder 2nd input
  // Replace second merge input with the back edge below.
  Output i(merge, 0);
  Output limit = ops::Enter(&b, Const(&b, 5.0f), frame, /*is_constant=*/true);
  Output cond = ops::Less(&b, i, limit);
  Output loop_cond = ops::LoopCond(&b, cond);
  Node* sw = ops::Switch(&b, i, loop_cond);
  Output exit = ops::Exit(&b, Output(sw, 0));
  Output one = ops::Enter(&b, Const(&b, 1.0f), frame, /*is_constant=*/true);
  Output next_val = ops::Add(&b, Output(sw, 1), one);
  Output next = ops::NextIteration(&b, next_val);
  ASSERT_TRUE(b.ok()) << b.status();
  // Wire the back edge: replace merge's second input.
  Result<const Edge*> second = merge->input_edge(1);
  ASSERT_TRUE(second.ok());
  g.RemoveEdge(second.value());
  ASSERT_TRUE(g.AddEdge(next.node, 0, merge, 1).ok());

  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok());
  std::vector<Tensor> out;
  Status s = session.value()->Run({exit.name()}, &out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(*out[0].data<float>(), 5.0f);
}

TEST(SessionTest, QueueEnqueueDequeue) {
  Graph g;
  GraphBuilder b(&g);
  Output q = ops::FIFOQueue(&b, {DataType::kFloat}, 10);
  Output val = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "val");
  Node* enqueue = ops::QueueEnqueue(&b, q, {val});
  std::vector<Output> dq = ops::QueueDequeue(&b, q, {DataType::kFloat});
  Output size = ops::QueueSize(&b, q);
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.value()
                    ->Run({{"val", Tensor::Scalar(static_cast<float>(i))}},
                          {}, {enqueue->name()}, nullptr)
                    .ok());
  }
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({size.name()}, &out).ok());
  EXPECT_EQ(*out[0].data<int32_t>(), 3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.value()->Run({dq[0].name()}, &out).ok());
    EXPECT_EQ(*out[0].data<float>(), static_cast<float>(i));  // FIFO order
  }
}

TEST(SessionTest, QueueBlocksUntilEnqueue) {
  Graph g;
  GraphBuilder b(&g);
  Output q = ops::FIFOQueue(&b, {DataType::kFloat}, 10);
  Output val = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "val");
  Node* enqueue = ops::QueueEnqueue(&b, q, {val});
  std::vector<Output> dq = ops::QueueDequeue(&b, q, {DataType::kFloat});
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  DirectSession* sess = session.value().get();

  // Dequeue in a thread; it must block until the enqueue arrives.
  std::vector<Tensor> out;
  Status dq_status;
  std::thread consumer([&]() { dq_status = sess->Run({dq[0].name()}, &out); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(sess->Run({{"val", Tensor::Scalar(42.0f)}}, {},
                        {enqueue->name()}, nullptr)
                  .ok());
  consumer.join();
  ASSERT_TRUE(dq_status.ok()) << dq_status;
  EXPECT_EQ(*out[0].data<float>(), 42.0f);
}

TEST(SessionTest, DequeueManyBatches) {
  Graph g;
  GraphBuilder b(&g);
  Output q = ops::FIFOQueue(&b, {DataType::kFloat}, 10);
  Output val = ops::Placeholder(&b, DataType::kFloat, TensorShape({2}), "val");
  Node* enqueue = ops::QueueEnqueue(&b, q, {val});
  std::vector<Output> dq =
      ops::QueueDequeueMany(&b, q, Const(&b, int32_t{3}), {DataType::kFloat});
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  for (int i = 0; i < 3; ++i) {
    float base = static_cast<float>(i * 2);
    ASSERT_TRUE(
        session.value()
            ->Run({{"val", Tensor::Vec<float>({base, base + 1})}}, {},
                  {enqueue->name()}, nullptr)
            .ok());
  }
  std::vector<Tensor> out;
  ASSERT_TRUE(session.value()->Run({dq[0].name()}, &out).ok());
  EXPECT_EQ(out[0].shape().DebugString(), "[3,2]");
  EXPECT_EQ(out[0].matrix<float>(2, 1), 5.0f);
}

TEST(SessionTest, MultiDevicePartitioningWithSendRecv) {
  Graph g;
  GraphBuilder b(&g);
  Output x;
  {
    GraphBuilder::DeviceScope scope(&b, "/device:CPU:1");
    x = ops::Mul(&b, Const(&b, 3.0f), Const(&b, 5.0f));
  }
  Output y = ops::Add(&b, x, Const(&b, 1.0f));  // placed on CPU:0
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.num_devices = 2;
  auto session = DirectSession::Create(g, options);
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<Tensor> out;
  Status s = session.value()->Run({y.name()}, &out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(*out[0].data<float>(), 16.0f);
}

TEST(SessionTest, ColocationConstraintViolationDetected) {
  Graph g;
  GraphBuilder b(&g);
  Output v;
  {
    GraphBuilder::DeviceScope scope(&b, "/device:CPU:1");
    v = ops::Variable(&b, DataType::kFloat, TensorShape({1}), "v");
  }
  Output value = Const(&b, Tensor::Vec<float>({1.0f}));
  Output assign;
  {
    GraphBuilder::DeviceScope scope(&b, "/device:CPU:0");
    assign = ops::Assign(&b, v, value);
  }
  ASSERT_TRUE(b.ok());
  SessionOptions options;
  options.num_devices = 2;
  auto session = DirectSession::Create(g, options);
  // Variable and Assign have conflicting explicit constraints.
  std::vector<Tensor> out;
  Status s = session.value()->Run({}, {}, {assign.node->name()}, nullptr);
  EXPECT_FALSE(s.ok());
}

TEST(SessionTest, ConcurrentStepsOnSharedState) {
  // Paper §3.2: multiple concurrent steps coordinate through shared
  // variables. N threads each run AssignAdd(v, 1) k times.
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape(), "v");
  Output init = ops::Assign(&b, v, Const(&b, 0.0f));
  Output bump = ops::AssignAdd(&b, v, Const(&b, 1.0f));
  Output read = ops::Identity(&b, v);
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  DirectSession* sess = session.value().get();
  ASSERT_TRUE(sess->Run({}, {}, {init.node->name()}, nullptr).ok());

  constexpr int kThreads = 4;
  constexpr int kSteps = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kSteps; ++i) {
        TF_CHECK_OK(sess->Run({}, {}, {bump.node->name()}, nullptr));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Tensor> out;
  ASSERT_TRUE(sess->Run({read.name()}, &out).ok());
  EXPECT_EQ(*out[0].data<float>(), kThreads * kSteps);
}

TEST(SessionTest, GatherAndDynamicPartitionStitchRoundTrip) {
  // The sharded-embedding dataflow of Figure 3, single-process.
  Graph g;
  GraphBuilder b(&g);
  Output params = Const(
      &b, Tensor::FromVector<float>({0, 0, 10, 10, 20, 20, 30, 30, 40, 40},
                                    TensorShape({5, 2})));
  Output indices = ops::Placeholder(&b, DataType::kInt32, TensorShape({3}),
                                    "indices");
  // Shard by parity (mod 2), gather per-shard, stitch back together.
  Output shard_ids =
      b.Op("Mod")
          .Input(indices)
          .Input(Const(&b, Tensor::Vec<int32_t>({2, 2, 2})))
          .Attr("T", DataType::kInt32)
          .Finalize();
  std::vector<Output> parts = ops::DynamicPartition(&b, indices, shard_ids, 2);
  // Positions of each index in the original vector, partitioned the same way.
  Output positions = ops::Range(&b, Const(&b, int32_t{0}),
                                Const(&b, int32_t{3}), Const(&b, int32_t{1}));
  std::vector<Output> pos_parts =
      ops::DynamicPartition(&b, positions, shard_ids, 2);
  Output g0 = ops::Gather(&b, params, parts[0]);
  Output g1 = ops::Gather(&b, params, parts[1]);
  Output stitched = ops::DynamicStitch(&b, pos_parts, {g0, g1});
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  Status s = session.value()->Run({{"indices", Tensor::Vec<int32_t>({4, 1, 2})}},
                                  {stitched.name()}, {}, &out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(out[0].shape().DebugString(), "[3,2]");
  EXPECT_EQ(out[0].matrix<float>(0, 0), 40.0f);
  EXPECT_EQ(out[0].matrix<float>(1, 0), 10.0f);
  EXPECT_EQ(out[0].matrix<float>(2, 0), 20.0f);
}

TEST(SessionTest, SaveRestoreRoundTrip) {
  std::string path = ::testing::TempDir() + "/ckpt_session_test";
  {
    Graph g;
    GraphBuilder b(&g);
    Output v = ops::Variable(&b, DataType::kFloat, TensorShape({3}), "v");
    Output init =
        ops::Assign(&b, v, Const(&b, Tensor::Vec<float>({7, 8, 9})));
    Node* save = ops::Save(&b, Const(&b, Tensor::Scalar(path)),
                           Const(&b, Tensor::Scalar(std::string("v"))),
                           {ops::Identity(&b, v)});
    ASSERT_TRUE(b.ok()) << b.status();
    auto session = DirectSession::Create(g);
    ASSERT_TRUE(session.value()->Run({}, {}, {init.node->name()}, nullptr).ok());
    ASSERT_TRUE(session.value()->Run({}, {}, {save->name()}, nullptr).ok());
  }
  {
    Graph g;
    GraphBuilder b(&g);
    Output restored =
        ops::Restore(&b, Const(&b, Tensor::Scalar(path)),
                     Const(&b, Tensor::Scalar(std::string("v"))),
                     DataType::kFloat);
    ASSERT_TRUE(b.ok());
    auto session = DirectSession::Create(g);
    std::vector<Tensor> out;
    ASSERT_TRUE(session.value()->Run({restored.name()}, &out).ok());
    EXPECT_EQ(FetchVec(out[0]), (std::vector<float>{7, 8, 9}));
  }
}

TEST(SessionTest, KernelErrorPropagates) {
  Graph g;
  GraphBuilder b(&g);
  // MatMul with mismatched inner dimensions fails at runtime.
  Output a = Const(&b, Tensor::FromVector<float>({1, 2}, TensorShape({1, 2})));
  Output c = Const(&b, Tensor::FromVector<float>({1, 2, 3}, TensorShape({1, 3})));
  Output p = ops::MatMul(&b, a, c);
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  Status s = session.value()->Run({p.name()}, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("MatMul"), std::string::npos);
}

TEST(SessionTest, ReductionsAndBroadcasting) {
  Graph g;
  GraphBuilder b(&g);
  Output m = Const(&b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                                 TensorShape({2, 3})));
  Output row = Const(&b, Tensor::Vec<float>({10, 20, 30}));
  Output sum = ops::Add(&b, m, row);              // broadcast add
  Output total = ops::SumAll(&b, sum);            // reduce all
  Output mean0 = ops::Mean(&b, m, ops::ConstVecI32(&b, {0}));
  ASSERT_TRUE(b.ok());
  auto session = DirectSession::Create(g);
  std::vector<Tensor> out;
  ASSERT_TRUE(
      session.value()->Run({total.name(), mean0.name()}, &out).ok());
  EXPECT_EQ(*out[0].data<float>(), 21 + 120);
  EXPECT_EQ(FetchVec(out[1]), (std::vector<float>{2.5f, 3.5f, 4.5f}));
}

}  // namespace
}  // namespace tfrepro
