// Tests for the sampling profiler (DESIGN.md §12): exact sampling cadence
// under concurrency, deterministic ProfileStore aggregation/merge, zero
// profiling work when sampling is disabled, and the observe→place feedback
// loop (PlaceGraph's observed-cost mode producing a different placement
// than the static arity heuristic on a skewed-cost graph).

#include "runtime/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/ops.h"
#include "runtime/placer.h"
#include "runtime/session.h"

namespace tfrepro {
namespace {

using ops::Const;

// A synthetic one-node step: `node` ran for `micros` on `device`.
StepStats MakeStep(const std::string& node, const std::string& op,
                   const std::string& device, int64_t micros,
                   int64_t start = 1000) {
  StepStats stats;
  NodeExecStats n;
  n.node_name = node;
  n.op = op;
  n.device = device;
  n.scheduled_micros = start;
  n.start_micros = start;
  n.end_micros = start + micros;
  stats.nodes.push_back(n);
  return stats;
}

TEST(ProfilerSessionTest, CadenceIsExactUnderConcurrency) {
  // 8 threads x 125 calls = 1000 sampling decisions at N=4: exactly 250
  // must sample, however the threads interleave.
  ProfilerSession prof(/*sample_every=*/4);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 125;
  std::atomic<int64_t> sampled{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (prof.ShouldSample()) sampled.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sampled.load(), kThreads * kCallsPerThread / 4);
}

TEST(ProfilerSessionTest, OverridesAndDisabled) {
  ProfilerSession off(/*sample_every=*/0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(off.ShouldSample());
  // A positive per-Run override samples even on a disabled session.
  EXPECT_TRUE(off.ShouldSample(/*run_override=*/1));

  ProfilerSession every(/*sample_every=*/1);
  EXPECT_TRUE(every.ShouldSample());
  // A negative override disables this call without consuming a slot...
  EXPECT_FALSE(every.ShouldSample(/*run_override=*/-1));
  // ...so the cadence resumes exactly where it left off.
  EXPECT_TRUE(every.ShouldSample());
}

TEST(ProfilerSessionTest, ResolveSampleEvery) {
  // A non-zero option wins; negative means explicitly off.
  EXPECT_EQ(ProfilerSession::ResolveSampleEvery(7), 7);
  EXPECT_EQ(ProfilerSession::ResolveSampleEvery(-1), 0);
  // Option 0 defers to the environment.
  ::setenv("TFREPRO_PROFILE_EVERY", "13", 1);
  EXPECT_EQ(ProfilerSession::ResolveSampleEvery(0), 13);
  EXPECT_EQ(ProfilerSession::ResolveSampleEvery(3), 3);
  ::unsetenv("TFREPRO_PROFILE_EVERY");
  EXPECT_EQ(ProfilerSession::ResolveSampleEvery(0), 0);
}

TEST(ProfileStoreTest, AggregatesPerKey) {
  ProfileStore store;
  store.AddStepStats(MakeStep("matmul1", "MatMul", "/device:CPU:0", 100));
  store.AddStepStats(MakeStep("matmul1", "MatMul", "/device:CPU:0", 300));
  store.AddStepStats(MakeStep("add1", "Add", "/device:CPU:0", 10));

  EXPECT_EQ(store.steps(), 3);
  std::vector<ProfileEntry> entries = store.Entries();
  ASSERT_EQ(entries.size(), 2u);  // sorted by (op, node, device): Add first
  EXPECT_EQ(entries[0].op, "Add");
  EXPECT_EQ(entries[0].count, 1);
  EXPECT_EQ(entries[1].op, "MatMul");
  EXPECT_EQ(entries[1].count, 2);
  EXPECT_DOUBLE_EQ(entries[1].mean_micros(), 200.0);
  EXPECT_DOUBLE_EQ(entries[1].min_micros, 100.0);
  EXPECT_DOUBLE_EQ(entries[1].max_micros, 300.0);

  EXPECT_DOUBLE_EQ(store.NodeMeanMicros("matmul1"), 200.0);
  EXPECT_DOUBLE_EQ(store.OpMeanMicros("Add"), 10.0);
  EXPECT_LT(store.NodeMeanMicros("never_ran"), 0.0);
  EXPECT_GT(store.MeanNodeSeconds(), 0.0);
}

TEST(ProfileStoreTest, MergeIsOrderIndependent) {
  ProfileStore a;
  a.AddStepStats(MakeStep("n1", "Op", "/device:CPU:0", 50));
  a.AddStepStats(MakeStep("n2", "Op", "/device:CPU:0", 80));
  ProfileStore b;
  b.AddStepStats(MakeStep("n1", "Op", "/device:CPU:0", 150));
  b.AddStepStats(MakeStep("n3", "Op2", "/device:CPU:1", 7));

  ProfileStore ab;
  ab.MergeFrom(a);
  ab.MergeFrom(b);
  ProfileStore ba;
  ba.MergeFrom(b);
  ba.MergeFrom(a);

  EXPECT_EQ(ab.steps(), 4);
  EXPECT_EQ(ab.ToJson(), ba.ToJson());  // byte-identical either way
  EXPECT_DOUBLE_EQ(ab.NodeMeanMicros("n1"), 100.0);
}

TEST(ProfileStoreTest, WriteJsonIsAtomicAndParseable) {
  ProfileStore store;
  store.AddStepStats(MakeStep("n\"quoted\"", "Op", "/device:CPU:0", 42));
  const std::string path = ::testing::TempDir() + "/profile_test.json";
  TF_CHECK_OK(store.WriteJson(path));
  // The temp file was renamed away; the final file holds the JSON.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), store.ToJson());
  EXPECT_NE(content.str().find("\"steps\":1"), std::string::npos);
  EXPECT_NE(content.str().find("n\\\"quoted\\\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ProfilerSessionTest, SampledStepsFeedTheSessionStore) {
  Graph g;
  GraphBuilder b(&g);
  // A fed placeholder keeps the Mul from being constant-folded away, so a
  // real Mul kernel runs (and is profiled) every step.
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  Output y = ops::Mul(&b, x, Const(&b, 4.0f));
  ASSERT_TRUE(b.ok()) << b.status();

  SessionOptions options;
  options.profile_sample_every = 2;  // every other step
  auto session = DirectSession::Create(g, options);
  ASSERT_TRUE(session.ok()) << session.status();

  constexpr int kRuns = 10;
  for (int i = 0; i < kRuns; ++i) {
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({{"x", Tensor::Scalar(3.0f)}},
                                     {y.name()}, {}, &out));
    EXPECT_FLOAT_EQ(*out[0].data<float>(), 12.0f);
  }
  const ProfileStore* store = session.value()->profile_store();
  EXPECT_EQ(store->steps(), kRuns / 2);
  EXPECT_FALSE(store->Entries().empty());
  EXPECT_GE(store->OpMeanMicros("Mul"), 0.0);
}

TEST(ProfilerSessionTest, DisabledSamplingHasNoProfilingSideEffects) {
  Graph g;
  GraphBuilder b(&g);
  Output y = ops::Add(&b, Const(&b, 1.0f), Const(&b, 2.0f));
  ASSERT_TRUE(b.ok());

  auto session = DirectSession::Create(g);  // profile_sample_every = 0
  ASSERT_TRUE(session.ok());
  for (int i = 0; i < 20; ++i) {
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({y.name()}, &out));
  }
  // No step was traced, so the store never saw anything: the hot path took
  // the no-collector branch (no clock reads, no per-node allocation).
  EXPECT_EQ(session.value()->profile_store()->steps(), 0);
  EXPECT_TRUE(session.value()->profile_store()->Entries().empty());
}

TEST(ProfilerSessionTest, TracedStepOverheadIsBounded) {
  // Tracing every step must stay within a generous constant factor of the
  // untraced path (min-of-N to shake scheduler noise). This is a smoke
  // bound against quadratic blowups, not a microbenchmark.
  Graph g;
  GraphBuilder b(&g);
  Output x = Const(&b, Tensor::FromVector<float>(
                            std::vector<float>(64 * 64, 1.0f),
                            TensorShape({64, 64})));
  Output y = ops::MatMul(&b, x, x);
  ASSERT_TRUE(b.ok());

  auto plain = DirectSession::Create(g);
  ASSERT_TRUE(plain.ok());
  SessionOptions traced_options;
  traced_options.profile_sample_every = 1;
  auto traced = DirectSession::Create(g, traced_options);
  ASSERT_TRUE(traced.ok());

  auto min_step_micros = [&](DirectSession* sess) {
    int64_t best = INT64_MAX;
    for (int i = 0; i < 30; ++i) {
      std::vector<Tensor> out;
      auto start = std::chrono::steady_clock::now();
      TF_CHECK_OK(sess->Run({y.name()}, &out));
      int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
      if (us < best) best = us;
    }
    return best;
  };
  const int64_t plain_us = min_step_micros(plain.value().get());
  const int64_t traced_us = min_step_micros(traced.value().get());
  EXPECT_EQ(traced.value()->profile_store()->steps(), 30);
  EXPECT_LE(traced_us, plain_us * 20 + 5000) << "plain=" << plain_us;
}

TEST(ObservedCostPlacementTest, SkewedCostsChangeThePlacement) {
  // Six unconstrained single-node groups, one of which is measured ~1000x
  // more expensive. The arity heuristic (all weights equal) round-robins
  // 3/3 across two devices; the observed-cost mode isolates the heavy node
  // and packs the five cheap ones onto the other device.
  auto build = [](Graph* g) {
    GraphBuilder b(g);
    for (int i = 0; i < 6; ++i) {
      Const(&b, Tensor::Scalar(float(i)), "n" + std::to_string(i));
    }
    ASSERT_TRUE(b.ok()) << b.status();
  };

  ThreadPool pool("placer_test", 1);
  auto d0 = NewCpuDevice("localhost", 0, 0, &pool);
  auto d1 = NewCpuDevice("localhost", 0, 1, &pool);
  std::vector<Device*> devices = {d0.get(), d1.get()};

  ProfileStore store;
  for (int i = 0; i < 6; ++i) {
    const int64_t micros = i == 0 ? 1000 : 1;
    store.AddStepStats(
        MakeStep("n" + std::to_string(i), "Const", d0->name(), micros));
  }

  Graph arity_graph;
  build(&arity_graph);
  PlacerOptions arity;
  arity.balance = PlacerOptions::Balance::kArity;
  TF_CHECK_OK(PlaceGraph(&arity_graph, devices, arity));

  Graph observed_graph;
  build(&observed_graph);
  PlacerOptions observed;
  observed.balance = PlacerOptions::Balance::kObservedCost;
  observed.node_cost = store.CostFunction();
  TF_CHECK_OK(PlaceGraph(&observed_graph, devices, observed));

  auto device_of = [](const Graph& g, const std::string& name) {
    const Node* n = g.FindNode(name);
    EXPECT_NE(n, nullptr) << name;
    return n != nullptr ? n->assigned_device() : std::string();
  };

  // Observed mode: the heavy node sits alone, everything else goes to the
  // other device.
  const std::string heavy_dev = device_of(observed_graph, "n0");
  int with_heavy = 0;
  for (int i = 1; i < 6; ++i) {
    if (device_of(observed_graph, "n" + std::to_string(i)) == heavy_dev) {
      ++with_heavy;
    }
  }
  EXPECT_EQ(with_heavy, 0);

  // Arity mode splits 3/3 — so the two placements measurably differ.
  int arity_on_heavy_dev = 0;
  bool differs = false;
  for (int i = 0; i < 6; ++i) {
    const std::string name = "n" + std::to_string(i);
    if (device_of(arity_graph, name) == heavy_dev) ++arity_on_heavy_dev;
    if (device_of(arity_graph, name) != device_of(observed_graph, name)) {
      differs = true;
    }
  }
  EXPECT_EQ(arity_on_heavy_dev, 3);
  EXPECT_TRUE(differs);
}

TEST(ObservedCostPlacementTest, ConstraintsStillWin) {
  // A user device constraint beats any balancing mode; the observed-cost
  // balancer only spreads the unconstrained remainder.
  Graph g;
  GraphBuilder b(&g);
  Output pinned = Const(&b, 1.0f);
  pinned.node->set_requested_device("/device:CPU:1");
  Const(&b, Tensor::Scalar(2.0f), "free");
  ASSERT_TRUE(b.ok());

  ThreadPool pool("placer_test", 1);
  auto d0 = NewCpuDevice("localhost", 0, 0, &pool);
  auto d1 = NewCpuDevice("localhost", 0, 1, &pool);

  PlacerOptions options;
  options.balance = PlacerOptions::Balance::kObservedCost;
  options.node_cost = [](const Node&) { return 100.0; };
  TF_CHECK_OK(PlaceGraph(&g, {d0.get(), d1.get()}, options));
  EXPECT_EQ(pinned.node->assigned_device(), d1->name());
  // The pinned group pre-charged CPU:1, so the free node lands on CPU:0.
  EXPECT_EQ(g.FindNode("free")->assigned_device(), d0->name());
}

TEST(StepStatsTest, WireRoundTripPreservesEverything) {
  StepStats stats;
  stats.step_id = 42;
  NodeExecStats n;
  n.node_name = "mm";
  n.op = "MatMul";
  n.device = "/job:worker/task:1/device:CPU:0";
  n.scheduled_micros = 10;
  n.start_micros = 20;
  n.end_micros = 35;
  stats.nodes.push_back(n);
  TransferStats t;
  t.kind = TransferStats::Kind::kRecv;
  t.tensor_name = "mm:0";
  t.send_device = "/job:ps/task:0/device:CPU:0";
  t.recv_device = n.device;
  t.bytes = 128;
  t.recv_start_micros = 21;
  t.recv_end_micros = 30;
  stats.transfers.push_back(t);
  InstantEvent ev;
  ev.name = "fault";
  ev.scope = "/job:worker/task:1";
  ev.micros = 25;
  ev.args["kind"] = "injected";
  stats.instants.push_back(ev);
  SpanEvent span;
  span.name = "queue.wait";
  span.scope = "/job:worker/task:1";
  span.start_micros = 5;
  span.end_micros = 9;
  stats.spans.push_back(span);

  std::string bytes;
  stats.AppendToBytes(&bytes);
  StepStats parsed;
  size_t pos = 0;
  ASSERT_TRUE(StepStats::ParseFromBytes(bytes, &pos, &parsed));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(parsed.step_id, 42);
  ASSERT_EQ(parsed.nodes.size(), 1u);
  EXPECT_EQ(parsed.nodes[0].node_name, "mm");
  EXPECT_EQ(parsed.nodes[0].end_micros, 35);
  ASSERT_EQ(parsed.transfers.size(), 1u);
  EXPECT_EQ(parsed.transfers[0].kind, TransferStats::Kind::kRecv);
  EXPECT_EQ(parsed.transfers[0].bytes, 128);
  ASSERT_EQ(parsed.instants.size(), 1u);
  EXPECT_EQ(parsed.instants[0].args.at("kind"), "injected");
  ASSERT_EQ(parsed.spans.size(), 1u);
  EXPECT_EQ(parsed.spans[0].end_micros, 9);

  // Truncated payloads fail cleanly instead of reading out of bounds.
  for (size_t cut : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    StepStats junk;
    size_t p = 0;
    EXPECT_FALSE(
        StepStats::ParseFromBytes(bytes.substr(0, cut), &p, &junk));
  }

  // ShiftTimes moves recorded timestamps but leaves zeros ("unrecorded")
  // alone — e.g. the Recv transfer's send_micros.
  parsed.ShiftTimes(100);
  EXPECT_EQ(parsed.nodes[0].start_micros, 120);
  EXPECT_EQ(parsed.transfers[0].send_micros, 0);
  EXPECT_EQ(parsed.transfers[0].recv_start_micros, 121);
}

}  // namespace
}  // namespace tfrepro
