// Differential graph-fuzzing harness for the optimizer tier (DESIGN.md
// §13): each seed builds a random DAG of element-wise / matmul / const /
// variable ops — with diamonds, shared subexpressions, control edges, ref
// reads, feeds and fetches, plus a real gradient-descent training step —
// and runs it through two DirectSessions over the SAME graph, one with the
// optimizer tier enabled and one with it disabled. Every fetched tensor,
// every per-step loss, and the post-training variable states must agree
// bit-for-bit: optimization is only legal if it is invisible.
//
// 20 seeds run in ctest; scripts/check.sh re-runs seeds 0-4 under TSan.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "autodiff/gradients.h"
#include "graph/graph.h"
#include "graph/ops.h"
#include "runtime/session.h"
#include "train/optimizer.h"

namespace tfrepro {
namespace {

using ops::Const;

constexpr int kSteps = 3;
constexpr int64_t kRows = 2;
constexpr int64_t kCols = 3;

std::string TensorBytes(const Tensor& t) {
  std::string s;
  t.AppendToBytes(&s);
  return s;
}

// Value kinds tracked by the generator so random operand picks stay
// shape-compatible (binary ops may mix a kind with a scalar).
enum Kind { kScalar = 0, kMat = 1, kMat33 = 2 };

struct Val {
  Output out;
  Kind kind;
};

struct FuzzGraph {
  Graph graph;
  std::vector<std::string> fetches;  // post-step eval fetches (incl. vars)
  std::string loss_name;
  std::string train_target;
  std::string init_target;
};

Tensor RandMat(std::mt19937* rng, int64_t rows, int64_t cols) {
  std::uniform_real_distribution<float> dist(-1.5f, 1.5f);
  std::vector<float> v(rows * cols);
  for (float& x : v) x = dist(*rng);
  return Tensor::FromVector<float>(v, TensorShape({rows, cols}));
}

Tensor RandScalar(std::mt19937* rng) {
  std::uniform_real_distribution<float> dist(-1.5f, 1.5f);
  return Tensor::Scalar(dist(*rng));
}

// Every op used on a gradient path must have a registered gradient; keep
// the pool tame (no Exp/Log/Div) so three SGD steps stay finite.
const char* const kUnaryOps[] = {"Neg", "Tanh", "Sigmoid", "Square",
                                 "Abs",  "Relu"};
const char* const kBinaryOps[] = {"Add",     "Sub",     "Mul",
                                  "Maximum", "Minimum", "SquaredDifference"};

void BuildFuzzGraph(uint32_t seed, FuzzGraph* fg) {
  std::mt19937 rng(seed * 2654435761u + 17);
  GraphBuilder b(&fg->graph);
  auto flip = [&](double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng) < p;
  };
  auto pick = [&](int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng);
  };

  std::vector<Val> pool;

  // Feeds.
  pool.push_back(
      {ops::Placeholder(&b, DataType::kFloat, TensorShape({kRows, kCols}),
                        "px"),
       kMat});
  pool.push_back(
      {ops::Placeholder(&b, DataType::kFloat, TensorShape(), "ps"), kScalar});

  // Consts — including a pair agreeing on their first four elements but
  // not the rest (the CSE signature-truncation regression surface).
  pool.push_back({Const(&b, RandMat(&rng, kRows, kCols)), kMat});
  pool.push_back(
      {Const(&b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6},
                                           TensorShape({kRows, kCols}))),
       kMat});
  pool.push_back(
      {Const(&b, Tensor::FromVector<float>({1, 2, 3, 4, 5, 6.5f},
                                           TensorShape({kRows, kCols}))),
       kMat});
  pool.push_back({Const(&b, RandScalar(&rng)), kScalar});
  pool.push_back({Const(&b, 0.5f), kScalar});

  // Variables (trained below). This runtime has relaxed read consistency
  // (state_ops.cc): Identity FORWARDS the variable's buffer, and applies
  // mutate it in place. The pool may read variables freely because pool
  // nodes are only fetched in a quiescent (no-target) Run; the loss is
  // built separately below so the training step stays race-free.
  // Variables are pinned to device 0, the way real clients pin parameters
  // to a PS task (§4.1): balanced placement re-balances each pruned Run
  // signature independently, and a stateful kernel that hops devices
  // between Runs would leave its state behind.
  Output w, u, init_w, init_u;
  {
    GraphBuilder::DeviceScope dev(&b, "/device:CPU:0");
    w = ops::Variable(&b, DataType::kFloat, TensorShape({kRows, kCols}), "w");
    u = ops::Variable(&b, DataType::kFloat, TensorShape({kRows, kCols}), "u");
    init_w = ops::Assign(&b, w, Const(&b, RandMat(&rng, kRows, kCols)));
    init_u = ops::Assign(&b, u, Const(&b, RandMat(&rng, kRows, kCols)));
  }
  Node* init = ops::Group(&b, {init_w, init_u}, "init");
  fg->init_target = init->name();
  Output wr = ops::Identity(&b, w);
  Output ur = ops::Identity(&b, u);
  pool.push_back({wr, kMat});
  pool.push_back({ur, kMat});
  pool.push_back({w, kMat});  // raw ref: fusion must refuse its readers

  // Random op soup. Recipes are remembered so a later draw can duplicate
  // one exactly (shared subexpressions for CSE to find).
  struct Recipe {
    int arity;
    std::string op;
    Output a, c;
    Kind kind;
  };
  std::vector<Recipe> recipes;
  const int num_ops = 12 + pick(14);
  for (int i = 0; i < num_ops; ++i) {
    const int roll = pick(100);
    Output made;
    Kind kind = kMat;
    if (roll < 55 || recipes.empty()) {
      // Binary element-wise: operands share a kind unless one is scalar.
      const Val& a = pool[pick(static_cast<int>(pool.size()))];
      std::vector<int> compatible;
      for (size_t j = 0; j < pool.size(); ++j) {
        if (pool[j].kind == a.kind || pool[j].kind == kScalar ||
            a.kind == kScalar) {
          compatible.push_back(static_cast<int>(j));
        }
      }
      const Val& c = pool[compatible[pick(static_cast<int>(
          compatible.size()))]];
      const char* op = kBinaryOps[pick(6)];
      made = b.Op(op)
                 .Input(a.out)
                 .Input(c.out)
                 .Attr("T", DataType::kFloat)
                 .Finalize();
      kind = a.kind == kScalar ? c.kind : a.kind;
      recipes.push_back({2, op, a.out, c.out, kind});
    } else if (roll < 75) {
      const Val& a = pool[pick(static_cast<int>(pool.size()))];
      const char* op = kUnaryOps[pick(6)];
      made = b.Op(op).Input(a.out).Attr("T", DataType::kFloat).Finalize();
      kind = a.kind;
      recipes.push_back({1, op, a.out, Output(), kind});
    } else if (roll < 83) {
      // MatMul: [2,3]^T x [2,3] -> [3,3], or [2,3] x [3,3] -> [2,3].
      std::vector<int> mats, mat33s;
      for (size_t j = 0; j < pool.size(); ++j) {
        if (pool[j].kind == kMat) mats.push_back(static_cast<int>(j));
        if (pool[j].kind == kMat33) mat33s.push_back(static_cast<int>(j));
      }
      if (!mat33s.empty() && flip(0.5)) {
        made = ops::MatMul(&b, pool[mats[pick((int)mats.size())]].out,
                           pool[mat33s[pick((int)mat33s.size())]].out);
        kind = kMat;
      } else {
        made = ops::MatMul(&b, pool[mats[pick((int)mats.size())]].out,
                           pool[mats[pick((int)mats.size())]].out,
                           /*transpose_a=*/true);
        kind = kMat33;
      }
    } else {
      // Duplicate an earlier recipe verbatim: a shared subexpression.
      const Recipe& r = recipes[pick(static_cast<int>(recipes.size()))];
      NodeBuilder nb = b.Op(r.op);
      nb.Input(r.a);
      if (r.arity == 2) nb.Input(r.c);
      made = nb.Attr("T", DataType::kFloat).Finalize();
      kind = r.kind;
    }
    ASSERT_TRUE(b.ok()) << "seed " << seed << ": " << b.status();
    // Sprinkle control edges (always earlier -> later, so acyclic). Never
    // hang one off a Placeholder: a control edge keeps the node alive even
    // when its value is fed, and executing an unfed Placeholder is an
    // error by design.
    if (flip(0.15)) {
      const Val& dep = pool[pick(static_cast<int>(pool.size()))];
      if (dep.out.node != made.node &&
          dep.out.node->op() != "Placeholder") {
        fg->graph.AddControlEdge(dep.out.node, made.node);
      }
    }
    pool.push_back({made, kind});
  }

  // Training subgraph, built separately from the pool. Because applies
  // mutate variable buffers in place and Identity merely aliases them, a
  // gradient that re-reads a variable-aliased operand (MulGrad reads both
  // inputs, say) would race the other variable's apply — nondeterminism in
  // BOTH sessions, nothing to do with the optimizer. So variables enter
  // the loss only through Add/Sub, whose gradients never read their
  // operands; every downstream op (and its gradient) sees freshly
  // allocated intermediates or immutable consts/feeds, which makes the
  // whole train step totally ordered and the loss trajectory exact.
  std::vector<Output> safe;
  safe.push_back(ops::Add(&b, wr, ur));
  safe.push_back(ops::Sub(&b, wr, Const(&b, RandMat(&rng, kRows, kCols))));
  safe.push_back(ops::Add(&b, ur, Const(&b, 0.25f)));
  const int num_loss_ops = 3 + pick(6);
  for (int i = 0; i < num_loss_ops; ++i) {
    Output made;
    if (flip(0.4)) {
      made = b.Op(kUnaryOps[pick(6)])
                 .Input(safe[pick(static_cast<int>(safe.size()))])
                 .Attr("T", DataType::kFloat)
                 .Finalize();
    } else {
      Output rhs = flip(0.3) ? pool[0].out  // the px feed (immutable)
                             : safe[pick(static_cast<int>(safe.size()))];
      made = b.Op(kBinaryOps[pick(6)])
                 .Input(safe[pick(static_cast<int>(safe.size()))])
                 .Input(rhs)
                 .Attr("T", DataType::kFloat)
                 .Finalize();
    }
    safe.push_back(made);
  }
  ASSERT_TRUE(b.ok()) << "seed " << seed << ": " << b.status();
  Output mix = ops::Add(&b, safe[0], safe.back());
  Output loss = ops::MeanAll(&b, ops::Square(&b, mix));
  fg->loss_name = loss.name();
  train::GradientDescentOptimizer sgd(0.05f);
  Result<Node*> train = sgd.Minimize(&b, loss, {w, u});
  ASSERT_TRUE(train.ok()) << "seed " << seed << ": " << train.status();
  fg->train_target = train.value()->name();
  ASSERT_TRUE(b.ok()) << "seed " << seed << ": " << b.status();

  // Post-step eval fetches: a few random intermediates plus both
  // variables' states.
  std::set<std::string> fetch_set;
  for (int i = 0; i < 3; ++i) {
    fetch_set.insert(pool[pick(static_cast<int>(pool.size()))].out.name());
  }
  fg->fetches.assign(fetch_set.begin(), fetch_set.end());
  // An int32 const side-expression: constant folding must agree with
  // real execution across dtypes, not just float.
  Output i32 = ops::Add(&b, Const(&b, static_cast<int32_t>(7)),
                        Const(&b, static_cast<int32_t>(pick(100))));
  fg->fetches.push_back(i32.name());
  // Raw ref reads, fetched only in the quiescent (no-target) Run: the
  // fusion pass must refuse to absorb them, and their execution must still
  // be bit-exact. Kept off the loss path (see the variable comment above).
  Output ref_chain =
      ops::Square(&b, ops::Mul(&b, w, Const(&b, 0.75f)));
  fg->fetches.push_back(ref_chain.name());
  fg->fetches.push_back(ops::Maximum(&b, u, ops::Neg(&b, ur)).name());
  fg->fetches.push_back("w");
  fg->fetches.push_back("u");
}

// Runs init + kSteps of (train step fetching loss, then a quiescent eval
// of all fetches) and returns every fetched tensor serialized. `enable`
// flips the optimizer tier; everything else is identical.
std::vector<std::string> RunTrajectory(
    const FuzzGraph& fg,
    const std::vector<std::vector<std::pair<std::string, Tensor>>>& feeds,
    bool enable, int num_devices) {
  SessionOptions options;
  options.optimizer.enable = enable;
  options.num_devices = num_devices;
  if (num_devices > 1) {
    options.placer.balance = PlacerOptions::Balance::kArity;
  }
  auto session = DirectSession::Create(fg.graph, options);
  EXPECT_TRUE(session.ok()) << session.status();
  if (!session.ok()) return {};

  std::vector<std::string> trajectory;
  std::vector<Tensor> out;
  Status s = session.value()->Run({}, {}, {fg.init_target}, &out);
  EXPECT_TRUE(s.ok()) << s;
  if (!s.ok()) return {};
  for (int step = 0; step < kSteps; ++step) {
    s = session.value()->Run(feeds[step], {fg.loss_name}, {fg.train_target},
                             &out);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok()) return {};
    trajectory.push_back(TensorBytes(out[0]));
    s = session.value()->Run(feeds[step], fg.fetches, {}, &out);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok()) return {};
    for (const Tensor& t : out) trajectory.push_back(TensorBytes(t));
  }
  return trajectory;
}

void RunSeed(uint32_t seed) {
  FuzzGraph fg;
  BuildFuzzGraph(seed, &fg);
  if (std::getenv("FUZZ_DUMP") != nullptr) {
    for (Node* n : fg.graph.nodes()) {
      printf("%s = %s(", n->name().c_str(), n->op().c_str());
      for (const Edge* e : n->ordered_data_inputs()) {
        printf("%s:%d,", e->src->name().c_str(), e->src_output);
      }
      printf(")\n");
    }
  }
  if (::testing::Test::HasFatalFailure()) return;

  std::mt19937 feed_rng(seed * 40503u + 7);
  std::vector<std::vector<std::pair<std::string, Tensor>>> feeds(kSteps);
  for (int step = 0; step < kSteps; ++step) {
    feeds[step] = {{"px", RandMat(&feed_rng, kRows, kCols)},
                   {"ps", RandScalar(&feed_rng)}};
  }

  // Every third seed runs on two devices with spreading placement, so
  // chains cross device boundaries and Send/Recv pairs appear.
  const int num_devices = (seed % 3 == 1) ? 2 : 1;

  std::vector<std::string> optimized =
      RunTrajectory(fg, feeds, /*enable=*/true, num_devices);
  std::vector<std::string> baseline =
      RunTrajectory(fg, feeds, /*enable=*/false, num_devices);
  ASSERT_EQ(optimized.size(), baseline.size()) << "seed " << seed;
  ASSERT_FALSE(optimized.empty()) << "seed " << seed;
  for (size_t i = 0; i < optimized.size(); ++i) {
    EXPECT_EQ(optimized[i], baseline[i])
        << "seed " << seed << ": fetched tensor " << i
        << " differs between optimized and unoptimized execution";
  }
}

#define FUZZ_SEED_TEST(n) \
  TEST(OptimizerFuzzTest, Seed##n) { RunSeed(n); }

FUZZ_SEED_TEST(0)
FUZZ_SEED_TEST(1)
FUZZ_SEED_TEST(2)
FUZZ_SEED_TEST(3)
FUZZ_SEED_TEST(4)
FUZZ_SEED_TEST(5)
FUZZ_SEED_TEST(6)
FUZZ_SEED_TEST(7)
FUZZ_SEED_TEST(8)
FUZZ_SEED_TEST(9)
FUZZ_SEED_TEST(10)
FUZZ_SEED_TEST(11)
FUZZ_SEED_TEST(12)
FUZZ_SEED_TEST(13)
FUZZ_SEED_TEST(14)
FUZZ_SEED_TEST(15)
FUZZ_SEED_TEST(16)
FUZZ_SEED_TEST(17)
FUZZ_SEED_TEST(18)
FUZZ_SEED_TEST(19)

}  // namespace
}  // namespace tfrepro
