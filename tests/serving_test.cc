// Serving subsystem tests: FreezeGraph round-trips a trained checkpoint
// into an identical-output inference graph; the DynamicBatcher forms
// batches, honors its timeout, applies admission control, and records
// metrics + queue-wait spans; and a ModelManager hot-swap under sustained
// concurrent load loses zero requests and answers every request with
// exactly one version's output.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "graph/ops.h"
#include "runtime/session.h"
#include "runtime/tracing.h"
#include "serving/batcher.h"
#include "serving/freeze.h"
#include "serving/model_manager.h"
#include "serving/servable.h"
#include "train/saver.h"

namespace tfrepro {
namespace {

using ops::Const;
using serving::DynamicBatcher;
using serving::FreezeGraph;
using serving::ModelManager;
using serving::Servable;
using serving::SignatureDef;

int64_t CounterValue(const metrics::RegistrySnapshot& snap,
                     const std::string& name) {
  const metrics::MetricSnapshot* m = snap.Find(name);
  return m == nullptr ? 0 : m->value;
}

// A variable-free "model" that maps any [n, 4] input to [n, 4] rows of
// `value`: BiasAdd(MatMul(x, 0), value). Constant output makes version
// attribution in the hot-swap test unambiguous.
std::shared_ptr<const Servable> MakeValueServable(float value,
                                                  int64_t version) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({1, 4}), "x");
  Output w = Const(&b, Tensor(DataType::kFloat, TensorShape({4, 4})), "w");
  Output bias =
      Const(&b, Tensor::Vec<float>({value, value, value, value}), "bias");
  Output pred = ops::BiasAdd(&b, ops::MatMul(&b, x, w), bias);
  EXPECT_TRUE(b.ok()) << b.status();
  auto servable =
      Servable::Create(g, SignatureDef{"x", {pred.name()}}, version);
  EXPECT_TRUE(servable.ok()) << servable.status();
  return servable.value();
}

TEST(FreezeTest, RoundTripMatchesTrainedSession) {
  // Train-shaped graph: two Dense-style layers on Variables, plus training
  // machinery (init assigns, a saver, an update op) that freezing must
  // strip.
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({1, 4}), "x");
  Output w1 = ops::Variable(&b, DataType::kFloat, TensorShape({4, 3}), "w1");
  Output b1 = ops::Variable(&b, DataType::kFloat, TensorShape({3}), "b1");
  Output init = Output(
      ops::Group(
          &b,
          {ops::Assign(&b, w1,
                       Const(&b, Tensor::FromVector<float>(
                                     {1, -2, 3, 0.5f, 4, -1, 2, 2, -3, 1, 0,
                                      7},
                                     TensorShape({4, 3})))),
           ops::Assign(&b, b1, Const(&b, Tensor::Vec<float>({0.1f, -0.2f,
                                                             0.3f})))},
          "init"),
      0);
  Output pred = ops::Relu(&b, ops::BiasAdd(&b, ops::MatMul(&b, x, w1), b1));
  Output probs = ops::Softmax(&b, pred);
  // Training-only mutation that must not survive freezing.
  ops::AssignAdd(&b, b1, Const(&b, Tensor::Vec<float>({1, 1, 1})));
  train::Saver saver(&b, {w1, b1});
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = DirectSession::Create(g);
  ASSERT_TRUE(session.ok()) << session.status();
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  std::string prefix = ::testing::TempDir() + "/freeze_roundtrip_ckpt";
  Result<std::string> ckpt = saver.Save(session.value().get(), prefix, 1);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();

  Result<std::unique_ptr<Graph>> frozen =
      FreezeGraph(g, {ckpt.value()}, {probs.name()});
  ASSERT_TRUE(frozen.ok()) << frozen.status();

  // No variables, no assigns, no save/restore machinery survive.
  for (const Node* node : frozen.value()->nodes()) {
    EXPECT_FALSE(node->IsVariable()) << node->name();
    EXPECT_NE(node->op(), "Assign") << node->name();
    EXPECT_NE(node->op(), "AssignAdd") << node->name();
    EXPECT_NE(node->op(), "Save") << node->name();
  }
  EXPECT_LT(frozen.value()->num_nodes(), g.num_nodes());

  // Identical outputs, including at a batch size the placeholder never
  // declared (serving feeds replace the placeholder at run time).
  Tensor batch = Tensor::FromVector<float>(
      {0.5f, -1, 2, 3, 1, 1, 1, 1}, TensorShape({2, 4}));
  std::vector<Tensor> want, got;
  TF_CHECK_OK(session.value()->Run({{"x", batch}}, {probs.name()}, {}, &want));
  auto frozen_session = DirectSession::Create(*frozen.value());
  ASSERT_TRUE(frozen_session.ok()) << frozen_session.status();
  TF_CHECK_OK(
      frozen_session.value()->Run({{"x", batch}}, {probs.name()}, {}, &got));
  ASSERT_EQ(want[0].shape(), got[0].shape());
  for (int64_t i = 0; i < want[0].num_elements(); ++i) {
    EXPECT_FLOAT_EQ(want[0].flat<float>(i), got[0].flat<float>(i)) << i;
  }
}

TEST(FreezeTest, MissingVariableInCheckpointIsNotFound) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({1, 2}), "x");
  Output w = ops::Variable(&b, DataType::kFloat, TensorShape({2, 2}), "w");
  Output extra = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "u");
  Output init = Output(
      ops::Group(&b,
                 {ops::Assign(&b, w, Const(&b, Tensor::FromVector<float>(
                                               {1, 0, 0, 1},
                                               TensorShape({2, 2})))),
                  ops::Assign(&b, extra,
                              Const(&b, Tensor::Vec<float>({1, 1})))},
                 "init"),
      0);
  Output pred = ops::BiasAdd(&b, ops::MatMul(&b, x, w), extra);
  // Checkpoint covers only `w`; `u` is live under `pred` but unsaved.
  train::Saver saver(&b, {w});
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  std::string prefix = ::testing::TempDir() + "/freeze_missing_ckpt";
  Result<std::string> ckpt = saver.Save(session.value().get(), prefix, 1);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();

  Result<std::unique_ptr<Graph>> frozen =
      FreezeGraph(g, {ckpt.value()}, {pred.name()});
  ASSERT_FALSE(frozen.ok());
  EXPECT_EQ(frozen.status().code(), Code::kNotFound)
      << frozen.status();
}

TEST(FreezeTest, RefConsumingFetchIsFailedPrecondition) {
  Graph g;
  GraphBuilder b(&g);
  Output v = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "v");
  Output assign = ops::Assign(&b, v, Const(&b, Tensor::Vec<float>({1, 2})));
  train::Saver saver(&b, {v});
  ASSERT_TRUE(b.ok()) << b.status();
  auto session = DirectSession::Create(g);
  TF_CHECK_OK(session.value()->Run({}, {}, {assign.node->name()}, nullptr));
  std::string prefix = ::testing::TempDir() + "/freeze_ref_ckpt";
  Result<std::string> ckpt = saver.Save(session.value().get(), prefix, 1);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();

  // Fetching the Assign keeps a ref-consumer alive past pruning.
  Result<std::unique_ptr<Graph>> frozen =
      FreezeGraph(g, {ckpt.value()}, {assign.name()});
  ASSERT_FALSE(frozen.ok());
  EXPECT_EQ(frozen.status().code(), Code::kFailedPrecondition)
      << frozen.status();
}

TEST(ServableTest, RejectsUnfrozenGraph) {
  Graph g;
  GraphBuilder b(&g);
  Output x = ops::Placeholder(&b, DataType::kFloat, TensorShape({1, 2}), "x");
  Output w = ops::Variable(&b, DataType::kFloat, TensorShape({2, 2}), "w");
  Output pred = ops::MatMul(&b, x, w);
  ASSERT_TRUE(b.ok()) << b.status();
  auto servable = Servable::Create(g, SignatureDef{"x", {pred.name()}}, 1);
  ASSERT_FALSE(servable.ok());
  EXPECT_EQ(servable.status().code(), Code::kFailedPrecondition);
}

TEST(ModelManagerTest, PublishSwapAndUnpublish) {
  ModelManager manager;
  EXPECT_EQ(manager.Current("m"), nullptr);

  auto v1 = MakeValueServable(1.0f, 1);
  auto v2 = MakeValueServable(2.0f, 2);
  TF_CHECK_OK(manager.Publish("m", v1));
  EXPECT_EQ(manager.Current("m")->version(), 1);
  TF_CHECK_OK(manager.Publish("m", v2));
  EXPECT_EQ(manager.Current("m")->version(), 2);

  // Old version stays pinnable until unpublished; duplicate publish fails.
  EXPECT_EQ(manager.Version("m", 1)->version(), 1);
  EXPECT_EQ(manager.Publish("m", MakeValueServable(9.0f, 2)).code(),
            Code::kAlreadyExists);
  EXPECT_EQ(manager.Unpublish("m", 2).code(),
            Code::kFailedPrecondition);
  TF_CHECK_OK(manager.Unpublish("m", 1));
  EXPECT_EQ(manager.Version("m", 1), nullptr);
  EXPECT_EQ(manager.Versions("m"), std::vector<int64_t>({2}));
}

TEST(DynamicBatcherTest, CoalescesConcurrentRequestsIntoOneBatch) {
  auto servable = MakeValueServable(3.0f, 1);
  DynamicBatcher::Options options;
  options.max_batch_size = 8;
  options.batch_timeout_us = 200 * 1000;  // long: dispatch on a full batch
  DynamicBatcher batcher([&] { return servable; }, options);

  metrics::RegistrySnapshot before = metrics::Registry::Global()->Snapshot();
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&batcher, &ok_count] {
      DynamicBatcher::Response r =
          batcher.RunOne(Tensor::Vec<float>({1, 2, 3, 4}));
      ASSERT_TRUE(r.status.ok()) << r.status;
      ASSERT_EQ(r.outputs.size(), 1u);
      EXPECT_EQ(r.outputs[0].shape(), TensorShape({4}));
      for (int j = 0; j < 4; ++j) {
        EXPECT_FLOAT_EQ(r.outputs[0].flat<float>(j), 3.0f);
      }
      EXPECT_EQ(r.version, 1);
      ok_count.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), 8);

  metrics::RegistrySnapshot after = metrics::Registry::Global()->Snapshot();
  EXPECT_EQ(CounterValue(after, "serving.requests") -
                CounterValue(before, "serving.requests"),
            8);
  // 8 requests with an effectively-infinite timeout coalesce into far fewer
  // than 8 batches (at most 8 even under the most adversarial interleaving;
  // typically 1–2).
  const int64_t batches = CounterValue(after, "serving.batches") -
                          CounterValue(before, "serving.batches");
  EXPECT_GE(batches, 1);
  EXPECT_LE(batches, 4);
}

TEST(DynamicBatcherTest, TimeoutDispatchesPartialBatch) {
  auto servable = MakeValueServable(1.0f, 1);
  DynamicBatcher::Options options;
  options.max_batch_size = 64;  // never fills
  options.batch_timeout_us = 1000;
  DynamicBatcher batcher([&] { return servable; }, options);

  DynamicBatcher::Response r =
      batcher.RunOne(Tensor::Vec<float>({0, 0, 0, 0}));
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.outputs[0].shape(), TensorShape({4}));
}

TEST(DynamicBatcherTest, BackpressureRejectsWhenQueueFull) {
  auto servable = MakeValueServable(1.0f, 1);
  DynamicBatcher::Options options;
  options.max_batch_size = 64;
  options.batch_timeout_us = 2 * 1000 * 1000;  // park the batch thread
  options.max_enqueued = 2;
  auto batcher = std::make_unique<DynamicBatcher>(
      [&] { return servable; }, options);

  metrics::RegistrySnapshot before = metrics::Registry::Global()->Snapshot();
  std::atomic<int> cancelled{0};
  auto on_done = [&cancelled](DynamicBatcher::Response r) {
    if (r.status.code() == Code::kCancelled) cancelled.fetch_add(1);
  };
  TF_CHECK_OK(batcher->Enqueue(Tensor::Vec<float>({0, 0, 0, 0}), on_done));
  TF_CHECK_OK(batcher->Enqueue(Tensor::Vec<float>({0, 0, 0, 0}), on_done));
  // Wait out the race with the batch thread: once it picks up the first
  // request it parks on the 2s deadline with both requests still queued.
  while (batcher->queue_depth() < 2) {
    std::this_thread::yield();
  }
  Status overflow =
      batcher->Enqueue(Tensor::Vec<float>({0, 0, 0, 0}), on_done);
  EXPECT_EQ(overflow.code(), Code::kUnavailable) << overflow;

  metrics::RegistrySnapshot after = metrics::Registry::Global()->Snapshot();
  EXPECT_EQ(CounterValue(after, "serving.rejected") -
                CounterValue(before, "serving.rejected"),
            1);

  // Shutdown fails the queued-but-undispatched requests with Cancelled.
  batcher->Shutdown();
  EXPECT_EQ(cancelled.load(), 2);
}

TEST(DynamicBatcherTest, RecordsQueueWaitSpans) {
  auto servable = MakeValueServable(1.0f, 1);
  DynamicBatcher::Options options;
  options.batch_timeout_us = 1000;
  DynamicBatcher batcher([&] { return servable; }, options);

  TraceCollector collector(/*capture_global_events=*/true);
  DynamicBatcher::Response r =
      batcher.RunOne(Tensor::Vec<float>({0, 0, 0, 0}));
  ASSERT_TRUE(r.status.ok()) << r.status;

  StepStats stats = collector.Consume(1);
  bool found = false;
  for (const SpanEvent& span : stats.spans) {
    if (span.name == "serving.queue_wait") {
      found = true;
      EXPECT_EQ(span.scope, "serving");
      EXPECT_GE(span.end_micros, span.start_micros);
    }
  }
  EXPECT_TRUE(found) << "no serving.queue_wait span recorded";
}

TEST(DynamicBatcherTest, NoServablePublishedFailsRequests) {
  DynamicBatcher batcher([] { return nullptr; }, DynamicBatcher::Options{});
  DynamicBatcher::Response r =
      batcher.RunOne(Tensor::Vec<float>({0, 0, 0, 0}));
  EXPECT_EQ(r.status.code(), Code::kFailedPrecondition) << r.status;
  EXPECT_EQ(r.version, -1);
}

TEST(DynamicBatcherTest, MismatchedShapeGetsIndividualError) {
  auto servable = MakeValueServable(1.0f, 1);
  DynamicBatcher::Options options;
  options.max_batch_size = 2;
  options.batch_timeout_us = 100 * 1000;
  DynamicBatcher batcher([&] { return servable; }, options);

  // Two concurrent requests with different shapes fill one batch; the
  // mismatching one fails alone, the head-compatible one is served.
  std::atomic<int> ok{0}, invalid{0};
  std::vector<std::thread> clients;
  clients.emplace_back([&] {
    DynamicBatcher::Response r =
        batcher.RunOne(Tensor::Vec<float>({0, 0, 0, 0}));
    if (r.status.ok()) ok.fetch_add(1);
  });
  clients.emplace_back([&] {
    DynamicBatcher::Response r = batcher.RunOne(Tensor::Vec<float>({0, 0}));
    if (r.status.ok()) {
      ok.fetch_add(1);
    } else if (r.status.code() == Code::kInvalidArgument) {
      invalid.fetch_add(1);
    }
  });
  for (std::thread& t : clients) t.join();
  // Whichever request headed the batch defines the batch shape; the other
  // can either land in the same batch (individual InvalidArgument) or in
  // its own later batch (served fine). Either way nothing hangs or crashes
  // and at least one request is served.
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(ok.load() + invalid.load(), 2);
}

TEST(ServingIntegrationTest, HotSwapLosesNoRequests) {
  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 150;

  ModelManager manager;
  TF_CHECK_OK(manager.Publish("hotswap", MakeValueServable(1.0f, 1)));

  DynamicBatcher::Options options;
  options.max_batch_size = 8;
  options.batch_timeout_us = 200;
  options.max_enqueued = 4096;
  options.num_batch_threads = 2;
  DynamicBatcher batcher([&manager] { return manager.Current("hotswap"); },
                         options);

  std::atomic<int> served_v1{0}, served_v2{0}, failed{0}, torn{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        DynamicBatcher::Response r =
            batcher.RunOne(Tensor::Vec<float>({1, 2, 3, 4}));
        if (!r.status.ok()) {
          failed.fetch_add(1);
          continue;
        }
        // Version attribution must be exact: version 1 answers 1.0 rows,
        // version 2 answers 2.0 rows, and no response mixes the two.
        const float want = r.version == 1 ? 1.0f : 2.0f;
        bool consistent = (r.version == 1 || r.version == 2) &&
                          r.outputs.size() == 1 &&
                          r.outputs[0].num_elements() == 4;
        for (int j = 0; consistent && j < 4; ++j) {
          consistent = r.outputs[0].flat<float>(j) == want;
        }
        if (!consistent) {
          torn.fetch_add(1);
        } else if (r.version == 1) {
          served_v1.fetch_add(1);
        } else {
          served_v2.fetch_add(1);
        }
      }
    });
  }

  // Swap mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  TF_CHECK_OK(manager.Publish("hotswap", MakeValueServable(2.0f, 2)));

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(served_v1.load() + served_v2.load(),
            kClients * kRequestsPerClient);
  // The swap happened while traffic was flowing: the new version actually
  // took over.
  EXPECT_GT(served_v2.load(), 0);
  EXPECT_EQ(manager.Current("hotswap")->version(), 2);
}

}  // namespace
}  // namespace tfrepro
