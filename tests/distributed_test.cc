// Tests for the distributed runtime (transport-agnostic: run under
// TFREPRO_TRANSPORT=socket they exercise real worker processes): placement onto PS/worker
// tasks, cross-task Send/Recv, parameter-server-style training, async and
// network-model behaviour.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "core/metrics.h"
#include "distributed/fault_injector.h"
#include "distributed/master.h"
#include "graph/ops.h"
#include "nn/embedding.h"
#include "nn/layers.h"
#include "train/optimizer.h"
#include "train/saver.h"
#include "train/sync_replicas.h"

namespace tfrepro {
namespace {

using distributed::ClusterSpec;
using distributed::FaultInjector;
using distributed::Cluster;
using distributed::MasterSession;
using ops::Const;
using train::GradAndVar;

// True when this run exercises the socket transport (real worker
// processes). Kernel-side metrics then live in the worker processes'
// registries, not this one.
bool SocketTransport() {
  const char* t = std::getenv("TFREPRO_TRANSPORT");
  return t != nullptr && std::string(t) == "socket";
}

ClusterSpec PsWorkerSpec(int ps, int workers) {
  ClusterSpec spec;
  spec.jobs["ps"] = ps;
  spec.jobs["worker"] = workers;
  return spec;
}

TEST(ClusterTest, CreateAndLookup) {
  auto cluster = Cluster::Create(PsWorkerSpec(2, 3));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  EXPECT_EQ(cluster.value()->workers().size(), 5u);
  EXPECT_EQ(cluster.value()->all_devices().size(), 5u);
  auto w = cluster.value()->worker("ps", 1);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value()->task_name(), "/job:ps/task:1");
  EXPECT_FALSE(cluster.value()->worker("ps", 7).ok());
  EXPECT_FALSE(cluster.value()->worker("gpujob", 0).ok());
}

TEST(ClusterTest, RejectsEmptySpec) {
  EXPECT_FALSE(Cluster::Create(ClusterSpec{}).ok());
}

TEST(MasterSessionTest, CrossTaskComputation) {
  auto cluster = Cluster::Create(PsWorkerSpec(1, 1));
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output on_ps;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    on_ps = ops::Mul(&b, Const(&b, 6.0f), Const(&b, 7.0f));
  }
  Output on_worker;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    on_worker = ops::Add(&b, on_ps, Const(&b, 0.5f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<Tensor> out;
  Status s = session.value()->Run({on_worker.name()}, &out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 42.5f);
}

TEST(MasterSessionTest, ParameterServerTraining) {
  // The canonical PS architecture (§3.3): parameters on /job:ps, compute on
  // /job:worker; gradients flow back over Send/Recv.
  auto cluster = Cluster::Create(PsWorkerSpec(1, 1));
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output w;
  Output init;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    w = ops::Variable(&b, DataType::kFloat, TensorShape({2}), "w");
    init = ops::Assign(&b, w, Const(&b, Tensor::Vec<float>({4, -4})));
  }
  Output loss;
  Result<Node*> train_op = Internal("unset");
  train::GradientDescentOptimizer opt(0.25f);
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    loss = ops::SumAll(&b, ops::Square(&b, w));
    train_op = opt.Minimize(&b, loss, {w}, "train");
  }
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  ASSERT_TRUE(session.ok());
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  for (int i = 0; i < 30; ++i) {
    TF_CHECK_OK(
        session.value()->Run({}, {}, {train_op.value()->name()}, nullptr));
  }
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({loss.name()}, &out));
  EXPECT_LT(*out[0].data<float>(), 1e-4f);
}

TEST(MasterSessionTest, ShardedParametersAcrossPsTasks) {
  // Two PS shards; the worker sums reads from both (the Figure 3 layout).
  auto cluster = Cluster::Create(PsWorkerSpec(2, 1));
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  std::vector<Output> shards;
  std::vector<Output> inits;
  for (int s = 0; s < 2; ++s) {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:" + std::to_string(s));
    Output v = ops::Variable(&b, DataType::kFloat, TensorShape({2}),
                             "shard" + std::to_string(s));
    shards.push_back(v);
    inits.push_back(ops::Assign(
        &b, v,
        Const(&b, Tensor::Vec<float>({float(s * 10 + 1), float(s * 10 + 2)}))));
  }
  Output total;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    total = ops::SumAll(&b, ops::Concat(&b, 0, {ops::Identity(&b, shards[0]),
                                                ops::Identity(&b, shards[1])}));
  }
  Node* init_all = ops::Group(&b, inits, "init");
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  TF_CHECK_OK(session.value()->Run({}, {}, {init_all->name()}, nullptr));
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({total.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 1 + 2 + 11 + 12);
}

TEST(MasterSessionTest, AsynchronousDataParallelWorkers) {
  // Two workers run AssignAdd concurrently against one PS variable — the
  // asynchronous scheme of Figure 4(a). All updates must land.
  auto cluster = Cluster::Create(PsWorkerSpec(1, 2));
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output v;
  Output init;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    v = ops::Variable(&b, DataType::kFloat, TensorShape(), "v");
    init = ops::Assign(&b, v, Const(&b, 0.0f));
  }
  std::vector<Node*> bumps;
  for (int wk = 0; wk < 2; ++wk) {
    // Per-worker "gradient" computed on the worker; the mutating update op
    // runs where the variable lives (its PS task).
    Output grad;
    {
      GraphBuilder::DeviceScope scope(&b, "/job:worker/task:" +
                                              std::to_string(wk));
      grad = ops::Mul(&b, Const(&b, 1.0f), Const(&b, 1.0f));
    }
    Output apply = ops::AssignAdd(&b, v, grad);
    apply.node->set_requested_device("/job:ps/task:0");
    bumps.push_back(ops::Group(&b, {apply}, "bump" + std::to_string(wk)));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  MasterSession* sess = session.value().get();
  TF_CHECK_OK(sess->Run({}, {}, {init.node->name()}, nullptr));

  constexpr int kSteps = 20;
  std::vector<std::thread> threads;
  for (int wk = 0; wk < 2; ++wk) {
    threads.emplace_back([&, wk]() {
      for (int i = 0; i < kSteps; ++i) {
        TF_CHECK_OK(sess->Run({}, {}, {bumps[wk]->name()}, nullptr));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({"v:0"}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 2 * kSteps);
}

TEST(MasterSessionTest, NetworkModelDelaysCrossTaskTransfers) {
  auto cluster = Cluster::Create(PsWorkerSpec(1, 1));
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  Output x;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    // A fed placeholder cannot be constant-folded away, so the cross-task
    // transfer happens at run time.
    x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
  }
  Output y;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    y = ops::Square(&b, x);
  }
  ASSERT_TRUE(b.ok());

  MasterSession::Options options;
  options.use_network_model = true;
  options.network.latency_seconds = 0.05;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  std::vector<Tensor> out;
  auto start = std::chrono::steady_clock::now();
  TF_CHECK_OK(session.value()->Run({{"x", Tensor::Scalar(2.0f)}}, {y.name()},
                                   {}, &out));
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 4.0f);
  EXPECT_GE(elapsed, 0.05);  // the cross-task hop paid the wire latency
}

TEST(MasterSessionTest, MissingDeviceConstraintFails) {
  auto cluster = Cluster::Create(PsWorkerSpec(1, 1));
  Graph g;
  GraphBuilder b(&g);
  Output x;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:gpuworker/task:0");
    x = Const(&b, 1.0f);
  }
  ASSERT_TRUE(b.ok());
  auto session = MasterSession::Create(g, cluster.value().get());
  std::vector<Tensor> out;
  EXPECT_FALSE(session.value()->Run({x.name()}, &out).ok());
}

TEST(MasterSessionTest, StatefulKernelsSharedAcrossStepSignatures) {
  // Different fetch signatures compile different subgraphs, but the
  // variable state must be shared between them.
  auto cluster = Cluster::Create(PsWorkerSpec(1, 1));
  Graph g;
  GraphBuilder b(&g);
  Output v;
  Output init;
  Output bump;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    v = ops::Variable(&b, DataType::kFloat, TensorShape(), "v");
    init = ops::Assign(&b, v, Const(&b, 5.0f));
    bump = ops::AssignAdd(&b, v, Const(&b, 1.0f));
  }
  Output read;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    read = ops::Identity(&b, v);
  }
  ASSERT_TRUE(b.ok());
  auto session = MasterSession::Create(g, cluster.value().get());
  TF_CHECK_OK(session.value()->Run({}, {}, {init.node->name()}, nullptr));
  TF_CHECK_OK(session.value()->Run({}, {}, {bump.node->name()}, nullptr));
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({read.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 6.0f);
}

TEST(MasterSessionTest, ShardedEmbeddingAcrossPsTasksTrains) {
  // Figure 3 end to end, distributed: embedding shards on two PS tasks,
  // Gather colocated with each shard, DynamicStitch on the worker, dense
  // gradients flowing back over Send/Recv.
  auto cluster = Cluster::Create(PsWorkerSpec(2, 1));
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  nn::VariableStore store(&b);
  nn::ShardedEmbedding emb(&store, "emb", /*vocab=*/8, /*dim=*/2,
                           /*num_shards=*/2, [](int shard) {
                             return "/job:ps/task:" + std::to_string(shard);
                           });
  // Check shard placement requests took effect.
  EXPECT_EQ(emb.shards()[0].node->requested_device(), "/job:ps/task:0");
  EXPECT_EQ(emb.shards()[1].node->requested_device(), "/job:ps/task:1");

  Output indices;
  Output loss;
  Result<Node*> train_op = Internal("unset");
  train::GradientDescentOptimizer opt(1.0f);
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    indices = ops::Const(&b, Tensor::Vec<int32_t>({1, 4, 6}));
    Output target = ops::Const(
        &b, Tensor::FromVector<float>({1, 0, 0, 1, -1, -1},
                                      TensorShape({3, 2})));
    Output looked_up = emb.Lookup(indices);
    loss = ops::MeanAll(
        &b, ops::Square(&b, ops::Sub(&b, looked_up, target)));
    train_op = opt.Minimize(&b, loss, emb.shards(), "train");
  }
  ASSERT_TRUE(train_op.ok()) << train_op.status();
  Node* init = store.BuildInitOp("init");
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  ASSERT_TRUE(session.ok()) << session.status();
  TF_CHECK_OK(session.value()->Run({}, {}, {init->name()}, nullptr));
  for (int i = 0; i < 60; ++i) {
    TF_CHECK_OK(
        session.value()->Run({}, {}, {train_op.value()->name()}, nullptr));
  }
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run({loss.name()}, &out));
  EXPECT_LT(*out[0].data<float>(), 1e-3f);
}

TEST(ThrottledRendezvousTest, BandwidthModelDelaysBySize) {
  ThreadPool pool("timer", 2);
  distributed::NetworkModel model;
  model.latency_seconds = 0.0;
  model.bytes_per_second = 1e6;  // 1 MB/s
  distributed::ThrottledRendezvous rendezvous(model, &pool);

  // Cross-task key: 100 KB should take ~0.1 s.
  Tensor big(DataType::kFloat, TensorShape({25000}));  // 100 KB
  std::string key = RendezvousKey("/job:a/task:0/device:CPU:0",
                                  "/job:b/task:0/device:CPU:0", "t", 0);
  auto start = std::chrono::steady_clock::now();
  TF_CHECK_OK(rendezvous.Send(key, big, false));
  Tensor received;
  bool is_dead;
  TF_CHECK_OK(rendezvous.Recv(key, &received, &is_dead));
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_GE(elapsed, 0.09);

  // Same-task transfers are not throttled.
  std::string local_key = RendezvousKey("/job:a/task:0/device:CPU:0",
                                        "/job:a/task:0/device:CPU:1", "t", 0);
  start = std::chrono::steady_clock::now();
  TF_CHECK_OK(rendezvous.Send(local_key, big, false));
  TF_CHECK_OK(rendezvous.Recv(local_key, &received, &is_dead));
  elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
  EXPECT_LT(elapsed, 0.05);
}

TEST(ThrottledRendezvousTest, AbortUnblocksDelayedTransfer) {
  // The delayed delivery is in flight when the abort lands: the waiting
  // Recv must fail with the abort status well before the modeled latency.
  ThreadPool pool("timer", 2);
  distributed::NetworkModel model;
  model.latency_seconds = 1.0;  // far beyond the abort's arrival
  distributed::ThrottledRendezvous rendezvous(model, &pool);

  std::string key = RendezvousKey("/job:a/task:0/device:CPU:0",
                                  "/job:b/task:0/device:CPU:0", "t", 0);
  TF_CHECK_OK(rendezvous.Send(key, Tensor::Scalar(1.0f), false));

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status recv_status;
  rendezvous.RecvAsync(key, [&](const Status& s, const Tensor&, bool) {
    std::lock_guard<std::mutex> lock(mu);
    recv_status = s;
    done = true;
    cv.notify_all();
  });

  auto start = std::chrono::steady_clock::now();
  rendezvous.StartAbort(Aborted("step failed elsewhere"));
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(3),
                            [&] { return done; }));
  }
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_LT(elapsed, 0.9);  // did not wait out the modeled latency
  EXPECT_TRUE(recv_status.IsAborted()) << recv_status;
}

TEST(ThrottledRendezvousTest, AbortBeforeRecvFailsFast) {
  ThreadPool pool("timer", 1);
  distributed::ThrottledRendezvous rendezvous(distributed::NetworkModel{},
                                              &pool);
  rendezvous.StartAbort(Unavailable("task down"));
  Tensor value;
  bool is_dead = false;
  Status s = rendezvous.Recv("some;key;t;0", &value, &is_dead);
  EXPECT_TRUE(s.IsUnavailable()) << s;
  // Sends after the abort are rejected too.
  EXPECT_FALSE(rendezvous.Send("some;key;u;0", Tensor::Scalar(1.0f), false)
                   .ok());
}

TEST(ThrottledRendezvousTest, DoubleAbortKeepsFirstStatus) {
  ThreadPool pool("timer", 1);
  distributed::ThrottledRendezvous rendezvous(distributed::NetworkModel{},
                                              &pool);
  rendezvous.StartAbort(Aborted("first"));
  rendezvous.StartAbort(Unavailable("second"));
  Tensor value;
  bool is_dead = false;
  Status s = rendezvous.Recv("k;k;t;0", &value, &is_dead);
  EXPECT_TRUE(s.IsAborted()) << s;
}

TEST(LocalRendezvousAbortTest, DoubleAbortKeepsFirstStatus) {
  LocalRendezvous rendezvous;
  rendezvous.StartAbort(Aborted("first"));
  rendezvous.StartAbort(Unavailable("second"));
  Tensor value;
  bool is_dead = false;
  Status s = rendezvous.Recv("k", &value, &is_dead);
  EXPECT_TRUE(s.IsAborted()) << s;
}


TEST(MasterSessionTest, PerTaskSaverRoundTrip) {
  // §4.3: one Save operation per task. Two PS tasks -> two task groups,
  // each writing its own checkpoint file; restore reassembles both.
  auto cluster = Cluster::Create(PsWorkerSpec(2, 1));
  ASSERT_TRUE(cluster.ok());

  Graph g;
  GraphBuilder b(&g);
  std::vector<Output> vars;
  std::vector<Output> inits;
  for (int s = 0; s < 2; ++s) {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:" + std::to_string(s));
    Output v = ops::Variable(&b, DataType::kFloat, TensorShape({2}),
                             "pvar" + std::to_string(s));
    vars.push_back(v);
    inits.push_back(ops::Assign(
        &b, v, Const(&b, Tensor::Vec<float>({float(s + 1), float(s + 2)}))));
  }
  train::Saver saver(&b, vars);
  EXPECT_EQ(saver.num_task_groups(), 2);
  Node* init = ops::Group(&b, inits, "init");
  Output clobber =
      ops::Assign(&b, vars[0], Const(&b, Tensor::Vec<float>({9, 9})));
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  ASSERT_TRUE(session.ok());
  MasterSession* sess = session.value().get();
  TF_CHECK_OK(sess->Run({}, {}, {init->name()}, nullptr));
  std::string prefix = ::testing::TempDir() + "/per_task_ckpt";
  Result<std::string> base = saver.Save(sess, prefix, 7);
  ASSERT_TRUE(base.ok()) << base.status();
  // Two per-task files exist.
  EXPECT_TRUE(std::ifstream(base.value() + "@0").good());
  EXPECT_TRUE(std::ifstream(base.value() + "@1").good());

  TF_CHECK_OK(sess->Run({}, {}, {clobber.node->name()}, nullptr));
  TF_CHECK_OK(saver.Restore(sess, base.value()));
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({"pvar0:0", "pvar1:0"}, &out));
  EXPECT_FLOAT_EQ(out[0].flat<float>(0), 1.0f);
  EXPECT_FLOAT_EQ(out[1].flat<float>(1), 3.0f);

  Result<std::string> latest = train::Saver::LatestCheckpoint(prefix);
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_NE(latest.value().find("per_task_ckpt-7"), std::string::npos);
}

TEST(MasterSessionTest, TracedStepStitchesAllWorkerTimelines) {
  // The tentpole acceptance test (DESIGN.md §12): one traced distributed
  // step must come back as a single timeline containing node events from
  // BOTH worker tasks on task-prefixed device rows. Under
  // TFREPRO_TRANSPORT=socket the events cross real process boundaries in
  // the RunGraph response and are clock-skew-normalized by the master.
  ClusterSpec spec;
  spec.jobs["worker"] = 2;
  auto cluster = Cluster::Create(spec);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  Graph g;
  GraphBuilder b(&g);
  // A fed placeholder keeps the chain from being constant-folded: real
  // kernels must run on both tasks at step time.
  Output x;
  Output left;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
    left = ops::Mul(&b, x, Const(&b, 3.0f));
  }
  Output total;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:1");
    total = ops::Add(&b, left, Const(&b, 4.0f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  ASSERT_TRUE(session.ok()) << session.status();
  RunOptions run_options;
  run_options.trace = true;
  RunMetadata metadata;
  std::vector<Tensor> out;
  TF_CHECK_OK(session.value()->Run(run_options, {{"x", Tensor::Scalar(2.0f)}},
                                   {total.name()}, {}, &out, &metadata));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), 10.0f);

  // Node events from both tasks, on device names carrying the task prefix.
  bool saw_task0 = false;
  bool saw_task1 = false;
  for (const NodeExecStats& n : metadata.step_stats.nodes) {
    if (n.device.rfind("/job:worker/task:0/", 0) == 0) saw_task0 = true;
    if (n.device.rfind("/job:worker/task:1/", 0) == 0) saw_task1 = true;
    EXPECT_GT(n.end_micros, 0) << n.node_name;
    EXPECT_GE(n.end_micros, n.start_micros) << n.node_name;
  }
  EXPECT_TRUE(saw_task0);
  EXPECT_TRUE(saw_task1);

  // The cross-task hop (task:0 -> task:1) was recorded as a transfer.
  bool saw_cross_task_transfer = false;
  for (const TransferStats& t : metadata.step_stats.transfers) {
    if (t.send_device.rfind("/job:worker/task:0/", 0) == 0 &&
        t.recv_device.rfind("/job:worker/task:1/", 0) == 0) {
      saw_cross_task_transfer = true;
    }
  }
  EXPECT_TRUE(saw_cross_task_transfer);

  // The Chrome export puts both tasks in one trace: each task becomes a
  // process row, each device a thread row.
  const std::string trace = metadata.step_stats.ToChromeTraceJson();
  EXPECT_NE(trace.find("/job:worker/task:0"), std::string::npos);
  EXPECT_NE(trace.find("/job:worker/task:1"), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

  // Skew normalization: every stitched event must land within the
  // master-observed step window (sanity bound — a badly normalized worker
  // clock puts events far outside it). The window is widened by a minute
  // on each side so the assertion only catches gross offsets, not jitter.
  int64_t min_us = INT64_MAX;
  int64_t max_us = 0;
  for (const NodeExecStats& n : metadata.step_stats.nodes) {
    if (n.start_micros > 0 && n.start_micros < min_us) min_us = n.start_micros;
    if (n.end_micros > max_us) max_us = n.end_micros;
  }
  ASSERT_LT(min_us, max_us);
  EXPECT_LT(max_us - min_us, int64_t{60} * 1000 * 1000);

  // An untraced run on the same session stays trace-free.
  RunMetadata untraced;
  TF_CHECK_OK(session.value()->Run(RunOptions(), {{"x", Tensor::Scalar(2.0f)}},
                                   {total.name()}, {}, &out, &untraced));
  EXPECT_TRUE(untraced.step_stats.nodes.empty());
}

TEST(MasterSessionTest, SampledStepsAggregateIntoProfileStore) {
  // Sampling cadence applies to distributed steps too: every 2nd Run is
  // traced and folded into the master's ProfileStore, including node
  // timings harvested from remote workers.
  ClusterSpec spec;
  spec.jobs["worker"] = 2;
  auto cluster = Cluster::Create(spec);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  Graph g;
  GraphBuilder b(&g);
  Output x;
  Output left;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:0");
    x = ops::Placeholder(&b, DataType::kFloat, TensorShape(), "x");
    left = ops::Square(&b, x);
  }
  Output total;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:1");
    total = ops::Add(&b, left, Const(&b, 1.0f));
  }
  ASSERT_TRUE(b.ok()) << b.status();

  MasterSession::Options options;
  options.profile_sample_every = 2;
  auto session = MasterSession::Create(g, cluster.value().get(), options);
  ASSERT_TRUE(session.ok()) << session.status();
  constexpr int kRuns = 6;
  for (int i = 0; i < kRuns; ++i) {
    std::vector<Tensor> out;
    TF_CHECK_OK(session.value()->Run({{"x", Tensor::Scalar(3.0f)}},
                                     {total.name()}, {}, &out));
    EXPECT_FLOAT_EQ(*out[0].data<float>(), 10.0f);
  }

  const ProfileStore* store = session.value()->profile_store();
  EXPECT_EQ(store->steps(), kRuns / 2);
  // Both tasks' devices contributed measured entries.
  bool task0_entry = false;
  bool task1_entry = false;
  for (const ProfileEntry& e : store->Entries()) {
    if (e.device.rfind("/job:worker/task:0/", 0) == 0) task0_entry = true;
    if (e.device.rfind("/job:worker/task:1/", 0) == 0) task1_entry = true;
  }
  EXPECT_TRUE(task0_entry);
  EXPECT_TRUE(task1_entry);
  EXPECT_GE(store->OpMeanMicros("Add"), 0.0);
}

TEST(MasterSessionTest, StaleBackupGradientIsDroppedNotAggregated) {
  // §4.4 "first m of n" with real staleness protection: n=4 replicas, m=3
  // required, and the whole training step is ONE distributed Run so every
  // replica's gradient carries the same issuing step id. Worker 3 is
  // delayed, so each step it is deterministically the straggler: its
  // (poisoned) gradient lands after the chief already aggregated the first
  // m fresh ones and stays queued. At the next step that leftover's tag is
  // below the advanced stale floor and QueueDequeueFreshMany discards it —
  // the poison value must never reach the variable.
  FaultInjector injector;
  Cluster::Options copts;
  copts.fault_injector = &injector;
  auto cluster = Cluster::Create(PsWorkerSpec(1, 4), copts);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  constexpr int kWorkers = 4;
  constexpr int kRequired = 3;
  Graph g;
  GraphBuilder b(&g);
  Output v;
  Output init;
  train::GradientDescentOptimizer opt(1.0f);
  std::unique_ptr<train::SyncReplicas> sync;
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    v = ops::Variable(&b, DataType::kFloat, TensorShape(), "v");
    init = ops::Assign(&b, v, Const(&b, 0.0f));
    sync = std::make_unique<train::SyncReplicas>(
        &b, &opt, kWorkers, kRequired, /*drop_stale_gradients=*/true);
  }
  EXPECT_TRUE(sync->drop_stale_gradients());

  std::vector<Node*> worker_steps;
  for (int i = 0; i < kWorkers; ++i) {
    GraphBuilder::DeviceScope scope(&b, "/job:worker/task:" +
                                            std::to_string(i));
    // The straggler's gradient is poisoned: if a stale one were ever
    // aggregated the trajectory below would be visibly wrong.
    const float grad = (i == kWorkers - 1) ? 300.0f : 3.0f;
    Result<Node*> step = sync->AddWorkerStep({GradAndVar{Const(&b, grad), v}});
    ASSERT_TRUE(step.ok()) << step.status();
    worker_steps.push_back(step.value());
  }
  Result<Node*> chief = Internal("unset");
  {
    GraphBuilder::DeviceScope scope(&b, "/job:ps/task:0");
    chief = sync->BuildChiefUpdate();
  }
  ASSERT_TRUE(chief.ok()) << chief.status();
  ASSERT_TRUE(b.ok()) << b.status();

  auto session = MasterSession::Create(g, cluster.value().get());
  ASSERT_TRUE(session.ok()) << session.status();
  MasterSession* sess = session.value().get();
  TF_CHECK_OK(sess->Run({}, {}, {init.node->name()}, nullptr));
  TF_CHECK_OK(sess->Run({}, {}, {sync->token_seed_op()->name()}, nullptr));

  injector.DelayTask("/job:worker/task:3", 0.1);
  metrics::Counter* dropped =
      metrics::Registry::Global()->GetCounter("grad.stale_dropped");
  const int64_t dropped_before = dropped->value();

  constexpr int kSteps = 5;
  std::vector<std::string> step_targets;
  for (Node* wstep : worker_steps) step_targets.push_back(wstep->name());
  step_targets.push_back(chief.value()->name());
  for (int s = 0; s < kSteps; ++s) {
    TF_CHECK_OK(sess->Run({}, {}, step_targets, nullptr));
  }

  // Every committed update averaged m fresh gradients of 3.0 — if any
  // stale 300.0 had been aggregated, v would be off by >= 99 somewhere.
  std::vector<Tensor> out;
  TF_CHECK_OK(sess->Run({v.name()}, &out));
  EXPECT_FLOAT_EQ(*out[0].data<float>(), -3.0f * kSteps);

  // Steps 2..N each dequeued (and discarded) the previous step's leftover
  // straggler gradient: its tag is below the floor advanced at commit. The
  // counter increments where the dequeue kernel runs, so over the socket
  // transport it lives in the ps process — unobservable here; the bit-exact
  // trajectory above already proves no stale gradient was aggregated.
  if (!SocketTransport()) {
    EXPECT_EQ(dropped->value() - dropped_before, kSteps - 1);
  }
}

}  // namespace
}  // namespace tfrepro
