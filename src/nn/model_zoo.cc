#include "nn/model_zoo.h"

#include <cmath>

namespace tfrepro {
namespace nn {

int64_t LayerSpec::OutH() const {
  if (same_padding) {
    return (in_h + stride - 1) / stride;
  }
  return (in_h - k) / stride + 1;
}

int64_t LayerSpec::OutW() const {
  int64_t kw = k2 != 0 ? k2 : k;
  if (same_padding) {
    return (in_w + stride - 1) / stride;
  }
  return (in_w - kw) / stride + 1;
}

double LayerSpec::ForwardFlops() const {
  switch (kind) {
    case Kind::kConv: {
      int64_t kw = k2 != 0 ? k2 : k;
      return 2.0 * OutH() * OutW() * out_c * k * kw * in_c;
    }
    case Kind::kPool:
      return static_cast<double>(OutH()) * OutW() * in_c * k * k;
    case Kind::kFullyConnected:
      return 2.0 * in_dim * out_dim;
    case Kind::kLstm:
      // One step: [1, in+h] x [in+h, 4h] plus elementwise gates.
      return 2.0 * (in_dim + out_dim) * 4 * out_dim + 10.0 * out_dim;
    case Kind::kSoftmax:
      return 2.0 * in_dim * out_dim;
  }
  return 0;
}

double LayerSpec::ParamBytes() const {
  switch (kind) {
    case Kind::kConv: {
      int64_t kw = k2 != 0 ? k2 : k;
      return 4.0 * k * kw * in_c * out_c;
    }
    case Kind::kPool:
      return 0;
    case Kind::kFullyConnected:
      return 4.0 * in_dim * out_dim;
    case Kind::kLstm:
      return 4.0 * (in_dim + out_dim) * 4 * out_dim;
    case Kind::kSoftmax:
      return 4.0 * in_dim * out_dim;
  }
  return 0;
}

double LayerSpec::ActivationBytes() const {
  switch (kind) {
    case Kind::kConv:
    case Kind::kPool:
      return 4.0 * OutH() * OutW() * out_c;
    case Kind::kFullyConnected:
    case Kind::kLstm:
    case Kind::kSoftmax:
      return 4.0 * out_dim;
  }
  return 0;
}

double ModelSpec::ForwardFlopsPerExample() const {
  double total = 0;
  for (const LayerSpec& l : layers) total += l.ForwardFlops();
  return total;
}

double ModelSpec::TrainingFlopsPerExample() const {
  // Backward pass costs ~2x forward (gradient w.r.t. inputs + weights).
  return 3.0 * ForwardFlopsPerExample();
}

double ModelSpec::TotalParamBytes() const {
  double total = 0;
  for (const LayerSpec& l : layers) total += l.ParamBytes();
  return total;
}

namespace {

LayerSpec Conv(int64_t hw, int64_t in_c, int64_t k, int64_t stride,
               int64_t out_c, bool same = true) {
  LayerSpec l;
  l.kind = LayerSpec::Kind::kConv;
  l.in_h = hw;
  l.in_w = hw;
  l.in_c = in_c;
  l.k = k;
  l.stride = stride;
  l.out_c = out_c;
  l.same_padding = same;
  return l;
}

LayerSpec ConvRect(int64_t hw, int64_t in_c, int64_t kh, int64_t kw,
                   int64_t out_c) {
  LayerSpec l = Conv(hw, in_c, kh, 1, out_c);
  l.k2 = kw;
  return l;
}

LayerSpec Pool(int64_t hw, int64_t c, int64_t k, int64_t stride) {
  LayerSpec l;
  l.kind = LayerSpec::Kind::kPool;
  l.in_h = hw;
  l.in_w = hw;
  l.in_c = c;
  l.out_c = c;
  l.k = k;
  l.stride = stride;
  return l;
}

LayerSpec Fc(int64_t in_dim, int64_t out_dim) {
  LayerSpec l;
  l.kind = LayerSpec::Kind::kFullyConnected;
  l.in_dim = in_dim;
  l.out_dim = out_dim;
  return l;
}

}  // namespace

ModelSpec AlexNet(int64_t batch) {
  ModelSpec m;
  m.name = "AlexNet";
  m.batch = batch;
  m.layers = {
      Conv(224, 3, 11, 4, 64, /*same=*/false),   // -> 54
      Pool(54, 64, 3, 2),                        // -> 27
      Conv(27, 64, 5, 1, 192),                   // -> 27
      Pool(27, 192, 3, 2),                       // -> 14
      Conv(14, 192, 3, 1, 384),
      Conv(14, 384, 3, 1, 256),
      Conv(14, 256, 3, 1, 256),
      Pool(14, 256, 3, 2),                       // -> 7
      Fc(7 * 7 * 256, 4096),
      Fc(4096, 4096),
      Fc(4096, 1000),
  };
  return m;
}

ModelSpec Overfeat(int64_t batch) {
  ModelSpec m;
  m.name = "Overfeat";
  m.batch = batch;
  m.layers = {
      Conv(231, 3, 11, 4, 96, /*same=*/false),   // -> 56
      Pool(56, 96, 2, 2),                        // -> 28
      Conv(28, 96, 5, 1, 256),
      Pool(28, 256, 2, 2),                       // -> 14
      Conv(14, 256, 3, 1, 512),
      Conv(14, 512, 3, 1, 1024),
      Conv(14, 1024, 3, 1, 1024),
      Pool(14, 1024, 2, 2),                      // -> 7
      Fc(7 * 7 * 1024, 3072),
      Fc(3072, 4096),
      Fc(4096, 1000),
  };
  return m;
}

ModelSpec OxfordNet(int64_t batch) {
  // VGG model A (the "OxfordNet" of convnet-benchmarks).
  ModelSpec m;
  m.name = "OxfordNet";
  m.batch = batch;
  m.layers = {
      Conv(224, 3, 3, 1, 64),
      Pool(224, 64, 2, 2),    // -> 112
      Conv(112, 64, 3, 1, 128),
      Pool(112, 128, 2, 2),   // -> 56
      Conv(56, 128, 3, 1, 256),
      Conv(56, 256, 3, 1, 256),
      Pool(56, 256, 2, 2),    // -> 28
      Conv(28, 256, 3, 1, 512),
      Conv(28, 512, 3, 1, 512),
      Pool(28, 512, 2, 2),    // -> 14
      Conv(14, 512, 3, 1, 512),
      Conv(14, 512, 3, 1, 512),
      Pool(14, 512, 2, 2),    // -> 7
      Fc(7 * 7 * 512, 4096),
      Fc(4096, 4096),
      Fc(4096, 1000),
  };
  return m;
}

namespace {

// One GoogleNet inception module at spatial size hw:
// 1x1, 1x1->3x3, 1x1->5x5, pool->1x1 branches.
void InceptionModule(std::vector<LayerSpec>* layers, int64_t hw, int64_t in_c,
                     int64_t c1, int64_t c3r, int64_t c3, int64_t c5r,
                     int64_t c5, int64_t cp) {
  layers->push_back(Conv(hw, in_c, 1, 1, c1));
  layers->push_back(Conv(hw, in_c, 1, 1, c3r));
  layers->push_back(Conv(hw, c3r, 3, 1, c3));
  layers->push_back(Conv(hw, in_c, 1, 1, c5r));
  layers->push_back(Conv(hw, c5r, 5, 1, c5));
  layers->push_back(Pool(hw, in_c, 3, 1));
  layers->push_back(Conv(hw, in_c, 1, 1, cp));
}

}  // namespace

ModelSpec GoogleNet(int64_t batch) {
  ModelSpec m;
  m.name = "GoogleNet";
  m.batch = batch;
  auto& L = m.layers;
  L.push_back(Conv(224, 3, 7, 2, 64));    // -> 112
  L.push_back(Pool(112, 64, 3, 2));       // -> 56
  L.push_back(Conv(56, 64, 1, 1, 64));
  L.push_back(Conv(56, 64, 3, 1, 192));
  L.push_back(Pool(56, 192, 3, 2));       // -> 28
  InceptionModule(&L, 28, 192, 64, 96, 128, 16, 32, 32);    // 3a -> 256
  InceptionModule(&L, 28, 256, 128, 128, 192, 32, 96, 64);  // 3b -> 480
  L.push_back(Pool(28, 480, 3, 2));       // -> 14
  InceptionModule(&L, 14, 480, 192, 96, 208, 16, 48, 64);   // 4a
  InceptionModule(&L, 14, 512, 160, 112, 224, 24, 64, 64);  // 4b
  InceptionModule(&L, 14, 512, 128, 128, 256, 24, 64, 64);  // 4c
  InceptionModule(&L, 14, 512, 112, 144, 288, 32, 64, 64);  // 4d
  InceptionModule(&L, 14, 528, 256, 160, 320, 32, 128, 128);  // 4e -> 832
  L.push_back(Pool(14, 832, 3, 2));       // -> 7
  InceptionModule(&L, 7, 832, 256, 160, 320, 32, 128, 128);   // 5a
  InceptionModule(&L, 7, 832, 384, 192, 384, 48, 128, 128);   // 5b -> 1024
  L.push_back(Pool(7, 1024, 7, 1));
  L.push_back(Fc(1024, 1000));
  return m;
}

namespace {

// Inception-v3 module helpers (channels from the published architecture).
void V3ModuleA(std::vector<LayerSpec>* L, int64_t hw, int64_t in_c,
               int64_t pool_c) {
  L->push_back(Conv(hw, in_c, 1, 1, 64));
  L->push_back(Conv(hw, in_c, 1, 1, 48));
  L->push_back(Conv(hw, 48, 5, 1, 64));
  L->push_back(Conv(hw, in_c, 1, 1, 64));
  L->push_back(Conv(hw, 64, 3, 1, 96));
  L->push_back(Conv(hw, 96, 3, 1, 96));
  L->push_back(Pool(hw, in_c, 3, 1));
  L->push_back(Conv(hw, in_c, 1, 1, pool_c));
}

void V3ModuleB(std::vector<LayerSpec>* L, int64_t hw, int64_t in_c,
               int64_t c7) {
  L->push_back(Conv(hw, in_c, 1, 1, 192));
  L->push_back(Conv(hw, in_c, 1, 1, c7));
  L->push_back(ConvRect(hw, c7, 1, 7, c7));
  L->push_back(ConvRect(hw, c7, 7, 1, 192));
  L->push_back(Conv(hw, in_c, 1, 1, c7));
  L->push_back(ConvRect(hw, c7, 7, 1, c7));
  L->push_back(ConvRect(hw, c7, 1, 7, c7));
  L->push_back(ConvRect(hw, c7, 7, 1, c7));
  L->push_back(ConvRect(hw, c7, 1, 7, 192));
  L->push_back(Pool(hw, in_c, 3, 1));
  L->push_back(Conv(hw, in_c, 1, 1, 192));
}

void V3ModuleC(std::vector<LayerSpec>* L, int64_t hw, int64_t in_c) {
  L->push_back(Conv(hw, in_c, 1, 1, 320));
  L->push_back(Conv(hw, in_c, 1, 1, 384));
  L->push_back(ConvRect(hw, 384, 1, 3, 384));
  L->push_back(ConvRect(hw, 384, 3, 1, 384));
  L->push_back(Conv(hw, in_c, 1, 1, 448));
  L->push_back(Conv(hw, 448, 3, 1, 384));
  L->push_back(ConvRect(hw, 384, 1, 3, 384));
  L->push_back(ConvRect(hw, 384, 3, 1, 384));
  L->push_back(Pool(hw, in_c, 3, 1));
  L->push_back(Conv(hw, in_c, 1, 1, 192));
}

}  // namespace

ModelSpec InceptionV3(int64_t batch) {
  ModelSpec m;
  m.name = "Inception-v3";
  m.batch = batch;
  auto& L = m.layers;
  // Stem.
  L.push_back(Conv(299, 3, 3, 2, 32, /*same=*/false));    // -> 149
  L.push_back(Conv(149, 32, 3, 1, 32, /*same=*/false));   // -> 147
  L.push_back(Conv(147, 32, 3, 1, 64));                   // -> 147
  L.push_back(Pool(147, 64, 3, 2));                       // -> 74 (73)
  L.push_back(Conv(73, 64, 1, 1, 80));
  L.push_back(Conv(73, 80, 3, 1, 192, /*same=*/false));   // -> 71
  L.push_back(Pool(71, 192, 3, 2));                       // -> 35
  // 3 x module A at 35x35.
  V3ModuleA(&L, 35, 192, 32);   // -> 256
  V3ModuleA(&L, 35, 256, 64);   // -> 288
  V3ModuleA(&L, 35, 288, 64);   // -> 288
  // Reduction to 17x17.
  L.push_back(Conv(35, 288, 3, 2, 384, /*same=*/false));
  L.push_back(Conv(35, 288, 1, 1, 64));
  L.push_back(Conv(35, 64, 3, 1, 96));
  L.push_back(Conv(35, 96, 3, 2, 96, /*same=*/false));
  L.push_back(Pool(35, 288, 3, 2));
  // 4 x module B at 17x17 (in 768).
  V3ModuleB(&L, 17, 768, 128);
  V3ModuleB(&L, 17, 768, 160);
  V3ModuleB(&L, 17, 768, 160);
  V3ModuleB(&L, 17, 768, 192);
  // Reduction to 8x8.
  L.push_back(Conv(17, 768, 1, 1, 192));
  L.push_back(Conv(17, 192, 3, 2, 320, /*same=*/false));
  L.push_back(Conv(17, 768, 1, 1, 192));
  L.push_back(ConvRect(17, 192, 1, 7, 192));
  L.push_back(ConvRect(17, 192, 7, 1, 192));
  L.push_back(Conv(17, 192, 3, 2, 192, /*same=*/false));
  L.push_back(Pool(17, 768, 3, 2));
  // 2 x module C at 8x8 (in 1280, then 2048).
  V3ModuleC(&L, 8, 1280);
  V3ModuleC(&L, 8, 2048);
  L.push_back(Pool(8, 2048, 8, 1));
  L.push_back(Fc(2048, 1000));
  return m;
}

ModelSpec LstmLanguageModel(int64_t batch, int64_t vocab, int64_t embedding,
                            int64_t hidden, int64_t unroll_steps,
                            int64_t softmax_classes_computed) {
  ModelSpec m;
  m.name = "LSTM-" + std::to_string(embedding) + "-" + std::to_string(hidden);
  m.batch = batch;
  for (int64_t t = 0; t < unroll_steps; ++t) {
    // Embedding lookup is a gather (negligible FLOPs, counted as zero-FLOP
    // softmax layer for bytes); LSTM step; softmax projection.
    LayerSpec lstm;
    lstm.kind = LayerSpec::Kind::kLstm;
    lstm.in_dim = embedding;
    lstm.out_dim = hidden;
    m.layers.push_back(lstm);

    LayerSpec softmax;
    softmax.kind = LayerSpec::Kind::kSoftmax;
    softmax.in_dim = hidden;
    softmax.out_dim = softmax_classes_computed;
    m.layers.push_back(softmax);
  }
  (void)vocab;
  return m;
}

}  // namespace nn
}  // namespace tfrepro
