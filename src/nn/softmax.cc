#include "nn/softmax.h"

#include <cmath>

#include "nn/embedding.h"

namespace tfrepro {
namespace nn {

FullSoftmaxHead::FullSoftmaxHead(
    VariableStore* store, const std::string& name, int64_t hidden_dim,
    int64_t num_classes, int num_shards,
    const std::function<std::string(int)>& ps_device_fn)
    : store_(store),
      b_(store->builder()),
      hidden_dim_(hidden_dim),
      num_classes_(num_classes) {
  if (num_classes % num_shards != 0) {
    b_->UpdateStatus(InvalidArgument(
        "FullSoftmaxHead: num_classes must be divisible by num_shards"));
    return;
  }
  int64_t cols = num_classes / num_shards;
  float stddev = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
  for (int s = 0; s < num_shards; ++s) {
    GraphBuilder::DeviceScope scope(
        b_, ps_device_fn ? ps_device_fn(s) : b_->default_device());
    shards_.push_back(store->WeightVariable(
        name + "/w_shard" + std::to_string(s),
        TensorShape({hidden_dim, cols}), stddev));
    biases_.push_back(store->ZeroVariable(
        name + "/b_shard" + std::to_string(s), TensorShape({cols})));
  }
}

SoftmaxLoss FullSoftmaxHead::Loss(Output hidden, Output labels) {
  // Each partial matmul is colocated with its weight shard: the paper's
  // Project-Adam-style distributed softmax — hidden activations travel to
  // the PS tasks, per-shard logits travel back (§4.2).
  std::vector<Output> partial_logits;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Output logits_s = ops::BiasAdd(
        b_, ops::MatMul(b_, hidden, shards_[s]), biases_[s]);
    if (logits_s.valid()) {
      logits_s.node->set_requested_device(
          shards_[s].node->requested_device());
      // Colocate the whole shard-local chain.
      Result<const Edge*> mm = logits_s.node->input_edge(0);
      if (mm.ok()) {
        mm.value()->src->set_requested_device(
            shards_[s].node->requested_device());
      }
    }
    partial_logits.push_back(logits_s);
  }
  Output logits = ops::Concat(b_, 1, partial_logits);
  Node* xent = ops::SparseSoftmaxCrossEntropyWithLogits(b_, logits, labels);
  SoftmaxLoss result;
  result.logits = logits;
  result.loss = ops::MeanAll(b_, Output(xent, 0));
  return result;
}

SampledSoftmaxHead::SampledSoftmaxHead(
    VariableStore* store, const std::string& name, int64_t hidden_dim,
    int64_t num_classes, int64_t num_sampled, int num_shards,
    const std::function<std::string(int)>& ps_device_fn)
    : store_(store),
      b_(store->builder()),
      hidden_dim_(hidden_dim),
      num_classes_(num_classes),
      num_sampled_(num_sampled) {
  weights_ = std::make_unique<ShardedEmbedding>(
      store, name + "/w", num_classes, hidden_dim, num_shards, ps_device_fn);
}

SoftmaxLoss SampledSoftmaxHead::Loss(Output hidden, Output labels) {
  // True-class rows.
  Output labels32 = ops::Cast(b_, labels, DataType::kInt32);
  Output true_w = weights_->Lookup(labels32);  // [batch, d]

  // Random negative sample of classes (shared across the batch, as in the
  // paper's experiments: "we sample 512 classes for each batch").
  Output sampled = b_->Op("RandomUniformInt")
                       .Input(ops::ConstVecI32(
                           b_, {static_cast<int32_t>(num_sampled_)}))
                       .Input(ops::Const(b_, int64_t{0}))
                       .Input(ops::Const(b_, num_classes_))
                       .Attr("T", DataType::kInt64)
                       .Attr("seed", int64_t{42})
                       .Finalize();
  Output sampled32 = ops::Cast(b_, sampled, DataType::kInt32);
  Output sampled_w = weights_->Lookup(sampled32);  // [S, d]

  // Logit for the true class: rowwise dot(hidden, true_w).
  Output true_logits = ops::Sum(
      b_, ops::Mul(b_, hidden, true_w), ops::ConstVecI32(b_, {1}),
      /*keep_dims=*/true);  // [batch, 1]
  // Logits for the sampled classes: hidden x sampled_w^T -> [batch, S].
  Output sampled_logits =
      ops::MatMul(b_, hidden, sampled_w, /*ta=*/false, /*tb=*/true);
  Output logits = ops::Concat(b_, 1, {true_logits, sampled_logits});

  // After concatenation the true class is always column 0.
  Output zero_labels =
      ops::Cast(b_, ops::Mul(b_, labels, ops::Const(b_, int64_t{0})),
                DataType::kInt64);
  Node* xent = ops::SparseSoftmaxCrossEntropyWithLogits(b_, logits,
                                                        zero_labels);
  SoftmaxLoss result;
  result.logits = logits;
  result.loss = ops::MeanAll(b_, Output(xent, 0));
  return result;
}

}  // namespace nn
}  // namespace tfrepro
