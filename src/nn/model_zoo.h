// Model zoo: layer-level specifications of the architectures in the
// paper's evaluation — AlexNet, Overfeat, OxfordNet (VGG) and GoogleNet for
// Table 1, Inception-v3 for §6.3, and the LSTM-512-512 language model for
// §6.4. The same specs drive (a) runnable graphs at reduced scale and
// (b) the FLOP/byte accounting used by the performance simulator, so
// simulated step times and runnable models share one source of truth.

#ifndef TFREPRO_NN_MODEL_ZOO_H_
#define TFREPRO_NN_MODEL_ZOO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tfrepro {
namespace nn {

struct LayerSpec {
  enum class Kind { kConv, kPool, kFullyConnected, kLstm, kSoftmax };
  Kind kind = Kind::kConv;

  // Conv / pool geometry (NHWC); out spatial dims derived from padding.
  int64_t in_h = 0, in_w = 0, in_c = 0;
  int64_t k = 0;       // square kernel (k_h == k_w == k); for the 1x7/7x1
  int64_t k2 = 0;      // factorized kernels, k x k2 with k2 != 0
  int64_t stride = 1;
  int64_t out_c = 0;
  bool same_padding = true;

  // Fully-connected / LSTM / softmax.
  int64_t in_dim = 0;
  int64_t out_dim = 0;  // fc units, lstm hidden size, softmax classes

  int64_t OutH() const;
  int64_t OutW() const;

  // Forward multiply-add FLOPs (x2 for mul+add) for one example.
  double ForwardFlops() const;
  // Parameter bytes (float32).
  double ParamBytes() const;
  // Output activation bytes for one example.
  double ActivationBytes() const;
};

struct ModelSpec {
  std::string name;
  int64_t batch = 1;
  std::vector<LayerSpec> layers;

  double ForwardFlopsPerExample() const;
  double TrainingFlopsPerExample() const;  // fwd + bwd (~3x fwd)
  double TotalParamBytes() const;
};

// --- Table 1 models (single-machine convnet benchmarks) ---
ModelSpec AlexNet(int64_t batch);
ModelSpec Overfeat(int64_t batch);
ModelSpec OxfordNet(int64_t batch);  // VGG model A
ModelSpec GoogleNet(int64_t batch);

// --- §6.3 model ---
ModelSpec InceptionV3(int64_t batch);

// --- §6.4 model: LSTM-512-512, optionally with sampled softmax ---
ModelSpec LstmLanguageModel(int64_t batch, int64_t vocab, int64_t embedding,
                            int64_t hidden, int64_t unroll_steps,
                            int64_t softmax_classes_computed);

}  // namespace nn
}  // namespace tfrepro

#endif  // TFREPRO_NN_MODEL_ZOO_H_
