#include "nn/embedding.h"

#include <cmath>

namespace tfrepro {
namespace nn {

ShardedEmbedding::ShardedEmbedding(
    VariableStore* store, const std::string& name, int64_t vocab_size,
    int64_t dim, int num_shards,
    const std::function<std::string(int)>& ps_device_fn)
    : store_(store), b_(store->builder()), vocab_size_(vocab_size), dim_(dim) {
  float stddev = 1.0f / std::sqrt(static_cast<float>(dim));
  for (int s = 0; s < num_shards; ++s) {
    // Mod-sharding: shard s holds rows {s, s+k, s+2k, ...}.
    int64_t rows = (vocab_size - s + num_shards - 1) / num_shards;
    GraphBuilder::DeviceScope scope(
        b_, ps_device_fn ? ps_device_fn(s) : b_->default_device());
    Output shard = store->WeightVariable(
        name + "/shard" + std::to_string(s), TensorShape({rows, dim}),
        stddev);
    shards_.push_back(shard);
  }
}

ShardedEmbedding::Routing ShardedEmbedding::Route(Output indices) {
  int num = num_shards();
  // shard id = index mod k; local row = index div k (Figure 3's "Mod" /
  // "Part" stage).
  Output k = ops::Const(b_, static_cast<int32_t>(num));
  Output shard_ids = b_->Op("Mod")
                         .Input(indices)
                         .Input(k)
                         .Attr("T", DataType::kInt32)
                         .Finalize();
  Output local = b_->Op("FloorDiv")
                     .Input(indices)
                     .Input(k)
                     .Attr("T", DataType::kInt32)
                     .Finalize();
  Routing routing;
  routing.local_indices = ops::DynamicPartition(b_, local, shard_ids, num);
  Output n = ops::Size(b_, indices);
  Output positions = ops::Range(b_, ops::Const(b_, int32_t{0}), n,
                                ops::Const(b_, int32_t{1}));
  routing.positions = ops::DynamicPartition(b_, positions, shard_ids, num);
  return routing;
}

Output ShardedEmbedding::Lookup(Output indices) {
  Routing routing = Route(indices);
  std::vector<Output> gathered;
  for (int s = 0; s < num_shards(); ++s) {
    Output g = ops::Gather(b_, shards_[s], routing.local_indices[s]);
    // Colocate the Gather with its shard: the lookup runs on the PS task
    // holding the rows, and only the gathered rows cross the network
    // (paper §4.2).
    if (g.valid()) {
      g.node->set_requested_device(shards_[s].node->requested_device());
    }
    gathered.push_back(g);
  }
  // "Stitch" reassembles the batch order.
  return ops::DynamicStitch(b_, routing.positions, gathered);
}

Node* ShardedEmbedding::SparseApplySgd(Output indices, Output grad,
                                       float learning_rate) {
  Routing routing = Route(indices);
  std::vector<Output> updates;
  for (int s = 0; s < num_shards(); ++s) {
    // Per-shard slice of the incoming gradient rows.
    Output grad_rows = ops::Gather(b_, grad, routing.positions[s]);
    Output update = b_->Op("SparseApplyGradientDescent")
                        .Input(shards_[s])
                        .Input(ops::Const(b_, learning_rate))
                        .Input(grad_rows)
                        .Input(routing.local_indices[s])
                        .Attr("T", DataType::kFloat)
                        .Attr("Tindices", DataType::kInt32)
                        .Finalize();
    if (update.valid()) {
      update.node->set_requested_device(
          shards_[s].node->requested_device());
    }
    updates.push_back(update);
  }
  return ops::Group(b_, updates, "");
}

}  // namespace nn
}  // namespace tfrepro
