// Softmax classification heads (paper §4.2 and §6.4):
//
//  * FullSoftmaxHead — multiplies the final hidden state by a [d, |V|]
//    weight matrix, optionally sharded across PS tasks with the matmul and
//    gradient colocated with the shards (the Project-Adam-style scheme the
//    paper describes);
//  * SampledSoftmaxHead — multiplies by a sparse random matrix containing
//    weights for the true class and a sample of false classes, reducing
//    softmax data transfer and compute by |V| / (num_sampled + 1)
//    (the "factor of 78" of §6.4 for |V|=40000, 512 samples).

#ifndef TFREPRO_NN_SOFTMAX_H_
#define TFREPRO_NN_SOFTMAX_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/ops.h"
#include "nn/layers.h"

namespace tfrepro {
namespace nn {

struct SoftmaxLoss {
  Output loss;     // scalar mean loss over the batch
  Output logits;   // per-class logits actually computed
};

class FullSoftmaxHead {
 public:
  // Weight shards are [d, |V|/k] column slices; shard i goes on
  // ps_device_fn(i) when provided.
  FullSoftmaxHead(VariableStore* store, const std::string& name,
                  int64_t hidden_dim, int64_t num_classes, int num_shards,
                  const std::function<std::string(int)>& ps_device_fn = {});

  // hidden: [batch, d]; labels: [batch] int64. Builds the sharded matmul
  // (each piece colocated with its weight shard) and the cross-entropy.
  SoftmaxLoss Loss(Output hidden, Output labels);

  const std::vector<Output>& shards() const { return shards_; }

 private:
  VariableStore* store_;
  GraphBuilder* b_;
  int64_t hidden_dim_;
  int64_t num_classes_;
  std::vector<Output> shards_;
  std::vector<Output> biases_;
};

class SampledSoftmaxHead {
 public:
  SampledSoftmaxHead(VariableStore* store, const std::string& name,
                     int64_t hidden_dim, int64_t num_classes,
                     int64_t num_sampled, int num_shards,
                     const std::function<std::string(int)>& ps_device_fn = {});

  // hidden: [batch, d]; labels: [batch] int64 (true classes). Computes
  // logits only for the true class and `num_sampled` random negatives.
  SoftmaxLoss Loss(Output hidden, Output labels);

  int64_t num_sampled() const { return num_sampled_; }

 private:
  VariableStore* store_;
  GraphBuilder* b_;
  int64_t hidden_dim_;
  int64_t num_classes_;
  int64_t num_sampled_;
  // The weight matrix is stored row-major [|V|, d] so that per-class rows
  // can be gathered through the sharded embedding machinery.
  std::unique_ptr<class ShardedEmbedding> weights_;
};

}  // namespace nn
}  // namespace tfrepro

#endif  // TFREPRO_NN_SOFTMAX_H_
