// Sharded embedding layer (paper §4.2, Figure 3): an n x d embedding matrix
// split across parameter-server tasks by mod-sharding; lookups route index
// subsets to each shard with DynamicPartition, Gather colocated with the
// shard, and DynamicStitch reassembling the result. The whole composition
// is built from primitive operations and is differentiable (each op has a
// registered gradient), exactly as the paper argues.

#ifndef TFREPRO_NN_EMBEDDING_H_
#define TFREPRO_NN_EMBEDDING_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/ops.h"
#include "nn/layers.h"

namespace tfrepro {
namespace nn {

class ShardedEmbedding {
 public:
  // Creates `num_shards` variables of ~vocab/num_shards rows each. If
  // `ps_device_fn` is provided, shard i is placed on ps_device_fn(i)
  // (e.g. "/job:ps/task:i" — paper §3.3 PS placement).
  ShardedEmbedding(VariableStore* store, const std::string& name,
                   int64_t vocab_size, int64_t dim, int num_shards,
                   const std::function<std::string(int)>& ps_device_fn = {});

  // Builds the Figure 3 lookup graph for a vector of int32 indices
  // [n] -> [n, dim]. Gathers run colocated with their shards.
  Output Lookup(Output indices);

  // Builds the explicit sparse update path (paper §4.2: "sparse update
  // operations that act on just the values that were originally gathered"):
  // SparseApplyGradientDescent per shard, colocated with the shard.
  // `grad` is d(loss)/d(lookup result) with shape [n, dim] and `indices`
  // the original lookup indices. Returns a group node.
  Node* SparseApplySgd(Output indices, Output grad, float learning_rate);

  const std::vector<Output>& shards() const { return shards_; }
  int64_t vocab_size() const { return vocab_size_; }
  int64_t dim() const { return dim_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  // Routes indices to shards; fills per-shard local row ids and the
  // positions needed to stitch results back.
  struct Routing {
    std::vector<Output> local_indices;  // per shard, row ids within shard
    std::vector<Output> positions;      // per shard, positions in the input
  };
  Routing Route(Output indices);

  VariableStore* store_;
  GraphBuilder* b_;
  int64_t vocab_size_;
  int64_t dim_;
  std::vector<Output> shards_;
};

}  // namespace nn
}  // namespace tfrepro

#endif  // TFREPRO_NN_EMBEDDING_H_
