#include "nn/rnn.h"

#include <cmath>

namespace tfrepro {
namespace nn {

LSTMCell::LSTMCell(VariableStore* store, const std::string& name,
                   int64_t input_dim, int64_t hidden_dim)
    : store_(store),
      b_(store->builder()),
      input_dim_(input_dim),
      hidden_dim_(hidden_dim) {
  float stddev =
      1.0f / std::sqrt(static_cast<float>(input_dim + hidden_dim));
  w_ = store->WeightVariable(
      name + "/w", TensorShape({input_dim + hidden_dim, 4 * hidden_dim}),
      stddev);
  bias_ = store->ZeroVariable(name + "/b", TensorShape({4 * hidden_dim}));
}

LSTMState LSTMCell::Step(Output x, const LSTMState& state) {
  Output xh = ops::Concat(b_, 1, {x, state.h});
  Output z = ops::BiasAdd(b_, ops::MatMul(b_, xh, w_), bias_);
  std::vector<Output> gates = ops::Split(b_, 1, z, 4);
  Output i = ops::Sigmoid(b_, gates[0]);
  Output j = ops::Tanh(b_, gates[1]);
  // Forget-gate bias of 1.0 for training stability (standard practice).
  Output f = ops::Sigmoid(b_, ops::Add(b_, gates[2], ops::Const(b_, 1.0f)));
  Output o = ops::Sigmoid(b_, gates[3]);
  LSTMState next;
  next.c = ops::Add(b_, ops::Mul(b_, state.c, f), ops::Mul(b_, i, j));
  next.h = ops::Mul(b_, ops::Tanh(b_, next.c), o);
  return next;
}

LSTMState LSTMCell::ZeroState(Output x_for_batch) {
  // batch = Shape(x)[0]; state shape = [batch, hidden].
  Output batch = ops::Reshape(
      b_, ops::Slice(b_, ops::Shape(b_, x_for_batch), {0}, {1}),
      std::vector<int32_t>{});
  Output dims = ops::Pack(
      b_, {batch, ops::Const(b_, static_cast<int32_t>(hidden_dim_))}, 0);
  LSTMState state;
  state.c = ops::Fill(b_, dims, ops::Const(b_, 0.0f));
  state.h = ops::Fill(b_, dims, ops::Const(b_, 0.0f));
  return state;
}

std::vector<Output> UnrollLSTM(LSTMCell* cell,
                               const std::vector<Output>& inputs) {
  std::vector<Output> outputs;
  if (inputs.empty()) return outputs;
  LSTMState state = cell->ZeroState(inputs[0]);
  for (const Output& x : inputs) {
    state = cell->Step(x, state);
    outputs.push_back(state.h);
  }
  return outputs;
}

}  // namespace nn
}  // namespace tfrepro
