#include "nn/build_model.h"

namespace tfrepro {
namespace nn {

Result<Output> BuildConvNet(VariableStore* store, Output images,
                            const ModelSpec& spec) {
  GraphBuilder* b = store->builder();
  Output x = images;
  bool flattened = false;
  int index = 0;
  for (const LayerSpec& layer : spec.layers) {
    const std::string name = spec.name + "/layer" + std::to_string(index++);
    switch (layer.kind) {
      case LayerSpec::Kind::kConv: {
        int64_t kw = layer.k2 != 0 ? layer.k2 : layer.k;
        if (kw != layer.k) {
          return Unimplemented(
              "BuildConvNet: rectangular kernels are cost-model-only");
        }
        x = ConvLayer(store, x, layer.in_c, layer.out_c, layer.k,
                      layer.stride, layer.same_padding ? "SAME" : "VALID",
                      Activation::kRelu, name);
        break;
      }
      case LayerSpec::Kind::kPool: {
        x = ops::MaxPool(b, x, {1, layer.k, layer.k, 1},
                         {1, layer.stride, layer.stride, 1},
                         layer.same_padding ? "SAME" : "VALID");
        break;
      }
      case LayerSpec::Kind::kFullyConnected: {
        if (!flattened) {
          x = ops::Reshape(
              b, x, {static_cast<int32_t>(spec.batch),
                     static_cast<int32_t>(layer.in_dim)});
          flattened = true;
        }
        // The last FC layer emits raw logits; inner ones get ReLU.
        bool last = index == static_cast<int>(spec.layers.size());
        x = Dense(store, x, layer.in_dim, layer.out_dim,
                  last ? Activation::kNone : Activation::kRelu, name);
        break;
      }
      case LayerSpec::Kind::kLstm:
      case LayerSpec::Kind::kSoftmax:
        return Unimplemented(
            "BuildConvNet handles conv/pool/fc specs; use LSTMCell / softmax "
            "heads for sequence models");
    }
    TF_RETURN_IF_ERROR(b->status());
  }
  return x;
}

}  // namespace nn
}  // namespace tfrepro
