// Builds runnable graphs from model-zoo layer specs, so the same
// definitions drive both the performance simulator (src/sim) and real
// executable models (DESIGN.md §5.7: one source of truth).

#ifndef TFREPRO_NN_BUILD_MODEL_H_
#define TFREPRO_NN_BUILD_MODEL_H_

#include "graph/graph_builder.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"

namespace tfrepro {
namespace nn {

// Constructs the forward graph of `spec` on NHWC input `images`
// ([batch, h, w, c] matching the spec's first layer). Conv layers get ReLU
// activations; pools follow the spec's kernel/stride; the first
// fully-connected layer flattens. Returns the logits. Supports linear
// (sequential) specs of kConv/kPool/kFullyConnected layers — AlexNet,
// Overfeat, OxfordNet and custom specs; the branched Inception module lists
// (GoogleNet, Inception-v3) describe per-branch costs for the simulator and
// are not sequentially runnable. kLstm/kSoftmax specs are built by the
// dedicated rnn/softmax modules.
Result<Output> BuildConvNet(VariableStore* store, Output images,
                            const ModelSpec& spec);

}  // namespace nn
}  // namespace tfrepro

#endif  // TFREPRO_NN_BUILD_MODEL_H_
