// Neural-network layers: user-level compositions of standard operations
// (paper §5: "users compose standard operations to build higher-level
// abstractions, such as neural network layers").
//
// A VariableStore tracks every variable a model creates together with its
// initializer, so examples can build one init op and hand the variable list
// to optimizers and savers.

#ifndef TFREPRO_NN_LAYERS_H_
#define TFREPRO_NN_LAYERS_H_

#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/ops.h"

namespace tfrepro {
namespace nn {

enum class Activation { kNone, kRelu, kTanh, kSigmoid };

class VariableStore {
 public:
  explicit VariableStore(GraphBuilder* b, int64_t seed = 7)
      : b_(b), seed_(seed) {}

  // Creates a variable with a truncated-normal initializer scaled by
  // 1/sqrt(fan_in) (the standard dense-layer init).
  Output WeightVariable(const std::string& name, const TensorShape& shape,
                        float stddev);

  // Creates a zero-initialized variable.
  Output ZeroVariable(const std::string& name, const TensorShape& shape);

  // All variables created so far (pass to Optimizer / Saver).
  const std::vector<Output>& variables() const { return variables_; }

  // One group node running every initializer.
  Node* BuildInitOp(const std::string& name = "init");

  // Merge another store's initializers (e.g. optimizer slots).
  void AddInitializer(Output assign_op) { inits_.push_back(assign_op); }

  GraphBuilder* builder() const { return b_; }

 private:
  GraphBuilder* b_;
  int64_t seed_;
  std::vector<Output> variables_;
  std::vector<Output> inits_;
};

// Fully-connected layer: activation(x W + b). x: [batch, in].
Output Dense(VariableStore* store, Output x, int64_t in_dim, int64_t units,
             Activation activation, const std::string& name);

// 2-D convolution layer (NHWC): activation(conv(x, W) + b).
Output ConvLayer(VariableStore* store, Output x, int64_t in_channels,
                 int64_t filters, int64_t ksize, int64_t stride,
                 const std::string& padding, Activation activation,
                 const std::string& name);

Output ApplyActivation(GraphBuilder* b, Output x, Activation activation);

}  // namespace nn
}  // namespace tfrepro

#endif  // TFREPRO_NN_LAYERS_H_
