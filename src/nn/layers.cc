#include "nn/layers.h"

#include <cmath>

namespace tfrepro {
namespace nn {

Output VariableStore::WeightVariable(const std::string& name,
                                     const TensorShape& shape, float stddev) {
  Output var = ops::Variable(b_, DataType::kFloat, shape, name);
  std::vector<int32_t> dims;
  for (int i = 0; i < shape.rank(); ++i) {
    dims.push_back(static_cast<int32_t>(shape.dim(i)));
  }
  Output init_value = ops::TruncatedNormal(b_, dims, DataType::kFloat, seed_++);
  Output scaled = ops::Mul(b_, init_value, ops::Const(b_, stddev));
  Output assign = ops::Assign(b_, var, scaled);
  if (assign.valid() && var.valid()) {
    assign.node->set_requested_device(var.node->requested_device());
  }
  variables_.push_back(var);
  inits_.push_back(assign);
  return var;
}

Output VariableStore::ZeroVariable(const std::string& name,
                                   const TensorShape& shape) {
  Output var = ops::Variable(b_, DataType::kFloat, shape, name);
  std::vector<int32_t> dims;
  for (int i = 0; i < shape.rank(); ++i) {
    dims.push_back(static_cast<int32_t>(shape.dim(i)));
  }
  Output zeros =
      ops::Fill(b_, ops::ConstVecI32(b_, dims), ops::Const(b_, 0.0f));
  Output assign = ops::Assign(b_, var, zeros);
  if (assign.valid() && var.valid()) {
    assign.node->set_requested_device(var.node->requested_device());
  }
  variables_.push_back(var);
  inits_.push_back(assign);
  return var;
}

Node* VariableStore::BuildInitOp(const std::string& name) {
  return ops::Group(b_, inits_, name);
}

Output ApplyActivation(GraphBuilder* b, Output x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ops::Relu(b, x);
    case Activation::kTanh:
      return ops::Tanh(b, x);
    case Activation::kSigmoid:
      return ops::Sigmoid(b, x);
  }
  return x;
}

Output Dense(VariableStore* store, Output x, int64_t in_dim, int64_t units,
             Activation activation, const std::string& name) {
  GraphBuilder* b = store->builder();
  float stddev = 1.0f / std::sqrt(static_cast<float>(in_dim));
  Output w = store->WeightVariable(name + "/w", TensorShape({in_dim, units}),
                                   stddev);
  Output bias = store->ZeroVariable(name + "/b", TensorShape({units}));
  Output z = ops::BiasAdd(b, ops::MatMul(b, x, w), bias);
  return ApplyActivation(b, z, activation);
}

Output ConvLayer(VariableStore* store, Output x, int64_t in_channels,
                 int64_t filters, int64_t ksize, int64_t stride,
                 const std::string& padding, Activation activation,
                 const std::string& name) {
  GraphBuilder* b = store->builder();
  float stddev =
      1.0f / std::sqrt(static_cast<float>(ksize * ksize * in_channels));
  Output w = store->WeightVariable(
      name + "/filter", TensorShape({ksize, ksize, in_channels, filters}),
      stddev);
  Output bias = store->ZeroVariable(name + "/b", TensorShape({filters}));
  Output conv = ops::Conv2D(b, x, w, {1, stride, stride, 1}, padding);
  Output z = ops::BiasAdd(b, conv, bias);
  return ApplyActivation(b, z, activation);
}

}  // namespace nn
}  // namespace tfrepro
