// LSTM cell and static unrolling. The paper's language model (§6.4) is an
// LSTM-512-512 over the One Billion Word Benchmark; recurrent models here
// are differentiated by unrolling timesteps statically (see
// autodiff/gradients.h for the dynamic-control-flow limitation).

#ifndef TFREPRO_NN_RNN_H_
#define TFREPRO_NN_RNN_H_

#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/ops.h"
#include "nn/layers.h"

namespace tfrepro {
namespace nn {

struct LSTMState {
  Output c;
  Output h;
};

class LSTMCell {
 public:
  // One weight matrix [input_dim + hidden, 4 * hidden] and bias [4*hidden],
  // the standard fused-gate layout.
  LSTMCell(VariableStore* store, const std::string& name, int64_t input_dim,
           int64_t hidden_dim);

  // One timestep: returns the new state; state.h is the output.
  LSTMState Step(Output x, const LSTMState& state);

  // A zero state sized to x's batch dimension (dynamic).
  LSTMState ZeroState(Output x_for_batch);

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  VariableStore* store_;
  GraphBuilder* b_;
  int64_t input_dim_;
  int64_t hidden_dim_;
  Output w_;
  Output bias_;
};

// Statically unrolls `cell` over `steps` inputs; returns per-step outputs.
std::vector<Output> UnrollLSTM(LSTMCell* cell,
                               const std::vector<Output>& inputs);

}  // namespace nn
}  // namespace tfrepro

#endif  // TFREPRO_NN_RNN_H_
