// FreezeGraph: turns a trained graph + checkpoint into a self-contained
// inference graph (the deploy-for-serving path of paper §1–§2: the same
// dataflow graph that was trained is what gets served). Each Variable is
// replaced by a Const node holding its checkpointed value, training-only
// subgraphs (optimizer updates, initializers, Save/Restore) are stripped by
// pruning to the inference fetches, and the result is cleaned up with the
// standard optimizer passes (identity elision, CSE, constant folding) so
// weight math that no longer depends on runtime inputs folds away.
//
// The frozen graph has no mutable state on the inference path, which is
// what makes a Servable immutable and safe to run from many client threads
// with zero coordination (see servable.h).

#ifndef TFREPRO_SERVING_FREEZE_H_
#define TFREPRO_SERVING_FREEZE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "graph/graph.h"
#include "runtime/graph_optimizer.h"

namespace tfrepro {
namespace serving {

struct FreezeOptions {
  // Optimizer passes run on the frozen graph — the same session-level tier
  // DirectSession/MasterSession run at compile time (DESIGN.md §13),
  // including element-wise fusion. The fetch names are added to
  // `optimizer.preserve` automatically.
  OptimizerOptions optimizer;
};

// Freezes `graph` against the checkpoint written as `checkpoint_files`
// (one file per Saver task group; a single-process checkpoint is the one
// file "<prefix>-<step>"). `fetches` name the inference outputs
// ("node" or "node:port"); the graph is pruned to what they need.
//
// Errors:
//   * NotFound          — a live Variable has no tensor in the checkpoint;
//   * FailedPrecondition — a ref-consuming op (Assign, ScatterAdd, ...)
//     survives pruning, i.e. `fetches` reach training-only state updates.
Result<std::unique_ptr<Graph>> FreezeGraph(
    const Graph& graph, const std::vector<std::string>& checkpoint_files,
    const std::vector<std::string>& fetches,
    const FreezeOptions& options = FreezeOptions());

}  // namespace serving
}  // namespace tfrepro

#endif  // TFREPRO_SERVING_FREEZE_H_
