#include "serving/batcher.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "core/metrics.h"
#include "runtime/tracing.h"

namespace tfrepro {
namespace serving {

namespace {

std::vector<double> BatchSizeBounds(int64_t max_batch_size) {
  std::vector<double> bounds;
  for (int64_t b = 1; b < max_batch_size; b *= 2) {
    bounds.push_back(static_cast<double>(b));
  }
  bounds.push_back(static_cast<double>(max_batch_size));
  return bounds;
}

}  // namespace

DynamicBatcher::DynamicBatcher(ServableProvider provider, Options options)
    : provider_(std::move(provider)), options_(std::move(options)) {
  // Create the instruments eagerly so snapshots taken before the first
  // request still see them (and so the batch-size bounds come from our
  // policy, not a later caller's default).
  metrics::Registry* reg = metrics::Registry::Global();
  reg->GetCounter("serving.requests");
  reg->GetCounter("serving.batches");
  reg->GetCounter("serving.rejected");
  reg->GetGauge("serving.queue_depth");
  reg->GetHistogram("serving.batch_size",
                    BatchSizeBounds(options_.max_batch_size));
  reg->GetHistogram("serving.request_ms",
                    metrics::Histogram::DefaultLatencyBucketsMs());
  reg->GetHistogram("serving.batch_run_ms",
                    metrics::Histogram::DefaultLatencyBucketsMs());
  const int n = std::max(1, options_.num_batch_threads);
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { BatchLoop(); });
  }
}

DynamicBatcher::~DynamicBatcher() { Shutdown(); }

Status DynamicBatcher::Enqueue(Tensor example, DoneCallback done) {
  if (!example.IsInitialized()) {
    return InvalidArgument("cannot serve an uninitialized tensor");
  }
  if (BaseType(example.dtype()) == DataType::kString) {
    return InvalidArgument("string tensors are not batchable");
  }
  metrics::Registry* reg = metrics::Registry::Global();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Unavailable("batcher is shut down");
    }
    if (static_cast<int64_t>(queue_.size()) >= options_.max_enqueued) {
      reg->GetCounter("serving.rejected")->Increment();
      return Unavailable("serving queue full (" +
                         std::to_string(options_.max_enqueued) +
                         " requests enqueued)");
    }
    queue_.push_back(Request{std::move(example), std::move(done),
                             metrics::NowMicros()});
    reg->GetGauge("serving.queue_depth")
        ->Set(static_cast<int64_t>(queue_.size()));
  }
  reg->GetCounter("serving.requests")->Increment();
  cv_.notify_one();
  return Status::OK();
}

DynamicBatcher::Response DynamicBatcher::RunOne(Tensor example) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  Status s = Enqueue(std::move(example), [&promise](Response r) {
    promise.set_value(std::move(r));
  });
  if (!s.ok()) {
    Response r;
    r.status = s;
    return r;
  }
  return future.get();
}

void DynamicBatcher::Shutdown() {
  std::deque<Request> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    drained.swap(queue_);
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  for (Request& r : drained) {
    Response resp;
    resp.status = Cancelled("batcher shut down before dispatch");
    r.done(std::move(resp));
  }
  metrics::Registry::Global()->GetGauge("serving.queue_depth")->Set(0);
}

int64_t DynamicBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void DynamicBatcher::BatchLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      // Dispatch when the batch fills or the oldest request has waited out
      // the timeout — whichever comes first.
      const int64_t deadline =
          queue_.front().enqueue_micros + options_.batch_timeout_us;
      while (static_cast<int64_t>(queue_.size()) < options_.max_batch_size &&
             !shutdown_) {
        const int64_t now = metrics::NowMicros();
        if (now >= deadline) break;
        cv_.wait_for(lock, std::chrono::microseconds(deadline - now));
      }
      if (shutdown_) return;
      const int64_t take = std::min<int64_t>(
          static_cast<int64_t>(queue_.size()), options_.max_batch_size);
      batch.reserve(take);
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics::Registry::Global()
          ->GetGauge("serving.queue_depth")
          ->Set(static_cast<int64_t>(queue_.size()));
    }
    // More work may remain (e.g. a burst larger than max_batch_size);
    // wake a sibling before running the model.
    cv_.notify_one();
    ExecuteBatch(std::move(batch));
  }
}

void DynamicBatcher::ExecuteBatch(std::vector<Request> batch) {
  if (batch.empty()) return;
  metrics::Registry* reg = metrics::Registry::Global();
  const int64_t dispatch_micros = metrics::NowMicros();
  for (const Request& r : batch) {
    RecordGlobalSpan("serving.queue_wait", /*scope=*/"serving",
                     r.enqueue_micros, dispatch_micros);
  }

  auto fail_all = [&](const Status& s) {
    for (Request& r : batch) {
      Response resp;
      resp.status = s;
      r.done(std::move(resp));
    }
  };

  std::shared_ptr<const Servable> servable = provider_();
  if (servable == nullptr) {
    fail_all(FailedPrecondition("no servable published"));
    return;
  }

  // Requests whose dtype/shape disagree with the head of the batch get an
  // individual error; the rest still batch together.
  const Tensor& head = batch[0].example;
  const size_t row_bytes = head.TotalBytes();
  std::vector<Request*> members;
  members.reserve(batch.size());
  for (Request& r : batch) {
    if (r.example.dtype() != head.dtype() ||
        !(r.example.shape() == head.shape())) {
      Response resp;
      resp.status = InvalidArgument(
          "example shape/dtype mismatch within batch: got " +
          r.example.shape().DebugString() + ", batch head has " +
          head.shape().DebugString());
      r.done(std::move(resp));
      continue;
    }
    members.push_back(&r);
  }
  if (members.empty()) return;

  const int64_t k = static_cast<int64_t>(members.size());
  std::vector<int64_t> batched_dims;
  batched_dims.push_back(k);
  for (int i = 0; i < head.shape().rank(); ++i) {
    batched_dims.push_back(head.dim(i));
  }
  Tensor batched(head.dtype(), TensorShape(batched_dims));
  for (int64_t i = 0; i < k; ++i) {
    std::memcpy(batched.raw_data() + i * row_bytes,
                members[i]->example.raw_data(), row_bytes);
  }

  reg->GetCounter("serving.batches")->Increment();
  reg->GetHistogram("serving.batch_size")->Record(static_cast<double>(k));

  std::vector<Tensor> outputs;
  const int64_t run_start = metrics::NowMicros();
  Status run_status = servable->Run(batched, &outputs);
  const int64_t run_end = metrics::NowMicros();
  reg->GetHistogram("serving.batch_run_ms")
      ->Record(static_cast<double>(run_end - run_start) / 1000.0);

  if (!run_status.ok()) {
    for (Request* r : members) {
      Response resp;
      resp.status = run_status;
      resp.version = servable->version();
      r->done(std::move(resp));
    }
    return;
  }

  metrics::Histogram* request_ms = reg->GetHistogram("serving.request_ms");
  for (int64_t i = 0; i < k; ++i) {
    Response resp;
    resp.version = servable->version();
    resp.outputs.reserve(outputs.size());
    for (const Tensor& out : outputs) {
      if (out.shape().rank() >= 1 && out.dim(0) == k) {
        Result<Tensor> row = out.SliceRows(i, 1);
        if (!row.ok()) {
          resp.status = row.status();
          break;
        }
        // Drop the batch dimension: [1, ...] -> [...].
        std::vector<int64_t> dims;
        for (int d = 1; d < out.shape().rank(); ++d) {
          dims.push_back(out.dim(d));
        }
        Result<Tensor> squeezed = row.value().Reshaped(TensorShape(dims));
        if (!squeezed.ok()) {
          resp.status = squeezed.status();
          break;
        }
        resp.outputs.push_back(std::move(squeezed).value());
      } else {
        // Output without a per-example batch dimension (e.g. a scalar
        // temperature): every request sees the same value.
        resp.outputs.push_back(out);
      }
    }
    request_ms->Record(
        static_cast<double>(run_end - members[i]->enqueue_micros) / 1000.0);
    members[i]->done(std::move(resp));
  }
}

}  // namespace serving
}  // namespace tfrepro
