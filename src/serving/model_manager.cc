#include "serving/model_manager.h"

#include "core/metrics.h"

namespace tfrepro {
namespace serving {

Status ModelManager::Publish(const std::string& model,
                             std::shared_ptr<const Servable> servable) {
  if (servable == nullptr) {
    return InvalidArgument("cannot publish a null servable");
  }
  const int64_t version = servable->version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = models_[model];
    auto [it, inserted] = entry.versions.emplace(version,
                                                 std::move(servable));
    if (!inserted) {
      return AlreadyExists("model '" + model + "' version " +
                           std::to_string(version) + " already published");
    }
    entry.current = version;
  }
  metrics::Registry* reg = metrics::Registry::Global();
  reg->GetCounter("serving.publishes")->Increment();
  reg->GetGauge("serving.active_version", {{"model", model}})->Set(version);
  return Status::OK();
}

std::shared_ptr<const Servable> ModelManager::Current(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(model);
  if (it == models_.end() || it->second.current < 0) return nullptr;
  auto vit = it->second.versions.find(it->second.current);
  return vit == it->second.versions.end() ? nullptr : vit->second;
}

std::shared_ptr<const Servable> ModelManager::Version(
    const std::string& model, int64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(model);
  if (it == models_.end()) return nullptr;
  auto vit = it->second.versions.find(version);
  return vit == it->second.versions.end() ? nullptr : vit->second;
}

Status ModelManager::Unpublish(const std::string& model, int64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(model);
  if (it == models_.end() || it->second.versions.count(version) == 0) {
    return NotFound("model '" + model + "' version " +
                    std::to_string(version) + " is not published");
  }
  if (it->second.current == version) {
    return FailedPrecondition(
        "model '" + model + "' version " + std::to_string(version) +
        "' is the current version; publish a replacement first");
  }
  it->second.versions.erase(version);
  return Status::OK();
}

std::vector<int64_t> ModelManager::Versions(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> out;
  auto it = models_.find(model);
  if (it != models_.end()) {
    for (const auto& [v, s] : it->second.versions) out.push_back(v);
  }
  return out;
}

}  // namespace serving
}  // namespace tfrepro
