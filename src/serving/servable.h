// Servable: one immutable, versioned, ready-to-serve model — a frozen
// inference graph (see freeze.h) compiled into a DirectSession whose step
// signature is pre-warmed. A Servable never changes after Create: model
// upgrades publish a NEW Servable under the next version and the manager
// swaps the routing pointer (model_manager.h), so a servable handed to a
// request stays valid (ref-counted via shared_ptr) until the last in-flight
// request finishes — the zero-downtime hot-swap protocol.
//
// Run() is safe from any number of threads concurrently (DirectSession's
// concurrent-Run guarantees; the frozen graph holds no mutable state on the
// inference path).

#ifndef TFREPRO_SERVING_SERVABLE_H_
#define TFREPRO_SERVING_SERVABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"
#include "graph/graph.h"
#include "runtime/session.h"

namespace tfrepro {
namespace serving {

// Names the serving interface of a model: one batched input placeholder and
// the outputs to fetch. All tensors carry the batch dimension in dim 0.
struct SignatureDef {
  std::string input;                 // feed name ("x")
  std::vector<std::string> outputs;  // fetch names ("logits", "probs:0")
};

class Servable {
 public:
  struct Options {
    SessionOptions session;
  };

  // Compiles `frozen_graph` (which must contain no Variable nodes — freeze
  // first) into a session and pre-warms the signature's executors, so the
  // first request — and every concurrent first request — runs on the cached
  // fast path.
  static Result<std::shared_ptr<const Servable>> Create(
      const Graph& frozen_graph, SignatureDef signature, int64_t version,
      const Options& options = Options());

  // Runs one batch: `batch` feeds the signature input ([n, ...example]),
  // `outputs` receives one tensor per signature output (dim 0 == n).
  // Thread-safe.
  Status Run(const Tensor& batch, std::vector<Tensor>* outputs) const;

  int64_t version() const { return version_; }
  const SignatureDef& signature() const { return signature_; }

 private:
  Servable(SignatureDef signature, int64_t version,
           std::unique_ptr<DirectSession> session)
      : signature_(std::move(signature)),
        version_(version),
        session_(std::move(session)) {}

  const SignatureDef signature_;
  const int64_t version_;
  const std::unique_ptr<DirectSession> session_;
};

}  // namespace serving
}  // namespace tfrepro

#endif  // TFREPRO_SERVING_SERVABLE_H_
