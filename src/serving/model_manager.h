// ModelManager: version routing for servables. Each model name maps to a
// set of immutable Servable versions plus a "current" alias that new
// requests resolve through. Publishing a new version is a zero-downtime
// hot-swap: the alias flips under the manager mutex, requests already
// holding the old version's shared_ptr finish on it, and the old Servable
// is destroyed when its last in-flight request drops the reference. Old
// versions stay resolvable by explicit number (pinned clients, A/B reads)
// until Unpublish.

#ifndef TFREPRO_SERVING_MODEL_MANAGER_H_
#define TFREPRO_SERVING_MODEL_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "serving/servable.h"

namespace tfrepro {
namespace serving {

class ModelManager {
 public:
  // Adds `servable` under its version and makes it the current version for
  // `model`. AlreadyExists if that version number is already published.
  Status Publish(const std::string& model,
                 std::shared_ptr<const Servable> servable);

  // The current version's servable; nullptr when the model is unknown.
  // The returned reference keeps the servable alive across a concurrent
  // Publish — callers finish their request on the version they resolved.
  std::shared_ptr<const Servable> Current(const std::string& model) const;

  // A pinned version; nullptr when absent.
  std::shared_ptr<const Servable> Version(const std::string& model,
                                          int64_t version) const;

  // Drops a retired version. FailedPrecondition while it is still current.
  Status Unpublish(const std::string& model, int64_t version);

  // Published version numbers, ascending.
  std::vector<int64_t> Versions(const std::string& model) const;

 private:
  struct Entry {
    std::map<int64_t, std::shared_ptr<const Servable>> versions;
    int64_t current = -1;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> models_;
};

}  // namespace serving
}  // namespace tfrepro

#endif  // TFREPRO_SERVING_MODEL_MANAGER_H_
