// DynamicBatcher: coalesces concurrent single-example inference requests
// into batched Session::Run calls (the serving analogue of the paper's
// batched training step: one matmul over [k, d] amortizes kernel dispatch,
// executor wakeups and cache traffic over k requests).
//
// Policy knobs mirror the classic serving batcher:
//   * max_batch_size   — a full batch dispatches immediately;
//   * batch_timeout_us — a partial batch dispatches once its OLDEST request
//     has waited this long (bounded latency under light load);
//   * max_enqueued     — admission control: beyond this many queued
//     requests Enqueue fails fast with Unavailable instead of building an
//     unbounded backlog (callers see backpressure, "serving.rejected"
//     counts it).
//
// The batcher resolves its servable through a provider callback at batch
// dispatch time, so a ModelManager hot-swap applies at the next batch
// boundary: every request in one batch is answered by exactly one version
// (no torn state), and responses carry that version.
//
// Observability: serving.requests / serving.batches / serving.rejected
// counters, serving.queue_depth gauge, serving.batch_size and
// serving.request_ms / serving.batch_run_ms histograms, plus a
// "serving.queue_wait" trace span per request (visible on the Chrome trace
// "waits" row when a capture_global_events TraceCollector is live).

#ifndef TFREPRO_SERVING_BATCHER_H_
#define TFREPRO_SERVING_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"
#include "serving/servable.h"

namespace tfrepro {
namespace serving {

class DynamicBatcher {
 public:
  struct Options {
    int64_t max_batch_size = 32;
    int64_t batch_timeout_us = 1000;
    int64_t max_enqueued = 1024;
    // Batch threads run dispatched batches concurrently (DirectSession
    // supports concurrent Run); >1 overlaps a forming batch with a running
    // one when the model is slower than arrival.
    int num_batch_threads = 1;
  };

  // Resolved at every batch dispatch; returning nullptr fails that batch's
  // requests with FailedPrecondition.
  using ServableProvider =
      std::function<std::shared_ptr<const Servable>()>;

  struct Response {
    Status status;
    // One tensor per signature output, batch dimension stripped
    // (request example [d] -> output row [c]).
    std::vector<Tensor> outputs;
    // Servable version that answered (-1 on pre-dispatch failure).
    int64_t version = -1;
  };
  using DoneCallback = std::function<void(Response)>;

  DynamicBatcher(ServableProvider provider, Options options);
  ~DynamicBatcher();

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  // Enqueues one example (shape = the example WITHOUT its batch dimension;
  // a [d]-vector for an MLP, [h,w,c] for a convnet). `done` runs exactly
  // once, on a batch thread. Fails fast — without invoking `done` — with
  // Unavailable when the queue holds max_enqueued requests (backpressure)
  // or the batcher is shut down, and InvalidArgument for string tensors.
  Status Enqueue(Tensor example, DoneCallback done);

  // Synchronous convenience: Enqueue + wait. Enqueue failures come back as
  // Response.status.
  Response RunOne(Tensor example);

  // Fails queued requests with Cancelled and joins the batch threads.
  // Idempotent; also run by the destructor.
  void Shutdown();

  int64_t queue_depth() const;

 private:
  struct Request {
    Tensor example;
    DoneCallback done;
    int64_t enqueue_micros = 0;
  };

  void BatchLoop();
  void ExecuteBatch(std::vector<Request> batch);

  const ServableProvider provider_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace serving
}  // namespace tfrepro

#endif  // TFREPRO_SERVING_BATCHER_H_
