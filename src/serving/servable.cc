#include "serving/servable.h"

namespace tfrepro {
namespace serving {

Result<std::shared_ptr<const Servable>> Servable::Create(
    const Graph& frozen_graph, SignatureDef signature, int64_t version,
    const Options& options) {
  if (signature.input.empty() || signature.outputs.empty()) {
    return InvalidArgument("servable signature needs an input and outputs");
  }
  for (const Node* node : frozen_graph.nodes()) {
    if (node->IsVariable()) {
      return FailedPrecondition(
          "servable graph contains variable '" + node->name() +
          "' — freeze the graph against a checkpoint first (freeze.h)");
    }
  }
  std::string input_name;
  int port;
  ParseInputName(signature.input, &input_name, &port);
  if (frozen_graph.FindNode(input_name) == nullptr) {
    return NotFound("signature input '" + signature.input +
                    "' not in graph");
  }

  Result<std::unique_ptr<DirectSession>> session =
      DirectSession::Create(frozen_graph, options.session);
  TF_RETURN_IF_ERROR(session.status());
  TF_RETURN_IF_ERROR(session.value()->Warmup({signature.input},
                                             signature.outputs, {}));
  return std::shared_ptr<const Servable>(new Servable(
      std::move(signature), version, std::move(session).value()));
}

Status Servable::Run(const Tensor& batch,
                     std::vector<Tensor>* outputs) const {
  return session_->Run({{signature_.input, batch}}, signature_.outputs, {},
                       outputs);
}

}  // namespace serving
}  // namespace tfrepro
