#include "serving/freeze.h"

#include <map>

#include "core/threadpool.h"
#include "graph/subgraph.h"
#include "kernels/checkpoint_format.h"
#include "runtime/device.h"

namespace tfrepro {
namespace serving {

namespace {

// Replaces `var` with a Const node of the same name holding `value`,
// rewiring every consumer. The variable's ref output feeding a value input
// becomes a plain value edge; ref-consuming inputs were rejected earlier.
Status ReplaceVariableWithConst(Graph* graph, Node* var,
                                const Tensor& value) {
  struct SavedEdge {
    Node* dst;
    int dst_input;
    bool control;
  };
  std::vector<SavedEdge> out_edges;
  for (const Edge* e : var->out_edges()) {
    out_edges.push_back({e->dst, e->dst_input, e->IsControlEdge()});
  }
  // In-edges (initializer control deps) vanish with the node.
  NodeDef def;
  def.name = var->name();
  def.op = "Const";
  def.device = var->requested_device();
  def.attrs["dtype"] = AttrValue(BaseType(var->output_type(0)));
  def.attrs["value"] = AttrValue(value);
  graph->RemoveNode(var);  // frees the name for the Const
  Result<Node*> cnode = graph->AddNode(std::move(def));
  TF_RETURN_IF_ERROR(cnode.status());
  for (const SavedEdge& e : out_edges) {
    if (e.control) {
      graph->AddControlEdge(cnode.value(), e.dst);
    } else {
      TF_RETURN_IF_ERROR(
          graph->AddEdge(cnode.value(), 0, e.dst, e.dst_input).status());
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Graph>> FreezeGraph(
    const Graph& graph, const std::vector<std::string>& checkpoint_files,
    const std::vector<std::string>& fetches,
    const FreezeOptions& options) {
  std::unique_ptr<Graph> frozen = graph.Clone();

  // Prune to the inference subgraph: everything not reachable backwards
  // from the fetches — optimizer updates, initializers, Save/Restore — goes.
  std::vector<Node*> roots;
  std::set<std::string> root_names;
  for (const std::string& fetch : fetches) {
    std::string name;
    int port;
    ParseInputName(fetch, &name, &port);
    Node* node = frozen->FindNode(name);
    if (node == nullptr) {
      return NotFound("freeze fetch '" + fetch + "' not in graph");
    }
    roots.push_back(node);
    root_names.insert(name);
  }
  PruneForReverseReachability(frozen.get(), std::move(roots));

  // Index the checkpoint: variable name -> file holding its tensor.
  std::map<std::string, std::string> tensor_file;
  for (const std::string& file : checkpoint_files) {
    Result<std::vector<std::string>> names = ListCheckpointTensors(file);
    TF_RETURN_IF_ERROR(names.status());
    for (const std::string& n : names.value()) tensor_file[n] = file;
  }

  // Fold each surviving Variable into a Const.
  std::vector<Node*> variables;
  for (Node* node : frozen->nodes()) {
    if (node->IsVariable()) variables.push_back(node);
  }
  for (Node* var : variables) {
    for (const Edge* e : var->out_edges()) {
      if (!e->IsControlEdge() &&
          IsRefType(e->dst->input_type(e->dst_input))) {
        return FailedPrecondition(
            "cannot freeze: variable '" + var->name() +
            "' still feeds ref-consuming op '" + e->dst->op() + " '" +
            e->dst->name() +
            "' after pruning — the fetches reach a training-only state "
            "update; fetch only inference outputs");
      }
    }
    auto it = tensor_file.find(var->name());
    if (it == tensor_file.end()) {
      return NotFound("variable '" + var->name() +
                      "' has no tensor in the checkpoint");
    }
    Result<Tensor> value = ReadCheckpointTensor(it->second, var->name());
    TF_RETURN_IF_ERROR(value.status());
    TF_RETURN_IF_ERROR(
        ReplaceVariableWithConst(frozen.get(), var, value.value()));
  }

  // Standard cleanup passes over the now-stateless graph. The fetch roots
  // must survive under their own names — unlike session compilation there
  // are no _Fetch nodes shielding them.
  OptimizerOptions opt = options.optimizer;
  opt.preserve.insert(root_names.begin(), root_names.end());
  ThreadPool pool("freeze", 1);
  std::unique_ptr<Device> device = NewCpuDevice("freeze", 0, 0, &pool);
  TF_RETURN_IF_ERROR(OptimizeGraph(frozen.get(), device.get(), opt));

  return frozen;
}

}  // namespace serving
}  // namespace tfrepro
