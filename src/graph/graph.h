// The dataflow graph (paper §3): vertices are operations, edges carry
// tensors; special control edges enforce ordering without carrying data.

#ifndef TFREPRO_GRAPH_GRAPH_H_
#define TFREPRO_GRAPH_GRAPH_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/status.h"
#include "graph/attr_value.h"
#include "graph/op_def.h"
#include "graph/op_registry.h"

namespace tfrepro {

class Graph;
class Node;

// Port number used for control edges.
constexpr int kControlSlot = -1;

struct Edge {
  Node* src = nullptr;
  int src_output = 0;  // kControlSlot for control edges
  Node* dst = nullptr;
  int dst_input = 0;  // kControlSlot for control edges

  bool IsControlEdge() const { return src_output == kControlSlot; }
};

// The serializable definition of one node.
struct NodeDef {
  std::string name;
  std::string op;
  std::vector<std::string> inputs;  // "node", "node:port", or "^node"
  std::string device;               // requested device (may be partial)
  AttrMap attrs;
};

class Node {
 public:
  int id() const { return id_; }
  const std::string& name() const { return def_.name; }
  const std::string& op() const { return def_.op; }
  const OpDef& op_def() const { return *op_def_; }
  const NodeDef& def() const { return def_; }

  const AttrMap& attrs() const { return def_.attrs; }
  const AttrValue* FindAttr(const std::string& name) const;
  // Attr lookup falling back to the OpDef default; asserts presence.
  const AttrValue& GetAttr(const std::string& name) const;
  bool HasAttr(const std::string& name) const;
  void SetAttr(const std::string& name, AttrValue value);

  int num_inputs() const { return static_cast<int>(input_types_.size()); }
  int num_outputs() const { return static_cast<int>(output_types_.size()); }
  DataType input_type(int i) const { return input_types_[i]; }
  DataType output_type(int i) const { return output_types_[i]; }
  const DataTypeVector& input_types() const { return input_types_; }
  const DataTypeVector& output_types() const { return output_types_; }

  const std::string& requested_device() const { return def_.device; }
  const std::string& assigned_device() const { return assigned_device_; }
  void set_assigned_device(const std::string& device) {
    assigned_device_ = device;
  }
  void set_requested_device(const std::string& device) {
    def_.device = device;
  }

  // All edges (data edges are NOT sorted by dst_input here).
  const std::vector<const Edge*>& in_edges() const { return in_edges_; }
  const std::vector<const Edge*>& out_edges() const { return out_edges_; }

  // The data edge feeding input slot `i`, or error if missing.
  Result<const Edge*> input_edge(int i) const;
  // All data input edges ordered by dst_input.
  std::vector<const Edge*> ordered_data_inputs() const;

  bool IsOp(const std::string& op) const { return def_.op == op; }
  bool IsSwitch() const { return IsOp("Switch") || IsOp("RefSwitch"); }
  bool IsMerge() const { return IsOp("Merge") || IsOp("RefMerge"); }
  bool IsEnter() const { return IsOp("Enter") || IsOp("RefEnter"); }
  bool IsExit() const { return IsOp("Exit"); }
  bool IsNextIteration() const { return IsOp("NextIteration"); }
  bool IsLoopCond() const { return IsOp("LoopCond"); }
  bool IsControlFlow() const {
    return IsSwitch() || IsMerge() || IsEnter() || IsExit() ||
           IsNextIteration() || IsLoopCond();
  }
  bool IsSend() const { return IsOp("_Send"); }
  bool IsRecv() const { return IsOp("_Recv"); }
  bool IsConstant() const { return IsOp("Const"); }
  bool IsVariable() const { return IsOp("Variable"); }
  bool IsStateful() const { return op_def_->is_stateful(); }

  std::string DebugString() const;

 private:
  friend class Graph;
  int id_ = -1;
  NodeDef def_;
  const OpDef* op_def_ = nullptr;
  std::string assigned_device_;
  DataTypeVector input_types_;
  DataTypeVector output_types_;
  std::vector<const Edge*> in_edges_;
  std::vector<const Edge*> out_edges_;
};

class Graph {
 public:
  explicit Graph(const OpRegistry* registry = OpRegistry::Global());
  ~Graph();

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // Adds a node; the NodeDef's `inputs` field is ignored here — connect with
  // AddEdge/AddControlEdge. Resolves the op schema and concrete types.
  Result<Node*> AddNode(NodeDef def);

  // Adds a data edge src:src_output -> dst:dst_input, type-checked.
  Result<const Edge*> AddEdge(Node* src, int src_output, Node* dst,
                              int dst_input);
  const Edge* AddControlEdge(Node* src, Node* dst);

  void RemoveEdge(const Edge* edge);
  void RemoveNode(Node* node);

  Node* FindNode(const std::string& name) const;

  // Iteration: `nodes()` skips removed slots.
  std::vector<Node*> nodes() const;
  int num_nodes() const { return num_live_nodes_; }
  int num_node_ids() const { return static_cast<int>(nodes_.size()); }
  Node* FindNodeById(int id) const {
    return id >= 0 && id < num_node_ids() ? nodes_[id] : nullptr;
  }

  // Returns nodes in a topological order over data+control edges. Back
  // edges from NextIteration are excluded from the ordering constraint (the
  // graph may legally be cyclic through them, paper §3.4).
  Result<std::vector<Node*>> TopologicalOrder() const;

  // Deep-copies this graph; `node_map` (optional) receives old->new.
  std::unique_ptr<Graph> Clone(
      std::map<const Node*, Node*>* node_map = nullptr) const;

  // Generates a fresh node name with the given prefix.
  std::string NewName(const std::string& prefix);

  const OpRegistry* registry() const { return registry_; }

  std::string DebugString() const;

 private:
  const OpRegistry* registry_;
  std::vector<Node*> nodes_;  // indexed by id; removed => nullptr
  std::vector<std::unique_ptr<Edge>> edges_;
  std::map<std::string, Node*> name_index_;
  int num_live_nodes_ = 0;
  int name_counter_ = 0;
};

// Splits "node:3" / "node" / "^node" into (name, port); control inputs get
// port kControlSlot.
void ParseInputName(const std::string& input, std::string* name, int* port);

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_GRAPH_H_
