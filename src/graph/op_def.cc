#include "graph/op_def.h"

#include <cctype>
#include <sstream>

namespace tfrepro {

namespace {

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool LookupConcreteType(const std::string& name, DataType* dt) {
  if (name == "float") {
    *dt = DataType::kFloat;
  } else if (name == "double") {
    *dt = DataType::kDouble;
  } else if (name == "int32") {
    *dt = DataType::kInt32;
  } else if (name == "int64") {
    *dt = DataType::kInt64;
  } else if (name == "bool") {
    *dt = DataType::kBool;
  } else if (name == "string") {
    *dt = DataType::kString;
  } else if (name == "uint8") {
    *dt = DataType::kUint8;
  } else {
    return false;
  }
  return true;
}

bool IsValidAttrTypeName(const std::string& t) {
  return t == "int" || t == "float" || t == "bool" || t == "string" ||
         t == "type" || t == "shape" || t == "tensor" || t == "list(int)" ||
         t == "list(float)" || t == "list(string)" || t == "list(type)" ||
         t == "list(shape)";
}

// Parses a default-value literal for the given attr type.
Status ParseDefault(const std::string& type, const std::string& literal,
                    AttrValue* out) {
  std::string v = Trim(literal);
  if (type == "int") {
    *out = AttrValue(static_cast<int64_t>(std::stoll(v)));
  } else if (type == "float") {
    *out = AttrValue(std::stof(v));
  } else if (type == "bool") {
    if (v == "true") {
      *out = AttrValue(true);
    } else if (v == "false") {
      *out = AttrValue(false);
    } else {
      return InvalidArgument("bad bool default '" + v + "'");
    }
  } else if (type == "string") {
    if (v.size() >= 2 && (v.front() == '\'' || v.front() == '"')) {
      v = v.substr(1, v.size() - 2);
    }
    *out = AttrValue(v);
  } else if (type == "type") {
    DataType dt;
    if (!LookupConcreteType(v, &dt)) {
      return InvalidArgument("bad type default '" + v + "'");
    }
    *out = AttrValue(dt);
  } else if (type == "list(int)") {
    // "[1, 2, 3]" or "[]".
    std::vector<int64_t> vals;
    std::string inner = Trim(v);
    if (inner.size() < 2 || inner.front() != '[' || inner.back() != ']') {
      return InvalidArgument("bad list(int) default '" + v + "'");
    }
    inner = inner.substr(1, inner.size() - 2);
    std::istringstream is(inner);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      tok = Trim(tok);
      if (!tok.empty()) vals.push_back(std::stoll(tok));
    }
    *out = AttrValue(vals);
  } else {
    return Unimplemented("no default parsing for attr type " + type);
  }
  return Status::OK();
}

}  // namespace

const AttrDef* OpDef::FindAttr(const std::string& name) const {
  for (const AttrDef& a : attrs_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

std::string OpDef::DebugString() const {
  std::ostringstream os;
  os << "Op<" << name_ << ">(";
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (i) os << ", ";
    os << inputs_[i].name;
  }
  os << ") -> (";
  for (size_t i = 0; i < outputs_.size(); ++i) {
    if (i) os << ", ";
    os << outputs_[i].name;
  }
  os << ")";
  if (is_stateful_) os << " stateful";
  return os.str();
}

OpDefBuilder::OpDefBuilder(std::string name) { op_.name_ = std::move(name); }

OpDefBuilder& OpDefBuilder::Input(const std::string& spec) {
  input_specs_.push_back(spec);
  return *this;
}

OpDefBuilder& OpDefBuilder::Output(const std::string& spec) {
  output_specs_.push_back(spec);
  return *this;
}

OpDefBuilder& OpDefBuilder::Attr(const std::string& spec) {
  attr_specs_.push_back(spec);
  return *this;
}

OpDefBuilder& OpDefBuilder::SetIsStateful() {
  op_.is_stateful_ = true;
  return *this;
}

OpDefBuilder& OpDefBuilder::SetAllowsUninitializedInput() {
  op_.allows_uninitialized_input_ = true;
  return *this;
}

Status OpDefBuilder::ParseAttr(const std::string& spec, AttrDef* attr) const {
  // Form: "name: type" or "name: type = default".
  size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return InvalidArgument("attr spec missing ':' in '" + spec + "'");
  }
  attr->name = Trim(spec.substr(0, colon));
  std::string rest = Trim(spec.substr(colon + 1));
  size_t eq = rest.find('=');
  std::string type_str = Trim(eq == std::string::npos ? rest : rest.substr(0, eq));
  if (!IsValidAttrTypeName(type_str)) {
    return InvalidArgument("bad attr type '" + type_str + "' in '" + spec + "'");
  }
  attr->type = type_str;
  if (eq != std::string::npos) {
    TF_RETURN_IF_ERROR(
        ParseDefault(type_str, rest.substr(eq + 1), &attr->default_value));
    attr->has_default = true;
  }
  return Status::OK();
}

Status OpDefBuilder::ParseArg(const std::string& spec, ArgDef* arg) const {
  // Forms: "name: T" | "name: float" | "name: N * T" | "name: Ref(T)"
  //        | "name: Tlist" where Tlist is a declared list(type) attr.
  size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return InvalidArgument("arg spec missing ':' in '" + spec + "'");
  }
  arg->name = Trim(spec.substr(0, colon));
  std::string rest = Trim(spec.substr(colon + 1));

  if (rest.rfind("Ref(", 0) == 0 && rest.back() == ')') {
    arg->is_ref = true;
    rest = Trim(rest.substr(4, rest.size() - 5));
  }

  size_t star = rest.find('*');
  if (star != std::string::npos) {
    arg->number_attr = Trim(rest.substr(0, star));
    rest = Trim(rest.substr(star + 1));
  }

  DataType dt;
  if (LookupConcreteType(rest, &dt)) {
    arg->type = dt;
    return Status::OK();
  }

  // Otherwise `rest` names an attr — either a "type" attr or a "list(type)"
  // attr; disambiguated in Build() once all attrs are known.
  arg->type_attr = rest;
  return Status::OK();
}

Result<OpDef> OpDefBuilder::Build() const {
  OpDef op = op_;
  for (const std::string& spec : attr_specs_) {
    AttrDef attr;
    Status s = ParseAttr(spec, &attr);
    if (!s.ok()) return s.Prepend("op " + op.name_);
    op.attrs_.push_back(attr);
  }

  auto finish_args = [&op](const std::vector<std::string>& specs,
                           std::vector<ArgDef>* out,
                           const OpDefBuilder* builder) -> Status {
    for (const std::string& spec : specs) {
      ArgDef arg;
      TF_RETURN_IF_ERROR(builder->ParseArg(spec, &arg));
      if (!arg.type_attr.empty()) {
        const AttrDef* attr = op.FindAttr(arg.type_attr);
        if (attr == nullptr) {
          return InvalidArgument("op " + op.name_ + ": arg '" + arg.name +
                                 "' references undeclared attr '" +
                                 arg.type_attr + "'");
        }
        if (attr->type == "list(type)") {
          arg.type_list_attr = arg.type_attr;
          arg.type_attr.clear();
        } else if (attr->type != "type") {
          return InvalidArgument("op " + op.name_ + ": arg '" + arg.name +
                                 "' references attr '" + attr->name +
                                 "' of non-type kind " + attr->type);
        }
      }
      if (!arg.number_attr.empty()) {
        const AttrDef* attr = op.FindAttr(arg.number_attr);
        if (attr == nullptr || attr->type != "int") {
          return InvalidArgument("op " + op.name_ + ": arg '" + arg.name +
                                 "' number_attr '" + arg.number_attr +
                                 "' is not a declared int attr");
        }
      }
      out->push_back(arg);
    }
    return Status::OK();
  };

  TF_RETURN_IF_ERROR(finish_args(input_specs_, &op.inputs_, this));
  TF_RETURN_IF_ERROR(finish_args(output_specs_, &op.outputs_, this));
  return op;
}

namespace {

Status ResolveOneArg(const OpDef& op_def, const ArgDef& arg,
                     const AttrMap& attrs, DataTypeVector* out) {
  auto get_attr = [&](const std::string& name) -> const AttrValue* {
    auto it = attrs.find(name);
    if (it != attrs.end()) return &it->second;
    const AttrDef* def = op_def.FindAttr(name);
    if (def != nullptr && def->has_default) return &def->default_value;
    return nullptr;
  };

  if (!arg.type_list_attr.empty()) {
    const AttrValue* v = get_attr(arg.type_list_attr);
    if (v == nullptr || v->kind() != AttrValue::Kind::kTypeList) {
      return InvalidArgument("op " + op_def.name() + ": missing list(type) attr '" +
                             arg.type_list_attr + "'");
    }
    for (DataType dt : v->type_list()) {
      out->push_back(arg.is_ref ? MakeRefType(dt) : dt);
    }
    return Status::OK();
  }

  DataType dt = arg.type;
  if (!arg.type_attr.empty()) {
    const AttrValue* v = get_attr(arg.type_attr);
    if (v == nullptr || v->kind() != AttrValue::Kind::kType) {
      return InvalidArgument("op " + op_def.name() + ": missing type attr '" +
                             arg.type_attr + "'");
    }
    dt = v->type();
  }
  if (dt == DataType::kInvalid) {
    return Internal("op " + op_def.name() + ": arg '" + arg.name +
                    "' has no resolvable type");
  }
  if (arg.is_ref) dt = MakeRefType(dt);

  int64_t repeat = 1;
  if (!arg.number_attr.empty()) {
    const AttrValue* v = get_attr(arg.number_attr);
    if (v == nullptr || v->kind() != AttrValue::Kind::kInt) {
      return InvalidArgument("op " + op_def.name() + ": missing int attr '" +
                             arg.number_attr + "'");
    }
    repeat = v->i();
    if (repeat < 0) {
      return InvalidArgument("op " + op_def.name() + ": attr '" +
                             arg.number_attr + "' is negative");
    }
  }
  for (int64_t i = 0; i < repeat; ++i) out->push_back(dt);
  return Status::OK();
}

}  // namespace

Status ResolveArgTypes(const OpDef& op_def, const AttrMap& attrs,
                       DataTypeVector* input_types,
                       DataTypeVector* output_types) {
  input_types->clear();
  output_types->clear();
  for (const ArgDef& arg : op_def.inputs()) {
    TF_RETURN_IF_ERROR(ResolveOneArg(op_def, arg, attrs, input_types));
  }
  for (const ArgDef& arg : op_def.outputs()) {
    TF_RETURN_IF_ERROR(ResolveOneArg(op_def, arg, attrs, output_types));
  }
  return Status::OK();
}

}  // namespace tfrepro
