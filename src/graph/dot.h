// Graphviz export (the paper's §5 tooling mentions "a graph visualizer
// that helps users to understand the connections in a model"; this is the
// text-format backend for such a tool).

#ifndef TFREPRO_GRAPH_DOT_H_
#define TFREPRO_GRAPH_DOT_H_

#include <string>

#include "graph/graph.h"

namespace tfrepro {

struct DotOptions {
  // Cluster nodes by assigned (or requested) device.
  bool group_by_device = true;
  // Include control edges (dashed).
  bool include_control_edges = true;
};

// Renders the graph in Graphviz dot format. Stateful ops are drawn as
// boxes, control flow as diamonds, everything else as ellipses.
std::string GraphToDot(const Graph& graph, const DotOptions& options);
std::string GraphToDot(const Graph& graph);

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_DOT_H_
