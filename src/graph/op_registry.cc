#include "graph/op_registry.h"

#include <cstdio>
#include <cstdlib>

namespace tfrepro {

OpRegistry* OpRegistry::Global() {
  static OpRegistry* registry = new OpRegistry();
  return registry;
}

Status OpRegistry::Register(OpDef op_def) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = op_def.name();
  auto [it, inserted] =
      ops_.emplace(name, std::make_unique<OpDef>(std::move(op_def)));
  (void)it;
  if (!inserted) {
    return AlreadyExists("op '" + name + "' registered twice");
  }
  return Status::OK();
}

const OpDef* OpRegistry::LookUp(const std::string& op_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ops_.find(op_name);
  return it == ops_.end() ? nullptr : it->second.get();
}

Result<const OpDef*> OpRegistry::LookUpOrError(
    const std::string& op_name) const {
  const OpDef* def = LookUp(op_name);
  if (def == nullptr) {
    return NotFound("op type '" + op_name + "' is not registered");
  }
  return def;
}

std::vector<std::string> OpRegistry::ListOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, def] : ops_) {
    names.push_back(name);
  }
  return names;
}

int OpRegistry::num_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(ops_.size());
}

namespace register_op_detail {

OpRegistrar::OpRegistrar(const OpDefBuilder& builder) {
  Result<OpDef> op_def = builder.Build();
  if (!op_def.ok()) {
    std::fprintf(stderr, "Invalid op registration: %s\n",
                 op_def.status().ToString().c_str());
    std::abort();
  }
  Status s = OpRegistry::Global()->Register(std::move(op_def).value());
  if (!s.ok()) {
    std::fprintf(stderr, "Op registration failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace register_op_detail

}  // namespace tfrepro
