// Global registry of operation schemas. The runtime ships with over 200
// standard operations (paper §5); each is registered here at static-init
// time via REGISTER_OP.

#ifndef TFREPRO_GRAPH_OP_REGISTRY_H_
#define TFREPRO_GRAPH_OP_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "graph/op_def.h"

namespace tfrepro {

class OpRegistry {
 public:
  static OpRegistry* Global();

  Status Register(OpDef op_def);

  // Returns nullptr if not found.
  const OpDef* LookUp(const std::string& op_name) const;

  Result<const OpDef*> LookUpOrError(const std::string& op_name) const;

  std::vector<std::string> ListOps() const;
  int num_ops() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<OpDef>> ops_;
};

namespace register_op_detail {
// Registers the OpDef produced by a builder; aborts on invalid specs so
// schema errors surface at startup rather than mid-training. The implicit
// conversion from OpDefBuilder lets REGISTER_OP chain builder calls:
//
//   REGISTER_OP("MatMul")
//       .Input("a: T").Input("b: T").Output("product: T")
//       .Attr("T: type")
//       .Attr("transpose_a: bool = false");
struct OpRegistrar {
  OpRegistrar(const OpDefBuilder& builder);  // NOLINT: implicit
};
}  // namespace register_op_detail

#define REGISTER_OP_CONCAT_(a, b) a##b
#define REGISTER_OP_CONCAT(a, b) REGISTER_OP_CONCAT_(a, b)

#define REGISTER_OP(name)                                 \
  static const ::tfrepro::register_op_detail::OpRegistrar \
      REGISTER_OP_CONCAT(op_registrar_, __COUNTER__) =    \
          ::tfrepro::OpDefBuilder(name)

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_OP_REGISTRY_H_
