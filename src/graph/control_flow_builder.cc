#include "graph/control_flow_builder.h"

#include <map>
#include <set>

#include "graph/ops.h"

namespace tfrepro {
namespace ops {

Result<std::vector<Output>> Cond(GraphBuilder* b, Output pred,
                                 const std::vector<Output>& inputs,
                                 const BranchFn& then_branch,
                                 const BranchFn& else_branch) {
  // Switch every input on the predicate; feed output 1 (true) to the then
  // branch and output 0 (false) to the else branch. The untaken side's
  // values are dead and its subgraph never executes.
  std::vector<Output> then_inputs;
  std::vector<Output> else_inputs;
  for (const Output& in : inputs) {
    Node* sw = Switch(b, in, pred);
    if (sw == nullptr) return b->status();
    else_inputs.emplace_back(sw, 0);
    then_inputs.emplace_back(sw, 1);
  }
  std::vector<Output> then_outputs = then_branch(b, then_inputs);
  std::vector<Output> else_outputs = else_branch(b, else_inputs);
  TF_RETURN_IF_ERROR(b->status());
  if (then_outputs.size() != else_outputs.size()) {
    return InvalidArgument("Cond branches returned different arities: " +
                           std::to_string(then_outputs.size()) + " vs " +
                           std::to_string(else_outputs.size()));
  }
  std::vector<Output> results;
  for (size_t i = 0; i < then_outputs.size(); ++i) {
    Node* merge = Merge(b, {else_outputs[i], then_outputs[i]});
    if (merge == nullptr) return b->status();
    results.emplace_back(merge, 0);
  }
  return results;
}

namespace {

// Rewires edges from outside the loop frame into auto-inserted constant
// Enter nodes (what tf.while_loop does for captured values): a value
// produced in the parent frame cannot feed a node executing inside the
// loop directly, because pending counts are tracked per frame/iteration.
Status CaptureExternalInputs(GraphBuilder* b, const std::string& frame,
                             const std::set<Node*>& in_frame) {
  Graph* g = b->graph();
  std::map<Output, Output> entered;  // external output -> Enter output
  for (Node* node : in_frame) {
    std::vector<const Edge*> in_edges(node->in_edges().begin(),
                                      node->in_edges().end());
    for (const Edge* e : in_edges) {
      if (e->IsControlEdge()) continue;
      Node* src = e->src;
      if (in_frame.count(src) > 0) continue;
      if (src->IsEnter() && src->GetAttr("frame_name").s() == frame) continue;
      Output external(src, e->src_output);
      auto it = entered.find(external);
      if (it == entered.end()) {
        Output enter = Enter(b, external, frame, /*is_constant=*/true);
        TF_RETURN_IF_ERROR(b->status());
        it = entered.emplace(external, enter).first;
      }
      int dst_input = e->dst_input;
      g->RemoveEdge(e);
      TF_RETURN_IF_ERROR(
          g->AddEdge(it->second.node, it->second.index, node, dst_input)
              .status());
    }
  }
  return Status::OK();
}

// Nodes added to the graph between two id marks.
void CollectNewNodes(Graph* g, int from_id, std::set<Node*>* out) {
  for (int id = from_id; id < g->num_node_ids(); ++id) {
    Node* n = g->FindNodeById(id);
    if (n != nullptr) out->insert(n);
  }
}

}  // namespace

Result<std::vector<Output>> WhileLoop(GraphBuilder* b,
                                      const std::vector<Output>& initial,
                                      const CondFn& cond, const BodyFn& body,
                                      const std::vector<Output>& invariants,
                                      const std::string& name) {
  if (initial.empty()) {
    return InvalidArgument("WhileLoop needs at least one loop variable");
  }
  Graph* g = b->graph();
  const std::string frame =
      name.empty() ? g->NewName("while_frame") : name;

  // Enter each loop variable; Merge(Enter, <back edge placeholder>).
  std::vector<Node*> merges;
  std::vector<Output> merged;
  for (const Output& init : initial) {
    Output enter = Enter(b, init, frame);
    Node* merge = Merge(b, {enter, enter});  // 2nd input rewired below
    if (merge == nullptr) return b->status();
    merges.push_back(merge);
    merged.emplace_back(merge, 0);
  }
  // Loop invariants enter once and are re-delivered every iteration.
  std::vector<Output> carried = merged;
  for (const Output& inv : invariants) {
    carried.push_back(Enter(b, inv, frame, /*is_constant=*/true));
  }

  // Track nodes created by the callbacks so externally-captured values can
  // be auto-Entered afterwards.
  std::set<Node*> in_frame(merges.begin(), merges.end());
  int mark = g->num_node_ids();

  Output predicate = cond(b, carried);
  TF_RETURN_IF_ERROR(b->status());
  Output loop_cond = LoopCond(b, predicate);

  // Switch each merged variable on the loop condition: output 0 exits,
  // output 1 continues into the body.
  std::vector<Output> exits;
  std::vector<Output> body_inputs;
  std::vector<Node*> switches;
  for (const Output& m : merged) {
    Node* sw = Switch(b, m, loop_cond);
    if (sw == nullptr) return b->status();
    switches.push_back(sw);
    exits.push_back(Exit(b, Output(sw, 0)));
    body_inputs.emplace_back(sw, 1);
  }
  for (size_t i = initial.size(); i < carried.size(); ++i) {
    body_inputs.push_back(carried[i]);  // invariants pass through unswitched
  }

  std::vector<Output> next_values = body(b, body_inputs);
  TF_RETURN_IF_ERROR(b->status());
  if (next_values.size() != initial.size()) {
    return InvalidArgument(
        "WhileLoop body must return one value per loop variable (" +
        std::to_string(initial.size()) + "), got " +
        std::to_string(next_values.size()));
  }

  // Close the cycles through NextIteration.
  for (size_t i = 0; i < merges.size(); ++i) {
    Output next = NextIteration(b, next_values[i]);
    TF_RETURN_IF_ERROR(b->status());
    Result<const Edge*> placeholder_edge = merges[i]->input_edge(1);
    TF_RETURN_IF_ERROR(placeholder_edge.status());
    g->RemoveEdge(placeholder_edge.value());
    TF_RETURN_IF_ERROR(g->AddEdge(next.node, 0, merges[i], 1).status());
  }

  // Everything created by the callbacks executes inside the frame — except
  // Exit nodes (they deliver to the parent) and any nested loop's own Exits
  // (a nested WhileLoop handles its interior itself, and its Exit outputs
  // belong to THIS frame's body, which CollectNewNodes already covers).
  CollectNewNodes(g, mark, &in_frame);
  for (const Output& exit : exits) in_frame.erase(exit.node);
  // Source nodes (constants etc.) created inside the callbacks execute in
  // the root frame — the executor schedules no-input nodes at root
  // iteration 0 — so they are externals to capture, not frame members.
  for (auto it = in_frame.begin(); it != in_frame.end();) {
    if ((*it)->in_edges().empty()) {
      it = in_frame.erase(it);
    } else {
      ++it;
    }
  }
  TF_RETURN_IF_ERROR(CaptureExternalInputs(b, frame, in_frame));
  return exits;
}

}  // namespace ops
}  // namespace tfrepro
