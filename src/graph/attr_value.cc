#include "graph/attr_value.h"

#include <sstream>

namespace tfrepro {

AttrValue::Kind AttrValue::kind() const {
  struct Visitor {
    Kind operator()(const std::monostate&) { return Kind::kNone; }
    Kind operator()(const int64_t&) { return Kind::kInt; }
    Kind operator()(const float&) { return Kind::kFloat; }
    Kind operator()(const bool&) { return Kind::kBool; }
    Kind operator()(const std::string&) { return Kind::kString; }
    Kind operator()(const DataType&) { return Kind::kType; }
    Kind operator()(const TensorShape&) { return Kind::kShape; }
    Kind operator()(const Tensor&) { return Kind::kTensor; }
    Kind operator()(const std::vector<int64_t>&) { return Kind::kIntList; }
    Kind operator()(const std::vector<float>&) { return Kind::kFloatList; }
    Kind operator()(const std::vector<std::string>&) {
      return Kind::kStringList;
    }
    Kind operator()(const DataTypeVector&) { return Kind::kTypeList; }
    Kind operator()(const std::vector<TensorShape>&) {
      return Kind::kShapeList;
    }
  };
  return std::visit(Visitor{}, value_);
}

const char* AttrKindName(AttrValue::Kind kind) {
  switch (kind) {
    case AttrValue::Kind::kNone:
      return "none";
    case AttrValue::Kind::kInt:
      return "int";
    case AttrValue::Kind::kFloat:
      return "float";
    case AttrValue::Kind::kBool:
      return "bool";
    case AttrValue::Kind::kString:
      return "string";
    case AttrValue::Kind::kType:
      return "type";
    case AttrValue::Kind::kShape:
      return "shape";
    case AttrValue::Kind::kTensor:
      return "tensor";
    case AttrValue::Kind::kIntList:
      return "list(int)";
    case AttrValue::Kind::kFloatList:
      return "list(float)";
    case AttrValue::Kind::kStringList:
      return "list(string)";
    case AttrValue::Kind::kTypeList:
      return "list(type)";
    case AttrValue::Kind::kShapeList:
      return "list(shape)";
  }
  return "unknown";
}

std::string AttrValue::DebugString() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::kNone:
      os << "<none>";
      break;
    case Kind::kInt:
      os << i();
      break;
    case Kind::kFloat:
      os << f();
      break;
    case Kind::kBool:
      os << (b() ? "true" : "false");
      break;
    case Kind::kString:
      os << "\"" << s() << "\"";
      break;
    case Kind::kType:
      os << DataTypeName(type());
      break;
    case Kind::kShape:
      os << shape().DebugString();
      break;
    case Kind::kTensor:
      os << tensor().DebugString(4);
      break;
    case Kind::kIntList: {
      os << "[";
      for (size_t j = 0; j < int_list().size(); ++j) {
        if (j) os << ",";
        os << int_list()[j];
      }
      os << "]";
      break;
    }
    case Kind::kFloatList: {
      os << "[";
      for (size_t j = 0; j < float_list().size(); ++j) {
        if (j) os << ",";
        os << float_list()[j];
      }
      os << "]";
      break;
    }
    case Kind::kStringList: {
      os << "[";
      for (size_t j = 0; j < string_list().size(); ++j) {
        if (j) os << ",";
        os << "\"" << string_list()[j] << "\"";
      }
      os << "]";
      break;
    }
    case Kind::kTypeList: {
      os << "[";
      for (size_t j = 0; j < type_list().size(); ++j) {
        if (j) os << ",";
        os << DataTypeName(type_list()[j]);
      }
      os << "]";
      break;
    }
    case Kind::kShapeList: {
      os << "[";
      for (size_t j = 0; j < shape_list().size(); ++j) {
        if (j) os << ",";
        os << shape_list()[j].DebugString();
      }
      os << "]";
      break;
    }
  }
  return os.str();
}

}  // namespace tfrepro
