#include "graph/shape_inference.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tfrepro {

bool PartialShape::FullyKnown() const {
  if (!has_rank_) return false;
  for (int64_t d : dims_) {
    if (d < 0) return false;
  }
  return true;
}

Result<PartialShape> PartialShape::Merge(const PartialShape& a,
                                         const PartialShape& b) {
  if (!a.has_rank()) return b;
  if (!b.has_rank()) return a;
  if (a.rank() != b.rank()) {
    return InvalidArgument("rank mismatch: " + a.DebugString() + " vs " +
                           b.DebugString());
  }
  std::vector<int64_t> dims(a.rank());
  for (int i = 0; i < a.rank(); ++i) {
    int64_t da = a.dim(i);
    int64_t db = b.dim(i);
    if (da >= 0 && db >= 0 && da != db) {
      return InvalidArgument("dimension " + std::to_string(i) +
                             " mismatch: " + a.DebugString() + " vs " +
                             b.DebugString());
    }
    dims[i] = da >= 0 ? da : db;
  }
  return PartialShape(dims);
}

bool PartialShape::IsCompatibleWith(const TensorShape& s) const {
  if (!has_rank_) return true;
  if (rank() != s.rank()) return false;
  for (int i = 0; i < rank(); ++i) {
    if (dims_[i] >= 0 && dims_[i] != s.dim(i)) return false;
  }
  return true;
}

std::string PartialShape::DebugString() const {
  if (!has_rank_) return "<unknown>";
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < rank(); ++i) {
    if (i) os << ",";
    if (dims_[i] < 0) {
      os << "?";
    } else {
      os << dims_[i];
    }
  }
  os << "]";
  return os.str();
}

std::optional<std::vector<int64_t>> ShapeInferenceContext::ConstIntVector(
    int i) const {
  Result<const Edge*> edge = node_->input_edge(i);
  if (!edge.ok() || !edge.value()->src->IsConstant()) return std::nullopt;
  const Tensor& value = edge.value()->src->GetAttr("value").tensor();
  if (BaseType(value.dtype()) != DataType::kInt32 ||
      value.shape().rank() > 1) {
    return std::nullopt;
  }
  std::vector<int64_t> values;
  for (int64_t j = 0; j < value.num_elements(); ++j) {
    values.push_back(value.flat<int32_t>(j));
  }
  return values;
}

Status ShapeInferenceContext::WithRank(const PartialShape& shape, int rank,
                                       PartialShape* out) const {
  if (!shape.has_rank()) {
    *out = PartialShape::UnknownOfRank(rank);
    return Status::OK();
  }
  if (shape.rank() != rank) {
    return InvalidArgument("node '" + node_->name() + "' (" + node_->op() +
                           "): expected rank " + std::to_string(rank) +
                           ", got shape " + shape.DebugString());
  }
  *out = shape;
  return Status::OK();
}

Status ShapeInferenceContext::WithRankAtLeast(const PartialShape& shape,
                                              int rank,
                                              PartialShape* out) const {
  if (!shape.has_rank()) {
    *out = shape;
    return Status::OK();
  }
  if (shape.rank() < rank) {
    return InvalidArgument("node '" + node_->name() + "' (" + node_->op() +
                           "): expected rank >= " + std::to_string(rank) +
                           ", got shape " + shape.DebugString());
  }
  *out = shape;
  return Status::OK();
}

Status ShapeInferenceContext::MergeDim(int64_t a, int64_t b,
                                       int64_t* out) const {
  if (a >= 0 && b >= 0 && a != b) {
    return InvalidArgument("node '" + node_->name() + "' (" + node_->op() +
                           "): dimensions " + std::to_string(a) + " and " +
                           std::to_string(b) + " are incompatible");
  }
  *out = a >= 0 ? a : b;
  return Status::OK();
}

ShapeRegistry* ShapeRegistry::Global() {
  static ShapeRegistry* registry = new ShapeRegistry();
  return registry;
}

Status ShapeRegistry::Register(const std::string& op_name, ShapeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = fns_.emplace(op_name, std::move(fn));
  (void)it;
  if (!inserted) {
    return AlreadyExists("shape fn for '" + op_name + "' registered twice");
  }
  return Status::OK();
}

const ShapeFn* ShapeRegistry::Lookup(const std::string& op_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fns_.find(op_name);
  return it == fns_.end() ? nullptr : &it->second;
}

namespace shape_registration {
ShapeRegistrar::ShapeRegistrar(const char* op_name, ShapeFn fn) {
  Status s = ShapeRegistry::Global()->Register(op_name, std::move(fn));
  if (!s.ok()) {
    std::fprintf(stderr, "Shape registration failed: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
}
}  // namespace shape_registration

Status InferShapes(const Graph& graph,
                   std::map<std::pair<int, int>, PartialShape>* shapes) {
  Result<std::vector<Node*>> order = graph.TopologicalOrder();
  TF_RETURN_IF_ERROR(order.status());

  std::map<std::pair<int, int>, PartialShape> inferred;
  for (Node* node : order.value()) {
    std::vector<PartialShape> inputs(node->num_inputs());
    for (const Edge* e : node->ordered_data_inputs()) {
      auto it = inferred.find({e->src->id(), e->src_output});
      if (it != inferred.end()) {
        inputs[e->dst_input] = it->second;
      }
    }
    ShapeInferenceContext ctx(node, std::move(inputs));
    const ShapeFn* fn = ShapeRegistry::Global()->Lookup(node->op());
    if (fn != nullptr) {
      Status s = (*fn)(&ctx);
      if (!s.ok()) {
        return s.Prepend("shape inference for node '" + node->name() + "'");
      }
    }
    // Merge NextIteration-fed back edges conservatively: already handled by
    // topological order excluding them; back-edge consumers just see the
    // forward shape.
    for (int i = 0; i < node->num_outputs(); ++i) {
      inferred[{node->id(), i}] = ctx.output_shapes()[i];
    }
  }
  if (shapes != nullptr) {
    *shapes = std::move(inferred);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Shape functions for the standard operations.
// ---------------------------------------------------------------------------

namespace {

Status UnchangedShape(ShapeInferenceContext* c) {
  c->set_output(0, c->input(0));
  return Status::OK();
}

Status ScalarShape(ShapeInferenceContext* c) {
  c->set_output(0, PartialShape(std::vector<int64_t>{}));
  return Status::OK();
}

// Broadcasting binary op.
Status BinaryBroadcastShape(ShapeInferenceContext* c) {
  const PartialShape& a = c->input(0);
  const PartialShape& b = c->input(1);
  if (!a.has_rank() || !b.has_rank()) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  int rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(rank, -1);
  for (int i = 0; i < rank; ++i) {
    int ai = a.rank() - rank + i;
    int bi = b.rank() - rank + i;
    int64_t da = ai >= 0 ? a.dim(ai) : 1;
    int64_t db = bi >= 0 ? b.dim(bi) : 1;
    if (da == 1) {
      dims[i] = db;
    } else if (db == 1) {
      dims[i] = da;
    } else if (da >= 0 && db >= 0) {
      if (da != db) {
        return InvalidArgument(
            "node '" + c->node().name() + "': shapes " + a.DebugString() +
            " and " + b.DebugString() + " are not broadcastable");
      }
      dims[i] = da;
    } else {
      dims[i] = da >= 0 ? da : db;
    }
  }
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status ConstShape(ShapeInferenceContext* c) {
  const Tensor& value = c->node().GetAttr("value").tensor();
  c->set_output(0, PartialShape::FromShape(value.shape()));
  return Status::OK();
}

Status AttrShape(ShapeInferenceContext* c) {
  c->set_output(0,
                PartialShape::FromShape(c->node().GetAttr("shape").shape()));
  return Status::OK();
}

Status MatMulShape(ShapeInferenceContext* c) {
  PartialShape a, b;
  TF_RETURN_IF_ERROR(c->WithRank(c->input(0), 2, &a));
  TF_RETURN_IF_ERROR(c->WithRank(c->input(1), 2, &b));
  bool ta = c->node().GetAttr("transpose_a").b();
  bool tb = c->node().GetAttr("transpose_b").b();
  int64_t m = a.dim(ta ? 1 : 0);
  int64_t ka = a.dim(ta ? 0 : 1);
  int64_t kb = b.dim(tb ? 1 : 0);
  int64_t n = b.dim(tb ? 0 : 1);
  int64_t merged;
  TF_RETURN_IF_ERROR(c->MergeDim(ka, kb, &merged));
  c->set_output(0, PartialShape({m, n}));
  return Status::OK();
}

Status ReshapeShape(ShapeInferenceContext* c) {
  auto target = c->ConstIntVector(1);
  if (!target.has_value()) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  std::vector<int64_t> dims = *target;
  // Resolve a single -1 from the input element count if known.
  int64_t known = 1;
  int infer = -1;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      infer = static_cast<int>(i);
    } else {
      known *= dims[i];
    }
  }
  if (infer >= 0 && c->input(0).FullyKnown() && known > 0) {
    int64_t total = 1;
    for (int64_t d : c->input(0).dims()) total *= d;
    if (total % known == 0) dims[infer] = total / known;
  }
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status ConcatShape(ShapeInferenceContext* c) {
  auto axis_vec = c->ConstIntVector(0);
  int n = c->num_inputs() - 1;
  if (n < 1) return InvalidArgument("Concat needs inputs");
  if (!axis_vec.has_value() || axis_vec->size() != 1) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  // Merge the non-axis dims; sum the axis dim.
  PartialShape result = c->input(1);
  if (!result.has_rank()) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  int axis = static_cast<int>((*axis_vec)[0]);
  if (axis < 0) axis += result.rank();
  std::vector<int64_t> dims = result.dims();
  for (int i = 2; i <= n; ++i) {
    const PartialShape& s = c->input(i);
    if (!s.has_rank() || s.rank() != result.rank()) {
      c->set_output(0, PartialShape());
      return Status::OK();
    }
    for (int d = 0; d < result.rank(); ++d) {
      if (d == axis) {
        if (dims[d] >= 0 && s.dim(d) >= 0) {
          dims[d] += s.dim(d);
        } else {
          dims[d] = -1;
        }
      } else {
        TF_RETURN_IF_ERROR(c->MergeDim(dims[d], s.dim(d), &dims[d]));
      }
    }
  }
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status GatherShape(ShapeInferenceContext* c) {
  PartialShape params;
  TF_RETURN_IF_ERROR(c->WithRankAtLeast(c->input(0), 1, &params));
  const PartialShape& indices = c->input(1);
  if (!params.has_rank() || !indices.has_rank()) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  std::vector<int64_t> dims = indices.dims();
  for (int i = 1; i < params.rank(); ++i) {
    dims.push_back(params.dim(i));
  }
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status Conv2DShape(ShapeInferenceContext* c) {
  PartialShape input, filter;
  TF_RETURN_IF_ERROR(c->WithRank(c->input(0), 4, &input));
  TF_RETURN_IF_ERROR(c->WithRank(c->input(1), 4, &filter));
  int64_t merged_c;
  TF_RETURN_IF_ERROR(c->MergeDim(input.dim(3), filter.dim(2), &merged_c));
  const auto& strides = c->node().GetAttr("strides").int_list();
  const std::string& padding = c->node().GetAttr("padding").s();
  auto out_dim = [&](int64_t in, int64_t k, int64_t stride) -> int64_t {
    if (in < 0 || k < 0) return -1;
    return padding == "SAME" ? (in + stride - 1) / stride
                             : (in - k) / stride + 1;
  };
  c->set_output(0, PartialShape({input.dim(0),
                                 out_dim(input.dim(1), filter.dim(0),
                                         strides[1]),
                                 out_dim(input.dim(2), filter.dim(1),
                                         strides[2]),
                                 filter.dim(3)}));
  return Status::OK();
}

Status PoolShape(ShapeInferenceContext* c) {
  PartialShape input;
  TF_RETURN_IF_ERROR(c->WithRank(c->input(0), 4, &input));
  const auto& ksize = c->node().GetAttr("ksize").int_list();
  const auto& strides = c->node().GetAttr("strides").int_list();
  const std::string& padding = c->node().GetAttr("padding").s();
  auto out_dim = [&](int64_t in, int64_t k, int64_t stride) -> int64_t {
    if (in < 0) return -1;
    return padding == "SAME" ? (in + stride - 1) / stride
                             : (in - k) / stride + 1;
  };
  c->set_output(0, PartialShape({input.dim(0),
                                 out_dim(input.dim(1), ksize[1], strides[1]),
                                 out_dim(input.dim(2), ksize[2], strides[2]),
                                 input.dim(3)}));
  return Status::OK();
}

Status SoftmaxXentShape(ShapeInferenceContext* c) {
  PartialShape logits;
  TF_RETURN_IF_ERROR(c->WithRank(c->input(0), 2, &logits));
  c->set_output(0, PartialShape({logits.dim(0)}));
  c->set_output(1, logits);
  return Status::OK();
}

Status SwitchShape(ShapeInferenceContext* c) {
  c->set_output(0, c->input(0));
  c->set_output(1, c->input(0));
  return Status::OK();
}

Status MergeShape(ShapeInferenceContext* c) {
  // The merged value may come from any input; report the merge of all
  // constraints when possible, unknown otherwise.
  PartialShape merged = c->input(0);
  for (int i = 1; i < c->num_inputs(); ++i) {
    Result<PartialShape> m = PartialShape::Merge(merged, c->input(i));
    if (!m.ok()) {
      merged = PartialShape();  // inputs genuinely differ -> unknown
      break;
    }
    merged = m.value();
  }
  c->set_output(0, merged);
  c->set_output(1, PartialShape(std::vector<int64_t>{}));
  return Status::OK();
}

Status VectorOfUnknownLength(ShapeInferenceContext* c) {
  c->set_output(0, PartialShape({-1}));
  return Status::OK();
}

Status ShapeFromConstInput0(ShapeInferenceContext* c) {
  auto dims = c->ConstIntVector(0);
  if (dims.has_value()) {
    c->set_output(0, PartialShape(*dims));
  } else {
    c->set_output(0, PartialShape());
  }
  return Status::OK();
}

Status BiasAddShape(ShapeInferenceContext* c) {
  c->set_output(0, c->input(0));
  // Check bias length against the channel dim when both known.
  const PartialShape& value = c->input(0);
  const PartialShape& bias = c->input(1);
  if (value.has_rank() && value.rank() >= 1 && bias.has_rank() &&
      bias.rank() == 1) {
    int64_t merged;
    TF_RETURN_IF_ERROR(
        c->MergeDim(value.dim(value.rank() - 1), bias.dim(0), &merged));
  }
  return Status::OK();
}


Status ReductionShape(ShapeInferenceContext* c) {
  const PartialShape& input = c->input(0);
  auto axes = c->ConstIntVector(1);
  bool keep_dims = c->node().GetAttr("keep_dims").b();
  if (!input.has_rank() || !axes.has_value()) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  std::vector<bool> reduced(input.rank(), false);
  for (int64_t a : *axes) {
    int axis = static_cast<int>(a < 0 ? a + input.rank() : a);
    if (axis < 0 || axis >= input.rank()) {
      return InvalidArgument("node '" + c->node().name() +
                             "': reduction axis out of range");
    }
    reduced[axis] = true;
  }
  std::vector<int64_t> dims;
  for (int i = 0; i < input.rank(); ++i) {
    if (reduced[i]) {
      if (keep_dims) dims.push_back(1);
    } else {
      dims.push_back(input.dim(i));
    }
  }
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status ExpandDimsShape(ShapeInferenceContext* c) {
  const PartialShape& input = c->input(0);
  auto dim = c->ConstIntVector(1);
  if (!input.has_rank() || !dim.has_value() || dim->size() != 1) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  int axis = static_cast<int>((*dim)[0]);
  if (axis < 0) axis += input.rank() + 1;
  if (axis < 0 || axis > input.rank()) {
    return InvalidArgument("node '" + c->node().name() +
                           "': ExpandDims axis out of range");
  }
  std::vector<int64_t> dims = input.dims();
  dims.insert(dims.begin() + axis, 1);
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status PackShape(ShapeInferenceContext* c) {
  int n = c->num_inputs();
  PartialShape merged = c->input(0);
  for (int i = 1; i < n; ++i) {
    Result<PartialShape> m = PartialShape::Merge(merged, c->input(i));
    TF_RETURN_IF_ERROR(m.status());
    merged = m.value();
  }
  if (!merged.has_rank()) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  int64_t axis = c->node().GetAttr("axis").i();
  if (axis < 0) axis += merged.rank() + 1;
  std::vector<int64_t> dims = merged.dims();
  dims.insert(dims.begin() + axis, n);
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status UnpackShape(ShapeInferenceContext* c) {
  const PartialShape& input = c->input(0);
  int num = static_cast<int>(c->node().GetAttr("num").i());
  if (!input.has_rank()) {
    for (int i = 0; i < num; ++i) c->set_output(i, PartialShape());
    return Status::OK();
  }
  int64_t axis = c->node().GetAttr("axis").i();
  if (axis < 0) axis += input.rank();
  if (input.dim_known(static_cast<int>(axis)) &&
      input.dim(static_cast<int>(axis)) != num) {
    return InvalidArgument("node '" + c->node().name() +
                           "': Unpack num does not match the axis dimension");
  }
  std::vector<int64_t> dims = input.dims();
  dims.erase(dims.begin() + axis);
  for (int i = 0; i < num; ++i) c->set_output(i, PartialShape(dims));
  return Status::OK();
}

Status SplitShape(ShapeInferenceContext* c) {
  auto axis_vec = c->ConstIntVector(0);
  const PartialShape& value = c->input(1);
  int num = static_cast<int>(c->node().GetAttr("num_split").i());
  if (!axis_vec.has_value() || axis_vec->size() != 1 || !value.has_rank()) {
    for (int i = 0; i < num; ++i) c->set_output(i, PartialShape());
    return Status::OK();
  }
  int axis = static_cast<int>((*axis_vec)[0]);
  if (axis < 0) axis += value.rank();
  std::vector<int64_t> dims = value.dims();
  if (axis < 0 || axis >= value.rank()) {
    return InvalidArgument("node '" + c->node().name() +
                           "': Split axis out of range");
  }
  if (dims[axis] >= 0) {
    if (dims[axis] % num != 0) {
      return InvalidArgument("node '" + c->node().name() +
                             "': Split axis not divisible by num_split");
    }
    dims[axis] /= num;
  }
  for (int i = 0; i < num; ++i) c->set_output(i, PartialShape(dims));
  return Status::OK();
}

Status TransposeShape(ShapeInferenceContext* c) {
  const PartialShape& input = c->input(0);
  auto perm = c->ConstIntVector(1);
  if (!input.has_rank() || !perm.has_value() ||
      static_cast<int>(perm->size()) != input.rank()) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  std::vector<int64_t> dims(input.rank());
  for (int i = 0; i < input.rank(); ++i) {
    int64_t p = (*perm)[i];
    if (p < 0 || p >= input.rank()) {
      return InvalidArgument("node '" + c->node().name() +
                             "': Transpose perm out of range");
    }
    dims[i] = input.dim(static_cast<int>(p));
  }
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status ArgMaxShape(ShapeInferenceContext* c) {
  const PartialShape& input = c->input(0);
  auto axis_vec = c->ConstIntVector(1);
  if (!input.has_rank() || !axis_vec.has_value() || axis_vec->size() != 1) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  int axis = static_cast<int>((*axis_vec)[0]);
  if (axis < 0) axis += input.rank();
  std::vector<int64_t> dims = input.dims();
  if (axis < 0 || axis >= input.rank()) {
    return InvalidArgument("node '" + c->node().name() +
                           "': ArgMax axis out of range");
  }
  dims.erase(dims.begin() + axis);
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status OneHotShape(ShapeInferenceContext* c) {
  const PartialShape& indices = c->input(0);
  auto depth = c->ConstIntVector(1);
  if (!indices.has_rank()) {
    c->set_output(0, PartialShape());
    return Status::OK();
  }
  std::vector<int64_t> dims = indices.dims();
  dims.push_back(depth.has_value() && depth->size() == 1 ? (*depth)[0] : -1);
  c->set_output(0, PartialShape(dims));
  return Status::OK();
}

Status SelectShape(ShapeInferenceContext* c) {
  Result<PartialShape> merged = PartialShape::Merge(c->input(1), c->input(2));
  TF_RETURN_IF_ERROR(merged.status());
  c->set_output(0, merged.value());
  return Status::OK();
}

Status AddNShape(ShapeInferenceContext* c) {
  PartialShape merged = c->input(0);
  for (int i = 1; i < c->num_inputs(); ++i) {
    Result<PartialShape> m = PartialShape::Merge(merged, c->input(i));
    TF_RETURN_IF_ERROR(m.status());
    merged = m.value();
  }
  c->set_output(0, merged);
  return Status::OK();
}

#define SHAPE_FN(op, fn) REGISTER_SHAPE_FN(op, fn)

SHAPE_FN("Const", ConstShape);
SHAPE_FN("Placeholder", AttrShape);
SHAPE_FN("Variable", AttrShape);
SHAPE_FN("Identity", UnchangedShape);
SHAPE_FN("StopGradient", UnchangedShape);
SHAPE_FN("Enter", UnchangedShape);
SHAPE_FN("Exit", UnchangedShape);
SHAPE_FN("NextIteration", UnchangedShape);
SHAPE_FN("LoopCond", ScalarShape);
SHAPE_FN("Switch", SwitchShape);
SHAPE_FN("Merge", MergeShape);

SHAPE_FN("Add", BinaryBroadcastShape);
SHAPE_FN("Sub", BinaryBroadcastShape);
SHAPE_FN("Mul", BinaryBroadcastShape);
SHAPE_FN("Div", BinaryBroadcastShape);
SHAPE_FN("FloorDiv", BinaryBroadcastShape);
SHAPE_FN("Mod", BinaryBroadcastShape);
SHAPE_FN("Pow", BinaryBroadcastShape);
SHAPE_FN("Maximum", BinaryBroadcastShape);
SHAPE_FN("Minimum", BinaryBroadcastShape);
SHAPE_FN("SquaredDifference", BinaryBroadcastShape);
SHAPE_FN("Less", BinaryBroadcastShape);
SHAPE_FN("LessEqual", BinaryBroadcastShape);
SHAPE_FN("Greater", BinaryBroadcastShape);
SHAPE_FN("GreaterEqual", BinaryBroadcastShape);
SHAPE_FN("Equal", BinaryBroadcastShape);
SHAPE_FN("NotEqual", BinaryBroadcastShape);
SHAPE_FN("LogicalAnd", BinaryBroadcastShape);
SHAPE_FN("LogicalOr", BinaryBroadcastShape);

SHAPE_FN("Neg", UnchangedShape);
SHAPE_FN("Exp", UnchangedShape);
SHAPE_FN("Log", UnchangedShape);
SHAPE_FN("Sqrt", UnchangedShape);
SHAPE_FN("Rsqrt", UnchangedShape);
SHAPE_FN("Square", UnchangedShape);
SHAPE_FN("Abs", UnchangedShape);
SHAPE_FN("Sign", UnchangedShape);
SHAPE_FN("Tanh", UnchangedShape);
SHAPE_FN("Sigmoid", UnchangedShape);
SHAPE_FN("Relu", UnchangedShape);
SHAPE_FN("Floor", UnchangedShape);
SHAPE_FN("Ceil", UnchangedShape);
SHAPE_FN("Reciprocal", UnchangedShape);
SHAPE_FN("LogicalNot", UnchangedShape);
SHAPE_FN("ZerosLike", UnchangedShape);
SHAPE_FN("OnesLike", UnchangedShape);
SHAPE_FN("Cast", UnchangedShape);
SHAPE_FN("Assign", UnchangedShape);
SHAPE_FN("AssignAdd", UnchangedShape);
SHAPE_FN("AssignSub", UnchangedShape);
SHAPE_FN("Softmax", UnchangedShape);
SHAPE_FN("LogSoftmax", UnchangedShape);

SHAPE_FN("MatMul", MatMulShape);
SHAPE_FN("BiasAdd", BiasAddShape);
SHAPE_FN("Reshape", ReshapeShape);
SHAPE_FN("Concat", ConcatShape);
SHAPE_FN("Gather", GatherShape);
SHAPE_FN("Conv2D", Conv2DShape);
SHAPE_FN("MaxPool", PoolShape);
SHAPE_FN("AvgPool", PoolShape);
SHAPE_FN("SoftmaxCrossEntropyWithLogits", SoftmaxXentShape);
SHAPE_FN("SparseSoftmaxCrossEntropyWithLogits", SoftmaxXentShape);
SHAPE_FN("Shape", VectorOfUnknownLength);
SHAPE_FN("Range", VectorOfUnknownLength);
SHAPE_FN("Rank", ScalarShape);
SHAPE_FN("Size", ScalarShape);
SHAPE_FN("L2Loss", ScalarShape);
SHAPE_FN("Fill", ShapeFromConstInput0);
SHAPE_FN("RandomUniform", ShapeFromConstInput0);
SHAPE_FN("RandomStandardNormal", ShapeFromConstInput0);
SHAPE_FN("TruncatedNormal", ShapeFromConstInput0);


SHAPE_FN("Sum", ReductionShape);
SHAPE_FN("Mean", ReductionShape);
SHAPE_FN("Max", ReductionShape);
SHAPE_FN("Min", ReductionShape);
SHAPE_FN("Prod", ReductionShape);
SHAPE_FN("ExpandDims", ExpandDimsShape);
SHAPE_FN("Pack", PackShape);
SHAPE_FN("Unpack", UnpackShape);
SHAPE_FN("Split", SplitShape);
SHAPE_FN("Transpose", TransposeShape);
SHAPE_FN("ArgMax", ArgMaxShape);
SHAPE_FN("OneHot", OneHotShape);
SHAPE_FN("Select", SelectShape);
SHAPE_FN("AddN", AddNShape);

#undef SHAPE_FN

}  // namespace

}  // namespace tfrepro
