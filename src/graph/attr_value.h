// AttrValue: the compile-time attributes attached to operations
// (paper §3.1: "an operation ... may have zero or more compile-time
// attributes that determine its behavior").

#ifndef TFREPRO_GRAPH_ATTR_VALUE_H_
#define TFREPRO_GRAPH_ATTR_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"
#include "core/tensor_shape.h"
#include "core/types.h"

namespace tfrepro {

class AttrValue {
 public:
  enum class Kind {
    kNone,
    kInt,
    kFloat,
    kBool,
    kString,
    kType,
    kShape,
    kTensor,
    kIntList,
    kFloatList,
    kStringList,
    kTypeList,
    kShapeList,
  };

  AttrValue() = default;
  AttrValue(int64_t v) : value_(v) {}                        // NOLINT
  AttrValue(int v) : value_(static_cast<int64_t>(v)) {}      // NOLINT
  AttrValue(float v) : value_(v) {}                          // NOLINT
  AttrValue(double v) : value_(static_cast<float>(v)) {}     // NOLINT
  AttrValue(bool v) : value_(v) {}                           // NOLINT
  AttrValue(const char* v) : value_(std::string(v)) {}       // NOLINT
  AttrValue(std::string v) : value_(std::move(v)) {}         // NOLINT
  AttrValue(DataType v) : value_(v) {}                       // NOLINT
  AttrValue(TensorShape v) : value_(std::move(v)) {}         // NOLINT
  AttrValue(Tensor v) : value_(std::move(v)) {}              // NOLINT
  AttrValue(std::vector<int64_t> v) : value_(std::move(v)) {}     // NOLINT
  AttrValue(std::vector<float> v) : value_(std::move(v)) {}       // NOLINT
  AttrValue(std::vector<std::string> v) : value_(std::move(v)) {} // NOLINT
  AttrValue(DataTypeVector v) : value_(std::move(v)) {}           // NOLINT
  AttrValue(std::vector<TensorShape> v) : value_(std::move(v)) {} // NOLINT

  Kind kind() const;

  bool has_value() const { return kind() != Kind::kNone; }

  // Typed accessors; each asserts the stored kind.
  int64_t i() const { return std::get<int64_t>(value_); }
  float f() const { return std::get<float>(value_); }
  bool b() const { return std::get<bool>(value_); }
  const std::string& s() const { return std::get<std::string>(value_); }
  DataType type() const { return std::get<DataType>(value_); }
  const TensorShape& shape() const { return std::get<TensorShape>(value_); }
  const Tensor& tensor() const { return std::get<Tensor>(value_); }
  const std::vector<int64_t>& int_list() const {
    return std::get<std::vector<int64_t>>(value_);
  }
  const std::vector<float>& float_list() const {
    return std::get<std::vector<float>>(value_);
  }
  const std::vector<std::string>& string_list() const {
    return std::get<std::vector<std::string>>(value_);
  }
  const DataTypeVector& type_list() const {
    return std::get<DataTypeVector>(value_);
  }
  const std::vector<TensorShape>& shape_list() const {
    return std::get<std::vector<TensorShape>>(value_);
  }

  std::string DebugString() const;

 private:
  std::variant<std::monostate, int64_t, float, bool, std::string, DataType,
               TensorShape, Tensor, std::vector<int64_t>, std::vector<float>,
               std::vector<std::string>, DataTypeVector,
               std::vector<TensorShape>>
      value_;
};

using AttrMap = std::map<std::string, AttrValue>;

// Returns the attr type name ("int", "type", "list(shape)", ...) used in
// OpDef attr specs for a given kind.
const char* AttrKindName(AttrValue::Kind kind);

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_ATTR_VALUE_H_
