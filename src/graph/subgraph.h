// Graph rewriting for partial execution (paper §3.2): the client names
// edges to feed and edges to fetch; the runtime rewrites the graph with
// _Feed/_Fetch nodes and prunes it to the necessary set of operations
// (a form of dead-code elimination, §5).

#ifndef TFREPRO_GRAPH_SUBGRAPH_H_
#define TFREPRO_GRAPH_SUBGRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "graph/graph.h"

namespace tfrepro {

// Rewrites `graph` in place:
//  * each feeds[i] ("node" or "node:port") is replaced by a _Feed node with
//    attr index=i, and consumers are redirected to it;
//  * each fetches[i] gets a _Fetch node with attr index=i;
//  * `targets` names nodes that must execute even though nothing is fetched
//    from them (e.g. optimizer update ops);
//  * finally the graph is pruned to nodes reachable (backwards) from
//    fetches and targets.
Status RewriteGraphForExecution(Graph* graph,
                                const std::vector<std::string>& feeds,
                                const std::vector<std::string>& fetches,
                                const std::vector<std::string>& targets);

// Removes every node not reachable backwards from `roots` (following data
// and control edges; NextIteration back edges are followed too, so whole
// loops stay intact).
void PruneForReverseReachability(Graph* graph, std::vector<Node*> roots);

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_SUBGRAPH_H_
