// Static shape inference over partially-known shapes (paper §3.1 mentions
// "more sophisticated shape inference" as the cost of variable-size
// dimensions; this is the standard machinery). Each operation registers a
// shape function that maps (possibly unknown) input shapes to output
// shapes; InferShapes propagates them in topological order and reports
// incompatibilities at graph-construction time instead of at kernel
// execution time.

#ifndef TFREPRO_GRAPH_SHAPE_INFERENCE_H_
#define TFREPRO_GRAPH_SHAPE_INFERENCE_H_

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "graph/graph.h"

namespace tfrepro {

// A shape whose rank and/or dimensions may be unknown (-1).
class PartialShape {
 public:
  // Unknown rank.
  PartialShape() = default;
  // Known rank with (possibly unknown, -1) dims.
  explicit PartialShape(std::vector<int64_t> dims)
      : has_rank_(true), dims_(std::move(dims)) {}
  static PartialShape FromShape(const TensorShape& shape) {
    return PartialShape(shape.dims());
  }
  static PartialShape UnknownOfRank(int rank) {
    return PartialShape(std::vector<int64_t>(rank, -1));
  }

  bool has_rank() const { return has_rank_; }
  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const { return dims_[i]; }
  bool dim_known(int i) const { return dims_[i] >= 0; }
  const std::vector<int64_t>& dims() const { return dims_; }
  bool FullyKnown() const;

  // Merges two constraints: unknown components adopt known ones; known
  // components must agree.
  static Result<PartialShape> Merge(const PartialShape& a,
                                    const PartialShape& b);

  // True if a tensor of shape `s` satisfies this constraint.
  bool IsCompatibleWith(const TensorShape& s) const;

  std::string DebugString() const;

 private:
  bool has_rank_ = false;
  std::vector<int64_t> dims_;
};

// Per-node context handed to shape functions.
class ShapeInferenceContext {
 public:
  ShapeInferenceContext(const Node* node,
                        std::vector<PartialShape> input_shapes)
      : node_(node),
        input_shapes_(std::move(input_shapes)),
        output_shapes_(node->num_outputs()) {}

  const Node& node() const { return *node_; }
  int num_inputs() const { return static_cast<int>(input_shapes_.size()); }
  const PartialShape& input(int i) const { return input_shapes_[i]; }

  void set_output(int i, PartialShape shape) {
    output_shapes_[i] = std::move(shape);
  }
  const std::vector<PartialShape>& output_shapes() const {
    return output_shapes_;
  }

  // If input i is produced by a Const of int32 vector, returns its values
  // (lets Reshape/Fill-style ops resolve shapes statically).
  std::optional<std::vector<int64_t>> ConstIntVector(int i) const;

  // Helpers for common idioms.
  Status WithRank(const PartialShape& shape, int rank, PartialShape* out) const;
  Status WithRankAtLeast(const PartialShape& shape, int rank,
                         PartialShape* out) const;
  Status MergeDim(int64_t a, int64_t b, int64_t* out) const;

 private:
  const Node* node_;
  std::vector<PartialShape> input_shapes_;
  std::vector<PartialShape> output_shapes_;
};

using ShapeFn = std::function<Status(ShapeInferenceContext*)>;

class ShapeRegistry {
 public:
  static ShapeRegistry* Global();
  Status Register(const std::string& op_name, ShapeFn fn);
  const ShapeFn* Lookup(const std::string& op_name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ShapeFn> fns_;
};

namespace shape_registration {
struct ShapeRegistrar {
  ShapeRegistrar(const char* op_name, ShapeFn fn);
};
}  // namespace shape_registration

#define REGISTER_SHAPE_FN(op_name, fn)                         \
  static const ::tfrepro::shape_registration::ShapeRegistrar   \
      REGISTER_OP_CONCAT(shape_registrar_, __COUNTER__)(op_name, fn)

// Infers shapes for every node (topological order). Ops without a
// registered shape function get unknown output shapes (permissive).
// Returns an error for provably-incompatible graphs. If `shapes` is
// non-null it receives the inferred shape for every (node id, output).
Status InferShapes(const Graph& graph,
                   std::map<std::pair<int, int>, PartialShape>* shapes = nullptr);

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_SHAPE_INFERENCE_H_
