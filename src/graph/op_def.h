// OpDef: the schema of an operation type — its inputs, outputs, and attrs
// (paper §3.1). Ops can be generic (types resolved through a "type" attr)
// and variadic (arity resolved through an "int" attr, like AddN's N).

#ifndef TFREPRO_GRAPH_OP_DEF_H_
#define TFREPRO_GRAPH_OP_DEF_H_

#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "graph/attr_value.h"

namespace tfrepro {

// One input or output argument in an op schema.
struct ArgDef {
  std::string name;
  // Exactly one of `type` / `type_attr` is set: either a concrete type, or
  // the name of a "type" attr on the node that supplies it.
  DataType type = DataType::kInvalid;
  std::string type_attr;
  // If non-empty, this arg is a repeated sequence whose length is given by
  // the named "int" attr (e.g. AddN's inputs: "inputs: N * T").
  std::string number_attr;
  // If non-empty, this arg is a heterogeneous list whose types are given by
  // the named "list(type)" attr (e.g. Merge/DynamicStitch variants).
  std::string type_list_attr;
  // Reference argument (mutable buffer handle, e.g. Variable's output).
  bool is_ref = false;
};

struct AttrDef {
  std::string name;
  std::string type;  // "int", "float", "bool", "string", "type", "shape",
                     // "tensor", "list(int)", "list(type)", ...
  AttrValue default_value;  // Kind::kNone if no default.
  bool has_default = false;
};

class OpDef {
 public:
  const std::string& name() const { return name_; }
  const std::vector<ArgDef>& inputs() const { return inputs_; }
  const std::vector<ArgDef>& outputs() const { return outputs_; }
  const std::vector<AttrDef>& attrs() const { return attrs_; }
  bool is_stateful() const { return is_stateful_; }
  bool allows_uninitialized_input() const {
    return allows_uninitialized_input_;
  }

  const AttrDef* FindAttr(const std::string& name) const;

  std::string DebugString() const;

 private:
  friend class OpDefBuilder;
  std::string name_;
  std::vector<ArgDef> inputs_;
  std::vector<ArgDef> outputs_;
  std::vector<AttrDef> attrs_;
  bool is_stateful_ = false;
  bool allows_uninitialized_input_ = false;
};

// Builds an OpDef from compact spec strings:
//   input/output specs:  "x: T", "y: float", "inputs: N * T", "ref: Ref(T)",
//                        "values: Tlist" (where Tlist is a list(type) attr)
//   attr specs:          "T: type", "N: int", "N: int = 4",
//                        "transpose_a: bool = false", "strides: list(int)",
//                        "padding: string = 'SAME'"
class OpDefBuilder {
 public:
  explicit OpDefBuilder(std::string name);

  OpDefBuilder& Input(const std::string& spec);
  OpDefBuilder& Output(const std::string& spec);
  OpDefBuilder& Attr(const std::string& spec);
  OpDefBuilder& SetIsStateful();
  OpDefBuilder& SetAllowsUninitializedInput();

  // Validates cross-references (every type_attr names a declared "type"
  // attr, etc.) and returns the finished OpDef.
  Result<OpDef> Build() const;

 private:
  Status ParseArg(const std::string& spec, ArgDef* arg) const;
  Status ParseAttr(const std::string& spec, AttrDef* attr) const;

  OpDef op_;
  std::vector<std::string> input_specs_;
  std::vector<std::string> output_specs_;
  std::vector<std::string> attr_specs_;
};

// Resolves the concrete input/output data types of a node given its attrs.
// Repeated args are expanded (an "N * T" input with N=3 contributes 3
// entries). Ref outputs are marked with the ref bit.
Status ResolveArgTypes(const OpDef& op_def, const AttrMap& attrs,
                       DataTypeVector* input_types,
                       DataTypeVector* output_types);

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_OP_DEF_H_
