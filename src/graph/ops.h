// Convenience constructors for standard operations — the C++ client layer
// of Figure 5. Each helper adds one node to the builder's graph and returns
// its primary output. All helpers propagate errors through the builder's
// sticky status.

#ifndef TFREPRO_GRAPH_OPS_H_
#define TFREPRO_GRAPH_OPS_H_

#include <string>
#include <vector>

#include "graph/graph_builder.h"

namespace tfrepro {
namespace ops {

// --- Constants & placeholders ---
Output Const(GraphBuilder* b, Tensor value, const std::string& name = "");
Output Const(GraphBuilder* b, float value);
Output Const(GraphBuilder* b, int32_t value);
Output Const(GraphBuilder* b, int64_t value);
Output ConstVecI32(GraphBuilder* b, const std::vector<int32_t>& values);
Output Placeholder(GraphBuilder* b, DataType dtype, const TensorShape& shape,
                   const std::string& name = "");

// --- Element-wise math ---
Output Add(GraphBuilder* b, Output x, Output y);
Output Sub(GraphBuilder* b, Output x, Output y);
Output Mul(GraphBuilder* b, Output x, Output y);
Output Div(GraphBuilder* b, Output x, Output y);
Output Pow(GraphBuilder* b, Output x, Output y);
Output Maximum(GraphBuilder* b, Output x, Output y);
Output Minimum(GraphBuilder* b, Output x, Output y);
Output SquaredDifference(GraphBuilder* b, Output x, Output y);
Output Neg(GraphBuilder* b, Output x);
Output Exp(GraphBuilder* b, Output x);
Output Log(GraphBuilder* b, Output x);
Output Sqrt(GraphBuilder* b, Output x);
Output Rsqrt(GraphBuilder* b, Output x);
Output Square(GraphBuilder* b, Output x);
Output Abs(GraphBuilder* b, Output x);
Output Sign(GraphBuilder* b, Output x);
Output Tanh(GraphBuilder* b, Output x);
Output Sigmoid(GraphBuilder* b, Output x);
Output Relu(GraphBuilder* b, Output x);
Output AddN(GraphBuilder* b, const std::vector<Output>& xs);

// --- Comparisons / logic / select ---
Output Less(GraphBuilder* b, Output x, Output y);
Output LessEqual(GraphBuilder* b, Output x, Output y);
Output Greater(GraphBuilder* b, Output x, Output y);
Output GreaterEqual(GraphBuilder* b, Output x, Output y);
Output Equal(GraphBuilder* b, Output x, Output y);
Output LogicalAnd(GraphBuilder* b, Output x, Output y);
Output LogicalNot(GraphBuilder* b, Output x);
Output Select(GraphBuilder* b, Output cond, Output t, Output e);
Output Cast(GraphBuilder* b, Output x, DataType dst);

// --- Linear algebra / NN ---
Output MatMul(GraphBuilder* b, Output x, Output y, bool transpose_a = false,
              bool transpose_b = false);
Output BiasAdd(GraphBuilder* b, Output value, Output bias);
Output Conv2D(GraphBuilder* b, Output input, Output filter,
              const std::vector<int64_t>& strides, const std::string& padding);
Output MaxPool(GraphBuilder* b, Output input, const std::vector<int64_t>& ksize,
               const std::vector<int64_t>& strides, const std::string& padding);
Output AvgPool(GraphBuilder* b, Output input, const std::vector<int64_t>& ksize,
               const std::vector<int64_t>& strides, const std::string& padding);
Output Softmax(GraphBuilder* b, Output logits);
Output LogSoftmax(GraphBuilder* b, Output logits);
// Returns (loss, backprop) node; use Output(node, 0) / Output(node, 1).
Node* SoftmaxCrossEntropyWithLogits(GraphBuilder* b, Output features,
                                    Output labels);
Node* SparseSoftmaxCrossEntropyWithLogits(GraphBuilder* b, Output features,
                                          Output labels);
Output L2Loss(GraphBuilder* b, Output t);

// --- Reductions ---
Output Sum(GraphBuilder* b, Output x, Output axes, bool keep_dims = false);
Output Mean(GraphBuilder* b, Output x, Output axes, bool keep_dims = false);
Output MaxReduce(GraphBuilder* b, Output x, Output axes,
                 bool keep_dims = false);
// Reduce over all axes (uses Range(0, Rank(x)) so it works for any rank).
Output SumAll(GraphBuilder* b, Output x);
Output MeanAll(GraphBuilder* b, Output x);
Output ArgMax(GraphBuilder* b, Output x, int32_t axis);

// --- Array ---
Output Shape(GraphBuilder* b, Output x);
Output Reshape(GraphBuilder* b, Output x, Output shape);
Output Reshape(GraphBuilder* b, Output x, const std::vector<int32_t>& shape);
Output ExpandDims(GraphBuilder* b, Output x, int32_t dim);
Output ZerosLike(GraphBuilder* b, Output x);
Output OnesLike(GraphBuilder* b, Output x);
Output Fill(GraphBuilder* b, Output dims, Output value);
Output Range(GraphBuilder* b, Output start, Output limit, Output delta);
Output Concat(GraphBuilder* b, int32_t axis, const std::vector<Output>& xs);
std::vector<Output> Split(GraphBuilder* b, int32_t axis, Output value,
                          int num_split);
Output Slice(GraphBuilder* b, Output input, const std::vector<int32_t>& begin,
             const std::vector<int32_t>& size);
Output Slice(GraphBuilder* b, Output input, Output begin, Output size);
Output Transpose(GraphBuilder* b, Output x, const std::vector<int32_t>& perm);
Output Tile(GraphBuilder* b, Output input, const std::vector<int32_t>& mult);
Output Tile(GraphBuilder* b, Output input, Output mult);
// Sums grad down to the shape of target (inverse of broadcasting).
Output SumToShapeOf(GraphBuilder* b, Output grad, Output target);
// Number of elements of x, as a scalar int32.
Output Size(GraphBuilder* b, Output x);
Output Rank(GraphBuilder* b, Output x);
Output Pack(GraphBuilder* b, const std::vector<Output>& xs, int64_t axis = 0);
std::vector<Output> Unpack(GraphBuilder* b, Output value, int num,
                           int64_t axis = 0);
Output OneHot(GraphBuilder* b, Output indices, int32_t depth, float on = 1.0f,
              float off = 0.0f);
Output Gather(GraphBuilder* b, Output params, Output indices);
std::vector<Output> DynamicPartition(GraphBuilder* b, Output data,
                                     Output partitions, int num_partitions);
Output DynamicStitch(GraphBuilder* b, const std::vector<Output>& indices,
                     const std::vector<Output>& data);
Output UnsortedSegmentSum(GraphBuilder* b, Output data, Output segment_ids,
                          Output num_segments);

// --- Random ---
Output RandomUniform(GraphBuilder* b, const std::vector<int32_t>& shape,
                     DataType dtype = DataType::kFloat, int64_t seed = 0);
Output RandomNormal(GraphBuilder* b, const std::vector<int32_t>& shape,
                    DataType dtype = DataType::kFloat, int64_t seed = 0);
Output TruncatedNormal(GraphBuilder* b, const std::vector<int32_t>& shape,
                       DataType dtype = DataType::kFloat, int64_t seed = 0);

// --- State ---
Output Variable(GraphBuilder* b, DataType dtype, const TensorShape& shape,
                const std::string& name = "");
Output Assign(GraphBuilder* b, Output ref, Output value);
Output AssignAdd(GraphBuilder* b, Output ref, Output value);
Output AssignSub(GraphBuilder* b, Output ref, Output value);
Output ScatterAdd(GraphBuilder* b, Output ref, Output indices, Output updates);
Output ScatterSub(GraphBuilder* b, Output ref, Output indices, Output updates);

// --- Control flow primitives (§3.4) ---
// Returns the Switch node; output 0 = false branch, output 1 = true branch.
Node* Switch(GraphBuilder* b, Output data, Output pred);
Node* Merge(GraphBuilder* b, const std::vector<Output>& inputs);
Output Enter(GraphBuilder* b, Output data, const std::string& frame_name,
             bool is_constant = false);
Output Exit(GraphBuilder* b, Output data);
Output NextIteration(GraphBuilder* b, Output data);
Output LoopCond(GraphBuilder* b, Output pred);

// Identity / grouping.
Output Identity(GraphBuilder* b, Output x);
Output StopGradient(GraphBuilder* b, Output x);
// A NoOp node with control dependencies on all of `deps` — the standard
// "group" node used as a Run target.
Node* Group(GraphBuilder* b, const std::vector<Output>& deps,
            const std::string& name = "");

// The issuing master's step id as an int64 scalar (stateful: never folded).
// Tags gradients for the sync-replica staleness filter (§4.4).
Output StepId(GraphBuilder* b);

// --- Queues (§3.1) ---
Output FIFOQueue(GraphBuilder* b, const DataTypeVector& component_types,
                 int64_t capacity, const std::string& shared_name = "");
Output RandomShuffleQueue(GraphBuilder* b,
                          const DataTypeVector& component_types,
                          int64_t capacity, int64_t min_after_dequeue,
                          const std::string& shared_name = "");
Node* QueueEnqueue(GraphBuilder* b, Output handle,
                   const std::vector<Output>& components);
Node* QueueEnqueueMany(GraphBuilder* b, Output handle,
                       const std::vector<Output>& components);
std::vector<Output> QueueDequeue(GraphBuilder* b, Output handle,
                                 const DataTypeVector& component_types);
std::vector<Output> QueueDequeueMany(GraphBuilder* b, Output handle, Output n,
                                     const DataTypeVector& component_types);
// Like QueueDequeueMany, but component 0 of each tuple must be an int64
// step tag (see StepId): tuples tagged older than the queue's stale floor
// are dropped, and once `n` fresh tuples are collected the floor advances
// past the calling step's id (§4.4 staleness filter for sync replicas).
std::vector<Output> QueueDequeueFreshMany(GraphBuilder* b, Output handle,
                                          Output n,
                                          const DataTypeVector& component_types);
Output QueueSize(GraphBuilder* b, Output handle);
Node* QueueClose(GraphBuilder* b, Output handle,
                 bool cancel_pending_enqueues = false);

// --- Input pipelines (Figure 1; data/dataset.h) ---
// Dataset ops output a string handle naming a DatasetResource; chain them
// (RecordFile -> Repeat -> ParallelMap -> Shuffle -> Batch -> Prefetch)
// and pull elements with IteratorGetNext. The whole chain must be
// colocated on one device (handles resolve in the device resource mgr).
Output RecordFileDataset(GraphBuilder* b,
                         const std::vector<std::string>& filenames,
                         const std::string& shared_name = "");
Output ParallelMapDataset(GraphBuilder* b, Output input,
                          const std::string& map_fn, int64_t parallelism,
                          const DataTypeVector& output_types,
                          const std::string& shared_name = "");
Output ShuffleDataset(GraphBuilder* b, Output input, int64_t buffer_size,
                      int64_t seed = 0, const std::string& shared_name = "");
Output RepeatDataset(GraphBuilder* b, Output input, int64_t count = -1,
                     const std::string& shared_name = "");
Output BatchDataset(GraphBuilder* b, Output input, int64_t batch_size,
                    bool drop_remainder = false,
                    const std::string& shared_name = "");
Output PrefetchDataset(GraphBuilder* b, Output input, int64_t buffer_size = 2,
                       const std::string& shared_name = "");
// Client of a shared data-service pipeline task (distributed transport):
// consumer `consumer` of `num_consumers`, served round-robin.
Output DataServiceDataset(GraphBuilder* b, int64_t port, int64_t consumer,
                          int64_t num_consumers,
                          const DataTypeVector& output_types,
                          const std::string& shared_name = "");
std::vector<Output> IteratorGetNext(GraphBuilder* b, Output handle,
                                    const DataTypeVector& output_types,
                                    const std::string& name = "");

// --- Checkpointing (§4.3) ---
Node* Save(GraphBuilder* b, Output filename, Output tensor_names,
           const std::vector<Output>& tensors);
Output Restore(GraphBuilder* b, Output file_pattern, Output tensor_name,
               DataType dt);

}  // namespace ops
}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_OPS_H_
