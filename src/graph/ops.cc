#include "graph/ops.h"

namespace tfrepro {
namespace ops {

namespace {

// Most ops carry their element type in attr "T" derived from an input.
Output Binary(GraphBuilder* b, const char* op, Output x, Output y) {
  return b->Op(op)
      .Input(x)
      .Input(y)
      .Attr("T", BaseType(x.dtype()))
      .Finalize();
}

Output Unary(GraphBuilder* b, const char* op, Output x) {
  return b->Op(op).Input(x).Attr("T", BaseType(x.dtype())).Finalize();
}

}  // namespace

Output Const(GraphBuilder* b, Tensor value, const std::string& name) {
  NodeBuilder nb = b->Op("Const");
  if (!name.empty()) nb.Name(name);
  return nb.Attr("dtype", value.dtype()).Attr("value", std::move(value))
      .Finalize();
}
Output Const(GraphBuilder* b, float value) {
  return Const(b, Tensor::Scalar(value));
}
Output Const(GraphBuilder* b, int32_t value) {
  return Const(b, Tensor::Scalar(value));
}
Output Const(GraphBuilder* b, int64_t value) {
  return Const(b, Tensor::Scalar(value));
}
Output ConstVecI32(GraphBuilder* b, const std::vector<int32_t>& values) {
  return Const(b, Tensor::Vec<int32_t>(values));
}

Output Placeholder(GraphBuilder* b, DataType dtype, const TensorShape& shape,
                   const std::string& name) {
  NodeBuilder nb = b->Op("Placeholder");
  if (!name.empty()) nb.Name(name);
  return nb.Attr("dtype", dtype).Attr("shape", shape).Finalize();
}

Output Add(GraphBuilder* b, Output x, Output y) { return Binary(b, "Add", x, y); }
Output Sub(GraphBuilder* b, Output x, Output y) { return Binary(b, "Sub", x, y); }
Output Mul(GraphBuilder* b, Output x, Output y) { return Binary(b, "Mul", x, y); }
Output Div(GraphBuilder* b, Output x, Output y) { return Binary(b, "Div", x, y); }
Output Pow(GraphBuilder* b, Output x, Output y) { return Binary(b, "Pow", x, y); }
Output Maximum(GraphBuilder* b, Output x, Output y) {
  return Binary(b, "Maximum", x, y);
}
Output Minimum(GraphBuilder* b, Output x, Output y) {
  return Binary(b, "Minimum", x, y);
}
Output SquaredDifference(GraphBuilder* b, Output x, Output y) {
  return Binary(b, "SquaredDifference", x, y);
}
Output Neg(GraphBuilder* b, Output x) { return Unary(b, "Neg", x); }
Output Exp(GraphBuilder* b, Output x) { return Unary(b, "Exp", x); }
Output Log(GraphBuilder* b, Output x) { return Unary(b, "Log", x); }
Output Sqrt(GraphBuilder* b, Output x) { return Unary(b, "Sqrt", x); }
Output Rsqrt(GraphBuilder* b, Output x) { return Unary(b, "Rsqrt", x); }
Output Square(GraphBuilder* b, Output x) { return Unary(b, "Square", x); }
Output Abs(GraphBuilder* b, Output x) { return Unary(b, "Abs", x); }
Output Sign(GraphBuilder* b, Output x) { return Unary(b, "Sign", x); }
Output Tanh(GraphBuilder* b, Output x) { return Unary(b, "Tanh", x); }
Output Sigmoid(GraphBuilder* b, Output x) { return Unary(b, "Sigmoid", x); }
Output Relu(GraphBuilder* b, Output x) { return Unary(b, "Relu", x); }

Output AddN(GraphBuilder* b, const std::vector<Output>& xs) {
  if (xs.empty()) {
    b->UpdateStatus(InvalidArgument("AddN with no inputs"));
    return Output();
  }
  return b->Op("AddN")
      .Input(xs)
      .Attr("N", static_cast<int64_t>(xs.size()))
      .Attr("T", BaseType(xs[0].dtype()))
      .Finalize();
}

Output Less(GraphBuilder* b, Output x, Output y) {
  return Binary(b, "Less", x, y);
}
Output LessEqual(GraphBuilder* b, Output x, Output y) {
  return Binary(b, "LessEqual", x, y);
}
Output Greater(GraphBuilder* b, Output x, Output y) {
  return Binary(b, "Greater", x, y);
}
Output GreaterEqual(GraphBuilder* b, Output x, Output y) {
  return Binary(b, "GreaterEqual", x, y);
}
Output Equal(GraphBuilder* b, Output x, Output y) {
  return Binary(b, "Equal", x, y);
}
Output LogicalAnd(GraphBuilder* b, Output x, Output y) {
  return b->Op("LogicalAnd").Input(x).Input(y).Finalize();
}
Output LogicalNot(GraphBuilder* b, Output x) {
  return b->Op("LogicalNot").Input(x).Finalize();
}
Output Select(GraphBuilder* b, Output cond, Output t, Output e) {
  return b->Op("Select")
      .Input(cond)
      .Input(t)
      .Input(e)
      .Attr("T", BaseType(t.dtype()))
      .Finalize();
}
Output Cast(GraphBuilder* b, Output x, DataType dst) {
  return b->Op("Cast")
      .Input(x)
      .Attr("SrcT", BaseType(x.dtype()))
      .Attr("DstT", dst)
      .Finalize();
}

Output MatMul(GraphBuilder* b, Output x, Output y, bool transpose_a,
              bool transpose_b) {
  return b->Op("MatMul")
      .Input(x)
      .Input(y)
      .Attr("T", BaseType(x.dtype()))
      .Attr("transpose_a", transpose_a)
      .Attr("transpose_b", transpose_b)
      .Finalize();
}
Output BiasAdd(GraphBuilder* b, Output value, Output bias) {
  return Binary(b, "BiasAdd", value, bias);
}
Output Conv2D(GraphBuilder* b, Output input, Output filter,
              const std::vector<int64_t>& strides,
              const std::string& padding) {
  return b->Op("Conv2D")
      .Input(input)
      .Input(filter)
      .Attr("T", BaseType(input.dtype()))
      .Attr("strides", strides)
      .Attr("padding", padding)
      .Finalize();
}
Output MaxPool(GraphBuilder* b, Output input, const std::vector<int64_t>& ksize,
               const std::vector<int64_t>& strides,
               const std::string& padding) {
  return b->Op("MaxPool")
      .Input(input)
      .Attr("T", BaseType(input.dtype()))
      .Attr("ksize", ksize)
      .Attr("strides", strides)
      .Attr("padding", padding)
      .Finalize();
}
Output AvgPool(GraphBuilder* b, Output input, const std::vector<int64_t>& ksize,
               const std::vector<int64_t>& strides,
               const std::string& padding) {
  return b->Op("AvgPool")
      .Input(input)
      .Attr("T", BaseType(input.dtype()))
      .Attr("ksize", ksize)
      .Attr("strides", strides)
      .Attr("padding", padding)
      .Finalize();
}
Output Softmax(GraphBuilder* b, Output logits) {
  return Unary(b, "Softmax", logits);
}
Output LogSoftmax(GraphBuilder* b, Output logits) {
  return Unary(b, "LogSoftmax", logits);
}
Node* SoftmaxCrossEntropyWithLogits(GraphBuilder* b, Output features,
                                    Output labels) {
  return b->Op("SoftmaxCrossEntropyWithLogits")
      .Input(features)
      .Input(labels)
      .Attr("T", BaseType(features.dtype()))
      .FinalizeNode();
}
Node* SparseSoftmaxCrossEntropyWithLogits(GraphBuilder* b, Output features,
                                          Output labels) {
  return b->Op("SparseSoftmaxCrossEntropyWithLogits")
      .Input(features)
      .Input(labels)
      .Attr("T", BaseType(features.dtype()))
      .Attr("Tlabels", BaseType(labels.dtype()))
      .FinalizeNode();
}
Output L2Loss(GraphBuilder* b, Output t) { return Unary(b, "L2Loss", t); }

namespace {
Output Reduce(GraphBuilder* b, const char* op, Output x, Output axes,
              bool keep_dims) {
  return b->Op(op)
      .Input(x)
      .Input(axes)
      .Attr("T", BaseType(x.dtype()))
      .Attr("keep_dims", keep_dims)
      .Finalize();
}
Output AllAxes(GraphBuilder* b, Output x) {
  Output rank = b->Op("Rank").Input(x).Attr("T", BaseType(x.dtype())).Finalize();
  return Range(b, Const(b, int32_t{0}), rank, Const(b, int32_t{1}));
}
}  // namespace

Output Sum(GraphBuilder* b, Output x, Output axes, bool keep_dims) {
  return Reduce(b, "Sum", x, axes, keep_dims);
}
Output Mean(GraphBuilder* b, Output x, Output axes, bool keep_dims) {
  return Reduce(b, "Mean", x, axes, keep_dims);
}
Output MaxReduce(GraphBuilder* b, Output x, Output axes, bool keep_dims) {
  return Reduce(b, "Max", x, axes, keep_dims);
}
Output SumAll(GraphBuilder* b, Output x) {
  return Sum(b, x, AllAxes(b, x));
}
Output MeanAll(GraphBuilder* b, Output x) {
  return Mean(b, x, AllAxes(b, x));
}
Output ArgMax(GraphBuilder* b, Output x, int32_t axis) {
  return b->Op("ArgMax")
      .Input(x)
      .Input(Const(b, axis))
      .Attr("T", BaseType(x.dtype()))
      .Finalize();
}

Output Shape(GraphBuilder* b, Output x) {
  return b->Op("Shape").Input(x).Attr("T", BaseType(x.dtype())).Finalize();
}
Output Reshape(GraphBuilder* b, Output x, Output shape) {
  return b->Op("Reshape")
      .Input(x)
      .Input(shape)
      .Attr("T", BaseType(x.dtype()))
      .Finalize();
}
Output Reshape(GraphBuilder* b, Output x, const std::vector<int32_t>& shape) {
  return Reshape(b, x, ConstVecI32(b, shape));
}
Output ExpandDims(GraphBuilder* b, Output x, int32_t dim) {
  return b->Op("ExpandDims")
      .Input(x)
      .Input(Const(b, dim))
      .Attr("T", BaseType(x.dtype()))
      .Finalize();
}
Output ZerosLike(GraphBuilder* b, Output x) {
  return Unary(b, "ZerosLike", x);
}
Output OnesLike(GraphBuilder* b, Output x) { return Unary(b, "OnesLike", x); }
Output Fill(GraphBuilder* b, Output dims, Output value) {
  return b->Op("Fill")
      .Input(dims)
      .Input(value)
      .Attr("T", BaseType(value.dtype()))
      .Finalize();
}
Output Range(GraphBuilder* b, Output start, Output limit, Output delta) {
  return b->Op("Range").Input(start).Input(limit).Input(delta).Finalize();
}
Output Concat(GraphBuilder* b, int32_t axis, const std::vector<Output>& xs) {
  if (xs.empty()) {
    b->UpdateStatus(InvalidArgument("Concat with no inputs"));
    return Output();
  }
  return b->Op("Concat")
      .Input(Const(b, axis))
      .Input(xs)
      .Attr("N", static_cast<int64_t>(xs.size()))
      .Attr("T", BaseType(xs[0].dtype()))
      .Finalize();
}
std::vector<Output> Split(GraphBuilder* b, int32_t axis, Output value,
                          int num_split) {
  Node* node = b->Op("Split")
                   .Input(Const(b, axis))
                   .Input(value)
                   .Attr("num_split", static_cast<int64_t>(num_split))
                   .Attr("T", BaseType(value.dtype()))
                   .FinalizeNode();
  std::vector<Output> outs;
  for (int i = 0; i < num_split; ++i) {
    outs.emplace_back(node, node == nullptr ? 0 : i);
  }
  return outs;
}
Output Slice(GraphBuilder* b, Output input, const std::vector<int32_t>& begin,
             const std::vector<int32_t>& size) {
  return b->Op("Slice")
      .Input(input)
      .Input(ConstVecI32(b, begin))
      .Input(ConstVecI32(b, size))
      .Attr("T", BaseType(input.dtype()))
      .Finalize();
}
Output Slice(GraphBuilder* b, Output input, Output begin, Output size) {
  return b->Op("Slice")
      .Input(input)
      .Input(begin)
      .Input(size)
      .Attr("T", BaseType(input.dtype()))
      .Finalize();
}
Output Tile(GraphBuilder* b, Output input, Output mult) {
  return b->Op("Tile")
      .Input(input)
      .Input(mult)
      .Attr("T", BaseType(input.dtype()))
      .Finalize();
}
Output SumToShapeOf(GraphBuilder* b, Output grad, Output target) {
  return b->Op("SumToShapeOf")
      .Input(grad)
      .Input(target)
      .Attr("T", BaseType(grad.dtype()))
      .Finalize();
}
Output Size(GraphBuilder* b, Output x) {
  return b->Op("Size").Input(x).Attr("T", BaseType(x.dtype())).Finalize();
}
Output Rank(GraphBuilder* b, Output x) {
  return b->Op("Rank").Input(x).Attr("T", BaseType(x.dtype())).Finalize();
}

Output Transpose(GraphBuilder* b, Output x, const std::vector<int32_t>& perm) {
  return b->Op("Transpose")
      .Input(x)
      .Input(ConstVecI32(b, perm))
      .Attr("T", BaseType(x.dtype()))
      .Finalize();
}
Output Tile(GraphBuilder* b, Output input, const std::vector<int32_t>& mult) {
  return b->Op("Tile")
      .Input(input)
      .Input(ConstVecI32(b, mult))
      .Attr("T", BaseType(input.dtype()))
      .Finalize();
}
Output Pack(GraphBuilder* b, const std::vector<Output>& xs, int64_t axis) {
  if (xs.empty()) {
    b->UpdateStatus(InvalidArgument("Pack with no inputs"));
    return Output();
  }
  return b->Op("Pack")
      .Input(xs)
      .Attr("N", static_cast<int64_t>(xs.size()))
      .Attr("T", BaseType(xs[0].dtype()))
      .Attr("axis", axis)
      .Finalize();
}
std::vector<Output> Unpack(GraphBuilder* b, Output value, int num,
                           int64_t axis) {
  Node* node = b->Op("Unpack")
                   .Input(value)
                   .Attr("num", static_cast<int64_t>(num))
                   .Attr("T", BaseType(value.dtype()))
                   .Attr("axis", axis)
                   .FinalizeNode();
  std::vector<Output> outs;
  for (int i = 0; i < num; ++i) {
    outs.emplace_back(node, node == nullptr ? 0 : i);
  }
  return outs;
}
Output OneHot(GraphBuilder* b, Output indices, int32_t depth, float on,
              float off) {
  return b->Op("OneHot")
      .Input(indices)
      .Input(Const(b, depth))
      .Input(Const(b, on))
      .Input(Const(b, off))
      .Attr("T", DataType::kFloat)
      .Attr("TI", BaseType(indices.dtype()))
      .Finalize();
}
Output Gather(GraphBuilder* b, Output params, Output indices) {
  return b->Op("Gather")
      .Input(params)
      .Input(indices)
      .Attr("T", BaseType(params.dtype()))
      .Attr("Tindices", BaseType(indices.dtype()))
      .Finalize();
}
std::vector<Output> DynamicPartition(GraphBuilder* b, Output data,
                                     Output partitions, int num_partitions) {
  Node* node = b->Op("DynamicPartition")
                   .Input(data)
                   .Input(partitions)
                   .Attr("num_partitions", static_cast<int64_t>(num_partitions))
                   .Attr("T", BaseType(data.dtype()))
                   .FinalizeNode();
  std::vector<Output> outs;
  for (int i = 0; i < num_partitions; ++i) {
    outs.emplace_back(node, node == nullptr ? 0 : i);
  }
  return outs;
}
Output DynamicStitch(GraphBuilder* b, const std::vector<Output>& indices,
                     const std::vector<Output>& data) {
  if (indices.empty() || indices.size() != data.size()) {
    b->UpdateStatus(InvalidArgument("DynamicStitch arity mismatch"));
    return Output();
  }
  return b->Op("DynamicStitch")
      .Input(indices)
      .Input(data)
      .Attr("N", static_cast<int64_t>(indices.size()))
      .Attr("T", BaseType(data[0].dtype()))
      .Finalize();
}
Output UnsortedSegmentSum(GraphBuilder* b, Output data, Output segment_ids,
                          Output num_segments) {
  return b->Op("UnsortedSegmentSum")
      .Input(data)
      .Input(segment_ids)
      .Input(num_segments)
      .Attr("T", BaseType(data.dtype()))
      .Attr("Tindices", BaseType(segment_ids.dtype()))
      .Finalize();
}

namespace {
Output Random(GraphBuilder* b, const char* op,
              const std::vector<int32_t>& shape, DataType dtype,
              int64_t seed) {
  return b->Op(op)
      .Input(ConstVecI32(b, shape))
      .Attr("dtype", dtype)
      .Attr("seed", seed)
      .Finalize();
}
}  // namespace

Output RandomUniform(GraphBuilder* b, const std::vector<int32_t>& shape,
                     DataType dtype, int64_t seed) {
  return Random(b, "RandomUniform", shape, dtype, seed);
}
Output RandomNormal(GraphBuilder* b, const std::vector<int32_t>& shape,
                    DataType dtype, int64_t seed) {
  return Random(b, "RandomStandardNormal", shape, dtype, seed);
}
Output TruncatedNormal(GraphBuilder* b, const std::vector<int32_t>& shape,
                       DataType dtype, int64_t seed) {
  return Random(b, "TruncatedNormal", shape, dtype, seed);
}

Output Variable(GraphBuilder* b, DataType dtype, const TensorShape& shape,
                const std::string& name) {
  NodeBuilder nb = b->Op("Variable");
  if (!name.empty()) nb.Name(name);
  return nb.Attr("dtype", dtype).Attr("shape", shape).Finalize();
}
Output Assign(GraphBuilder* b, Output ref, Output value) {
  return b->Op("Assign")
      .Input(ref)
      .Input(value)
      .Attr("T", BaseType(ref.dtype()))
      .Finalize();
}
Output AssignAdd(GraphBuilder* b, Output ref, Output value) {
  return b->Op("AssignAdd")
      .Input(ref)
      .Input(value)
      .Attr("T", BaseType(ref.dtype()))
      .Finalize();
}
Output AssignSub(GraphBuilder* b, Output ref, Output value) {
  return b->Op("AssignSub")
      .Input(ref)
      .Input(value)
      .Attr("T", BaseType(ref.dtype()))
      .Finalize();
}
Output ScatterAdd(GraphBuilder* b, Output ref, Output indices,
                  Output updates) {
  return b->Op("ScatterAdd")
      .Input(ref)
      .Input(indices)
      .Input(updates)
      .Attr("T", BaseType(ref.dtype()))
      .Attr("Tindices", BaseType(indices.dtype()))
      .Finalize();
}
Output ScatterSub(GraphBuilder* b, Output ref, Output indices,
                  Output updates) {
  return b->Op("ScatterSub")
      .Input(ref)
      .Input(indices)
      .Input(updates)
      .Attr("T", BaseType(ref.dtype()))
      .Attr("Tindices", BaseType(indices.dtype()))
      .Finalize();
}

Node* Switch(GraphBuilder* b, Output data, Output pred) {
  return b->Op("Switch")
      .Input(data)
      .Input(pred)
      .Attr("T", BaseType(data.dtype()))
      .FinalizeNode();
}
Node* Merge(GraphBuilder* b, const std::vector<Output>& inputs) {
  if (inputs.empty()) {
    b->UpdateStatus(InvalidArgument("Merge with no inputs"));
    return nullptr;
  }
  return b->Op("Merge")
      .Input(inputs)
      .Attr("N", static_cast<int64_t>(inputs.size()))
      .Attr("T", BaseType(inputs[0].dtype()))
      .FinalizeNode();
}
Output Enter(GraphBuilder* b, Output data, const std::string& frame_name,
             bool is_constant) {
  return b->Op("Enter")
      .Input(data)
      .Attr("T", BaseType(data.dtype()))
      .Attr("frame_name", frame_name)
      .Attr("is_constant", is_constant)
      .Finalize();
}
Output Exit(GraphBuilder* b, Output data) {
  return b->Op("Exit").Input(data).Attr("T", BaseType(data.dtype())).Finalize();
}
Output NextIteration(GraphBuilder* b, Output data) {
  return b->Op("NextIteration")
      .Input(data)
      .Attr("T", BaseType(data.dtype()))
      .Finalize();
}
Output LoopCond(GraphBuilder* b, Output pred) {
  return b->Op("LoopCond").Input(pred).Finalize();
}

Output Identity(GraphBuilder* b, Output x) { return Unary(b, "Identity", x); }
Output StopGradient(GraphBuilder* b, Output x) {
  return Unary(b, "StopGradient", x);
}
Node* Group(GraphBuilder* b, const std::vector<Output>& deps,
            const std::string& name) {
  NodeBuilder nb = b->Op("NoOp");
  if (!name.empty()) nb.Name(name);
  for (const Output& d : deps) {
    if (d.node != nullptr) nb.ControlInput(d.node);
  }
  return nb.FinalizeNode();
}

Output StepId(GraphBuilder* b) { return b->Op("StepId").Finalize(); }

Output FIFOQueue(GraphBuilder* b, const DataTypeVector& component_types,
                 int64_t capacity, const std::string& shared_name) {
  return b->Op("FIFOQueue")
      .Attr("component_types", component_types)
      .Attr("capacity", capacity)
      .Attr("shared_name", shared_name)
      .Finalize();
}
Output RandomShuffleQueue(GraphBuilder* b,
                          const DataTypeVector& component_types,
                          int64_t capacity, int64_t min_after_dequeue,
                          const std::string& shared_name) {
  return b->Op("RandomShuffleQueue")
      .Attr("component_types", component_types)
      .Attr("capacity", capacity)
      .Attr("min_after_dequeue", min_after_dequeue)
      .Attr("shared_name", shared_name)
      .Finalize();
}

namespace {
DataTypeVector TypesOf(const std::vector<Output>& components) {
  DataTypeVector types;
  types.reserve(components.size());
  for (const Output& c : components) types.push_back(BaseType(c.dtype()));
  return types;
}
}  // namespace

Node* QueueEnqueue(GraphBuilder* b, Output handle,
                   const std::vector<Output>& components) {
  return b->Op("QueueEnqueue")
      .Input(handle)
      .Input(components)
      .Attr("Tcomponents", TypesOf(components))
      .FinalizeNode();
}
Node* QueueEnqueueMany(GraphBuilder* b, Output handle,
                       const std::vector<Output>& components) {
  return b->Op("QueueEnqueueMany")
      .Input(handle)
      .Input(components)
      .Attr("Tcomponents", TypesOf(components))
      .FinalizeNode();
}
std::vector<Output> QueueDequeue(GraphBuilder* b, Output handle,
                                 const DataTypeVector& component_types) {
  Node* node = b->Op("QueueDequeue")
                   .Input(handle)
                   .Attr("component_types", component_types)
                   .FinalizeNode();
  std::vector<Output> outs;
  for (size_t i = 0; i < component_types.size(); ++i) {
    outs.emplace_back(node, node == nullptr ? 0 : static_cast<int>(i));
  }
  return outs;
}
std::vector<Output> QueueDequeueMany(GraphBuilder* b, Output handle, Output n,
                                     const DataTypeVector& component_types) {
  Node* node = b->Op("QueueDequeueMany")
                   .Input(handle)
                   .Input(n)
                   .Attr("component_types", component_types)
                   .FinalizeNode();
  std::vector<Output> outs;
  for (size_t i = 0; i < component_types.size(); ++i) {
    outs.emplace_back(node, node == nullptr ? 0 : static_cast<int>(i));
  }
  return outs;
}
std::vector<Output> QueueDequeueFreshMany(
    GraphBuilder* b, Output handle, Output n,
    const DataTypeVector& component_types) {
  Node* node = b->Op("QueueDequeueFreshMany")
                   .Input(handle)
                   .Input(n)
                   .Attr("component_types", component_types)
                   .FinalizeNode();
  std::vector<Output> outs;
  for (size_t i = 0; i < component_types.size(); ++i) {
    outs.emplace_back(node, node == nullptr ? 0 : static_cast<int>(i));
  }
  return outs;
}
Output QueueSize(GraphBuilder* b, Output handle) {
  return b->Op("QueueSize").Input(handle).Finalize();
}
Node* QueueClose(GraphBuilder* b, Output handle,
                 bool cancel_pending_enqueues) {
  return b->Op("QueueClose")
      .Input(handle)
      .Attr("cancel_pending_enqueues", cancel_pending_enqueues)
      .FinalizeNode();
}

Output RecordFileDataset(GraphBuilder* b,
                         const std::vector<std::string>& filenames,
                         const std::string& shared_name) {
  return b->Op("RecordFileDataset")
      .Attr("filenames", filenames)
      .Attr("shared_name", shared_name)
      .Finalize();
}
Output ParallelMapDataset(GraphBuilder* b, Output input,
                          const std::string& map_fn, int64_t parallelism,
                          const DataTypeVector& output_types,
                          const std::string& shared_name) {
  return b->Op("ParallelMapDataset")
      .Input(input)
      .Attr("map_fn", map_fn)
      .Attr("parallelism", parallelism)
      .Attr("output_types", output_types)
      .Attr("shared_name", shared_name)
      .Finalize();
}
Output ShuffleDataset(GraphBuilder* b, Output input, int64_t buffer_size,
                      int64_t seed, const std::string& shared_name) {
  return b->Op("ShuffleDataset")
      .Input(input)
      .Attr("buffer_size", buffer_size)
      .Attr("seed", seed)
      .Attr("shared_name", shared_name)
      .Finalize();
}
Output RepeatDataset(GraphBuilder* b, Output input, int64_t count,
                     const std::string& shared_name) {
  return b->Op("RepeatDataset")
      .Input(input)
      .Attr("count", count)
      .Attr("shared_name", shared_name)
      .Finalize();
}
Output BatchDataset(GraphBuilder* b, Output input, int64_t batch_size,
                    bool drop_remainder, const std::string& shared_name) {
  return b->Op("BatchDataset")
      .Input(input)
      .Attr("batch_size", batch_size)
      .Attr("drop_remainder", drop_remainder)
      .Attr("shared_name", shared_name)
      .Finalize();
}
Output PrefetchDataset(GraphBuilder* b, Output input, int64_t buffer_size,
                       const std::string& shared_name) {
  return b->Op("PrefetchDataset")
      .Input(input)
      .Attr("buffer_size", buffer_size)
      .Attr("shared_name", shared_name)
      .Finalize();
}
Output DataServiceDataset(GraphBuilder* b, int64_t port, int64_t consumer,
                          int64_t num_consumers,
                          const DataTypeVector& output_types,
                          const std::string& shared_name) {
  return b->Op("DataServiceDataset")
      .Attr("port", port)
      .Attr("consumer", consumer)
      .Attr("num_consumers", num_consumers)
      .Attr("output_types", output_types)
      .Attr("shared_name", shared_name)
      .Finalize();
}
std::vector<Output> IteratorGetNext(GraphBuilder* b, Output handle,
                                    const DataTypeVector& output_types,
                                    const std::string& name) {
  NodeBuilder nb = b->Op("IteratorGetNext");
  if (!name.empty()) nb.Name(name);
  Node* node = nb.Input(handle).Attr("output_types", output_types)
                   .FinalizeNode();
  std::vector<Output> outs;
  for (size_t i = 0; i < output_types.size(); ++i) {
    outs.emplace_back(node, node == nullptr ? 0 : static_cast<int>(i));
  }
  return outs;
}

Node* Save(GraphBuilder* b, Output filename, Output tensor_names,
           const std::vector<Output>& tensors) {
  return b->Op("Save")
      .Input(filename)
      .Input(tensor_names)
      .Input(tensors)
      .Attr("T", TypesOf(tensors))
      .FinalizeNode();
}
Output Restore(GraphBuilder* b, Output file_pattern, Output tensor_name,
               DataType dt) {
  return b->Op("Restore")
      .Input(file_pattern)
      .Input(tensor_name)
      .Attr("dt", dt)
      .Finalize();
}

}  // namespace ops
}  // namespace tfrepro
