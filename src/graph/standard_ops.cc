// Schemas for the standard operation set (paper §5: "the runtime contains
// over 200 standard operations, including mathematical, array manipulation,
// control flow, and state management operations"). Kernels are registered
// separately in src/kernels/.

#include "graph/op_registry.h"

namespace tfrepro {
namespace {

// ---------------------------------------------------------------------------
// Constants, placeholders, identity.
// ---------------------------------------------------------------------------

REGISTER_OP("Const")
    .Output("output: dtype")
    .Attr("dtype: type")
    .Attr("value: tensor");

REGISTER_OP("Placeholder")
    .Output("output: dtype")
    .Attr("dtype: type")
    .Attr("shape: shape");

REGISTER_OP("Identity").Input("input: T").Output("output: T").Attr("T: type");

REGISTER_OP("StopGradient")
    .Input("input: T")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("NoOp");

// Internal nodes inserted by session graph rewriting for feeds/fetches.
REGISTER_OP("_Feed").Output("output: dtype").Attr("dtype: type").Attr(
    "index: int");
REGISTER_OP("_Fetch").Input("input: T").Attr("T: type").Attr("index: int");

// ---------------------------------------------------------------------------
// Element-wise math.
// ---------------------------------------------------------------------------

#define BINARY_OP(NAME) \
  REGISTER_OP(NAME).Input("x: T").Input("y: T").Output("z: T").Attr("T: type")

BINARY_OP("Add");
BINARY_OP("Sub");
BINARY_OP("Mul");
BINARY_OP("Div");
BINARY_OP("FloorDiv");
BINARY_OP("Mod");
BINARY_OP("Pow");
BINARY_OP("Maximum");
BINARY_OP("Minimum");
BINARY_OP("SquaredDifference");

#undef BINARY_OP

#define UNARY_OP(NAME) \
  REGISTER_OP(NAME).Input("x: T").Output("y: T").Attr("T: type")

UNARY_OP("Neg");
UNARY_OP("Exp");
UNARY_OP("Log");
UNARY_OP("Sqrt");
UNARY_OP("Rsqrt");
UNARY_OP("Square");
UNARY_OP("Abs");
UNARY_OP("Sign");
UNARY_OP("Tanh");
UNARY_OP("Sigmoid");
UNARY_OP("Relu");
UNARY_OP("Floor");
UNARY_OP("Ceil");
UNARY_OP("Reciprocal");

#undef UNARY_OP

// Fused activation gradients (paper §5: hand-implemented fused kernels for
// ReLU/Sigmoid and their gradients).
REGISTER_OP("ReluGrad")
    .Input("gradients: T")
    .Input("features: T")
    .Output("backprops: T")
    .Attr("T: type");
REGISTER_OP("SigmoidGrad")
    .Input("y: T")
    .Input("dy: T")
    .Output("z: T")
    .Attr("T: type");
REGISTER_OP("TanhGrad")
    .Input("y: T")
    .Input("dy: T")
    .Output("z: T")
    .Attr("T: type");

#define COMPARE_OP(NAME)  \
  REGISTER_OP(NAME)       \
      .Input("x: T")      \
      .Input("y: T")      \
      .Output("z: bool")  \
      .Attr("T: type")

COMPARE_OP("Less");
COMPARE_OP("LessEqual");
COMPARE_OP("Greater");
COMPARE_OP("GreaterEqual");
COMPARE_OP("Equal");
COMPARE_OP("NotEqual");

#undef COMPARE_OP

REGISTER_OP("LogicalAnd")
    .Input("x: bool")
    .Input("y: bool")
    .Output("z: bool");
REGISTER_OP("LogicalOr").Input("x: bool").Input("y: bool").Output("z: bool");
REGISTER_OP("LogicalNot").Input("x: bool").Output("y: bool");

REGISTER_OP("Select")
    .Input("condition: bool")
    .Input("t: T")
    .Input("e: T")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("Cast")
    .Input("x: SrcT")
    .Output("y: DstT")
    .Attr("SrcT: type")
    .Attr("DstT: type");

REGISTER_OP("MatMul")
    .Input("a: T")
    .Input("b: T")
    .Output("product: T")
    .Attr("T: type")
    .Attr("transpose_a: bool = false")
    .Attr("transpose_b: bool = false");

REGISTER_OP("AddN")
    .Input("inputs: N * T")
    .Output("sum: T")
    .Attr("N: int")
    .Attr("T: type");

REGISTER_OP("BiasAdd")
    .Input("value: T")
    .Input("bias: T")
    .Output("output: T")
    .Attr("T: type");
REGISTER_OP("BiasAddGrad")
    .Input("out_backprop: T")
    .Output("output: T")
    .Attr("T: type");

// Sums `grad` down to the shape of `target` (inverse of broadcasting).
// Emitted by the autodiff library for the inputs of broadcasting binary
// ops; the target tensor supplies only its shape.
REGISTER_OP("SumToShapeOf")
    .Input("grad: T")
    .Input("target: T")
    .Output("output: T")
    .Attr("T: type");

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

#define REDUCTION_OP(NAME)                 \
  REGISTER_OP(NAME)                        \
      .Input("input: T")                   \
      .Input("reduction_indices: int32")   \
      .Output("output: T")                 \
      .Attr("T: type")                     \
      .Attr("keep_dims: bool = false")

REDUCTION_OP("Sum");
REDUCTION_OP("Mean");
REDUCTION_OP("Max");
REDUCTION_OP("Min");
REDUCTION_OP("Prod");

#undef REDUCTION_OP

REGISTER_OP("ArgMax")
    .Input("input: T")
    .Input("dimension: int32")
    .Output("output: int64")
    .Attr("T: type");

// ---------------------------------------------------------------------------
// Array manipulation.
// ---------------------------------------------------------------------------

REGISTER_OP("Shape").Input("input: T").Output("output: int32").Attr("T: type");
REGISTER_OP("Rank").Input("input: T").Output("output: int32").Attr("T: type");
REGISTER_OP("Size").Input("input: T").Output("output: int32").Attr("T: type");

REGISTER_OP("Reshape")
    .Input("tensor: T")
    .Input("shape: int32")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("ExpandDims")
    .Input("input: T")
    .Input("dim: int32")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("Squeeze")
    .Input("input: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("squeeze_dims: list(int) = []");

REGISTER_OP("ZerosLike").Input("x: T").Output("y: T").Attr("T: type");
REGISTER_OP("OnesLike").Input("x: T").Output("y: T").Attr("T: type");

REGISTER_OP("Fill")
    .Input("dims: int32")
    .Input("value: T")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("Range")
    .Input("start: int32")
    .Input("limit: int32")
    .Input("delta: int32")
    .Output("output: int32");

REGISTER_OP("Concat")
    .Input("concat_dim: int32")
    .Input("values: N * T")
    .Output("output: T")
    .Attr("N: int")
    .Attr("T: type");

REGISTER_OP("Split")
    .Input("split_dim: int32")
    .Input("value: T")
    .Output("output: num_split * T")
    .Attr("num_split: int")
    .Attr("T: type");

REGISTER_OP("Slice")
    .Input("input: T")
    .Input("begin: int32")
    .Input("size: int32")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("Pad")
    .Input("input: T")
    .Input("paddings: int32")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("Transpose")
    .Input("x: T")
    .Input("perm: int32")
    .Output("y: T")
    .Attr("T: type");

REGISTER_OP("Tile")
    .Input("input: T")
    .Input("multiples: int32")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("Pack")
    .Input("values: N * T")
    .Output("output: T")
    .Attr("N: int")
    .Attr("T: type")
    .Attr("axis: int = 0");

REGISTER_OP("Unpack")
    .Input("value: T")
    .Output("output: num * T")
    .Attr("num: int")
    .Attr("T: type")
    .Attr("axis: int = 0");

REGISTER_OP("OneHot")
    .Input("indices: TI")
    .Input("depth: int32")
    .Input("on_value: T")
    .Input("off_value: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("TI: type = int64")
    .Attr("axis: int = -1");

// Sparse access ops (paper §4.2: Gather + dynamic partition + stitch form
// the sharded embedding layer).
REGISTER_OP("Gather")
    .Input("params: T")
    .Input("indices: Tindices")
    .Output("output: T")
    .Attr("T: type")
    .Attr("Tindices: type = int32");

REGISTER_OP("DynamicPartition")
    .Input("data: T")
    .Input("partitions: int32")
    .Output("outputs: num_partitions * T")
    .Attr("num_partitions: int")
    .Attr("T: type");

REGISTER_OP("DynamicStitch")
    .Input("indices: N * int32")
    .Input("data: N * T")
    .Output("merged: T")
    .Attr("N: int")
    .Attr("T: type");

REGISTER_OP("UnsortedSegmentSum")
    .Input("data: T")
    .Input("segment_ids: Tindices")
    .Input("num_segments: int32")
    .Output("output: T")
    .Attr("T: type")
    .Attr("Tindices: type = int32");

// ---------------------------------------------------------------------------
// Random ops.
// ---------------------------------------------------------------------------

#define RANDOM_OP(NAME)             \
  REGISTER_OP(NAME)                 \
      .Input("shape: int32")        \
      .Output("output: dtype")      \
      .Attr("dtype: type = float")  \
      .Attr("seed: int = 0")        \
      .Attr("seed2: int = 0")       \
      .SetIsStateful()

RANDOM_OP("RandomUniform");
RANDOM_OP("RandomStandardNormal");
RANDOM_OP("TruncatedNormal");

#undef RANDOM_OP

REGISTER_OP("RandomUniformInt")
    .Input("shape: int32")
    .Input("minval: T")
    .Input("maxval: T")
    .Output("output: T")
    .Attr("T: type = int64")
    .Attr("seed: int = 0")
    .Attr("seed2: int = 0")
    .SetIsStateful();

// ---------------------------------------------------------------------------
// Neural-network ops.
// ---------------------------------------------------------------------------

REGISTER_OP("Conv2D")
    .Input("input: T")
    .Input("filter: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("strides: list(int)")
    .Attr("padding: string = 'SAME'");

REGISTER_OP("Conv2DBackpropInput")
    .Input("input_sizes: int32")
    .Input("filter: T")
    .Input("out_backprop: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("strides: list(int)")
    .Attr("padding: string = 'SAME'");

REGISTER_OP("Conv2DBackpropFilter")
    .Input("input: T")
    .Input("filter_sizes: int32")
    .Input("out_backprop: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("strides: list(int)")
    .Attr("padding: string = 'SAME'");

REGISTER_OP("MaxPool")
    .Input("input: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("ksize: list(int)")
    .Attr("strides: list(int)")
    .Attr("padding: string = 'SAME'");

REGISTER_OP("MaxPoolGrad")
    .Input("orig_input: T")
    .Input("orig_output: T")
    .Input("grad: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("ksize: list(int)")
    .Attr("strides: list(int)")
    .Attr("padding: string = 'SAME'");

REGISTER_OP("AvgPool")
    .Input("input: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("ksize: list(int)")
    .Attr("strides: list(int)")
    .Attr("padding: string = 'SAME'");

REGISTER_OP("AvgPoolGrad")
    .Input("orig_input_shape: int32")
    .Input("grad: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("ksize: list(int)")
    .Attr("strides: list(int)")
    .Attr("padding: string = 'SAME'");

REGISTER_OP("Softmax").Input("logits: T").Output("softmax: T").Attr("T: type");
REGISTER_OP("LogSoftmax")
    .Input("logits: T")
    .Output("logsoftmax: T")
    .Attr("T: type");

REGISTER_OP("SoftmaxCrossEntropyWithLogits")
    .Input("features: T")
    .Input("labels: T")
    .Output("loss: T")
    .Output("backprop: T")
    .Attr("T: type");

REGISTER_OP("SparseSoftmaxCrossEntropyWithLogits")
    .Input("features: T")
    .Input("labels: Tlabels")
    .Output("loss: T")
    .Output("backprop: T")
    .Attr("T: type")
    .Attr("Tlabels: type = int64");

REGISTER_OP("L2Loss").Input("t: T").Output("output: T").Attr("T: type");

// ---------------------------------------------------------------------------
// Stateful ops: variables (paper §3.1).
// ---------------------------------------------------------------------------

REGISTER_OP("Variable")
    .Output("ref: Ref(dtype)")
    .Attr("dtype: type")
    .Attr("shape: shape")
    .SetIsStateful();

REGISTER_OP("IsVariableInitialized")
    .Input("ref: Ref(dtype)")
    .Output("is_initialized: bool")
    .Attr("dtype: type")
    .SetAllowsUninitializedInput();

REGISTER_OP("Assign")
    .Input("ref: Ref(T)")
    .Input("value: T")
    .Output("output_ref: Ref(T)")
    .Attr("T: type")
    .SetAllowsUninitializedInput();

REGISTER_OP("AssignAdd")
    .Input("ref: Ref(T)")
    .Input("value: T")
    .Output("output_ref: Ref(T)")
    .Attr("T: type");

REGISTER_OP("AssignSub")
    .Input("ref: Ref(T)")
    .Input("value: T")
    .Output("output_ref: Ref(T)")
    .Attr("T: type");

#define SCATTER_OP(NAME)                 \
  REGISTER_OP(NAME)                      \
      .Input("ref: Ref(T)")              \
      .Input("indices: Tindices")        \
      .Input("updates: T")               \
      .Output("output_ref: Ref(T)")      \
      .Attr("T: type")                   \
      .Attr("Tindices: type = int32")

SCATTER_OP("ScatterAdd");
SCATTER_OP("ScatterSub");
SCATTER_OP("ScatterUpdate");

#undef SCATTER_OP

REGISTER_OP("CountUpTo")
    .Input("ref: Ref(T)")
    .Output("output: T")
    .Attr("T: type = int64")
    .Attr("limit: int");

// Fused optimizer-update kernels (paper §5: users can register additional
// kernels for performance-critical subcomputations).
REGISTER_OP("ApplyGradientDescent")
    .Input("var: Ref(T)")
    .Input("alpha: T")
    .Input("delta: T")
    .Output("out: Ref(T)")
    .Attr("T: type");

REGISTER_OP("ApplyMomentum")
    .Input("var: Ref(T)")
    .Input("accum: Ref(T)")
    .Input("lr: T")
    .Input("grad: T")
    .Input("momentum: T")
    .Output("out: Ref(T)")
    .Attr("T: type");

REGISTER_OP("ApplyAdagrad")
    .Input("var: Ref(T)")
    .Input("accum: Ref(T)")
    .Input("lr: T")
    .Input("grad: T")
    .Output("out: Ref(T)")
    .Attr("T: type");

REGISTER_OP("ApplyAdadelta")
    .Input("var: Ref(T)")
    .Input("accum: Ref(T)")
    .Input("accum_update: Ref(T)")
    .Input("lr: T")
    .Input("rho: T")
    .Input("epsilon: T")
    .Input("grad: T")
    .Output("out: Ref(T)")
    .Attr("T: type");

REGISTER_OP("ApplyRMSProp")
    .Input("var: Ref(T)")
    .Input("ms: Ref(T)")
    .Input("mom: Ref(T)")
    .Input("lr: T")
    .Input("rho: T")
    .Input("momentum: T")
    .Input("epsilon: T")
    .Input("grad: T")
    .Output("out: Ref(T)")
    .Attr("T: type");

REGISTER_OP("ApplyAdam")
    .Input("var: Ref(T)")
    .Input("m: Ref(T)")
    .Input("v: Ref(T)")
    .Input("beta1_power: T")
    .Input("beta2_power: T")
    .Input("lr: T")
    .Input("beta1: T")
    .Input("beta2: T")
    .Input("epsilon: T")
    .Input("grad: T")
    .Output("out: Ref(T)")
    .Attr("T: type");

// Sparse variants applying updates to just the touched rows (paper §4.2).
REGISTER_OP("SparseApplyGradientDescent")
    .Input("var: Ref(T)")
    .Input("alpha: T")
    .Input("grad: T")
    .Input("indices: Tindices")
    .Output("out: Ref(T)")
    .Attr("T: type")
    .Attr("Tindices: type = int32");

REGISTER_OP("SparseApplyAdagrad")
    .Input("var: Ref(T)")
    .Input("accum: Ref(T)")
    .Input("lr: T")
    .Input("grad: T")
    .Input("indices: Tindices")
    .Output("out: Ref(T)")
    .Attr("T: type")
    .Attr("Tindices: type = int32");

// ---------------------------------------------------------------------------
// Control flow (paper §3.4).
// ---------------------------------------------------------------------------

REGISTER_OP("Switch")
    .Input("data: T")
    .Input("pred: bool")
    .Output("output_false: T")
    .Output("output_true: T")
    .Attr("T: type");

REGISTER_OP("Merge")
    .Input("inputs: N * T")
    .Output("output: T")
    .Output("value_index: int32")
    .Attr("N: int")
    .Attr("T: type");

REGISTER_OP("Enter")
    .Input("data: T")
    .Output("output: T")
    .Attr("T: type")
    .Attr("frame_name: string")
    .Attr("is_constant: bool = false")
    .Attr("parallel_iterations: int = 10");

REGISTER_OP("Exit").Input("data: T").Output("output: T").Attr("T: type");

REGISTER_OP("NextIteration")
    .Input("data: T")
    .Output("output: T")
    .Attr("T: type");

REGISTER_OP("LoopCond").Input("input: bool").Output("output: bool");

REGISTER_OP("ControlTrigger");

// ---------------------------------------------------------------------------
// Communication (inserted by graph partitioning, paper §3.3).
// ---------------------------------------------------------------------------

REGISTER_OP("_Send")
    .Input("tensor: T")
    .Attr("T: type")
    .Attr("tensor_name: string")
    .Attr("send_device: string")
    .Attr("recv_device: string")
    .SetIsStateful();

REGISTER_OP("_Recv")
    .Output("tensor: tensor_type")
    .Attr("tensor_type: type")
    .Attr("tensor_name: string")
    .Attr("send_device: string")
    .Attr("recv_device: string")
    .SetIsStateful();

// A chain of unary/binary element-wise ops collapsed into one dispatch by
// the optimizer's fusion pass (DESIGN.md §13). `ops` lists the original op
// names in execution order; the accumulator starts at inputs[0] and each
// binary step consumes the next external input, with chain_lhs[i] == 1 when
// the accumulator feeds that step's left operand. Underscore-prefixed:
// inserted by the runtime, never by clients.
REGISTER_OP("_FusedElementwise")
    .Input("inputs: N * T")
    .Output("output: T")
    .Attr("N: int")
    .Attr("T: type")
    .Attr("ops: list(string)")
    .Attr("chain_lhs: list(int)");

// The issuing master's step id, as an int64 scalar. Stateful so the
// optimizer never folds or CSEs it: the value changes every step. Used to
// tag gradients for the synchronous-replica staleness filter (§4.4).
REGISTER_OP("StepId")
    .Output("step_id: int64")
    .SetIsStateful();

// ---------------------------------------------------------------------------
// Queues (paper §3.1: FIFOQueue etc. provide coordination and backpressure).
// ---------------------------------------------------------------------------

REGISTER_OP("FIFOQueue")
    .Output("handle: Ref(string)")
    .Attr("component_types: list(type)")
    .Attr("capacity: int = -1")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

REGISTER_OP("RandomShuffleQueue")
    .Output("handle: Ref(string)")
    .Attr("component_types: list(type)")
    .Attr("capacity: int = -1")
    .Attr("min_after_dequeue: int = 0")
    .Attr("seed: int = 0")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

REGISTER_OP("QueueEnqueue")
    .Input("handle: Ref(string)")
    .Input("components: Tcomponents")
    .Attr("Tcomponents: list(type)")
    .SetIsStateful();

REGISTER_OP("QueueEnqueueMany")
    .Input("handle: Ref(string)")
    .Input("components: Tcomponents")
    .Attr("Tcomponents: list(type)")
    .SetIsStateful();

REGISTER_OP("QueueDequeue")
    .Input("handle: Ref(string)")
    .Output("components: component_types")
    .Attr("component_types: list(type)")
    .SetIsStateful();

REGISTER_OP("QueueDequeueMany")
    .Input("handle: Ref(string)")
    .Input("n: int32")
    .Output("components: component_types")
    .Attr("component_types: list(type)")
    .SetIsStateful();

// Dequeues `n` tuples whose leading component — an int64 step tag written
// by the producer (see StepId) — is not older than the queue's stale
// floor; older tuples are dropped and counted (grad.stale_dropped). After
// `n` fresh tuples are collected the floor advances past the caller's own
// step id, superseding every tag issued at or before this step (§4.4
// "first m of n" synchronous replicas).
REGISTER_OP("QueueDequeueFreshMany")
    .Input("handle: Ref(string)")
    .Input("n: int32")
    .Output("components: component_types")
    .Attr("component_types: list(type)")
    .SetIsStateful();

REGISTER_OP("QueueSize")
    .Input("handle: Ref(string)")
    .Output("size: int32")
    .SetIsStateful();

REGISTER_OP("QueueClose")
    .Input("handle: Ref(string)")
    .Attr("cancel_pending_enqueues: bool = false")
    .SetIsStateful();

// ---------------------------------------------------------------------------
// Input pipelines (paper Figure 1: Reader / preprocessing stages as graph
// nodes — see data/dataset.h). Each dataset op publishes a DatasetResource
// under its node name (or shared_name) and outputs a string handle; the
// whole chain plus its IteratorGetNext must be colocated on one device.
// All are stateful so the optimizer tier never folds, CSEs or prunes them.
// ---------------------------------------------------------------------------

REGISTER_OP("RecordFileDataset")
    .Output("handle: string")
    .Attr("filenames: list(string)")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

REGISTER_OP("ParallelMapDataset")
    .Input("input_dataset: string")
    .Output("handle: string")
    .Attr("map_fn: string")
    .Attr("parallelism: int = 4")
    .Attr("output_types: list(type)")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

REGISTER_OP("ShuffleDataset")
    .Input("input_dataset: string")
    .Output("handle: string")
    .Attr("buffer_size: int")
    .Attr("seed: int = 0")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

REGISTER_OP("RepeatDataset")
    .Input("input_dataset: string")
    .Output("handle: string")
    .Attr("count: int = -1")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

REGISTER_OP("BatchDataset")
    .Input("input_dataset: string")
    .Output("handle: string")
    .Attr("batch_size: int")
    .Attr("drop_remainder: bool = false")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

REGISTER_OP("PrefetchDataset")
    .Input("input_dataset: string")
    .Output("handle: string")
    .Attr("buffer_size: int = 2")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

// Client of the shared data service (distributed/data_service.h): elements
// come from a remote pipeline task over the rpc transport, round-robin by
// consumer index.
REGISTER_OP("DataServiceDataset")
    .Output("handle: string")
    .Attr("port: int")
    .Attr("consumer: int")
    .Attr("num_consumers: int")
    .Attr("output_types: list(type)")
    .Attr("shared_name: string = ''")
    .SetIsStateful();

// Pulls the next element from the dataset's iterator; OutOfRange at end of
// sequence. The iterator lives on the kernel, so it persists across steps
// and is torn down (cancelling blocked producers) at session close.
REGISTER_OP("IteratorGetNext")
    .Input("handle: string")
    .Output("components: output_types")
    .Attr("output_types: list(type)")
    .SetIsStateful();

// ---------------------------------------------------------------------------
// Checkpointing (paper §4.3) and file I/O.
// ---------------------------------------------------------------------------

REGISTER_OP("Save")
    .Input("filename: string")
    .Input("tensor_names: string")
    .Input("data: T")
    .Attr("T: list(type)")
    .SetIsStateful();

REGISTER_OP("Restore")
    .Input("file_pattern: string")
    .Input("tensor_name: string")
    .Output("tensor: dt")
    .Attr("dt: type")
    .SetIsStateful();

REGISTER_OP("ReadFile")
    .Input("filename: string")
    .Output("contents: string")
    .SetIsStateful();

// ---------------------------------------------------------------------------
// Quantization (paper §5: "support for quantization, which enables faster
// inference in environments such as mobile devices", using gemmlowp-style
// low-precision matrix multiplication).
// ---------------------------------------------------------------------------

// Affine quantization to uint8 over [min_range, max_range].
REGISTER_OP("Quantize")
    .Input("input: float")
    .Input("min_range: float")
    .Input("max_range: float")
    .Output("output: uint8");

REGISTER_OP("Dequantize")
    .Input("input: uint8")
    .Input("min_range: float")
    .Input("max_range: float")
    .Output("output: float");

// Low-precision matmul: uint8 x uint8 with int32 accumulation, rescaled to
// float using each operand's quantization range.
REGISTER_OP("QuantizedMatMul")
    .Input("a: uint8")
    .Input("b: uint8")
    .Input("min_a: float")
    .Input("max_a: float")
    .Input("min_b: float")
    .Input("max_b: float")
    .Output("product: float");

}  // namespace
}  // namespace tfrepro
