// High-level builders for dynamic control flow (paper §3.4): wraps the
// Switch/Merge/Enter/Exit/NextIteration primitives into tf.cond /
// tf.while_loop-style constructors, including the loop-invariant handling
// (is_constant Enters) and back-edge wiring.

#ifndef TFREPRO_GRAPH_CONTROL_FLOW_BUILDER_H_
#define TFREPRO_GRAPH_CONTROL_FLOW_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph_builder.h"

namespace tfrepro {
namespace ops {

// Builds a non-strict conditional: only the taken branch executes
// (Figure 2). Both branch functions receive the switched inputs and must
// return the same number of outputs.
using BranchFn =
    std::function<std::vector<Output>(GraphBuilder*, const std::vector<Output>&)>;

Result<std::vector<Output>> Cond(GraphBuilder* b, Output pred,
                                 const std::vector<Output>& inputs,
                                 const BranchFn& then_branch,
                                 const BranchFn& else_branch);

// Builds "while cond(vars): vars = body(vars)" with the §3.4 primitives.
// `invariants` are loop-constant values made available to cond/body via
// is_constant Enter nodes (appended to the callback argument list after the
// loop variables). Returns the Exit outputs, one per loop variable.
using CondFn =
    std::function<Output(GraphBuilder*, const std::vector<Output>&)>;
using BodyFn =
    std::function<std::vector<Output>(GraphBuilder*, const std::vector<Output>&)>;

Result<std::vector<Output>> WhileLoop(GraphBuilder* b,
                                      const std::vector<Output>& initial,
                                      const CondFn& cond, const BodyFn& body,
                                      const std::vector<Output>& invariants = {},
                                      const std::string& name = "");

}  // namespace ops
}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_CONTROL_FLOW_BUILDER_H_
