#include "graph/dot.h"

#include <map>
#include <sstream>
#include <vector>

namespace tfrepro {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* ShapeFor(const Node* node) {
  if (node->IsControlFlow()) return "diamond";
  if (node->IsStateful()) return "box";
  return "ellipse";
}

void EmitNode(std::ostringstream& os, const Node* node) {
  os << "  n" << node->id() << " [label=\"" << Escape(node->name()) << "\\n"
     << Escape(node->op()) << "\" shape=" << ShapeFor(node) << "];\n";
}

}  // namespace

std::string GraphToDot(const Graph& graph, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph G {\n  rankdir=TB;\n  node [fontsize=10];\n";

  if (options.group_by_device) {
    // Group nodes into clusters by device.
    std::map<std::string, std::vector<const Node*>> by_device;
    for (Node* node : graph.nodes()) {
      std::string device = node->assigned_device().empty()
                               ? node->requested_device()
                               : node->assigned_device();
      by_device[device].push_back(node);
    }
    int cluster = 0;
    for (const auto& [device, nodes] : by_device) {
      if (!device.empty()) {
        os << "  subgraph cluster_" << cluster++ << " {\n"
           << "    label=\"" << Escape(device) << "\";\n    style=dashed;\n";
      }
      for (const Node* node : nodes) {
        os << (device.empty() ? "" : "  ");
        EmitNode(os, node);
      }
      if (!device.empty()) {
        os << "  }\n";
      }
    }
  } else {
    for (Node* node : graph.nodes()) {
      EmitNode(os, node);
    }
  }

  for (Node* node : graph.nodes()) {
    for (const Edge* e : node->out_edges()) {
      if (e->IsControlEdge()) {
        if (!options.include_control_edges) continue;
        os << "  n" << node->id() << " -> n" << e->dst->id()
           << " [style=dashed];\n";
      } else {
        os << "  n" << node->id() << " -> n" << e->dst->id() << " [label=\""
           << e->src_output << "\" fontsize=8];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string GraphToDot(const Graph& graph) {
  return GraphToDot(graph, DotOptions{});
}

}  // namespace tfrepro
