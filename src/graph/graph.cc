#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

namespace tfrepro {

void ParseInputName(const std::string& input, std::string* name, int* port) {
  if (!input.empty() && input[0] == '^') {
    *name = input.substr(1);
    *port = kControlSlot;
    return;
  }
  size_t colon = input.rfind(':');
  if (colon == std::string::npos) {
    *name = input;
    *port = 0;
    return;
  }
  *name = input.substr(0, colon);
  *port = std::stoi(input.substr(colon + 1));
}

const AttrValue* Node::FindAttr(const std::string& name) const {
  auto it = def_.attrs.find(name);
  if (it != def_.attrs.end()) return &it->second;
  const AttrDef* def = op_def_->FindAttr(name);
  if (def != nullptr && def->has_default) return &def->default_value;
  return nullptr;
}

const AttrValue& Node::GetAttr(const std::string& name) const {
  const AttrValue* v = FindAttr(name);
  assert(v != nullptr && "missing attr");
  return *v;
}

bool Node::HasAttr(const std::string& name) const {
  return FindAttr(name) != nullptr;
}

void Node::SetAttr(const std::string& name, AttrValue value) {
  def_.attrs[name] = std::move(value);
}

Result<const Edge*> Node::input_edge(int i) const {
  for (const Edge* e : in_edges_) {
    if (!e->IsControlEdge() && e->dst_input == i) return e;
  }
  return NotFound("node '" + name() + "' has no edge into input slot " +
                  std::to_string(i));
}

std::vector<const Edge*> Node::ordered_data_inputs() const {
  std::vector<const Edge*> result;
  for (const Edge* e : in_edges_) {
    if (!e->IsControlEdge()) result.push_back(e);
  }
  std::sort(result.begin(), result.end(),
            [](const Edge* a, const Edge* b) {
              return a->dst_input < b->dst_input;
            });
  return result;
}

std::string Node::DebugString() const {
  std::ostringstream os;
  os << name() << " = " << op() << "(";
  bool first = true;
  for (const Edge* e : ordered_data_inputs()) {
    if (!first) os << ", ";
    first = false;
    os << e->src->name() << ":" << e->src_output;
  }
  for (const Edge* e : in_edges_) {
    if (e->IsControlEdge()) {
      if (!first) os << ", ";
      first = false;
      os << "^" << e->src->name();
    }
  }
  os << ")";
  if (!assigned_device_.empty()) os << " @" << assigned_device_;
  return os.str();
}

Graph::Graph(const OpRegistry* registry) : registry_(registry) {}

Graph::~Graph() {
  for (Node* n : nodes_) delete n;
}

Result<Node*> Graph::AddNode(NodeDef def) {
  if (def.name.empty()) {
    return InvalidArgument("node with empty name");
  }
  if (name_index_.count(def.name) > 0) {
    return AlreadyExists("duplicate node name '" + def.name + "'");
  }
  Result<const OpDef*> op_def = registry_->LookUpOrError(def.op);
  if (!op_def.ok()) {
    return op_def.status();
  }
  auto node = std::make_unique<Node>();
  node->def_ = std::move(def);
  node->op_def_ = op_def.value();
  Status s = ResolveArgTypes(*node->op_def_, node->def_.attrs,
                             &node->input_types_, &node->output_types_);
  if (!s.ok()) {
    return s.Prepend("node '" + node->def_.name + "'");
  }
  node->id_ = static_cast<int>(nodes_.size());
  Node* raw = node.release();
  nodes_.push_back(raw);
  name_index_[raw->name()] = raw;
  ++num_live_nodes_;
  return raw;
}

Result<const Edge*> Graph::AddEdge(Node* src, int src_output, Node* dst,
                                   int dst_input) {
  if (src_output < 0 || src_output >= src->num_outputs()) {
    return InvalidArgument("edge from '" + src->name() + "' output " +
                           std::to_string(src_output) + " out of range (" +
                           std::to_string(src->num_outputs()) + " outputs)");
  }
  if (dst_input < 0 || dst_input >= dst->num_inputs()) {
    return InvalidArgument("edge into '" + dst->name() + "' input " +
                           std::to_string(dst_input) + " out of range (" +
                           std::to_string(dst->num_inputs()) + " inputs)");
  }
  DataType src_type = src->output_type(src_output);
  DataType dst_type = dst->input_type(dst_input);
  // A ref output may feed a value input (implicit deref); a value output may
  // not feed a ref input.
  if (BaseType(src_type) != BaseType(dst_type)) {
    return InvalidArgument(
        std::string("type mismatch on edge ") + src->name() + ":" +
        std::to_string(src_output) + " (" + DataTypeName(src_type) + ") -> " +
        dst->name() + ":" + std::to_string(dst_input) + " (" +
        DataTypeName(dst_type) + ")");
  }
  if (IsRefType(dst_type) && !IsRefType(src_type)) {
    return InvalidArgument("non-ref output " + src->name() + ":" +
                           std::to_string(src_output) +
                           " cannot feed ref input " + dst->name() + ":" +
                           std::to_string(dst_input));
  }
  for (const Edge* e : dst->in_edges_) {
    if (!e->IsControlEdge() && e->dst_input == dst_input) {
      return AlreadyExists("input slot " + std::to_string(dst_input) +
                           " of '" + dst->name() + "' already connected");
    }
  }
  auto edge = std::make_unique<Edge>();
  edge->src = src;
  edge->src_output = src_output;
  edge->dst = dst;
  edge->dst_input = dst_input;
  const Edge* raw = edge.get();
  edges_.push_back(std::move(edge));
  src->out_edges_.push_back(raw);
  dst->in_edges_.push_back(raw);
  return raw;
}

const Edge* Graph::AddControlEdge(Node* src, Node* dst) {
  for (const Edge* e : dst->in_edges_) {
    if (e->IsControlEdge() && e->src == src) return e;  // dedup
  }
  auto edge = std::make_unique<Edge>();
  edge->src = src;
  edge->src_output = kControlSlot;
  edge->dst = dst;
  edge->dst_input = kControlSlot;
  const Edge* raw = edge.get();
  edges_.push_back(std::move(edge));
  src->out_edges_.push_back(raw);
  dst->in_edges_.push_back(raw);
  return raw;
}

void Graph::RemoveEdge(const Edge* edge) {
  auto erase_from = [edge](std::vector<const Edge*>* list) {
    list->erase(std::remove(list->begin(), list->end(), edge), list->end());
  };
  erase_from(&edge->src->out_edges_);
  erase_from(&edge->dst->in_edges_);
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [edge](const std::unique_ptr<Edge>& e) {
                                return e.get() == edge;
                              }),
               edges_.end());
}

void Graph::RemoveNode(Node* node) {
  std::vector<const Edge*> to_remove(node->in_edges_.begin(),
                                     node->in_edges_.end());
  to_remove.insert(to_remove.end(), node->out_edges_.begin(),
                   node->out_edges_.end());
  for (const Edge* e : to_remove) RemoveEdge(e);
  name_index_.erase(node->name());
  nodes_[node->id_] = nullptr;
  --num_live_nodes_;
  delete node;
}

Node* Graph::FindNode(const std::string& name) const {
  auto it = name_index_.find(name);
  return it == name_index_.end() ? nullptr : it->second;
}

std::vector<Node*> Graph::nodes() const {
  std::vector<Node*> out;
  out.reserve(num_live_nodes_);
  for (Node* n : nodes_) {
    if (n != nullptr) out.push_back(n);
  }
  return out;
}

Result<std::vector<Node*>> Graph::TopologicalOrder() const {
  // Kahn's algorithm; edges into Merge from NextIteration are back edges and
  // excluded so cyclic loop graphs still order (paper §3.4).
  std::map<const Node*, int> pending;
  std::deque<Node*> ready;
  for (Node* n : nodes()) {
    int count = 0;
    for (const Edge* e : n->in_edges()) {
      if (e->src->IsNextIteration() && n->IsMerge()) continue;
      ++count;
    }
    pending[n] = count;
    if (count == 0) ready.push_back(n);
  }
  std::vector<Node*> order;
  order.reserve(num_live_nodes_);
  while (!ready.empty()) {
    Node* n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (const Edge* e : n->out_edges()) {
      if (n->IsNextIteration() && e->dst->IsMerge()) continue;
      if (--pending[e->dst] == 0) ready.push_back(e->dst);
    }
  }
  if (static_cast<int>(order.size()) != num_live_nodes_) {
    return InvalidArgument(
        "graph contains a cycle not mediated by NextIteration");
  }
  return order;
}

std::unique_ptr<Graph> Graph::Clone(
    std::map<const Node*, Node*>* node_map) const {
  auto copy = std::make_unique<Graph>(registry_);
  std::map<const Node*, Node*> local_map;
  for (const Node* n : nodes()) {
    NodeDef def = n->def();
    def.inputs.clear();
    Result<Node*> added = copy->AddNode(std::move(def));
    TF_CHECK_OK(added.status());
    added.value()->set_assigned_device(n->assigned_device());
    local_map[n] = added.value();
  }
  for (const auto& e : edges_) {
    Node* src = local_map[e->src];
    Node* dst = local_map[e->dst];
    if (e->IsControlEdge()) {
      copy->AddControlEdge(src, dst);
    } else {
      TF_CHECK_OK(
          copy->AddEdge(src, e->src_output, dst, e->dst_input).status());
    }
  }
  copy->name_counter_ = name_counter_;
  if (node_map != nullptr) *node_map = std::move(local_map);
  return copy;
}

std::string Graph::NewName(const std::string& prefix) {
  for (;;) {
    std::string name = prefix + "_" + std::to_string(name_counter_++);
    if (name_index_.count(name) == 0) return name;
  }
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  os << "Graph{" << num_live_nodes_ << " nodes\n";
  for (const Node* n : nodes()) {
    os << "  " << n->DebugString() << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace tfrepro
