// Binary (de)serialization of graphs and attribute values, used by the
// socket transport to ship per-device partitions to worker processes
// (RegisterSubgraph over the wire, paper §3.3). The format mirrors
// Tensor::AppendToBytes: fixed-width little-endian integers, length-prefixed
// strings, appended to a growing byte string and parsed back with a moving
// offset.
//
// Round-trip contract: nodes keep their name, op, requested and assigned
// devices, and every attr kind (including Tensor attrs, so constant-folded
// partitions survive); data and control edges are reconnected exactly.
// Node ids are NOT preserved (the receiving graph assigns fresh ids) —
// nothing downstream of partitioning depends on them.

#ifndef TFREPRO_GRAPH_GRAPH_IO_H_
#define TFREPRO_GRAPH_GRAPH_IO_H_

#include <memory>
#include <string>

#include "graph/graph.h"

namespace tfrepro {

void AppendAttrValueToBytes(const AttrValue& attr, std::string* out);
Result<AttrValue> ParseAttrValueFromBytes(const std::string& bytes,
                                          size_t* offset);

void AppendGraphToBytes(const Graph& graph, std::string* out);
// Rebuilds the graph against `registry` (ops must be registered in the
// receiving process — both ends run the same binary).
Result<std::unique_ptr<Graph>> ParseGraphFromBytes(
    const std::string& bytes, size_t* offset,
    const OpRegistry* registry = OpRegistry::Global());

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_GRAPH_IO_H_
