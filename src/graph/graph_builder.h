// Client-side graph construction API (the role of the Python/C++ client
// layers in Figure 5). A GraphBuilder wraps a Graph with fluent node
// construction and sticky error handling, so model code reads linearly:
//
//   GraphBuilder b(&graph);
//   Output w = b.Op("Variable").Attr("dtype", DataType::kFloat)
//                 .Attr("shape", TensorShape({4, 2})).Finalize();
//   Output y = b.Op("MatMul").Input(x).Input(w).Finalize();
//   TF_CHECK_OK(b.status());

#ifndef TFREPRO_GRAPH_GRAPH_BUILDER_H_
#define TFREPRO_GRAPH_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace tfrepro {

// One output of a node: the value flowing along an edge.
struct Output {
  Node* node = nullptr;
  int index = 0;

  Output() = default;
  Output(Node* n, int i = 0) : node(n), index(i) {}  // NOLINT

  bool valid() const { return node != nullptr; }
  DataType dtype() const {
    return node == nullptr ? DataType::kInvalid : node->output_type(index);
  }
  std::string name() const {
    if (node == nullptr) return "<invalid>";
    return node->name() + ":" + std::to_string(index);
  }
  bool operator==(const Output& o) const {
    return node == o.node && index == o.index;
  }
  bool operator<(const Output& o) const {
    if (node != o.node) return node < o.node;
    return index < o.index;
  }
};

class GraphBuilder;

class NodeBuilder {
 public:
  NodeBuilder(GraphBuilder* builder, std::string op_name);

  NodeBuilder& Name(const std::string& name);
  NodeBuilder& Input(const Output& out);
  NodeBuilder& Input(const std::vector<Output>& outs);
  NodeBuilder& ControlInput(Node* node);
  NodeBuilder& Attr(const std::string& name, AttrValue value);
  NodeBuilder& Device(const std::string& device);

  // Creates the node and its edges. On error, records the error in the
  // GraphBuilder and returns an invalid Output.
  Output Finalize();
  // As Finalize() but returns the node (for multi-output ops).
  Node* FinalizeNode();

 private:
  GraphBuilder* builder_;
  std::string op_name_;
  std::string name_;
  std::string device_;
  std::vector<Output> inputs_;
  std::vector<Node*> control_inputs_;
  AttrMap attrs_;
};

class GraphBuilder {
 public:
  explicit GraphBuilder(Graph* graph) : graph_(graph) {}

  Graph* graph() const { return graph_; }

  NodeBuilder Op(const std::string& op_name) {
    return NodeBuilder(this, op_name);
  }

  // First error encountered during construction (sticky).
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  void UpdateStatus(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  // Default device applied to nodes that do not set one explicitly; used by
  // clients to express placement constraints like "/job:ps/task:0"
  // (paper §3.3).
  void SetDefaultDevice(const std::string& device) { default_device_ = device; }
  const std::string& default_device() const { return default_device_; }

  // RAII helper: scopes a default device.
  class DeviceScope {
   public:
    DeviceScope(GraphBuilder* b, const std::string& device)
        : builder_(b), saved_(b->default_device()) {
      b->SetDefaultDevice(device);
    }
    ~DeviceScope() { builder_->SetDefaultDevice(saved_); }

   private:
    GraphBuilder* builder_;
    std::string saved_;
  };

 private:
  Graph* graph_;
  Status status_;
  std::string default_device_;
};

}  // namespace tfrepro

#endif  // TFREPRO_GRAPH_GRAPH_BUILDER_H_
