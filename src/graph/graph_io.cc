#include "graph/graph_io.h"

#include <cstring>
#include <map>
#include <vector>

namespace tfrepro {

namespace {

void AppendInt64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadInt64(const std::string& in, size_t* offset, int64_t* v) {
  if (*offset + sizeof(int64_t) > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof(int64_t));
  *offset += sizeof(int64_t);
  return true;
}

void AppendString(std::string* out, const std::string& s) {
  AppendInt64(out, static_cast<int64_t>(s.size()));
  out->append(s);
}

bool ReadString(const std::string& in, size_t* offset, std::string* s) {
  int64_t len = 0;
  if (!ReadInt64(in, offset, &len) || len < 0 ||
      *offset + static_cast<size_t>(len) > in.size()) {
    return false;
  }
  s->assign(in.data() + *offset, static_cast<size_t>(len));
  *offset += static_cast<size_t>(len);
  return true;
}

void AppendFloat(std::string* out, float v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadFloat(const std::string& in, size_t* offset, float* v) {
  if (*offset + sizeof(float) > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof(float));
  *offset += sizeof(float);
  return true;
}

void AppendShape(std::string* out, const TensorShape& shape) {
  AppendInt64(out, shape.rank());
  for (int i = 0; i < shape.rank(); ++i) AppendInt64(out, shape.dim(i));
}

Result<TensorShape> ReadShape(const std::string& in, size_t* offset) {
  int64_t rank = 0;
  if (!ReadInt64(in, offset, &rank) || rank < 0 || rank > 16) {
    return DataLoss("corrupt shape rank");
  }
  std::vector<int64_t> dims(rank);
  for (int64_t i = 0; i < rank; ++i) {
    if (!ReadInt64(in, offset, &dims[i])) {
      return DataLoss("truncated shape dims");
    }
  }
  TF_RETURN_IF_ERROR(ValidateShape(dims));
  return TensorShape(dims);
}

}  // namespace

void AppendAttrValueToBytes(const AttrValue& attr, std::string* out) {
  AppendInt64(out, static_cast<int64_t>(attr.kind()));
  switch (attr.kind()) {
    case AttrValue::Kind::kNone:
      break;
    case AttrValue::Kind::kInt:
      AppendInt64(out, attr.i());
      break;
    case AttrValue::Kind::kFloat:
      AppendFloat(out, attr.f());
      break;
    case AttrValue::Kind::kBool:
      AppendInt64(out, attr.b() ? 1 : 0);
      break;
    case AttrValue::Kind::kString:
      AppendString(out, attr.s());
      break;
    case AttrValue::Kind::kType:
      AppendInt64(out, static_cast<int64_t>(attr.type()));
      break;
    case AttrValue::Kind::kShape:
      AppendShape(out, attr.shape());
      break;
    case AttrValue::Kind::kTensor:
      attr.tensor().AppendToBytes(out);
      break;
    case AttrValue::Kind::kIntList:
      AppendInt64(out, static_cast<int64_t>(attr.int_list().size()));
      for (int64_t v : attr.int_list()) AppendInt64(out, v);
      break;
    case AttrValue::Kind::kFloatList:
      AppendInt64(out, static_cast<int64_t>(attr.float_list().size()));
      for (float v : attr.float_list()) AppendFloat(out, v);
      break;
    case AttrValue::Kind::kStringList:
      AppendInt64(out, static_cast<int64_t>(attr.string_list().size()));
      for (const std::string& v : attr.string_list()) AppendString(out, v);
      break;
    case AttrValue::Kind::kTypeList:
      AppendInt64(out, static_cast<int64_t>(attr.type_list().size()));
      for (DataType v : attr.type_list()) {
        AppendInt64(out, static_cast<int64_t>(v));
      }
      break;
    case AttrValue::Kind::kShapeList:
      AppendInt64(out, static_cast<int64_t>(attr.shape_list().size()));
      for (const TensorShape& v : attr.shape_list()) AppendShape(out, v);
      break;
  }
}

Result<AttrValue> ParseAttrValueFromBytes(const std::string& bytes,
                                          size_t* offset) {
  int64_t kind_val = 0;
  if (!ReadInt64(bytes, offset, &kind_val)) {
    return DataLoss("truncated attr kind");
  }
  if (kind_val < 0 ||
      kind_val > static_cast<int64_t>(AttrValue::Kind::kShapeList)) {
    return DataLoss("corrupt attr kind " + std::to_string(kind_val));
  }
  const AttrValue::Kind kind = static_cast<AttrValue::Kind>(kind_val);
  const Status truncated = DataLoss("truncated attr value");
  switch (kind) {
    case AttrValue::Kind::kNone:
      return AttrValue();
    case AttrValue::Kind::kInt: {
      int64_t v = 0;
      if (!ReadInt64(bytes, offset, &v)) return truncated;
      return AttrValue(v);
    }
    case AttrValue::Kind::kFloat: {
      float v = 0;
      if (!ReadFloat(bytes, offset, &v)) return truncated;
      return AttrValue(v);
    }
    case AttrValue::Kind::kBool: {
      int64_t v = 0;
      if (!ReadInt64(bytes, offset, &v)) return truncated;
      return AttrValue(v != 0);
    }
    case AttrValue::Kind::kString: {
      std::string v;
      if (!ReadString(bytes, offset, &v)) return truncated;
      return AttrValue(std::move(v));
    }
    case AttrValue::Kind::kType: {
      int64_t v = 0;
      if (!ReadInt64(bytes, offset, &v)) return truncated;
      return AttrValue(static_cast<DataType>(v));
    }
    case AttrValue::Kind::kShape: {
      Result<TensorShape> shape = ReadShape(bytes, offset);
      TF_RETURN_IF_ERROR(shape.status());
      return AttrValue(std::move(shape).value());
    }
    case AttrValue::Kind::kTensor: {
      Result<Tensor> tensor = Tensor::ParseFromBytes(bytes, offset);
      TF_RETURN_IF_ERROR(tensor.status());
      return AttrValue(std::move(tensor).value());
    }
    case AttrValue::Kind::kIntList: {
      int64_t n = 0;
      if (!ReadInt64(bytes, offset, &n) || n < 0) return truncated;
      std::vector<int64_t> v(n);
      for (int64_t i = 0; i < n; ++i) {
        if (!ReadInt64(bytes, offset, &v[i])) return truncated;
      }
      return AttrValue(std::move(v));
    }
    case AttrValue::Kind::kFloatList: {
      int64_t n = 0;
      if (!ReadInt64(bytes, offset, &n) || n < 0) return truncated;
      std::vector<float> v(n);
      for (int64_t i = 0; i < n; ++i) {
        if (!ReadFloat(bytes, offset, &v[i])) return truncated;
      }
      return AttrValue(std::move(v));
    }
    case AttrValue::Kind::kStringList: {
      int64_t n = 0;
      if (!ReadInt64(bytes, offset, &n) || n < 0) return truncated;
      std::vector<std::string> v(n);
      for (int64_t i = 0; i < n; ++i) {
        if (!ReadString(bytes, offset, &v[i])) return truncated;
      }
      return AttrValue(std::move(v));
    }
    case AttrValue::Kind::kTypeList: {
      int64_t n = 0;
      if (!ReadInt64(bytes, offset, &n) || n < 0) return truncated;
      DataTypeVector v(n);
      for (int64_t i = 0; i < n; ++i) {
        int64_t t = 0;
        if (!ReadInt64(bytes, offset, &t)) return truncated;
        v[i] = static_cast<DataType>(t);
      }
      return AttrValue(std::move(v));
    }
    case AttrValue::Kind::kShapeList: {
      int64_t n = 0;
      if (!ReadInt64(bytes, offset, &n) || n < 0) return truncated;
      std::vector<TensorShape> v;
      v.reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        Result<TensorShape> shape = ReadShape(bytes, offset);
        TF_RETURN_IF_ERROR(shape.status());
        v.push_back(std::move(shape).value());
      }
      return AttrValue(std::move(v));
    }
  }
  return DataLoss("unhandled attr kind");
}

void AppendGraphToBytes(const Graph& graph, std::string* out) {
  const std::vector<Node*> nodes = graph.nodes();
  // Nodes first (indexed by position in this list, not by graph id — ids
  // may have gaps from removed nodes and are reassigned on parse).
  std::map<const Node*, int64_t> index;
  AppendInt64(out, static_cast<int64_t>(nodes.size()));
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node* node = nodes[i];
    index[node] = static_cast<int64_t>(i);
    AppendString(out, node->name());
    AppendString(out, node->op());
    AppendString(out, node->requested_device());
    AppendString(out, node->assigned_device());
    AppendInt64(out, static_cast<int64_t>(node->attrs().size()));
    for (const auto& [attr_name, attr] : node->attrs()) {
      AppendString(out, attr_name);
      AppendAttrValueToBytes(attr, out);
    }
  }
  // Edges as (src_index, src_output, dst_index, dst_input); control edges
  // carry kControlSlot ports.
  std::vector<const Edge*> edges;
  for (const Node* node : nodes) {
    for (const Edge* e : node->out_edges()) edges.push_back(e);
  }
  AppendInt64(out, static_cast<int64_t>(edges.size()));
  for (const Edge* e : edges) {
    AppendInt64(out, index[e->src]);
    AppendInt64(out, e->src_output);
    AppendInt64(out, index[e->dst]);
    AppendInt64(out, e->dst_input);
  }
}

Result<std::unique_ptr<Graph>> ParseGraphFromBytes(const std::string& bytes,
                                                   size_t* offset,
                                                   const OpRegistry* registry) {
  auto graph = std::make_unique<Graph>(registry);
  int64_t num_nodes = 0;
  if (!ReadInt64(bytes, offset, &num_nodes) || num_nodes < 0) {
    return DataLoss("truncated graph node count");
  }
  std::vector<Node*> nodes;
  nodes.reserve(num_nodes);
  for (int64_t i = 0; i < num_nodes; ++i) {
    NodeDef def;
    std::string assigned_device;
    int64_t num_attrs = 0;
    if (!ReadString(bytes, offset, &def.name) ||
        !ReadString(bytes, offset, &def.op) ||
        !ReadString(bytes, offset, &def.device) ||
        !ReadString(bytes, offset, &assigned_device) ||
        !ReadInt64(bytes, offset, &num_attrs) || num_attrs < 0) {
      return DataLoss("truncated graph node");
    }
    for (int64_t a = 0; a < num_attrs; ++a) {
      std::string attr_name;
      if (!ReadString(bytes, offset, &attr_name)) {
        return DataLoss("truncated attr name");
      }
      Result<AttrValue> attr = ParseAttrValueFromBytes(bytes, offset);
      TF_RETURN_IF_ERROR(attr.status());
      def.attrs[attr_name] = std::move(attr).value();
    }
    Result<Node*> node = graph->AddNode(std::move(def));
    TF_RETURN_IF_ERROR(node.status());
    node.value()->set_assigned_device(assigned_device);
    nodes.push_back(node.value());
  }
  int64_t num_edges = 0;
  if (!ReadInt64(bytes, offset, &num_edges) || num_edges < 0) {
    return DataLoss("truncated graph edge count");
  }
  for (int64_t i = 0; i < num_edges; ++i) {
    int64_t src = 0, src_output = 0, dst = 0, dst_input = 0;
    if (!ReadInt64(bytes, offset, &src) ||
        !ReadInt64(bytes, offset, &src_output) ||
        !ReadInt64(bytes, offset, &dst) ||
        !ReadInt64(bytes, offset, &dst_input)) {
      return DataLoss("truncated graph edge");
    }
    if (src < 0 || src >= static_cast<int64_t>(nodes.size()) || dst < 0 ||
        dst >= static_cast<int64_t>(nodes.size())) {
      return DataLoss("graph edge references out-of-range node");
    }
    if (src_output == kControlSlot) {
      graph->AddControlEdge(nodes[src], nodes[dst]);
    } else {
      Result<const Edge*> edge =
          graph->AddEdge(nodes[src], static_cast<int>(src_output), nodes[dst],
                         static_cast<int>(dst_input));
      TF_RETURN_IF_ERROR(edge.status());
    }
  }
  return graph;
}

}  // namespace tfrepro
