#include "graph/graph_builder.h"

namespace tfrepro {

NodeBuilder::NodeBuilder(GraphBuilder* builder, std::string op_name)
    : builder_(builder), op_name_(std::move(op_name)) {}

NodeBuilder& NodeBuilder::Name(const std::string& name) {
  name_ = name;
  return *this;
}

NodeBuilder& NodeBuilder::Input(const Output& out) {
  inputs_.push_back(out);
  return *this;
}

NodeBuilder& NodeBuilder::Input(const std::vector<Output>& outs) {
  inputs_.insert(inputs_.end(), outs.begin(), outs.end());
  return *this;
}

NodeBuilder& NodeBuilder::ControlInput(Node* node) {
  control_inputs_.push_back(node);
  return *this;
}

NodeBuilder& NodeBuilder::Attr(const std::string& name, AttrValue value) {
  attrs_[name] = std::move(value);
  return *this;
}

NodeBuilder& NodeBuilder::Device(const std::string& device) {
  device_ = device;
  return *this;
}

Node* NodeBuilder::FinalizeNode() {
  if (!builder_->ok()) return nullptr;
  for (const Output& in : inputs_) {
    if (!in.valid()) {
      builder_->UpdateStatus(
          InvalidArgument("invalid input to op " + op_name_));
      return nullptr;
    }
  }
  NodeDef def;
  def.op = op_name_;
  def.name = name_.empty() ? builder_->graph()->NewName(op_name_) : name_;
  def.device = device_.empty() ? builder_->default_device() : device_;
  def.attrs = attrs_;
  Result<Node*> node = builder_->graph()->AddNode(std::move(def));
  if (!node.ok()) {
    builder_->UpdateStatus(node.status());
    return nullptr;
  }
  for (size_t i = 0; i < inputs_.size(); ++i) {
    Result<const Edge*> edge = builder_->graph()->AddEdge(
        inputs_[i].node, inputs_[i].index, node.value(), static_cast<int>(i));
    if (!edge.ok()) {
      builder_->UpdateStatus(edge.status());
      return nullptr;
    }
  }
  for (Node* c : control_inputs_) {
    builder_->graph()->AddControlEdge(c, node.value());
  }
  return node.value();
}

Output NodeBuilder::Finalize() {
  Node* node = FinalizeNode();
  if (node == nullptr) return Output();
  return Output(node, 0);
}

}  // namespace tfrepro
