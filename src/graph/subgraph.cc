#include "graph/subgraph.h"

#include <deque>
#include <map>
#include <set>

#include "graph/graph_builder.h"

namespace tfrepro {

void PruneForReverseReachability(Graph* graph, std::vector<Node*> roots) {
  std::set<Node*> reachable;
  std::deque<Node*> queue;
  for (Node* root : roots) {
    if (root != nullptr && reachable.insert(root).second) {
      queue.push_back(root);
    }
  }
  while (!queue.empty()) {
    Node* node = queue.front();
    queue.pop_front();
    for (const Edge* e : node->in_edges()) {
      if (reachable.insert(e->src).second) {
        queue.push_back(e->src);
      }
    }
  }
  for (Node* node : graph->nodes()) {
    if (reachable.count(node) == 0) {
      graph->RemoveNode(node);
    }
  }
}

namespace {

Result<Output> ResolveTensorName(Graph* graph, const std::string& name) {
  std::string node_name;
  int port = 0;
  ParseInputName(name, &node_name, &port);
  if (port == kControlSlot) {
    return InvalidArgument("'" + name + "' names a control input");
  }
  Node* node = graph->FindNode(node_name);
  if (node == nullptr) {
    return NotFound("node '" + node_name + "' not found in graph");
  }
  if (port < 0 || port >= node->num_outputs()) {
    return InvalidArgument("output " + std::to_string(port) + " of node '" +
                           node_name + "' out of range (" +
                           std::to_string(node->num_outputs()) + " outputs)");
  }
  return Output(node, port);
}

}  // namespace

Status RewriteGraphForExecution(Graph* graph,
                                const std::vector<std::string>& feeds,
                                const std::vector<std::string>& fetches,
                                const std::vector<std::string>& targets) {
  // Insert _Feed nodes and redirect consumers. Remember which output each
  // feed replaced: fetching a fed tensor must round-trip the fed value
  // through the _Feed node, not re-execute the producer (which for a
  // Placeholder is an error).
  std::map<std::pair<const Node*, int>, Node*> fed_outputs;
  for (size_t i = 0; i < feeds.size(); ++i) {
    Result<Output> fed = ResolveTensorName(graph, feeds[i]);
    if (!fed.ok()) {
      return Status(fed.status()).Prepend("feed '" + feeds[i] + "'");
    }
    DataType dtype = fed.value().node->output_type(fed.value().index);
    if (IsRefType(dtype)) {
      return InvalidArgument("cannot feed ref tensor '" + feeds[i] + "'");
    }
    NodeDef def;
    def.name = graph->NewName("_feed_" + std::to_string(i));
    def.op = "_Feed";
    def.device = fed.value().node->assigned_device().empty()
                     ? fed.value().node->requested_device()
                     : fed.value().node->assigned_device();
    def.attrs["dtype"] = AttrValue(dtype);
    def.attrs["index"] = AttrValue(static_cast<int64_t>(i));
    Result<Node*> feed_node = graph->AddNode(std::move(def));
    TF_RETURN_IF_ERROR(feed_node.status());
    fed_outputs[{fed.value().node, fed.value().index}] = feed_node.value();
    // Move consumers of the fed output onto the feed node.
    std::vector<const Edge*> out_edges(fed.value().node->out_edges().begin(),
                                       fed.value().node->out_edges().end());
    for (const Edge* e : out_edges) {
      if (e->IsControlEdge() || e->src_output != fed.value().index) continue;
      Node* dst = e->dst;
      int dst_input = e->dst_input;
      graph->RemoveEdge(e);
      TF_RETURN_IF_ERROR(
          graph->AddEdge(feed_node.value(), 0, dst, dst_input).status());
    }
  }

  // Insert _Fetch nodes. A fetch of a fed tensor reads the _Feed node.
  std::vector<Node*> roots;
  for (size_t i = 0; i < fetches.size(); ++i) {
    Result<Output> fetched = ResolveTensorName(graph, fetches[i]);
    if (!fetched.ok()) {
      return Status(fetched.status()).Prepend("fetch '" + fetches[i] + "'");
    }
    Node* src = fetched.value().node;
    int src_output = fetched.value().index;
    auto fed_it = fed_outputs.find({src, src_output});
    if (fed_it != fed_outputs.end()) {
      src = fed_it->second;
      src_output = 0;
    }
    NodeDef def;
    def.name = graph->NewName("_fetch_" + std::to_string(i));
    def.op = "_Fetch";
    def.device = src->assigned_device().empty() ? src->requested_device()
                                                : src->assigned_device();
    def.attrs["T"] = AttrValue(BaseType(src->output_type(src_output)));
    def.attrs["index"] = AttrValue(static_cast<int64_t>(i));
    Result<Node*> fetch_node = graph->AddNode(std::move(def));
    TF_RETURN_IF_ERROR(fetch_node.status());
    TF_RETURN_IF_ERROR(
        graph->AddEdge(src, src_output, fetch_node.value(), 0).status());
    roots.push_back(fetch_node.value());
  }

  for (const std::string& target : targets) {
    Node* node = graph->FindNode(target);
    if (node == nullptr) {
      return NotFound("target node '" + target + "' not found in graph");
    }
    roots.push_back(node);
  }

  PruneForReverseReachability(graph, std::move(roots));
  return Status::OK();
}

}  // namespace tfrepro
