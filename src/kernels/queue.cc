#include "kernels/queue.h"

#include "core/metrics.h"
#include "runtime/device.h"
#include "runtime/tracing.h"

namespace tfrepro {

namespace {
// Process-wide queue instruments ("queue.occupancy" is the total element
// count across every live queue, maintained by +/- deltas).
struct QueueMetrics {
  metrics::Counter* enqueues;
  metrics::Counter* dequeues;
  metrics::Gauge* occupancy;
  metrics::Histogram* enqueue_block_ms;
  metrics::Histogram* dequeue_block_ms;
};

const QueueMetrics& GetQueueMetrics() {
  static QueueMetrics m = []() {
    metrics::Registry* r = metrics::Registry::Global();
    return QueueMetrics{
        r->GetCounter("queue.enqueues"),
        r->GetCounter("queue.dequeues"),
        r->GetGauge("queue.occupancy"),
        r->GetHistogram("queue.enqueue_block_ms"),
        r->GetHistogram("queue.dequeue_block_ms"),
    };
  }();
  return m;
}

// Emits a trace span for a queue waiter that actually blocked. The 100us
// floor keeps the pass-through fast path (every op transits the waiter
// list) from spamming the trace with zero-length spans.
void MaybeRecordBlockedSpan(const char* name, int64_t start_micros,
                            int64_t end_micros) {
  if (end_micros - start_micros < 100) return;
  RecordGlobalSpan(name, /*scope=*/"", start_micros, end_micros);
}
}  // namespace

QueueResource::QueueResource(DataTypeVector component_types, int64_t capacity,
                             int64_t min_after_dequeue, uint64_t seed,
                             bool shuffle)
    : component_types_(std::move(component_types)),
      capacity_(capacity),
      min_after_dequeue_(min_after_dequeue),
      shuffle_(shuffle),
      rng_(seed) {}

QueueResource::~QueueResource() {
  // Elements still buffered at destruction leave the process-wide
  // occupancy gauge, same as if they had been dequeued.
  GetQueueMetrics().occupancy->Add(-static_cast<int64_t>(buffer_.size()));
}

void QueueResource::TryEnqueue(Tuple tuple, CancellationManager* cm,
                               EnqueueCallback done) {
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      Status s = Aborted("queue is closed");
      actions.push_back([done = std::move(done), s]() { done(s); });
    } else {
      EnqueueWaiter w;
      w.id = next_waiter_id_++;
      w.tuple = std::move(tuple);
      w.wait_start_micros = metrics::NowMicros();
      w.done = std::move(done);
      w.cm = cm;
      w.has_token = false;
      if (cm != nullptr) {
        int64_t id = w.id;
        w.has_token = cm->RegisterCallback(
            &w.token, [this, id]() { CancelEnqueue(id); });
        if (!w.has_token) {
          Status s = Cancelled("step was cancelled");
          actions.push_back(
              [done = std::move(w.done), s]() { done(s); });
          w.done = nullptr;
        }
      }
      if (w.done != nullptr) {
        enqueue_waiters_.push_back(std::move(w));
        SatisfyLocked(&actions);
      }
    }
  }
  for (auto& action : actions) action();
}

void QueueResource::TryDequeue(int64_t n, bool batched,
                               CancellationManager* cm, DequeueCallback done) {
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DequeueWaiter w;
    w.id = next_waiter_id_++;
    w.n = n;
    w.batched = batched;
    w.wait_start_micros = metrics::NowMicros();
    w.done = std::move(done);
    w.cm = cm;
    w.has_token = false;
    if (cm != nullptr) {
      int64_t id = w.id;
      w.has_token =
          cm->RegisterCallback(&w.token, [this, id]() { CancelDequeue(id); });
      if (!w.has_token) {
        Status s = Cancelled("step was cancelled");
        actions.push_back(
            [done = std::move(w.done), s]() { done(s, Tuple()); });
        w.done = nullptr;
      }
    }
    if (w.done != nullptr) {
      dequeue_waiters_.push_back(std::move(w));
      SatisfyLocked(&actions);
    }
  }
  for (auto& action : actions) action();
}

QueueResource::Tuple QueueResource::PopOneLocked() {
  size_t index = 0;
  if (shuffle_ && buffer_.size() > 1) {
    index = static_cast<size_t>(rng_.UniformInt(buffer_.size()));
  }
  Tuple t = std::move(buffer_[index]);
  buffer_.erase(buffer_.begin() + index);
  GetQueueMetrics().occupancy->Add(-1);
  return t;
}

QueueResource::Tuple QueueResource::StackRows(const std::vector<Tuple>& rows) {
  Tuple out;
  if (rows.empty()) return out;
  size_t num_components = rows[0].size();
  for (size_t c = 0; c < num_components; ++c) {
    TensorShape shape = rows[0][c].shape();
    shape.InsertDim(0, static_cast<int64_t>(rows.size()));
    Tensor stacked(rows[0][c].dtype(), shape);
    int64_t row_elems = rows[0][c].num_elements();
    size_t esz = DataTypeSize(rows[0][c].dtype());
    for (size_t r = 0; r < rows.size(); ++r) {
      if (esz > 0) {
        std::memcpy(stacked.raw_data() + r * row_elems * esz,
                    rows[r][c].raw_data(), row_elems * esz);
      } else {
        for (int64_t i = 0; i < row_elems; ++i) {
          stacked.str(r * row_elems + i) = rows[r][c].str(i);
        }
      }
    }
    out.push_back(std::move(stacked));
  }
  return out;
}

void QueueResource::SatisfyLocked(std::vector<std::function<void()>>* actions) {
  bool progress = true;
  while (progress) {
    progress = false;

    // Move waiting enqueues into the buffer while capacity allows.
    while (!enqueue_waiters_.empty() &&
           (capacity_ < 0 ||
            static_cast<int64_t>(buffer_.size()) < capacity_)) {
      EnqueueWaiter w = std::move(enqueue_waiters_.front());
      enqueue_waiters_.pop_front();
      buffer_.push_back(std::move(w.tuple));
      GetQueueMetrics().enqueues->Increment();
      GetQueueMetrics().occupancy->Add(1);
      const int64_t enq_now = metrics::NowMicros();
      GetQueueMetrics().enqueue_block_ms->Record(
          static_cast<double>(enq_now - w.wait_start_micros) / 1000.0);
      MaybeRecordBlockedSpan("queue.enqueue_blocked", w.wait_start_micros,
                             enq_now);
      if (w.has_token) w.cm->DeregisterCallback(w.token);
      actions->push_back([done = std::move(w.done)]() { done(Status::OK()); });
      progress = true;
    }

    if (dequeue_waiters_.empty()) continue;

    // Feed the front dequeue waiter. A shuffle queue keeps
    // min_after_dequeue elements buffered while open (for mixing).
    DequeueWaiter& w = dequeue_waiters_.front();
    int64_t reserve = (shuffle_ && !closed_) ? min_after_dequeue_ : 0;
    while (static_cast<int64_t>(w.rows.size()) < w.n &&
           static_cast<int64_t>(buffer_.size()) > reserve) {
      w.rows.push_back(PopOneLocked());
      progress = true;
    }
    if (static_cast<int64_t>(w.rows.size()) == w.n) {
      DequeueWaiter ready = std::move(dequeue_waiters_.front());
      dequeue_waiters_.pop_front();
      GetQueueMetrics().dequeues->Increment(ready.n);
      const int64_t deq_now = metrics::NowMicros();
      GetQueueMetrics().dequeue_block_ms->Record(
          static_cast<double>(deq_now - ready.wait_start_micros) / 1000.0);
      MaybeRecordBlockedSpan("queue.dequeue_blocked",
                             ready.wait_start_micros, deq_now);
      if (ready.has_token) ready.cm->DeregisterCallback(ready.token);
      Tuple result = ready.batched ? StackRows(ready.rows)
                                   : std::move(ready.rows[0]);
      actions->push_back(
          [done = std::move(ready.done), result = std::move(result)]() {
            done(Status::OK(), result);
          });
      progress = true;
    } else if (closed_ &&
               static_cast<int64_t>(buffer_.size()) +
                       static_cast<int64_t>(enqueue_waiters_.size()) <
                   w.n - static_cast<int64_t>(w.rows.size())) {
      // Queue closed and can never produce enough elements.
      DequeueWaiter failed = std::move(dequeue_waiters_.front());
      dequeue_waiters_.pop_front();
      if (failed.has_token) failed.cm->DeregisterCallback(failed.token);
      Status s = OutOfRange("queue is closed and has insufficient elements");
      actions->push_back([done = std::move(failed.done), s]() {
        done(s, Tuple());
      });
      progress = true;
    }
  }
}

void QueueResource::Close(bool cancel_pending_enqueues) {
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cancel_pending_ = cancel_pending_enqueues;
    if (cancel_pending_enqueues) {
      while (!enqueue_waiters_.empty()) {
        EnqueueWaiter w = std::move(enqueue_waiters_.front());
        enqueue_waiters_.pop_front();
        if (w.has_token) w.cm->DeregisterCallback(w.token);
        Status s = Cancelled("queue closed with pending enqueues cancelled");
        actions.push_back([done = std::move(w.done), s]() { done(s); });
      }
    }
    SatisfyLocked(&actions);
  }
  for (auto& action : actions) action();
}

void QueueResource::CancelAll(const Status& reason) {
  std::vector<std::function<void()>> actions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!enqueue_waiters_.empty()) {
      EnqueueWaiter w = std::move(enqueue_waiters_.front());
      enqueue_waiters_.pop_front();
      if (w.has_token) w.cm->DeregisterCallback(w.token);
      actions.push_back([done = std::move(w.done), reason]() { done(reason); });
    }
    while (!dequeue_waiters_.empty()) {
      DequeueWaiter w = std::move(dequeue_waiters_.front());
      dequeue_waiters_.pop_front();
      if (w.has_token) w.cm->DeregisterCallback(w.token);
      // Return partially-collected rows so no element is lost.
      for (auto it = w.rows.rbegin(); it != w.rows.rend(); ++it) {
        buffer_.push_front(std::move(*it));
        GetQueueMetrics().occupancy->Add(1);
      }
      actions.push_back(
          [done = std::move(w.done), reason]() { done(reason, Tuple()); });
    }
  }
  for (auto& action : actions) action();
}

int64_t QueueResource::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(buffer_.size());
}

bool QueueResource::is_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::string QueueResource::DebugString() const {
  return "Queue(size=" + std::to_string(Size()) + ")";
}

void QueueResource::CancelEnqueue(int64_t id) {
  EnqueueCallback done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = enqueue_waiters_.begin(); it != enqueue_waiters_.end();
         ++it) {
      if (it->id == id) {
        done = std::move(it->done);
        enqueue_waiters_.erase(it);
        break;
      }
    }
  }
  if (done) done(Cancelled("enqueue was cancelled"));
}

void QueueResource::CancelDequeue(int64_t id) {
  DequeueCallback done;
  std::vector<Tuple> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = dequeue_waiters_.begin(); it != dequeue_waiters_.end();
         ++it) {
      if (it->id == id) {
        done = std::move(it->done);
        rows = std::move(it->rows);
        dequeue_waiters_.erase(it);
        break;
      }
    }
    // Return partially-collected rows to the buffer.
    for (auto& row : rows) {
      buffer_.push_front(std::move(row));
      GetQueueMetrics().occupancy->Add(1);
    }
  }
  if (done) done(Cancelled("dequeue was cancelled"), Tuple());
}

Result<std::shared_ptr<QueueResource>> LookupQueue(OpKernelContext* ctx,
                                                   int handle_input) {
  Tensor handle = ctx->input(handle_input);
  if (BaseType(handle.dtype()) != DataType::kString ||
      handle.num_elements() < 1) {
    return InvalidArgument("queue handle must be a string tensor");
  }
  return ctx->device()->resource_mgr()->Lookup<QueueResource>(handle.str(0));
}

}  // namespace tfrepro
