// Stateful kernels (paper §3.1): Variable owns a mutable buffer and emits a
// reference handle; Assign/AssignAdd/AssignSub and the Scatter* family
// mutate the buffer through that handle. The variable's buffer lives in the
// kernel instance, which the device's segment cache shares across all
// executors of a session — exactly the "shared state between steps" the
// dataflow model relies on.

#include <mutex>

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

class VariableOp : public OpKernel {
 public:
  explicit VariableOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetTypeAttr("dtype", &dtype_));
    ctx->SetStatus(ctx->GetShapeAttr("shape", &shape_));
  }

  void Compute(OpKernelContext* ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    // The buffer stays uninitialized (dtype kInvalid) until the first
    // Assign; IsVariableInitialized inspects this.
    ctx->set_output_ref(0, &mu_, &value_);
  }
  bool IsExpensive() const override { return false; }

 private:
  DataType dtype_ = DataType::kInvalid;
  TensorShape shape_;
  std::mutex mu_;
  Tensor value_;
};
REGISTER_KERNEL("Variable", kDeviceCpu, VariableOp);

class IsVariableInitializedOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    std::mutex* mu = nullptr;
    Tensor* ref = ctx->mutable_input_ref(0, &mu);
    OP_REQUIRES(ctx, ref != nullptr,
                InvalidArgument("IsVariableInitialized on non-ref input"));
    bool initialized;
    {
      std::lock_guard<std::mutex> lock(*mu);
      initialized = ref->IsInitialized();
    }
    ctx->set_output(0, Tensor::Scalar(initialized));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("IsVariableInitialized", kDeviceCpu, IsVariableInitializedOp);

class AssignOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    std::mutex* mu = nullptr;
    Tensor* ref = ctx->mutable_input_ref(0, &mu);
    OP_REQUIRES(ctx, ref != nullptr,
                InvalidArgument("Assign requires a ref input"));
    Tensor value = ctx->input(1);
    {
      std::lock_guard<std::mutex> lock(*mu);
      if (ref->IsInitialized() && ref->shape() == value.shape()) {
        // In-place update keeps outstanding readers consistent with the
        // relaxed semantics the paper assumes (§4.3).
        OP_REQUIRES_OK(ctx, ref->CopyDataFrom(value));
      } else {
        *ref = value.Clone();
      }
    }
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("Assign", kDeviceCpu, AssignOp);

template <bool IsAdd>
class AssignUpdateOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    std::mutex* mu = nullptr;
    Tensor* ref = ctx->mutable_input_ref(0, &mu);
    OP_REQUIRES(ctx, ref != nullptr,
                InvalidArgument("AssignAdd/Sub requires a ref input"));
    Tensor value = ctx->input(1);
    std::lock_guard<std::mutex> lock(*mu);
    OP_REQUIRES(ctx, ref->IsInitialized(),
                FailedPrecondition("variable '" + name() +
                                   "' used before initialization"));
    OP_REQUIRES(ctx, ref->shape() == value.shape(),
                InvalidArgument("AssignAdd/Sub shape mismatch: " +
                                ref->shape().DebugString() + " vs " +
                                value.shape().DebugString()));
    OP_REQUIRES_OK(ctx, NumericDispatch(ref->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T* p = ref->data<T>();
      const T* v = value.data<T>();
      for (int64_t i = 0; i < ref->num_elements(); ++i) {
        if constexpr (IsAdd) {
          p[i] += v[i];
        } else {
          p[i] -= v[i];
        }
      }
    }));
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("AssignAdd", kDeviceCpu, AssignUpdateOp<true>);
REGISTER_KERNEL("AssignSub", kDeviceCpu, AssignUpdateOp<false>);

enum class ScatterKind { kAdd, kSub, kUpdate };

template <ScatterKind K>
class ScatterOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    std::mutex* mu = nullptr;
    Tensor* ref = ctx->mutable_input_ref(0, &mu);
    OP_REQUIRES(ctx, ref != nullptr,
                InvalidArgument("Scatter requires a ref input"));
    Tensor indices = ctx->input(1);
    Tensor updates = ctx->input(2);
    std::lock_guard<std::mutex> lock(*mu);
    OP_REQUIRES(ctx, ref->IsInitialized(),
                FailedPrecondition("variable used before initialization"));
    OP_REQUIRES(ctx, ref->shape().rank() >= 1,
                InvalidArgument("Scatter target must have rank >= 1"));
    int64_t rows = ref->dim(0);
    int64_t row_elems = rows == 0 ? 0 : ref->num_elements() / rows;
    OP_REQUIRES(
        ctx, updates.num_elements() == indices.num_elements() * row_elems,
        InvalidArgument("Scatter updates shape mismatch"));
    Status index_status;
    Status dispatch_status;
    OP_REQUIRES_OK(ctx, NumericDispatch(ref->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T* p = ref->data<T>();
      const T* u = updates.data<T>();
      dispatch_status = IndexDispatch(indices.dtype(), [&](auto itag) {
        using I = decltype(itag);
        const I* idx = indices.data<I>();
        for (int64_t i = 0; i < indices.num_elements(); ++i) {
          if (idx[i] < 0 || idx[i] >= rows) {
            index_status = OutOfRange("scatter index out of range");
            return;
          }
          T* row = p + idx[i] * row_elems;
          const T* urow = u + i * row_elems;
          for (int64_t j = 0; j < row_elems; ++j) {
            if constexpr (K == ScatterKind::kAdd) {
              row[j] += urow[j];
            } else if constexpr (K == ScatterKind::kSub) {
              row[j] -= urow[j];
            } else {
              row[j] = urow[j];
            }
          }
        }
      });
    }));
    if (index_status.ok()) index_status = dispatch_status;
    OP_REQUIRES_OK(ctx, index_status);
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("ScatterAdd", kDeviceCpu, ScatterOp<ScatterKind::kAdd>);
REGISTER_KERNEL("ScatterSub", kDeviceCpu, ScatterOp<ScatterKind::kSub>);
REGISTER_KERNEL("ScatterUpdate", kDeviceCpu, ScatterOp<ScatterKind::kUpdate>);

class CountUpToOp : public OpKernel {
 public:
  explicit CountUpToOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("limit", &limit_));
  }
  void Compute(OpKernelContext* ctx) override {
    std::mutex* mu = nullptr;
    Tensor* ref = ctx->mutable_input_ref(0, &mu);
    OP_REQUIRES(ctx, ref != nullptr,
                InvalidArgument("CountUpTo requires a ref input"));
    std::lock_guard<std::mutex> lock(*mu);
    OP_REQUIRES(ctx, ref->IsInitialized() && ref->IsScalar(),
                FailedPrecondition("CountUpTo needs an initialized scalar"));
    int64_t v = *ref->data<int64_t>();
    OP_REQUIRES(ctx, v < limit_,
                OutOfRange("CountUpTo reached limit " +
                           std::to_string(limit_)));
    *ref->data<int64_t>() = v + 1;
    ctx->set_output(0, Tensor::Scalar(v));
  }

 private:
  int64_t limit_ = 0;
};
REGISTER_KERNEL("CountUpTo", kDeviceCpu, CountUpToOp);

}  // namespace
}  // namespace tfrepro
