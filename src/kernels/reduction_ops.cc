// Reduction kernels: Sum/Mean/Max/Min/Prod over arbitrary axes, ArgMax.

#include <limits>

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

// Normalizes reduction axes from the int32 indices input; empty indices
// tensor means "reduce everything".
Status GetAxes(const Tensor& input, const Tensor& indices,
               std::vector<bool>* reduce_dim) {
  int rank = input.shape().rank();
  reduce_dim->assign(std::max(rank, 1), false);
  if (indices.num_elements() == 0) {
    // TensorFlow semantics: an empty axis list reduces nothing; reduce-all
    // is expressed by passing all axes. The graph-builder helpers pass all
    // axes explicitly for "reduce all".
    return Status::OK();
  }
  for (int64_t i = 0; i < indices.num_elements(); ++i) {
    int32_t axis = indices.flat<int32_t>(i);
    if (axis < 0) axis += rank;
    if (axis < 0 || axis >= rank) {
      return InvalidArgument("reduction axis " + std::to_string(axis) +
                             " out of range for rank " + std::to_string(rank));
    }
    (*reduce_dim)[axis] = true;
  }
  return Status::OK();
}

TensorShape ReducedShape(const TensorShape& in,
                         const std::vector<bool>& reduce_dim, bool keep_dims) {
  TensorShape out;
  for (int i = 0; i < in.rank(); ++i) {
    if (reduce_dim[i]) {
      if (keep_dims) out.AddDim(1);
    } else {
      out.AddDim(in.dim(i));
    }
  }
  return out;
}

enum class Reduction { kSum, kMean, kMax, kMin, kProd };

template <Reduction R>
class ReduceOp : public OpKernel {
 public:
  explicit ReduceOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetBoolAttr("keep_dims", &keep_dims_));
  }

  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    Tensor indices = ctx->input(1);
    std::vector<bool> reduce_dim;
    OP_REQUIRES_OK(ctx, GetAxes(input, indices, &reduce_dim));
    TensorShape out_shape =
        ReducedShape(input.shape(), reduce_dim, keep_dims_);
    Tensor out(BaseType(input.dtype()), out_shape);

    int rank = input.shape().rank();
    // Map each input element to its output element by dropping reduced dims.
    OP_REQUIRES_OK(ctx, NumericDispatch(input.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = input.data<T>();
      T* o = out.data<T>();
      int64_t out_n = out.num_elements();
      T init;
      if constexpr (R == Reduction::kSum || R == Reduction::kMean) {
        init = T{0};
      } else if constexpr (R == Reduction::kProd) {
        init = T{1};
      } else if constexpr (R == Reduction::kMax) {
        init = std::numeric_limits<T>::lowest();
      } else {
        init = std::numeric_limits<T>::max();
      }
      for (int64_t i = 0; i < out_n; ++i) o[i] = init;

      // Precompute strides of input and output-projection.
      std::vector<int64_t> in_dims(rank);
      for (int i = 0; i < rank; ++i) in_dims[i] = input.dim(i);
      std::vector<int64_t> out_stride(rank, 0);
      int64_t stride = 1;
      for (int i = rank - 1; i >= 0; --i) {
        if (!reduce_dim[i]) {
          out_stride[i] = stride;
          stride *= in_dims[i];
        }
      }
      std::vector<int64_t> index(rank, 0);
      int64_t out_idx = 0;
      int64_t n = input.num_elements();
      int64_t reduced_count = out_n == 0 ? 0 : n / std::max<int64_t>(out_n, 1);
      for (int64_t i = 0; i < n; ++i) {
        if constexpr (R == Reduction::kSum || R == Reduction::kMean) {
          o[out_idx] += in[i];
        } else if constexpr (R == Reduction::kProd) {
          o[out_idx] *= in[i];
        } else if constexpr (R == Reduction::kMax) {
          if (in[i] > o[out_idx]) o[out_idx] = in[i];
        } else {
          if (in[i] < o[out_idx]) o[out_idx] = in[i];
        }
        for (int d = rank - 1; d >= 0; --d) {
          ++index[d];
          out_idx += out_stride[d];
          if (index[d] < in_dims[d]) break;
          index[d] = 0;
          out_idx -= out_stride[d] * in_dims[d];
        }
      }
      if constexpr (R == Reduction::kMean) {
        if (reduced_count > 0) {
          for (int64_t i = 0; i < out_n; ++i) {
            o[i] = static_cast<T>(o[i] / static_cast<T>(reduced_count));
          }
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  bool keep_dims_ = false;
};

REGISTER_KERNEL("Sum", kDeviceCpu, ReduceOp<Reduction::kSum>);
REGISTER_KERNEL("Mean", kDeviceCpu, ReduceOp<Reduction::kMean>);
REGISTER_KERNEL("Max", kDeviceCpu, ReduceOp<Reduction::kMax>);
REGISTER_KERNEL("Min", kDeviceCpu, ReduceOp<Reduction::kMin>);
REGISTER_KERNEL("Prod", kDeviceCpu, ReduceOp<Reduction::kProd>);

class ArgMaxOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    int32_t axis = *ctx->input(1).data<int32_t>();
    int rank = input.shape().rank();
    if (axis < 0) axis += rank;
    OP_REQUIRES(ctx, axis >= 0 && axis < rank,
                InvalidArgument("ArgMax axis out of range"));
    TensorShape out_shape = input.shape();
    out_shape.RemoveDim(axis);
    Tensor out(DataType::kInt64, out_shape);

    int64_t outer = 1;
    for (int i = 0; i < axis; ++i) outer *= input.dim(i);
    int64_t axis_n = input.dim(axis);
    int64_t inner = 1;
    for (int i = axis + 1; i < rank; ++i) inner *= input.dim(i);

    OP_REQUIRES_OK(ctx, NumericDispatch(input.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = input.data<T>();
      int64_t* o = out.data<int64_t>();
      for (int64_t a = 0; a < outer; ++a) {
        for (int64_t c = 0; c < inner; ++c) {
          T best = in[a * axis_n * inner + c];
          int64_t best_i = 0;
          for (int64_t b = 1; b < axis_n; ++b) {
            T v = in[(a * axis_n + b) * inner + c];
            if (v > best) {
              best = v;
              best_i = b;
            }
          }
          o[a * inner + c] = best_i;
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("ArgMax", kDeviceCpu, ArgMaxOp);

class L2LossOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor t = ctx->input(0);
    Tensor out(BaseType(t.dtype()), TensorShape());
    OP_REQUIRES_OK(ctx, FloatDispatch(t.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = t.data<T>();
      double acc = 0;
      for (int64_t i = 0; i < t.num_elements(); ++i) {
        acc += static_cast<double>(in[i]) * in[i];
      }
      *out.data<T>() = static_cast<T>(acc / 2);
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("L2Loss", kDeviceCpu, L2LossOp);

}  // namespace
}  // namespace tfrepro
