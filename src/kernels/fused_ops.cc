// _FusedElementwise: executes a whole chain of unary/binary element-wise
// ops in one kernel dispatch (DESIGN.md §13). The recipe comes from the
// fusion pass as attrs: `ops` (original op names in execution order) and
// `chain_lhs` (per step, whether the accumulator feeds the left operand of
// a binary step). The accumulator starts at inputs[0]; each binary step
// consumes the next external input.
//
// Bit-exactness contract: every step applies the exact same functor the
// standalone kernel would (kernels/elementwise_functors.h), and the fast
// path evaluates steps in the same order with the same float type, so fused
// and unfused executions agree bit-for-bit.

#include <vector>

#include "kernels/broadcast.h"
#include "kernels/dispatch.h"
#include "kernels/elementwise_functors.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

class FusedElementwiseOp : public OpKernel {
 public:
  explicit FusedElementwiseOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    std::vector<std::string> op_names;
    std::vector<int64_t> chain_lhs;
    int64_t n = 0;
    ctx->SetStatus(ctx->GetStringListAttr("ops", &op_names));
    ctx->SetStatus(ctx->GetIntListAttr("chain_lhs", &chain_lhs));
    ctx->SetStatus(ctx->GetIntAttr("N", &n));
    ctx->SetStatus(ctx->GetTypeAttr("T", &dtype_));
    if (!ctx->status().ok()) return;
    if (chain_lhs.size() != op_names.size()) {
      ctx->SetStatus(InvalidArgument(
          "_FusedElementwise: ops/chain_lhs length mismatch"));
      return;
    }
    int64_t consumed = 1;  // inputs[0] seeds the accumulator
    for (size_t i = 0; i < op_names.size(); ++i) {
      Step step;
      step.binary = BinaryEwiseFromOp(op_names[i]);
      if (step.binary == BinaryEwise::kInvalid) {
        step.unary = UnaryEwiseFromOp(op_names[i]);
        if (step.unary == UnaryEwise::kInvalid) {
          ctx->SetStatus(InvalidArgument(
              "_FusedElementwise: '" + op_names[i] +
              "' is not a fusable element-wise op"));
          return;
        }
      } else {
        step.rhs_input = static_cast<int>(consumed++);
        step.acc_is_lhs = chain_lhs[i] != 0;
      }
      steps_.push_back(step);
    }
    if (consumed != n) {
      ctx->SetStatus(InvalidArgument(
          "_FusedElementwise: recipe consumes " + std::to_string(consumed) +
          " inputs but N = " + std::to_string(n)));
    }
  }

  void Compute(OpKernelContext* ctx) override {
    const int n = ctx->num_inputs();
    std::vector<Tensor> inputs;
    inputs.reserve(n);
    for (int i = 0; i < n; ++i) {
      Tensor t = ctx->input(i);
      OP_REQUIRES(ctx, BaseType(t.dtype()) == BaseType(dtype_),
                  InvalidArgument("_FusedElementwise input dtype mismatch"));
      inputs.push_back(std::move(t));
    }

    // The output shape is the step-by-step broadcast of the chain, exactly
    // as the unfused kernels would compute it.
    TensorShape acc_shape = inputs[0].shape();
    for (const Step& s : steps_) {
      if (s.binary == BinaryEwise::kInvalid) continue;
      Result<TensorShape> bs =
          BroadcastShape(acc_shape, inputs[s.rhs_input].shape());
      OP_REQUIRES_OK(ctx, bs.status());
      acc_shape = bs.value();
    }

    // Fast path: every input is either a scalar or already has the output
    // shape, so the whole chain runs element-at-a-time in registers with no
    // intermediate buffers — this is the fused single loop.
    bool elementwise = true;
    for (const Tensor& t : inputs) {
      if (t.num_elements() != 1 && !(t.shape() == acc_shape)) {
        elementwise = false;
        break;
      }
    }

    Tensor out(BaseType(dtype_), acc_shape);
    if (elementwise) {
      OP_REQUIRES_OK(ctx, NumericDispatch(dtype_, [&](auto tag) {
        using T = decltype(tag);
        std::vector<const T*> in(n);
        std::vector<int64_t> stride(n);
        for (int i = 0; i < n; ++i) {
          in[i] = inputs[i].data<T>();
          stride[i] = inputs[i].num_elements() == 1 ? 0 : 1;
        }
        T* o = out.data<T>();
        const int64_t count = acc_shape.num_elements();
        for (int64_t e = 0; e < count; ++e) {
          T acc = in[0][e * stride[0]];
          for (const Step& s : steps_) {
            if (s.binary != BinaryEwise::kInvalid) {
              T rhs = in[s.rhs_input][e * stride[s.rhs_input]];
              acc = s.acc_is_lhs ? ApplyBinaryEwise<T>(s.binary, acc, rhs)
                                 : ApplyBinaryEwise<T>(s.binary, rhs, acc);
            } else {
              acc = ApplyUnaryEwise<T>(s.unary, acc);
            }
          }
          o[e] = acc;
        }
      }));
    } else {
      // General broadcasting: materialize each step with the same
      // BroadcastBinary the standalone kernels use. Still one dispatch.
      OP_REQUIRES_OK(ctx, NumericDispatch(dtype_, [&](auto tag) {
        using T = decltype(tag);
        Tensor acc = inputs[0];
        for (const Step& s : steps_) {
          if (s.binary != BinaryEwise::kInvalid) {
            const Tensor& rhs = inputs[s.rhs_input];
            Result<TensorShape> bs = BroadcastShape(acc.shape(), rhs.shape());
            if (!bs.ok()) return;  // caught by the shape fold above
            Tensor next(BaseType(dtype_), bs.value());
            const Tensor& a = s.acc_is_lhs ? acc : rhs;
            const Tensor& b = s.acc_is_lhs ? rhs : acc;
            BinaryEwise op = s.binary;
            BroadcastBinary<T, T>(a.data<T>(), a.shape(), b.data<T>(),
                                  b.shape(), next.data<T>(), next.shape(),
                                  [op](T x, T y) {
                                    return ApplyBinaryEwise<T>(op, x, y);
                                  });
            acc = std::move(next);
          } else {
            Tensor next(BaseType(dtype_), acc.shape());
            const T* a = acc.data<T>();
            T* o = next.data<T>();
            for (int64_t i = 0; i < acc.num_elements(); ++i) {
              o[i] = ApplyUnaryEwise<T>(s.unary, a[i]);
            }
            acc = std::move(next);
          }
        }
        out = std::move(acc);
      }));
    }
    ctx->set_output(0, std::move(out));
  }

 private:
  struct Step {
    BinaryEwise binary = BinaryEwise::kInvalid;
    UnaryEwise unary = UnaryEwise::kInvalid;
    int rhs_input = -1;     // external input index for binary steps
    bool acc_is_lhs = true; // accumulator feeds the left operand
  };

  DataType dtype_ = DataType::kFloat;
  std::vector<Step> steps_;
};

REGISTER_KERNEL("_FusedElementwise", kDeviceCpu, FusedElementwiseOp);

}  // namespace
}  // namespace tfrepro
