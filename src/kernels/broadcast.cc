#include "kernels/broadcast.h"

#include <algorithm>

namespace tfrepro {

Result<TensorShape> BroadcastShape(const TensorShape& a,
                                   const TensorShape& b) {
  int rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(rank);
  for (int i = 0; i < rank; ++i) {
    int ai = a.rank() - rank + i;
    int bi = b.rank() - rank + i;
    int64_t da = ai >= 0 ? a.dim(ai) : 1;
    int64_t db = bi >= 0 ? b.dim(bi) : 1;
    if (da == db) {
      dims[i] = da;
    } else if (da == 1) {
      dims[i] = db;
    } else if (db == 1) {
      dims[i] = da;
    } else {
      return InvalidArgument("shapes " + a.DebugString() + " and " +
                             b.DebugString() + " are not broadcastable");
    }
  }
  return TensorShape(dims);
}

std::vector<int64_t> BroadcastStrides(const TensorShape& in,
                                      const TensorShape& out) {
  int rank = out.rank();
  std::vector<int64_t> strides(rank, 0);
  // Natural strides of `in`, right-aligned against `out`.
  int64_t stride = 1;
  for (int i = in.rank() - 1; i >= 0; --i) {
    int oi = rank - in.rank() + i;
    strides[oi] = (in.dim(i) == 1 && out.dim(oi) != 1) ? 0 : stride;
    stride *= in.dim(i);
  }
  return strides;
}

}  // namespace tfrepro
