// Quantization kernels (paper §5): affine uint8 quantization and a
// gemmlowp-style low-precision matrix multiply with int32 accumulation.
// Quantized inference trades a little accuracy for integer arithmetic —
// the mobile/datacenter-inference path the paper describes.

#include <cmath>

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

// value = min + q * (max - min) / 255.
struct QuantParams {
  float min;
  float scale;     // (max - min) / 255
  float inv_scale;
};

Result<QuantParams> GetParams(float min_range, float max_range) {
  if (!(max_range > min_range)) {
    return InvalidArgument("quantization range must satisfy max > min");
  }
  QuantParams p;
  p.min = min_range;
  p.scale = (max_range - min_range) / 255.0f;
  p.inv_scale = 255.0f / (max_range - min_range);
  return p;
}

class QuantizeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    Result<QuantParams> params = GetParams(*ctx->input(1).data<float>(),
                                           *ctx->input(2).data<float>());
    OP_REQUIRES_OK(ctx, params.status());
    Tensor out(DataType::kUint8, input.shape());
    const float* in = input.data<float>();
    uint8_t* o = out.data<uint8_t>();
    for (int64_t i = 0; i < input.num_elements(); ++i) {
      float q = std::round((in[i] - params.value().min) *
                           params.value().inv_scale);
      o[i] = static_cast<uint8_t>(std::min(255.0f, std::max(0.0f, q)));
    }
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Quantize", kDeviceCpu, QuantizeOp);

class DequantizeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    Result<QuantParams> params = GetParams(*ctx->input(1).data<float>(),
                                           *ctx->input(2).data<float>());
    OP_REQUIRES_OK(ctx, params.status());
    Tensor out(DataType::kFloat, input.shape());
    const uint8_t* in = input.data<uint8_t>();
    float* o = out.data<float>();
    for (int64_t i = 0; i < input.num_elements(); ++i) {
      o[i] = params.value().min + in[i] * params.value().scale;
    }
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Dequantize", kDeviceCpu, DequantizeOp);

// product[i,j] = sum_k dequant(a[i,k]) * dequant(b[k,j]), computed with
// integer accumulation: expanding the affine form gives four terms, three
// of which reduce to row/column sums — the standard gemmlowp trick.
class QuantizedMatMulOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor a = ctx->input(0);
    Tensor b = ctx->input(1);
    OP_REQUIRES(ctx, a.shape().rank() == 2 && b.shape().rank() == 2,
                InvalidArgument("QuantizedMatMul inputs must be rank-2"));
    OP_REQUIRES(ctx, a.dim(1) == b.dim(0),
                InvalidArgument("QuantizedMatMul inner dimensions differ"));
    Result<QuantParams> pa = GetParams(*ctx->input(2).data<float>(),
                                       *ctx->input(3).data<float>());
    OP_REQUIRES_OK(ctx, pa.status());
    Result<QuantParams> pb = GetParams(*ctx->input(4).data<float>(),
                                       *ctx->input(5).data<float>());
    OP_REQUIRES_OK(ctx, pb.status());

    int64_t m = a.dim(0);
    int64_t k = a.dim(1);
    int64_t n = b.dim(1);
    const uint8_t* ap = a.data<uint8_t>();
    const uint8_t* bp = b.data<uint8_t>();

    // Row sums of a and column sums of b for the cross terms.
    std::vector<int64_t> row_sum(m, 0);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t kk = 0; kk < k; ++kk) row_sum[i] += ap[i * k + kk];
    }
    std::vector<int64_t> col_sum(n, 0);
    for (int64_t kk = 0; kk < k; ++kk) {
      for (int64_t j = 0; j < n; ++j) col_sum[j] += bp[kk * n + j];
    }

    Tensor out(DataType::kFloat, TensorShape({m, n}));
    float* o = out.data<float>();
    const float sa = pa.value().scale;
    const float sb = pb.value().scale;
    const float ma = pa.value().min;
    const float mb = pb.value().min;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        int64_t acc = 0;  // integer dot product
        for (int64_t kk = 0; kk < k; ++kk) {
          acc += static_cast<int64_t>(ap[i * k + kk]) * bp[kk * n + j];
        }
        // (ma + sa*qa) . (mb + sb*qb) expanded over k terms.
        o[i * n + j] = static_cast<float>(acc) * sa * sb +
                       ma * sb * static_cast<float>(col_sum[j]) +
                       mb * sa * static_cast<float>(row_sum[i]) +
                       ma * mb * static_cast<float>(k);
      }
    }
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("QuantizedMatMul", kDeviceCpu, QuantizedMatMulOp);

}  // namespace
}  // namespace tfrepro
