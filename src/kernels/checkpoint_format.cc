#include "kernels/checkpoint_format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>

namespace tfrepro {

namespace {

constexpr char kMagic[8] = {'T', 'F', 'R', 'C', 'K', 'P', 'T', '1'};

void AppendInt64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadInt64(const std::string& in, size_t* offset, int64_t* v) {
  if (*offset + sizeof(int64_t) > in.size()) return false;
  std::memcpy(v, in.data() + *offset, sizeof(int64_t));
  *offset += sizeof(int64_t);
  return true;
}

Result<std::string> ReadWholeFile(const std::string& filename) {
  std::ifstream in(filename, std::ios::binary);
  if (!in) {
    return NotFound("cannot open checkpoint file '" + filename + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

Status WriteCheckpoint(
    const std::string& filename,
    const std::vector<std::pair<std::string, Tensor>>& entries) {
  std::string bytes;
  bytes.append(kMagic, sizeof(kMagic));
  AppendInt64(&bytes, static_cast<int64_t>(entries.size()));
  for (const auto& [name, tensor] : entries) {
    AppendInt64(&bytes, static_cast<int64_t>(name.size()));
    bytes.append(name);
    tensor.AppendToBytes(&bytes);
  }
  // Write via a temp file + rename for crash atomicity: a checkpoint that
  // is only partially written must never shadow the previous good one.
  std::string tmp = filename + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Internal("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return Internal("short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), filename.c_str()) != 0) {
    return Internal("cannot rename '" + tmp + "' to '" + filename + "'");
  }
  return Status::OK();
}

namespace {

// Shared scan over a checkpoint's entries.
Status ScanCheckpoint(
    const std::string& filename,
    const std::function<bool(const std::string&, const std::string&, size_t*)>&
        visit) {
  Result<std::string> bytes = ReadWholeFile(filename);
  TF_RETURN_IF_ERROR(bytes.status());
  const std::string& data = bytes.value();
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return DataLoss("'" + filename + "' is not a tfrepro checkpoint");
  }
  size_t offset = sizeof(kMagic);
  int64_t count = 0;
  if (!ReadInt64(data, &offset, &count) || count < 0) {
    return DataLoss("corrupt checkpoint header in '" + filename + "'");
  }
  for (int64_t i = 0; i < count; ++i) {
    int64_t name_len = 0;
    if (!ReadInt64(data, &offset, &name_len) || name_len < 0 ||
        offset + static_cast<size_t>(name_len) > data.size()) {
      return DataLoss("corrupt entry name in '" + filename + "'");
    }
    std::string name(data.data() + offset, name_len);
    offset += name_len;
    if (visit(name, data, &offset)) {
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace

Result<Tensor> ReadCheckpointTensor(const std::string& filename,
                                    const std::string& tensor_name) {
  Tensor found;
  bool have = false;
  Status scan = ScanCheckpoint(
      filename, [&](const std::string& name, const std::string& data,
                    size_t* offset) {
        Result<Tensor> t = Tensor::ParseFromBytes(data, offset);
        if (!t.ok()) {
          return false;  // scan surfaces corruption via the parse below
        }
        if (name == tensor_name) {
          found = std::move(t).value();
          have = true;
          return true;
        }
        return false;
      });
  TF_RETURN_IF_ERROR(scan);
  if (!have) {
    return NotFound("tensor '" + tensor_name + "' not found in checkpoint '" +
                    filename + "'");
  }
  return found;
}

Result<std::vector<std::string>> ListCheckpointTensors(
    const std::string& filename) {
  std::vector<std::string> names;
  Status scan = ScanCheckpoint(
      filename, [&](const std::string& name, const std::string& data,
                    size_t* offset) {
        Result<Tensor> t = Tensor::ParseFromBytes(data, offset);
        if (!t.ok()) return true;  // stop on corruption
        names.push_back(name);
        return false;
      });
  TF_RETURN_IF_ERROR(scan);
  return names;
}

}  // namespace tfrepro
