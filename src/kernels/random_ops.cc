// Random-number kernels built on the Philox counter RNG. Each kernel
// instance owns an independent stream keyed by its seed attrs and node
// name, so data-parallel workers draw decorrelated batches (paper §4.4:
// "SGD samples training data randomly, so each worker processes a
// different random batch").

#include <mutex>

#include "core/random.h"
#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

uint64_t HashName(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

Result<TensorShape> ShapeFromTensor(const Tensor& t) {
  std::vector<int64_t> dims;
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    dims.push_back(t.flat<int32_t>(i));
  }
  TF_RETURN_IF_ERROR(ValidateShape(dims));
  return TensorShape(dims);
}

enum class RandomKind { kUniform, kNormal, kTruncatedNormal };

template <RandomKind K>
class RandomOp : public OpKernel {
 public:
  explicit RandomOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetTypeAttr("dtype", &dtype_));
    int64_t seed = 0;
    int64_t seed2 = 0;
    ctx->SetStatus(ctx->GetIntAttr("seed", &seed));
    ctx->SetStatus(ctx->GetIntAttr("seed2", &seed2));
    uint64_t key = seed != 0 || seed2 != 0
                       ? static_cast<uint64_t>(seed) * 0x9E3779B97F4A7C15ULL +
                             static_cast<uint64_t>(seed2)
                       : HashName(ctx->node_name());
    rng_ = std::make_unique<PhiloxRandom>(key, HashName(ctx->node_name()));
  }

  void Compute(OpKernelContext* ctx) override {
    Result<TensorShape> shape = ShapeFromTensor(ctx->input(0));
    OP_REQUIRES_OK(ctx, shape.status());
    Tensor out(dtype_, shape.value());
    std::lock_guard<std::mutex> lock(mu_);
    OP_REQUIRES_OK(ctx, FloatDispatch(dtype_, [&](auto tag) {
      using T = decltype(tag);
      T* o = out.data<T>();
      for (int64_t i = 0; i < out.num_elements(); ++i) {
        if constexpr (K == RandomKind::kUniform) {
          o[i] = static_cast<T>(rng_->Uniform());
        } else if constexpr (K == RandomKind::kNormal) {
          o[i] = static_cast<T>(rng_->Normal());
        } else {
          o[i] = static_cast<T>(rng_->TruncatedNormal());
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  DataType dtype_ = DataType::kFloat;
  std::mutex mu_;
  std::unique_ptr<PhiloxRandom> rng_;
};

REGISTER_KERNEL("RandomUniform", kDeviceCpu, RandomOp<RandomKind::kUniform>);
REGISTER_KERNEL("RandomStandardNormal", kDeviceCpu,
                RandomOp<RandomKind::kNormal>);
REGISTER_KERNEL("TruncatedNormal", kDeviceCpu,
                RandomOp<RandomKind::kTruncatedNormal>);

class RandomUniformIntOp : public OpKernel {
 public:
  explicit RandomUniformIntOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetTypeAttr("T", &dtype_));
    int64_t seed = 0;
    int64_t seed2 = 0;
    ctx->SetStatus(ctx->GetIntAttr("seed", &seed));
    ctx->SetStatus(ctx->GetIntAttr("seed2", &seed2));
    uint64_t key = seed != 0 || seed2 != 0
                       ? static_cast<uint64_t>(seed) * 0x9E3779B97F4A7C15ULL +
                             static_cast<uint64_t>(seed2)
                       : HashName(ctx->node_name());
    rng_ = std::make_unique<PhiloxRandom>(key, HashName(ctx->node_name()));
  }

  void Compute(OpKernelContext* ctx) override {
    Result<TensorShape> shape = ShapeFromTensor(ctx->input(0));
    OP_REQUIRES_OK(ctx, shape.status());
    Tensor minval = ctx->input(1);
    Tensor maxval = ctx->input(2);
    Tensor out(dtype_, shape.value());
    std::lock_guard<std::mutex> lock(mu_);
    OP_REQUIRES_OK(ctx, IndexDispatch(dtype_, [&](auto tag) {
      using T = decltype(tag);
      T lo = *minval.data<T>();
      T hi = *maxval.data<T>();
      T* o = out.data<T>();
      uint64_t range = static_cast<uint64_t>(hi - lo);
      for (int64_t i = 0; i < out.num_elements(); ++i) {
        o[i] = lo + static_cast<T>(rng_->UniformInt(range));
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  DataType dtype_ = DataType::kInt64;
  std::mutex mu_;
  std::unique_ptr<PhiloxRandom> rng_;
};
REGISTER_KERNEL("RandomUniformInt", kDeviceCpu, RandomUniformIntOp);

}  // namespace
}  // namespace tfrepro
