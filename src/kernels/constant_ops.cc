// Kernels for constants, identity, placeholders, and the _Feed/_Fetch nodes
// inserted by session graph rewriting (paper §3.2).

#include <mutex>

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

class ConstOp : public OpKernel {
 public:
  explicit ConstOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetTensorAttr("value", &value_));
    DataType dtype;
    Status s = ctx->GetTypeAttr("dtype", &dtype);
    if (s.ok() && value_.dtype() != dtype) {
      ctx->SetStatus(InvalidArgument("Const value dtype does not match attr"));
    }
  }
  void Compute(OpKernelContext* ctx) override { ctx->set_output(0, value_); }
  bool IsExpensive() const override { return false; }

 private:
  Tensor value_;
};
REGISTER_KERNEL("Const", kDeviceCpu, ConstOp);

class IdentityOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    ctx->set_output(0, ctx->input(0));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("Identity", kDeviceCpu, IdentityOp);
REGISTER_KERNEL("StopGradient", kDeviceCpu, IdentityOp);

class NoOpKernel : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {}
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("NoOp", kDeviceCpu, NoOpKernel);
REGISTER_KERNEL("ControlTrigger", kDeviceCpu, NoOpKernel);

// Placeholders must be replaced by feeds before execution.
class PlaceholderOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    ctx->SetStatus(InvalidArgument(
        "Placeholder '" + name() +
        "' was executed without being fed; pass a value for it in Run()"));
  }
};
REGISTER_KERNEL("Placeholder", kDeviceCpu, PlaceholderOp);

class FeedOp : public OpKernel {
 public:
  explicit FeedOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("index", &index_));
    ctx->SetStatus(ctx->GetTypeAttr("dtype", &dtype_));
  }
  void Compute(OpKernelContext* ctx) override {
    OP_REQUIRES(ctx, ctx->call_frame() != nullptr,
                Internal("_Feed executed without a call frame"));
    Result<Tensor> value = ctx->call_frame()->GetFeed(static_cast<int>(index_));
    OP_REQUIRES_OK(ctx, value.status());
    OP_REQUIRES(
        ctx, value.value().dtype() == dtype_,
        InvalidArgument("feed " + std::to_string(index_) + " has dtype " +
                        DataTypeName(value.value().dtype()) + ", expected " +
                        DataTypeName(dtype_)));
    ctx->set_output(0, std::move(value).value());
  }
  bool IsExpensive() const override { return false; }

 private:
  int64_t index_ = 0;
  DataType dtype_ = DataType::kInvalid;
};
REGISTER_KERNEL("_Feed", kDeviceCpu, FeedOp);

class FetchOp : public OpKernel {
 public:
  explicit FetchOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("index", &index_));
  }
  void Compute(OpKernelContext* ctx) override {
    OP_REQUIRES(ctx, ctx->call_frame() != nullptr,
                Internal("_Fetch executed without a call frame"));
    // Deep-copy: a fetch leaves the dataflow (in the distributed runtime it
    // would be serialized to the client), so it must be a snapshot that
    // later in-place variable updates cannot alias. When fetching a ref
    // output (a Variable), the snapshot is taken under the variable's mutex
    // so a concurrent Assign*'s in-place write can never tear it.
    Tensor snapshot;
    std::mutex* mu = nullptr;
    if (Tensor* ref = ctx->mutable_input_ref(0, &mu); ref != nullptr) {
      std::lock_guard<std::mutex> lock(*mu);
      snapshot = ref->Clone();
    } else {
      snapshot = ctx->input(0).Clone();
    }
    OP_REQUIRES_OK(ctx, ctx->call_frame()->SetFetch(static_cast<int>(index_),
                                                    std::move(snapshot)));
  }
  bool IsExpensive() const override { return false; }

 private:
  int64_t index_ = 0;
};
REGISTER_KERNEL("_Fetch", kDeviceCpu, FetchOp);

class ZerosLikeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    ctx->set_output(0, Tensor(BaseType(in.dtype()), in.shape()));
  }
};
REGISTER_KERNEL("ZerosLike", kDeviceCpu, ZerosLikeOp);

class OnesLikeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    Tensor out(BaseType(in.dtype()), in.shape());
    OP_REQUIRES_OK(ctx, NumericDispatch(in.dtype(), [&](auto tag) {
      using T = decltype(tag);
      T* p = out.data<T>();
      for (int64_t i = 0; i < out.num_elements(); ++i) p[i] = T{1};
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("OnesLike", kDeviceCpu, OnesLikeOp);

class FillOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor dims = ctx->input(0);
    Tensor value = ctx->input(1);
    OP_REQUIRES(ctx, dims.shape().rank() <= 1,
                InvalidArgument("Fill dims must be a vector"));
    OP_REQUIRES(ctx, value.IsScalar(),
                InvalidArgument("Fill value must be a scalar"));
    std::vector<int64_t> shape_dims;
    for (int64_t i = 0; i < dims.num_elements(); ++i) {
      shape_dims.push_back(dims.flat<int32_t>(i));
    }
    OP_REQUIRES_OK(ctx, ValidateShape(shape_dims));
    Tensor out(value.dtype(), TensorShape(shape_dims));
    OP_REQUIRES_OK(ctx, NumericDispatch(value.dtype(), [&](auto tag) {
      using T = decltype(tag);
      T v = *value.data<T>();
      T* p = out.data<T>();
      for (int64_t i = 0; i < out.num_elements(); ++i) p[i] = v;
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Fill", kDeviceCpu, FillOp);

class RangeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    int32_t start = *ctx->input(0).data<int32_t>();
    int32_t limit = *ctx->input(1).data<int32_t>();
    int32_t delta = *ctx->input(2).data<int32_t>();
    OP_REQUIRES(ctx, delta != 0, InvalidArgument("Range delta must not be 0"));
    int64_t n = 0;
    if (delta > 0 && limit > start) {
      n = (static_cast<int64_t>(limit) - start + delta - 1) / delta;
    } else if (delta < 0 && limit < start) {
      n = (static_cast<int64_t>(start) - limit - delta - 1) / (-delta);
    }
    Tensor out(DataType::kInt32, TensorShape({n}));
    int32_t v = start;
    for (int64_t i = 0; i < n; ++i, v += delta) out.flat<int32_t>(i) = v;
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Range", kDeviceCpu, RangeOp);

}  // namespace
}  // namespace tfrepro
