// Queue resources (paper §3.1): a FIFOQueue owns an internal queue of
// tensor tuples and supports concurrent access. Enqueue blocks when the
// queue is full and Dequeue blocks when it is empty — the blocking provides
// backpressure in input pipelines and the synchronization primitive used
// for synchronous replication (§4.4).
//
// Blocking is implemented with callbacks so asynchronous kernels never park
// a threadpool thread.

#ifndef TFREPRO_KERNELS_QUEUE_H_
#define TFREPRO_KERNELS_QUEUE_H_

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "core/random.h"
#include "core/status.h"
#include "core/tensor.h"
#include "runtime/kernel.h"
#include "runtime/resource_mgr.h"

namespace tfrepro {

class QueueResource : public ResourceBase {
 public:
  using Tuple = std::vector<Tensor>;
  using EnqueueCallback = std::function<void(const Status&)>;
  using DequeueCallback = std::function<void(const Status&, const Tuple&)>;

  QueueResource(DataTypeVector component_types, int64_t capacity,
                int64_t min_after_dequeue, uint64_t seed, bool shuffle);
  ~QueueResource() override;

  // Attempts to push one tuple; `done` fires when space was available (or
  // on close/cancellation). `cm` may be null.
  void TryEnqueue(Tuple tuple, CancellationManager* cm, EnqueueCallback done);

  // Attempts to pop `n` tuples, stacked along a new leading dimension when
  // n >= 1 is batched (DequeueMany); n == 1 with `batched` false returns the
  // raw tuple (Dequeue).
  void TryDequeue(int64_t n, bool batched, CancellationManager* cm,
                  DequeueCallback done);

  void Close(bool cancel_pending_enqueues);

  // Fails every currently blocked enqueue and dequeue waiter with `reason`
  // without closing the queue — the teardown hook for blocked dataset
  // producers: Coordinator stop and session close call this so a producer
  // parked on a full queue (or a consumer parked on an empty one) unblocks
  // promptly instead of waiting for an explicit Close op to run. Partially
  // collected dequeue rows go back to the buffer; buffered elements stay.
  void CancelAll(const Status& reason);

  int64_t Size() const;
  bool is_closed() const;

  const DataTypeVector& component_types() const { return component_types_; }

  // Staleness floor for step-tagged tuples (§4.4): tuples whose leading
  // int64 tag is below the floor are superseded. Maintained by
  // QueueDequeueFreshMany; lives on the queue so it survives across steps
  // (and across master incarnations, as long as the PS task does).
  int64_t stale_floor() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stale_floor_;
  }
  void set_stale_floor(int64_t floor) {
    std::lock_guard<std::mutex> lock(mu_);
    if (floor > stale_floor_) stale_floor_ = floor;
  }

  // Stacks `rows` (same-shape tuples) along a new leading dimension —
  // exposed for kernels that collect rows one at a time (DequeueFreshMany).
  static Tuple StackRows(const std::vector<Tuple>& rows);

  std::string DebugString() const override;

 private:
  struct EnqueueWaiter {
    int64_t id;
    Tuple tuple;
    EnqueueCallback done;
    CancellationManager* cm;
    CancellationManager::Token token;
    bool has_token;
    int64_t wait_start_micros = 0;
  };
  struct DequeueWaiter {
    int64_t id;
    int64_t n;
    bool batched;
    int64_t wait_start_micros = 0;
    Tuple accum;  // partially-stacked components (rows collected so far)
    std::vector<Tuple> rows;
    DequeueCallback done;
    CancellationManager* cm;
    CancellationManager::Token token;
    bool has_token;
  };

  // Moves tuples between buffer and waiters; returns actions to run outside
  // the lock. Must hold mu_.
  void SatisfyLocked(std::vector<std::function<void()>>* actions);
  Tuple PopOneLocked();

  void CancelEnqueue(int64_t id);
  void CancelDequeue(int64_t id);

  const DataTypeVector component_types_;
  const int64_t capacity_;  // -1 == unbounded
  const int64_t min_after_dequeue_;
  const bool shuffle_;

  mutable std::mutex mu_;
  PhiloxRandom rng_;
  std::deque<Tuple> buffer_;
  std::deque<EnqueueWaiter> enqueue_waiters_;
  std::deque<DequeueWaiter> dequeue_waiters_;
  bool closed_ = false;
  bool cancel_pending_ = false;
  int64_t next_waiter_id_ = 0;
  int64_t stale_floor_ = 0;
};

// Looks up the queue named by a handle tensor (as produced by queue ops) in
// the device's resource manager.
Result<std::shared_ptr<QueueResource>> LookupQueue(OpKernelContext* ctx,
                                                   int handle_input);

}  // namespace tfrepro

#endif  // TFREPRO_KERNELS_QUEUE_H_
