// NumPy-style broadcasting helpers for element-wise binary kernels.

#ifndef TFREPRO_KERNELS_BROADCAST_H_
#define TFREPRO_KERNELS_BROADCAST_H_

#include <vector>

#include "core/status.h"
#include "core/tensor_shape.h"

namespace tfrepro {

// Computes the broadcasted output shape of `a` op `b`; error if the shapes
// are incompatible.
Result<TensorShape> BroadcastShape(const TensorShape& a, const TensorShape& b);

// Element strides of `in` aligned to (right-justified against) `out`;
// broadcast dimensions get stride 0.
std::vector<int64_t> BroadcastStrides(const TensorShape& in,
                                      const TensorShape& out);

// Applies fn(a[i], b[j]) over the broadcasted iteration space.
template <typename Ta, typename Tout, typename Fn>
void BroadcastBinary(const Ta* a, const TensorShape& a_shape, const Ta* b,
                     const TensorShape& b_shape, Tout* out,
                     const TensorShape& out_shape, Fn fn) {
  int64_t n = out_shape.num_elements();
  if (a_shape == b_shape) {
    for (int64_t i = 0; i < n; ++i) out[i] = fn(a[i], b[i]);
    return;
  }
  if (a_shape.num_elements() == 1) {
    Ta av = a[0];
    for (int64_t i = 0; i < n; ++i) out[i] = fn(av, b[i]);
    return;
  }
  if (b_shape.num_elements() == 1) {
    Ta bv = b[0];
    for (int64_t i = 0; i < n; ++i) out[i] = fn(a[i], bv);
    return;
  }
  std::vector<int64_t> sa = BroadcastStrides(a_shape, out_shape);
  std::vector<int64_t> sb = BroadcastStrides(b_shape, out_shape);
  int rank = out_shape.rank();
  std::vector<int64_t> index(rank, 0);
  int64_t ia = 0;
  int64_t ib = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = fn(a[ia], b[ib]);
    for (int d = rank - 1; d >= 0; --d) {
      ++index[d];
      ia += sa[d];
      ib += sb[d];
      if (index[d] < out_shape.dim(d)) break;
      index[d] = 0;
      ia -= sa[d] * out_shape.dim(d);
      ib -= sb[d] * out_shape.dim(d);
    }
  }
}

}  // namespace tfrepro

#endif  // TFREPRO_KERNELS_BROADCAST_H_
