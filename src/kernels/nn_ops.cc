// Neural-network kernels: 2-D convolution and pooling with their gradients
// (NHWC layout, HWIO filters, SAME/VALID padding), softmax family, and the
// fused softmax-cross-entropy kernels.

#include <cmath>
#include <limits>

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

struct Conv2DParams {
  int64_t batch, in_h, in_w, in_c;
  int64_t k_h, k_w, out_c;
  int64_t stride_h, stride_w;
  int64_t out_h, out_w;
  int64_t pad_top, pad_left;
};

Status ComputeConv2DParams(const TensorShape& input, const TensorShape& filter,
                           const std::vector<int64_t>& strides,
                           const std::string& padding, Conv2DParams* p) {
  if (input.rank() != 4) {
    return InvalidArgument("Conv2D input must be NHWC rank-4");
  }
  if (filter.rank() != 4) {
    return InvalidArgument("Conv2D filter must be HWIO rank-4");
  }
  if (strides.size() != 4 || strides[0] != 1 || strides[3] != 1) {
    return InvalidArgument("Conv2D strides must be [1, sh, sw, 1]");
  }
  p->batch = input.dim(0);
  p->in_h = input.dim(1);
  p->in_w = input.dim(2);
  p->in_c = input.dim(3);
  p->k_h = filter.dim(0);
  p->k_w = filter.dim(1);
  if (filter.dim(2) != p->in_c) {
    return InvalidArgument("Conv2D filter in-channels mismatch");
  }
  p->out_c = filter.dim(3);
  p->stride_h = strides[1];
  p->stride_w = strides[2];
  if (padding == "SAME") {
    p->out_h = (p->in_h + p->stride_h - 1) / p->stride_h;
    p->out_w = (p->in_w + p->stride_w - 1) / p->stride_w;
    int64_t pad_h =
        std::max<int64_t>(0, (p->out_h - 1) * p->stride_h + p->k_h - p->in_h);
    int64_t pad_w =
        std::max<int64_t>(0, (p->out_w - 1) * p->stride_w + p->k_w - p->in_w);
    p->pad_top = pad_h / 2;
    p->pad_left = pad_w / 2;
  } else if (padding == "VALID") {
    p->out_h = (p->in_h - p->k_h) / p->stride_h + 1;
    p->out_w = (p->in_w - p->k_w) / p->stride_w + 1;
    p->pad_top = 0;
    p->pad_left = 0;
  } else {
    return InvalidArgument("Conv2D padding must be SAME or VALID");
  }
  if (p->out_h <= 0 || p->out_w <= 0) {
    return InvalidArgument("Conv2D output would be empty");
  }
  return Status::OK();
}

class Conv2DOp : public OpKernel {
 public:
  explicit Conv2DOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntListAttr("strides", &strides_));
    ctx->SetStatus(ctx->GetStringAttr("padding", &padding_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    Tensor filter = ctx->input(1);
    Conv2DParams p;
    OP_REQUIRES_OK(ctx, ComputeConv2DParams(input.shape(), filter.shape(),
                                            strides_, padding_, &p));
    Tensor out(BaseType(input.dtype()),
               TensorShape({p.batch, p.out_h, p.out_w, p.out_c}));
    OP_REQUIRES_OK(ctx, FloatDispatch(input.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = input.data<T>();
      const T* f = filter.data<T>();
      T* o = out.data<T>();
      for (int64_t b = 0; b < p.batch; ++b) {
        for (int64_t oh = 0; oh < p.out_h; ++oh) {
          for (int64_t ow = 0; ow < p.out_w; ++ow) {
            T* opix = o + ((b * p.out_h + oh) * p.out_w + ow) * p.out_c;
            for (int64_t kh = 0; kh < p.k_h; ++kh) {
              int64_t ih = oh * p.stride_h + kh - p.pad_top;
              if (ih < 0 || ih >= p.in_h) continue;
              for (int64_t kw = 0; kw < p.k_w; ++kw) {
                int64_t iw = ow * p.stride_w + kw - p.pad_left;
                if (iw < 0 || iw >= p.in_w) continue;
                const T* ipix =
                    in + ((b * p.in_h + ih) * p.in_w + iw) * p.in_c;
                const T* fpix = f + (kh * p.k_w + kw) * p.in_c * p.out_c;
                for (int64_t ic = 0; ic < p.in_c; ++ic) {
                  T iv = ipix[ic];
                  if (iv == T{0}) continue;
                  const T* frow = fpix + ic * p.out_c;
                  for (int64_t oc = 0; oc < p.out_c; ++oc) {
                    opix[oc] += iv * frow[oc];
                  }
                }
              }
            }
          }
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  std::vector<int64_t> strides_;
  std::string padding_;
};
REGISTER_KERNEL("Conv2D", kDeviceCpu, Conv2DOp);

class Conv2DBackpropInputOp : public OpKernel {
 public:
  explicit Conv2DBackpropInputOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntListAttr("strides", &strides_));
    ctx->SetStatus(ctx->GetStringAttr("padding", &padding_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor input_sizes = ctx->input(0);
    Tensor filter = ctx->input(1);
    Tensor grad = ctx->input(2);
    OP_REQUIRES(ctx, input_sizes.num_elements() == 4,
                InvalidArgument("input_sizes must have 4 elements"));
    TensorShape in_shape({input_sizes.flat<int32_t>(0),
                          input_sizes.flat<int32_t>(1),
                          input_sizes.flat<int32_t>(2),
                          input_sizes.flat<int32_t>(3)});
    Conv2DParams p;
    OP_REQUIRES_OK(ctx, ComputeConv2DParams(in_shape, filter.shape(), strides_,
                                            padding_, &p));
    Tensor out(BaseType(grad.dtype()), in_shape);
    OP_REQUIRES_OK(ctx, FloatDispatch(grad.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* g = grad.data<T>();
      const T* f = filter.data<T>();
      T* o = out.data<T>();
      for (int64_t b = 0; b < p.batch; ++b) {
        for (int64_t oh = 0; oh < p.out_h; ++oh) {
          for (int64_t ow = 0; ow < p.out_w; ++ow) {
            const T* gpix = g + ((b * p.out_h + oh) * p.out_w + ow) * p.out_c;
            for (int64_t kh = 0; kh < p.k_h; ++kh) {
              int64_t ih = oh * p.stride_h + kh - p.pad_top;
              if (ih < 0 || ih >= p.in_h) continue;
              for (int64_t kw = 0; kw < p.k_w; ++kw) {
                int64_t iw = ow * p.stride_w + kw - p.pad_left;
                if (iw < 0 || iw >= p.in_w) continue;
                T* opix = o + ((b * p.in_h + ih) * p.in_w + iw) * p.in_c;
                const T* fpix = f + (kh * p.k_w + kw) * p.in_c * p.out_c;
                for (int64_t ic = 0; ic < p.in_c; ++ic) {
                  const T* frow = fpix + ic * p.out_c;
                  T acc{0};
                  for (int64_t oc = 0; oc < p.out_c; ++oc) {
                    acc += gpix[oc] * frow[oc];
                  }
                  opix[ic] += acc;
                }
              }
            }
          }
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  std::vector<int64_t> strides_;
  std::string padding_;
};
REGISTER_KERNEL("Conv2DBackpropInput", kDeviceCpu, Conv2DBackpropInputOp);

class Conv2DBackpropFilterOp : public OpKernel {
 public:
  explicit Conv2DBackpropFilterOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntListAttr("strides", &strides_));
    ctx->SetStatus(ctx->GetStringAttr("padding", &padding_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    Tensor filter_sizes = ctx->input(1);
    Tensor grad = ctx->input(2);
    OP_REQUIRES(ctx, filter_sizes.num_elements() == 4,
                InvalidArgument("filter_sizes must have 4 elements"));
    TensorShape f_shape({filter_sizes.flat<int32_t>(0),
                         filter_sizes.flat<int32_t>(1),
                         filter_sizes.flat<int32_t>(2),
                         filter_sizes.flat<int32_t>(3)});
    Conv2DParams p;
    OP_REQUIRES_OK(ctx, ComputeConv2DParams(input.shape(), f_shape, strides_,
                                            padding_, &p));
    Tensor out(BaseType(grad.dtype()), f_shape);
    OP_REQUIRES_OK(ctx, FloatDispatch(grad.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = input.data<T>();
      const T* g = grad.data<T>();
      T* o = out.data<T>();
      for (int64_t b = 0; b < p.batch; ++b) {
        for (int64_t oh = 0; oh < p.out_h; ++oh) {
          for (int64_t ow = 0; ow < p.out_w; ++ow) {
            const T* gpix = g + ((b * p.out_h + oh) * p.out_w + ow) * p.out_c;
            for (int64_t kh = 0; kh < p.k_h; ++kh) {
              int64_t ih = oh * p.stride_h + kh - p.pad_top;
              if (ih < 0 || ih >= p.in_h) continue;
              for (int64_t kw = 0; kw < p.k_w; ++kw) {
                int64_t iw = ow * p.stride_w + kw - p.pad_left;
                if (iw < 0 || iw >= p.in_w) continue;
                const T* ipix =
                    in + ((b * p.in_h + ih) * p.in_w + iw) * p.in_c;
                T* fpix = o + (kh * p.k_w + kw) * p.in_c * p.out_c;
                for (int64_t ic = 0; ic < p.in_c; ++ic) {
                  T iv = ipix[ic];
                  if (iv == T{0}) continue;
                  T* frow = fpix + ic * p.out_c;
                  for (int64_t oc = 0; oc < p.out_c; ++oc) {
                    frow[oc] += iv * gpix[oc];
                  }
                }
              }
            }
          }
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  std::vector<int64_t> strides_;
  std::string padding_;
};
REGISTER_KERNEL("Conv2DBackpropFilter", kDeviceCpu, Conv2DBackpropFilterOp);

struct PoolParams {
  Conv2DParams conv;  // reuse geometry (k = ksize)
};

Status ComputePoolParams(const TensorShape& input,
                         const std::vector<int64_t>& ksize,
                         const std::vector<int64_t>& strides,
                         const std::string& padding, Conv2DParams* p) {
  if (ksize.size() != 4 || ksize[0] != 1 || ksize[3] != 1) {
    return InvalidArgument("pool ksize must be [1, kh, kw, 1]");
  }
  // Fabricate a filter shape with matching channels so the conv geometry
  // helper applies.
  if (input.rank() != 4) {
    return InvalidArgument("pool input must be NHWC rank-4");
  }
  TensorShape filter({ksize[1], ksize[2], input.dim(3), input.dim(3)});
  return ComputeConv2DParams(input, filter, strides, padding, p);
}

class MaxPoolOp : public OpKernel {
 public:
  explicit MaxPoolOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntListAttr("ksize", &ksize_));
    ctx->SetStatus(ctx->GetIntListAttr("strides", &strides_));
    ctx->SetStatus(ctx->GetStringAttr("padding", &padding_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    Conv2DParams p;
    OP_REQUIRES_OK(
        ctx, ComputePoolParams(input.shape(), ksize_, strides_, padding_, &p));
    Tensor out(BaseType(input.dtype()),
               TensorShape({p.batch, p.out_h, p.out_w, p.in_c}));
    OP_REQUIRES_OK(ctx, FloatDispatch(input.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = input.data<T>();
      T* o = out.data<T>();
      for (int64_t b = 0; b < p.batch; ++b) {
        for (int64_t oh = 0; oh < p.out_h; ++oh) {
          for (int64_t ow = 0; ow < p.out_w; ++ow) {
            for (int64_t c = 0; c < p.in_c; ++c) {
              T best = std::numeric_limits<T>::lowest();
              for (int64_t kh = 0; kh < p.k_h; ++kh) {
                int64_t ih = oh * p.stride_h + kh - p.pad_top;
                if (ih < 0 || ih >= p.in_h) continue;
                for (int64_t kw = 0; kw < p.k_w; ++kw) {
                  int64_t iw = ow * p.stride_w + kw - p.pad_left;
                  if (iw < 0 || iw >= p.in_w) continue;
                  T v = in[((b * p.in_h + ih) * p.in_w + iw) * p.in_c + c];
                  if (v > best) best = v;
                }
              }
              o[((b * p.out_h + oh) * p.out_w + ow) * p.in_c + c] = best;
            }
          }
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  std::vector<int64_t> ksize_;
  std::vector<int64_t> strides_;
  std::string padding_;
};
REGISTER_KERNEL("MaxPool", kDeviceCpu, MaxPoolOp);

class MaxPoolGradOp : public OpKernel {
 public:
  explicit MaxPoolGradOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntListAttr("ksize", &ksize_));
    ctx->SetStatus(ctx->GetIntListAttr("strides", &strides_));
    ctx->SetStatus(ctx->GetStringAttr("padding", &padding_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    Tensor output = ctx->input(1);
    Tensor grad = ctx->input(2);
    Conv2DParams p;
    OP_REQUIRES_OK(
        ctx, ComputePoolParams(input.shape(), ksize_, strides_, padding_, &p));
    Tensor out(BaseType(input.dtype()), input.shape());
    OP_REQUIRES_OK(ctx, FloatDispatch(input.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = input.data<T>();
      const T* op = output.data<T>();
      const T* g = grad.data<T>();
      T* o = out.data<T>();
      for (int64_t b = 0; b < p.batch; ++b) {
        for (int64_t oh = 0; oh < p.out_h; ++oh) {
          for (int64_t ow = 0; ow < p.out_w; ++ow) {
            for (int64_t c = 0; c < p.in_c; ++c) {
              int64_t oidx = ((b * p.out_h + oh) * p.out_w + ow) * p.in_c + c;
              T best = op[oidx];
              // Route the gradient to the first element matching the max.
              bool routed = false;
              for (int64_t kh = 0; kh < p.k_h && !routed; ++kh) {
                int64_t ih = oh * p.stride_h + kh - p.pad_top;
                if (ih < 0 || ih >= p.in_h) continue;
                for (int64_t kw = 0; kw < p.k_w && !routed; ++kw) {
                  int64_t iw = ow * p.stride_w + kw - p.pad_left;
                  if (iw < 0 || iw >= p.in_w) continue;
                  int64_t iidx =
                      ((b * p.in_h + ih) * p.in_w + iw) * p.in_c + c;
                  if (in[iidx] == best) {
                    o[iidx] += g[oidx];
                    routed = true;
                  }
                }
              }
            }
          }
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  std::vector<int64_t> ksize_;
  std::vector<int64_t> strides_;
  std::string padding_;
};
REGISTER_KERNEL("MaxPoolGrad", kDeviceCpu, MaxPoolGradOp);

class AvgPoolOp : public OpKernel {
 public:
  explicit AvgPoolOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntListAttr("ksize", &ksize_));
    ctx->SetStatus(ctx->GetIntListAttr("strides", &strides_));
    ctx->SetStatus(ctx->GetStringAttr("padding", &padding_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor input = ctx->input(0);
    Conv2DParams p;
    OP_REQUIRES_OK(
        ctx, ComputePoolParams(input.shape(), ksize_, strides_, padding_, &p));
    Tensor out(BaseType(input.dtype()),
               TensorShape({p.batch, p.out_h, p.out_w, p.in_c}));
    OP_REQUIRES_OK(ctx, FloatDispatch(input.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = input.data<T>();
      T* o = out.data<T>();
      for (int64_t b = 0; b < p.batch; ++b) {
        for (int64_t oh = 0; oh < p.out_h; ++oh) {
          for (int64_t ow = 0; ow < p.out_w; ++ow) {
            for (int64_t c = 0; c < p.in_c; ++c) {
              double acc = 0;
              int64_t count = 0;
              for (int64_t kh = 0; kh < p.k_h; ++kh) {
                int64_t ih = oh * p.stride_h + kh - p.pad_top;
                if (ih < 0 || ih >= p.in_h) continue;
                for (int64_t kw = 0; kw < p.k_w; ++kw) {
                  int64_t iw = ow * p.stride_w + kw - p.pad_left;
                  if (iw < 0 || iw >= p.in_w) continue;
                  acc += in[((b * p.in_h + ih) * p.in_w + iw) * p.in_c + c];
                  ++count;
                }
              }
              o[((b * p.out_h + oh) * p.out_w + ow) * p.in_c + c] =
                  static_cast<T>(count > 0 ? acc / count : 0);
            }
          }
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  std::vector<int64_t> ksize_;
  std::vector<int64_t> strides_;
  std::string padding_;
};
REGISTER_KERNEL("AvgPool", kDeviceCpu, AvgPoolOp);

class AvgPoolGradOp : public OpKernel {
 public:
  explicit AvgPoolGradOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntListAttr("ksize", &ksize_));
    ctx->SetStatus(ctx->GetIntListAttr("strides", &strides_));
    ctx->SetStatus(ctx->GetStringAttr("padding", &padding_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor shape_t = ctx->input(0);
    Tensor grad = ctx->input(1);
    TensorShape in_shape({shape_t.flat<int32_t>(0), shape_t.flat<int32_t>(1),
                          shape_t.flat<int32_t>(2), shape_t.flat<int32_t>(3)});
    Conv2DParams p;
    OP_REQUIRES_OK(ctx,
                   ComputePoolParams(in_shape, ksize_, strides_, padding_, &p));
    Tensor out(BaseType(grad.dtype()), in_shape);
    OP_REQUIRES_OK(ctx, FloatDispatch(grad.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* g = grad.data<T>();
      T* o = out.data<T>();
      for (int64_t b = 0; b < p.batch; ++b) {
        for (int64_t oh = 0; oh < p.out_h; ++oh) {
          for (int64_t ow = 0; ow < p.out_w; ++ow) {
            // Count contributing elements (same loop as forward).
            int64_t count = 0;
            for (int64_t kh = 0; kh < p.k_h; ++kh) {
              int64_t ih = oh * p.stride_h + kh - p.pad_top;
              if (ih < 0 || ih >= p.in_h) continue;
              for (int64_t kw = 0; kw < p.k_w; ++kw) {
                int64_t iw = ow * p.stride_w + kw - p.pad_left;
                if (iw >= 0 && iw < p.in_w) ++count;
              }
            }
            if (count == 0) continue;
            for (int64_t c = 0; c < p.in_c; ++c) {
              T share =
                  g[((b * p.out_h + oh) * p.out_w + ow) * p.in_c + c] /
                  static_cast<T>(count);
              for (int64_t kh = 0; kh < p.k_h; ++kh) {
                int64_t ih = oh * p.stride_h + kh - p.pad_top;
                if (ih < 0 || ih >= p.in_h) continue;
                for (int64_t kw = 0; kw < p.k_w; ++kw) {
                  int64_t iw = ow * p.stride_w + kw - p.pad_left;
                  if (iw < 0 || iw >= p.in_w) continue;
                  o[((b * p.in_h + ih) * p.in_w + iw) * p.in_c + c] += share;
                }
              }
            }
          }
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  std::vector<int64_t> ksize_;
  std::vector<int64_t> strides_;
  std::string padding_;
};
REGISTER_KERNEL("AvgPoolGrad", kDeviceCpu, AvgPoolGradOp);

// Numerically-stable row softmax on [batch, classes].
template <typename T>
void SoftmaxRow(const T* in, T* out, int64_t n, bool log_form) {
  T mx = in[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, in[i]);
  double sum = 0;
  for (int64_t i = 0; i < n; ++i) {
    sum += std::exp(static_cast<double>(in[i] - mx));
  }
  double log_sum = std::log(sum);
  for (int64_t i = 0; i < n; ++i) {
    double centered = static_cast<double>(in[i] - mx);
    out[i] = log_form ? static_cast<T>(centered - log_sum)
                      : static_cast<T>(std::exp(centered - log_sum));
  }
}

template <bool LogForm>
class SoftmaxOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor logits = ctx->input(0);
    OP_REQUIRES(ctx, logits.shape().rank() == 2,
                InvalidArgument("Softmax logits must be rank-2"));
    Tensor out(BaseType(logits.dtype()), logits.shape());
    int64_t batch = logits.dim(0);
    int64_t classes = logits.dim(1);
    OP_REQUIRES_OK(ctx, FloatDispatch(logits.dtype(), [&](auto tag) {
      using T = decltype(tag);
      for (int64_t b = 0; b < batch; ++b) {
        SoftmaxRow<T>(logits.data<T>() + b * classes,
                      out.data<T>() + b * classes, classes, LogForm);
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Softmax", kDeviceCpu, SoftmaxOp<false>);
REGISTER_KERNEL("LogSoftmax", kDeviceCpu, SoftmaxOp<true>);

// Fused loss+gradient: loss_b = -sum_c labels[b,c] * logsoftmax[b,c];
// backprop = softmax - labels.
class SoftmaxCrossEntropyOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor logits = ctx->input(0);
    Tensor labels = ctx->input(1);
    OP_REQUIRES(ctx,
                logits.shape().rank() == 2 && labels.shape() == logits.shape(),
                InvalidArgument("SoftmaxCrossEntropy shapes must match"));
    int64_t batch = logits.dim(0);
    int64_t classes = logits.dim(1);
    Tensor loss(BaseType(logits.dtype()), TensorShape({batch}));
    Tensor backprop(BaseType(logits.dtype()), logits.shape());
    OP_REQUIRES_OK(ctx, FloatDispatch(logits.dtype(), [&](auto tag) {
      using T = decltype(tag);
      std::vector<T> logsm(classes);
      for (int64_t b = 0; b < batch; ++b) {
        const T* row = logits.data<T>() + b * classes;
        const T* lab = labels.data<T>() + b * classes;
        T* bp = backprop.data<T>() + b * classes;
        SoftmaxRow<T>(row, logsm.data(), classes, /*log_form=*/true);
        double l = 0;
        for (int64_t c = 0; c < classes; ++c) {
          l -= static_cast<double>(lab[c]) * logsm[c];
          bp[c] = static_cast<T>(std::exp(static_cast<double>(logsm[c]))) -
                  lab[c];
        }
        loss.flat<T>(b) = static_cast<T>(l);
      }
    }));
    ctx->set_output(0, std::move(loss));
    ctx->set_output(1, std::move(backprop));
  }
};
REGISTER_KERNEL("SoftmaxCrossEntropyWithLogits", kDeviceCpu,
                SoftmaxCrossEntropyOp);

class SparseSoftmaxCrossEntropyOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor logits = ctx->input(0);
    Tensor labels = ctx->input(1);
    OP_REQUIRES(ctx, logits.shape().rank() == 2,
                InvalidArgument("logits must be rank-2"));
    int64_t batch = logits.dim(0);
    int64_t classes = logits.dim(1);
    OP_REQUIRES(ctx, labels.num_elements() == batch,
                InvalidArgument("labels must have one entry per row"));
    Tensor loss(BaseType(logits.dtype()), TensorShape({batch}));
    Tensor backprop(BaseType(logits.dtype()), logits.shape());
    Status index_status;
    Status dispatch_status;
    OP_REQUIRES_OK(ctx, FloatDispatch(logits.dtype(), [&](auto tag) {
      using T = decltype(tag);
      std::vector<T> logsm(classes);
      dispatch_status = IndexDispatch(labels.dtype(), [&](auto itag) {
        using I = decltype(itag);
        const I* lab = labels.data<I>();
        for (int64_t b = 0; b < batch; ++b) {
          if (lab[b] < 0 || lab[b] >= classes) {
            index_status = OutOfRange("label out of range");
            return;
          }
          const T* row = logits.data<T>() + b * classes;
          T* bp = backprop.data<T>() + b * classes;
          SoftmaxRow<T>(row, logsm.data(), classes, /*log_form=*/true);
          loss.flat<T>(b) = -logsm[lab[b]];
          for (int64_t c = 0; c < classes; ++c) {
            bp[c] =
                static_cast<T>(std::exp(static_cast<double>(logsm[c]))) -
                (c == static_cast<int64_t>(lab[b]) ? T{1} : T{0});
          }
        }
      });
    }));
    if (index_status.ok()) index_status = dispatch_status;
    OP_REQUIRES_OK(ctx, index_status);
    ctx->set_output(0, std::move(loss));
    ctx->set_output(1, std::move(backprop));
  }
};
REGISTER_KERNEL("SparseSoftmaxCrossEntropyWithLogits", kDeviceCpu,
                SparseSoftmaxCrossEntropyOp);

}  // namespace
}  // namespace tfrepro
