// Fused optimizer-update kernels (paper §4.1/§5). Each optimizer is also
// expressible as a composition of primitive ops — src/train builds both —
// but these fused kernels show the "users can register additional kernels
// for performance-critical subcomputations" path.

#include <cmath>
#include <mutex>

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

// Locks a ref input and checks it is an initialized variable.
#define GET_VAR(ctx, index, var, mu)                                     \
  std::mutex* mu = nullptr;                                              \
  Tensor* var = (ctx)->mutable_input_ref(index, &mu);                    \
  OP_REQUIRES(ctx, var != nullptr,                                       \
              InvalidArgument("input " #index " is not a ref"));         \
  OP_REQUIRES(ctx, var->IsInitialized(),                                 \
              FailedPrecondition("variable used before initialization"))

class ApplyGradientDescentOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    GET_VAR(ctx, 0, var, mu);
    Tensor alpha = ctx->input(1);
    Tensor delta = ctx->input(2);
    std::lock_guard<std::mutex> lock(*mu);
    OP_REQUIRES(ctx, var->shape() == delta.shape(),
                InvalidArgument("ApplyGradientDescent shape mismatch"));
    OP_REQUIRES_OK(ctx, FloatDispatch(var->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T a = *alpha.data<T>();
      T* v = var->data<T>();
      const T* d = delta.data<T>();
      for (int64_t i = 0; i < var->num_elements(); ++i) v[i] -= a * d[i];
    }));
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("ApplyGradientDescent", kDeviceCpu, ApplyGradientDescentOp);

// accum = momentum * accum + grad; var -= lr * accum.
class ApplyMomentumOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    GET_VAR(ctx, 0, var, mu_var);
    GET_VAR(ctx, 1, accum, mu_accum);
    Tensor lr = ctx->input(2);
    Tensor grad = ctx->input(3);
    Tensor momentum = ctx->input(4);
    std::lock_guard<std::mutex> lock(*mu_var);
    OP_REQUIRES_OK(ctx, FloatDispatch(var->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T l = *lr.data<T>();
      T m = *momentum.data<T>();
      T* v = var->data<T>();
      T* a = accum->data<T>();
      const T* g = grad.data<T>();
      for (int64_t i = 0; i < var->num_elements(); ++i) {
        a[i] = m * a[i] + g[i];
        v[i] -= l * a[i];
      }
    }));
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("ApplyMomentum", kDeviceCpu, ApplyMomentumOp);

// accum += grad^2; var -= lr * grad / sqrt(accum).
class ApplyAdagradOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    GET_VAR(ctx, 0, var, mu_var);
    GET_VAR(ctx, 1, accum, mu_accum);
    Tensor lr = ctx->input(2);
    Tensor grad = ctx->input(3);
    std::lock_guard<std::mutex> lock(*mu_var);
    OP_REQUIRES_OK(ctx, FloatDispatch(var->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T l = *lr.data<T>();
      T* v = var->data<T>();
      T* a = accum->data<T>();
      const T* g = grad.data<T>();
      for (int64_t i = 0; i < var->num_elements(); ++i) {
        a[i] += g[i] * g[i];
        v[i] -= l * g[i] / static_cast<T>(std::sqrt(static_cast<double>(a[i])));
      }
    }));
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("ApplyAdagrad", kDeviceCpu, ApplyAdagradOp);

// Adadelta (Zeiler 2012).
class ApplyAdadeltaOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    GET_VAR(ctx, 0, var, mu_var);
    GET_VAR(ctx, 1, accum, mu_accum);
    GET_VAR(ctx, 2, accum_update, mu_update);
    Tensor lr = ctx->input(3);
    Tensor rho = ctx->input(4);
    Tensor epsilon = ctx->input(5);
    Tensor grad = ctx->input(6);
    std::lock_guard<std::mutex> lock(*mu_var);
    OP_REQUIRES_OK(ctx, FloatDispatch(var->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T l = *lr.data<T>();
      T r = *rho.data<T>();
      T eps = *epsilon.data<T>();
      T* v = var->data<T>();
      T* a = accum->data<T>();
      T* u = accum_update->data<T>();
      const T* g = grad.data<T>();
      for (int64_t i = 0; i < var->num_elements(); ++i) {
        a[i] = r * a[i] + (T{1} - r) * g[i] * g[i];
        T update = static_cast<T>(std::sqrt(static_cast<double>(u[i] + eps)) /
                                  std::sqrt(static_cast<double>(a[i] + eps))) *
                   g[i];
        u[i] = r * u[i] + (T{1} - r) * update * update;
        v[i] -= l * update;
      }
    }));
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("ApplyAdadelta", kDeviceCpu, ApplyAdadeltaOp);

// RMSProp.
class ApplyRMSPropOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    GET_VAR(ctx, 0, var, mu_var);
    GET_VAR(ctx, 1, ms, mu_ms);
    GET_VAR(ctx, 2, mom, mu_mom);
    Tensor lr = ctx->input(3);
    Tensor rho = ctx->input(4);
    Tensor momentum = ctx->input(5);
    Tensor epsilon = ctx->input(6);
    Tensor grad = ctx->input(7);
    std::lock_guard<std::mutex> lock(*mu_var);
    OP_REQUIRES_OK(ctx, FloatDispatch(var->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T l = *lr.data<T>();
      T r = *rho.data<T>();
      T m = *momentum.data<T>();
      T eps = *epsilon.data<T>();
      T* v = var->data<T>();
      T* msp = ms->data<T>();
      T* momp = mom->data<T>();
      const T* g = grad.data<T>();
      for (int64_t i = 0; i < var->num_elements(); ++i) {
        msp[i] = r * msp[i] + (T{1} - r) * g[i] * g[i];
        momp[i] = m * momp[i] +
                  l * g[i] /
                      static_cast<T>(
                          std::sqrt(static_cast<double>(msp[i] + eps)));
        v[i] -= momp[i];
      }
    }));
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("ApplyRMSProp", kDeviceCpu, ApplyRMSPropOp);

// Adam (Kingma & Ba 2015).
class ApplyAdamOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    GET_VAR(ctx, 0, var, mu_var);
    GET_VAR(ctx, 1, m, mu_m);
    GET_VAR(ctx, 2, v_acc, mu_v);
    Tensor beta1_power = ctx->input(3);
    Tensor beta2_power = ctx->input(4);
    Tensor lr = ctx->input(5);
    Tensor beta1 = ctx->input(6);
    Tensor beta2 = ctx->input(7);
    Tensor epsilon = ctx->input(8);
    Tensor grad = ctx->input(9);
    std::lock_guard<std::mutex> lock(*mu_var);
    OP_REQUIRES_OK(ctx, FloatDispatch(var->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T b1p = *beta1_power.data<T>();
      T b2p = *beta2_power.data<T>();
      T l = *lr.data<T>();
      T b1 = *beta1.data<T>();
      T b2 = *beta2.data<T>();
      T eps = *epsilon.data<T>();
      T alpha = l *
                static_cast<T>(std::sqrt(1.0 - static_cast<double>(b2p))) /
                (T{1} - b1p);
      T* v = var->data<T>();
      T* mp = m->data<T>();
      T* vp = v_acc->data<T>();
      const T* g = grad.data<T>();
      for (int64_t i = 0; i < var->num_elements(); ++i) {
        mp[i] += (T{1} - b1) * (g[i] - mp[i]);
        vp[i] += (T{1} - b2) * (g[i] * g[i] - vp[i]);
        v[i] -= alpha * mp[i] /
                (static_cast<T>(std::sqrt(static_cast<double>(vp[i]))) + eps);
      }
    }));
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("ApplyAdam", kDeviceCpu, ApplyAdamOp);

// Sparse SGD: var[indices[i], :] -= alpha * grad[i, :] (paper §4.2: updates
// touch only the gathered rows).
class SparseApplyGradientDescentOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    GET_VAR(ctx, 0, var, mu);
    Tensor alpha = ctx->input(1);
    Tensor grad = ctx->input(2);
    Tensor indices = ctx->input(3);
    std::lock_guard<std::mutex> lock(*mu);
    int64_t rows = var->dim(0);
    int64_t row_elems = rows == 0 ? 0 : var->num_elements() / rows;
    Status index_status;
    Status dispatch_status;
    OP_REQUIRES_OK(ctx, FloatDispatch(var->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T a = *alpha.data<T>();
      T* v = var->data<T>();
      const T* g = grad.data<T>();
      dispatch_status = IndexDispatch(indices.dtype(), [&](auto itag) {
        using I = decltype(itag);
        const I* idx = indices.data<I>();
        for (int64_t i = 0; i < indices.num_elements(); ++i) {
          if (idx[i] < 0 || idx[i] >= rows) {
            index_status = OutOfRange("sparse update index out of range");
            return;
          }
          T* row = v + idx[i] * row_elems;
          const T* grow = g + i * row_elems;
          for (int64_t j = 0; j < row_elems; ++j) row[j] -= a * grow[j];
        }
      });
    }));
    if (index_status.ok()) index_status = dispatch_status;
    OP_REQUIRES_OK(ctx, index_status);
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("SparseApplyGradientDescent", kDeviceCpu,
                SparseApplyGradientDescentOp);

class SparseApplyAdagradOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    GET_VAR(ctx, 0, var, mu_var);
    GET_VAR(ctx, 1, accum, mu_accum);
    Tensor lr = ctx->input(2);
    Tensor grad = ctx->input(3);
    Tensor indices = ctx->input(4);
    std::lock_guard<std::mutex> lock(*mu_var);
    int64_t rows = var->dim(0);
    int64_t row_elems = rows == 0 ? 0 : var->num_elements() / rows;
    Status index_status;
    Status dispatch_status;
    OP_REQUIRES_OK(ctx, FloatDispatch(var->dtype(), [&](auto tag) {
      using T = decltype(tag);
      T l = *lr.data<T>();
      T* v = var->data<T>();
      T* a = accum->data<T>();
      const T* g = grad.data<T>();
      dispatch_status = IndexDispatch(indices.dtype(), [&](auto itag) {
        using I = decltype(itag);
        const I* idx = indices.data<I>();
        for (int64_t i = 0; i < indices.num_elements(); ++i) {
          if (idx[i] < 0 || idx[i] >= rows) {
            index_status = OutOfRange("sparse update index out of range");
            return;
          }
          T* vrow = v + idx[i] * row_elems;
          T* arow = a + idx[i] * row_elems;
          const T* grow = g + i * row_elems;
          for (int64_t j = 0; j < row_elems; ++j) {
            arow[j] += grow[j] * grow[j];
            vrow[j] -= l * grow[j] /
                       static_cast<T>(std::sqrt(static_cast<double>(arow[j])));
          }
        }
      });
    }));
    if (index_status.ok()) index_status = dispatch_status;
    OP_REQUIRES_OK(ctx, index_status);
    ctx->forward_ref_input_to_output(0, 0);
  }
};
REGISTER_KERNEL("SparseApplyAdagrad", kDeviceCpu, SparseApplyAdagradOp);

#undef GET_VAR

}  // namespace
}  // namespace tfrepro
