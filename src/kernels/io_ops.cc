// Checkpoint and file kernels (paper §4.3): Save writes one or more tensors
// to a checkpoint file; Restore reads one tensor back. Both are ordinary
// graph operations — checkpointing is user-level, built by the Saver client
// library (src/train/saver.*), not runtime magic.

#include <fstream>
#include <sstream>

#include "kernels/checkpoint_format.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

class SaveOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor filename = ctx->input(0);
    Tensor tensor_names = ctx->input(1);
    OP_REQUIRES(ctx, filename.num_elements() == 1,
                InvalidArgument("Save filename must be a single string"));
    int num_tensors = ctx->num_inputs() - 2;
    OP_REQUIRES(ctx, tensor_names.num_elements() == num_tensors,
                InvalidArgument("Save got " + std::to_string(num_tensors) +
                                " tensors but " +
                                std::to_string(tensor_names.num_elements()) +
                                " names"));
    std::vector<std::pair<std::string, Tensor>> entries;
    entries.reserve(num_tensors);
    for (int i = 0; i < num_tensors; ++i) {
      entries.emplace_back(tensor_names.str(i), ctx->input(2 + i));
    }
    OP_REQUIRES_OK(ctx, WriteCheckpoint(filename.str(0), entries));
  }
};
REGISTER_KERNEL("Save", kDeviceCpu, SaveOp);

class RestoreOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor pattern = ctx->input(0);
    Tensor tensor_name = ctx->input(1);
    OP_REQUIRES(ctx,
                pattern.num_elements() == 1 && tensor_name.num_elements() == 1,
                InvalidArgument("Restore inputs must be single strings"));
    Result<Tensor> t =
        ReadCheckpointTensor(pattern.str(0), tensor_name.str(0));
    OP_REQUIRES_OK(ctx, t.status());
    ctx->set_output(0, std::move(t).value());
  }
};
REGISTER_KERNEL("Restore", kDeviceCpu, RestoreOp);

class ReadFileOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor filename = ctx->input(0);
    OP_REQUIRES(ctx, filename.num_elements() == 1,
                InvalidArgument("ReadFile filename must be a single string"));
    std::ifstream in(filename.str(0), std::ios::binary);
    OP_REQUIRES(ctx, static_cast<bool>(in),
                NotFound("cannot open file '" + filename.str(0) + "'"));
    std::ostringstream ss;
    ss << in.rdbuf();
    ctx->set_output(0, Tensor::Scalar(ss.str()));
  }
};
REGISTER_KERNEL("ReadFile", kDeviceCpu, ReadFileOp);

}  // namespace
}  // namespace tfrepro
