// MatMul and bias kernels. The matrix multiply uses a cache-blocked i-k-j
// loop order — the workhorse of every model in the paper's evaluation.

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

template <typename T>
void MatMulImpl(const T* a, const T* b, T* c, int64_t m, int64_t k, int64_t n,
                bool ta, bool tb) {
  // c[m,n] = a[m,k] (or aT) * b[k,n] (or bT); c is pre-zeroed.
  auto a_at = [&](int64_t i, int64_t j) { return ta ? a[j * m + i] : a[i * k + j]; };
  auto b_at = [&](int64_t i, int64_t j) { return tb ? b[j * k + i] : b[i * n + j]; };
  if (!ta && !tb) {
    // Fast path: i-k-j with row-major streaming over b and c.
    constexpr int64_t kBlock = 64;
    for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
      int64_t i1 = std::min(m, i0 + kBlock);
      for (int64_t k0 = 0; k0 < k; k0 += kBlock) {
        int64_t k1 = std::min(k, k0 + kBlock);
        for (int64_t i = i0; i < i1; ++i) {
          for (int64_t kk = k0; kk < k1; ++kk) {
            T av = a[i * k + kk];
            if (av == T{0}) continue;
            const T* brow = b + kk * n;
            T* crow = c + i * n;
            for (int64_t j = 0; j < n; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
    return;
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      T acc{0};
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a_at(i, kk) * b_at(kk, j);
      }
      c[i * n + j] = acc;
    }
  }
}

class MatMulOp : public OpKernel {
 public:
  explicit MatMulOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetBoolAttr("transpose_a", &ta_));
    ctx->SetStatus(ctx->GetBoolAttr("transpose_b", &tb_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor a = ctx->input(0);
    Tensor b = ctx->input(1);
    OP_REQUIRES(ctx, a.shape().rank() == 2 && b.shape().rank() == 2,
                InvalidArgument("MatMul inputs must be rank-2, got " +
                                a.shape().DebugString() + " and " +
                                b.shape().DebugString()));
    int64_t m = ta_ ? a.dim(1) : a.dim(0);
    int64_t k = ta_ ? a.dim(0) : a.dim(1);
    int64_t kb = tb_ ? b.dim(1) : b.dim(0);
    int64_t n = tb_ ? b.dim(0) : b.dim(1);
    OP_REQUIRES(ctx, k == kb,
                InvalidArgument("MatMul inner dimensions differ: " +
                                a.shape().DebugString() + " x " +
                                b.shape().DebugString()));
    Tensor out(BaseType(a.dtype()), TensorShape({m, n}));
    OP_REQUIRES_OK(ctx, NumericDispatch(a.dtype(), [&](auto tag) {
      using T = decltype(tag);
      MatMulImpl<T>(a.data<T>(), b.data<T>(), out.data<T>(), m, k, n, ta_,
                    tb_);
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  bool ta_ = false;
  bool tb_ = false;
};
REGISTER_KERNEL("MatMul", kDeviceCpu, MatMulOp);

// BiasAdd: value[..., c] + bias[c].
class BiasAddOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor value = ctx->input(0);
    Tensor bias = ctx->input(1);
    OP_REQUIRES(ctx, value.shape().rank() >= 1,
                InvalidArgument("BiasAdd value must have rank >= 1"));
    OP_REQUIRES(ctx, bias.shape().rank() == 1,
                InvalidArgument("BiasAdd bias must be a vector"));
    int64_t c = value.dim(value.shape().rank() - 1);
    OP_REQUIRES(ctx, bias.dim(0) == c,
                InvalidArgument("BiasAdd bias length " +
                                std::to_string(bias.dim(0)) +
                                " != channel count " + std::to_string(c)));
    Tensor out(BaseType(value.dtype()), value.shape());
    OP_REQUIRES_OK(ctx, NumericDispatch(value.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* v = value.data<T>();
      const T* bp = bias.data<T>();
      T* o = out.data<T>();
      int64_t n = value.num_elements();
      for (int64_t i = 0; i < n; ++i) {
        o[i] = v[i] + bp[i % c];
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("BiasAdd", kDeviceCpu, BiasAddOp);

// BiasAddGrad: sum out_backprop over all but the last dimension.
class BiasAddGradOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor g = ctx->input(0);
    OP_REQUIRES(ctx, g.shape().rank() >= 1,
                InvalidArgument("BiasAddGrad input must have rank >= 1"));
    int64_t c = g.dim(g.shape().rank() - 1);
    Tensor out(BaseType(g.dtype()), TensorShape({c}));
    OP_REQUIRES_OK(ctx, NumericDispatch(g.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* gp = g.data<T>();
      T* o = out.data<T>();
      int64_t n = g.num_elements();
      for (int64_t i = 0; i < n; ++i) {
        o[i % c] += gp[i];
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("BiasAddGrad", kDeviceCpu, BiasAddGradOp);

}  // namespace
}  // namespace tfrepro
