// Dynamic control-flow kernels (paper §3.4): Switch demultiplexes on a
// runtime predicate (the untaken output is left unset and becomes a dead
// value); Merge forwards its first live input; Enter/Exit/NextIteration are
// pass-throughs whose frame semantics live in the executor.

#include "runtime/kernel.h"

namespace tfrepro {
namespace {

class SwitchOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    const TensorValue& data = ctx->input_value(0);
    Tensor pred = ctx->input(1);
    OP_REQUIRES(ctx, pred.IsScalar() && BaseType(pred.dtype()) == DataType::kBool,
                InvalidArgument("Switch pred must be a scalar bool"));
    int taken = *pred.data<bool>() ? 1 : 0;
    if (data.is_ref()) {
      ctx->set_output_ref(taken, data.ref_mu, data.ref);
    } else {
      ctx->set_output(taken, data.tensor);
    }
    // The other output stays unset -> dead.
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("Switch", kDeviceCpu, SwitchOp);

class MergeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    // Non-strict: exactly one input is live when the executor fires us.
    for (int i = 0; i < ctx->num_inputs(); ++i) {
      const TensorValue& v = ctx->input_value(i);
      if (v.is_ref() || v.tensor.IsInitialized()) {
        if (v.is_ref()) {
          ctx->set_output(0, v.Deref());
        } else {
          ctx->set_output(0, v.tensor);
        }
        ctx->set_output(1, Tensor::Scalar(int32_t{i}));
        return;
      }
    }
    ctx->SetStatus(Internal("Merge '" + name() + "' fired with no live input"));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("Merge", kDeviceCpu, MergeOp);

class PassThroughOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    ctx->set_output(0, ctx->input(0));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("Enter", kDeviceCpu, PassThroughOp);
REGISTER_KERNEL("Exit", kDeviceCpu, PassThroughOp);
REGISTER_KERNEL("NextIteration", kDeviceCpu, PassThroughOp);
REGISTER_KERNEL("LoopCond", kDeviceCpu, PassThroughOp);

}  // namespace
}  // namespace tfrepro
