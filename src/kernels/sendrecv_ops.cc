// _Send/_Recv kernels (paper §3.3): partitions meet at a rendezvous key.
// Send fires as soon as its input is available (even dead — the deadness
// bit must cross device boundaries, §3.4); Recv is asynchronous so blocked
// receives never occupy a pool thread. When the step is traced, each kernel
// records a TransferStats event (tensor name, endpoints, bytes, and the
// Recv wait interval) into the step's TraceCollector.
//
// Keys carry the issuing step id (";s<id>" suffix): the id is assigned by
// the master when the step is dispatched, so a delayed task's sends are
// stamped with the step that issued them — the tag the synchronous-replica
// staleness filter (QueueDequeueFreshMany) uses to drop superseded
// gradients (paper §4.4, "first m of n"). StepId exposes the same id as a
// graph value.

#include "core/metrics.h"
#include "runtime/kernel.h"
#include "runtime/tracing.h"

namespace tfrepro {
namespace {

struct SendRecvAttrs {
  std::string tensor_name;
  std::string send_device;
  std::string recv_device;

  std::string BaseKey() const {
    return send_device + ";" + recv_device + ";" + tensor_name;
  }

  // Full key for one value: base + frame/iteration + issuing step id. Send
  // and Recv of a pair compute identical keys because the master hands the
  // same step id to every participating task. IsCrossTaskKey only inspects
  // the device components, so the extra suffix is transparent to the fault
  // injector and the network model.
  std::string Key(OpKernelContext* ctx) const {
    return BaseKey() + ";" + std::to_string(ctx->frame_iter()) + ";s" +
           std::to_string(ctx->step_id());
  }
};

SendRecvAttrs AttrsFromConstruction(OpKernelConstruction* ctx) {
  SendRecvAttrs attrs;
  ctx->SetStatus(ctx->GetStringAttr("tensor_name", &attrs.tensor_name));
  ctx->SetStatus(ctx->GetStringAttr("send_device", &attrs.send_device));
  ctx->SetStatus(ctx->GetStringAttr("recv_device", &attrs.recv_device));
  return attrs;
}

class SendOp : public OpKernel {
 public:
  explicit SendOp(OpKernelConstruction* ctx)
      : OpKernel(ctx), attrs_(AttrsFromConstruction(ctx)) {}

  void Compute(OpKernelContext* ctx) override {
    OP_REQUIRES(ctx, ctx->rendezvous() != nullptr,
                Internal("_Send executed without a rendezvous"));
    std::string key = attrs_.Key(ctx);
    // Hash once here; the sharded rendezvous (and any wrapper in between)
    // reuses it for bucket selection instead of rehashing.
    const uint64_t key_hash = Rendezvous::KeyHash(key);
    bool is_dead = ctx->is_input_dead();
    Tensor value = is_dead ? Tensor() : ctx->input(0);
    if (ctx->trace() != nullptr) {
      TransferStats stats;
      stats.kind = TransferStats::Kind::kSend;
      stats.tensor_name = attrs_.tensor_name;
      stats.send_device = attrs_.send_device;
      stats.recv_device = attrs_.recv_device;
      stats.bytes = is_dead ? 0 : static_cast<int64_t>(value.TotalBytes());
      stats.send_micros = metrics::NowMicros();
      ctx->trace()->RecordTransfer(std::move(stats));
    }
    OP_REQUIRES_OK(ctx, ctx->rendezvous()->Send(key, key_hash, value, is_dead));
  }
  bool IsExpensive() const override { return false; }

 private:
  SendRecvAttrs attrs_;
};
REGISTER_KERNEL("_Send", kDeviceCpu, SendOp);

class RecvOp : public AsyncOpKernel {
 public:
  explicit RecvOp(OpKernelConstruction* ctx)
      : AsyncOpKernel(ctx), attrs_(AttrsFromConstruction(ctx)) {}

  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    OP_REQUIRES_ASYNC(ctx, ctx->rendezvous() != nullptr,
                      Internal("_Recv executed without a rendezvous"), done);
    std::string key = attrs_.Key(ctx);
    const uint64_t key_hash = Rendezvous::KeyHash(key);
    const int64_t recv_start =
        ctx->trace() != nullptr ? metrics::NowMicros() : 0;
    ctx->rendezvous()->RecvAsync(
        key, key_hash,
        [this, ctx, done, recv_start](const Status& s,
                                           const Tensor& value, bool is_dead) {
          if (!s.ok()) {
            ctx->SetStatus(s);
          } else if (!is_dead) {
            ctx->set_output(0, value);
          }
          if (s.ok() && ctx->trace() != nullptr) {
            TransferStats stats;
            stats.kind = TransferStats::Kind::kRecv;
            stats.tensor_name = attrs_.tensor_name;
            stats.send_device = attrs_.send_device;
            stats.recv_device = attrs_.recv_device;
            stats.bytes =
                is_dead ? 0 : static_cast<int64_t>(value.TotalBytes());
            stats.recv_start_micros = recv_start;
            stats.recv_end_micros = metrics::NowMicros();
            ctx->trace()->RecordTransfer(std::move(stats));
          }
          // Dead: leave the output unset; the executor propagates deadness.
          done();
        });
  }

 private:
  SendRecvAttrs attrs_;
};
REGISTER_KERNEL("_Recv", kDeviceCpu, RecvOp);

// Emits the issuing master's step id as an int64 scalar. Stateful (so the
// optimizer neither folds nor merges it) but trivially cheap; sync replicas
// use it to tag gradients with the step that produced them.
class StepIdOp : public OpKernel {
 public:
  explicit StepIdOp(OpKernelConstruction* ctx) : OpKernel(ctx) {}

  void Compute(OpKernelContext* ctx) override {
    ctx->set_output(0, Tensor::Scalar(ctx->step_id()));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("StepId", kDeviceCpu, StepIdOp);

}  // namespace
}  // namespace tfrepro
