// _Send/_Recv kernels (paper §3.3): partitions meet at a rendezvous key.
// Send fires as soon as its input is available (even dead — the deadness
// bit must cross device boundaries, §3.4); Recv is asynchronous so blocked
// receives never occupy a pool thread.

#include "runtime/kernel.h"

namespace tfrepro {
namespace {

std::string KeyFromAttrs(OpKernelConstruction* ctx) {
  std::string tensor_name;
  std::string send_device;
  std::string recv_device;
  ctx->SetStatus(ctx->GetStringAttr("tensor_name", &tensor_name));
  ctx->SetStatus(ctx->GetStringAttr("send_device", &send_device));
  ctx->SetStatus(ctx->GetStringAttr("recv_device", &recv_device));
  return send_device + ";" + recv_device + ";" + tensor_name;
}

class SendOp : public OpKernel {
 public:
  explicit SendOp(OpKernelConstruction* ctx)
      : OpKernel(ctx), base_key_(KeyFromAttrs(ctx)) {}

  void Compute(OpKernelContext* ctx) override {
    OP_REQUIRES(ctx, ctx->rendezvous() != nullptr,
                Internal("_Send executed without a rendezvous"));
    std::string key = base_key_ + ";" + std::to_string(ctx->frame_iter());
    bool is_dead = ctx->is_input_dead();
    Tensor value = is_dead ? Tensor() : ctx->input(0);
    OP_REQUIRES_OK(ctx, ctx->rendezvous()->Send(key, value, is_dead));
  }
  bool IsExpensive() const override { return false; }

 private:
  std::string base_key_;
};
REGISTER_KERNEL("_Send", kDeviceCpu, SendOp);

class RecvOp : public AsyncOpKernel {
 public:
  explicit RecvOp(OpKernelConstruction* ctx)
      : AsyncOpKernel(ctx), base_key_(KeyFromAttrs(ctx)) {}

  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    OP_REQUIRES_ASYNC(ctx, ctx->rendezvous() != nullptr,
                      Internal("_Recv executed without a rendezvous"), done);
    std::string key = base_key_ + ";" + std::to_string(ctx->frame_iter());
    ctx->rendezvous()->RecvAsync(
        key, [ctx, done](const Status& s, const Tensor& value, bool is_dead) {
          if (!s.ok()) {
            ctx->SetStatus(s);
          } else if (!is_dead) {
            ctx->set_output(0, value);
          }
          // Dead: leave the output unset; the executor propagates deadness.
          done();
        });
  }

 private:
  std::string base_key_;
};
REGISTER_KERNEL("_Recv", kDeviceCpu, RecvOp);

}  // namespace
}  // namespace tfrepro
