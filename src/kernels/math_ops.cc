// Element-wise mathematical kernels: binary ops with broadcasting, unary
// ops, comparisons, logical ops, Select, Cast, AddN, and the fused
// activation gradients the paper calls out in §5.

#include <cmath>

#include "kernels/broadcast.h"
#include "kernels/elementwise_functors.h"
#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

// Binary op whose output type equals the input type.
template <typename Functor>
class BinaryOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor a = ctx->input(0);
    Tensor b = ctx->input(1);
    OP_REQUIRES(ctx, BaseType(a.dtype()) == BaseType(b.dtype()),
                InvalidArgument("binary op input dtypes differ"));
    Result<TensorShape> out_shape = BroadcastShape(a.shape(), b.shape());
    OP_REQUIRES_OK(ctx, out_shape.status());
    Tensor out(BaseType(a.dtype()), out_shape.value());
    OP_REQUIRES_OK(ctx, NumericDispatch(a.dtype(), [&](auto tag) {
      using T = decltype(tag);
      BroadcastBinary<T, T>(a.data<T>(), a.shape(), b.data<T>(), b.shape(),
                            out.data<T>(), out.shape(),
                            [](T x, T y) { return Functor::template Run<T>(x, y); });
    }));
    ctx->set_output(0, std::move(out));
  }
};

REGISTER_KERNEL("Add", kDeviceCpu, BinaryOp<AddFunc>);
REGISTER_KERNEL("Sub", kDeviceCpu, BinaryOp<SubFunc>);
REGISTER_KERNEL("Mul", kDeviceCpu, BinaryOp<MulFunc>);
REGISTER_KERNEL("Div", kDeviceCpu, BinaryOp<DivFunc>);
REGISTER_KERNEL("FloorDiv", kDeviceCpu, BinaryOp<FloorDivFunc>);
REGISTER_KERNEL("Mod", kDeviceCpu, BinaryOp<ModFunc>);
REGISTER_KERNEL("Pow", kDeviceCpu, BinaryOp<PowFunc>);
REGISTER_KERNEL("Maximum", kDeviceCpu, BinaryOp<MaximumFunc>);
REGISTER_KERNEL("Minimum", kDeviceCpu, BinaryOp<MinimumFunc>);
REGISTER_KERNEL("SquaredDifference", kDeviceCpu, BinaryOp<SquaredDifferenceFunc>);

// Comparison ops: T x T -> bool (with broadcasting).
template <typename Functor>
class CompareOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor a = ctx->input(0);
    Tensor b = ctx->input(1);
    Result<TensorShape> out_shape = BroadcastShape(a.shape(), b.shape());
    OP_REQUIRES_OK(ctx, out_shape.status());
    Tensor out(DataType::kBool, out_shape.value());
    OP_REQUIRES_OK(ctx, NumericDispatch(a.dtype(), [&](auto tag) {
      using T = decltype(tag);
      BroadcastBinary<T, bool>(a.data<T>(), a.shape(), b.data<T>(), b.shape(),
                               out.data<bool>(), out.shape(),
                               [](T x, T y) { return Functor::template Run<T>(x, y); });
    }));
    ctx->set_output(0, std::move(out));
  }
};

struct LessFunc {
  template <typename T>
  static bool Run(T x, T y) {
    return x < y;
  }
};
struct LessEqualFunc {
  template <typename T>
  static bool Run(T x, T y) {
    return x <= y;
  }
};
struct GreaterFunc {
  template <typename T>
  static bool Run(T x, T y) {
    return x > y;
  }
};
struct GreaterEqualFunc {
  template <typename T>
  static bool Run(T x, T y) {
    return x >= y;
  }
};
struct EqualFunc {
  template <typename T>
  static bool Run(T x, T y) {
    return x == y;
  }
};
struct NotEqualFunc {
  template <typename T>
  static bool Run(T x, T y) {
    return x != y;
  }
};

REGISTER_KERNEL("Less", kDeviceCpu, CompareOp<LessFunc>);
REGISTER_KERNEL("LessEqual", kDeviceCpu, CompareOp<LessEqualFunc>);
REGISTER_KERNEL("Greater", kDeviceCpu, CompareOp<GreaterFunc>);
REGISTER_KERNEL("GreaterEqual", kDeviceCpu, CompareOp<GreaterEqualFunc>);
REGISTER_KERNEL("Equal", kDeviceCpu, CompareOp<EqualFunc>);
REGISTER_KERNEL("NotEqual", kDeviceCpu, CompareOp<NotEqualFunc>);

// Unary ops.
template <typename Functor>
class UnaryOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor x = ctx->input(0);
    Tensor out(BaseType(x.dtype()), x.shape());
    OP_REQUIRES_OK(ctx, NumericDispatch(x.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = x.data<T>();
      T* o = out.data<T>();
      for (int64_t i = 0; i < x.num_elements(); ++i) {
        o[i] = Functor::template Run<T>(in[i]);
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};

REGISTER_KERNEL("Neg", kDeviceCpu, UnaryOp<NegFunc>);
REGISTER_KERNEL("Exp", kDeviceCpu, UnaryOp<ExpFunc>);
REGISTER_KERNEL("Log", kDeviceCpu, UnaryOp<LogFunc>);
REGISTER_KERNEL("Sqrt", kDeviceCpu, UnaryOp<SqrtFunc>);
REGISTER_KERNEL("Rsqrt", kDeviceCpu, UnaryOp<RsqrtFunc>);
REGISTER_KERNEL("Square", kDeviceCpu, UnaryOp<SquareFunc>);
REGISTER_KERNEL("Abs", kDeviceCpu, UnaryOp<AbsFunc>);
REGISTER_KERNEL("Sign", kDeviceCpu, UnaryOp<SignFunc>);
REGISTER_KERNEL("Tanh", kDeviceCpu, UnaryOp<TanhFunc>);
REGISTER_KERNEL("Sigmoid", kDeviceCpu, UnaryOp<SigmoidFunc>);
REGISTER_KERNEL("Relu", kDeviceCpu, UnaryOp<ReluFunc>);
REGISTER_KERNEL("Floor", kDeviceCpu, UnaryOp<FloorFunc>);
REGISTER_KERNEL("Ceil", kDeviceCpu, UnaryOp<CeilFunc>);
REGISTER_KERNEL("Reciprocal", kDeviceCpu, UnaryOp<ReciprocalFunc>);

// Fused activation gradients (paper §5).
class ReluGradOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor g = ctx->input(0);
    Tensor x = ctx->input(1);
    OP_REQUIRES(ctx, g.shape() == x.shape(),
                InvalidArgument("ReluGrad shapes differ"));
    Tensor out(BaseType(g.dtype()), g.shape());
    OP_REQUIRES_OK(ctx, FloatDispatch(g.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* gp = g.data<T>();
      const T* xp = x.data<T>();
      T* o = out.data<T>();
      for (int64_t i = 0; i < g.num_elements(); ++i) {
        o[i] = xp[i] > T{0} ? gp[i] : T{0};
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("ReluGrad", kDeviceCpu, ReluGradOp);

// dz = dy * y * (1 - y), with y = sigmoid(x).
class SigmoidGradOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor y = ctx->input(0);
    Tensor dy = ctx->input(1);
    Tensor out(BaseType(y.dtype()), y.shape());
    OP_REQUIRES_OK(ctx, FloatDispatch(y.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* yp = y.data<T>();
      const T* dp = dy.data<T>();
      T* o = out.data<T>();
      for (int64_t i = 0; i < y.num_elements(); ++i) {
        o[i] = dp[i] * yp[i] * (T{1} - yp[i]);
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("SigmoidGrad", kDeviceCpu, SigmoidGradOp);

// dz = dy * (1 - y^2), with y = tanh(x).
class TanhGradOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor y = ctx->input(0);
    Tensor dy = ctx->input(1);
    Tensor out(BaseType(y.dtype()), y.shape());
    OP_REQUIRES_OK(ctx, FloatDispatch(y.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* yp = y.data<T>();
      const T* dp = dy.data<T>();
      T* o = out.data<T>();
      for (int64_t i = 0; i < y.num_elements(); ++i) {
        o[i] = dp[i] * (T{1} - yp[i] * yp[i]);
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("TanhGrad", kDeviceCpu, TanhGradOp);

class LogicalAndOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor a = ctx->input(0);
    Tensor b = ctx->input(1);
    Result<TensorShape> out_shape = BroadcastShape(a.shape(), b.shape());
    OP_REQUIRES_OK(ctx, out_shape.status());
    Tensor out(DataType::kBool, out_shape.value());
    BroadcastBinary<bool, bool>(a.data<bool>(), a.shape(), b.data<bool>(),
                                b.shape(), out.data<bool>(), out.shape(),
                                [](bool x, bool y) { return x && y; });
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("LogicalAnd", kDeviceCpu, LogicalAndOp);

class LogicalOrOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor a = ctx->input(0);
    Tensor b = ctx->input(1);
    Result<TensorShape> out_shape = BroadcastShape(a.shape(), b.shape());
    OP_REQUIRES_OK(ctx, out_shape.status());
    Tensor out(DataType::kBool, out_shape.value());
    BroadcastBinary<bool, bool>(a.data<bool>(), a.shape(), b.data<bool>(),
                                b.shape(), out.data<bool>(), out.shape(),
                                [](bool x, bool y) { return x || y; });
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("LogicalOr", kDeviceCpu, LogicalOrOp);

class LogicalNotOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor x = ctx->input(0);
    Tensor out(DataType::kBool, x.shape());
    const bool* in = x.data<bool>();
    bool* o = out.data<bool>();
    for (int64_t i = 0; i < x.num_elements(); ++i) o[i] = !in[i];
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("LogicalNot", kDeviceCpu, LogicalNotOp);

// Select(cond, t, e): elementwise cond ? t : e. cond may match t's shape or
// be a vector over dim 0.
class SelectOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor c = ctx->input(0);
    Tensor t = ctx->input(1);
    Tensor e = ctx->input(2);
    OP_REQUIRES(ctx, t.shape() == e.shape(),
                InvalidArgument("Select branches must have equal shapes"));
    Tensor out(BaseType(t.dtype()), t.shape());
    const bool* cp = c.data<bool>();
    int64_t n = t.num_elements();
    OP_REQUIRES_OK(ctx, NumericDispatch(t.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* tp = t.data<T>();
      const T* ep = e.data<T>();
      T* o = out.data<T>();
      if (c.shape() == t.shape()) {
        for (int64_t i = 0; i < n; ++i) o[i] = cp[i] ? tp[i] : ep[i];
      } else if (c.shape().rank() == 1 && t.shape().rank() >= 1 &&
                 c.dim(0) == t.dim(0)) {
        int64_t row = n / t.dim(0);
        for (int64_t r = 0; r < t.dim(0); ++r) {
          for (int64_t j = 0; j < row; ++j) {
            o[r * row + j] = cp[r] ? tp[r * row + j] : ep[r * row + j];
          }
        }
      } else if (c.IsScalar()) {
        for (int64_t i = 0; i < n; ++i) o[i] = cp[0] ? tp[i] : ep[i];
      } else {
        // Leave output unset and flag the error below.
      }
    }));
    OP_REQUIRES(ctx,
                c.shape() == t.shape() || c.IsScalar() ||
                    (c.shape().rank() == 1 && t.shape().rank() >= 1 &&
                     c.dim(0) == t.dim(0)),
                InvalidArgument("Select condition shape incompatible"));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Select", kDeviceCpu, SelectOp);

class CastOp : public OpKernel {
 public:
  explicit CastOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetTypeAttr("DstT", &dst_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor x = ctx->input(0);
    Tensor out(dst_, x.shape());
    Status s = NumericDispatch(x.dtype(), [&](auto src_tag) {
      using Src = decltype(src_tag);
      const Src* in = x.data<Src>();
      Status s2 = NumericDispatch(dst_, [&](auto dst_tag) {
        using Dst = decltype(dst_tag);
        Dst* o = out.data<Dst>();
        for (int64_t i = 0; i < x.num_elements(); ++i) {
          o[i] = static_cast<Dst>(in[i]);
        }
      });
      (void)s2;
    });
    // Also allow bool source.
    if (!s.ok() && BaseType(x.dtype()) == DataType::kBool) {
      const bool* in = x.data<bool>();
      s = NumericDispatch(dst_, [&](auto dst_tag) {
        using Dst = decltype(dst_tag);
        Dst* o = out.data<Dst>();
        for (int64_t i = 0; i < x.num_elements(); ++i) {
          o[i] = static_cast<Dst>(in[i] ? 1 : 0);
        }
      });
    }
    OP_REQUIRES_OK(ctx, s);
    ctx->set_output(0, std::move(out));
  }

 private:
  DataType dst_ = DataType::kInvalid;
};
REGISTER_KERNEL("Cast", kDeviceCpu, CastOp);

// Sums grad down to target's shape: the inverse of broadcasting. Used by
// the gradients of broadcasting binary ops.
class SumToShapeOfOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor grad = ctx->input(0);
    Tensor target = ctx->input(1);
    if (grad.shape() == target.shape()) {
      ctx->set_output(0, grad);
      return;
    }
    // Check target broadcasts to grad's shape.
    Result<TensorShape> check = BroadcastShape(grad.shape(), target.shape());
    OP_REQUIRES_OK(ctx, check.status());
    OP_REQUIRES(ctx, check.value() == grad.shape(),
                InvalidArgument("SumToShapeOf: target shape " +
                                target.shape().DebugString() +
                                " does not broadcast to grad shape " +
                                grad.shape().DebugString()));
    Tensor out(BaseType(grad.dtype()), target.shape());  // zero-filled
    std::vector<int64_t> strides =
        BroadcastStrides(target.shape(), grad.shape());
    int rank = grad.shape().rank();
    OP_REQUIRES_OK(ctx, NumericDispatch(grad.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* g = grad.data<T>();
      T* o = out.data<T>();
      std::vector<int64_t> index(rank, 0);
      int64_t oi = 0;
      int64_t n = grad.num_elements();
      for (int64_t i = 0; i < n; ++i) {
        o[oi] += g[i];
        for (int d = rank - 1; d >= 0; --d) {
          ++index[d];
          oi += strides[d];
          if (index[d] < grad.dim(d)) break;
          index[d] = 0;
          oi -= strides[d] * grad.dim(d);
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("SumToShapeOf", kDeviceCpu, SumToShapeOfOp);

class AddNOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    OP_REQUIRES(ctx, ctx->num_inputs() >= 1,
                InvalidArgument("AddN needs at least one input"));
    Tensor first = ctx->input(0);
    for (int i = 1; i < ctx->num_inputs(); ++i) {
      OP_REQUIRES(ctx, ctx->input(i).shape() == first.shape(),
                  InvalidArgument("AddN inputs must have equal shapes"));
    }
    Tensor out(BaseType(first.dtype()), first.shape());
    OP_REQUIRES_OK(ctx, NumericDispatch(first.dtype(), [&](auto tag) {
      using T = decltype(tag);
      T* o = out.data<T>();
      for (int i = 0; i < ctx->num_inputs(); ++i) {
        Tensor x = ctx->input(i);
        const T* in = x.data<T>();
        for (int64_t j = 0; j < out.num_elements(); ++j) o[j] += in[j];
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("AddN", kDeviceCpu, AddNOp);

}  // namespace
}  // namespace tfrepro
