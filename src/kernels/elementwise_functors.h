// Element-wise functors shared by the standalone math kernels
// (kernels/math_ops.cc) and the _FusedElementwise interpreter
// (kernels/fused_ops.cc). Fusion must be bit-exact with unfused execution,
// so both paths apply the exact same Run<T> per element — the fused kernel
// never re-derives the arithmetic.

#ifndef TFREPRO_KERNELS_ELEMENTWISE_FUNCTORS_H_
#define TFREPRO_KERNELS_ELEMENTWISE_FUNCTORS_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <type_traits>

namespace tfrepro {

// ---------------------------------------------------------------------------
// Binary functors (T x T -> T, with broadcasting handled by the caller).
// ---------------------------------------------------------------------------

struct AddFunc {
  template <typename T>
  static T Run(T x, T y) {
    return x + y;
  }
};
struct SubFunc {
  template <typename T>
  static T Run(T x, T y) {
    return x - y;
  }
};
struct MulFunc {
  template <typename T>
  static T Run(T x, T y) {
    return x * y;
  }
};
struct DivFunc {
  template <typename T>
  static T Run(T x, T y) {
    return x / y;
  }
};
struct FloorDivFunc {
  template <typename T>
  static T Run(T x, T y) {
    if constexpr (std::is_integral_v<T>) {
      T q = x / y;
      if ((x % y != 0) && ((x < 0) != (y < 0))) --q;
      return q;
    } else {
      return std::floor(x / y);
    }
  }
};
struct ModFunc {
  template <typename T>
  static T Run(T x, T y) {
    if constexpr (std::is_integral_v<T>) {
      T m = x % y;
      if (m != 0 && ((x < 0) != (y < 0))) m += y;
      return m;
    } else {
      T m = std::fmod(x, y);
      if (m != 0 && ((x < 0) != (y < 0))) m += y;
      return m;
    }
  }
};
struct PowFunc {
  template <typename T>
  static T Run(T x, T y) {
    return static_cast<T>(std::pow(static_cast<double>(x),
                                   static_cast<double>(y)));
  }
};
struct MaximumFunc {
  template <typename T>
  static T Run(T x, T y) {
    return x > y ? x : y;
  }
};
struct MinimumFunc {
  template <typename T>
  static T Run(T x, T y) {
    return x < y ? x : y;
  }
};
struct SquaredDifferenceFunc {
  template <typename T>
  static T Run(T x, T y) {
    T d = x - y;
    return d * d;
  }
};

// ---------------------------------------------------------------------------
// Unary functors (T -> T).
// ---------------------------------------------------------------------------

struct NegFunc {
  template <typename T>
  static T Run(T x) {
    return -x;
  }
};
struct ExpFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(std::exp(static_cast<double>(x)));
  }
};
struct LogFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(std::log(static_cast<double>(x)));
  }
};
struct SqrtFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(std::sqrt(static_cast<double>(x)));
  }
};
struct RsqrtFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(1.0 / std::sqrt(static_cast<double>(x)));
  }
};
struct SquareFunc {
  template <typename T>
  static T Run(T x) {
    return x * x;
  }
};
struct AbsFunc {
  template <typename T>
  static T Run(T x) {
    return x < T{0} ? static_cast<T>(-x) : x;
  }
};
struct SignFunc {
  template <typename T>
  static T Run(T x) {
    return x > T{0} ? T{1} : (x < T{0} ? static_cast<T>(-1) : T{0});
  }
};
struct TanhFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(std::tanh(static_cast<double>(x)));
  }
};
struct SigmoidFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(1.0 / (1.0 + std::exp(-static_cast<double>(x))));
  }
};
struct ReluFunc {
  template <typename T>
  static T Run(T x) {
    return x > T{0} ? x : T{0};
  }
};
struct FloorFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(std::floor(static_cast<double>(x)));
  }
};
struct CeilFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(std::ceil(static_cast<double>(x)));
  }
};
struct ReciprocalFunc {
  template <typename T>
  static T Run(T x) {
    return static_cast<T>(1.0 / static_cast<double>(x));
  }
};

// ---------------------------------------------------------------------------
// Name-indexed dispatch, used by the fusion pass (eligibility) and the
// _FusedElementwise kernel (recipe interpretation). kInvalid means "not a
// fusable element-wise op".
// ---------------------------------------------------------------------------

enum class UnaryEwise : uint8_t {
  kNeg, kExp, kLog, kSqrt, kRsqrt, kSquare, kAbs, kSign, kTanh, kSigmoid,
  kRelu, kFloor, kCeil, kReciprocal, kInvalid,
};

enum class BinaryEwise : uint8_t {
  kAdd, kSub, kMul, kDiv, kFloorDiv, kMod, kPow, kMaximum, kMinimum,
  kSquaredDifference, kInvalid,
};

inline UnaryEwise UnaryEwiseFromOp(const std::string& op) {
  if (op == "Neg") return UnaryEwise::kNeg;
  if (op == "Exp") return UnaryEwise::kExp;
  if (op == "Log") return UnaryEwise::kLog;
  if (op == "Sqrt") return UnaryEwise::kSqrt;
  if (op == "Rsqrt") return UnaryEwise::kRsqrt;
  if (op == "Square") return UnaryEwise::kSquare;
  if (op == "Abs") return UnaryEwise::kAbs;
  if (op == "Sign") return UnaryEwise::kSign;
  if (op == "Tanh") return UnaryEwise::kTanh;
  if (op == "Sigmoid") return UnaryEwise::kSigmoid;
  if (op == "Relu") return UnaryEwise::kRelu;
  if (op == "Floor") return UnaryEwise::kFloor;
  if (op == "Ceil") return UnaryEwise::kCeil;
  if (op == "Reciprocal") return UnaryEwise::kReciprocal;
  return UnaryEwise::kInvalid;
}

inline BinaryEwise BinaryEwiseFromOp(const std::string& op) {
  if (op == "Add") return BinaryEwise::kAdd;
  if (op == "Sub") return BinaryEwise::kSub;
  if (op == "Mul") return BinaryEwise::kMul;
  if (op == "Div") return BinaryEwise::kDiv;
  if (op == "FloorDiv") return BinaryEwise::kFloorDiv;
  if (op == "Mod") return BinaryEwise::kMod;
  if (op == "Pow") return BinaryEwise::kPow;
  if (op == "Maximum") return BinaryEwise::kMaximum;
  if (op == "Minimum") return BinaryEwise::kMinimum;
  if (op == "SquaredDifference") return BinaryEwise::kSquaredDifference;
  return BinaryEwise::kInvalid;
}

template <typename T>
inline T ApplyUnaryEwise(UnaryEwise op, T x) {
  switch (op) {
    case UnaryEwise::kNeg: return NegFunc::Run<T>(x);
    case UnaryEwise::kExp: return ExpFunc::Run<T>(x);
    case UnaryEwise::kLog: return LogFunc::Run<T>(x);
    case UnaryEwise::kSqrt: return SqrtFunc::Run<T>(x);
    case UnaryEwise::kRsqrt: return RsqrtFunc::Run<T>(x);
    case UnaryEwise::kSquare: return SquareFunc::Run<T>(x);
    case UnaryEwise::kAbs: return AbsFunc::Run<T>(x);
    case UnaryEwise::kSign: return SignFunc::Run<T>(x);
    case UnaryEwise::kTanh: return TanhFunc::Run<T>(x);
    case UnaryEwise::kSigmoid: return SigmoidFunc::Run<T>(x);
    case UnaryEwise::kRelu: return ReluFunc::Run<T>(x);
    case UnaryEwise::kFloor: return FloorFunc::Run<T>(x);
    case UnaryEwise::kCeil: return CeilFunc::Run<T>(x);
    case UnaryEwise::kReciprocal: return ReciprocalFunc::Run<T>(x);
    case UnaryEwise::kInvalid: break;
  }
  return x;
}

template <typename T>
inline T ApplyBinaryEwise(BinaryEwise op, T x, T y) {
  switch (op) {
    case BinaryEwise::kAdd: return AddFunc::Run<T>(x, y);
    case BinaryEwise::kSub: return SubFunc::Run<T>(x, y);
    case BinaryEwise::kMul: return MulFunc::Run<T>(x, y);
    case BinaryEwise::kDiv: return DivFunc::Run<T>(x, y);
    case BinaryEwise::kFloorDiv: return FloorDivFunc::Run<T>(x, y);
    case BinaryEwise::kMod: return ModFunc::Run<T>(x, y);
    case BinaryEwise::kPow: return PowFunc::Run<T>(x, y);
    case BinaryEwise::kMaximum: return MaximumFunc::Run<T>(x, y);
    case BinaryEwise::kMinimum: return MinimumFunc::Run<T>(x, y);
    case BinaryEwise::kSquaredDifference:
      return SquaredDifferenceFunc::Run<T>(x, y);
    case BinaryEwise::kInvalid: break;
  }
  return x;
}

}  // namespace tfrepro

#endif  // TFREPRO_KERNELS_ELEMENTWISE_FUNCTORS_H_
