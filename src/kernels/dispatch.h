// Type-dispatch helpers shared by kernels. Each operation registers one
// kernel per device type and dispatches on the runtime DataType internally.

#ifndef TFREPRO_KERNELS_DISPATCH_H_
#define TFREPRO_KERNELS_DISPATCH_H_

#include <cstdint>

#include "core/status.h"
#include "core/tensor.h"
#include "core/types.h"

namespace tfrepro {

// Invokes f(T{}) for the numeric C++ type matching `dt`.
template <typename F>
Status NumericDispatch(DataType dt, F&& f) {
  switch (BaseType(dt)) {
    case DataType::kFloat:
      f(float{});
      return Status::OK();
    case DataType::kDouble:
      f(double{});
      return Status::OK();
    case DataType::kInt32:
      f(int32_t{});
      return Status::OK();
    case DataType::kInt64:
      f(int64_t{});
      return Status::OK();
    case DataType::kUint8:
      f(uint8_t{});
      return Status::OK();
    default:
      return Unimplemented(std::string("unsupported numeric dtype ") +
                           DataTypeName(dt));
  }
}

// As NumericDispatch but restricted to floating types.
template <typename F>
Status FloatDispatch(DataType dt, F&& f) {
  switch (BaseType(dt)) {
    case DataType::kFloat:
      f(float{});
      return Status::OK();
    case DataType::kDouble:
      f(double{});
      return Status::OK();
    default:
      return Unimplemented(std::string("unsupported floating dtype ") +
                           DataTypeName(dt));
  }
}

// Numeric + bool + string (ops like Identity, Concat, Gather move any type).
template <typename F>
Status AnyTypeDispatch(DataType dt, F&& f) {
  switch (BaseType(dt)) {
    case DataType::kBool:
      f(bool{});
      return Status::OK();
    default:
      return NumericDispatch(dt, std::forward<F>(f));
  }
}

// Index types for Gather/Scatter/segment ops.
template <typename F>
Status IndexDispatch(DataType dt, F&& f) {
  switch (BaseType(dt)) {
    case DataType::kInt32:
      f(int32_t{});
      return Status::OK();
    case DataType::kInt64:
      f(int64_t{});
      return Status::OK();
    default:
      return InvalidArgument(std::string("indices must be int32/int64, got ") +
                             DataTypeName(dt));
  }
}

}  // namespace tfrepro

#endif  // TFREPRO_KERNELS_DISPATCH_H_
