// Sparse-access kernels (paper §4.2): Gather extracts rows from a large
// (possibly sharded) tensor; DynamicPartition/DynamicStitch route per-shard
// index sets and reassemble results; UnsortedSegmentSum builds the sparse
// gradient of Gather.

#include <cstring>

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

class GatherOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor params = ctx->input(0);
    Tensor indices = ctx->input(1);
    OP_REQUIRES(ctx, params.shape().rank() >= 1,
                InvalidArgument("Gather params must have rank >= 1"));
    int64_t rows = params.dim(0);
    int64_t row_elems =
        rows == 0 ? 0 : params.num_elements() / rows;
    TensorShape out_shape = indices.shape();
    for (int d = 1; d < params.shape().rank(); ++d) {
      out_shape.AddDim(params.dim(d));
    }
    Tensor out(BaseType(params.dtype()), out_shape);
    Status index_status;
    Status dispatch_status;
    OP_REQUIRES_OK(ctx, AnyTypeDispatch(params.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* p = params.data<T>();
      T* o = out.data<T>();
      dispatch_status = IndexDispatch(indices.dtype(), [&](auto itag) {
        using I = decltype(itag);
        const I* idx = indices.data<I>();
        for (int64_t i = 0; i < indices.num_elements(); ++i) {
          if (idx[i] < 0 || idx[i] >= rows) {
            index_status = OutOfRange(
                "Gather index " + std::to_string(idx[i]) +
                " out of range [0, " + std::to_string(rows) + ")");
            return;
          }
          std::memcpy(o + i * row_elems, p + idx[i] * row_elems,
                      row_elems * sizeof(T));
        }
      });
    }));
    if (index_status.ok()) index_status = dispatch_status;
    OP_REQUIRES_OK(ctx, index_status);
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Gather", kDeviceCpu, GatherOp);

class DynamicPartitionOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor data = ctx->input(0);
    Tensor partitions = ctx->input(1);
    int num_partitions = num_outputs();
    OP_REQUIRES(ctx, partitions.shape().rank() == 1,
                InvalidArgument("DynamicPartition supports vector partitions"));
    OP_REQUIRES(ctx,
                data.shape().rank() >= 1 &&
                    data.dim(0) == partitions.dim(0),
                InvalidArgument("DynamicPartition data/partitions mismatch"));
    int64_t n = partitions.dim(0);
    int64_t row_elems = n == 0 ? 0 : data.num_elements() / std::max<int64_t>(n, 1);

    std::vector<std::vector<int64_t>> buckets(num_partitions);
    for (int64_t i = 0; i < n; ++i) {
      int32_t p = partitions.flat<int32_t>(i);
      OP_REQUIRES(ctx, p >= 0 && p < num_partitions,
                  InvalidArgument("partition id " + std::to_string(p) +
                                  " out of range"));
      buckets[p].push_back(i);
    }
    OP_REQUIRES_OK(ctx, AnyTypeDispatch(data.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* dp = data.data<T>();
      for (int p = 0; p < num_partitions; ++p) {
        TensorShape shape = data.shape();
        shape.set_dim(0, static_cast<int64_t>(buckets[p].size()));
        Tensor out(BaseType(data.dtype()), shape);
        T* o = out.data<T>();
        for (size_t j = 0; j < buckets[p].size(); ++j) {
          std::memcpy(o + j * row_elems, dp + buckets[p][j] * row_elems,
                      row_elems * sizeof(T));
        }
        ctx->set_output(p, std::move(out));
      }
    }));
  }
};
REGISTER_KERNEL("DynamicPartition", kDeviceCpu, DynamicPartitionOp);

class DynamicStitchOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    int n = ctx->num_inputs() / 2;
    // Inputs: indices[0..n), data[n..2n).
    int64_t max_index = -1;
    for (int i = 0; i < n; ++i) {
      Tensor idx = ctx->input(i);
      for (int64_t j = 0; j < idx.num_elements(); ++j) {
        max_index = std::max<int64_t>(max_index, idx.flat<int32_t>(j));
      }
    }
    int64_t out_rows = max_index + 1;
    Tensor first_data = ctx->input(n);
    OP_REQUIRES(ctx, first_data.shape().rank() >= 1,
                InvalidArgument("DynamicStitch data must have rank >= 1"));
    TensorShape row_shape = first_data.shape();
    row_shape.RemoveDim(0);
    int64_t row_elems = row_shape.num_elements();
    TensorShape out_shape = row_shape;
    out_shape.InsertDim(0, out_rows);
    Tensor out(BaseType(first_data.dtype()), out_shape);
    OP_REQUIRES_OK(ctx, AnyTypeDispatch(first_data.dtype(), [&](auto tag) {
      using T = decltype(tag);
      T* o = out.data<T>();
      for (int i = 0; i < n; ++i) {
        Tensor idx = ctx->input(i);
        Tensor data = ctx->input(n + i);
        const T* dp = data.data<T>();
        for (int64_t j = 0; j < idx.num_elements(); ++j) {
          int64_t dst = idx.flat<int32_t>(j);
          std::memcpy(o + dst * row_elems, dp + j * row_elems,
                      row_elems * sizeof(T));
        }
      }
    }));
    for (int i = 0; i < n; ++i) {
      Tensor idx = ctx->input(i);
      Tensor data = ctx->input(n + i);
      OP_REQUIRES(ctx, data.shape().rank() >= 1 &&
                           data.dim(0) == idx.num_elements(),
                  InvalidArgument("DynamicStitch data/indices mismatch"));
    }
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("DynamicStitch", kDeviceCpu, DynamicStitchOp);

class UnsortedSegmentSumOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor data = ctx->input(0);
    Tensor segment_ids = ctx->input(1);
    int32_t num_segments = *ctx->input(2).data<int32_t>();
    OP_REQUIRES(ctx, num_segments >= 0,
                InvalidArgument("num_segments must be >= 0"));
    OP_REQUIRES(ctx,
                data.shape().rank() >= 1 &&
                    segment_ids.num_elements() == data.dim(0),
                InvalidArgument("UnsortedSegmentSum ids/data mismatch"));
    int64_t rows = data.dim(0);
    int64_t row_elems = rows == 0 ? 0 : data.num_elements() / rows;
    TensorShape out_shape = data.shape();
    out_shape.set_dim(0, num_segments);
    Tensor out(BaseType(data.dtype()), out_shape);  // zero-filled
    Status index_status;
    Status dispatch_status;
    OP_REQUIRES_OK(ctx, NumericDispatch(data.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* dp = data.data<T>();
      T* o = out.data<T>();
      dispatch_status = IndexDispatch(segment_ids.dtype(), [&](auto itag) {
        using I = decltype(itag);
        const I* ids = segment_ids.data<I>();
        for (int64_t r = 0; r < rows; ++r) {
          I seg = ids[r];
          if (seg < 0 || seg >= num_segments) {
            index_status = OutOfRange("segment id " + std::to_string(seg) +
                                      " out of range");
            return;
          }
          for (int64_t j = 0; j < row_elems; ++j) {
            o[seg * row_elems + j] += dp[r * row_elems + j];
          }
        }
      });
    }));
    if (index_status.ok()) index_status = dispatch_status;
    OP_REQUIRES_OK(ctx, index_status);
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("UnsortedSegmentSum", kDeviceCpu, UnsortedSegmentSumOp);

}  // namespace
}  // namespace tfrepro
