// Dataset op kernels (paper Figure 1: Reader/preprocessing stages in the
// graph). Dataset creation ops build their dataset lazily at first Compute
// — upstream handle inputs only resolve then — publish a DatasetResource
// under node_name/shared_name, and output a string handle. IteratorGetNext
// keeps its iterator in the device resource manager (IteratorResource,
// keyed "<handle>/iterator"): stream position belongs to the device, so it
// persists across steps and across sessions sharing the device (two
// MasterSessions over one in-process cluster continue a single stream).
// The iterator is cancelled when the resource manager is torn down with
// its device, which unblocks producers parked on full buffers (the
// teardown path the queue-cancellation satellite wires through
// QueueResource::CancelAll / Close).

#include "data/dataset.h"
#include "runtime/device.h"

namespace tfrepro {
namespace {

using data::DatasetBase;
using data::DatasetResource;

class DatasetOpKernel : public OpKernel {
 public:
  explicit DatasetOpKernel(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetStringAttr("shared_name", &shared_name_));
  }

  void Compute(OpKernelContext* ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!created_) {
      std::shared_ptr<DatasetBase> dataset;
      OP_REQUIRES_OK(ctx, CreateDataset(ctx, &dataset));
      const std::string resource_name =
          shared_name_.empty() ? name() : shared_name_;
      Status s = ctx->device()->resource_mgr()->Create(
          resource_name, std::make_shared<DatasetResource>(dataset));
      if (s.code() == Code::kAlreadyExists) {
        // Sharing by name, or a second session re-running the same node on
        // a shared device: reuse the published dataset (one stream).
        s = Status::OK();
      }
      OP_REQUIRES_OK(ctx, s);
      handle_ = Tensor::Scalar(resource_name);
      created_ = true;
    }
    ctx->set_output(0, handle_);
  }

  bool IsExpensive() const override { return false; }

 protected:
  virtual Status CreateDataset(OpKernelContext* ctx,
                               std::shared_ptr<DatasetBase>* out) = 0;

 private:
  std::string shared_name_;
  std::mutex mu_;
  bool created_ = false;
  Tensor handle_;
};

class RecordFileDatasetOp : public DatasetOpKernel {
 public:
  explicit RecordFileDatasetOp(OpKernelConstruction* ctx)
      : DatasetOpKernel(ctx) {
    ctx->SetStatus(ctx->GetStringListAttr("filenames", &filenames_));
  }

 protected:
  Status CreateDataset(OpKernelContext* ctx,
                       std::shared_ptr<DatasetBase>* out) override {
    auto d = data::NewRecordFileDataset(filenames_);
    if (!d.ok()) return d.status();
    *out = std::move(d.value());
    return Status::OK();
  }

 private:
  std::vector<std::string> filenames_;
};
REGISTER_KERNEL("RecordFileDataset", kDeviceCpu, RecordFileDatasetOp);

class ParallelMapDatasetOp : public DatasetOpKernel {
 public:
  explicit ParallelMapDatasetOp(OpKernelConstruction* ctx)
      : DatasetOpKernel(ctx) {
    ctx->SetStatus(ctx->GetStringAttr("map_fn", &map_fn_));
    ctx->SetStatus(ctx->GetIntAttr("parallelism", &parallelism_));
    ctx->SetStatus(ctx->GetTypeListAttr("output_types", &output_types_));
  }

 protected:
  Status CreateDataset(OpKernelContext* ctx,
                       std::shared_ptr<DatasetBase>* out) override {
    auto input = data::LookupDataset(ctx, 0);
    if (!input.ok()) return input.status();
    auto d = data::NewParallelMapDataset(input.value(), map_fn_,
                                         static_cast<int>(parallelism_),
                                         output_types_);
    if (!d.ok()) return d.status();
    *out = std::move(d.value());
    return Status::OK();
  }

 private:
  std::string map_fn_;
  int64_t parallelism_ = 4;
  DataTypeVector output_types_;
};
REGISTER_KERNEL("ParallelMapDataset", kDeviceCpu, ParallelMapDatasetOp);

class ShuffleDatasetOp : public DatasetOpKernel {
 public:
  explicit ShuffleDatasetOp(OpKernelConstruction* ctx) : DatasetOpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("buffer_size", &buffer_size_));
    ctx->SetStatus(ctx->GetIntAttr("seed", &seed_));
  }

 protected:
  Status CreateDataset(OpKernelContext* ctx,
                       std::shared_ptr<DatasetBase>* out) override {
    auto input = data::LookupDataset(ctx, 0);
    if (!input.ok()) return input.status();
    auto d = data::NewShuffleDataset(input.value(), buffer_size_,
                                     static_cast<uint64_t>(seed_));
    if (!d.ok()) return d.status();
    *out = std::move(d.value());
    return Status::OK();
  }

 private:
  int64_t buffer_size_ = 0;
  int64_t seed_ = 0;
};
REGISTER_KERNEL("ShuffleDataset", kDeviceCpu, ShuffleDatasetOp);

class RepeatDatasetOp : public DatasetOpKernel {
 public:
  explicit RepeatDatasetOp(OpKernelConstruction* ctx) : DatasetOpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("count", &count_));
  }

 protected:
  Status CreateDataset(OpKernelContext* ctx,
                       std::shared_ptr<DatasetBase>* out) override {
    auto input = data::LookupDataset(ctx, 0);
    if (!input.ok()) return input.status();
    auto d = data::NewRepeatDataset(input.value(), count_);
    if (!d.ok()) return d.status();
    *out = std::move(d.value());
    return Status::OK();
  }

 private:
  int64_t count_ = -1;
};
REGISTER_KERNEL("RepeatDataset", kDeviceCpu, RepeatDatasetOp);

class BatchDatasetOp : public DatasetOpKernel {
 public:
  explicit BatchDatasetOp(OpKernelConstruction* ctx) : DatasetOpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("batch_size", &batch_size_));
    ctx->SetStatus(ctx->GetBoolAttr("drop_remainder", &drop_remainder_));
  }

 protected:
  Status CreateDataset(OpKernelContext* ctx,
                       std::shared_ptr<DatasetBase>* out) override {
    auto input = data::LookupDataset(ctx, 0);
    if (!input.ok()) return input.status();
    auto d = data::NewBatchDataset(input.value(), batch_size_, drop_remainder_);
    if (!d.ok()) return d.status();
    *out = std::move(d.value());
    return Status::OK();
  }

 private:
  int64_t batch_size_ = 0;
  bool drop_remainder_ = false;
};
REGISTER_KERNEL("BatchDataset", kDeviceCpu, BatchDatasetOp);

class PrefetchDatasetOp : public DatasetOpKernel {
 public:
  explicit PrefetchDatasetOp(OpKernelConstruction* ctx)
      : DatasetOpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("buffer_size", &buffer_size_));
  }

 protected:
  Status CreateDataset(OpKernelContext* ctx,
                       std::shared_ptr<DatasetBase>* out) override {
    auto input = data::LookupDataset(ctx, 0);
    if (!input.ok()) return input.status();
    auto d = data::NewPrefetchDataset(input.value(), buffer_size_);
    if (!d.ok()) return d.status();
    *out = std::move(d.value());
    return Status::OK();
  }

 private:
  int64_t buffer_size_ = 2;
};
REGISTER_KERNEL("PrefetchDataset", kDeviceCpu, PrefetchDatasetOp);

// Pulls one element per invocation. GetNext may block the calling pool
// thread (e.g. an empty prefetch buffer); that is safe against deadlock —
// every dataset's internal production runs on private threads/pools, never
// on the session pool — but pulls are serialized across concurrent steps
// by iter_mu_, so one graph's input order is well-defined.
class IteratorGetNextOp : public AsyncOpKernel {
 public:
  explicit IteratorGetNextOp(OpKernelConstruction* ctx) : AsyncOpKernel(ctx) {
    ctx->SetStatus(ctx->GetTypeListAttr("output_types", &output_types_));
  }

  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    std::shared_ptr<data::IteratorResource> res;
    {
      std::lock_guard<std::mutex> lock(init_mu_);
      if (resource_ == nullptr) {
        Tensor handle = ctx->input(0);
        OP_REQUIRES_ASYNC(ctx,
                          BaseType(handle.dtype()) == DataType::kString &&
                              handle.num_elements() >= 1,
                          InvalidArgument("dataset handle must be a string"),
                          done);
        const std::string key = handle.str(0) + "/iterator";
        auto* rm = ctx->device()->resource_mgr();
        auto found = rm->Lookup<data::IteratorResource>(key);
        if (!found.ok()) {
          auto dataset = data::LookupDataset(ctx, 0);
          OP_REQUIRES_OK_ASYNC(ctx, dataset.status(), done);
          auto it = dataset.value()->MakeIterator();
          OP_REQUIRES_OK_ASYNC(ctx, it.status(), done);
          Status create = rm->Create(
              key,
              std::make_shared<data::IteratorResource>(std::move(it.value())));
          // kAlreadyExists: another kernel published first; use theirs.
          if (!create.ok() && create.code() != Code::kAlreadyExists) {
            OP_REQUIRES_OK_ASYNC(ctx, create, done);
          }
          found = rm->Lookup<data::IteratorResource>(key);
          OP_REQUIRES_OK_ASYNC(ctx, found.status(), done);
        }
        resource_ = found.value();
      }
      res = resource_;
    }
    std::lock_guard<std::mutex> lock(res->mu);
    data::IteratorContext ictx;
    ictx.cancellation = ctx->cancellation();
    data::Element element;
    bool end_of_sequence = false;
    Status s = res->iterator->GetNext(&ictx, &element, &end_of_sequence);
    OP_REQUIRES_OK_ASYNC(ctx, s, done);
    if (end_of_sequence) {
      ctx->SetStatus(OutOfRange("end of sequence"));
      done();
      return;
    }
    OP_REQUIRES_ASYNC(
        ctx, static_cast<int>(element.size()) == ctx->num_outputs(),
        InvalidArgument("iterator produced " + std::to_string(element.size()) +
                        " components, op expects " +
                        std::to_string(ctx->num_outputs())),
        done);
    for (int i = 0; i < ctx->num_outputs(); ++i) {
      ctx->set_output(i, std::move(element[i]));
    }
    done();
  }

 private:
  DataTypeVector output_types_;
  std::mutex init_mu_;
  std::shared_ptr<data::IteratorResource> resource_;
};
REGISTER_KERNEL("IteratorGetNext", kDeviceCpu, IteratorGetNextOp);

}  // namespace
}  // namespace tfrepro
