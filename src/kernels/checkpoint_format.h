// On-disk checkpoint format used by the Save/Restore kernels (paper §4.3).
// Layout: magic, entry count, then (name, serialized tensor) pairs.

#ifndef TFREPRO_KERNELS_CHECKPOINT_FORMAT_H_
#define TFREPRO_KERNELS_CHECKPOINT_FORMAT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"

namespace tfrepro {

Status WriteCheckpoint(const std::string& filename,
                       const std::vector<std::pair<std::string, Tensor>>& entries);

// Reads one named tensor from a checkpoint file.
Result<Tensor> ReadCheckpointTensor(const std::string& filename,
                                    const std::string& tensor_name);

// Lists the tensor names stored in a checkpoint file.
Result<std::vector<std::string>> ListCheckpointTensors(
    const std::string& filename);

}  // namespace tfrepro

#endif  // TFREPRO_KERNELS_CHECKPOINT_FORMAT_H_
