// Queue kernels: FIFOQueue / RandomShuffleQueue creation, enqueue, dequeue
// (single, batched, and staleness-filtered), size, and close (paper §3.1,
// §4.4).

#include "core/metrics.h"
#include "kernels/queue.h"
#include "runtime/device.h"
#include "runtime/tracing.h"

namespace tfrepro {
namespace {

template <bool Shuffle>
class QueueCreationOp : public OpKernel {
 public:
  explicit QueueCreationOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    DataTypeVector component_types;
    ctx->SetStatus(ctx->GetTypeListAttr("component_types", &component_types));
    int64_t capacity = -1;
    ctx->SetStatus(ctx->GetIntAttr("capacity", &capacity));
    int64_t min_after_dequeue = 0;
    int64_t seed = 0;
    if (Shuffle) {
      ctx->SetStatus(ctx->GetIntAttr("min_after_dequeue", &min_after_dequeue));
      ctx->SetStatus(ctx->GetIntAttr("seed", &seed));
    }
    std::string shared_name;
    ctx->SetStatus(ctx->GetStringAttr("shared_name", &shared_name));
    resource_name_ =
        shared_name.empty() ? ctx->node_name() : shared_name;

    queue_ = std::make_shared<QueueResource>(
        std::move(component_types), capacity, min_after_dequeue,
        static_cast<uint64_t>(seed == 0 ? 0x51F0E9B5 : seed), Shuffle);
    // Publish in the device resource manager so handle consumers find it.
    Status s = ctx->device()->resource_mgr()->Create(resource_name_, queue_);
    if (s.code() == Code::kAlreadyExists && !shared_name.empty()) {
      // Sharing an existing queue by name is allowed.
      Result<std::shared_ptr<QueueResource>> existing =
          ctx->device()->resource_mgr()->Lookup<QueueResource>(resource_name_);
      if (existing.ok()) {
        queue_ = existing.value();
        s = Status::OK();
      }
    }
    ctx->SetStatus(s);

    handle_ = Tensor(DataType::kString, TensorShape({2}));
    handle_.str(0) = resource_name_;
    handle_.str(1) = resource_name_;
  }

  void Compute(OpKernelContext* ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    ctx->set_output_ref(0, &mu_, &handle_);
  }
  bool IsExpensive() const override { return false; }

 private:
  std::string resource_name_;
  std::shared_ptr<QueueResource> queue_;
  std::mutex mu_;
  Tensor handle_;
};
REGISTER_KERNEL("FIFOQueue", kDeviceCpu, QueueCreationOp<false>);
REGISTER_KERNEL("RandomShuffleQueue", kDeviceCpu, QueueCreationOp<true>);

// Enqueue a single tuple (or, for EnqueueMany, dim-0 slices of the inputs).
template <bool Many>
class QueueEnqueueOp : public AsyncOpKernel {
 public:
  using AsyncOpKernel::AsyncOpKernel;

  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK_ASYNC(ctx, queue.status(), done);
    if (!Many) {
      QueueResource::Tuple tuple;
      for (int i = 1; i < ctx->num_inputs(); ++i) {
        tuple.push_back(ctx->input(i));
      }
      queue.value()->TryEnqueue(std::move(tuple), ctx->cancellation(),
                                [ctx, done](const Status& s) {
                                  ctx->SetStatus(s);
                                  done();
                                });
      return;
    }
    // EnqueueMany: split each component along dim 0 into rows.
    int64_t rows = -1;
    std::vector<Tensor> components;
    for (int i = 1; i < ctx->num_inputs(); ++i) {
      Tensor t = ctx->input(i);
      OP_REQUIRES_ASYNC(ctx, t.shape().rank() >= 1,
                        InvalidArgument("EnqueueMany components need rank>=1"),
                        done);
      if (rows < 0) rows = t.dim(0);
      OP_REQUIRES_ASYNC(ctx, t.dim(0) == rows,
                        InvalidArgument("EnqueueMany dim0 mismatch"), done);
      components.push_back(t);
    }
    if (rows <= 0) {
      done();
      return;
    }
    // Chain the row enqueues; completes when the last row lands.
    EnqueueRows(ctx, std::move(done), queue.value(), std::move(components), 0,
                rows);
  }

 private:
  void EnqueueRows(OpKernelContext* ctx, DoneCallback done,
                   std::shared_ptr<QueueResource> queue,
                   std::vector<Tensor> components, int64_t row, int64_t rows) {
    QueueResource::Tuple tuple;
    for (Tensor& c : components) {
      Result<Tensor> slice = c.SliceRows(row, 1);
      OP_REQUIRES_OK_ASYNC(ctx, slice.status(), done);
      TensorShape shape = slice.value().shape();
      shape.RemoveDim(0);
      Result<Tensor> squeezed = slice.value().Reshaped(shape);
      OP_REQUIRES_OK_ASYNC(ctx, squeezed.status(), done);
      tuple.push_back(std::move(squeezed).value());
    }
    auto queue_raw = queue.get();
    queue_raw->TryEnqueue(
        std::move(tuple), ctx->cancellation(),
        [this, ctx, done, queue = std::move(queue),
         components = std::move(components), row, rows](const Status& s) mutable {
          if (!s.ok()) {
            ctx->SetStatus(s);
            done();
            return;
          }
          if (row + 1 == rows) {
            done();
            return;
          }
          EnqueueRows(ctx, std::move(done), std::move(queue),
                      std::move(components), row + 1, rows);
        });
  }
};
REGISTER_KERNEL("QueueEnqueue", kDeviceCpu, QueueEnqueueOp<false>);
REGISTER_KERNEL("QueueEnqueueMany", kDeviceCpu, QueueEnqueueOp<true>);

class QueueDequeueOp : public AsyncOpKernel {
 public:
  using AsyncOpKernel::AsyncOpKernel;
  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK_ASYNC(ctx, queue.status(), done);
    queue.value()->TryDequeue(
        1, /*batched=*/false, ctx->cancellation(),
        [ctx, done](const Status& s, const QueueResource::Tuple& tuple) {
          if (!s.ok()) {
            ctx->SetStatus(s);
          } else {
            for (size_t i = 0; i < tuple.size(); ++i) {
              ctx->set_output(static_cast<int>(i), tuple[i]);
            }
          }
          done();
        });
  }
};
REGISTER_KERNEL("QueueDequeue", kDeviceCpu, QueueDequeueOp);

class QueueDequeueManyOp : public AsyncOpKernel {
 public:
  using AsyncOpKernel::AsyncOpKernel;
  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK_ASYNC(ctx, queue.status(), done);
    int32_t n = *ctx->input(1).data<int32_t>();
    OP_REQUIRES_ASYNC(ctx, n >= 0,
                      InvalidArgument("DequeueMany count must be >= 0"), done);
    queue.value()->TryDequeue(
        n, /*batched=*/true, ctx->cancellation(),
        [ctx, done](const Status& s, const QueueResource::Tuple& tuple) {
          if (!s.ok()) {
            ctx->SetStatus(s);
          } else {
            for (size_t i = 0; i < tuple.size(); ++i) {
              ctx->set_output(static_cast<int>(i), tuple[i]);
            }
          }
          done();
        });
  }
};
REGISTER_KERNEL("QueueDequeueMany", kDeviceCpu, QueueDequeueManyOp);

// Staleness-filtered batched dequeue (§4.4 "first m of n"): component 0 of
// every tuple is an int64 step tag stamped by the producer (StepId).
// Tuples tagged below the queue's stale floor were produced for a step
// that has since been superseded — they are dropped (grad.stale_dropped)
// instead of aggregated. After `n` fresh tuples are collected the floor
// advances to the calling step's id, so a delayed worker's gradient from
// an earlier step can never contaminate a later aggregate.
class QueueDequeueFreshManyOp : public AsyncOpKernel {
 public:
  using AsyncOpKernel::AsyncOpKernel;
  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK_ASYNC(ctx, queue.status(), done);
    int32_t n = *ctx->input(1).data<int32_t>();
    OP_REQUIRES_ASYNC(
        ctx, n >= 1, InvalidArgument("DequeueFreshMany count must be >= 1"),
        done);
    auto state = std::make_shared<FreshState>();
    state->ctx = ctx;
    state->done = std::move(done);
    state->queue = queue.value();
    state->n = n;
    DequeueNext(state);
  }

 private:
  struct FreshState {
    OpKernelContext* ctx;
    DoneCallback done;
    std::shared_ptr<QueueResource> queue;
    int64_t n = 0;
    std::vector<QueueResource::Tuple> rows;
  };

  // Pulls tuples one at a time so stale ones can be discarded between
  // pulls; a blocked pull parks in the queue, never on a pool thread.
  void DequeueNext(std::shared_ptr<FreshState> state) {
    QueueResource* queue = state->queue.get();
    queue->TryDequeue(
        1, /*batched=*/false, state->ctx->cancellation(),
        [this, state](const Status& s, const QueueResource::Tuple& tuple) {
          OpKernelContext* ctx = state->ctx;
          if (!s.ok()) {
            ctx->SetStatus(s);
            state->done();
            return;
          }
          if (tuple.empty() || tuple[0].dtype() != DataType::kInt64 ||
              tuple[0].num_elements() != 1) {
            ctx->SetStatus(InvalidArgument(
                "QueueDequeueFreshMany requires an int64 scalar step tag "
                "as tuple component 0"));
            state->done();
            return;
          }
          const int64_t tag = *tuple[0].data<int64_t>();
          const int64_t floor = state->queue->stale_floor();
          if (tag < floor) {
            metrics::Registry::Global()
                ->GetCounter("grad.stale_dropped")
                ->Increment();
            RecordGlobalInstant("grad.stale_dropped", name(),
                                {{"tag", std::to_string(tag)},
                                 {"floor", std::to_string(floor)},
                                 {"step_id",
                                  std::to_string(ctx->step_id())}});
            DequeueNext(state);
            return;
          }
          state->rows.push_back(tuple);
          if (static_cast<int64_t>(state->rows.size()) < state->n) {
            DequeueNext(state);
            return;
          }
          // n fresh tuples collected: this step's aggregate is committed,
          // so every tag issued at or before this step — including a
          // delayed backup worker's contribution to *this* step that
          // arrives after the cut — is now superseded.
          state->queue->set_stale_floor(ctx->step_id() + 1);
          QueueResource::Tuple stacked =
              QueueResource::StackRows(state->rows);
          for (size_t i = 0; i < stacked.size(); ++i) {
            ctx->set_output(static_cast<int>(i), stacked[i]);
          }
          state->done();
        });
  }
};
REGISTER_KERNEL("QueueDequeueFreshMany", kDeviceCpu, QueueDequeueFreshManyOp);

class QueueSizeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK(ctx, queue.status());
    ctx->set_output(
        0, Tensor::Scalar(static_cast<int32_t>(queue.value()->Size())));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("QueueSize", kDeviceCpu, QueueSizeOp);

class QueueCloseOp : public OpKernel {
 public:
  explicit QueueCloseOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(
        ctx->GetBoolAttr("cancel_pending_enqueues", &cancel_pending_));
  }
  void Compute(OpKernelContext* ctx) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK(ctx, queue.status());
    queue.value()->Close(cancel_pending_);
  }
  bool IsExpensive() const override { return false; }

 private:
  bool cancel_pending_ = false;
};
REGISTER_KERNEL("QueueClose", kDeviceCpu, QueueCloseOp);

}  // namespace
}  // namespace tfrepro
