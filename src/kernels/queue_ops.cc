// Queue kernels: FIFOQueue / RandomShuffleQueue creation, enqueue, dequeue
// (single and batched), size, and close (paper §3.1, §4.4).

#include "kernels/queue.h"
#include "runtime/device.h"

namespace tfrepro {
namespace {

template <bool Shuffle>
class QueueCreationOp : public OpKernel {
 public:
  explicit QueueCreationOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    DataTypeVector component_types;
    ctx->SetStatus(ctx->GetTypeListAttr("component_types", &component_types));
    int64_t capacity = -1;
    ctx->SetStatus(ctx->GetIntAttr("capacity", &capacity));
    int64_t min_after_dequeue = 0;
    int64_t seed = 0;
    if (Shuffle) {
      ctx->SetStatus(ctx->GetIntAttr("min_after_dequeue", &min_after_dequeue));
      ctx->SetStatus(ctx->GetIntAttr("seed", &seed));
    }
    std::string shared_name;
    ctx->SetStatus(ctx->GetStringAttr("shared_name", &shared_name));
    resource_name_ =
        shared_name.empty() ? ctx->node_name() : shared_name;

    queue_ = std::make_shared<QueueResource>(
        std::move(component_types), capacity, min_after_dequeue,
        static_cast<uint64_t>(seed == 0 ? 0x51F0E9B5 : seed), Shuffle);
    // Publish in the device resource manager so handle consumers find it.
    Status s = ctx->device()->resource_mgr()->Create(resource_name_, queue_);
    if (s.code() == Code::kAlreadyExists && !shared_name.empty()) {
      // Sharing an existing queue by name is allowed.
      Result<std::shared_ptr<QueueResource>> existing =
          ctx->device()->resource_mgr()->Lookup<QueueResource>(resource_name_);
      if (existing.ok()) {
        queue_ = existing.value();
        s = Status::OK();
      }
    }
    ctx->SetStatus(s);

    handle_ = Tensor(DataType::kString, TensorShape({2}));
    handle_.str(0) = resource_name_;
    handle_.str(1) = resource_name_;
  }

  void Compute(OpKernelContext* ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    ctx->set_output_ref(0, &mu_, &handle_);
  }
  bool IsExpensive() const override { return false; }

 private:
  std::string resource_name_;
  std::shared_ptr<QueueResource> queue_;
  std::mutex mu_;
  Tensor handle_;
};
REGISTER_KERNEL("FIFOQueue", kDeviceCpu, QueueCreationOp<false>);
REGISTER_KERNEL("RandomShuffleQueue", kDeviceCpu, QueueCreationOp<true>);

// Enqueue a single tuple (or, for EnqueueMany, dim-0 slices of the inputs).
template <bool Many>
class QueueEnqueueOp : public AsyncOpKernel {
 public:
  using AsyncOpKernel::AsyncOpKernel;

  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK_ASYNC(ctx, queue.status(), done);
    if (!Many) {
      QueueResource::Tuple tuple;
      for (int i = 1; i < ctx->num_inputs(); ++i) {
        tuple.push_back(ctx->input(i));
      }
      queue.value()->TryEnqueue(std::move(tuple), ctx->cancellation(),
                                [ctx, done](const Status& s) {
                                  ctx->SetStatus(s);
                                  done();
                                });
      return;
    }
    // EnqueueMany: split each component along dim 0 into rows.
    int64_t rows = -1;
    std::vector<Tensor> components;
    for (int i = 1; i < ctx->num_inputs(); ++i) {
      Tensor t = ctx->input(i);
      OP_REQUIRES_ASYNC(ctx, t.shape().rank() >= 1,
                        InvalidArgument("EnqueueMany components need rank>=1"),
                        done);
      if (rows < 0) rows = t.dim(0);
      OP_REQUIRES_ASYNC(ctx, t.dim(0) == rows,
                        InvalidArgument("EnqueueMany dim0 mismatch"), done);
      components.push_back(t);
    }
    if (rows <= 0) {
      done();
      return;
    }
    // Chain the row enqueues; completes when the last row lands.
    EnqueueRows(ctx, std::move(done), queue.value(), std::move(components), 0,
                rows);
  }

 private:
  void EnqueueRows(OpKernelContext* ctx, DoneCallback done,
                   std::shared_ptr<QueueResource> queue,
                   std::vector<Tensor> components, int64_t row, int64_t rows) {
    QueueResource::Tuple tuple;
    for (Tensor& c : components) {
      Result<Tensor> slice = c.SliceRows(row, 1);
      OP_REQUIRES_OK_ASYNC(ctx, slice.status(), done);
      TensorShape shape = slice.value().shape();
      shape.RemoveDim(0);
      Result<Tensor> squeezed = slice.value().Reshaped(shape);
      OP_REQUIRES_OK_ASYNC(ctx, squeezed.status(), done);
      tuple.push_back(std::move(squeezed).value());
    }
    auto queue_raw = queue.get();
    queue_raw->TryEnqueue(
        std::move(tuple), ctx->cancellation(),
        [this, ctx, done, queue = std::move(queue),
         components = std::move(components), row, rows](const Status& s) mutable {
          if (!s.ok()) {
            ctx->SetStatus(s);
            done();
            return;
          }
          if (row + 1 == rows) {
            done();
            return;
          }
          EnqueueRows(ctx, std::move(done), std::move(queue),
                      std::move(components), row + 1, rows);
        });
  }
};
REGISTER_KERNEL("QueueEnqueue", kDeviceCpu, QueueEnqueueOp<false>);
REGISTER_KERNEL("QueueEnqueueMany", kDeviceCpu, QueueEnqueueOp<true>);

class QueueDequeueOp : public AsyncOpKernel {
 public:
  using AsyncOpKernel::AsyncOpKernel;
  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK_ASYNC(ctx, queue.status(), done);
    queue.value()->TryDequeue(
        1, /*batched=*/false, ctx->cancellation(),
        [ctx, done](const Status& s, const QueueResource::Tuple& tuple) {
          if (!s.ok()) {
            ctx->SetStatus(s);
          } else {
            for (size_t i = 0; i < tuple.size(); ++i) {
              ctx->set_output(static_cast<int>(i), tuple[i]);
            }
          }
          done();
        });
  }
};
REGISTER_KERNEL("QueueDequeue", kDeviceCpu, QueueDequeueOp);

class QueueDequeueManyOp : public AsyncOpKernel {
 public:
  using AsyncOpKernel::AsyncOpKernel;
  void ComputeAsync(OpKernelContext* ctx, DoneCallback done) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK_ASYNC(ctx, queue.status(), done);
    int32_t n = *ctx->input(1).data<int32_t>();
    OP_REQUIRES_ASYNC(ctx, n >= 0,
                      InvalidArgument("DequeueMany count must be >= 0"), done);
    queue.value()->TryDequeue(
        n, /*batched=*/true, ctx->cancellation(),
        [ctx, done](const Status& s, const QueueResource::Tuple& tuple) {
          if (!s.ok()) {
            ctx->SetStatus(s);
          } else {
            for (size_t i = 0; i < tuple.size(); ++i) {
              ctx->set_output(static_cast<int>(i), tuple[i]);
            }
          }
          done();
        });
  }
};
REGISTER_KERNEL("QueueDequeueMany", kDeviceCpu, QueueDequeueManyOp);

class QueueSizeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK(ctx, queue.status());
    ctx->set_output(
        0, Tensor::Scalar(static_cast<int32_t>(queue.value()->Size())));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("QueueSize", kDeviceCpu, QueueSizeOp);

class QueueCloseOp : public OpKernel {
 public:
  explicit QueueCloseOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(
        ctx->GetBoolAttr("cancel_pending_enqueues", &cancel_pending_));
  }
  void Compute(OpKernelContext* ctx) override {
    Result<std::shared_ptr<QueueResource>> queue = LookupQueue(ctx, 0);
    OP_REQUIRES_OK(ctx, queue.status());
    queue.value()->Close(cancel_pending_);
  }
  bool IsExpensive() const override { return false; }

 private:
  bool cancel_pending_ = false;
};
REGISTER_KERNEL("QueueClose", kDeviceCpu, QueueCloseOp);

}  // namespace
}  // namespace tfrepro
