// Array-manipulation kernels: shape queries, reshapes, concat/split/slice,
// transpose, tile, pack/unpack, pad, one-hot.

#include <cstring>

#include "kernels/dispatch.h"
#include "runtime/kernel.h"

namespace tfrepro {
namespace {

class ShapeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    Tensor out(DataType::kInt32, TensorShape({in.shape().rank()}));
    for (int i = 0; i < in.shape().rank(); ++i) {
      out.flat<int32_t>(i) = static_cast<int32_t>(in.dim(i));
    }
    ctx->set_output(0, std::move(out));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("Shape", kDeviceCpu, ShapeOp);

class RankOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    ctx->set_output(0, Tensor::Scalar(int32_t{ctx->input(0).shape().rank()}));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("Rank", kDeviceCpu, RankOp);

class SizeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    ctx->set_output(
        0, Tensor::Scalar(static_cast<int32_t>(ctx->input(0).num_elements())));
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("Size", kDeviceCpu, SizeOp);

class ReshapeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    Tensor shape_t = ctx->input(1);
    std::vector<int64_t> dims;
    int64_t known = 1;
    int infer = -1;
    for (int64_t i = 0; i < shape_t.num_elements(); ++i) {
      int64_t d = shape_t.flat<int32_t>(i);
      if (d == -1) {
        OP_REQUIRES(ctx, infer == -1,
                    InvalidArgument("Reshape: more than one -1 dimension"));
        infer = static_cast<int>(i);
        dims.push_back(1);
      } else {
        dims.push_back(d);
        known *= d;
      }
    }
    if (infer >= 0) {
      OP_REQUIRES(ctx, known != 0 && in.num_elements() % known == 0,
                  InvalidArgument("Reshape cannot infer -1 dimension"));
      dims[infer] = in.num_elements() / known;
    }
    Result<Tensor> out = in.Reshaped(TensorShape(dims));
    OP_REQUIRES_OK(ctx, out.status());
    ctx->set_output(0, std::move(out).value());
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("Reshape", kDeviceCpu, ReshapeOp);

class ExpandDimsOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    int32_t dim = *ctx->input(1).data<int32_t>();
    int rank = in.shape().rank();
    if (dim < 0) dim += rank + 1;
    OP_REQUIRES(ctx, dim >= 0 && dim <= rank,
                InvalidArgument("ExpandDims dim out of range"));
    TensorShape shape = in.shape();
    shape.InsertDim(dim, 1);
    Result<Tensor> out = in.Reshaped(shape);
    OP_REQUIRES_OK(ctx, out.status());
    ctx->set_output(0, std::move(out).value());
  }
  bool IsExpensive() const override { return false; }
};
REGISTER_KERNEL("ExpandDims", kDeviceCpu, ExpandDimsOp);

class SqueezeOp : public OpKernel {
 public:
  explicit SqueezeOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntListAttr("squeeze_dims", &squeeze_dims_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    TensorShape out_shape;
    for (int i = 0; i < in.shape().rank(); ++i) {
      bool listed = squeeze_dims_.empty();
      for (int64_t d : squeeze_dims_) {
        int64_t dd = d < 0 ? d + in.shape().rank() : d;
        if (dd == i) listed = true;
      }
      if (in.dim(i) == 1 && listed) continue;
      if (!squeeze_dims_.empty()) {
        bool explicitly_listed = false;
        for (int64_t d : squeeze_dims_) {
          int64_t dd = d < 0 ? d + in.shape().rank() : d;
          if (dd == i) explicitly_listed = true;
        }
        OP_REQUIRES(ctx, !explicitly_listed || in.dim(i) == 1,
                    InvalidArgument("cannot squeeze dimension of size " +
                                    std::to_string(in.dim(i))));
      }
      out_shape.AddDim(in.dim(i));
    }
    Result<Tensor> out = in.Reshaped(out_shape);
    OP_REQUIRES_OK(ctx, out.status());
    ctx->set_output(0, std::move(out).value());
  }
  bool IsExpensive() const override { return false; }

 private:
  std::vector<int64_t> squeeze_dims_;
};
REGISTER_KERNEL("Squeeze", kDeviceCpu, SqueezeOp);

class ConcatOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    int32_t axis = *ctx->input(0).data<int32_t>();
    int n = ctx->num_inputs() - 1;
    OP_REQUIRES(ctx, n >= 1, InvalidArgument("Concat needs inputs"));
    Tensor first = ctx->input(1);
    int rank = first.shape().rank();
    if (axis < 0) axis += rank;
    OP_REQUIRES(ctx, axis >= 0 && axis < rank,
                InvalidArgument("Concat axis out of range"));
    TensorShape out_shape = first.shape();
    int64_t concat_total = 0;
    for (int i = 0; i < n; ++i) {
      Tensor t = ctx->input(1 + i);
      OP_REQUIRES(ctx, t.shape().rank() == rank,
                  InvalidArgument("Concat rank mismatch"));
      for (int d = 0; d < rank; ++d) {
        OP_REQUIRES(ctx, d == axis || t.dim(d) == first.dim(d),
                    InvalidArgument("Concat shape mismatch"));
      }
      concat_total += t.dim(axis);
    }
    out_shape.set_dim(axis, concat_total);
    Tensor out(BaseType(first.dtype()), out_shape);

    int64_t outer = 1;
    for (int d = 0; d < axis; ++d) outer *= first.dim(d);
    int64_t inner = 1;
    for (int d = axis + 1; d < rank; ++d) inner *= first.dim(d);

    OP_REQUIRES_OK(ctx, AnyTypeDispatch(first.dtype(), [&](auto tag) {
      using T = decltype(tag);
      T* o = out.data<T>();
      int64_t out_row = concat_total * inner;
      int64_t offset = 0;
      for (int i = 0; i < n; ++i) {
        Tensor t = ctx->input(1 + i);
        const T* in = t.data<T>();
        int64_t in_row = t.dim(axis) * inner;
        for (int64_t r = 0; r < outer; ++r) {
          std::memcpy(o + r * out_row + offset, in + r * in_row,
                      in_row * sizeof(T));
        }
        offset += in_row;
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Concat", kDeviceCpu, ConcatOp);

class SplitOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    int32_t axis = *ctx->input(0).data<int32_t>();
    Tensor value = ctx->input(1);
    int rank = value.shape().rank();
    if (axis < 0) axis += rank;
    OP_REQUIRES(ctx, axis >= 0 && axis < rank,
                InvalidArgument("Split axis out of range"));
    int num_split = num_outputs();
    OP_REQUIRES(ctx, value.dim(axis) % num_split == 0,
                InvalidArgument("Split dimension " + std::to_string(axis) +
                                " of size " + std::to_string(value.dim(axis)) +
                                " not divisible by " +
                                std::to_string(num_split)));
    int64_t piece = value.dim(axis) / num_split;
    TensorShape out_shape = value.shape();
    out_shape.set_dim(axis, piece);

    int64_t outer = 1;
    for (int d = 0; d < axis; ++d) outer *= value.dim(d);
    int64_t inner = 1;
    for (int d = axis + 1; d < rank; ++d) inner *= value.dim(d);

    OP_REQUIRES_OK(ctx, AnyTypeDispatch(value.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* in = value.data<T>();
      int64_t in_row = value.dim(axis) * inner;
      int64_t out_row = piece * inner;
      for (int s = 0; s < num_split; ++s) {
        Tensor out(BaseType(value.dtype()), out_shape);
        T* o = out.data<T>();
        for (int64_t r = 0; r < outer; ++r) {
          std::memcpy(o + r * out_row, in + r * in_row + s * out_row,
                      out_row * sizeof(T));
        }
        ctx->set_output(s, std::move(out));
      }
    }));
  }
};
REGISTER_KERNEL("Split", kDeviceCpu, SplitOp);

class SliceOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    Tensor begin_t = ctx->input(1);
    Tensor size_t_ = ctx->input(2);
    int rank = in.shape().rank();
    OP_REQUIRES(ctx,
                begin_t.num_elements() == rank &&
                    size_t_.num_elements() == rank,
                InvalidArgument("Slice begin/size must have length rank"));
    std::vector<int64_t> begin(rank);
    std::vector<int64_t> size(rank);
    TensorShape out_shape;
    for (int i = 0; i < rank; ++i) {
      begin[i] = begin_t.flat<int32_t>(i);
      size[i] = size_t_.flat<int32_t>(i);
      if (size[i] == -1) size[i] = in.dim(i) - begin[i];
      OP_REQUIRES(ctx,
                  begin[i] >= 0 && size[i] >= 0 &&
                      begin[i] + size[i] <= in.dim(i),
                  InvalidArgument("Slice out of bounds at dim " +
                                  std::to_string(i)));
      out_shape.AddDim(size[i]);
    }
    Tensor out(BaseType(in.dtype()), out_shape);
    OP_REQUIRES_OK(ctx, AnyTypeDispatch(in.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* ip = in.data<T>();
      T* o = out.data<T>();
      std::vector<int64_t> in_stride(rank, 1);
      for (int i = rank - 2; i >= 0; --i) {
        in_stride[i] = in_stride[i + 1] * in.dim(i + 1);
      }
      std::vector<int64_t> idx(rank, 0);
      int64_t n = out.num_elements();
      for (int64_t i = 0; i < n; ++i) {
        int64_t src = 0;
        for (int d = 0; d < rank; ++d) src += (begin[d] + idx[d]) * in_stride[d];
        o[i] = ip[src];
        for (int d = rank - 1; d >= 0; --d) {
          if (++idx[d] < size[d]) break;
          idx[d] = 0;
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Slice", kDeviceCpu, SliceOp);

class PadOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    Tensor paddings = ctx->input(1);
    int rank = in.shape().rank();
    OP_REQUIRES(ctx,
                paddings.shape().rank() == 2 && paddings.dim(0) == rank &&
                    paddings.dim(1) == 2,
                InvalidArgument("Pad paddings must be [rank, 2]"));
    TensorShape out_shape;
    std::vector<int64_t> before(rank);
    for (int i = 0; i < rank; ++i) {
      before[i] = paddings.matrix<int32_t>(i, 0);
      int64_t after = paddings.matrix<int32_t>(i, 1);
      OP_REQUIRES(ctx, before[i] >= 0 && after >= 0,
                  InvalidArgument("Pad amounts must be non-negative"));
      out_shape.AddDim(in.dim(i) + before[i] + after);
    }
    Tensor out(BaseType(in.dtype()), out_shape);  // zero-filled
    OP_REQUIRES_OK(ctx, NumericDispatch(in.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* ip = in.data<T>();
      T* o = out.data<T>();
      std::vector<int64_t> out_stride(rank, 1);
      for (int i = rank - 2; i >= 0; --i) {
        out_stride[i] = out_stride[i + 1] * out_shape.dim(i + 1);
      }
      std::vector<int64_t> idx(rank, 0);
      int64_t n = in.num_elements();
      for (int64_t i = 0; i < n; ++i) {
        int64_t dst = 0;
        for (int d = 0; d < rank; ++d) dst += (before[d] + idx[d]) * out_stride[d];
        o[dst] = ip[i];
        for (int d = rank - 1; d >= 0; --d) {
          if (++idx[d] < in.dim(d)) break;
          idx[d] = 0;
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Pad", kDeviceCpu, PadOp);

class TransposeOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    Tensor perm_t = ctx->input(1);
    int rank = in.shape().rank();
    OP_REQUIRES(ctx, perm_t.num_elements() == rank,
                InvalidArgument("Transpose perm must have length rank"));
    std::vector<int> perm(rank);
    std::vector<bool> seen(rank, false);
    TensorShape out_shape;
    for (int i = 0; i < rank; ++i) {
      perm[i] = perm_t.flat<int32_t>(i);
      OP_REQUIRES(ctx, perm[i] >= 0 && perm[i] < rank && !seen[perm[i]],
                  InvalidArgument("Transpose perm is not a permutation"));
      seen[perm[i]] = true;
      out_shape.AddDim(in.dim(perm[i]));
    }
    Tensor out(BaseType(in.dtype()), out_shape);
    OP_REQUIRES_OK(ctx, AnyTypeDispatch(in.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* ip = in.data<T>();
      T* o = out.data<T>();
      std::vector<int64_t> in_stride(rank, 1);
      for (int i = rank - 2; i >= 0; --i) {
        in_stride[i] = in_stride[i + 1] * in.dim(i + 1);
      }
      std::vector<int64_t> idx(rank, 0);
      int64_t n = out.num_elements();
      for (int64_t i = 0; i < n; ++i) {
        int64_t src = 0;
        for (int d = 0; d < rank; ++d) src += idx[d] * in_stride[perm[d]];
        o[i] = ip[src];
        for (int d = rank - 1; d >= 0; --d) {
          if (++idx[d] < out_shape.dim(d)) break;
          idx[d] = 0;
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Transpose", kDeviceCpu, TransposeOp);

class TileOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    Tensor mult_t = ctx->input(1);
    int rank = in.shape().rank();
    OP_REQUIRES(ctx, mult_t.num_elements() == rank,
                InvalidArgument("Tile multiples must have length rank"));
    TensorShape out_shape;
    std::vector<int64_t> mult(rank);
    for (int i = 0; i < rank; ++i) {
      mult[i] = mult_t.flat<int32_t>(i);
      OP_REQUIRES(ctx, mult[i] >= 1,
                  InvalidArgument("Tile multiples must be >= 1"));
      out_shape.AddDim(in.dim(i) * mult[i]);
    }
    Tensor out(BaseType(in.dtype()), out_shape);
    OP_REQUIRES_OK(ctx, AnyTypeDispatch(in.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* ip = in.data<T>();
      T* o = out.data<T>();
      std::vector<int64_t> in_stride(rank, 1);
      for (int i = rank - 2; i >= 0; --i) {
        in_stride[i] = in_stride[i + 1] * in.dim(i + 1);
      }
      std::vector<int64_t> idx(rank, 0);
      int64_t n = out.num_elements();
      for (int64_t i = 0; i < n; ++i) {
        int64_t src = 0;
        for (int d = 0; d < rank; ++d) src += (idx[d] % in.dim(d)) * in_stride[d];
        o[i] = ip[src];
        for (int d = rank - 1; d >= 0; --d) {
          if (++idx[d] < out_shape.dim(d)) break;
          idx[d] = 0;
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("Tile", kDeviceCpu, TileOp);

class PackOp : public OpKernel {
 public:
  explicit PackOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("axis", &axis_));
  }
  void Compute(OpKernelContext* ctx) override {
    int n = ctx->num_inputs();
    Tensor first = ctx->input(0);
    int rank = first.shape().rank();
    int64_t axis = axis_ < 0 ? axis_ + rank + 1 : axis_;
    OP_REQUIRES(ctx, axis >= 0 && axis <= rank,
                InvalidArgument("Pack axis out of range"));
    for (int i = 1; i < n; ++i) {
      OP_REQUIRES(ctx, ctx->input(i).shape() == first.shape(),
                  InvalidArgument("Pack inputs must have equal shapes"));
    }
    TensorShape out_shape = first.shape();
    out_shape.InsertDim(static_cast<int>(axis), n);
    Tensor out(BaseType(first.dtype()), out_shape);
    int64_t outer = 1;
    for (int d = 0; d < axis; ++d) outer *= first.dim(d);
    int64_t inner = first.num_elements() / std::max<int64_t>(outer, 1);
    OP_REQUIRES_OK(ctx, AnyTypeDispatch(first.dtype(), [&](auto tag) {
      using T = decltype(tag);
      T* o = out.data<T>();
      for (int i = 0; i < n; ++i) {
        Tensor t = ctx->input(i);
        const T* ip = t.data<T>();
        for (int64_t r = 0; r < outer; ++r) {
          std::memcpy(o + (r * n + i) * inner, ip + r * inner,
                      inner * sizeof(T));
        }
      }
    }));
    ctx->set_output(0, std::move(out));
  }

 private:
  int64_t axis_ = 0;
};
REGISTER_KERNEL("Pack", kDeviceCpu, PackOp);

class UnpackOp : public OpKernel {
 public:
  explicit UnpackOp(OpKernelConstruction* ctx) : OpKernel(ctx) {
    ctx->SetStatus(ctx->GetIntAttr("axis", &axis_));
  }
  void Compute(OpKernelContext* ctx) override {
    Tensor in = ctx->input(0);
    int rank = in.shape().rank();
    int64_t axis = axis_ < 0 ? axis_ + rank : axis_;
    OP_REQUIRES(ctx, axis >= 0 && axis < rank,
                InvalidArgument("Unpack axis out of range"));
    int n = num_outputs();
    OP_REQUIRES(ctx, in.dim(axis) == n,
                InvalidArgument("Unpack num mismatch: dim is " +
                                std::to_string(in.dim(axis)) + ", num is " +
                                std::to_string(n)));
    TensorShape out_shape = in.shape();
    out_shape.RemoveDim(static_cast<int>(axis));
    int64_t outer = 1;
    for (int d = 0; d < axis; ++d) outer *= in.dim(d);
    int64_t inner = 1;
    for (int d = static_cast<int>(axis) + 1; d < rank; ++d) inner *= in.dim(d);
    OP_REQUIRES_OK(ctx, AnyTypeDispatch(in.dtype(), [&](auto tag) {
      using T = decltype(tag);
      const T* ip = in.data<T>();
      for (int i = 0; i < n; ++i) {
        Tensor out(BaseType(in.dtype()), out_shape);
        T* o = out.data<T>();
        for (int64_t r = 0; r < outer; ++r) {
          std::memcpy(o + r * inner, ip + (r * n + i) * inner,
                      inner * sizeof(T));
        }
        ctx->set_output(i, std::move(out));
      }
    }));
  }

 private:
  int64_t axis_ = 0;
};
REGISTER_KERNEL("Unpack", kDeviceCpu, UnpackOp);

class OneHotOp : public OpKernel {
 public:
  using OpKernel::OpKernel;
  void Compute(OpKernelContext* ctx) override {
    Tensor indices = ctx->input(0);
    int32_t depth = *ctx->input(1).data<int32_t>();
    Tensor on = ctx->input(2);
    Tensor off = ctx->input(3);
    OP_REQUIRES(ctx, depth >= 0, InvalidArgument("OneHot depth < 0"));
    TensorShape out_shape = indices.shape();
    out_shape.AddDim(depth);
    Tensor out(BaseType(on.dtype()), out_shape);
    OP_REQUIRES_OK(ctx, NumericDispatch(on.dtype(), [&](auto tag) {
      using T = decltype(tag);
      T on_v = *on.data<T>();
      T off_v = *off.data<T>();
      T* o = out.data<T>();
      for (int64_t i = 0; i < out.num_elements(); ++i) o[i] = off_v;
      Status s = IndexDispatch(indices.dtype(), [&](auto itag) {
        using I = decltype(itag);
        const I* idx = indices.data<I>();
        for (int64_t i = 0; i < indices.num_elements(); ++i) {
          if (idx[i] >= 0 && idx[i] < depth) {
            o[i * depth + idx[i]] = on_v;
          }
        }
      });
      (void)s;
    }));
    ctx->set_output(0, std::move(out));
  }
};
REGISTER_KERNEL("OneHot", kDeviceCpu, OneHotOp);

}  // namespace
}  // namespace tfrepro
