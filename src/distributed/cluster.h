// In-process cluster substrate (paper §3.3). Each task ("/job:ps/task:0",
// "/job:worker/task:3", ...) is modeled as a Worker owning its own devices
// and threadpool — the same code paths a networked deployment exercises
// (graph partitioning, Send/Recv rendezvous, per-task subgraph caching),
// with an in-memory transport standing in for gRPC (see DESIGN.md
// substitutions). An optional NetworkModel injects per-transfer latency and
// bandwidth costs so tests and benchmarks can reproduce network behaviour.

#ifndef TFREPRO_DISTRIBUTED_CLUSTER_H_
#define TFREPRO_DISTRIBUTED_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/threadpool.h"
#include "runtime/device.h"
#include "runtime/executor.h"
#include "runtime/rendezvous.h"

namespace tfrepro {
namespace distributed {

class FaultInjector;

// Jobs and their task counts, e.g. {{"ps", 2}, {"worker", 4}}.
struct ClusterSpec {
  std::map<std::string, int> jobs;
};

// Models the wire between tasks: a transfer of `bytes` takes
// latency + bytes / bandwidth seconds. Used by the throttled rendezvous.
struct NetworkModel {
  double latency_seconds = 0.0;
  double bytes_per_second = 0.0;  // 0 = infinite bandwidth

  double TransferSeconds(size_t bytes) const {
    double t = latency_seconds;
    if (bytes_per_second > 0) {
      t += static_cast<double>(bytes) / bytes_per_second;
    }
    return t;
  }
};

// A rendezvous that delays cross-task deliveries per a NetworkModel.
// Local (same-task) transfers pass through untouched.
class ThrottledRendezvous : public Rendezvous {
 public:
  ThrottledRendezvous(NetworkModel model, ThreadPool* timer_pool)
      : model_(model), timer_pool_(timer_pool) {}

  Status Send(const std::string& key, const Tensor& value,
              bool is_dead) override;
  void RecvAsync(const std::string& key, DoneCallback done) override;
  // Hashed variants keep the caller's precomputed key hash flowing through
  // to the sharded inner rendezvous.
  Status Send(const std::string& key, uint64_t key_hash, const Tensor& value,
              bool is_dead) override;
  void RecvAsync(const std::string& key, uint64_t key_hash,
                 DoneCallback done) override;
  void StartAbort(const Status& status) override;

 private:
  NetworkModel model_;
  ThreadPool* timer_pool_;
  // Shared with in-flight delayed deliveries, which may outlive the wrapper
  // when a step is aborted mid-transfer.
  std::shared_ptr<LocalRendezvous> inner_ = std::make_shared<LocalRendezvous>();
};

// One task of the cluster: devices + threadpool + registered subgraphs.
class TaskWorker {
 public:
  TaskWorker(const std::string& job, int task_index, int num_threads,
             int num_devices, FaultInjector* injector = nullptr);

  const std::string& job() const { return job_; }
  int task_index() const { return task_index_; }
  std::string task_name() const {
    return "/job:" + job_ + "/task:" + std::to_string(task_index_);
  }
  DeviceMgr* device_mgr() { return &device_mgr_; }

  // Registers one per-device partition under (handle, device); creates its
  // executor. The worker takes ownership of the partition graph.
  // `handle` names the step's subgraph set; `segment` keys kernel sharing
  // and must be stable for the whole session so stateful kernels
  // (variables, queues) are shared across step signatures.
  Status RegisterSubgraph(const std::string& handle,
                          const std::string& segment,
                          std::unique_ptr<Graph> partition,
                          const std::string& device_name);

  // Runs all subgraphs registered under `handle` for one step; `done` fires
  // once with the first error (or OK). This is the "one small message to
  // each participating task" of §3.3.
  void RunSubgraphsAsync(const std::string& handle, const Executor::Args& args,
                         std::function<void(Status)> done);

  // Liveness probe (paper §4.3 health monitoring), answered through the same
  // in-process transport as a dispatch so the fault injector applies: a dead
  // task refuses the probe, a scripted probe hang parks `done` forever (the
  // prober must time out on its own), and a per-task delay slows the answer.
  // `done` may fire from a worker pool thread — or never.
  void PingAsync(std::function<void(Status)> done);

  bool HasSubgraphs(const std::string& handle) const;

  // Wipes every registered subgraph/executor and all device state (cached
  // kernels, resources) — the task comes back as a fresh process with empty
  // memory. The master re-registers subgraphs and the recovery hook
  // restores variables from a checkpoint (§4.3). Must not race with
  // in-flight steps on this task. Bumps incarnation().
  void Reset();

  // Incremented by each Reset; lets the master distinguish "the task I
  // registered subgraphs on" from "its restarted successor".
  int64_t incarnation() const;

 private:
  // The dispatch body, after fault-injection decisions are resolved.
  void RunSubgraphsNow(const std::string& handle, const Executor::Args& args,
                       std::function<void(Status)> done);

  std::string job_;
  int task_index_;
  FaultInjector* injector_;
  ThreadPool pool_;
  DeviceMgr device_mgr_;
  mutable std::mutex mu_;
  struct RegisteredGraph {
    std::unique_ptr<Graph> graph;
    std::unique_ptr<Executor> executor;
  };
  std::map<std::string, std::vector<RegisteredGraph>> subgraphs_;
  int64_t incarnation_ = 1;
};

// Owns every task's worker.
class InProcessCluster {
 public:
  struct Options {
    int threads_per_task = 2;
    int devices_per_task = 1;
    // Optional fault injector consulted on every step dispatch and
    // cross-task transfer (not owned; must outlive the cluster).
    FaultInjector* fault_injector = nullptr;
  };

  static Result<std::unique_ptr<InProcessCluster>> Create(
      const ClusterSpec& spec, const Options& options);
  static Result<std::unique_ptr<InProcessCluster>> Create(
      const ClusterSpec& spec) {
    return Create(spec, Options{});
  }

  Result<TaskWorker*> worker(const std::string& job, int task_index) const;
  std::vector<TaskWorker*> workers() const;
  std::vector<Device*> all_devices() const;

  const ClusterSpec& spec() const { return spec_; }
  FaultInjector* fault_injector() const { return fault_injector_; }

  // Restarts a (killed) task in place: wipes its subgraphs and device state
  // and marks it healthy in the fault injector. The TaskWorker object —
  // and every pointer to it — stays valid; only its state is reborn.
  Status RestartTask(const std::string& job, int task_index);

 private:
  InProcessCluster(const ClusterSpec& spec, const Options& options);
  ClusterSpec spec_;
  FaultInjector* fault_injector_ = nullptr;
  std::vector<std::unique_ptr<TaskWorker>> workers_;
};

}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_CLUSTER_H_
