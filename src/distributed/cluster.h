// Cluster substrate (paper §3.3). Each task ("/job:ps/task:0",
// "/job:worker/task:3", ...) is a worker owning devices, a threadpool and
// registered subgraphs. Two transports implement the same interfaces:
//
//   * "inprocess" (default): every task is a TaskWorker object in this
//     process, dispatch is a function call, transfers go through a shared
//     rendezvous. An optional NetworkModel injects per-transfer latency and
//     bandwidth so tests and benchmarks reproduce network behaviour.
//   * "socket": every task is a real OS process (worker_main) spoken to
//     over length-prefixed TCP frames (src/distributed/rpc/, DESIGN.md
//     §11). A killed process is a genuinely dead peer: connections reset,
//     dispatches fail with retryable errors, and the master's recovery
//     paths (§4.3) restart the process and restore from a checkpoint.
//
// The master only sees the abstract Cluster / WorkerInterface types, so
// every fault-tolerance path (probing, restart, re-registration, recovery)
// is transport-independent.

#ifndef TFREPRO_DISTRIBUTED_CLUSTER_H_
#define TFREPRO_DISTRIBUTED_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/threadpool.h"
#include "runtime/device.h"
#include "runtime/executor.h"
#include "runtime/rendezvous.h"

namespace tfrepro {
namespace distributed {

class FaultInjector;

// Jobs and their task counts, e.g. {{"ps", 2}, {"worker", 4}}.
struct ClusterSpec {
  std::map<std::string, int> jobs;
  // Transport selector: "inprocess" | "socket". Empty = the
  // TFREPRO_TRANSPORT environment variable, falling back to "inprocess".
  std::string transport;
};

// Models the wire between tasks: a transfer of `bytes` takes
// latency + bytes / bandwidth seconds. Used by the throttled rendezvous.
struct NetworkModel {
  double latency_seconds = 0.0;
  double bytes_per_second = 0.0;  // 0 = infinite bandwidth

  double TransferSeconds(size_t bytes) const {
    double t = latency_seconds;
    if (bytes_per_second > 0) {
      t += static_cast<double>(bytes) / bytes_per_second;
    }
    return t;
  }
};

// A rendezvous that delays cross-task deliveries per a NetworkModel.
// Local (same-task) transfers pass through untouched.
class ThrottledRendezvous : public Rendezvous {
 public:
  ThrottledRendezvous(NetworkModel model, ThreadPool* timer_pool)
      : model_(model), timer_pool_(timer_pool) {}

  Status Send(const std::string& key, const Tensor& value,
              bool is_dead) override;
  void RecvAsync(const std::string& key, DoneCallback done) override;
  // Hashed variants keep the caller's precomputed key hash flowing through
  // to the sharded inner rendezvous.
  Status Send(const std::string& key, uint64_t key_hash, const Tensor& value,
              bool is_dead) override;
  void RecvAsync(const std::string& key, uint64_t key_hash,
                 DoneCallback done) override;
  void StartAbort(const Status& status) override;

 private:
  NetworkModel model_;
  ThreadPool* timer_pool_;
  // Shared with in-flight delayed deliveries, which may outlive the wrapper
  // when a step is aborted mid-transfer.
  std::shared_ptr<LocalRendezvous> inner_ = std::make_shared<LocalRendezvous>();
};

// One task of the cluster, as the master sees it: subgraph registration,
// step dispatch, liveness probing. Implemented by TaskWorker (in-process)
// and rpc::RemoteWorker (a stub speaking to a worker_main process).
class WorkerInterface {
 public:
  virtual ~WorkerInterface() = default;

  virtual const std::string& job() const = 0;
  virtual int task_index() const = 0;
  std::string task_name() const {
    return "/job:" + job() + "/task:" + std::to_string(task_index());
  }

  // Registers one per-device partition under (handle, device); creates its
  // executor (remotely: ships the serialized partition to the worker
  // process). Takes ownership of the partition graph. `handle` names the
  // step's subgraph set; `segment` keys kernel sharing and must be stable
  // for the whole session so stateful kernels (variables, queues) are
  // shared across step signatures.
  virtual Status RegisterSubgraph(const std::string& handle,
                                  const std::string& segment,
                                  std::unique_ptr<Graph> partition,
                                  const std::string& device_name) = 0;

  // Runs all subgraphs registered under `handle` for one step; `done` fires
  // once with the first error (or OK). This is the "one small message to
  // each participating task" of §3.3. `done` may fire from another thread
  // — or, for a hung in-process task, never (the master's deadline is the
  // only exit then; the socket transport always fails a dispatch whose
  // deadline expires).
  virtual void RunSubgraphsAsync(const std::string& handle,
                                 const Executor::Args& args,
                                 std::function<void(Status)> done) = 0;

  // Liveness probe (paper §4.3 health monitoring), answered through the
  // same transport as a dispatch so real failures and injected ones apply.
  virtual void PingAsync(std::function<void(Status)> done) = 0;

  virtual bool HasSubgraphs(const std::string& handle) const = 0;

  // Incremented by each restart; lets the master distinguish "the task I
  // registered subgraphs on" from "its restarted successor".
  virtual int64_t incarnation() const = 0;
};

// One task of the in-process cluster: devices + threadpool + registered
// subgraphs.
class TaskWorker : public WorkerInterface {
 public:
  TaskWorker(const std::string& job, int task_index, int num_threads,
             int num_devices, FaultInjector* injector = nullptr);

  const std::string& job() const override { return job_; }
  int task_index() const override { return task_index_; }
  DeviceMgr* device_mgr() { return &device_mgr_; }

  Status RegisterSubgraph(const std::string& handle,
                          const std::string& segment,
                          std::unique_ptr<Graph> partition,
                          const std::string& device_name) override;

  void RunSubgraphsAsync(const std::string& handle, const Executor::Args& args,
                         std::function<void(Status)> done) override;

  // Answered through the in-process transport so the fault injector
  // applies: a dead task refuses the probe, a scripted probe hang parks
  // `done` forever (the prober must time out on its own), and a per-task
  // delay slows the answer.
  void PingAsync(std::function<void(Status)> done) override;

  bool HasSubgraphs(const std::string& handle) const override;

  // Wipes every registered subgraph/executor and all device state (cached
  // kernels, resources) — the task comes back as a fresh process with empty
  // memory. The master re-registers subgraphs and the recovery hook
  // restores variables from a checkpoint (§4.3). Must not race with
  // in-flight steps on this task. Bumps incarnation().
  void Reset();

  int64_t incarnation() const override;

 private:
  // The dispatch body, after fault-injection decisions are resolved.
  void RunSubgraphsNow(const std::string& handle, const Executor::Args& args,
                       std::function<void(Status)> done);

  std::string job_;
  int task_index_;
  FaultInjector* injector_;
  ThreadPool pool_;
  DeviceMgr device_mgr_;
  mutable std::mutex mu_;
  struct RegisteredGraph {
    std::unique_ptr<Graph> graph;
    std::unique_ptr<Executor> executor;
  };
  std::map<std::string, std::vector<RegisteredGraph>> subgraphs_;
  int64_t incarnation_ = 1;
};

// Owns every task of a cluster, behind whichever transport. The master and
// health prober program against this interface only.
class Cluster {
 public:
  struct Options {
    int threads_per_task = 2;
    int devices_per_task = 1;
    // Optional fault injector consulted on every step dispatch and
    // cross-task transfer (not owned; must outlive the cluster). Over the
    // socket transport, dispatch faults are applied client-side by the
    // RemoteWorker stub and transfer drops at the master's rendezvous hub.
    FaultInjector* fault_injector = nullptr;

    // --- socket transport only ---
    // Path to the worker_main binary; empty = TFREPRO_WORKER_BINARY, then
    // alongside the current executable.
    std::string worker_binary;
    // Per-RPC deadline for control calls (Register/Ping/Shutdown) and the
    // floor for RunGraph (which stretches to the step deadline).
    double rpc_deadline_seconds = 5.0;
    // How long to wait for a spawned worker process to publish its port.
    double spawn_timeout_seconds = 10.0;
  };

  virtual ~Cluster() = default;

  // Builds a cluster on the transport `spec.transport` selects (empty =
  // env TFREPRO_TRANSPORT, then "inprocess").
  static Result<std::unique_ptr<Cluster>> Create(const ClusterSpec& spec,
                                                 const Options& options);
  static Result<std::unique_ptr<Cluster>> Create(const ClusterSpec& spec) {
    return Create(spec, Options{});
  }

  virtual Result<WorkerInterface*> worker(const std::string& job,
                                          int task_index) const = 0;
  virtual std::vector<WorkerInterface*> workers() const = 0;

  // Every device in the cluster, for placement. Over the socket transport
  // these are master-side shadow devices mirroring each process's devices
  // by name; kernels never run on them.
  virtual std::vector<Device*> all_devices() const = 0;

  // Restarts a (killed) task in place. The WorkerInterface object — and
  // every pointer to it — stays valid; only what it fronts is reborn
  // (wiped state in-process; a fresh OS process over sockets). Bumps the
  // worker's incarnation and marks it healthy in the fault injector.
  virtual Status RestartTask(const std::string& job, int task_index) = 0;

  // True when the transport knows `worker` cannot currently serve a step
  // (fault injector says down; socket: the process was reaped). Used by
  // the master to fail fast before dispatch and to pick restart victims on
  // retry.
  virtual bool TaskIsDown(WorkerInterface* worker) const = 0;

  // Hook for per-step rendezvous decoration. The master builds the step's
  // base rendezvous (throttled / fault-injecting) and passes it here; the
  // socket transport returns a wrapper registered with its tensor hub so
  // worker processes can reach the step's transfers, in-process returns
  // `base` unchanged.
  virtual std::shared_ptr<Rendezvous> WrapStepRendezvous(
      int64_t step_id, std::shared_ptr<Rendezvous> base) {
    return base;
  }

  const ClusterSpec& spec() const { return spec_; }
  FaultInjector* fault_injector() const { return fault_injector_; }

 protected:
  Cluster(const ClusterSpec& spec, FaultInjector* injector)
      : spec_(spec), fault_injector_(injector) {}

  ClusterSpec spec_;
  FaultInjector* fault_injector_ = nullptr;
};

// Every task's worker lives in this process.
class InProcessCluster : public Cluster {
 public:
  using Options = Cluster::Options;

  static Result<std::unique_ptr<InProcessCluster>> Create(
      const ClusterSpec& spec, const Options& options);
  static Result<std::unique_ptr<InProcessCluster>> Create(
      const ClusterSpec& spec) {
    return Create(spec, Options{});
  }

  Result<WorkerInterface*> worker(const std::string& job,
                                  int task_index) const override;
  std::vector<WorkerInterface*> workers() const override;
  std::vector<Device*> all_devices() const override;

  Status RestartTask(const std::string& job, int task_index) override;
  bool TaskIsDown(WorkerInterface* worker) const override;

 private:
  InProcessCluster(const ClusterSpec& spec, const Options& options);
  Result<TaskWorker*> task_worker(const std::string& job,
                                  int task_index) const;
  std::vector<std::unique_ptr<TaskWorker>> workers_;
};

}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_CLUSTER_H_
