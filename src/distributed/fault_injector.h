// Fault injection for the in-process distributed runtime (paper §4.3: "many
// failures or pre-emptions ... a training run using 10,000 hours of
// non-dedicated compute can expect to experience a failure"). The injector
// is the single source of truth for scripted and random failures:
//
//   * kill a named task at its Nth step dispatch — the task responds
//     Unavailable until InProcessCluster::RestartTask brings it back;
//   * hang a named task at its Nth dispatch — the task never responds, so
//     only the master's step deadline can unblock the step;
//   * delay every dispatch to a task (a straggler, §4.4);
//   * drop the Nth cross-task tensor transfer — the receiving Recv blocks
//     forever, again exercising the deadline path;
//   * kill tasks at random with a seeded per-dispatch probability.
//
// All decisions are deterministic: scripted faults fire on exact per-task
// dispatch / global transfer counts, and random kills draw from a Philox
// stream seeded at construction, so the same seed and the same sequence of
// runtime events replays the same failure schedule (see DecisionLog).
//
// The runtime hooks are TaskWorker::RunSubgraphsAsync (OnDispatch) and
// FaultInjectingRendezvous::Send (OnTransfer); the master consults IsDown
// for health checks and MarkRestarted fires on task restart.

#ifndef TFREPRO_DISTRIBUTED_FAULT_INJECTOR_H_
#define TFREPRO_DISTRIBUTED_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/status.h"
#include "runtime/rendezvous.h"

namespace tfrepro {
namespace distributed {

// True when a rendezvous key "<send_dev>;<recv_dev>;..." crosses tasks
// (the "/job:X/task:N" prefixes differ).
bool IsCrossTaskKey(const std::string& key);

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0);

  enum class Action { kProceed, kKill, kHang };
  struct Decision {
    Action action = Action::kProceed;
    double delay_seconds = 0.0;
  };

  // --- Scripting (test-side; all counts are 1-based) ---

  // Kills `task` when it receives its `nth` step dispatch; it stays down
  // (every later dispatch fails fast) until MarkRestarted.
  void KillTaskAtDispatch(const std::string& task, int64_t nth);

  // Hangs `task` at its `nth` dispatch: the dispatch never completes and
  // never fails — the master's deadline must fire. Later dispatches proceed.
  void HangTaskAtDispatch(const std::string& task, int64_t nth);

  // Delays every dispatch to `task` by `seconds` (0 clears the delay).
  void DelayTask(const std::string& task, double seconds);

  // Drops the `nth` cross-task transfer observed by OnTransfer.
  void DropNthTransfer(int64_t nth);

  // Kills the dispatched-to task with probability `p` per dispatch, drawn
  // from the seeded Philox stream (deterministic given the event sequence).
  void KillRandomly(double probability);

  // Kills `task` immediately — even while the cluster is idle, with no step
  // touching it. Only a liveness probe (or the next dispatch) can notice;
  // this is the scenario the master's health prober exists for.
  void KillTaskNow(const std::string& task);

  // Hangs `task`'s `nth` health probe (1-based, counted separately from
  // dispatches so probes never perturb a scripted dispatch schedule). The
  // probe callback is parked exactly like a hung dispatch: it never fires,
  // and the prober's own timeout is the only way past it.
  void HangProbeAt(const std::string& task, int64_t nth);

  // --- Runtime hooks ---

  // Consulted by TaskWorker before running a step's subgraphs.
  Decision OnDispatch(const std::string& task);

  // Consulted by TaskWorker::PingAsync for each health probe. Dead tasks
  // refuse the probe, scripted probe hangs park it, and per-task dispatch
  // delays apply to probes too (a straggling task answers probes late).
  // Probes are counted on their own stream (see probes()).
  Decision OnProbe(const std::string& task);

  // Consulted per cross-task Send; true means "drop this transfer".
  bool OnTransfer(const std::string& key);

  // Parks the done-callback of a hung dispatch. The callback is never
  // invoked; it is dropped (releasing whatever step state it keeps alive)
  // when the task restarts or the injector is destroyed.
  void ParkHung(const std::string& task, std::function<void(Status)> done);

  // --- Health & recovery ---

  bool IsDown(const std::string& task) const;
  std::vector<std::string> DownTasks() const;

  // Marks a task healthy again and drops its parked hung callbacks; called
  // by InProcessCluster::RestartTask.
  void MarkRestarted(const std::string& task);

  // --- Introspection (tests) ---

  int64_t kills() const;
  int64_t hangs() const;
  int64_t dropped_transfers() const;
  int64_t dispatches(const std::string& task) const;
  int64_t probes(const std::string& task) const;
  int64_t transfers() const;

  // One line per non-trivial decision, in event order — two injectors with
  // the same seed and the same event sequence produce identical logs.
  std::vector<std::string> DecisionLog() const;

  // One structured record per injected fault, in event order. Each is also
  // counted on the global registry ("fault.injected" tagged by kind) and
  // fanned out to live trace collectors as an instant event, so injected
  // faults appear inline on a step's timeline.
  struct InjectedEvent {
    std::string kind;  // "kill" | "hang" | "drop_transfer" | "restart"
    std::string task;  // rendezvous key for drop_transfer
    int64_t index = 0;  // per-task dispatch count, or global transfer count
    int64_t micros = 0;
  };
  std::vector<InjectedEvent> injected_events() const;

 private:
  // Appends to events_, bumps the registry counter, and emits a trace
  // instant. Must hold mu_.
  void RecordInjectedLocked(const std::string& kind, const std::string& task,
                            int64_t index);

  mutable std::mutex mu_;
  PhiloxRandom rng_;
  double kill_probability_ = 0.0;

  std::map<std::string, int64_t> dispatch_counts_;
  std::map<std::string, int64_t> probe_counts_;
  std::map<std::string, std::set<int64_t>> kill_at_;
  std::map<std::string, std::set<int64_t>> hang_at_;
  std::map<std::string, std::set<int64_t>> hang_probe_at_;
  std::map<std::string, double> delays_;
  std::set<std::string> down_;
  std::set<int64_t> drop_transfer_at_;
  int64_t transfer_count_ = 0;

  int64_t kills_ = 0;
  int64_t hangs_ = 0;
  int64_t dropped_transfers_ = 0;
  std::vector<std::string> log_;
  std::vector<InjectedEvent> events_;
  std::map<std::string, std::vector<std::function<void(Status)>>> parked_;
};

// Wraps a step's rendezvous, dropping cross-task transfers the injector
// says to drop. Local (same-task) transfers always pass through.
class FaultInjectingRendezvous : public Rendezvous {
 public:
  FaultInjectingRendezvous(FaultInjector* injector,
                           std::unique_ptr<Rendezvous> base)
      : injector_(injector), base_(std::move(base)) {}
  // Shared-ownership variant: the master's per-step rendezvous chain is
  // shared with straggler callbacks and (over sockets) the tensor hub.
  FaultInjectingRendezvous(FaultInjector* injector,
                           std::shared_ptr<Rendezvous> base)
      : injector_(injector), base_(std::move(base)) {}

  Status Send(const std::string& key, const Tensor& value,
              bool is_dead) override;
  void RecvAsync(const std::string& key, DoneCallback done) override;
  // Hashed variants keep the caller's precomputed key hash flowing through
  // to the sharded base rendezvous.
  Status Send(const std::string& key, uint64_t key_hash, const Tensor& value,
              bool is_dead) override;
  void RecvAsync(const std::string& key, uint64_t key_hash,
                 DoneCallback done) override;
  void StartAbort(const Status& status) override;

 private:
  FaultInjector* injector_;
  std::shared_ptr<Rendezvous> base_;
};

}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_FAULT_INJECTOR_H_
