// Master-side liveness monitoring (paper §4.3: "many kinds of failures ...
// we detect them using a combination of health checks"). PR-1's runtime
// only noticed a dead task when a step touched it; the prober closes that
// gap: a background thread pings every task on a fixed interval through the
// in-process transport (TaskWorker::PingAsync, so injected kill/hang/delay
// faults apply to probes too), counts consecutive misses per task, and
// declares a task dead after `miss_threshold` misses — firing the owner's
// `on_dead` callback *between* steps instead of waiting for a step to block
// on the dead task's rendezvous.
//
// A probe has its own timeout: a hung task parks the probe callback forever
// (FaultInjector::ParkHung), so the prober never waits on the callback
// without a deadline — a wedged probe costs one timeout, not the thread.
//
// Metrics (global registry, tagged {"session", "task"}): health.probe_sent,
// health.probe_ok, health.probe_miss, health.probe_dead_marked. Declaring a
// task dead also emits a "health.task_dead" trace instant.

#ifndef TFREPRO_DISTRIBUTED_HEALTH_PROBER_H_
#define TFREPRO_DISTRIBUTED_HEALTH_PROBER_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "distributed/cluster.h"

namespace tfrepro {
namespace distributed {

class HealthProber {
 public:
  struct Options {
    // Seconds between probe rounds (all tasks are probed concurrently per
    // round, so one hung task cannot starve the others' probes).
    double interval_seconds = 0.025;
    // Per-round wait for probe answers; a probe still outstanding when it
    // expires counts as a miss. 0 = use interval_seconds.
    double timeout_seconds = 0.0;
    // Consecutive misses (K) before a task is declared dead.
    int miss_threshold = 3;
    // Each round's wait is perturbed uniformly within ±fraction·interval
    // (clamped to [0, 1]) so a fleet of masters restarted together does not
    // probe its tasks in lockstep. 0 disables jitter.
    double interval_jitter_fraction = 0.1;
    // Seed for the jitter stream; 0 derives one from this prober's address
    // (distinct probers jitter differently, a seeded prober is repeatable).
    uint64_t jitter_seed = 0;
  };

  // Starts probing immediately. `on_dead(task)` fires from the prober
  // thread on every round where a task's consecutive misses reach the
  // threshold, until the task answers a probe again (a restarted task's
  // first successful probe resets its miss count). `session` tags the
  // metrics. The cluster must outlive the prober.
  HealthProber(Cluster* cluster, const Options& options, std::string session,
               std::function<void(WorkerInterface*)> on_dead);
  ~HealthProber();

  // Stops the prober thread; idempotent. No on_dead fires after it returns.
  void Stop();

  // Consecutive misses currently held against `task` (tests).
  int misses(const std::string& task) const;

 private:
  void Loop();
  void ProbeRound();
  // The coming round's wait, with jitter applied.
  double JitteredIntervalSeconds();

  Cluster* cluster_;
  Options options_;
  std::string session_;
  std::function<void(WorkerInterface*)> on_dead_;
  uint64_t jitter_state_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::map<std::string, int> misses_;
  std::thread thread_;
};

}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_HEALTH_PROBER_H_
