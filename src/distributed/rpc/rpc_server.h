// Server side of the socket transport (DESIGN.md §11). One RpcServer per
// process role: worker_main runs one for the worker service, the master
// process runs one for the rendezvous hub. An accept thread hands each
// connection to its own reader thread; handlers run inline on the reader
// thread and respond through a Responder, which may be held past the
// handler's return for long-poll methods (RecvTensor answers when the
// matching Send arrives, RunGraph when the step's executors finish).
//
// Response frames echo the request_id and method and carry
// [status code, status message, method payload...] in the body, written
// under a per-connection mutex so inline and deferred responses interleave
// safely. A Responder whose connection died drops the response on the
// floor — the client's reader noticed the same death and already failed
// the call.

#ifndef TFREPRO_DISTRIBUTED_RPC_RPC_SERVER_H_
#define TFREPRO_DISTRIBUTED_RPC_RPC_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "core/tensor.h"
#include "distributed/rpc/wire.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

class RpcServer {
 public:
  // Answers one request; safe to call from any thread, exactly once.
  class Responder {
   public:
    Responder(std::shared_ptr<void> conn, uint64_t request_id, uint8_t method);

    // `body` is the method payload; the application status is prepended.
    // The optional payload is gathered after the body (minimal-copy tensor
    // reply) and must stay alive for the duration of the call.
    void Respond(const Status& status, const std::string& body,
                 const char* payload = nullptr, size_t payload_len = 0);

   private:
    std::shared_ptr<void> conn_;  // keeps the connection alive
    uint64_t request_id_;
    uint8_t method_;
    // When the request was parsed off the wire; Respond records the
    // elapsed server handling time as rpc.server_handle_us (per method).
    int64_t start_micros_;
    std::atomic<bool> responded_{false};
  };

  using Handler = std::function<void(const std::string& body,
                                     std::shared_ptr<Responder> responder)>;

  RpcServer() = default;
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  // All handlers must be registered before Start.
  void RegisterHandler(Method method, Handler handler);

  // Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  // accept thread.
  Status Start(int port);
  int port() const { return port_; }

  // Stops accepting, severs every connection and joins all threads.
  // Pending Responders outlive this safely (they drop their responses).
  // Idempotent.
  void Shutdown();

 private:
  struct Conn;
  void AcceptLoop();
  void ConnLoop(std::shared_ptr<Conn> conn);

  std::map<uint8_t, Handler> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> shutdown_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_RPC_RPC_SERVER_H_
