#include "distributed/rpc/remote_worker.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "distributed/fault_injector.h"
#include "graph/graph_io.h"
#include "runtime/kernel.h"
#include "runtime/tracing.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

namespace {

// Splits a response body into (application status, remaining offset).
Status ParseAppStatus(const std::string& body, size_t* offset) {
  Status app;
  if (!ReadStatus(body, offset, &app)) {
    return DataLoss("malformed rpc response (no status)");
  }
  return app;
}

}  // namespace

RemoteWorker::RemoteWorker(const std::string& job, int task_index, int port,
                           double rpc_deadline_seconds,
                           FaultInjector* injector, ThreadPool* delay_pool)
    : job_(job),
      task_index_(task_index),
      rpc_deadline_seconds_(rpc_deadline_seconds),
      injector_(injector),
      delay_pool_(delay_pool),
      channel_(/*peer=*/"/job:" + job + "/task:" + std::to_string(task_index),
               port) {}

Status RemoteWorker::RegisterSubgraph(const std::string& handle,
                                      const std::string& segment,
                                      std::unique_ptr<Graph> partition,
                                      const std::string& device_name) {
  std::string body;
  AppendString(&body, handle);
  AppendString(&body, segment);
  AppendString(&body, device_name);
  AppendGraphToBytes(*partition, &body);
  Result<std::string> response =
      channel_.CallSync(Method::kRegisterSubgraph, body, rpc_deadline_seconds_);
  TF_RETURN_IF_ERROR(response.status());
  size_t offset = 0;
  return ParseAppStatus(response.value(), &offset);
}

void RemoteWorker::RunSubgraphsAsync(const std::string& handle,
                                     const Executor::Args& args,
                                     std::function<void(Status)> done) {
  // Scripted faults are decided here, master-side, so one injector script
  // drives both transports identically. (Real crashes need none of this:
  // the dead process resets the connection and the channel fails the call.)
  double delay_seconds = 0.0;
  if (injector_ != nullptr) {
    FaultInjector::Decision decision = injector_->OnDispatch(task_name());
    switch (decision.action) {
      case FaultInjector::Action::kKill:
        done(Unavailable("task " + task_name() + " is down"));
        return;
      case FaultInjector::Action::kHang:
        injector_->ParkHung(task_name(), std::move(done));
        return;
      case FaultInjector::Action::kProceed:
        delay_seconds = decision.delay_seconds;
        break;
    }
  }
  if (delay_seconds > 0.0) {
    delay_pool_->Schedule([this, handle, args, done = std::move(done),
                           delay_seconds]() mutable {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay_seconds));
      DispatchNow(handle, args, std::move(done));
    });
    return;
  }
  DispatchNow(handle, args, std::move(done));
}

void RemoteWorker::DispatchNow(const std::string& handle,
                               const Executor::Args& args,
                               std::function<void(Status)> done) {
  std::string body;
  AppendString(&body, handle);
  AppendInt64(&body, args.step_id);
  CallFrame* frame = args.call_frame;
  const int64_t num_fetches = frame != nullptr ? frame->num_fetches() : 0;
  const std::vector<Tensor> empty_feeds;
  const std::vector<Tensor>& feeds =
      frame != nullptr ? frame->feeds() : empty_feeds;
  AppendInt64(&body, num_fetches);
  AppendInt64(&body, static_cast<int64_t>(feeds.size()));
  for (const Tensor& feed : feeds) feed.AppendToBytes(&body);
  // Traced steps ask the worker to run under a TraceCollector and ship its
  // StepStats back on this response (DESIGN.md §12).
  TraceCollector* trace = args.trace;
  AppendInt64(&body, trace != nullptr ? 1 : 0);

  // The RPC deadline stretches to the step deadline (never below the
  // control floor) so a wedged worker cannot hang a deadline-bearing step;
  // with no step deadline the dispatch waits indefinitely, exactly like the
  // in-process transport — connection loss is then the only failure path.
  const double deadline =
      args.deadline_seconds > 0.0
          ? std::max(args.deadline_seconds, rpc_deadline_seconds_)
          : 0.0;

  const int64_t t0 = metrics::NowMicros();
  channel_.Call(
      Method::kRunGraph, std::move(body), nullptr, 0, deadline,
      [frame, trace, t0, done = std::move(done)](const Status& transport,
                                                 std::string response) {
        if (!transport.ok()) {
          done(transport);
          return;
        }
        size_t offset = 0;
        Status app = ParseAppStatus(response, &offset);
        if (!app.ok()) {
          done(app);
          return;
        }
        // Merge the fetch slots this task produced into the master's frame.
        int64_t produced = 0;
        if (!ReadInt64(response, &offset, &produced)) {
          done(DataLoss("malformed RunGraph response"));
          return;
        }
        for (int64_t i = 0; i < produced; ++i) {
          int64_t index = 0;
          if (!ReadInt64(response, &offset, &index)) {
            done(DataLoss("malformed RunGraph response"));
            return;
          }
          Result<Tensor> fetch = Tensor::ParseFromBytes(response, &offset);
          if (!fetch.ok()) {
            done(fetch.status());
            return;
          }
          if (frame != nullptr) {
            Status set = frame->SetFetch(static_cast<int>(index),
                                         std::move(fetch.value()));
            if (!set.ok()) {
              done(set);
              return;
            }
          }
        }
        // Stitch the worker's trace into the master's collector with its
        // timestamps normalized onto the master clock: assuming the
        // network legs of the RPC are symmetric, the request arrived at
        // the worker at master-time t0 + (rtt - worker_handling) / 2, and
        // the worker stamped that moment w0 on its own clock.
        int64_t traced = 0;
        if (!ReadInt64(response, &offset, &traced)) {
          done(DataLoss("malformed RunGraph response"));
          return;
        }
        if (traced != 0) {
          int64_t w0 = 0, w1 = 0;
          StepStats stats;
          if (!ReadInt64(response, &offset, &w0) ||
              !ReadInt64(response, &offset, &w1) ||
              !StepStats::ParseFromBytes(response, &offset, &stats)) {
            done(DataLoss("malformed RunGraph trace payload"));
            return;
          }
          if (trace != nullptr) {
            const int64_t t1 = metrics::NowMicros();
            const int64_t wire_us = std::max<int64_t>(
                (t1 - t0) - (w1 - w0), 0);
            stats.ShiftTimes((t0 + wire_us / 2) - w0);
            trace->MergeStepStats(stats);
          }
        }
        done(Status::OK());
      });
}

void RemoteWorker::PingAsync(std::function<void(Status)> done) {
  if (injector_ != nullptr) {
    FaultInjector::Decision decision = injector_->OnProbe(task_name());
    switch (decision.action) {
      case FaultInjector::Action::kKill:
        done(Unavailable("task " + task_name() + " refused probe"));
        return;
      case FaultInjector::Action::kHang:
        injector_->ParkHung(task_name(), std::move(done));
        return;
      case FaultInjector::Action::kProceed:
        if (decision.delay_seconds > 0.0) {
          delay_pool_->Schedule(
              [this, done = std::move(done), delay = decision.delay_seconds]() {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(delay));
                PingNow(std::move(done));
              });
          return;
        }
        break;
    }
  }
  PingNow(std::move(done));
}

void RemoteWorker::PingNow(std::function<void(Status)> done) {
  // The channel fails fast while the peer's reconnect backoff is pending,
  // so a dead process never wedges the prober's probe round.
  channel_.Call(Method::kPing, std::string(), nullptr, 0,
                rpc_deadline_seconds_,
                [done = std::move(done)](const Status& transport,
                                         std::string response) {
                  if (!transport.ok()) {
                    done(transport);
                    return;
                  }
                  size_t offset = 0;
                  done(ParseAppStatus(response, &offset));
                });
}

bool RemoteWorker::HasSubgraphs(const std::string& handle) const {
  std::string body;
  AppendString(&body, handle);
  Result<std::string> response =
      channel_.CallSync(Method::kHasSubgraphs, body, rpc_deadline_seconds_);
  // Any failure reads as "not registered": the master then re-registers,
  // which is exactly right for a freshly restarted (empty) process.
  if (!response.ok()) return false;
  size_t offset = 0;
  if (!ParseAppStatus(response.value(), &offset).ok()) return false;
  int64_t has = 0;
  if (!ReadInt64(response.value(), &offset, &has)) return false;
  return has != 0;
}

void RemoteWorker::TargetRestartedProcess(int port) {
  channel_.ResetTarget(port);
  incarnation_.fetch_add(1);
}

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro
