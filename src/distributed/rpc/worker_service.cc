#include "distributed/rpc/worker_service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "distributed/data_service.h"
#include "distributed/fault_injector.h"
#include "graph/graph_io.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

WorkerRendezvous::WorkerRendezvous(RpcChannel* hub, ThreadPool* done_pool,
                                   int64_t step_id,
                                   double send_deadline_seconds)
    : hub_(hub),
      done_pool_(done_pool),
      step_id_(step_id),
      send_deadline_seconds_(send_deadline_seconds) {}

bool WorkerRendezvous::IsCrossTaskKey(const std::string& key) {
  return distributed::IsCrossTaskKey(key);
}

Status WorkerRendezvous::Send(const std::string& key, const Tensor& value,
                              bool is_dead) {
  if (!IsCrossTaskKey(key)) return local_.Send(key, value, is_dead);
  std::string body;
  AppendInt64(&body, step_id_);
  AppendString(&body, key);
  AppendInt64(&body, is_dead ? 1 : 0);
  const char* payload = nullptr;
  size_t payload_len = 0;
  AppendTensorMeta(value, &body, &payload, &payload_len);
  Result<std::string> response = hub_->CallSync(
      Method::kSendTensor, body, payload, payload_len, send_deadline_seconds_);
  TF_RETURN_IF_ERROR(response.status());
  size_t offset = 0;
  Status app;
  if (!ReadStatus(response.value(), &offset, &app)) {
    return DataLoss("malformed SendTensor response");
  }
  return app;
}

void WorkerRendezvous::RecvAsync(const std::string& key, DoneCallback done) {
  if (!IsCrossTaskKey(key)) {
    local_.RecvAsync(key, std::move(done));
    return;
  }
  std::string body;
  AppendInt64(&body, step_id_);
  AppendString(&body, key);
  // No deadline: a Recv may legitimately park for the whole step. A dead
  // master resets the connection, which fails this poll with Unavailable; a
  // step abort at the hub answers it with the abort status.
  // The completion is parsed on the channel's reader thread but `done` is
  // dispatched to the pool: done resumes the executor, whose downstream
  // nodes may issue a blocking Send on this same channel — running them on
  // the reader thread would deadlock against our own response stream.
  hub_->Call(
      Method::kRecvTensor, std::move(body), nullptr, 0,
      /*deadline_seconds=*/0.0,
      [done = std::move(done), pool = done_pool_](const Status& transport,
                                                  std::string response) {
        Status status = transport;
        Tensor value;
        bool is_dead = false;
        if (status.ok()) {
          size_t offset = 0;
          Status app;
          int64_t dead = 0;
          if (!ReadStatus(response, &offset, &app)) {
            status = DataLoss("malformed RecvTensor response");
          } else if (!app.ok()) {
            status = app;
          } else if (!ReadInt64(response, &offset, &dead)) {
            status = DataLoss("malformed RecvTensor response");
          } else {
            Result<Tensor> parsed = Tensor::ParseFromBytes(response, &offset);
            if (!parsed.ok()) {
              status = parsed.status();
            } else {
              value = std::move(parsed.value());
              is_dead = dead != 0;
            }
          }
        }
        pool->Schedule([done = std::move(done), status = std::move(status),
                        value = std::move(value), is_dead]() {
          done(status, value, is_dead);
        });
      });
}

void WorkerRendezvous::StartAbort(const Status& status) {
  // Only local waiters need the push; cross-task polls are parked at the
  // hub, where the master's own abort (or connection teardown) fails them.
  local_.StartAbort(status);
}

WorkerService::WorkerService(const Options& options)
    : options_(options),
      recv_done_pool_("recv-done", std::max(2, options.num_threads)),
      worker_(options.job, options.task_index, options.num_threads,
              options.num_devices, /*injector=*/nullptr),
      hub_("hub", options.hub_port) {}

void WorkerService::AttachDataService(
    std::shared_ptr<DataServiceHandler> handler) {
  data_service_ = std::move(handler);
}

WorkerService::~WorkerService() {
  // Unblock reader threads parked in a dataset GetNext before joining them.
  if (data_service_ != nullptr) data_service_->Cancel();
  server_.Shutdown();
  hub_.Shutdown();
  // Abort whatever steps are still running and wait for their executors to
  // let go of the per-step contexts before members start destructing.
  std::unique_lock<std::mutex> lock(steps_mu_);
  for (auto& [step_id, ctx] : steps_) {
    ctx->cancellation.StartCancel();
    ctx->rendezvous->StartAbort(Cancelled("worker shutting down"));
  }
  steps_done_cv_.wait(lock, [this]() { return steps_.empty(); });
}

Status WorkerService::Start(int port) {
  server_.RegisterHandler(
      Method::kRegisterSubgraph,
      [this](const std::string& body,
             std::shared_ptr<RpcServer::Responder> responder) {
        HandleRegisterSubgraph(body, std::move(responder));
      });
  server_.RegisterHandler(
      Method::kRunGraph,
      [this](const std::string& body,
             std::shared_ptr<RpcServer::Responder> responder) {
        HandleRunGraph(body, std::move(responder));
      });
  server_.RegisterHandler(
      Method::kCancelStep,
      [this](const std::string& body,
             std::shared_ptr<RpcServer::Responder> responder) {
        HandleCancelStep(body, std::move(responder));
      });
  server_.RegisterHandler(
      Method::kPing, [](const std::string& body,
                        std::shared_ptr<RpcServer::Responder> responder) {
        (void)body;
        responder->Respond(Status::OK(), std::string());
      });
  server_.RegisterHandler(
      Method::kHasSubgraphs,
      [this](const std::string& body,
             std::shared_ptr<RpcServer::Responder> responder) {
        size_t offset = 0;
        std::string handle;
        if (!ReadString(body, &offset, &handle)) {
          responder->Respond(InvalidArgument("malformed HasSubgraphs request"),
                             std::string());
          return;
        }
        std::string reply;
        AppendInt64(&reply, worker_.HasSubgraphs(handle) ? 1 : 0);
        responder->Respond(Status::OK(), reply);
      });
  server_.RegisterHandler(
      Method::kShutdown,
      [this](const std::string& body,
             std::shared_ptr<RpcServer::Responder> responder) {
        (void)body;
        responder->Respond(Status::OK(), std::string());
        RequestShutdown();
      });
  server_.RegisterHandler(
      Method::kGetElement,
      [this](const std::string& body,
             std::shared_ptr<RpcServer::Responder> responder) {
        if (data_service_ == nullptr) {
          responder->Respond(
              FailedPrecondition("this task hosts no data service"),
              std::string());
          return;
        }
        data_service_->HandleGetElement(
            body, [responder](const Status& s, const std::string& resp) {
              responder->Respond(s, resp);
            });
      });
  return server_.Start(port);
}

void WorkerService::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this]() { return shutdown_requested_; });
}

void WorkerService::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void WorkerService::HandleRegisterSubgraph(
    const std::string& body, std::shared_ptr<RpcServer::Responder> responder) {
  size_t offset = 0;
  std::string handle, segment, device_name;
  if (!ReadString(body, &offset, &handle) ||
      !ReadString(body, &offset, &segment) ||
      !ReadString(body, &offset, &device_name)) {
    responder->Respond(InvalidArgument("malformed RegisterSubgraph request"),
                       std::string());
    return;
  }
  Result<std::unique_ptr<Graph>> graph = ParseGraphFromBytes(body, &offset);
  if (!graph.ok()) {
    responder->Respond(graph.status(), std::string());
    return;
  }
  responder->Respond(worker_.RegisterSubgraph(handle, segment,
                                              std::move(graph.value()),
                                              device_name),
                     std::string());
}

void WorkerService::HandleRunGraph(
    const std::string& body, std::shared_ptr<RpcServer::Responder> responder) {
  const int64_t recv_micros = metrics::NowMicros();
  size_t offset = 0;
  std::string handle;
  int64_t step_id = 0, num_fetches = 0, num_feeds = 0;
  if (!ReadString(body, &offset, &handle) ||
      !ReadInt64(body, &offset, &step_id) ||
      !ReadInt64(body, &offset, &num_fetches) ||
      !ReadInt64(body, &offset, &num_feeds) || num_fetches < 0 ||
      num_feeds < 0) {
    responder->Respond(InvalidArgument("malformed RunGraph request"),
                       std::string());
    return;
  }
  std::vector<Tensor> feeds;
  feeds.reserve(num_feeds);
  for (int64_t i = 0; i < num_feeds; ++i) {
    Result<Tensor> feed = Tensor::ParseFromBytes(body, &offset);
    if (!feed.ok()) {
      responder->Respond(feed.status(), std::string());
      return;
    }
    feeds.push_back(std::move(feed.value()));
  }
  int64_t traced = 0;
  if (!ReadInt64(body, &offset, &traced)) {
    responder->Respond(InvalidArgument("malformed RunGraph request"),
                       std::string());
    return;
  }

  auto ctx = std::make_shared<StepCtx>();
  ctx->frame = std::make_unique<CallFrame>(std::move(feeds),
                                           static_cast<int>(num_fetches));
  ctx->rendezvous = std::make_shared<WorkerRendezvous>(
      &hub_, &recv_done_pool_, step_id, options_.rpc_deadline_seconds);
  ctx->args.step_id = step_id;
  ctx->args.rendezvous = ctx->rendezvous.get();
  ctx->args.call_frame = ctx->frame.get();
  ctx->args.cancellation = &ctx->cancellation;
  if (traced != 0) {
    ctx->trace = std::make_unique<TraceCollector>(/*capture_global_events=*/
                                                  true);
    ctx->args.trace = ctx->trace.get();
    ctx->recv_micros = recv_micros;
  }
  {
    std::lock_guard<std::mutex> lock(steps_mu_);
    steps_[step_id] = ctx;
  }

  worker_.RunSubgraphsAsync(
      handle, ctx->args,
      [this, ctx, step_id, responder](Status status) {
        std::string reply;
        if (status.ok()) {
          // Ship back only the fetch slots this task's partitions produced;
          // the master merges per-task responses into its own call frame.
          const std::vector<Tensor>& fetches = ctx->frame->fetches();
          int64_t produced = 0;
          for (const Tensor& t : fetches) {
            if (t.IsInitialized()) ++produced;
          }
          AppendInt64(&reply, produced);
          for (size_t i = 0; i < fetches.size(); ++i) {
            if (!fetches[i].IsInitialized()) continue;
            AppendInt64(&reply, static_cast<int64_t>(i));
            fetches[i].AppendToBytes(&reply);
          }
          // Trace payload: [traced][w0][w1][StepStats]. w0/w1 bracket this
          // process's handling so the master can estimate the clock offset
          // from its own send/receive timestamps (DESIGN.md §12).
          AppendInt64(&reply, ctx->trace != nullptr ? 1 : 0);
          if (ctx->trace != nullptr) {
            StepStats stats = ctx->trace->Consume(step_id);
            AppendInt64(&reply, ctx->recv_micros);
            AppendInt64(&reply, metrics::NowMicros());
            stats.AppendToBytes(&reply);
          }
        }
        {
          std::lock_guard<std::mutex> lock(steps_mu_);
          steps_.erase(step_id);
          steps_done_cv_.notify_all();
        }
        responder->Respond(status, reply);
      });
}

void WorkerService::HandleCancelStep(
    const std::string& body, std::shared_ptr<RpcServer::Responder> responder) {
  size_t offset = 0;
  int64_t step_id = 0;
  Status reason;
  if (!ReadInt64(body, &offset, &step_id) ||
      !ReadStatus(body, &offset, &reason)) {
    responder->Respond(InvalidArgument("malformed CancelStep request"),
                       std::string());
    return;
  }
  std::shared_ptr<StepCtx> ctx;
  {
    std::lock_guard<std::mutex> lock(steps_mu_);
    auto it = steps_.find(step_id);
    if (it != steps_.end()) ctx = it->second;
  }
  if (ctx != nullptr) {
    ctx->cancellation.StartCancel();
    ctx->rendezvous->StartAbort(
        reason.ok() ? Aborted("step " + std::to_string(step_id) + " cancelled")
                    : reason);
  }
  // Unknown step = already finished; cancellation is idempotent either way.
  responder->Respond(Status::OK(), std::string());
}

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro
