// Master-side stub for one worker process (DESIGN.md §11): implements
// WorkerInterface over an RpcChannel, so the master's compile/dispatch/
// probe/recovery machinery is byte-for-byte the same code as in-process.
//
// Fault-injection decisions are applied client-side, before the RPC is
// written: a scripted kill refuses the dispatch with Unavailable, a
// scripted hang parks the callback, a delay defers the send. Real process
// death needs no injector at all — the connection resets and the channel
// fails the call with a retryable error.

#ifndef TFREPRO_DISTRIBUTED_RPC_REMOTE_WORKER_H_
#define TFREPRO_DISTRIBUTED_RPC_REMOTE_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"
#include "core/threadpool.h"
#include "distributed/cluster.h"
#include "distributed/rpc/rpc_channel.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

class RemoteWorker : public WorkerInterface {
 public:
  // `injector` (optional) applies scripted faults client-side; `delay_pool`
  // (required when injector delays are used) carries deferred dispatches.
  // Both must outlive this stub.
  RemoteWorker(const std::string& job, int task_index, int port,
               double rpc_deadline_seconds, FaultInjector* injector,
               ThreadPool* delay_pool);

  const std::string& job() const override { return job_; }
  int task_index() const override { return task_index_; }

  Status RegisterSubgraph(const std::string& handle, const std::string& segment,
                          std::unique_ptr<Graph> partition,
                          const std::string& device_name) override;

  void RunSubgraphsAsync(const std::string& handle, const Executor::Args& args,
                         std::function<void(Status)> done) override;

  void PingAsync(std::function<void(Status)> done) override;

  bool HasSubgraphs(const std::string& handle) const override;

  int64_t incarnation() const override { return incarnation_.load(); }

  // --- used by ProcessCluster on restart ---
  // Points the channel at the respawned process and bumps incarnation, so
  // the master re-registers subgraphs instead of trusting stale ones.
  void TargetRestartedProcess(int port);

  RpcChannel* channel() { return &channel_; }

 private:
  // The RPCs themselves, after fault-injection decisions are resolved.
  void DispatchNow(const std::string& handle, const Executor::Args& args,
                   std::function<void(Status)> done);
  void PingNow(std::function<void(Status)> done);

  const std::string job_;
  const int task_index_;
  const double rpc_deadline_seconds_;
  FaultInjector* injector_;
  ThreadPool* delay_pool_;
  mutable RpcChannel channel_;
  std::atomic<int64_t> incarnation_{1};
};

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_RPC_REMOTE_WORKER_H_
