// Master-side tensor hub for the socket transport (DESIGN.md §11). Worker
// processes cannot share a LocalRendezvous across address spaces, so every
// cross-task Send/Recv is proxied to the master: the hub maps step_id to
// that step's master-side rendezvous (the same Throttled/FaultInjecting
// chain the in-process transport uses) and serves two methods:
//
//   SendTensor(step_id, key, is_dead, tensor) -> status
//   RecvTensor(step_id, key) -> status, is_dead, tensor   [long-poll]
//
// RecvTensor parks the responder in the rendezvous' waiter queue; the
// response goes out whenever the matching Send lands (possibly from
// another worker's connection) or the step aborts — the hub thread never
// blocks. Operations against a step that is not registered (never started,
// or already torn down) answer with retryable Aborted, so stragglers from
// a killed step die quietly on the worker side.
//
// Hub-and-spoke doubles the hop count versus worker-to-worker links
// (worker -> hub -> worker), which is the honest cost of keeping one
// rendezvous implementation; on localhost the extra hop is microseconds.

#ifndef TFREPRO_DISTRIBUTED_RPC_RENDEZVOUS_HUB_H_
#define TFREPRO_DISTRIBUTED_RPC_RENDEZVOUS_HUB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/status.h"
#include "distributed/rpc/rpc_server.h"
#include "runtime/rendezvous.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

class RendezvousHub {
 public:
  RendezvousHub() = default;
  ~RendezvousHub();

  // Starts the hub server on an ephemeral localhost port (see port()).
  Status Start();
  int port() const { return server_.port(); }
  void Shutdown();

  // Makes `rendezvous` reachable for `step_id`. The hub shares ownership
  // until DeregisterStep, so parked RecvTensor responders stay valid even
  // if the master's step state is torn down first.
  void RegisterStep(int64_t step_id, std::shared_ptr<Rendezvous> rendezvous);
  void DeregisterStep(int64_t step_id);

  int num_active_steps() const;

 private:
  void HandleSendTensor(const std::string& body,
                        std::shared_ptr<RpcServer::Responder> responder);
  void HandleRecvTensor(const std::string& body,
                        std::shared_ptr<RpcServer::Responder> responder);
  std::shared_ptr<Rendezvous> LookupStep(int64_t step_id) const;

  RpcServer server_;
  mutable std::mutex mu_;
  std::map<int64_t, std::shared_ptr<Rendezvous>> steps_;
};

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_RPC_RENDEZVOUS_HUB_H_
