// Client side of the socket transport (DESIGN.md §11): one RpcChannel per
// peer process, multiplexing concurrent calls over a single TCP connection.
//
// Robustness contract:
//   * Per-call deadlines: a call with deadline_seconds > 0 completes with
//     retryable DeadlineExceeded when no response arrives in time (a
//     dedicated sweeper thread enforces this even when the connection
//     stays healthy but the peer is wedged).
//   * Reconnect with exponential backoff + jitter: a lost connection marks
//     the channel disconnected and stamps the next allowed attempt; calls
//     before that stamp fail fast with Unavailable, the first call after
//     it redials (rpc.reconnects). Backoff doubles per failed dial up to a
//     cap and resets on success; jitter decorrelates a fleet of masters
//     redialing a restarted worker.
//   * Dead-peer errors are errno-mapped Status (ECONNRESET / EPIPE /
//     ECONNREFUSED -> Unavailable) so Status::IsRetryable() is true and
//     the master's step retry loop treats a killed process like any other
//     transient fault.
//   * A write that fails before the frame is fully flushed is retried once
//     on a fresh connection (rpc.send_retries) — the peer cannot have
//     parsed a half-written frame, so the retry cannot double-execute.
//     Fully-written requests are NEVER resent; delivery-uncertain failures
//     surface to the caller (the master's step retry owns those).
//   * Shutdown / target reset fail every pending call immediately; no
//     callback is ever dropped silently.

#ifndef TFREPRO_DISTRIBUTED_RPC_RPC_CHANNEL_H_
#define TFREPRO_DISTRIBUTED_RPC_RPC_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "distributed/rpc/wire.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

class RpcChannel {
 public:
  struct Options {
    double connect_timeout_seconds = 2.0;
    double backoff_initial_seconds = 0.005;
    double backoff_max_seconds = 0.25;
    // Each backoff wait is scaled by a uniform factor in
    // [1 - fraction, 1 + fraction].
    double backoff_jitter_fraction = 0.25;
    // Write-failure retries per call (on a fresh connection).
    int max_send_retries = 1;
  };

  // `peer` names the remote end in error messages ("/job:ps/task:0",
  // "hub"). The channel dials lazily on the first call.
  RpcChannel(std::string peer, int port) : RpcChannel(peer, port, Options()) {}
  RpcChannel(std::string peer, int port, const Options& options);
  ~RpcChannel();

  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  // Transport status + raw response body (which itself starts with the
  // application Status — see server framing). `done` fires exactly once,
  // possibly inline on the calling thread (fail-fast paths) or from the
  // reader/sweeper thread.
  using Callback = std::function<void(const Status&, std::string)>;

  // `payload`, when non-null, is gathered into the frame after `body`
  // (minimal-copy tensor send) and must stay alive for the duration of the
  // Call invocation only — frames are written synchronously.
  // deadline_seconds <= 0 means no deadline (the call still fails when the
  // connection dies).
  void Call(Method method, std::string body, const char* payload,
            size_t payload_len, double deadline_seconds, Callback done);

  Result<std::string> CallSync(Method method, const std::string& body,
                               double deadline_seconds) {
    return CallSync(method, body, nullptr, 0, deadline_seconds);
  }
  Result<std::string> CallSync(Method method, const std::string& body,
                               const char* payload, size_t payload_len,
                               double deadline_seconds);

  // Points the channel at a restarted peer: drops the connection, fails
  // every pending call with Unavailable, clears the backoff stamp so the
  // next call dials immediately.
  void ResetTarget(int port);

  // Fails pending calls with Cancelled and joins the reader/sweeper
  // threads. Idempotent; the destructor calls it.
  void Shutdown();

  bool connected() const;
  int port() const;

 private:
  struct Pending {
    Callback done;
    int64_t deadline_micros = 0;  // 0 = none
  };

  // Dials if disconnected and the backoff stamp allows; updates backoff
  // state on failure. Must hold mu_.
  Status EnsureConnectedLocked();
  // Detaches every pending call into `out` (for invocation outside the
  // lock). Must hold mu_.
  void TakePendingLocked(std::vector<Pending>* out);
  // Closes the socket (shutdown + close) so a blocked reader unblocks.
  // Must hold mu_.
  void CloseConnLocked();
  void ReaderLoop(int fd);
  void SweepLoop();
  double NextJitterFactor();  // must hold mu_

  const std::string peer_;
  const Options options_;

  mutable std::mutex mu_;
  int port_;
  int fd_ = -1;
  bool shutdown_ = false;
  bool ever_connected_ = false;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Pending> pending_;

  // Reconnect backoff state.
  double backoff_seconds_;
  int64_t next_attempt_micros_ = 0;
  uint64_t jitter_state_;

  // Reader for the current connection; joined before redialing (it exits
  // as soon as its fd dies). The sweeper starts lazily with the first
  // deadline-bearing call and lives until Shutdown.
  std::thread reader_;
  std::thread sweeper_;
  std::condition_variable sweep_cv_;
};

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_RPC_RPC_CHANNEL_H_
