#include "distributed/rpc/rpc_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <utility>
#include <vector>

#include "core/metrics.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

namespace {

// Server-side handling latency (request parsed → response written),
// tagged by method. Mirrors the client's rpc.call_latency_us; the gap
// between the two is wire + queueing time.
metrics::Histogram* ServerHandleHistogram(uint8_t method) {
  static const auto* hists = []() {
    auto* a = new std::array<metrics::Histogram*,
                             static_cast<size_t>(Method::kRecvTensor) + 1>{};
    std::vector<double> buckets = {10,     40,     160,     640,
                                   2560,   10240,  40960,   163840,
                                   655360, 2621440, 10485760};
    for (size_t m = 1; m < a->size(); ++m) {
      (*a)[m] = metrics::Registry::Global()->GetHistogram(
          "rpc.server_handle_us", buckets,
          {{"method", MethodName(static_cast<Method>(m))}});
    }
    return a;
  }();
  const size_t m = method;
  return m < hists->size() && (*hists)[m] != nullptr ? (*hists)[m]
                                                     : (*hists)[1];
}

}  // namespace

struct RpcServer::Conn {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> closed{false};

  void Sever() {
    bool was_closed = closed.exchange(true);
    if (!was_closed && fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

RpcServer::Responder::Responder(std::shared_ptr<void> conn,
                                uint64_t request_id, uint8_t method)
    : conn_(std::move(conn)),
      request_id_(request_id),
      method_(method),
      start_micros_(metrics::NowMicros()) {}

void RpcServer::Responder::Respond(const Status& status,
                                   const std::string& body,
                                   const char* payload, size_t payload_len) {
  if (responded_.exchange(true)) return;  // exactly-once
  ServerHandleHistogram(method_)->Record(
      static_cast<double>(metrics::NowMicros() - start_micros_));
  auto conn = std::static_pointer_cast<Conn>(conn_);
  if (conn->closed.load()) return;  // peer is gone; drop the response
  std::string framed;
  framed.reserve(body.size() + 32);
  AppendStatus(&framed, status);
  framed.append(body);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load()) return;
  Status ws = WriteFrame(conn->fd, request_id_, /*is_response=*/true, method_,
                         framed, payload, payload_len);
  if (!ws.ok()) conn->Sever();  // client reader sees the same death
}

RpcServer::~RpcServer() { Shutdown(); }

void RpcServer::RegisterHandler(Method method, Handler handler) {
  handlers_[static_cast<uint8_t>(method)] = std::move(handler);
}

Status RpcServer::Start(int port) {
  Result<int> listen_fd = ListenLocalhost(port, &port_);
  TF_RETURN_IF_ERROR(listen_fd.status());
  listen_fd_ = listen_fd.value();
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::AcceptLoop() {
  while (!shutdown_.load()) {
    Result<int> fd = AcceptConnection(listen_fd_);
    if (!fd.ok()) {
      if (shutdown_.load()) return;
      continue;  // transient accept failure; keep serving
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd.value();
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (shutdown_.load()) {
      conn->Sever();
      return;
    }
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn]() { ConnLoop(conn); });
  }
}

void RpcServer::ConnLoop(std::shared_ptr<Conn> conn) {
  for (;;) {
    Result<Frame> frame = ReadFrame(conn->fd);
    if (!frame.ok()) {
      conn->Sever();
      return;
    }
    if (frame.value().is_response) continue;  // protocol error; ignore
    auto responder = std::make_shared<Responder>(conn, frame.value().request_id,
                                                 frame.value().method);
    auto it = handlers_.find(frame.value().method);
    if (it == handlers_.end()) {
      responder->Respond(
          Unimplemented("no handler for method " +
                        std::to_string(frame.value().method)),
          std::string());
      continue;
    }
    // Handlers run inline: every registered handler either answers fast or
    // hands the responder off to asynchronous work (executors, rendezvous
    // callbacks), so the reader is never blocked for long.
    it->second(frame.value().body, std::move(responder));
  }
}

void RpcServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
    threads.swap(conn_threads_);
  }
  for (auto& conn : conns) conn->Sever();
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro
