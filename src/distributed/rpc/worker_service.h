// The server side of one worker process (DESIGN.md §11). worker_main
// instantiates a WorkerService, which owns:
//
//   * a TaskWorker — the same devices/executors/subgraph registry the
//     in-process transport uses, so kernels behave identically under both
//     transports;
//   * an RpcServer answering the master's control RPCs (RegisterSubgraph,
//     RunGraph, Ping, HasSubgraphs, CancelStep, Shutdown);
//   * an RpcChannel to the master's rendezvous hub, through which every
//     cross-task tensor flows.
//
// Each RunGraph builds a per-step context: the call frame rebuilt from the
// shipped feeds, a cancellation manager, and a WorkerRendezvous that routes
// same-task transfers through a process-local rendezvous and cross-task
// transfers to the hub. When the step's executors finish, the initialized
// fetch slots are shipped back in the response and the context is dropped.
//
// CancelStep lets the master abort a step whose failure it noticed first
// (another worker died): local waiters park in the process-local
// rendezvous, which the hub's abort cannot reach, so the master must tell
// each surviving worker explicitly.

#ifndef TFREPRO_DISTRIBUTED_RPC_WORKER_SERVICE_H_
#define TFREPRO_DISTRIBUTED_RPC_WORKER_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/status.h"
#include "distributed/cluster.h"
#include "distributed/rpc/rpc_channel.h"
#include "distributed/rpc/rpc_server.h"
#include "runtime/kernel.h"
#include "runtime/rendezvous.h"
#include "runtime/tracing.h"

namespace tfrepro {
namespace distributed {

class DataServiceHandler;

namespace rpc {

// Per-step rendezvous inside a worker process. Same-task keys (both
// endpoint devices on this process's task) use a process-local
// LocalRendezvous; cross-task keys go to the master's hub — Send pushes the
// tensor with one bounded RPC, Recv long-polls (no deadline: a legitimate
// Recv may wait arbitrarily long, and a dead master resets the connection,
// which fails the poll with a retryable error).
class WorkerRendezvous : public Rendezvous {
 public:
  // `hub` and `done_pool` must outlive this rendezvous.
  // `send_deadline_seconds` bounds the SendTensor RPC (the hub answers it
  // immediately; only a wedged master can stall it). Recv completions are
  // dispatched onto `done_pool`, NEVER run inline on the hub channel's
  // reader thread: the executor continues downstream nodes inside `done`,
  // and a downstream cross-task Send blocks on a hub response that only
  // that reader thread could deliver — inline completion would deadlock
  // every recv→compute→send chain until the step deadline.
  WorkerRendezvous(RpcChannel* hub, ThreadPool* done_pool, int64_t step_id,
                   double send_deadline_seconds);

  Status Send(const std::string& key, const Tensor& value,
              bool is_dead) override;
  void RecvAsync(const std::string& key, DoneCallback done) override;
  void StartAbort(const Status& status) override;

  // A key is cross-task when its send and recv devices name different
  // tasks ("/job:worker/task:0/..." vs "/job:ps/task:1/...").
  static bool IsCrossTaskKey(const std::string& key);

 private:
  RpcChannel* hub_;
  ThreadPool* done_pool_;
  const int64_t step_id_;
  const double send_deadline_seconds_;
  LocalRendezvous local_;
};

class WorkerService {
 public:
  struct Options {
    std::string job;
    int task_index = 0;
    int num_threads = 2;
    int num_devices = 1;
    // Port of the master's rendezvous hub.
    int hub_port = 0;
    // Deadline for this worker's own outbound RPCs (SendTensor).
    double rpc_deadline_seconds = 5.0;
  };

  explicit WorkerService(const Options& options);
  ~WorkerService();

  // Hosts a shared data service on this worker's RPC port: GetElement
  // frames are answered by `handler` (distributed/data_service.h). Must be
  // called before Start; without it GetElement answers FailedPrecondition.
  // This is how a pipeline task is just another worker process — spawn
  // worker_main with --data_files=... and point DataServiceClients at its
  // port.
  void AttachDataService(std::shared_ptr<DataServiceHandler> handler);

  // Binds the service socket (port 0 = ephemeral, see port()) and starts
  // answering RPCs.
  Status Start(int port);
  int port() const { return server_.port(); }

  // Blocks until a Shutdown RPC arrives (or RequestShutdown is called).
  void WaitForShutdown();
  void RequestShutdown();

 private:
  struct StepCtx {
    std::unique_ptr<CallFrame> frame;
    CancellationManager cancellation;
    std::shared_ptr<WorkerRendezvous> rendezvous;
    Executor::Args args;  // outlives the async executor run
    // Set when the master requested a traced step (DESIGN.md §12): the
    // collected StepStats ride back on the RunGraph response together with
    // the request-receive / response-build timestamps the master needs for
    // clock-skew normalization.
    std::unique_ptr<TraceCollector> trace;
    int64_t recv_micros = 0;  // w0: when the RunGraph request arrived
  };

  void HandleRegisterSubgraph(const std::string& body,
                              std::shared_ptr<RpcServer::Responder> responder);
  void HandleRunGraph(const std::string& body,
                      std::shared_ptr<RpcServer::Responder> responder);
  void HandleCancelStep(const std::string& body,
                        std::shared_ptr<RpcServer::Responder> responder);

  Options options_;
  // Answers GetElement when this worker doubles as the pipeline task.
  std::shared_ptr<DataServiceHandler> data_service_;
  // Runs hub-recv completions (and through them, downstream executor
  // nodes). Declared before worker_/hub_ so it is destroyed after them: by
  // then the steps_ drain below guarantees it is idle.
  ThreadPool recv_done_pool_;
  TaskWorker worker_;
  RpcChannel hub_;
  RpcServer server_;

  std::mutex steps_mu_;
  // Signalled whenever a step finishes; the destructor waits on it so no
  // executor callback can outlive the members it touches.
  std::condition_variable steps_done_cv_;
  std::map<int64_t, std::shared_ptr<StepCtx>> steps_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_RPC_WORKER_SERVICE_H_
