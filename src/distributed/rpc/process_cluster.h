// Multi-process cluster (DESIGN.md §11): every task of the ClusterSpec is
// a real OS process running worker_main, spawned with fork/exec and spoken
// to through a RemoteWorker stub. The master keeps:
//
//   * one RemoteWorker (and its RpcChannel) per task — the stable identity
//     the master holds across restarts; restarting a task swaps the process
//     behind the stub, never the stub itself;
//   * shadow CPU devices mirroring each process's devices by name, so
//     placement and partitioning run unchanged (kernels never execute on
//     them);
//   * the rendezvous hub, which fronts every step's master-side rendezvous
//     to the worker processes (see rendezvous_hub.h).
//
// Process lifecycle: spawn writes the child's ephemeral service port to a
// tmp file (renamed into place so the parent never reads a partial write);
// the parent polls that file, bounded by spawn_timeout_seconds, and fails
// the spawn if the child dies first. Liveness is waitpid(WNOHANG):
// TaskIsDown reaps and reports a SIGKILLed child, and RestartTask respawns
// it, retargets the stub, bumps the incarnation and lets the master's
// existing re-register + checkpoint-recovery path do the rest. Destruction
// drains gracefully: Shutdown RPC, bounded wait, SIGKILL stragglers.
//
// KillTaskProcess is the chaos hook: SIGKILL a live worker, no respawn, no
// bookkeeping — exactly what a machine failure looks like to the master.

#ifndef TFREPRO_DISTRIBUTED_RPC_PROCESS_CLUSTER_H_
#define TFREPRO_DISTRIBUTED_RPC_PROCESS_CLUSTER_H_

#include <sys/types.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/threadpool.h"
#include "distributed/cluster.h"
#include "distributed/rpc/remote_worker.h"
#include "distributed/rpc/rendezvous_hub.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

class ProcessCluster : public Cluster {
 public:
  using Options = Cluster::Options;

  static Result<std::unique_ptr<ProcessCluster>> Create(
      const ClusterSpec& spec, const Options& options);

  ~ProcessCluster() override;

  Result<WorkerInterface*> worker(const std::string& job,
                                  int task_index) const override;
  std::vector<WorkerInterface*> workers() const override;
  std::vector<Device*> all_devices() const override;

  Status RestartTask(const std::string& job, int task_index) override;
  bool TaskIsDown(WorkerInterface* worker) const override;

  // Registers the step with the hub and arranges CancelStep fan-out on
  // abort, so worker-local rendezvous waiters unblock when the master
  // aborts a step they cannot observe failing.
  std::shared_ptr<Rendezvous> WrapStepRendezvous(
      int64_t step_id, std::shared_ptr<Rendezvous> base) override;

  // Chaos hook: SIGKILL the task's live process and do nothing else — the
  // master must notice (failed dispatch or missed probes) and recover on
  // its own. Errors if the process is already gone.
  Status KillTaskProcess(const std::string& job, int task_index);

  int hub_port() const { return hub_.port(); }
  RendezvousHub* hub() { return &hub_; }

  // Fans CancelStep to every worker (fire-and-forget, short deadline);
  // called by the per-step hub rendezvous wrapper on abort.
  void CancelStepOnWorkers(int64_t step_id, const Status& reason);

 private:
  struct Task {
    std::string job;
    int task_index = 0;
    std::unique_ptr<RemoteWorker> stub;
    pid_t pid = -1;
    int port = 0;
    bool reaped = false;  // waitpid already collected the child
    std::vector<std::unique_ptr<Device>> shadow_devices;
  };

  ProcessCluster(const ClusterSpec& spec, const Options& options);

  Status Initialize();
  // fork/exec of worker_main; on success fills task->pid and task->port.
  Status SpawnProcess(Task* task);
  // SIGKILLs (if needed) and reaps the task's process. Must hold procs_mu_.
  void ReapLocked(Task* task, bool force_kill);

  Result<Task*> FindTask(const std::string& job, int task_index) const;
  // waitpid(WNOHANG) check-and-reap. Must hold procs_mu_.
  bool ProcessGoneLocked(Task* task) const;

  Options options_;
  std::string worker_binary_;
  RendezvousHub hub_;
  // Carries injected dispatch delays and owns the shadow devices' (unused)
  // kernel pool.
  ThreadPool timer_pool_;
  std::vector<std::unique_ptr<Task>> tasks_;
  // Guards pid/reaped state: TaskIsDown (any thread) races RestartTask and
  // the destructor on waitpid, which collects each child exactly once.
  mutable std::mutex procs_mu_;
};

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_RPC_PROCESS_CLUSTER_H_
