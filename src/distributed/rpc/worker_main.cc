// Entry point for one worker process of the socket transport (DESIGN.md
// §11). Spawned by ProcessCluster as:
//
//   worker_main --job=worker --task=0 --hub_port=41234 \
//       --port_file=/tmp/...port [--threads=2] [--devices=1]
//
// The service binds an ephemeral port, publishes it through the port file
// (written to a temp name and renamed, so the spawning master never reads
// a partial write), then serves RPCs until a Shutdown RPC arrives. Being
// SIGKILLed at any point is an expected fate — the master's chaos tests do
// exactly that — and requires no cooperation from this side.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <vector>

#include "core/metrics.h"
#include "distributed/data_service.h"
#include "distributed/rpc/worker_service.h"

namespace {

// Returns the value of "--name=value" if `arg` matches, else nullptr.
const char* FlagValue(const char* arg, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  return std::strncmp(arg, prefix.c_str(), prefix.size()) == 0
             ? arg + prefix.size()
             : nullptr;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tfrepro::distributed::rpc::WorkerService::Options options;
  std::string port_file;
  // --data_files turns this worker into the cluster's shared pipeline task:
  // it hosts RecordFile -> [Repeat] -> ParallelMap -> [Shuffle] and answers
  // GetElement on the same RPC port as the worker service.
  std::string data_files, data_map_fn = "parse_example";
  int data_parallelism = 4, data_consumers = 1;
  long long data_repeat = 1, data_shuffle = 0, data_seed = 0;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argv[i], "job")) {
      options.job = v;
    } else if (const char* v = FlagValue(argv[i], "task")) {
      options.task_index = std::atoi(v);
    } else if (const char* v = FlagValue(argv[i], "hub_port")) {
      options.hub_port = std::atoi(v);
    } else if (const char* v = FlagValue(argv[i], "port_file")) {
      port_file = v;
    } else if (const char* v = FlagValue(argv[i], "threads")) {
      options.num_threads = std::atoi(v);
    } else if (const char* v = FlagValue(argv[i], "devices")) {
      options.num_devices = std::atoi(v);
    } else if (const char* v = FlagValue(argv[i], "data_files")) {
      data_files = v;
    } else if (const char* v = FlagValue(argv[i], "data_map_fn")) {
      data_map_fn = v;
    } else if (const char* v = FlagValue(argv[i], "data_parallelism")) {
      data_parallelism = std::atoi(v);
    } else if (const char* v = FlagValue(argv[i], "data_consumers")) {
      data_consumers = std::atoi(v);
    } else if (const char* v = FlagValue(argv[i], "data_repeat")) {
      data_repeat = std::atoll(v);
    } else if (const char* v = FlagValue(argv[i], "data_shuffle")) {
      data_shuffle = std::atoll(v);
    } else if (const char* v = FlagValue(argv[i], "data_seed")) {
      data_seed = std::atoll(v);
    } else {
      std::fprintf(stderr, "worker_main: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (options.job.empty() || options.hub_port <= 0 || port_file.empty()) {
    std::fprintf(stderr,
                 "worker_main: --job, --hub_port and --port_file are "
                 "required\n");
    return 2;
  }

  tfrepro::distributed::rpc::WorkerService service(options);
  if (!data_files.empty()) {
    tfrepro::DataTypeVector output_types =
        data_map_fn == "identity"
            ? tfrepro::DataTypeVector{tfrepro::DataType::kString}
            : tfrepro::DataTypeVector{tfrepro::DataType::kFloat,
                                      tfrepro::DataType::kInt64};
    auto factory = tfrepro::distributed::RecordPipelineFactory(
        SplitCommas(data_files), data_map_fn, data_parallelism,
        std::move(output_types), data_repeat, data_shuffle,
        static_cast<uint64_t>(data_seed));
    if (!factory.ok()) {
      std::fprintf(stderr, "worker_main: %s\n",
                   factory.status().message().c_str());
      return 1;
    }
    tfrepro::distributed::DataServiceHandler::Options ds_options;
    ds_options.num_consumers = data_consumers;
    service.AttachDataService(
        std::make_shared<tfrepro::distributed::DataServiceHandler>(
            factory.value(), ds_options));
  }
  tfrepro::Status started = service.Start(/*port=*/0);
  if (!started.ok()) {
    std::fprintf(stderr, "worker_main: %s\n", started.message().c_str());
    return 1;
  }

  // Publish readiness: temp file + rename is atomic on one filesystem.
  const std::string tmp = port_file + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "worker_main: cannot write %s\n", tmp.c_str());
    return 1;
  }
  std::fprintf(f, "%d\n", service.port());
  std::fclose(f);
  if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
    std::fprintf(stderr, "worker_main: cannot publish %s\n",
                 port_file.c_str());
    return 1;
  }

  // With TFREPRO_METRICS_DUMP_SECS set, periodically dump the metrics
  // registry to a JSON file so a long-running worker can be inspected
  // without a debugger; a final dump lands when the exporter is destroyed.
  std::unique_ptr<tfrepro::metrics::MetricsExporter> exporter =
      tfrepro::metrics::MetricsExporter::StartFromEnv();

  service.WaitForShutdown();
  return 0;
}
