// Wire format and socket plumbing for the multi-process transport
// (DESIGN.md §11). Every RPC is one length-prefixed frame over a TCP
// connection on localhost:
//
//   [u32 frame_len][u64 request_id][u8 is_response][u8 method][body...]
//
// frame_len counts everything after itself. Connections are multiplexed:
// many requests may be in flight, responses are matched by request_id, and
// long-poll calls (RecvTensor) may be answered far out of order. All
// integers are host-endian — both ends always run on one machine (the
// paper's cluster is ours shrunk to localhost), and the frame never leaves
// it.
//
// Bodies are built with the Append*/Read* helpers below (fixed-width ints,
// length-prefixed strings), mirroring Tensor::AppendToBytes. A tensor with
// a POD payload is sent minimal-copy: AppendTensorMeta puts only the
// dtype/rank/dims header in the body and hands back a pointer to the
// tensor's own buffer, which WriteFrame gathers with writev — the payload
// crosses the user/kernel boundary once and is never copied into a staging
// string. The receiver sees one contiguous body and parses it with
// Tensor::ParseFromBytes (one memcpy into the new buffer).

#ifndef TFREPRO_DISTRIBUTED_RPC_WIRE_H_
#define TFREPRO_DISTRIBUTED_RPC_WIRE_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "core/tensor.h"

namespace tfrepro {
namespace distributed {
namespace rpc {

enum class Method : uint8_t {
  // Worker service (master -> worker process).
  kRegisterSubgraph = 1,
  kRunGraph = 2,
  kPing = 3,
  kHasSubgraphs = 4,
  kCancelStep = 5,
  kShutdown = 6,
  // Rendezvous hub (worker process -> master).
  kSendTensor = 7,
  kRecvTensor = 8,
  // Data service (training worker -> shared pipeline task): pull the
  // element at the caller's cursor (distributed/data_service.h).
  kGetElement = 9,
};

const char* MethodName(Method m);

// One parsed frame.
struct Frame {
  uint64_t request_id = 0;
  bool is_response = false;
  uint8_t method = 0;
  std::string body;
};

// Frames larger than this are treated as stream corruption (well above any
// legitimate tensor in the test workloads, low enough to fail fast on
// garbage lengths).
constexpr uint32_t kMaxFrameBytes = 1u << 30;

// --- body builders/parsers ---

void AppendInt64(std::string* out, int64_t v);
bool ReadInt64(const std::string& in, size_t* offset, int64_t* v);
void AppendString(std::string* out, const std::string& s);
bool ReadString(const std::string& in, size_t* offset, std::string* s);

// Status as (code, message); OK is (0, "").
void AppendStatus(std::string* out, const Status& s);
bool ReadStatus(const std::string& in, size_t* offset, Status* s);

// Tensor header into `body`; for POD tensors the raw buffer is returned as
// (payload_data, payload_len) to be written separately (writev), and `t`
// must stay alive until the frame is written. For string/uninitialized
// tensors everything lands in `body` and payload is (nullptr, 0). The
// concatenation body-suffix + payload is exactly Tensor::AppendToBytes
// output, so the receiving side parses it with Tensor::ParseFromBytes.
void AppendTensorMeta(const Tensor& t, std::string* body,
                      const char** payload_data, size_t* payload_len);

// --- sockets (localhost only) ---

// Listening socket bound to 127.0.0.1:`port` (0 = ephemeral); the bound
// port is returned in *bound_port.
Result<int> ListenLocalhost(int port, int* bound_port);

// Blocking accept; maps failure through StatusFromErrno.
Result<int> AcceptConnection(int listen_fd);

// Connects to 127.0.0.1:`port` with a bounded handshake (non-blocking
// connect + poll). TCP_NODELAY is set: frames are latency-bound control
// messages.
Result<int> ConnectLocalhost(int port, double timeout_seconds);

// --- frame I/O ---
// Both directions update the process-wide rpc.bytes_sent / rpc.bytes_recv
// counters. WriteFrame gathers header + body + payload with writev and
// loops on partial writes/EINTR; errors are errno-mapped (EPIPE on a dead
// peer becomes retryable Unavailable). Not synchronized — callers serialize
// writers per fd.
Status WriteFrame(int fd, uint64_t request_id, bool is_response,
                  uint8_t method, const std::string& body,
                  const char* payload, size_t payload_len);

// Reads one frame; a clean EOF at a frame boundary returns Unavailable
// ("connection closed"), mid-frame EOF returns DataLoss.
Result<Frame> ReadFrame(int fd);

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro

#endif  // TFREPRO_DISTRIBUTED_RPC_WIRE_H_
