#include "distributed/rpc/rendezvous_hub.h"

#include <utility>

namespace tfrepro {
namespace distributed {
namespace rpc {

RendezvousHub::~RendezvousHub() { Shutdown(); }

Status RendezvousHub::Start() {
  server_.RegisterHandler(
      Method::kSendTensor,
      [this](const std::string& body,
             std::shared_ptr<RpcServer::Responder> responder) {
        HandleSendTensor(body, std::move(responder));
      });
  server_.RegisterHandler(
      Method::kRecvTensor,
      [this](const std::string& body,
             std::shared_ptr<RpcServer::Responder> responder) {
        HandleRecvTensor(body, std::move(responder));
      });
  return server_.Start(0);
}

void RendezvousHub::Shutdown() { server_.Shutdown(); }

void RendezvousHub::RegisterStep(int64_t step_id,
                                 std::shared_ptr<Rendezvous> rendezvous) {
  std::lock_guard<std::mutex> lock(mu_);
  steps_[step_id] = std::move(rendezvous);
}

void RendezvousHub::DeregisterStep(int64_t step_id) {
  std::shared_ptr<Rendezvous> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = steps_.find(step_id);
    if (it == steps_.end()) return;
    dropped = std::move(it->second);
    steps_.erase(it);
  }
  // Release outside the lock: the rendezvous destructor may fire parked
  // waiter callbacks (which respond on connection fds), and none of that
  // needs — or should hold — the registry lock.
}

int RendezvousHub::num_active_steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(steps_.size());
}

std::shared_ptr<Rendezvous> RendezvousHub::LookupStep(int64_t step_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = steps_.find(step_id);
  return it == steps_.end() ? nullptr : it->second;
}

void RendezvousHub::HandleSendTensor(
    const std::string& body, std::shared_ptr<RpcServer::Responder> responder) {
  size_t offset = 0;
  int64_t step_id = 0;
  int64_t is_dead = 0;
  std::string key;
  if (!ReadInt64(body, &offset, &step_id) || !ReadString(body, &offset, &key) ||
      !ReadInt64(body, &offset, &is_dead)) {
    responder->Respond(InvalidArgument("malformed SendTensor request"),
                       std::string());
    return;
  }
  Result<Tensor> tensor = Tensor::ParseFromBytes(body, &offset);
  if (!tensor.ok()) {
    responder->Respond(tensor.status(), std::string());
    return;
  }
  std::shared_ptr<Rendezvous> rendezvous = LookupStep(step_id);
  if (rendezvous == nullptr) {
    // Straggler from a finished/aborted step; Aborted is retryable, so the
    // worker-side executor fails the step cleanly and the master's retry
    // machinery (not this send) decides what happens next.
    responder->Respond(
        Aborted("step " + std::to_string(step_id) + " is not active"),
        std::string());
    return;
  }
  responder->Respond(rendezvous->Send(key, tensor.value(), is_dead != 0),
                     std::string());
}

void RendezvousHub::HandleRecvTensor(
    const std::string& body, std::shared_ptr<RpcServer::Responder> responder) {
  size_t offset = 0;
  int64_t step_id = 0;
  std::string key;
  if (!ReadInt64(body, &offset, &step_id) || !ReadString(body, &offset, &key)) {
    responder->Respond(InvalidArgument("malformed RecvTensor request"),
                       std::string());
    return;
  }
  std::shared_ptr<Rendezvous> rendezvous = LookupStep(step_id);
  if (rendezvous == nullptr) {
    responder->Respond(
        Aborted("step " + std::to_string(step_id) + " is not active"),
        std::string());
    return;
  }
  // Long poll: the callback may run inline (value already buffered) or much
  // later from whichever connection thread delivers the matching Send. The
  // responder keeps the originating connection alive either way.
  rendezvous->RecvAsync(
      key, [responder](const Status& status, const Tensor& value,
                       bool is_dead) {
        if (!status.ok()) {
          responder->Respond(status, std::string());
          return;
        }
        std::string reply;
        AppendInt64(&reply, is_dead ? 1 : 0);
        const char* payload = nullptr;
        size_t payload_len = 0;
        AppendTensorMeta(value, &reply, &payload, &payload_len);
        responder->Respond(Status::OK(), reply, payload, payload_len);
      });
}

}  // namespace rpc
}  // namespace distributed
}  // namespace tfrepro
